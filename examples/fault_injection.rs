//! Fault injection: what happens when the driver is buggy or malicious?
//!
//! The paper's safety claim (§4.5): "since every heap access from the
//! hypervisor driver is translated before the access is made, invalid
//! accesses to the hypervisor address space, or to other domain memory,
//! are detected and prevented by SVM" — and the offending driver is
//! aborted while the hypervisor survives.
//!
//! This example injects a wild-write bug into the e1000 transmit path
//! and shows (1) SVM catching the access, (2) the hypervisor and dom0
//! continuing to run, (3) the VINO-style execution watchdog catching an
//! injected infinite loop (paper §4.5.2).
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use twindrivers::kernel::e1000;
use twindrivers::{Config, System, SystemError, SystemOptions};

fn sabotage(marker: &str, payload: &str) -> String {
    // Inject right after the transmit function's prologue.
    e1000::source().replace(marker, &format!("{marker}\n{payload}"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== experiment 1: wild write into the hypervisor ===");
    let evil = sabotage(
        "e1000_xmit_frame:",
        r#"
    pushl %eax
    movl $0xf0000100, %eax      # hypervisor text/data region
    movl $0x41414141, (%eax)    # corrupt it
    popl %eax
"#,
    );
    let opts = SystemOptions {
        driver_source: Some(evil),
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts)?;
    match sys.transmit_one() {
        Err(SystemError::DriverAborted(reason)) => {
            println!("  driver aborted as the paper requires: {reason}");
        }
        other => panic!("expected driver abort, got {other:?}"),
    }
    // The hypervisor is alive: the abort is sticky but contained.
    assert!(sys.hyperdrv.as_ref().unwrap().is_aborted());
    match sys.transmit_one() {
        Err(SystemError::DriverAborted(_)) => {
            println!("  subsequent invocations refused (driver stays dead)");
        }
        other => panic!("expected sticky abort, got {other:?}"),
    }
    // dom0 and its VM driver instance still work: run a config operation.
    let stats_entry = sys.driver.entry("e1000_get_stats").unwrap();
    let dom0 = sys.world.kernel.space;
    let netdev = sys.netdev as u32;
    let r = twindrivers::kernel::call_function(
        &mut sys.machine,
        &mut sys.world,
        dom0,
        twin_machine::ExecMode::Guest,
        twin_kernel::DOM0_STACK_BASE + twin_kernel::DOM0_STACK_PAGES * 4096,
        stats_entry,
        &[netdev],
        1_000_000,
    )?;
    println!("  dom0 VM instance still serves config ops (get_stats -> {r:#x})");
    println!("  hypervisor memory was never written: SVM rejected the access\n");

    println!("=== experiment 2: wild write into another guest's memory ===");
    let evil = sabotage(
        "e1000_xmit_frame:",
        r#"
    pushl %eax
    movl $0x40000000, %eax      # a guest heap address, not dom0's
    movl $0x42424242, (%eax)
    popl %eax
"#,
    );
    let opts = SystemOptions {
        driver_source: Some(evil),
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts)?;
    match sys.transmit_one() {
        Err(SystemError::DriverAborted(reason)) => {
            println!("  cross-domain access rejected: {reason}\n");
        }
        other => panic!("expected driver abort, got {other:?}"),
    }

    println!("=== experiment 3: infinite loop (VINO-style watchdog, §4.5.2) ===");
    let evil = sabotage(
        "e1000_xmit_frame:",
        r#"
.Lspin_forever:
    jmp .Lspin_forever
"#,
    );
    let opts = SystemOptions {
        driver_source: Some(evil),
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts)?;
    match sys.transmit_one() {
        Err(SystemError::DriverAborted(reason)) => {
            println!("  watchdog reclaimed the CPU: {reason}\n");
        }
        other => panic!("expected watchdog abort, got {other:?}"),
    }

    println!("=== control: the unmodified driver does none of this ===");
    let mut sys = System::build(Config::TwinDrivers)?;
    for _ in 0..50 {
        sys.transmit_one()?;
    }
    println!(
        "  50 packets transmitted, rejected accesses: {}",
        sys.world.svm_hyp.as_ref().unwrap().stats().rejected
    );
    Ok(())
}
