//! Quickstart: derive a hypervisor driver from the e1000 guest driver,
//! send and receive traffic through it, and look at what the mechanism
//! did under the hood.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use twindrivers::{throughput, Config, System};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build the full TwinDrivers stack: assemble the e1000 driver from
    // its assembly source, rewrite it for SVM, load the VM instance into
    // dom0 (which initialises the NIC), load the hypervisor instance,
    // and attach a guest with a paravirtual driver.
    let mut sys = System::build(Config::TwinDrivers)?;

    let stats = sys.rewrite_stats.expect("rewrite statistics");
    println!("derived hypervisor driver from the e1000 VM driver:");
    println!("  instructions before rewriting : {}", stats.insns_before);
    println!("  instructions after rewriting  : {}", stats.insns_after);
    println!("  memory-reference sites        : {}", stats.mem_sites);
    println!("  string-instruction sites      : {}", stats.string_sites);
    println!("  indirect-call sites           : {}", stats.indirect_sites);
    println!(
        "  code expansion                : {:.2}x  (mem fraction {:.0}%)",
        stats.expansion_factor(),
        stats.mem_fraction() * 100.0
    );
    println!();

    // Guest transmit: paravirtual driver -> hypercall -> hypervisor
    // driver -> NIC. No domain switches.
    for _ in 0..100 {
        sys.transmit_one()?;
    }
    let sent = sys.take_wire_frames();
    println!("transmitted {} frames from the guest", sent.len());

    // Guest receive: NIC interrupt -> hypervisor driver (softirq) ->
    // demultiplex by MAC -> copy into the guest.
    for _ in 0..100 {
        sys.receive_one()?;
    }
    println!("received    {} frames in the guest", sys.delivered_rx());
    println!(
        "domain switches on the fast path: {}",
        sys.machine.meter.event("domain_switch")
    );
    println!();

    // Measure the per-packet cost and convert to netperf-style
    // throughput on the paper's 5-NIC testbed.
    let tx = sys.measure_tx(200)?;
    let t = throughput(tx.total(), 5);
    println!("{}", tx.row("domU-twin"));
    println!(
        "transmit throughput: {:.0} Mb/s at {:.0}% CPU  (paper: 3902 Mb/s)",
        t.mbps,
        t.cpu_util * 100.0
    );

    let svm = sys.world.svm_hyp.as_ref().expect("hypervisor SVM");
    println!();
    println!("SVM behind the scenes:");
    println!("  stlb misses (cold)   : {}", svm.stats().misses);
    println!("  dom0 pages mapped    : {}", svm.stats().pages_mapped);
    println!("  illegal accesses     : {}", svm.stats().rejected);
    Ok(())
}
