//! `twin-top` — a top(1)-style live view of a TwinDrivers system under
//! receive overload, rendered **entirely from metrics-registry deltas**.
//!
//! The harness replays the livelock sweep's controlled configuration
//! (4 NICs, scheduler-aware affinity sharding, budgeted NAPI, DRR guest
//! weights, admission watermark) with a vCPU run/sleep schedule per
//! guest, against an open-loop flood at a chosen multiple
//! of the calibrated knee, and at every interval boundary takes one
//! [`System::metrics`] snapshot. Each table below is computed from
//! `snapshot.delta_since(&previous)` alone — no reaching into
//! `NicStats`, guest queues or the grant cache; even the device and
//! guest row sets are discovered from the registry's key space. That is
//! the point: anything `twin-top` can show, any registry consumer can.
//!
//! ```sh
//! cargo run --release --example twin_top          # 10.0x the knee
//! cargo run --release --example twin_top -- 20    # 2.0x the knee
//! ```
//!
//! Set `TWIN_TRACE_OUT=dir` to also dump the flight-recorder chrome
//! trace and final metrics snapshot for the whole replay.

use twindrivers::net::{wire_bits, EtherType, Frame, MacAddr, MTU};
use twindrivers::system::DomId;
use twindrivers::trace::MetricSet;
use twindrivers::{Config, SchedOptions, ShardPolicy, System, SystemOptions, CPU_HZ};

const NICS: usize = 4;
const BURST: usize = 32;
const QUEUE_CAP: usize = 512;
const NAPI_WEIGHT: usize = 64;
const WATERMARK: usize = 1536;
const FLUSH_QUANTUM: usize = 8;
const VICTIM_WEIGHT: u32 = 64;
const VICTIM_FRAMES: usize = 4;
const INTERVALS: usize = 5;
const BURSTS_PER_INTERVAL: u64 = 40;

fn build() -> Result<System, Box<dyn std::error::Error>> {
    let opts = SystemOptions {
        num_nics: NICS,
        shard: ShardPolicy::Affinity,
        sched: Some(SchedOptions {
            num_cpus: NICS as u32,
            ..SchedOptions::default()
        }),
        rx_queue_cap: Some(QUEUE_CAP),
        napi_weight: NAPI_WEIGHT,
        rx_backlog_watermark: Some(WATERMARK),
        rx_flush_quantum: FLUSH_QUANTUM,
        guest_weights: vec![(2, VICTIM_WEIGHT), (3, VICTIM_WEIGHT)],
        tracing: true,
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts)?;
    sys.add_guest(MacAddr::for_guest(2))?;
    sys.add_guest(MacAddr::for_guest(3))?;
    // The flood guest's vCPU never sleeps; the victims run partial duty
    // cycles, so the scheduler columns show deferral and placement at
    // work (run%, placements, migrations).
    sys.sched_add_vcpu(DomId(1), 0, 1_000_000, 0)?;
    sys.sched_add_vcpu(DomId(2), 1, 400_000, 200_000)?;
    sys.sched_add_vcpu(DomId(3), 2, 300_000, 300_000)?;
    Ok(sys)
}

/// One arrival burst: a fixed victim trickle plus the flood remainder,
/// same shape as the sweep's `flood_one_guest` profile.
fn burst(flood: MacAddr, victims: &[(u32, MacAddr)], x10: u32, seq: &mut u64) -> Vec<Frame> {
    let total = (BURST * x10 as usize / 10).max(1);
    let mut out = Vec::new();
    let mut push = |dst: MacAddr, flow: u32, seq: &mut u64| {
        out.push(Frame {
            dst,
            src: MacAddr([0x02, 0, 0, 0, 0, 0xee]),
            ethertype: EtherType::Ipv4,
            payload_len: MTU,
            flow,
            seq: *seq,
        });
        *seq += 1;
    };
    for (g, mac) in victims {
        for _ in 0..VICTIM_FRAMES {
            push(*mac, 900 + g, seq);
        }
    }
    for _ in victims.len() * VICTIM_FRAMES..total {
        push(flood, 800, seq);
    }
    out
}

/// Device/guest ids present in a delta, discovered from the key space.
fn ids_with_prefix(d: &MetricSet, prefix: &str) -> Vec<u32> {
    let mut ids: Vec<u32> = d
        .counters_with_prefix(prefix)
        .filter_map(|(k, _)| k[prefix.len()..].split('.').next()?.parse().ok())
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

fn render_interval(n: usize, d: &MetricSet) {
    let span = d.counter("clock.now_cycles");
    let span_ms = span as f64 / CPU_HZ * 1e3;
    println!("interval {n}  (span {span_ms:.2} ms, {span} cycles)");
    println!(
        "  {:<6} {:>8} {:>6} {:>8} {:>7} {:>6}",
        "dev", "rx_pkts", "irqs", "irq/pkt", "poll%", "drops"
    );
    for dev in ids_with_prefix(d, "nic") {
        let pkts = d.counter(&format!("nic{dev}.rx_packets"));
        let irqs = d.counter(&format!("nic{dev}.rx_irqs"));
        let poll = d.counter(&format!("nic{dev}.poll_cycles"));
        println!(
            "  nic{dev:<3} {pkts:>8} {irqs:>6} {:>8.3} {:>6.1}% {:>6}",
            irqs as f64 / pkts.max(1) as f64,
            poll as f64 / span.max(1) as f64 * 100.0,
            d.counter(&format!("nic{dev}.rx_missed")),
        );
    }
    println!(
        "  {:<6} {:>10} {:>9} {:>11} {:>11} {:>6} {:>7} {:>5}",
        "guest", "goodput", "delivered", "early_drops", "queue_drops", "run%", "placed", "migr"
    );
    for g in ids_with_prefix(d, "guest") {
        let delivered = d.counter(&format!("guest{g}.delivered"));
        let mbps = delivered as f64 * wire_bits(MTU) as f64 / (span as f64 / CPU_HZ) / 1e6;
        let run = d.counter(&format!("sched.guest{g}.run_cycles"));
        println!(
            "  dom{g:<3} {mbps:>6.0} Mb/s {delivered:>9} {:>11} {:>11} {:>5.0}% {:>7} {:>5}",
            d.counter(&format!("guest{g}.early_drops")),
            d.counter(&format!("guest{g}.queue_drops")),
            run as f64 / span.max(1) as f64 * 100.0,
            d.counter(&format!("sched.guest{g}.placements")),
            d.counter(&format!("sched.guest{g}.migrations")),
        );
    }
    let (hits, misses) = (d.counter("grantcache.hits"), d.counter("grantcache.misses"));
    if hits + misses > 0 {
        println!(
            "  grant cache: {:.1}% hit ({hits} hits / {misses} misses)",
            hits as f64 / (hits + misses) as f64 * 100.0
        );
    }
    let (flushes, upcalls) = (d.counter("upcall.flushes"), d.counter("upcall.executed"));
    if flushes + upcalls > 0 {
        println!("  upcalls: {upcalls} executed in {flushes} flushes");
    }
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let x10: u32 = std::env::args()
        .nth(1)
        .map(|a| a.parse())
        .transpose()?
        .unwrap_or(100);
    let mut sys = build()?;
    let flood_gid = sys.guest.expect("TwinDrivers config has a guest");
    let flood_mac = MacAddr::for_guest(flood_gid.0);
    let victims: Vec<(u32, MacAddr)> = [2u32, 3]
        .iter()
        .map(|&g| (g, MacAddr::for_guest(g)))
        .collect();

    // Calibrate the knee exactly like the livelock sweep, then replay.
    let knee = sys.measure_rx_burst(BURST, 256)?;
    let gap = (BURST as f64 * knee.breakdown.total()) as u64;
    println!(
        "twin-top — TwinDrivers, {NICS} NICs, flood_one_guest @ {:.1}x knee (burst {BURST} / {gap} cycles)\n",
        f64::from(x10) / 10.0
    );

    let mut seq = 1_000_000u64;
    let mut prev = sys.metrics();
    let t0 = sys.now_cycles();
    for n in 0..INTERVALS {
        for i in 0..BURSTS_PER_INTERVAL {
            let at = t0 + (n as u64 * BURSTS_PER_INTERVAL + i) * gap;
            sys.rx_open_loop_service(at)?;
            let frames = burst(flood_mac, &victims, x10, &mut seq);
            sys.rx_open_loop_arrival(&frames, at)?;
        }
        sys.rx_open_loop_service(t0 + (n as u64 + 1) * BURSTS_PER_INTERVAL * gap)?;
        let snap = sys.metrics();
        render_interval(n + 1, &snap.delta_since(&prev));
        prev = snap;
    }
    sys.export_trace(&format!("twin_top_{x10}"));
    Ok(())
}
