//! The web server workload (paper §6.3, Figure 9): knot-like server,
//! SPECweb99 static file set, httperf-like open-loop clients.
//!
//! ```sh
//! cargo run --release --example webserver
//! ```

use twin_workloads::{run_webserver, FileSet};
use twindrivers::Config;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut fs = FileSet::new(7);
    println!(
        "SPECweb99 file set: {} files, {:.1} MB total, mean transfer {:.1} KB",
        fs.files().len(),
        fs.total_bytes() as f64 / 1e6,
        fs.empirical_mean(20_000) / 1000.0
    );
    println!();

    let rates: Vec<f64> = (1..=16).map(|i| i as f64 * 1000.0).collect();
    println!(
        "{:>8}  {:>10} {:>10} {:>10} {:>10}",
        "reqs/s", "Linux", "dom0", "twin", "domU"
    );
    let mut series = Vec::new();
    for config in [
        Config::NativeLinux,
        Config::XenDom0,
        Config::TwinDrivers,
        Config::XenGuest,
    ] {
        let (model, pts) = run_webserver(config, &rates, 150)?;
        println!(
            "# {:>10}: peak {:>4.0} Mb/s ({:.0} cycles/request)",
            model.config.label(),
            model.peak_mbps(),
            model.cycles_per_request
        );
        series.push(pts);
    }
    for (i, rate) in rates.iter().enumerate() {
        println!(
            "{:>8.0}  {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
            rate,
            series[0][i].goodput_mbps,
            series[1][i].goodput_mbps,
            series[2][i].goodput_mbps,
            series[3][i].goodput_mbps
        );
    }
    println!();
    println!("paper peaks: Linux 855, dom0 712, domU-twin 572, domU 269 Mb/s");
    Ok(())
}
