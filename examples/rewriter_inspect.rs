//! Inspect the binary rewriting: print the original and SVM-rewritten
//! assembly of the e1000 transmit routine side by side, plus the rewrite
//! statistics the paper quotes (≈25% of driver instructions reference
//! memory; each becomes the ten-instruction Figure 4 fast path).
//!
//! ```sh
//! cargo run --release --example rewriter_inspect | less
//! ```

use twin_isa::asm::assemble;
use twin_rewriter::{rewrite, RewriteOptions};
use twindrivers::kernel::e1000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = assemble("e1000", &e1000::source())?;
    let out = rewrite(&module, &RewriteOptions::default())?;

    println!("== rewrite statistics ==");
    let s = out.stats;
    println!(
        "  instructions        : {} -> {}",
        s.insns_before, s.insns_after
    );
    println!("  expansion factor    : {:.2}x", s.expansion_factor());
    println!(
        "  memory fraction     : {:.1}%  (paper: ~25%)",
        s.mem_fraction() * 100.0
    );
    println!("  mem sites rewritten : {}", s.mem_sites);
    println!("  string sites        : {}", s.string_sites);
    println!("  indirect call sites : {}", s.indirect_sites);
    println!(
        "  sites needing spills: {} ({} registers)",
        s.spill_sites, s.spilled_regs
    );
    println!();

    // Print e1000_xmit_frame before and after.
    let range_of = |m: &twin_isa::Module, name: &str| {
        let start = m.labels[name];
        let end = m
            .labels
            .iter()
            .filter(|(n, i)| **i > start && m.globals.contains(*n))
            .map(|(_, i)| *i)
            .min()
            .unwrap_or(m.text.len());
        start..end
    };

    println!("== original e1000_xmit_frame (first 40 instructions) ==");
    let r = range_of(&module, "e1000_xmit_frame");
    for (i, insn) in module.text[r.clone()].iter().take(40).enumerate() {
        println!("  {:4}  {insn}", r.start + i);
    }
    println!();
    println!("== rewritten e1000_xmit_frame (first 60 instructions) ==");
    let r2 = range_of(&out.module, "e1000_xmit_frame");
    for (i, insn) in out.module.text[r2.clone()].iter().take(60).enumerate() {
        let labels = out.module.labels_at(r2.start + i);
        for l in labels {
            println!("{l}:");
        }
        println!("  {:4}  {insn}", r2.start + i);
    }
    println!();
    println!(
        "(note the Figure 4 sequence: leal/movl/andl/movl/andl/shrl/cmpl stlb/jne/xorl stlb+4)"
    );
    Ok(())
}
