//! The netperf microbenchmark across all four systems (paper §6.2,
//! Figures 5 and 6).
//!
//! ```sh
//! cargo run --release --example netperf
//! ```

use twin_workloads::{run_netperf, Direction};
use twindrivers::Config;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (dir, paper) in [
        (Direction::Transmit, "paper: 1619 / 3902 / 4683 / 4690 Mb/s"),
        (Direction::Receive, "paper:  928 / 2022 / 2839 / 3010 Mb/s"),
    ] {
        println!("== {} ({paper}) ==", dir.label());
        for config in Config::ALL {
            let r = run_netperf(config, dir, 200)?;
            println!("{}", r.row());
        }
        println!();
    }
    Ok(())
}
