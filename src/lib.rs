pub use twindrivers;
