//! `twindrivers-repro` — command-line front end for the reproduction.
//!
//! ```text
//! twindrivers-repro netperf [tx|rx]     figures 5/6
//! twindrivers-repro breakdown [tx|rx]   figures 7/8
//! twindrivers-repro webserver           figure 9
//! twindrivers-repro upcalls             figure 10
//! twindrivers-repro table1              table 1
//! twindrivers-repro rewrite             rewriter statistics
//! twindrivers-repro all                 everything above
//! ```

use std::env;
use std::process::ExitCode;
use twin_workloads::{run_netperf, run_webserver, Direction};
use twindrivers::{throughput, Config, System, SystemOptions, TESTBED_NICS};

const PACKETS: u64 = 300;

fn netperf(dir: Direction) -> Result<(), Box<dyn std::error::Error>> {
    println!("netperf {} (5 x 1GbE):", dir.label());
    for config in Config::ALL {
        let r = run_netperf(config, dir, PACKETS)?;
        println!("{}", r.row());
    }
    Ok(())
}

fn breakdown(dir: Direction) -> Result<(), Box<dyn std::error::Error>> {
    println!("cycles/packet breakdown, {} (single NIC):", dir.label());
    for config in Config::ALL {
        let mut sys = System::build(config)?;
        let b = match dir {
            Direction::Transmit => sys.measure_tx(PACKETS)?,
            Direction::Receive => sys.measure_rx(PACKETS)?,
        };
        println!("{}", b.row(config.label()));
    }
    Ok(())
}

fn webserver() -> Result<(), Box<dyn std::error::Error>> {
    println!("web server workload (SPECweb99 static set):");
    let rates: Vec<f64> = (1..=16).map(|i| i as f64 * 1000.0).collect();
    for config in [
        Config::NativeLinux,
        Config::XenDom0,
        Config::TwinDrivers,
        Config::XenGuest,
    ] {
        let (model, _pts) = run_webserver(config, &rates, 150)?;
        println!(
            "  {:>10}: peak {:>5.0} Mb/s at {:>6.0} reqs/s",
            model.config.label(),
            model.peak_mbps(),
            model.capacity()
        );
    }
    Ok(())
}

fn upcalls() -> Result<(), Box<dyn std::error::Error>> {
    println!("transmit throughput vs upcalls per driver invocation:");
    for n in 0..=9usize {
        let opts = SystemOptions {
            upcall_count: n,
            ..SystemOptions::default()
        };
        let mut sys = System::build_with(Config::TwinDrivers, &opts)?;
        let b = sys.measure_tx(PACKETS)?;
        let t = throughput(b.total(), TESTBED_NICS);
        println!(
            "  {n} upcalls: {:>5.0} Mb/s ({:.0} cycles/packet)",
            t.mbps,
            b.total()
        );
    }
    Ok(())
}

fn table1() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = System::build(Config::TwinDrivers)?;
    sys.world.kernel.trace.enabled = true;
    sys.world.kernel.trace.phase = "fastpath".into();
    for _ in 0..64 {
        sys.transmit_one()?;
        sys.receive_one()?;
    }
    let fast = sys.world.kernel.trace.names_in_phase("fastpath");
    println!("support routines on the error-free TX/RX fast path:");
    for name in &fast {
        println!("  {name}");
    }
    println!("  ({} routines; paper Table 1 lists 10)", fast.len());
    Ok(())
}

fn rewrite_stats() -> Result<(), Box<dyn std::error::Error>> {
    let sys = System::build(Config::TwinDrivers)?;
    let s = sys.rewrite_stats.expect("stats");
    println!("binary rewriting of the e1000 driver:");
    println!(
        "  instructions : {} -> {} ({:.2}x)",
        s.insns_before,
        s.insns_after,
        s.expansion_factor()
    );
    println!(
        "  memory sites : {} ({:.0}% of instructions)",
        s.mem_sites,
        s.mem_fraction() * 100.0
    );
    println!("  string sites : {}", s.string_sites);
    println!("  indirect     : {}", s.indirect_sites);
    println!("  spill sites  : {}", s.spill_sites);
    Ok(())
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: twindrivers-repro <netperf|breakdown> [tx|rx] | <webserver|upcalls|table1|rewrite|all>"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let dir = |s: Option<&String>| match s.map(String::as_str) {
        Some("rx") => Direction::Receive,
        _ => Direction::Transmit,
    };
    let result = match args.first().map(String::as_str) {
        Some("netperf") => netperf(dir(args.get(1))),
        Some("breakdown") => breakdown(dir(args.get(1))),
        Some("webserver") => webserver(),
        Some("upcalls") => upcalls(),
        Some("table1") => table1(),
        Some("rewrite") => rewrite_stats(),
        Some("all") => netperf(Direction::Transmit)
            .and_then(|()| netperf(Direction::Receive))
            .and_then(|()| breakdown(Direction::Transmit))
            .and_then(|()| breakdown(Direction::Receive))
            .and_then(|()| webserver())
            .and_then(|()| upcalls())
            .and_then(|()| table1())
            .and_then(|()| rewrite_stats()),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
