//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// The `prop_map` combinator.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among several strategies (the `prop_oneof!` backend).
#[derive(Clone, Debug)]
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union; panics on an empty list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// Always produces a clone of one value, like `proptest::strategy::Just`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Backend of `any::<T>()`.
#[derive(Clone, Debug)]
pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

impl<T: crate::Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).saturating_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        })+
    };
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {
        $(impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        })+
    };
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn just_and_tuple() {
        let mut rng = TestRng::for_test("jt");
        let s = (Just(7u32), 0u8..3);
        let (a, b) = s.generate(&mut rng);
        assert_eq!(a, 7);
        assert!(b < 3);
    }

    #[test]
    fn empty_range_yields_start() {
        let mut rng = TestRng::for_test("er");
        assert_eq!((5u16..5).generate(&mut rng), 5);
    }
}
