//! Deterministic PRNG and run configuration for the shim.

/// Run configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for API compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 32,
            max_shrink_iters: 0,
        }
    }
}

/// A small, fast xorshift64* generator seeded per test name, so every
/// run of a property sees the same value sequence.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator deterministically from the test's name.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name, mixed so a zero hash cannot occur.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_bounds() {
        let mut r = TestRng::for_test("below");
        for _ in 0..100 {
            assert!(r.below(7) < 7);
        }
        assert_eq!(r.below(0), 0);
    }
}
