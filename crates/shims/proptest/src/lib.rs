//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no network access, so this in-tree shim
//! provides the API subset the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`/`boxed`, range and tuple
//! strategies, [`collection::vec`], `any::<T>()`, `prop_oneof!`, and the
//! `proptest!` macro with `#![proptest_config(..)]`.
//!
//! Differences from the real crate: value generation is a seeded
//! deterministic PRNG (same values every run, per test name), and there
//! is **no shrinking** — a failing case reports the assertion as-is.
//! Swap the workspace dependency back to the real crate when a registry
//! is available; no source changes are needed.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Types that have a canonical "any value" strategy, like
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rng.next_u64() as $t
            }
        })+
    };
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy producing any value of `T`, like `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy(std::marker::PhantomData)
}

/// The commonly-imported surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Builds a strategy choosing uniformly among the listed strategies,
/// like `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    }};
}

/// Property-test assertion; the shim fails the whole test immediately
/// (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests, like `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                $body
            }
        }
        $crate::__proptest_tests!(@cfg ($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let s = prop_oneof![
            (0u32..10).prop_map(|v| v * 2),
            (100u32..110).prop_map(|v| v + 1),
        ];
        let mut rng = crate::test_runner::TestRng::for_test("oneof");
        let mut low = false;
        let mut high = false;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v < 20 || (101..111).contains(&v));
            low |= v < 20;
            high |= v >= 101;
        }
        assert!(low && high, "both arms exercised");
    }

    #[test]
    fn vec_respects_length_range() {
        let s = prop::collection::vec(0u8..5, 2..6);
        let mut rng = crate::test_runner::TestRng::for_test("vec");
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_args(x in 0u64..100, y in any::<bool>()) {
            prop_assert!(x < 100);
            let _ = y;
        }
    }
}
