//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for a `Vec` whose length is drawn from `len`, like
/// `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// The backend of [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.len.end.saturating_sub(self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
