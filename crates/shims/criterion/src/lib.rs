//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no network access, so this in-tree shim
//! provides the API subset the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is a simple calibrated
//! wall-clock loop (warm-up, then enough iterations to cover ~100 ms)
//! reporting mean time per iteration; there is no statistics engine, no
//! HTML report and no saved baselines. Swap the workspace dependency back
//! to the real crate when a registry is available — no source changes are
//! needed.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink, like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Runs one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Nanoseconds per iteration measured by the last [`Bencher::iter`].
    pub last_ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`: warm-up, then as many iterations as fit the budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and single-shot calibration.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let budget = Duration::from_millis(100);
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.last_ns_per_iter = t1.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn print_result(name: &str, ns: f64) {
    if ns >= 1e9 {
        println!("{name:<40} {:>10.3} s/iter", ns / 1e9);
    } else if ns >= 1e6 {
        println!("{name:<40} {:>10.3} ms/iter", ns / 1e6);
    } else if ns >= 1e3 {
        println!("{name:<40} {:>10.3} us/iter", ns / 1e3);
    } else {
        println!("{name:<40} {:>10.0} ns/iter", ns);
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _sample_size: usize,
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        print_result(name, b.last_ns_per_iter);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            group: name.to_string(),
        }
    }

    /// Accepted for API compatibility; the shim ignores sample sizing.
    pub fn sample_size(mut self, n: usize) -> Self {
        self._sample_size = n;
        self
    }
}

/// A group of benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim ignores sample sizing.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        print_result(&format!("{}/{}", self.group, name), b.last_ns_per_iter);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Declares a set of benchmark functions, like `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point, like `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.last_ns_per_iter > 0.0);
    }

    #[test]
    fn group_runs_bodies() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(5);
            g.bench_function("x", |b| {
                ran += 1;
                b.iter(|| 1 + 1)
            });
            g.finish();
        }
        assert_eq!(ran, 1);
    }
}
