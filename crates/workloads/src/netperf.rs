//! The netperf-like TCP streaming microbenchmark (paper §6.2).
//!
//! "The microbenchmark workload measures the maximum TCP streaming
//! throughput achievable over a small set of TCP connections" — one
//! stream per NIC, MTU-sized segments, measured in CPU-scaled units.
//! The harness runs the real per-packet path in the simulator to obtain
//! cycles/packet, then converts to aggregate throughput over the
//! five-NIC testbed exactly as [`twindrivers::measure::throughput`]
//! describes.

use twindrivers::{throughput, Breakdown, Config, System, SystemError, Throughput};

/// Transmit or receive.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Server transmits to the clients.
    Transmit,
    /// Server receives from the clients.
    Receive,
}

impl Direction {
    /// Human label.
    pub fn label(self) -> &'static str {
        match self {
            Direction::Transmit => "transmit",
            Direction::Receive => "receive",
        }
    }
}

/// Result of one netperf run.
#[derive(Clone, Debug)]
pub struct NetperfResult {
    /// Configuration measured.
    pub config: Config,
    /// Direction.
    pub direction: Direction,
    /// Per-packet cycle breakdown.
    pub breakdown: Breakdown,
    /// Aggregate throughput across the 5-NIC testbed.
    pub throughput: Throughput,
}

impl NetperfResult {
    /// One figure-style line.
    pub fn row(&self) -> String {
        format!(
            "{:>10}: {:>6.0} Mb/s @ {:>5.1}% CPU   ({:.0} cycles/packet)",
            self.config.label(),
            self.throughput.mbps,
            self.throughput.cpu_util * 100.0,
            self.breakdown.total(),
        )
    }
}

/// Runs the netperf microbenchmark for one configuration.
///
/// # Errors
///
/// Propagates system build and per-packet errors.
pub fn run_netperf(
    config: Config,
    direction: Direction,
    packets: u64,
) -> Result<NetperfResult, SystemError> {
    let mut sys = System::build(config)?;
    let breakdown = match direction {
        Direction::Transmit => sys.measure_tx(packets)?,
        Direction::Receive => sys.measure_rx(packets)?,
    };
    let t = throughput(breakdown.total(), twindrivers::TESTBED_NICS);
    Ok(NetperfResult {
        config,
        direction,
        breakdown,
        throughput: t,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmit_figure5_shape() {
        // Paper Fig. 5: Linux 4690 / dom0 4683 / twin 3902 / domU 1619.
        let linux = run_netperf(Config::NativeLinux, Direction::Transmit, 60).unwrap();
        let twin = run_netperf(Config::TwinDrivers, Direction::Transmit, 60).unwrap();
        let domu = run_netperf(Config::XenGuest, Direction::Transmit, 60).unwrap();
        assert!(linux.throughput.mbps >= 4600.0);
        assert!(
            twin.throughput.mbps / domu.throughput.mbps > 2.0,
            "2.4x in the paper"
        );
        assert!(twin.throughput.mbps < linux.throughput.mbps);
        assert!(
            twin.throughput.mbps / linux.throughput.mbps > 0.55,
            "paper: within 64% CPU-scaled"
        );
    }

    #[test]
    fn receive_figure6_shape() {
        // Paper Fig. 6: Linux 3010 / dom0 2839 / twin 2022 / domU 928.
        let linux = run_netperf(Config::NativeLinux, Direction::Receive, 60).unwrap();
        let twin = run_netperf(Config::TwinDrivers, Direction::Receive, 60).unwrap();
        let domu = run_netperf(Config::XenGuest, Direction::Receive, 60).unwrap();
        assert!(
            twin.throughput.mbps / domu.throughput.mbps > 1.7,
            "2.1x in the paper"
        );
        assert!(twin.throughput.mbps < linux.throughput.mbps);
        assert!(
            linux.throughput.cpu_util == 1.0,
            "receive is CPU-bound everywhere"
        );
    }

    #[test]
    fn rows_render() {
        let r = run_netperf(Config::XenDom0, Direction::Transmit, 30).unwrap();
        let row = r.row();
        assert!(row.contains("dom0"));
        assert!(row.contains("Mb/s"));
    }
}
