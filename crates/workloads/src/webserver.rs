//! The web server workload (paper §6.3, Figure 9): a knot-like static
//! web server driven by an httperf-like open-loop client.
//!
//! Requests arrive in an open loop at a configured rate; each request is
//! served from the SPECweb99 file set and transfers its response over
//! the simulated network path of the measured configuration. Per-packet
//! network costs come from *measured* netperf breakdowns of the same
//! system; the server-side connection cost (accept, HTTP parse, VFS
//! lookup, scheduling — knot is a lightweight user-level-threaded
//! server) is a calibrated constant. Responses that cannot be served at
//! the offered rate are discarded by the client after a timeout, which
//! wastes a fraction of the work and gives the gentle post-saturation
//! decline visible in the paper's figure.

use crate::netperf::{run_netperf, Direction};
use crate::specweb::FileSet;
use twindrivers::{Config, SystemError, CPU_HZ};

/// Server-side CPU cost per request excluding network processing
/// (connection setup/teardown, HTTP parsing, file lookup in knot).
pub const SERVER_BASE_CYCLES: f64 = 250_000.0;

/// TCP maximum segment payload used to packetise responses.
pub const MSS: f64 = 1448.0;

/// Fraction of the work wasted per unit of overload (client timeouts
/// discard responses the server already paid for).
pub const OVERLOAD_WASTE: f64 = 0.06;

/// One point of the Figure 9 curve.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct WebPoint {
    /// Offered request rate (requests/second).
    pub rate: f64,
    /// Response goodput in Mb/s.
    pub goodput_mbps: f64,
    /// Requests actually served per second.
    pub served: f64,
}

/// The per-configuration web server model, parameterised by measured
/// per-packet costs.
#[derive(Clone, Debug)]
pub struct WebServerModel {
    /// Configuration modeled.
    pub config: Config,
    /// Measured transmit cycles/packet.
    pub tx_cpp: f64,
    /// Measured receive cycles/packet.
    pub rx_cpp: f64,
    /// Mean response size in bytes (sampled from the file set).
    pub mean_bytes: f64,
    /// Mean cycles per request.
    pub cycles_per_request: f64,
}

impl WebServerModel {
    /// Builds the model by measuring the configuration's per-packet
    /// costs and sampling the file set.
    ///
    /// # Errors
    ///
    /// Propagates system build/measurement errors.
    pub fn measure(
        config: Config,
        packets: u64,
        fileset_seed: u64,
    ) -> Result<WebServerModel, SystemError> {
        let tx = run_netperf(config, Direction::Transmit, packets)?;
        let rx = run_netperf(config, Direction::Receive, packets)?;
        let mut fs = FileSet::new(fileset_seed);
        let mean_bytes = fs.empirical_mean(20_000);
        Ok(WebServerModel::from_parts(
            config,
            tx.breakdown.total(),
            rx.breakdown.total(),
            mean_bytes,
        ))
    }

    /// Builds the model from explicit per-packet costs.
    pub fn from_parts(config: Config, tx_cpp: f64, rx_cpp: f64, mean_bytes: f64) -> WebServerModel {
        // Packetisation of the mean request:
        //   transmit: response data + SYN-ACK + FIN + headers;
        //   receive: SYN, request, delayed ACKs (one per two data
        //   segments), FIN-ACK.
        let data_pkts = (mean_bytes / MSS).ceil() + 1.0; // + HTTP headers
        let tx_pkts = data_pkts + 3.0;
        let rx_pkts = 2.0 + (data_pkts / 2.0).ceil() + 2.0;
        let cycles_per_request = SERVER_BASE_CYCLES + tx_pkts * tx_cpp + rx_pkts * rx_cpp;
        WebServerModel {
            config,
            tx_cpp,
            rx_cpp,
            mean_bytes,
            cycles_per_request,
        }
    }

    /// Maximum request rate the CPU sustains.
    pub fn capacity(&self) -> f64 {
        CPU_HZ / self.cycles_per_request
    }

    /// Peak response throughput in Mb/s.
    pub fn peak_mbps(&self) -> f64 {
        self.capacity() * self.mean_bytes * 8.0 / 1e6
    }

    /// Evaluates one offered rate.
    pub fn point(&self, rate: f64) -> WebPoint {
        let cap = self.capacity();
        let served = if rate <= cap {
            rate
        } else {
            // Overload: timeouts waste a fraction of the capacity that
            // grows with the excess offered load.
            let overload = rate / cap - 1.0;
            cap / (1.0 + OVERLOAD_WASTE * overload)
        };
        WebPoint {
            rate,
            goodput_mbps: served * self.mean_bytes * 8.0 / 1e6,
            served,
        }
    }

    /// Sweeps request rates, producing the Figure 9 series.
    pub fn sweep(&self, rates: impl IntoIterator<Item = f64>) -> Vec<WebPoint> {
        rates.into_iter().map(|r| self.point(r)).collect()
    }
}

/// Runs the full web server experiment for one configuration.
///
/// # Errors
///
/// Propagates measurement errors.
pub fn run_webserver(
    config: Config,
    rates: &[f64],
    packets: u64,
) -> Result<(WebServerModel, Vec<WebPoint>), SystemError> {
    let model = WebServerModel::measure(config, packets, 99)?;
    let pts = model.sweep(rates.iter().copied());
    Ok((model, pts))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Model built from the paper's own per-packet numbers must land
    /// near the paper's peak throughputs (855/712/572/269 Mb/s).
    #[test]
    fn peaks_from_paper_cpps() {
        let linux = WebServerModel::from_parts(Config::NativeLinux, 5900.0, 11166.0, 14675.0);
        let twin = WebServerModel::from_parts(Config::TwinDrivers, 9972.0, 20089.0, 14675.0);
        let domu = WebServerModel::from_parts(Config::XenGuest, 21159.0, 35905.0, 14675.0);
        assert!(
            (600.0..1100.0).contains(&linux.peak_mbps()),
            "linux peak {:.0}",
            linux.peak_mbps()
        );
        assert!(twin.peak_mbps() < linux.peak_mbps());
        assert!(domu.peak_mbps() < twin.peak_mbps());
        // Paper: "more than factor of 2" over domU. The per-packet model
        // yields ~1.5x here because it does not capture baseline Xen's
        // connection-rate collapse under load (the paper notes domU
        // "could not sustain high connection rates"); documented in
        // EXPERIMENTS.md.
        assert!(
            twin.peak_mbps() / domu.peak_mbps() > 1.4,
            "twin {:.0} vs domU {:.0}",
            twin.peak_mbps(),
            domu.peak_mbps()
        );
    }

    #[test]
    fn curve_rises_then_plateaus() {
        let m = WebServerModel::from_parts(Config::NativeLinux, 5900.0, 11166.0, 14675.0);
        let pts = m.sweep((1..=20).map(|i| i as f64 * 1000.0));
        // Linear region: goodput tracks offered rate.
        assert!((pts[1].goodput_mbps - 2.0 * pts[0].goodput_mbps).abs() < 1.0);
        // Saturation: last points below the peak and non-increasing.
        let last = pts.last().unwrap();
        assert!(last.goodput_mbps <= m.peak_mbps() + 1.0);
        let idx_cap = pts.iter().position(|p| p.served < p.rate).unwrap();
        assert!(idx_cap > 2, "saturates after a few thousand req/s");
        // Mild decline after saturation (timeout waste).
        assert!(pts[idx_cap + 2].goodput_mbps <= pts[idx_cap].goodput_mbps);
    }

    #[test]
    fn measured_models_preserve_ordering() {
        let linux = WebServerModel::measure(Config::NativeLinux, 40, 1).unwrap();
        let twin = WebServerModel::measure(Config::TwinDrivers, 40, 1).unwrap();
        let domu = WebServerModel::measure(Config::XenGuest, 40, 1).unwrap();
        assert!(linux.peak_mbps() > twin.peak_mbps());
        assert!(twin.peak_mbps() > 1.4 * domu.peak_mbps());
    }
}
