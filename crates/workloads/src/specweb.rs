//! SPECweb99 static-content file-set model (paper §6.3).
//!
//! The paper's web workload serves "a static set of files generated from
//! the file size distribution specified in the static content part of
//! SPECweb'99". That distribution has four file classes with fixed
//! access weights — 35% / 50% / 14% / 1% — each containing nine files of
//! 0.1–0.9 KB, 1–9 KB, 10–90 KB and 100–900 KB respectively, accessed
//! uniformly within a class. The mean transfer is ≈ 14.7 KB.

/// Small deterministic generator (xorshift64*) so the sampler needs no
/// external dependency; experiments stay reproducible per seed.
#[derive(Clone, Debug)]
struct SampleRng(u64);

impl SampleRng {
    fn seed_from_u64(seed: u64) -> SampleRng {
        // SplitMix64 scramble so nearby seeds diverge immediately.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        SampleRng((z ^ (z >> 31)) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn gen_range(&mut self, range: std::ops::Range<u32>) -> u32 {
        range.start + (self.next_u64() % (range.end - range.start) as u64) as u32
    }
}

/// Expected mean file size of the distribution, in bytes
/// (0.35·0.5 KB + 0.50·5 KB + 0.14·50 KB + 0.01·500 KB = 14.675 KB).
pub const SPECWEB_MEAN_BYTES: f64 = 14_675.0;

/// Class access weights (percent).
pub const CLASS_WEIGHTS: [u32; 4] = [35, 50, 14, 1];

/// Base file size per class, bytes (files are 1–9 multiples of this).
pub const CLASS_BASE_BYTES: [u64; 4] = [100, 1_000, 10_000, 100_000];

/// A generated SPECweb99-like file set plus a deterministic sampler.
#[derive(Debug)]
pub struct FileSet {
    files: Vec<u64>, // 36 file sizes, indexed class*9 + (i-1)
    rng: SampleRng,
}

impl FileSet {
    /// Builds the 36-file set and a sampler with a fixed seed
    /// (deterministic experiments).
    pub fn new(seed: u64) -> FileSet {
        let mut files = Vec::with_capacity(36);
        for base in CLASS_BASE_BYTES {
            for i in 1..=9u64 {
                files.push(base * i);
            }
        }
        FileSet {
            files,
            rng: SampleRng::seed_from_u64(seed),
        }
    }

    /// All 36 file sizes.
    pub fn files(&self) -> &[u64] {
        &self.files
    }

    /// Total size of the file set in bytes (it "fits in memory and does
    /// not stress the disk I/O subsystem").
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().sum()
    }

    /// Samples one request's file size according to the class weights.
    pub fn sample(&mut self) -> u64 {
        let p: u32 = self.rng.gen_range(0..100);
        let class = if p < 35 {
            0
        } else if p < 85 {
            1
        } else if p < 99 {
            2
        } else {
            3
        };
        let i = self.rng.gen_range(0..9) as usize;
        self.files[class * 9 + i]
    }

    /// Empirical mean of `n` samples.
    pub fn empirical_mean(&mut self, n: usize) -> f64 {
        let total: u64 = (0..n).map(|_| self.sample()).sum();
        total as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_set_shape() {
        let fs = FileSet::new(1);
        assert_eq!(fs.files().len(), 36);
        assert_eq!(fs.files()[0], 100);
        assert_eq!(fs.files()[8], 900);
        assert_eq!(fs.files()[9], 1_000);
        assert_eq!(fs.files()[35], 900_000);
        // Total ≈ 4.995 MB: fits in memory.
        assert_eq!(fs.total_bytes(), 45 * (100 + 1_000 + 10_000 + 100_000));
    }

    #[test]
    fn sampling_matches_expected_mean() {
        let mut fs = FileSet::new(42);
        let mean = fs.empirical_mean(60_000);
        let err = (mean - SPECWEB_MEAN_BYTES).abs() / SPECWEB_MEAN_BYTES;
        assert!(err < 0.12, "mean {mean:.0} deviates {err:.2} from expected");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = FileSet::new(7);
        let mut b = FileSet::new(7);
        let va: Vec<u64> = (0..100).map(|_| a.sample()).collect();
        let vb: Vec<u64> = (0..100).map(|_| b.sample()).collect();
        assert_eq!(va, vb);
    }
}
