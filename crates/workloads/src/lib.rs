//! # twin-workloads — the paper's workloads (§6)
//!
//! * [`netperf`] — the TCP streaming microbenchmark (§6.2): maximum
//!   aggregate transmit/receive throughput across five gigabit NICs;
//! * [`specweb`] — the SPECweb99 static file-set (§6.3);
//! * [`webserver`] — the knot web server + httperf open-loop client model
//!   that produces Figure 9's throughput-vs-request-rate curves.

pub mod netperf;
pub mod specweb;
pub mod webserver;

pub use netperf::{run_netperf, Direction, NetperfResult};
pub use specweb::{FileSet, SPECWEB_MEAN_BYTES};
pub use webserver::{run_webserver, WebPoint, WebServerModel};
