//! A simple kernel heap for dom0: bump allocation with size-class free
//! lists, page-aligned support for DMA-coherent allocations.

use twin_machine::{Fault, Machine, SpaceId, PAGE_SIZE};

/// Base virtual address of the dom0 kernel heap.
pub const HEAP_BASE: u64 = 0x2000_0000;

/// Maximum heap size in bytes (64 MiB of dom0 virtual space).
pub const HEAP_MAX: u64 = 64 * 1024 * 1024;

/// Dom0 kernel heap: backs `kmalloc`, sk_buff data buffers and
/// DMA-coherent ring allocations.
///
/// Allocations never cross page boundaries when `size <= PAGE_SIZE`,
/// which models the physical contiguity the NIC's DMA engine requires
/// for descriptor rings and packet buffers.
#[derive(Debug)]
pub struct Heap {
    space: SpaceId,
    next: u64,
    mapped_end: u64,
    free_lists: Vec<(u64, Vec<u64>)>, // (size class, free addrs)
    allocated: u64,
}

impl Heap {
    /// Creates an empty heap for `space`.
    pub fn new(space: SpaceId) -> Heap {
        Heap {
            space,
            next: HEAP_BASE,
            mapped_end: HEAP_BASE,
            free_lists: Vec::new(),
            allocated: 0,
        }
    }

    /// The address space this heap belongs to.
    pub fn space(&self) -> SpaceId {
        self.space
    }

    /// Total bytes currently allocated.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated
    }

    fn class_of(size: u64) -> u64 {
        let mut c = 32;
        while c < size {
            c *= 2;
        }
        c
    }

    fn ensure_mapped(&mut self, m: &mut Machine, end: u64) -> Result<(), Fault> {
        while self.mapped_end < end {
            if self.mapped_end >= HEAP_BASE + HEAP_MAX {
                return Err(Fault::OutOfMemory);
            }
            m.map_fresh(self.space, self.mapped_end, 1)?;
            self.mapped_end += PAGE_SIZE;
        }
        Ok(())
    }

    /// Allocates `size` bytes (rounded up to a power-of-two class, min
    /// 32). Allocations of a page or less never straddle pages.
    ///
    /// # Errors
    ///
    /// [`Fault::OutOfMemory`] when the heap region is exhausted.
    pub fn kmalloc(&mut self, m: &mut Machine, size: u64) -> Result<u64, Fault> {
        let class = Heap::class_of(size.max(1));
        if let Some((_, list)) = self.free_lists.iter_mut().find(|(c, _)| *c == class) {
            if let Some(addr) = list.pop() {
                self.allocated += class;
                return Ok(addr);
            }
        }
        // Bump-allocate; avoid page straddle for sub-page classes.
        let mut addr = self.next;
        if class < PAGE_SIZE {
            let end_page = (addr + class - 1) / PAGE_SIZE;
            if end_page != addr / PAGE_SIZE {
                addr = end_page * PAGE_SIZE;
            }
        } else {
            // Page-multiple classes are page-aligned.
            addr = addr.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        }
        self.ensure_mapped(m, addr + class)?;
        self.next = addr + class;
        self.allocated += class;
        Ok(addr)
    }

    /// Page-aligned allocation returning `(vaddr, machine_addr)` — models
    /// `dma_alloc_coherent`; the machine address is what the device DMA
    /// engine uses.
    ///
    /// # Errors
    ///
    /// [`Fault::OutOfMemory`] when the heap region is exhausted.
    pub fn dma_alloc_coherent(&mut self, m: &mut Machine, size: u64) -> Result<(u64, u64), Fault> {
        let vaddr = self.kmalloc(m, size.max(PAGE_SIZE))?;
        let phys = self.machine_addr(m, vaddr)?;
        Ok((vaddr, phys))
    }

    /// Translates a heap virtual address to its machine (physical)
    /// address — the `dma_map_single` primitive.
    ///
    /// # Errors
    ///
    /// Faults if the address is not mapped in the heap's space.
    pub fn machine_addr(&self, m: &Machine, vaddr: u64) -> Result<u64, Fault> {
        let t = m.translate(self.space, twin_machine::ExecMode::Guest, vaddr, false)?;
        Ok(t.entry.pfn * PAGE_SIZE + t.offset)
    }

    /// Frees an allocation of the given size (the caller remembers sizes,
    /// as kernel code does via its slab caches).
    pub fn kfree(&mut self, addr: u64, size: u64) {
        let class = Heap::class_of(size.max(1));
        self.allocated = self.allocated.saturating_sub(class);
        if let Some((_, list)) = self.free_lists.iter_mut().find(|(c, _)| *c == class) {
            list.push(addr);
        } else {
            self.free_lists.push((class, vec![addr]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twin_machine::ExecMode;

    fn mk() -> (Machine, Heap) {
        let mut m = Machine::new();
        let s = m.new_space();
        (m, Heap::new(s))
    }

    #[test]
    fn alloc_and_reuse() {
        let (mut m, mut h) = mk();
        let a = h.kmalloc(&mut m, 100).unwrap();
        let b = h.kmalloc(&mut m, 100).unwrap();
        assert_ne!(a, b);
        h.kfree(a, 100);
        let c = h.kmalloc(&mut m, 100).unwrap();
        assert_eq!(a, c, "free list reuse");
    }

    #[test]
    fn subpage_allocations_do_not_straddle() {
        let (mut m, mut h) = mk();
        for _ in 0..100 {
            let a = h.kmalloc(&mut m, 2048).unwrap();
            assert_eq!(
                a / PAGE_SIZE,
                (a + 2047) / PAGE_SIZE,
                "no straddle at {a:#x}"
            );
        }
    }

    #[test]
    fn dma_coherent_page_aligned_and_translated() {
        let (mut m, mut h) = mk();
        let (v, p) = h.dma_alloc_coherent(&mut m, 4096).unwrap();
        assert_eq!(v % PAGE_SIZE, 0);
        // Physical address corresponds: writing via virtual shows up at phys.
        m.write_u32(h.space(), ExecMode::Guest, v + 8, 0x55aa)
            .unwrap();
        assert_eq!(m.phys.read_u32(p + 8), 0x55aa);
    }

    #[test]
    fn allocated_accounting() {
        let (mut m, mut h) = mk();
        let a = h.kmalloc(&mut m, 64).unwrap();
        assert_eq!(h.allocated_bytes(), 64);
        h.kfree(a, 64);
        assert_eq!(h.allocated_bytes(), 0);
    }

    #[test]
    fn writable_memory() {
        let (mut m, mut h) = mk();
        let a = h.kmalloc(&mut m, 4096).unwrap();
        m.write_u32(h.space(), ExecMode::Guest, a, 42).unwrap();
        assert_eq!(m.read_u32(h.space(), ExecMode::Guest, a).unwrap(), 42);
    }
}
