//! Dom0 kernel model: the driver support API (the "large body of code in
//! the VM kernel", paper §3.2), timers, IRQ registration and the call
//! trace used to regenerate Table 1.

use crate::heap::Heap;
use crate::skb::{offsets, SkBuff, SkbPool};
use std::collections::BTreeMap;
use twin_machine::{CostDomain, Cpu, ExecMode, Fault, Machine, SpaceId};
use twin_net::Frame;
use twin_nic::MMIO_WINDOW;

/// Virtual address in dom0 where NIC MMIO windows are mapped
/// (`ioremap` hands out `MMIO_BASE + dev * MMIO_WINDOW`).
///
/// Deliberately *not* a multiple of 16 MiB away from the kernel heap:
/// the stlb is direct-mapped on address bits 12..24, so hot pages 16 MiB
/// apart would evict each other on every packet (collision ping-pong).
pub const MMIO_BASE: u64 = 0xE02A_0000;

/// Records which support routines the driver calls in which phase; the
/// Table 1 harness compares the `fastpath` set against the paper's ten.
///
/// This is `twin_trace::CallTrace` — the bespoke kernel-local mechanism
/// was consolidated onto the unified tracing crate. Sites that `record`
/// a call also emit a typed [`twin_trace::TraceEvent::KernelCall`] into
/// the machine's flight recorder.
pub use twin_trace::CallTrace as Trace;

/// Virtual cycles per kernel jiffy: the `mod_timer`/`jiffies_read` unit.
/// 30 000 cycles is 10 µs on the modeled 3.0 GHz Xeon — a fine-grained
/// (tickless-style) jiffy so timer deltas stay in the same numeric range
/// the driver always used while the clock underneath is cycle-accurate.
pub const CYCLES_PER_JIFFY: u64 = 30_000;

/// Timer-wheel slot count (one revolution = `WHEEL_SLOTS` jiffies).
pub const WHEEL_SLOTS: usize = 64;

/// One pending kernel timer.
#[derive(Copy, Clone, Debug)]
pub struct Timer {
    /// ISA handler address.
    pub handler: u64,
    /// Absolute **virtual cycle** at which it fires (armed by `mod_timer`
    /// as `now + delta_jiffies * CYCLES_PER_JIFFY`).
    pub expires_at: u64,
    /// Cookie passed to the handler when it fires (Linux
    /// `timer_list.data`; the e1000 watchdog stores its device index so
    /// each NIC's timer operates on its own adapter slot).
    pub data: u64,
}

impl Timer {
    /// The jiffy this timer expires in.
    fn jiffy(&self) -> u64 {
        self.expires_at / CYCLES_PER_JIFFY
    }
}

/// A single-level timer wheel keyed on virtual cycles, with a far list
/// for timers beyond one revolution. Expiry is a bucket pop — cost is
/// O(due) plus the slots the cursor walks — instead of the old
/// drain-everything-and-reinsert scan, which touched every armed timer on
/// every poll (the coarse-tick hazard: 1 000 armed watchdogs made every
/// idle poll O(1 000)).
#[derive(Clone, Debug)]
pub struct TimerWheel {
    /// Near timers, bucketed by `jiffy % WHEEL_SLOTS`.
    slots: Vec<Vec<Timer>>,
    /// Timers more than one revolution ahead; cascaded in as the cursor
    /// wraps.
    far: Vec<Timer>,
    /// The next jiffy the wheel will process: every timer expiring in an
    /// earlier jiffy has already been popped.
    cursor: u64,
    len: usize,
    /// Timers examined or moved by wheel operations — the observable cost
    /// metric the O(due) regression test asserts on.
    pub touched: u64,
}

impl Default for TimerWheel {
    fn default() -> TimerWheel {
        TimerWheel::new()
    }
}

impl TimerWheel {
    /// Creates an empty wheel at jiffy 0.
    pub fn new() -> TimerWheel {
        TimerWheel {
            slots: vec![Vec::new(); WHEEL_SLOTS],
            far: Vec::new(),
            cursor: 0,
            len: 0,
            touched: 0,
        }
    }

    /// Armed timers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no timer is armed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Arms a timer. A timer already in the past lands in the cursor's
    /// own bucket and fires on the next expiry pass.
    pub fn arm(&mut self, t: Timer) {
        self.touched += 1;
        self.len += 1;
        let j = t.jiffy().max(self.cursor);
        if j - self.cursor < WHEEL_SLOTS as u64 {
            self.slots[(j % WHEEL_SLOTS as u64) as usize].push(t);
        } else {
            self.far.push(t);
        }
    }

    /// Removes every timer matching `pred`; returns how many were
    /// removed. (The O(armed) cost is fine here: disarm is a control-path
    /// operation, unlike the per-poll expiry.)
    pub fn disarm_where<F: Fn(&Timer) -> bool>(&mut self, pred: F) -> usize {
        let before = self.len;
        for slot in &mut self.slots {
            slot.retain(|t| !pred(t));
        }
        self.far.retain(|t| !pred(t));
        self.len = self.slots.iter().map(Vec::len).sum::<usize>() + self.far.len();
        before - self.len
    }

    /// Iterates every armed timer (test observability).
    pub fn iter(&self) -> impl Iterator<Item = &Timer> {
        self.slots.iter().flatten().chain(self.far.iter())
    }

    /// The earliest armed expiry, in cycles (O(armed); used to arm the
    /// idle-step scheduler, not on the datapath).
    pub fn next_due(&self) -> Option<u64> {
        self.iter().map(|t| t.expires_at).min()
    }

    /// Moves far-list timers that are now within one revolution of the
    /// cursor into their buckets.
    fn cascade(&mut self) {
        let cursor = self.cursor;
        let mut moved = Vec::new();
        self.far.retain(|t| {
            if t.jiffy().max(cursor) - cursor < WHEEL_SLOTS as u64 {
                moved.push(*t);
                false
            } else {
                true
            }
        });
        self.touched += self.far.len() as u64 + moved.len() as u64;
        for t in moved {
            self.slots[(t.jiffy().max(cursor) % WHEEL_SLOTS as u64) as usize].push(t);
        }
    }

    /// Pops every timer with `expires_at <= now`, in expiry order within
    /// a bucket walk. Advances the cursor past fully elapsed jiffies; the
    /// current (partial) jiffy is partitioned cycle-accurately and
    /// revisited, so a timer expiring later in the same jiffy is never
    /// early or a revolution late.
    pub fn expire(&mut self, now: u64) -> Vec<Timer> {
        let mut due = Vec::new();
        if self.len == 0 {
            self.cursor = self.cursor.max(now / CYCLES_PER_JIFFY);
            return due;
        }
        let target = now / CYCLES_PER_JIFFY;
        while self.cursor < target {
            // Fully elapsed jiffy: everything bucketed for it is due;
            // same-residue timers from later revolutions stay.
            let slot = (self.cursor % WHEEL_SLOTS as u64) as usize;
            if !self.slots[slot].is_empty() {
                let entries = std::mem::take(&mut self.slots[slot]);
                self.touched += entries.len() as u64;
                for t in entries {
                    if t.expires_at <= now {
                        due.push(t);
                    } else {
                        self.slots[slot].push(t);
                    }
                }
            }
            self.cursor += 1;
            if self.cursor % WHEEL_SLOTS as u64 == 0 && !self.far.is_empty() {
                self.cascade();
            }
            // Large jumps: one full revolution visits every bucket, so
            // anything older is already handled — skip ahead.
            if target - self.cursor >= WHEEL_SLOTS as u64
                && self.slots.iter().all(Vec::is_empty)
                && self.far.is_empty()
            {
                self.cursor = target;
            }
        }
        // The partial current jiffy: cycle-accurate partition, cursor
        // stays so the bucket is revisited until the jiffy elapses.
        let slot = (target % WHEEL_SLOTS as u64) as usize;
        if !self.slots[slot].is_empty() {
            let entries = std::mem::take(&mut self.slots[slot]);
            self.touched += entries.len() as u64;
            for t in entries {
                if t.expires_at <= now {
                    due.push(t);
                } else {
                    self.slots[slot].push(t);
                }
            }
        }
        self.len -= due.len();
        due.sort_by_key(|t| t.expires_at);
        due
    }
}

/// What dom0 does with packets the driver hands to `netif_rx`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RxMode {
    /// Deliver to the local TCP/IP stack (native Linux and dom0
    /// configurations) — charges the full receive-stack cost.
    LocalStack,
    /// Bridge toward a guest backend (baseline Xen guest configuration) —
    /// charges only the bridge lookup; the backend costs are charged by
    /// the I/O-channel model.
    Bridge,
}

/// The dom0 kernel model: heap, sk_buff pools, support-routine
/// implementations, timers and IRQ plumbing.
#[derive(Debug)]
pub struct Dom0Kernel {
    /// dom0's address space.
    pub space: SpaceId,
    /// The kernel heap.
    pub heap: Heap,
    /// General sk_buff pool (driver RX buffers, netperf TX buffers).
    pub pool: SkbPool,
    /// Hypervisor-reserved pool (paper §4.3); created by the TwinDrivers
    /// setup, `None` for plain configurations.
    pub hyper_pool: Option<SkbPool>,
    /// Frames delivered to the dom0 network stack by `netif_rx`.
    pub rx_delivered: Vec<Frame>,
    /// IRQ number → ISA handler address (`request_irq`).
    pub irq_handlers: BTreeMap<u32, u64>,
    /// Pending timers, keyed on virtual cycles (`mod_timer` deltas are
    /// jiffies, converted via [`CYCLES_PER_JIFFY`]).
    pub timers: TimerWheel,
    /// Call trace for Table 1.
    pub trace: Trace,
    /// Destination of `netif_rx` packets.
    pub rx_mode: RxMode,
    /// `printk` invocations.
    pub printk_count: u64,
    /// Whether the TX queue is stopped.
    pub queue_stopped: bool,
    /// Registered net devices (addresses of netdev structs).
    pub registered_netdevs: Vec<u64>,
    /// Packets `netif_rx` has pushed into the stack since the current
    /// receive burst began (see [`Dom0Kernel::begin_stack_burst`]).
    stack_burst: u64,
    alloc_sizes: BTreeMap<u64, u64>,
}

impl Dom0Kernel {
    /// Creates the kernel model with `pool_size` preallocated 2 KiB
    /// sk_buffs.
    ///
    /// # Errors
    ///
    /// Fails if the heap cannot back the pool.
    pub fn new(m: &mut Machine, space: SpaceId, pool_size: usize) -> Result<Dom0Kernel, Fault> {
        let mut heap = Heap::new(space);
        let pool = SkbPool::preallocate(m, &mut heap, pool_size, 2048, false)?;
        Ok(Dom0Kernel {
            space,
            heap,
            pool,
            hyper_pool: None,
            rx_delivered: Vec::new(),
            irq_handlers: BTreeMap::new(),
            timers: TimerWheel::new(),
            trace: Trace::new(),
            rx_mode: RxMode::LocalStack,
            printk_count: 0,
            queue_stopped: false,
            registered_netdevs: Vec::new(),
            stack_burst: 0,
            alloc_sizes: BTreeMap::new(),
        })
    }

    /// Marks the start of one coalesced receive burst: the next
    /// `netif_rx` pays the full per-wakeup stack cost
    /// ([`twin_machine::CostParams::tcp_rx_per_packet`]); packets after
    /// it in the same burst pay only the GRO/NAPI-style marginal cost
    /// (`tcp_rx_batch_marginal`). The interrupt dispatcher calls this
    /// once per hardware interrupt, so per-packet delivery (a burst of
    /// one) is costed exactly as before.
    pub fn begin_stack_burst(&mut self) {
        self.stack_burst = 0;
    }

    /// Creates the hypervisor-reserved pool (paper §4.3).
    ///
    /// # Errors
    ///
    /// Fails on heap exhaustion.
    pub fn reserve_hypervisor_pool(&mut self, m: &mut Machine, count: usize) -> Result<(), Fault> {
        let pool = SkbPool::preallocate(m, &mut self.heap, count, 2048, true)?;
        self.hyper_pool = Some(pool);
        Ok(())
    }

    /// Frees an sk_buff into whichever pool owns it (the reference-count
    /// trick keeps hypervisor-reserved buffers out of dom0's pool).
    pub fn free_skb(&mut self, m: &Machine, skb: SkBuff) -> Result<(), Fault> {
        let flags = skb.pool_flags(m, self.space)?;
        if flags & 1 != 0 {
            if let Some(hp) = &mut self.hyper_pool {
                hp.free(skb);
                return Ok(());
            }
        }
        self.pool.free(skb);
        Ok(())
    }

    /// Timers due at virtual time `now` (cycles); pops them from the
    /// wheel in O(due), leaving unexpired timers untouched in their
    /// buckets.
    pub fn take_due_timers(&mut self, now: u64) -> Vec<Timer> {
        self.timers.expire(now)
    }

    /// Handles a support-routine call from driver code. Returns `None`
    /// when `name` is not a dom0 kernel routine (letting the caller try
    /// other dispatchers, e.g. hypervisor stubs).
    ///
    /// Cycle charges land in [`CostDomain::Dom0`] — support routines are
    /// kernel code, not driver code, matching the paper's attribution.
    pub fn handle_extern(
        &mut self,
        name: &str,
        m: &mut Machine,
        cpu: &mut Cpu,
    ) -> Option<Result<(), Fault>> {
        if !KNOWN_ROUTINES.contains(&name) {
            return None;
        }
        self.trace.record(name);
        if m.trace.enabled() {
            m.trace_event(twin_trace::TraceEvent::KernelCall {
                routine: name.to_string(),
                phase: self.trace.phase.clone(),
            });
        }
        m.meter.push_domain(CostDomain::Dom0);
        let r = self.dispatch(name, m, cpu);
        m.meter.pop_domain();
        Some(r)
    }

    fn dispatch(&mut self, name: &str, m: &mut Machine, cpu: &mut Cpu) -> Result<(), Fault> {
        use twin_isa::Reg;
        let ret = |cpu: &mut Cpu, v: u32| cpu.set_reg(Reg::Eax, v);
        match name {
            "netdev_alloc_skb" | "dev_alloc_skb" => {
                let c = m.cost.skb_alloc;
                m.meter.charge(c);
                // `e1000_sw_init` probes every init routine with null
                // args; a null netdev is that capability probe, not a
                // real allocation — handing out an skb here leaks one
                // pool slot per probe (and re-probe, on every device
                // reset). Same cycle charge either way.
                if cpu.arg(m, 0)? == 0 {
                    ret(cpu, 0);
                } else {
                    let skb = self.pool.alloc(m, self.space);
                    ret(cpu, skb.map(|s| s.0 as u32).unwrap_or(0));
                }
            }
            "dev_kfree_skb_any" | "dev_kfree_skb" | "kfree_skb" => {
                let c = m.cost.skb_alloc / 2;
                m.meter.charge(c);
                let skb = SkBuff(cpu.arg(m, 0)? as u64);
                if skb.0 != 0 {
                    self.free_skb(m, skb)?;
                }
                ret(cpu, 0);
            }
            "netif_rx" => {
                let c = match self.rx_mode {
                    // Bridging is a per-packet lookup either way; the
                    // local stack amortises its per-wakeup work across a
                    // coalesced burst.
                    RxMode::Bridge => m.cost.bridge_per_packet,
                    RxMode::LocalStack if self.stack_burst == 0 => m.cost.tcp_rx_per_packet,
                    RxMode::LocalStack => m.cost.tcp_rx_batch_marginal,
                };
                self.stack_burst += 1;
                m.meter.charge(c);
                let skb = SkBuff(cpu.arg(m, 0)? as u64);
                if skb.0 != 0 {
                    if let Some(f) = skb.parse_frame(m, self.space)? {
                        self.rx_delivered.push(f);
                    }
                    self.free_skb(m, skb)?;
                }
                ret(cpu, 0);
            }
            "dma_map_single" => {
                let c = m.cost.dma_map;
                m.meter.charge(c);
                let vaddr = cpu.arg(m, 0)? as u64;
                let t = m.translate(self.space, ExecMode::Guest, vaddr, false)?;
                ret(
                    cpu,
                    (t.entry.pfn * twin_machine::PAGE_SIZE + t.offset) as u32,
                );
            }
            "dma_map_page" => {
                let c = m.cost.dma_map;
                m.meter.charge(c);
                // The argument is already a machine address (guest page
                // chained by the hypervisor, or a prior mapping).
                let addr = cpu.arg(m, 0)?;
                ret(cpu, addr);
            }
            "dma_unmap_single" | "dma_unmap_page" => {
                let c = m.cost.dma_map;
                m.meter.charge(c);
                ret(cpu, 0);
            }
            "spin_trylock" => {
                let c = m.cost.spinlock;
                m.meter.charge(c);
                let addr = cpu.arg(m, 0)? as u64;
                let v = m.read_u32(self.space, ExecMode::Guest, addr)?;
                if v == 0 {
                    m.write_u32(self.space, ExecMode::Guest, addr, 1)?;
                    ret(cpu, 1);
                } else {
                    ret(cpu, 0);
                }
            }
            "spin_lock_irqsave" => {
                let c = m.cost.spinlock + m.cost.cli_sti;
                m.meter.charge(c);
                let addr = cpu.arg(m, 0)? as u64;
                if addr != 0 {
                    m.write_u32(self.space, ExecMode::Guest, addr, 1)?;
                }
                ret(cpu, 0);
            }
            "spin_unlock_irqrestore" => {
                let c = m.cost.spinlock;
                m.meter.charge(c);
                let addr = cpu.arg(m, 0)? as u64;
                if addr != 0 {
                    m.write_u32(self.space, ExecMode::Guest, addr, 0)?;
                }
                ret(cpu, 0);
            }
            "spin_lock_init" => {
                let addr = cpu.arg(m, 0)? as u64;
                if addr != 0 {
                    m.write_u32(self.space, ExecMode::Guest, addr, 0)?;
                }
                ret(cpu, 0);
            }
            "eth_type_trans" => {
                let c = m.cost.eth_type_trans;
                m.meter.charge(c);
                let skb = SkBuff(cpu.arg(m, 0)? as u64);
                let data = skb.data(m, self.space)?;
                let hi = m.read_virt(
                    self.space,
                    ExecMode::Guest,
                    data + 12,
                    twin_isa::Width::Byte,
                )?;
                let lo = m.read_virt(
                    self.space,
                    ExecMode::Guest,
                    data + 13,
                    twin_isa::Width::Byte,
                )?;
                let proto = (hi << 8) | lo;
                skb.set_protocol(m, self.space, proto)?;
                ret(cpu, proto);
            }
            "kmalloc" | "vmalloc" => {
                let size = cpu.arg(m, 0)? as u64;
                let addr = self.heap.kmalloc(m, size.max(1))?;
                self.alloc_sizes.insert(addr, size.max(1));
                ret(cpu, addr as u32);
            }
            "kfree" | "vfree" => {
                let addr = cpu.arg(m, 0)? as u64;
                if let Some(size) = self.alloc_sizes.remove(&addr) {
                    self.heap.kfree(addr, size);
                }
                ret(cpu, 0);
            }
            "dma_alloc_coherent" => {
                let size = cpu.arg(m, 0)? as u64;
                let out = cpu.arg(m, 1)? as u64;
                let (vaddr, machine) = self.heap.dma_alloc_coherent(m, size)?;
                if out != 0 {
                    m.write_u32(self.space, ExecMode::Guest, out, machine as u32)?;
                }
                ret(cpu, vaddr as u32);
            }
            "ioremap" => {
                let dev = cpu.arg(m, 0)?;
                ret(cpu, (MMIO_BASE + dev as u64 * MMIO_WINDOW) as u32);
            }
            "alloc_etherdev" => {
                let addr = self.heap.kmalloc(m, 256)?;
                self.alloc_sizes.insert(addr, 256);
                ret(cpu, addr as u32);
            }
            "register_netdev" => {
                let dev = cpu.arg(m, 0)? as u64;
                self.registered_netdevs.push(dev);
                ret(cpu, 0);
            }
            "request_irq" => {
                let irq = cpu.arg(m, 0)?;
                let handler = cpu.arg(m, 1)? as u64;
                self.irq_handlers.insert(irq, handler);
                ret(cpu, 0);
            }
            "mod_timer" => {
                let delta = cpu.arg(m, 0)? as u64;
                let handler = cpu.arg(m, 1)? as u64;
                let data = cpu.arg(m, 2)? as u64;
                // Re-arming replaces the matching timer only: the same
                // handler armed with different data (one watchdog per
                // NIC) coexists.
                self.timers
                    .disarm_where(|t| t.handler == handler && t.data == data);
                self.timers.arm(Timer {
                    handler,
                    expires_at: m.meter.now() + delta * CYCLES_PER_JIFFY,
                    data,
                });
                ret(cpu, 0);
            }
            "del_timer" | "del_timer_sync" => {
                let handler = cpu.arg(m, 0)? as u64;
                self.timers.disarm_where(|t| t.handler == handler);
                ret(cpu, 0);
            }
            "netif_start_queue" | "netif_wake_queue" => {
                self.queue_stopped = false;
                ret(cpu, 0);
            }
            "netif_stop_queue" => {
                self.queue_stopped = true;
                ret(cpu, 0);
            }
            "netif_queue_stopped" => {
                ret(cpu, u32::from(self.queue_stopped));
            }
            "printk" => {
                self.printk_count += 1;
                m.meter.charge(120);
                ret(cpu, 0);
            }
            "memcpy" => {
                let dst = cpu.arg(m, 0)? as u64;
                let src = cpu.arg(m, 1)? as u64;
                let n = cpu.arg(m, 2)? as u64;
                if dst != 0 && src != 0 && n > 0 {
                    let cycles = m.cost.copy_cycles(n);
                    m.meter.charge(cycles);
                    m.copy_virt(
                        (self.space, ExecMode::Guest, src),
                        (self.space, ExecMode::Guest, dst),
                        n,
                    )?;
                }
                ret(cpu, dst as u32);
            }
            "memset" => {
                let dst = cpu.arg(m, 0)? as u64;
                let val = cpu.arg(m, 1)?;
                let n = cpu.arg(m, 2)? as u64;
                if dst != 0 && n > 0 {
                    let cycles = m.cost.copy_cycles(n);
                    m.meter.charge(cycles);
                    for i in 0..n {
                        m.write_virt(
                            self.space,
                            ExecMode::Guest,
                            dst + i,
                            twin_isa::Width::Byte,
                            val,
                        )?;
                    }
                }
                ret(cpu, dst as u32);
            }
            "strcpy" => {
                let dst = cpu.arg(m, 0)? as u64;
                let src = cpu.arg(m, 1)? as u64;
                if dst != 0 && src != 0 {
                    for i in 0..64 {
                        let b = m.read_virt(
                            self.space,
                            ExecMode::Guest,
                            src + i,
                            twin_isa::Width::Byte,
                        )?;
                        m.write_virt(
                            self.space,
                            ExecMode::Guest,
                            dst + i,
                            twin_isa::Width::Byte,
                            b,
                        )?;
                        if b == 0 {
                            break;
                        }
                    }
                }
                ret(cpu, dst as u32);
            }
            "skb_reserve" => {
                let skb = SkBuff(cpu.arg(m, 0)? as u64);
                let n = cpu.arg(m, 1)?;
                if skb.0 != 0 {
                    let data = skb.data(m, self.space)? as u32;
                    m.write_u32(self.space, ExecMode::Guest, skb.0 + offsets::DATA, data + n)?;
                }
                ret(cpu, 0);
            }
            "skb_put" => {
                let skb = SkBuff(cpu.arg(m, 0)? as u64);
                let n = cpu.arg(m, 1)?;
                if skb.0 != 0 {
                    let len = skb.len(m, self.space)?;
                    skb.set_len(m, self.space, len + n)?;
                    let data = skb.data(m, self.space)?;
                    ret(cpu, (data as u32) + len);
                } else {
                    ret(cpu, 0);
                }
            }
            "jiffies_read" => ret(cpu, (m.meter.now() / CYCLES_PER_JIFFY) as u32),
            "cpu_to_le32" | "le32_to_cpu" => {
                let v = cpu.arg(m, 0)?;
                ret(cpu, v);
            }
            "mii_link_ok" | "netif_carrier_ok" | "capable" | "ethtool_op_get_link" => {
                m.meter.charge(40);
                ret(cpu, 1);
            }
            "crc32" => {
                let v = cpu.arg(m, 0)?;
                m.meter.charge(60);
                ret(cpu, v.wrapping_mul(2654435761));
            }
            // The remaining long tail: bookkeeping-only kernel services.
            _ => {
                m.meter.charge(35);
                ret(cpu, 0);
            }
        }
        Ok(())
    }
}

/// Every support routine the dom0 kernel model implements (the driver's
/// import surface). The first ten are the paper's Table 1 fast-path set.
pub const KNOWN_ROUTINES: &[&str] = &[
    // Table 1 (fast path).
    "netdev_alloc_skb",
    "dev_kfree_skb_any",
    "netif_rx",
    "dma_map_single",
    "dma_map_page",
    "dma_unmap_single",
    "dma_unmap_page",
    "spin_trylock",
    "spin_unlock_irqrestore",
    "eth_type_trans",
    // Everything else.
    "dev_kfree_skb",
    "kfree_skb",
    "dev_alloc_skb",
    "pci_enable_device",
    "pci_disable_device",
    "pci_set_master",
    "pci_request_regions",
    "pci_release_regions",
    "pci_read_config_dword",
    "pci_write_config_dword",
    "pci_read_config_word",
    "pci_write_config_word",
    "pci_set_drvdata",
    "pci_get_drvdata",
    "pci_enable_msi",
    "pci_disable_msi",
    "ioremap",
    "iounmap",
    "request_region",
    "release_region",
    "alloc_etherdev",
    "free_netdev",
    "register_netdev",
    "unregister_netdev",
    "netdev_priv",
    "netif_start_queue",
    "netif_stop_queue",
    "netif_wake_queue",
    "netif_queue_stopped",
    "netif_carrier_on",
    "netif_carrier_off",
    "netif_carrier_ok",
    "netif_device_attach",
    "netif_device_detach",
    "request_irq",
    "free_irq",
    "synchronize_irq",
    "disable_irq",
    "enable_irq",
    "kmalloc",
    "kfree",
    "vmalloc",
    "vfree",
    "dma_alloc_coherent",
    "dma_free_coherent",
    "dma_sync_single_for_cpu",
    "dma_sync_single_for_device",
    "spin_lock_init",
    "spin_lock_irqsave",
    "mutex_lock",
    "mutex_unlock",
    "init_timer",
    "mod_timer",
    "del_timer",
    "del_timer_sync",
    "round_jiffies",
    "msleep",
    "mdelay",
    "udelay",
    "schedule_work",
    "cancel_work_sync",
    "flush_scheduled_work",
    "printk",
    "memcpy",
    "memset",
    "memcmp",
    "strcpy",
    "strlen",
    "snprintf",
    "capable",
    "copy_to_user",
    "copy_from_user",
    "mii_ethtool_gset",
    "mii_ethtool_sset",
    "mii_link_ok",
    "mii_check_link",
    "generic_mii_ioctl",
    "crc32",
    "set_bit",
    "clear_bit",
    "test_bit",
    "skb_reserve",
    "skb_put",
    "skb_push",
    "skb_pull",
    "ethtool_op_get_link",
    "random32",
    "jiffies_read",
    "cpu_to_le32",
    "le32_to_cpu",
];

/// The paper's Table 1: routines called during error-free execution of
/// the transmit and receive paths of the e1000 driver.
pub const TABLE1_FASTPATH: &[&str] = &[
    "netdev_alloc_skb",
    "dev_kfree_skb_any",
    "netif_rx",
    "dma_map_single",
    "dma_map_page",
    "dma_unmap_single",
    "dma_unmap_page",
    "spin_trylock",
    "spin_unlock_irqrestore",
    "eth_type_trans",
];

/// How a support routine on the upcall path may execute when the
/// deferred-upcall engine is active (it is never consulted in synchronous
/// mode, which stays the paper's §4.2 path).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DeferClass {
    /// Always a synchronous upcall: two domain switches per call. The
    /// default for the long tail of control-path routines, where latency
    /// does not matter and correctness review does.
    Sync,
    /// The caller never consumes the result inline (frees, unmaps,
    /// unlocks), or the hypervisor can compute a provisional result
    /// locally (DMA mapping is a deterministic page translation the
    /// hypervisor already performs for the stlb): enqueue into the
    /// deferred ring and continue; dom0 executes the call — and posts the
    /// completion — at the next flush.
    Deferred,
    /// The result is consumed inline and only dom0 can produce it
    /// (allocation from dom0's free list, delivery into dom0's stack):
    /// suspend the burst via a continuation — the whole ring drains in
    /// one switch-pair, FIFO, with this call last, and the caller resumes
    /// with the routine's dom0 return value.
    Continuation,
}

/// Deferral policy and argument arity for each Table 1 routine, in
/// Table 1 order — the knob that decides, per routine, whether forcing it
/// onto the upcall path costs two switches per *call* (`Sync`), per
/// *flush* (`Deferred`), or per *suspension* (`Continuation`).
pub const TABLE1_DEFER_POLICY: &[(&str, DeferClass, usize)] = &[
    ("netdev_alloc_skb", DeferClass::Continuation, 2),
    ("dev_kfree_skb_any", DeferClass::Deferred, 1),
    ("netif_rx", DeferClass::Continuation, 1),
    ("dma_map_single", DeferClass::Deferred, 2),
    ("dma_map_page", DeferClass::Deferred, 2),
    ("dma_unmap_single", DeferClass::Deferred, 2),
    ("dma_unmap_page", DeferClass::Deferred, 2),
    ("spin_trylock", DeferClass::Continuation, 1),
    ("spin_unlock_irqrestore", DeferClass::Deferred, 2),
    ("eth_type_trans", DeferClass::Continuation, 2),
];

/// Maximum stack arguments a deferred ring entry saves (the widest
/// Table 1 routine takes two; the long tail is conservatively given
/// four).
pub const UPCALL_MAX_ARGS: usize = 4;

/// Looks up the deferral policy `(class, arity)` for a routine. Routines
/// outside Table 1 stay [`DeferClass::Sync`].
pub fn defer_policy(name: &str) -> (DeferClass, usize) {
    TABLE1_DEFER_POLICY
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, c, a)| (*c, *a))
        .unwrap_or((DeferClass::Sync, UPCALL_MAX_ARGS))
}

/// Native fast-path routines that must observe the effects of any queued
/// deferred upcalls before running (pool state for allocation, the shared
/// lock word for `spin_trylock`): the engine flushes first when the ring
/// holds a conflicting entry. Each pair is
/// `(native routine, conflicting queued routines)`. Only Table 1
/// routines can execute natively; long-tail routines reach dom0 as
/// `Sync`-class upcalls, which drain the ring outright before running.
pub const UPCALL_CONFLICTS: &[(&str, &[&str])] = &[
    (
        "netdev_alloc_skb",
        &["dev_kfree_skb_any", "dev_kfree_skb", "kfree_skb"],
    ),
    ("spin_trylock", &["spin_unlock_irqrestore"]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_routines_cover_fastpath_and_are_large() {
        for f in TABLE1_FASTPATH {
            assert!(KNOWN_ROUTINES.contains(f), "{f} missing");
        }
        assert!(KNOWN_ROUTINES.len() >= 95, "{}", KNOWN_ROUTINES.len());
    }

    #[test]
    fn defer_policy_covers_table1_in_order() {
        assert_eq!(TABLE1_DEFER_POLICY.len(), TABLE1_FASTPATH.len());
        for ((name, _, arity), fast) in TABLE1_DEFER_POLICY.iter().zip(TABLE1_FASTPATH) {
            assert_eq!(name, fast, "policy table must follow Table 1 order");
            assert!(*arity <= UPCALL_MAX_ARGS);
        }
        // Result-consuming routines must not be fire-and-forget.
        assert_eq!(defer_policy("netdev_alloc_skb").0, DeferClass::Continuation);
        assert_eq!(defer_policy("spin_trylock").0, DeferClass::Continuation);
        assert_eq!(defer_policy("dev_kfree_skb_any").0, DeferClass::Deferred);
        // The long tail stays synchronous.
        assert_eq!(defer_policy("kmalloc").0, DeferClass::Sync);
        assert_eq!(defer_policy("no_such_routine").0, DeferClass::Sync);
    }

    #[test]
    fn upcall_conflicts_reference_native_capable_routines() {
        for (native, queued) in UPCALL_CONFLICTS {
            // The barrier guards *native* execution, which only Table 1
            // routines can reach; everything else drains the ring as a
            // Sync-class upcall instead.
            assert!(TABLE1_FASTPATH.contains(native), "{native}");
            for q in *queued {
                assert!(KNOWN_ROUTINES.contains(q), "{q}");
            }
        }
    }

    #[test]
    fn trace_phases() {
        let mut t = Trace::new();
        t.enabled = true;
        t.phase = "init".into();
        t.record("kmalloc");
        t.phase = "fastpath".into();
        t.record("netif_rx");
        t.record("kmalloc"); // also on fast path now
        assert_eq!(t.names_in_phase("fastpath").len(), 2);
        assert_eq!(t.all_names().len(), 2);
        assert!(t.names_in_phase("init").contains("kmalloc"));
    }

    #[test]
    fn timers_fire_in_order() {
        let mut m = Machine::new();
        let s = m.new_space();
        let mut k = Dom0Kernel::new(&mut m, s, 4).unwrap();
        k.timers.arm(Timer {
            handler: 0x100,
            expires_at: 5 * CYCLES_PER_JIFFY,
            data: 0,
        });
        k.timers.arm(Timer {
            handler: 0x200,
            expires_at: 10 * CYCLES_PER_JIFFY,
            data: 1,
        });
        assert!(k.take_due_timers(4 * CYCLES_PER_JIFFY).is_empty());
        let due = k.take_due_timers(7 * CYCLES_PER_JIFFY);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].handler, 0x100);
        assert_eq!(k.timers.len(), 1);
    }

    fn t(handler: u64, expires_at: u64, data: u64) -> Timer {
        Timer {
            handler,
            expires_at,
            data,
        }
    }

    #[test]
    fn wheel_partitions_due_timers_at_wheel_boundaries() {
        // Timers straddling a revolution boundary (jiffy WHEEL_SLOTS - 1
        // vs WHEEL_SLOTS) and sharing a bucket residue across revolutions
        // (jiffy 2 vs jiffy 2 + WHEEL_SLOTS) must partition exactly.
        let w = WHEEL_SLOTS as u64;
        let mut wheel = TimerWheel::new();
        wheel.arm(t(0x1, (w - 1) * CYCLES_PER_JIFFY, 0));
        wheel.arm(t(0x2, w * CYCLES_PER_JIFFY, 0));
        wheel.arm(t(0x3, 2 * CYCLES_PER_JIFFY, 0));
        wheel.arm(t(0x4, (2 + w) * CYCLES_PER_JIFFY, 0)); // same residue, next rev
        assert_eq!(wheel.len(), 4);

        let due = wheel.expire(3 * CYCLES_PER_JIFFY);
        assert_eq!(due.len(), 1, "only the first-revolution residue fires");
        assert_eq!(due[0].handler, 0x3);

        let due = wheel.expire((w - 1) * CYCLES_PER_JIFFY);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].handler, 0x1);

        let due = wheel.expire(w * CYCLES_PER_JIFFY);
        assert_eq!(due.len(), 1, "boundary jiffy fires alone");
        assert_eq!(due[0].handler, 0x2);

        let due = wheel.expire((2 + w) * CYCLES_PER_JIFFY);
        assert_eq!(due.len(), 1, "second-revolution residue fires a rev later");
        assert_eq!(due[0].handler, 0x4);
        assert!(wheel.is_empty());
    }

    #[test]
    fn wheel_is_cycle_accurate_within_a_jiffy() {
        // Two timers in the same jiffy, different cycles: expiry between
        // them fires only the earlier one, and the later one still fires
        // in the same jiffy (never a revolution late).
        let mut wheel = TimerWheel::new();
        let base = 7 * CYCLES_PER_JIFFY;
        wheel.arm(t(0xa, base + 100, 0));
        wheel.arm(t(0xb, base + 900, 0));
        let due = wheel.expire(base + 500);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].handler, 0xa);
        let due = wheel.expire(base + 900);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].handler, 0xb);
    }

    #[test]
    fn wheel_rearm_from_within_a_handler_window() {
        // The watchdog pattern: the handler re-arms itself (same handler,
        // same data) while its expiry pass is being consumed — the
        // re-armed timer fires on the *next* interval, exactly once.
        let mut wheel = TimerWheel::new();
        wheel.arm(t(0x100, 100 * CYCLES_PER_JIFFY, 3));
        let due = wheel.expire(100 * CYCLES_PER_JIFFY);
        assert_eq!(due.len(), 1);
        // "Inside the handler": re-arm relative to the fire time.
        let again = Timer {
            handler: due[0].handler,
            expires_at: due[0].expires_at + 100 * CYCLES_PER_JIFFY,
            data: due[0].data,
        };
        wheel.disarm_where(|x| x.handler == again.handler && x.data == again.data);
        wheel.arm(again);
        assert!(wheel.expire(150 * CYCLES_PER_JIFFY).is_empty());
        let due = wheel.expire(200 * CYCLES_PER_JIFFY);
        assert_eq!(due.len(), 1, "re-armed timer fires once");
        assert_eq!(due[0].data, 3, "the data cookie survives the round trip");
        assert!(wheel.is_empty());
    }

    #[test]
    fn wheel_keeps_per_device_data_cookies_distinct() {
        // PR 2's contract: one watchdog per NIC — same handler, distinct
        // `data` cookies — must coexist, and re-arming one must not
        // disturb the other (the cycles-keyed rewrite preserves this).
        let mut wheel = TimerWheel::new();
        wheel.arm(t(0x100, 100 * CYCLES_PER_JIFFY, 0));
        wheel.arm(t(0x100, 100 * CYCLES_PER_JIFFY, 1));
        assert_eq!(wheel.len(), 2);
        // Re-arm device 0 only (mod_timer replacement semantics).
        wheel.disarm_where(|x| x.handler == 0x100 && x.data == 0);
        wheel.arm(t(0x100, 300 * CYCLES_PER_JIFFY, 0));
        let due = wheel.expire(100 * CYCLES_PER_JIFFY);
        assert_eq!(due.len(), 1, "only device 1's watchdog is due");
        assert_eq!(due[0].data, 1);
        let due = wheel.expire(300 * CYCLES_PER_JIFFY);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].data, 0);
    }

    #[test]
    fn wheel_expiry_is_o_due_with_a_thousand_armed_timers() {
        // The coarse-tick hazard this wheel fixes: the old
        // `take_due_timers` drained *all* timers and re-inserted the
        // unexpired ones on every poll — 1 000 armed timers made 50 idle
        // polls touch 50 000 entries. The wheel's expiry only touches
        // due timers (plus one far-list cascade per revolution).
        let mut wheel = TimerWheel::new();
        for i in 0..1_000u64 {
            // All far in the future, spread across many revolutions.
            wheel.arm(t(0x100 + i, (10_000 + i * 7) * CYCLES_PER_JIFFY, i));
        }
        let after_arm = wheel.touched;
        assert_eq!(after_arm, 1_000, "arming touches each timer once");
        // 50 idle polls, one jiffy apart, nothing due.
        for j in 1..=50u64 {
            assert!(wheel.expire(j * CYCLES_PER_JIFFY).is_empty());
        }
        let polled = wheel.touched - after_arm;
        assert!(
            polled <= 2_000,
            "idle polls touched {polled} timers (old cost: 50 x 1000 = 50000)"
        );
        assert_eq!(wheel.len(), 1_000, "nothing lost");
        // And everything still fires when its time comes.
        let due = wheel.expire(20_000 * CYCLES_PER_JIFFY);
        assert_eq!(due.len(), 1_000);
        assert!(due.windows(2).all(|w| w[0].expires_at <= w[1].expires_at));
        assert!(wheel.is_empty());
    }
}
