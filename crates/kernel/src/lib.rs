//! # twin-kernel — the Linux-like driver substrate
//!
//! The paper runs an unmodified Linux e1000 driver inside dom0 and reuses
//! the kernel's "driver support infrastructure" (§1). This crate builds
//! that substrate:
//!
//! * [`e1000`] — the network driver itself, written in twin-isa assembly
//!   (the input to the rewriter);
//! * [`support::Dom0Kernel`] — the driver support API (sk_buffs, DMA
//!   mapping, spinlocks, timers, `netif_rx`, and the ~90-routine long
//!   tail), implemented natively and dispatched through extern
//!   trampolines;
//! * [`heap`] / [`skb`] — the dom0 kernel heap and packet buffers,
//!   including the hypervisor-reserved pool of paper §4.3;
//! * [`loader`] — the module loader that places driver data in dom0 and
//!   records relocation information for the hypervisor loader (§5.2).
//!
//! The integration tests bring up the full native path: probe → open →
//! transmit through the descriptor rings → receive via the interrupt
//! handler — the baseline every TwinDrivers experiment compares against.

pub mod e1000;
pub mod heap;
pub mod loader;
pub mod skb;
pub mod support;

pub use heap::Heap;
pub use loader::{load_driver, LoadError, LoadedDriver};
pub use skb::{SkBuff, SkbPool, SKB_HDR_SIZE};
pub use support::{
    defer_policy, DeferClass, Dom0Kernel, RxMode, Timer, TimerWheel, Trace, CYCLES_PER_JIFFY,
    KNOWN_ROUTINES, MMIO_BASE, TABLE1_DEFER_POLICY, TABLE1_FASTPATH, UPCALL_CONFLICTS,
    UPCALL_MAX_ARGS, WHEEL_SLOTS,
};

use twin_machine::{run, Cpu, Env, ExecMode, Fault, Machine, SpaceId, StopReason};

/// Default dom0 kernel stack placement.
pub const DOM0_STACK_BASE: u64 = 0x3000_0000;

/// Dom0 kernel stack pages.
pub const DOM0_STACK_PAGES: u64 = 8;

/// Calls an ISA function and runs it to completion, returning `%eax`.
///
/// This is how native code (kernel, hypervisor, workload harness) invokes
/// driver entry points: push a cdecl frame, run until the return
/// sentinel.
///
/// # Errors
///
/// Propagates machine faults; returns [`Fault::EnvFault`] if the run ends
/// without returning (budget exhaustion — the VINO-style watchdog).
#[allow(clippy::too_many_arguments)] // mirrors a cdecl call site: machine + env + frame
pub fn call_function(
    m: &mut Machine,
    env: &mut dyn Env,
    space: SpaceId,
    mode: ExecMode,
    stack_top: u64,
    entry: u64,
    args: &[u32],
    budget: u64,
) -> Result<u32, Fault> {
    let mut cpu = Cpu::new(space, mode);
    cpu.set_stack(stack_top);
    cpu.push_call_frame(m, args)?;
    cpu.pc = entry;
    match run(m, &mut cpu, env, budget)? {
        StopReason::Returned => Ok(cpu.reg(twin_isa::Reg::Eax)),
        StopReason::Halted => Err(Fault::EnvFault("function halted".into())),
        StopReason::Budget => Err(Fault::EnvFault(
            "execution budget exhausted (watchdog)".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skb::SkBuff;
    use twin_isa::asm::assemble;
    use twin_isa::Width;
    use twin_machine::{PageEntry, PAGE_SIZE};
    use twin_net::{Frame, MacAddr};
    use twin_nic::{Nic, MMIO_WINDOW};

    /// Native test world: dom0 kernel + one NIC.
    struct NativeWorld {
        kernel: Dom0Kernel,
        nics: Vec<Nic>,
    }

    impl Env for NativeWorld {
        fn extern_call(&mut self, name: &str, m: &mut Machine, cpu: &mut Cpu) -> Result<(), Fault> {
            match self.kernel.handle_extern(name, m, cpu) {
                Some(r) => r,
                None => Err(Fault::UnknownExtern(name.to_string())),
            }
        }
        fn mmio_read(
            &mut self,
            m: &mut Machine,
            dev: u32,
            off: u64,
            _w: Width,
        ) -> Result<u32, Fault> {
            let _ = m;
            Ok(self.nics[dev as usize].mmio_read(off))
        }
        fn mmio_write(
            &mut self,
            m: &mut Machine,
            dev: u32,
            off: u64,
            _w: Width,
            val: u32,
        ) -> Result<(), Fault> {
            self.nics[dev as usize].mmio_write(&mut m.phys, off, val);
            Ok(())
        }
    }

    struct Setup {
        m: Machine,
        world: NativeWorld,
        dom0: SpaceId,
        driver: LoadedDriver,
        netdev: u64,
    }

    fn bring_up() -> Setup {
        let module = assemble("e1000", &e1000::source()).unwrap();
        let mut m = Machine::new();
        let dom0 = m.new_space();
        // Map the NIC MMIO window into dom0 at MMIO_BASE.
        for p in 0..(MMIO_WINDOW / PAGE_SIZE) {
            m.space_mut(dom0)
                .map(MMIO_BASE + p * PAGE_SIZE, PageEntry::mmio(0, p));
        }
        m.map_stack(dom0, DOM0_STACK_BASE, DOM0_STACK_PAGES)
            .unwrap();
        let kernel = Dom0Kernel::new(&mut m, dom0, 512).unwrap();
        let nic = Nic::new(0, MacAddr::for_guest(0));
        let mut world = NativeWorld {
            kernel,
            nics: vec![nic],
        };
        let driver =
            load_driver(&mut m, dom0, &module, 0x0800_0000, 0x2800_0000, |_| None).unwrap();

        let stack = DOM0_STACK_BASE + DOM0_STACK_PAGES * PAGE_SIZE;
        let probe = driver.entry("e1000_probe").unwrap();
        let r = call_function(
            &mut m,
            &mut world,
            dom0,
            ExecMode::Guest,
            stack,
            probe,
            &[0],
            5_000_000,
        )
        .unwrap();
        assert_eq!(r, 0, "probe succeeds");
        let netdev = world.kernel.registered_netdevs[0];
        let open = driver.entry("e1000_open").unwrap();
        let r = call_function(
            &mut m,
            &mut world,
            dom0,
            ExecMode::Guest,
            stack,
            open,
            &[netdev as u32],
            50_000_000,
        )
        .unwrap();
        assert_eq!(r, 0, "open succeeds");
        Setup {
            m,
            world,
            dom0,
            driver,
            netdev,
        }
    }

    fn stack_top() -> u64 {
        DOM0_STACK_BASE + DOM0_STACK_PAGES * PAGE_SIZE
    }

    #[test]
    fn probe_and_open_configure_the_nic() {
        let s = bring_up();
        // Rings programmed: 127 RX buffers posted.
        assert_eq!(s.world.nics[0].rx_free_descriptors(), 127);
        assert!(s.world.nics[0].tx_ring_len() == 128);
        // IRQ handler registered.
        assert_eq!(s.world.kernel.irq_handlers.len(), 1);
        // Watchdog timer armed.
        assert_eq!(s.world.kernel.timers.len(), 1);
        let adapter = s.driver.data_symbol("adapter").unwrap();
        let hw =
            s.m.read_u32(s.dom0, ExecMode::Guest, adapter + e1000::adapter::HW_ADDR)
                .unwrap();
        assert_eq!(hw as u64, MMIO_BASE);
    }

    #[test]
    fn transmit_path_sends_frames() {
        let mut s = bring_up();
        let xmit = s.driver.entry("e1000_xmit_frame").unwrap();
        for i in 0..10u64 {
            let skb = s
                .world
                .kernel
                .pool
                .alloc(&mut s.m, s.dom0)
                .expect("skb available");
            let f = Frame::data(MacAddr::for_guest(7), MacAddr::for_guest(0), 1, i);
            skb.fill_from_frame(&mut s.m, s.dom0, &f).unwrap();
            let r = call_function(
                &mut s.m,
                &mut s.world,
                s.dom0,
                ExecMode::Guest,
                stack_top(),
                xmit,
                &[skb.0 as u32, s.netdev as u32],
                1_000_000,
            )
            .unwrap();
            assert_eq!(r, 0, "xmit ok");
        }
        let sent = s.world.nics[0].take_tx_frames();
        assert_eq!(sent.len(), 10);
        assert_eq!(sent[9].seq, 9);
        assert_eq!(sent[0].dst, MacAddr::for_guest(7));
        // Driver stats updated in the shared adapter struct.
        let adapter = s.driver.data_symbol("adapter").unwrap();
        let tx_packets =
            s.m.read_u32(
                s.dom0,
                ExecMode::Guest,
                adapter + e1000::adapter::TX_PACKETS,
            )
            .unwrap();
        assert_eq!(tx_packets, 10);
    }

    #[test]
    fn transmit_batch_sends_in_order_with_one_doorbell() {
        let mut s = bring_up();
        let xmit_batch = s.driver.entry("e1000_xmit_batch").unwrap();
        // Build the skb pointer array in dom0 memory.
        let arr = s.world.kernel.heap.kmalloc(&mut s.m, 4 * 16).unwrap();
        for i in 0..16u64 {
            let skb = s.world.kernel.pool.alloc(&mut s.m, s.dom0).unwrap();
            let f = Frame::data(MacAddr::for_guest(7), MacAddr::for_guest(0), 1, i);
            skb.fill_from_frame(&mut s.m, s.dom0, &f).unwrap();
            s.m.write_u32(s.dom0, ExecMode::Guest, arr + i * 4, skb.0 as u32)
                .unwrap();
        }
        let r = call_function(
            &mut s.m,
            &mut s.world,
            s.dom0,
            ExecMode::Guest,
            stack_top(),
            xmit_batch,
            &[arr as u32, 16, s.netdev as u32],
            4_000_000,
        )
        .unwrap();
        assert_eq!(r, 16, "whole burst accepted");
        let sent = s.world.nics[0].take_tx_frames();
        assert_eq!(sent.len(), 16);
        for (i, f) in sent.iter().enumerate() {
            assert_eq!(f.seq, i as u64, "in order");
        }
        // One doorbell kick → one TXDW assertion for the whole burst.
        assert_eq!(s.world.nics[0].stats().tx_irqs, 1);
    }

    #[test]
    fn transmit_batch_stops_at_ring_capacity() {
        let mut s = bring_up();
        let xmit_batch = s.driver.entry("e1000_xmit_batch").unwrap();
        // Stop the TX engine so nothing completes: capacity is 127.
        s.world.nics[0].mmio_write(&mut s.m.phys, twin_nic::regs::TCTL, 0);
        let n = 60u64;
        let arr = s.world.kernel.heap.kmalloc(&mut s.m, 4 * n).unwrap();
        let fill = |s: &mut Setup, arr: u64| {
            for i in 0..n {
                let skb = s.world.kernel.pool.alloc(&mut s.m, s.dom0).unwrap();
                let f = Frame::data(MacAddr::for_guest(7), MacAddr::for_guest(0), 1, i);
                skb.fill_from_frame(&mut s.m, s.dom0, &f).unwrap();
                s.m.write_u32(s.dom0, ExecMode::Guest, arr + i * 4, skb.0 as u32)
                    .unwrap();
            }
        };
        let mut total = 0;
        for _ in 0..3 {
            fill(&mut s, arr);
            let r = call_function(
                &mut s.m,
                &mut s.world,
                s.dom0,
                ExecMode::Guest,
                stack_top(),
                xmit_batch,
                &[arr as u32, n as u32, s.netdev as u32],
                8_000_000,
            )
            .unwrap();
            total += r;
        }
        assert_eq!(total, 127, "accepts exactly the ring capacity, then stops");
    }

    #[test]
    fn polled_rx_batch_reaps_without_icr_read() {
        let mut s = bring_up();
        let mac = s.world.nics[0].mac();
        let frames: Vec<Frame> = (0..6)
            .map(|i| Frame::data(mac, MacAddr::for_guest(9), 3, i))
            .collect();
        assert_eq!(s.world.nics[0].deliver_batch(&mut s.m.phys, &frames), 6);
        let poll = s.driver.entry("e1000_poll_rx_batch").unwrap();
        let r = call_function(
            &mut s.m,
            &mut s.world,
            s.dom0,
            ExecMode::Guest,
            stack_top(),
            poll,
            &[s.netdev as u32],
            10_000_000,
        )
        .unwrap();
        assert_eq!(r, 6, "poll returns the reap count");
        assert_eq!(s.world.kernel.rx_delivered.len(), 6);
        assert_eq!(s.world.kernel.rx_delivered[5].seq, 5);
        // ICR untouched: the coalesced RXT0 cause is still pending
        // (open unmasked RXT0, and the polled path never reads ICR).
        assert!(s.world.nics[0].irq_asserted());
        // Ring fully replenished.
        assert_eq!(s.world.nics[0].rx_free_descriptors(), 127);
    }

    #[test]
    fn transmit_reclaims_skbs_via_clean_tx() {
        let mut s = bring_up();
        let xmit = s.driver.entry("e1000_xmit_frame").unwrap();
        let before = s.world.kernel.pool.available();
        for i in 0..50u64 {
            let skb = s.world.kernel.pool.alloc(&mut s.m, s.dom0).unwrap();
            let f = Frame::data(MacAddr::for_guest(7), MacAddr::for_guest(0), 1, i);
            skb.fill_from_frame(&mut s.m, s.dom0, &f).unwrap();
            call_function(
                &mut s.m,
                &mut s.world,
                s.dom0,
                ExecMode::Guest,
                stack_top(),
                xmit,
                &[skb.0 as u32, s.netdev as u32],
                1_000_000,
            )
            .unwrap();
        }
        // All but the final in-flight skb have been freed back.
        assert!(
            s.world.kernel.pool.available() >= before - 2,
            "pool drained: {} vs {}",
            s.world.kernel.pool.available(),
            before
        );
    }

    #[test]
    fn receive_path_delivers_to_stack() {
        let mut s = bring_up();
        let mac = s.world.nics[0].mac();
        for i in 0..5u64 {
            let f = Frame {
                dst: mac,
                src: MacAddr::for_guest(9),
                ethertype: twin_net::EtherType::Ipv4,
                payload_len: 1500,
                flow: 3,
                seq: i,
            };
            assert!(s.world.nics[0].deliver(&mut s.m.phys, &f));
        }
        assert!(s.world.nics[0].irq_asserted());
        // Dispatch the interrupt the way the kernel would.
        let handler = *s.world.kernel.irq_handlers.values().next().unwrap();
        call_function(
            &mut s.m,
            &mut s.world,
            s.dom0,
            ExecMode::Guest,
            stack_top(),
            handler,
            &[s.netdev as u32],
            10_000_000,
        )
        .unwrap();
        assert_eq!(s.world.kernel.rx_delivered.len(), 5);
        assert_eq!(s.world.kernel.rx_delivered[4].seq, 4);
        assert_eq!(s.world.kernel.rx_delivered[0].dst, mac);
        // Ring replenished: still 127 free buffers.
        assert_eq!(s.world.nics[0].rx_free_descriptors(), 127);
        let adapter = s.driver.data_symbol("adapter").unwrap();
        let rx_packets =
            s.m.read_u32(
                s.dom0,
                ExecMode::Guest,
                adapter + e1000::adapter::RX_PACKETS,
            )
            .unwrap();
        assert_eq!(rx_packets, 5);
    }

    #[test]
    fn watchdog_timer_rearms_and_reads_stats() {
        let mut s = bring_up();
        // Let 100 jiffies of virtual time elapse (probe armed the
        // watchdog with a 100-jiffy delta relative to "now").
        s.m.meter.advance_idle(101 * CYCLES_PER_JIFFY);
        let now = s.m.meter.now();
        let due = s.world.kernel.take_due_timers(now);
        assert_eq!(due.len(), 1);
        call_function(
            &mut s.m,
            &mut s.world,
            s.dom0,
            ExecMode::Guest,
            stack_top(),
            due[0].handler,
            &[due[0].data as u32],
            1_000_000,
        )
        .unwrap();
        let adapter = s.driver.data_symbol("adapter").unwrap();
        let runs =
            s.m.read_u32(
                s.dom0,
                ExecMode::Guest,
                adapter + e1000::adapter::WATCHDOG_RUNS,
            )
            .unwrap();
        assert_eq!(runs, 1);
        assert_eq!(s.world.kernel.timers.len(), 1, "watchdog re-armed");
    }

    #[test]
    fn ethtool_dispatch_via_indirect_call() {
        let mut s = bring_up();
        let dispatch = s.driver.entry("e1000_ethtool_dispatch").unwrap();
        // op 2 = get_link, returns 1 via mii_link_ok.
        let r = call_function(
            &mut s.m,
            &mut s.world,
            s.dom0,
            ExecMode::Guest,
            stack_top(),
            dispatch,
            &[2, 0],
            1_000_000,
        )
        .unwrap();
        assert_eq!(r, 1);
    }

    #[test]
    fn fastpath_trace_matches_table1() {
        let mut s = bring_up();
        s.world.kernel.trace.enabled = true;
        s.world.kernel.trace.phase = "fastpath".into();
        let xmit = s.driver.entry("e1000_xmit_frame").unwrap();
        let f = Frame::data(MacAddr::for_guest(7), MacAddr::for_guest(0), 1, 0);
        for _ in 0..2 {
            let skb = s.world.kernel.pool.alloc(&mut s.m, s.dom0).unwrap();
            skb.fill_from_frame(&mut s.m, s.dom0, &f).unwrap();
            call_function(
                &mut s.m,
                &mut s.world,
                s.dom0,
                ExecMode::Guest,
                stack_top(),
                xmit,
                &[skb.0 as u32, s.netdev as u32],
                1_000_000,
            )
            .unwrap();
        }
        let mac = s.world.nics[0].mac();
        let fr = Frame::data(mac, MacAddr::for_guest(9), 1, 0);
        s.world.nics[0].deliver(&mut s.m.phys, &fr);
        let handler = *s.world.kernel.irq_handlers.values().next().unwrap();
        call_function(
            &mut s.m,
            &mut s.world,
            s.dom0,
            ExecMode::Guest,
            stack_top(),
            handler,
            &[s.netdev as u32],
            10_000_000,
        )
        .unwrap();

        let fast = s.world.kernel.trace.names_in_phase("fastpath");
        // The error-free fast path touches no routines beyond Table 1 —
        // dma_map_page/dma_unmap_page only appear for fragmented skbs.
        for n in &fast {
            assert!(
                TABLE1_FASTPATH.contains(&n.as_str()),
                "unexpected fast-path routine {n}"
            );
        }
        assert!(fast.len() >= 8, "fast path set: {fast:?}");
    }

    #[test]
    fn fragmented_skb_uses_two_descriptors_and_map_page() {
        let mut s = bring_up();
        s.world.kernel.trace.enabled = true;
        s.world.kernel.trace.phase = "fastpath".into();
        let xmit = s.driver.entry("e1000_xmit_frame").unwrap();
        let skb = s.world.kernel.pool.alloc(&mut s.m, s.dom0).unwrap();
        // Header-only linear part (96 bytes) + a page fragment, exactly
        // like the hypervisor TX glue (paper §5.3).
        let f = Frame::data(MacAddr::for_guest(7), MacAddr::for_guest(0), 1, 0);
        skb.fill_from_frame(&mut s.m, s.dom0, &f).unwrap();
        skb.set_len(&mut s.m, s.dom0, 96).unwrap();
        let frag_page = s.m.phys.alloc_frame().unwrap() * PAGE_SIZE;
        skb.set_frag(&mut s.m, s.dom0, frag_page, f.len() - 96)
            .unwrap();
        let r = call_function(
            &mut s.m,
            &mut s.world,
            s.dom0,
            ExecMode::Guest,
            stack_top(),
            xmit,
            &[skb.0 as u32, s.netdev as u32],
            1_000_000,
        )
        .unwrap();
        assert_eq!(r, 0);
        let sent = s.world.nics[0].take_tx_frames();
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].len(), f.len(), "full length reassembled");
        assert!(s
            .world
            .kernel
            .trace
            .names_in_phase("fastpath")
            .contains("dma_map_page"));
        // Second xmit reaps and must call dma_unmap_page.
        let skb2 = s.world.kernel.pool.alloc(&mut s.m, s.dom0).unwrap();
        skb2.fill_from_frame(&mut s.m, s.dom0, &f).unwrap();
        call_function(
            &mut s.m,
            &mut s.world,
            s.dom0,
            ExecMode::Guest,
            stack_top(),
            xmit,
            &[skb2.0 as u32, s.netdev as u32],
            1_000_000,
        )
        .unwrap();
        assert!(s
            .world
            .kernel
            .trace
            .names_in_phase("fastpath")
            .contains("dma_unmap_page"));
    }

    #[test]
    fn config_paths_touch_many_more_routines_than_fastpath() {
        let mut s = bring_up();
        s.world.kernel.trace.enabled = true;
        s.world.kernel.trace.phase = "config".into();
        let swinit = s.driver.entry("e1000_sw_init").unwrap();
        call_function(
            &mut s.m,
            &mut s.world,
            s.dom0,
            ExecMode::Guest,
            stack_top(),
            swinit,
            &[],
            10_000_000,
        )
        .unwrap();
        let config = s.world.kernel.trace.names_in_phase("config");
        assert!(
            config.len() > 50,
            "config path touches {} routines",
            config.len()
        );
    }

    /// Brings up `n` NICs through the same driver image, one adapter
    /// slot each (the multi-NIC sharded datapath's kernel-level
    /// contract).
    fn bring_up_multi(n: u32) -> (Machine, NativeWorld, SpaceId, LoadedDriver, Vec<u64>) {
        let module = assemble("e1000", &e1000::source()).unwrap();
        let mut m = Machine::new();
        let dom0 = m.new_space();
        for dev in 0..n as u64 {
            for p in 0..(MMIO_WINDOW / PAGE_SIZE) {
                m.space_mut(dom0).map(
                    MMIO_BASE + dev * MMIO_WINDOW + p * PAGE_SIZE,
                    PageEntry::mmio(dev as u32, p),
                );
            }
        }
        m.map_stack(dom0, DOM0_STACK_BASE, DOM0_STACK_PAGES)
            .unwrap();
        let kernel = Dom0Kernel::new(&mut m, dom0, 512).unwrap();
        let nics = (0..n).map(|d| Nic::new(d, MacAddr::for_guest(d))).collect();
        let mut world = NativeWorld { kernel, nics };
        let driver =
            load_driver(&mut m, dom0, &module, 0x0800_0000, 0x2800_0000, |_| None).unwrap();
        let mut netdevs = Vec::new();
        for dev in 0..n {
            let probe = driver.entry("e1000_probe").unwrap();
            let r = call_function(
                &mut m,
                &mut world,
                dom0,
                ExecMode::Guest,
                stack_top(),
                probe,
                &[dev],
                5_000_000,
            )
            .unwrap();
            assert_eq!(r, 0, "probe({dev}) succeeds");
            let netdev = world.kernel.registered_netdevs[dev as usize];
            netdevs.push(netdev);
            let open = driver.entry("e1000_open").unwrap();
            let r = call_function(
                &mut m,
                &mut world,
                dom0,
                ExecMode::Guest,
                stack_top(),
                open,
                &[netdev as u32],
                50_000_000,
            )
            .unwrap();
            assert_eq!(r, 0, "open({dev}) succeeds");
        }
        (m, world, dom0, driver, netdevs)
    }

    #[test]
    fn two_nics_keep_isolated_adapter_state() {
        let (mut m, mut world, dom0, driver, netdevs) = bring_up_multi(2);
        // Both devices have independently programmed rings.
        assert_eq!(world.nics[0].rx_free_descriptors(), 127);
        assert_eq!(world.nics[1].rx_free_descriptors(), 127);
        assert_eq!(world.kernel.irq_handlers.len(), 2, "one IRQ line per NIC");
        // Transmit through the dev-id entry points, interleaved.
        let xmit = driver.entry("e1000_xmit_frame_dev").unwrap();
        for i in 0..6u64 {
            let dev = (i % 2) as u32;
            let skb = world.kernel.pool.alloc(&mut m, dom0).unwrap();
            let f = Frame::data(MacAddr::for_guest(7), MacAddr::for_guest(dev), dev + 1, i);
            skb.fill_from_frame(&mut m, dom0, &f).unwrap();
            let r = call_function(
                &mut m,
                &mut world,
                dom0,
                ExecMode::Guest,
                stack_top(),
                xmit,
                &[skb.0 as u32, netdevs[dev as usize] as u32, dev],
                1_000_000,
            )
            .unwrap();
            assert_eq!(r, 0, "xmit on dev {dev} ok");
        }
        // Each NIC saw exactly its own half, in order.
        for dev in 0..2u32 {
            let sent = world.nics[dev as usize].take_tx_frames();
            assert_eq!(sent.len(), 3, "dev {dev}");
            assert!(sent.iter().all(|f| f.flow == dev + 1));
            assert!(sent.windows(2).all(|w| w[0].seq < w[1].seq));
        }
        // Per-slot statistics never bleed across devices.
        let adapter = driver.data_symbol("adapter").unwrap();
        for dev in 0..2u64 {
            let tx_packets = m
                .read_u32(
                    dom0,
                    ExecMode::Guest,
                    adapter + dev * e1000::ADAPTER_STRIDE + e1000::adapter::TX_PACKETS,
                )
                .unwrap();
            assert_eq!(tx_packets, 3, "dev {dev} counted only its own frames");
        }
    }

    #[test]
    fn per_device_receive_via_dev_entries() {
        let (mut m, mut world, dom0, driver, netdevs) = bring_up_multi(2);
        // Deliver different bursts to each NIC, then reap per device.
        for dev in 0..2u32 {
            let mac = world.nics[dev as usize].mac();
            let frames: Vec<Frame> = (0..(3 + dev as u64))
                .map(|i| Frame::data(mac, MacAddr::for_guest(9), dev, i))
                .collect();
            assert_eq!(
                world.nics[dev as usize].deliver_batch(&mut m.phys, &frames),
                frames.len()
            );
        }
        let poll = driver.entry("e1000_poll_rx_batch_dev").unwrap();
        let mut total = 0;
        for dev in 0..2u32 {
            let r = call_function(
                &mut m,
                &mut world,
                dom0,
                ExecMode::Guest,
                stack_top(),
                poll,
                &[netdevs[dev as usize] as u32, dev],
                10_000_000,
            )
            .unwrap();
            assert_eq!(r, 3 + dev, "dev {dev} reaps its own descriptors only");
            total += r;
        }
        assert_eq!(world.kernel.rx_delivered.len() as u32, total);
        // Both rings fully replenished from their own slots.
        assert_eq!(world.nics[0].rx_free_descriptors(), 127);
        assert_eq!(world.nics[1].rx_free_descriptors(), 127);
    }

    #[test]
    fn each_nic_gets_its_own_watchdog_timer() {
        // Probe arms one watchdog per device (timer data = device
        // index); firing each one updates only its own adapter slot,
        // no matter which device the datapath selected last.
        let (mut m, mut world, dom0, driver, netdevs) = bring_up_multi(2);
        let _ = netdevs;
        assert_eq!(world.kernel.timers.len(), 2, "one watchdog per NIC");
        m.meter.advance_idle(101 * CYCLES_PER_JIFFY);
        let now = m.meter.now();
        let due = world.kernel.take_due_timers(now);
        assert_eq!(due.len(), 2);
        for t in &due {
            call_function(
                &mut m,
                &mut world,
                dom0,
                ExecMode::Guest,
                stack_top(),
                t.handler,
                &[t.data as u32],
                1_000_000,
            )
            .unwrap();
        }
        let adapter = driver.data_symbol("adapter").unwrap();
        for dev in 0..2u64 {
            let runs = m
                .read_u32(
                    dom0,
                    ExecMode::Guest,
                    adapter + dev * e1000::ADAPTER_STRIDE + e1000::adapter::WATCHDOG_RUNS,
                )
                .unwrap();
            assert_eq!(runs, 1, "dev {dev} watchdog ran exactly once");
        }
        // Both re-armed independently.
        assert_eq!(world.kernel.timers.len(), 2, "watchdogs re-armed");
    }

    #[test]
    fn set_device_selects_the_slot_for_control_path_entries() {
        // Control-path entries without a device-id argument (get_stats,
        // update_stats, close, …) operate on the slot selected through
        // `e1000_set_device` — the documented multi-NIC contract.
        let (mut m, mut world, dom0, driver, _netdevs) = bring_up_multi(2);
        let set_device = driver.entry("e1000_set_device").unwrap();
        let get_stats = driver.entry("e1000_get_stats").unwrap();
        let adapter = driver.data_symbol("adapter").unwrap();
        for dev in 0..2u32 {
            call_function(
                &mut m,
                &mut world,
                dom0,
                ExecMode::Guest,
                stack_top(),
                set_device,
                &[dev],
                100_000,
            )
            .unwrap();
            let stats_ptr = call_function(
                &mut m,
                &mut world,
                dom0,
                ExecMode::Guest,
                stack_top(),
                get_stats,
                &[0],
                100_000,
            )
            .unwrap();
            assert_eq!(
                stats_ptr as u64,
                adapter + dev as u64 * e1000::ADAPTER_STRIDE + e1000::adapter::TX_PACKETS,
                "dev {dev}'s stats block"
            );
        }
    }

    #[test]
    fn full_ring_reports_busy() {
        let mut s = bring_up();
        let xmit = s.driver.entry("e1000_xmit_frame").unwrap();
        // Stop the TX engine so descriptors never complete, then overfill.
        s.world.nics[0].mmio_write(&mut s.m.phys, twin_nic::regs::TCTL, 0);
        let mut busy = 0;
        for i in 0..200u64 {
            let Some(skb) = s.world.kernel.pool.alloc(&mut s.m, s.dom0) else {
                break;
            };
            let f = Frame::data(MacAddr::for_guest(7), MacAddr::for_guest(0), 1, i);
            skb.fill_from_frame(&mut s.m, s.dom0, &f).unwrap();
            let r = call_function(
                &mut s.m,
                &mut s.world,
                s.dom0,
                ExecMode::Guest,
                stack_top(),
                xmit,
                &[skb.0 as u32, s.netdev as u32],
                1_000_000,
            )
            .unwrap();
            if r != 0 {
                busy += 1;
                s.world.kernel.free_skb(&s.m, SkBuff(skb.0)).unwrap();
            }
        }
        assert!(busy > 0, "ring eventually reports busy");
    }
}
