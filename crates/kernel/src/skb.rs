//! sk_buff model: packet buffers living in dom0 memory.
//!
//! The layout is a fixed-offset struct in simulated memory so that both
//! the ISA driver code and native support routines manipulate the *same*
//! bytes — the paper's "single instance of driver data" (§3.2). The
//! hypervisor-reserved pool implements §4.3: "a preallocated pool of
//! buffers from dom0 heap which are reserved for use by the hypervisor
//! routines. We use a simple reference counter trick to prevent other
//! routines in the dom0 kernel from accessing these buffers."

use crate::heap::Heap;
use twin_machine::{ExecMode, Fault, Machine};
use twin_net::Frame;

/// Field offsets of the simulated `sk_buff`.
pub mod offsets {
    /// Data pointer (u32 VA in dom0).
    pub const DATA: u64 = 0;
    /// Current data length.
    pub const LEN: u64 = 4;
    /// Buffer capacity.
    pub const TRUESIZE: u64 = 8;
    /// Ethernet protocol, set by `eth_type_trans`.
    pub const PROTOCOL: u64 = 12;
    /// Owning net_device pointer.
    pub const DEV: u64 = 16;
    /// First (only) page-fragment machine address — used by the
    /// hypervisor TX path to chain guest pages (paper §5.3).
    pub const FRAG_ADDR: u64 = 20;
    /// Fragment length.
    pub const FRAG_LEN: u64 = 24;
    /// Number of fragments (0 or 1 in this model).
    pub const NR_FRAGS: u64 = 28;
    /// Pool flags: bit 0 = hypervisor-reserved (refcount trick).
    pub const POOL_FLAGS: u64 = 32;
    /// Reference count.
    pub const REFCNT: u64 = 36;
}

/// Header size of the simulated sk_buff.
pub const SKB_HDR_SIZE: u64 = 64;

/// An sk_buff handle: a dom0 virtual address plus typed accessors.
///
/// Accessors take the machine and the dom0 space/mode because the same
/// buffer may be touched from guest mode (dom0 kernel) or hypervisor mode
/// (through an SVM-translated alias).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SkBuff(pub u64);

impl SkBuff {
    fn read(self, m: &Machine, space: twin_machine::SpaceId, off: u64) -> Result<u32, Fault> {
        m.read_u32(space, ExecMode::Guest, self.0 + off)
    }

    fn write(
        self,
        m: &mut Machine,
        space: twin_machine::SpaceId,
        off: u64,
        v: u32,
    ) -> Result<(), Fault> {
        m.write_u32(space, ExecMode::Guest, self.0 + off, v)
    }

    /// Data pointer.
    pub fn data(self, m: &Machine, s: twin_machine::SpaceId) -> Result<u64, Fault> {
        Ok(self.read(m, s, offsets::DATA)? as u64)
    }

    /// Data length.
    pub fn len(self, m: &Machine, s: twin_machine::SpaceId) -> Result<u32, Fault> {
        self.read(m, s, offsets::LEN)
    }

    /// True when `len == 0`.
    pub fn is_empty(self, m: &Machine, s: twin_machine::SpaceId) -> Result<bool, Fault> {
        Ok(self.len(m, s)? == 0)
    }

    /// Sets the data length.
    pub fn set_len(self, m: &mut Machine, s: twin_machine::SpaceId, v: u32) -> Result<(), Fault> {
        self.write(m, s, offsets::LEN, v)
    }

    /// Sets the protocol field.
    pub fn set_protocol(
        self,
        m: &mut Machine,
        s: twin_machine::SpaceId,
        v: u32,
    ) -> Result<(), Fault> {
        self.write(m, s, offsets::PROTOCOL, v)
    }

    /// Pool flags (bit 0: hypervisor-reserved).
    pub fn pool_flags(self, m: &Machine, s: twin_machine::SpaceId) -> Result<u32, Fault> {
        self.read(m, s, offsets::POOL_FLAGS)
    }

    /// Fragment descriptor `(machine_addr, len)`; `nr_frags == 0` means
    /// no fragment.
    pub fn frag(self, m: &Machine, s: twin_machine::SpaceId) -> Result<Option<(u64, u32)>, Fault> {
        if self.read(m, s, offsets::NR_FRAGS)? == 0 {
            return Ok(None);
        }
        Ok(Some((
            self.read(m, s, offsets::FRAG_ADDR)? as u64,
            self.read(m, s, offsets::FRAG_LEN)?,
        )))
    }

    /// Attaches a single page fragment (hypervisor TX path).
    pub fn set_frag(
        self,
        m: &mut Machine,
        s: twin_machine::SpaceId,
        machine_addr: u64,
        len: u32,
    ) -> Result<(), Fault> {
        self.write(m, s, offsets::FRAG_ADDR, machine_addr as u32)?;
        self.write(m, s, offsets::FRAG_LEN, len)?;
        self.write(m, s, offsets::NR_FRAGS, 1)
    }

    /// Clears the fragment.
    pub fn clear_frag(self, m: &mut Machine, s: twin_machine::SpaceId) -> Result<(), Fault> {
        self.write(m, s, offsets::NR_FRAGS, 0)
    }

    /// Writes a frame's wire prefix into the data buffer and sets `len`.
    pub fn fill_from_frame(
        self,
        m: &mut Machine,
        s: twin_machine::SpaceId,
        frame: &Frame,
    ) -> Result<(), Fault> {
        let data = self.data(m, s)?;
        for (i, b) in frame.wire_prefix().iter().enumerate() {
            m.write_virt(
                s,
                ExecMode::Guest,
                data + i as u64,
                twin_isa::Width::Byte,
                *b as u32,
            )?;
        }
        self.set_len(m, s, frame.len())
    }

    /// Parses the frame stored in the data buffer.
    pub fn parse_frame(
        self,
        m: &Machine,
        s: twin_machine::SpaceId,
    ) -> Result<Option<Frame>, Fault> {
        let data = self.data(m, s)?;
        let len = self.len(m, s)?;
        let mut prefix = [0u8; 26];
        for (i, b) in prefix.iter_mut().enumerate() {
            *b = m.read_virt(s, ExecMode::Guest, data + i as u64, twin_isa::Width::Byte)? as u8;
        }
        Ok(Frame::from_wire_prefix(&prefix, len))
    }
}

/// A pool of preallocated sk_buffs in dom0 memory.
#[derive(Debug)]
pub struct SkbPool {
    free: Vec<SkBuff>,
    total: usize,
    data_size: u32,
    hypervisor_reserved: bool,
    /// Allocation failures (pool empty).
    pub alloc_failures: u64,
}

impl SkbPool {
    /// Preallocates `count` buffers with `data_size`-byte data areas from
    /// the dom0 heap. When `hypervisor_reserved` is set, buffers carry
    /// pool-flag bit 0 and a reference count of 1, the paper's trick to
    /// keep the dom0 kernel's hands off them.
    ///
    /// # Errors
    ///
    /// Propagates heap exhaustion.
    pub fn preallocate(
        m: &mut Machine,
        heap: &mut Heap,
        count: usize,
        data_size: u32,
        hypervisor_reserved: bool,
    ) -> Result<SkbPool, Fault> {
        let mut free = Vec::with_capacity(count);
        let space = heap.space();
        for _ in 0..count {
            let hdr = heap.kmalloc(m, SKB_HDR_SIZE)?;
            let data = heap.kmalloc(m, data_size as u64)?;
            let skb = SkBuff(hdr);
            skb.write(m, space, offsets::DATA, data as u32)?;
            skb.write(m, space, offsets::TRUESIZE, data_size)?;
            skb.write(m, space, offsets::LEN, 0)?;
            skb.write(
                m,
                space,
                offsets::POOL_FLAGS,
                u32::from(hypervisor_reserved),
            )?;
            skb.write(m, space, offsets::REFCNT, 1)?;
            free.push(skb);
        }
        Ok(SkbPool {
            free,
            total: count,
            data_size,
            hypervisor_reserved,
            alloc_failures: 0,
        })
    }

    /// Pops a buffer, resetting its length and fragment state.
    pub fn alloc(&mut self, m: &mut Machine, space: twin_machine::SpaceId) -> Option<SkBuff> {
        match self.free.pop() {
            Some(skb) => {
                skb.set_len(m, space, 0).ok()?;
                skb.clear_frag(m, space).ok()?;
                Some(skb)
            }
            None => {
                self.alloc_failures += 1;
                None
            }
        }
    }

    /// Returns a buffer to the pool.
    ///
    /// # Panics
    ///
    /// Panics on pool overflow (double free — a simulator bug).
    pub fn free(&mut self, skb: SkBuff) {
        assert!(self.free.len() < self.total, "skb double free");
        self.free.push(skb);
    }

    /// Buffers currently available.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Pool capacity.
    pub fn capacity(&self) -> usize {
        self.total
    }

    /// Data area size.
    pub fn data_size(&self) -> u32 {
        self.data_size
    }

    /// Whether this is the hypervisor-reserved pool.
    pub fn is_hypervisor_reserved(&self) -> bool {
        self.hypervisor_reserved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twin_net::MacAddr;

    fn mk() -> (Machine, Heap) {
        let mut m = Machine::new();
        let s = m.new_space();
        (m, Heap::new(s))
    }

    #[test]
    fn pool_alloc_free_cycle() {
        let (mut m, mut h) = mk();
        let space = h.space();
        let mut pool = SkbPool::preallocate(&mut m, &mut h, 4, 2048, false).unwrap();
        assert_eq!(pool.available(), 4);
        let a = pool.alloc(&mut m, space).unwrap();
        let b = pool.alloc(&mut m, space).unwrap();
        assert_ne!(a, b);
        assert_eq!(pool.available(), 2);
        pool.free(a);
        assert_eq!(pool.available(), 3);
        // Exhaustion counts failures.
        let _ = pool.alloc(&mut m, space).unwrap();
        let _ = pool.alloc(&mut m, space).unwrap();
        let _ = pool.alloc(&mut m, space).unwrap();
        assert!(pool.alloc(&mut m, space).is_none());
        assert_eq!(pool.alloc_failures, 1);
    }

    #[test]
    fn reserved_pool_flags() {
        let (mut m, mut h) = mk();
        let space = h.space();
        let mut pool = SkbPool::preallocate(&mut m, &mut h, 2, 2048, true).unwrap();
        let skb = pool.alloc(&mut m, space).unwrap();
        assert_eq!(skb.pool_flags(&m, space).unwrap() & 1, 1);
        assert!(pool.is_hypervisor_reserved());
    }

    #[test]
    fn frame_roundtrip_through_skb() {
        let (mut m, mut h) = mk();
        let space = h.space();
        let mut pool = SkbPool::preallocate(&mut m, &mut h, 1, 2048, false).unwrap();
        let skb = pool.alloc(&mut m, space).unwrap();
        let f = Frame::data(MacAddr::for_guest(1), MacAddr::for_guest(2), 9, 77);
        skb.fill_from_frame(&mut m, space, &f).unwrap();
        let g = skb.parse_frame(&m, space).unwrap().unwrap();
        assert_eq!(g, f);
        assert_eq!(skb.len(&m, space).unwrap(), f.len());
    }

    #[test]
    fn fragment_roundtrip() {
        let (mut m, mut h) = mk();
        let space = h.space();
        let mut pool = SkbPool::preallocate(&mut m, &mut h, 1, 256, false).unwrap();
        let skb = pool.alloc(&mut m, space).unwrap();
        assert_eq!(skb.frag(&m, space).unwrap(), None);
        skb.set_frag(&mut m, space, 0x12000, 1404).unwrap();
        assert_eq!(skb.frag(&m, space).unwrap(), Some((0x12000, 1404)));
        skb.clear_frag(&mut m, space).unwrap();
        assert_eq!(skb.frag(&m, space).unwrap(), None);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let (mut m, mut h) = mk();
        let space = h.space();
        let mut pool = SkbPool::preallocate(&mut m, &mut h, 1, 256, false).unwrap();
        let skb = pool.alloc(&mut m, space).unwrap();
        pool.free(skb);
        pool.free(skb);
    }
}
