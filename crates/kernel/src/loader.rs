//! The dom0 module loader (paper §5.2): places driver data in dom0
//! memory, links text, applies data relocations, and *saves the
//! relocation information* that the hypervisor loader later needs to
//! resolve the hypervisor instance's data references to dom0 addresses.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use twin_isa::{Module, INSN_SIZE};
use twin_machine::{ExecMode, Fault, ImageId, LinkError, Machine, SpaceId, PAGE_SIZE};

/// Error from driver loading.
#[derive(Debug)]
pub enum LoadError {
    /// Machine-level fault while mapping or writing data pages.
    Fault(Fault),
    /// Unresolved symbol during text linking.
    Link(LinkError),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Fault(e) => write!(f, "load fault: {e}"),
            LoadError::Link(e) => write!(f, "load link error: {e}"),
        }
    }
}

impl Error for LoadError {}

impl From<Fault> for LoadError {
    fn from(e: Fault) -> LoadError {
        LoadError::Fault(e)
    }
}

impl From<LinkError> for LoadError {
    fn from(e: LinkError) -> LoadError {
        LoadError::Link(e)
    }
}

/// A driver loaded into dom0: image, entry points and the saved
/// relocation information (symbol → dom0 address).
#[derive(Debug)]
pub struct LoadedDriver {
    /// The linked code image.
    pub image: ImageId,
    /// Code base address.
    pub code_base: u64,
    /// Data base address in dom0.
    pub data_base: u64,
    /// Data symbol → absolute dom0 address ("driver relocation
    /// information", paper §5.2).
    pub data_symbols: BTreeMap<String, u64>,
    /// Exported function → code address.
    pub entries: BTreeMap<String, u64>,
    /// Number of instructions in the image.
    pub text_len: usize,
}

impl LoadedDriver {
    /// Address of an exported function.
    pub fn entry(&self, name: &str) -> Option<u64> {
        self.entries.get(name).copied()
    }

    /// dom0 address of a data symbol.
    pub fn data_symbol(&self, name: &str) -> Option<u64> {
        self.data_symbols.get(name).copied()
    }

    /// End of the code image (exclusive).
    pub fn code_end(&self) -> u64 {
        self.code_base + self.text_len as u64 * INSN_SIZE
    }
}

/// Loads `module` into `space`: data section at `data_base` (pages are
/// mapped and filled), text linked at `code_base`. `extra` resolves
/// additional symbols (e.g. `stlb` for rewritten modules); unresolved
/// externs become trampolines automatically.
///
/// Data relocations referring to text labels resolve to **this image's**
/// code addresses; in the twin setup the VM instance is loaded first, so
/// shared function-pointer tables hold VM-instance addresses, exactly as
/// the paper requires for `stlb_call` translation.
///
/// # Errors
///
/// Returns [`LoadError`] on mapping faults or unresolved symbols.
pub fn load_driver<F>(
    m: &mut Machine,
    space: SpaceId,
    module: &Module,
    code_base: u64,
    data_base: u64,
    mut extra: F,
) -> Result<LoadedDriver, LoadError>
where
    F: FnMut(&str) -> Option<u64>,
{
    // Map and fill the data section.
    let len = module.data.bytes.len() as u64;
    if len > 0 {
        let pages = len.div_ceil(PAGE_SIZE);
        m.map_fresh(space, data_base, pages)?;
        for (i, b) in module.data.bytes.iter().enumerate() {
            m.write_virt(
                space,
                ExecMode::Guest,
                data_base + i as u64,
                twin_isa::Width::Byte,
                *b as u32,
            )?;
        }
    }
    let data_symbols: BTreeMap<String, u64> = module
        .data
        .symbols
        .iter()
        .map(|(n, off)| (n.clone(), data_base + off))
        .collect();

    // Link text: data symbols, then caller's resolver.
    let image = m.load_image(module, code_base, |name| {
        data_symbols.get(name).copied().or_else(|| extra(name))
    })?;

    // Apply data relocations (function-pointer tables, symbol slots).
    for r in &module.data.relocs {
        let addr = if let Some(idx) = module.labels.get(&r.symbol) {
            code_base + *idx as u64 * INSN_SIZE
        } else if let Some(a) = data_symbols.get(&r.symbol) {
            *a
        } else if let Some(a) = extra(&r.symbol) {
            a
        } else {
            return Err(LoadError::Link(LinkError {
                symbol: r.symbol.clone(),
                module: module.name.clone(),
            }));
        };
        m.write_u32(space, ExecMode::Guest, data_base + r.offset, addr as u32)?;
    }

    let entries = m.image(image).exports.clone();
    Ok(LoadedDriver {
        image,
        code_base,
        data_base,
        data_symbols,
        entries,
        text_len: m.image(image).insns.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use twin_isa::asm::assemble;

    #[test]
    fn loads_data_and_patches_relocs() {
        let module = assemble(
            "t",
            r#"
            .text
            .globl f
        f:
            ret
            .data
        table:
            .long f
            .long value
        value:
            .long 1234
        "#,
        )
        .unwrap();
        let mut m = Machine::new();
        let space = m.new_space();
        let d = load_driver(&mut m, space, &module, 0x0800_0000, 0x2400_0000, |_| None).unwrap();
        assert_eq!(d.entry("f"), Some(0x0800_0000));
        assert_eq!(d.data_symbol("value"), Some(0x2400_0008));
        // Reloc slots hold absolute addresses now.
        assert_eq!(
            m.read_u32(space, ExecMode::Guest, 0x2400_0000).unwrap(),
            0x0800_0000
        );
        assert_eq!(
            m.read_u32(space, ExecMode::Guest, 0x2400_0004).unwrap(),
            0x2400_0008
        );
        assert_eq!(
            m.read_u32(space, ExecMode::Guest, 0x2400_0008).unwrap(),
            1234
        );
    }

    #[test]
    fn unresolved_reloc_is_an_error() {
        let module = assemble("t", ".text\nf:\n ret\n .data\nx:\n .long missing\n").unwrap();
        let mut m = Machine::new();
        let space = m.new_space();
        let e = load_driver(&mut m, space, &module, 0, 0x2400_0000, |_| None).unwrap_err();
        assert!(matches!(e, LoadError::Link(_)));
    }
}
