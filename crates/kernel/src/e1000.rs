//! The e1000 network driver, written in twin-isa assembly.
//!
//! This is the "guest OS driver" the whole paper revolves around: the
//! rewriter derives the hypervisor instance from this source, exactly as
//! the paper compiles the Linux e1000 driver to assembly and rewrites it
//! (§5.1). The structure mirrors the real driver:
//!
//! * `e1000_xmit_fill` — the descriptor-fill half of transmit (map the
//!   buffer(s) for DMA, write descriptors, bookkeeping — no doorbell);
//! * `e1000_xmit_frame` — take the TX lock, reap completed descriptors
//!   (`e1000_clean_tx`), fill one packet, bump `TDT` with one MMIO write;
//! * `e1000_xmit_batch` — the burst entry: one lock acquisition, one reap
//!   pass, N fills, **one** `TDT` doorbell for the whole burst;
//! * `e1000_intr` → `e1000_clean_rx` — read `ICR`, reap every `DD`
//!   receive descriptor in one pass, `eth_type_trans`, `netif_rx`,
//!   replenish buffers, bump `RDT` once;
//! * `e1000_poll_rx_batch` — NAPI-style polled receive: reap without an
//!   `ICR` read, for callers that already coalesced the interrupt;
//! * `e1000_poll_rx_budget` → `e1000_clean_rx_budget` — the budgeted
//!   NAPI poll pass (the real `e1000_clean` weight loop): reap at most
//!   `budget` descriptors, so one overloaded device cannot hold the
//!   softirq context for an unbounded pass; the caller re-arms the
//!   interrupt when a pass drains below budget;
//! * probe/open/close/watchdog/ethtool paths that call the long tail of
//!   kernel support routines (the paper counts 97 for the real driver —
//!   only the ten in Table 1 appear on the error-free TX/RX path).
//!
//! The adapter structs live in the data section, so in the TwinDrivers
//! configuration they reside in dom0 memory and are shared by both driver
//! instances (paper §3.2).
//!
//! **Multi-NIC:** the data section holds [`MAX_NICS`] adapter slots of
//! [`ADAPTER_STRIDE`] bytes, and `cur_adapter` points at the active slot
//! (the same indirection a real driver performs with `netdev_priv`).
//! `e1000_probe(dev)` selects slot `dev`, and the `*_dev` entry points
//! (`e1000_xmit_frame_dev`, `e1000_xmit_batch_dev`,
//! `e1000_poll_rx_batch_dev`, `e1000_intr_dev`) take a trailing device id
//! that re-selects the slot before tail-jumping into the shared body, so
//! one driver image serves N NICs with fully isolated per-device state.
//! The classic entries are untouched — single-NIC costs are identical.
//!
//! Control-path entries without a device argument (`e1000_close`,
//! `e1000_get_stats`, `e1000_set_mac`, `e1000_update_stats`, …) operate
//! on the slot selected through `e1000_set_device(dev)`; the watchdog is
//! armed once per device with the device index as its timer data, so
//! each NIC's periodic link check runs against its own slot no matter
//! what the fast path selected last.

/// Number of descriptors per ring (one 4 KiB page of 16-byte descriptors
/// would be 256; we use 128 and a 2 KiB ring, still page-contiguous).
pub const RING_SIZE: u32 = 128;

/// Maximum NICs one driver image can serve: the `.data` section reserves
/// this many adapter slots (the paper's testbed drove 5 NICs from one
/// driver; we round up to a power of two).
pub const MAX_NICS: usize = 8;

/// Bytes between consecutive adapter slots in the `adapter` array
/// (`adapter + dev * ADAPTER_STRIDE` is device `dev`'s struct).
pub const ADAPTER_STRIDE: u64 = 128;

/// Adapter struct field offsets (see the `.data` section in [`source`]).
pub mod adapter {
    /// MMIO base VA (dom0 mapping of the register window).
    pub const HW_ADDR: u64 = 0;
    /// net_device pointer.
    pub const NETDEV: u64 = 4;
    /// TX ring VA.
    pub const TX_RING: u64 = 8;
    /// TX ring machine address.
    pub const TX_RING_DMA: u64 = 12;
    /// Next TX descriptor to use.
    pub const TX_NEXT_USE: u64 = 20;
    /// Next TX descriptor to reap.
    pub const TX_NEXT_CLEAN: u64 = 24;
    /// RX ring VA.
    pub const RX_RING: u64 = 28;
    /// RX ring machine address.
    pub const RX_RING_DMA: u64 = 32;
    /// RDT shadow.
    pub const RX_NEXT_USE: u64 = 40;
    /// Next RX descriptor to reap.
    pub const RX_NEXT_CLEAN: u64 = 44;
    /// TX spinlock word.
    pub const TX_LOCK: u64 = 48;
    /// VA of the `skb*[RING_SIZE]` TX bookkeeping array.
    pub const TX_SKB: u64 = 52;
    /// VA of the RX bookkeeping array.
    pub const RX_SKB: u64 = 56;
    /// Stats: packets transmitted.
    pub const TX_PACKETS: u64 = 60;
    /// Stats: bytes transmitted.
    pub const TX_BYTES: u64 = 64;
    /// Stats: packets received.
    pub const RX_PACKETS: u64 = 68;
    /// Stats: bytes received.
    pub const RX_BYTES: u64 = 72;
    /// Stats: TX errors (ring full).
    pub const TX_ERRORS: u64 = 76;
    /// Stats: RX errors (allocation failures).
    pub const RX_ERRORS: u64 = 80;
    /// Watchdog invocations.
    pub const WATCHDOG_RUNS: u64 = 84;
    /// Interrupt count.
    pub const IRQ_COUNT: u64 = 88;
    /// Hardware stats mirror (GPRC/GPTC/MPC), filled by the watchdog.
    pub const HW_STATS: u64 = 100;
    /// Checksum-context scratch word (partial pseudo-header sum).
    pub const CSUM_SCRATCH: u64 = 112;
    /// Cached PHY BMSR, refreshed by the watchdog.
    pub const PHY_STATUS: u64 = 116;
    /// Frames delivered by the most recent `e1000_clean_rx` pass.
    pub const RX_REAPED: u64 = 120;
}

/// Returns the driver's assembly source.
pub fn source() -> String {
    let fast_externs = "\
    .extern netdev_alloc_skb
    .extern dev_kfree_skb_any
    .extern netif_rx
    .extern dma_map_single
    .extern dma_map_page
    .extern dma_unmap_single
    .extern dma_unmap_page
    .extern spin_trylock
    .extern spin_unlock_irqrestore
    .extern eth_type_trans
";
    let init_externs: String = INIT_SUPPORT_ROUTINES
        .iter()
        .map(|n| format!("    .extern {n}\n"))
        .collect();

    // A config-path function that exercises the long tail of kernel
    // support routines once each (the real driver touches ~97 routines
    // across its init / config / error paths).
    let mut sw_init = String::from(
        "
    .globl e1000_sw_init
e1000_sw_init:
    pushl %ebp
    movl %esp, %ebp
",
    );
    for n in INIT_SUPPORT_ROUTINES {
        // Skip the ones called with real arguments elsewhere.
        if CALLED_WITH_ARGS.contains(n) {
            continue;
        }
        sw_init.push_str(&format!("    pushl $0\n    call {n}\n    addl $4, %esp\n"));
    }
    sw_init.push_str("    popl %ebp\n    ret\n");

    format!("{fast_externs}{init_externs}{CODE}{sw_init}{DATA}")
}

/// Support routines referenced by the init/config/error paths.
pub const INIT_SUPPORT_ROUTINES: &[&str] = &[
    "pci_enable_device",
    "pci_disable_device",
    "pci_set_master",
    "pci_request_regions",
    "pci_release_regions",
    "pci_read_config_dword",
    "pci_write_config_dword",
    "pci_read_config_word",
    "pci_write_config_word",
    "pci_set_drvdata",
    "pci_get_drvdata",
    "pci_enable_msi",
    "pci_disable_msi",
    "ioremap",
    "iounmap",
    "request_region",
    "release_region",
    "alloc_etherdev",
    "free_netdev",
    "register_netdev",
    "unregister_netdev",
    "netdev_priv",
    "netif_start_queue",
    "netif_stop_queue",
    "netif_wake_queue",
    "netif_queue_stopped",
    "netif_carrier_on",
    "netif_carrier_off",
    "netif_carrier_ok",
    "netif_device_attach",
    "netif_device_detach",
    "request_irq",
    "free_irq",
    "synchronize_irq",
    "disable_irq",
    "enable_irq",
    "kmalloc",
    "kfree",
    "vmalloc",
    "vfree",
    "dma_alloc_coherent",
    "dma_free_coherent",
    "dma_sync_single_for_cpu",
    "dma_sync_single_for_device",
    "spin_lock_init",
    "spin_lock_irqsave",
    "mutex_lock",
    "mutex_unlock",
    "init_timer",
    "mod_timer",
    "del_timer",
    "del_timer_sync",
    "round_jiffies",
    "msleep",
    "mdelay",
    "udelay",
    "schedule_work",
    "cancel_work_sync",
    "flush_scheduled_work",
    "printk",
    "memcpy",
    "memset",
    "memcmp",
    "strcpy",
    "strlen",
    "snprintf",
    "capable",
    "copy_to_user",
    "copy_from_user",
    "mii_ethtool_gset",
    "mii_ethtool_sset",
    "mii_link_ok",
    "mii_check_link",
    "generic_mii_ioctl",
    "crc32",
    "set_bit",
    "clear_bit",
    "test_bit",
    "skb_reserve",
    "skb_put",
    "skb_push",
    "skb_pull",
    "dev_alloc_skb",
    "ethtool_op_get_link",
    "random32",
    "jiffies_read",
    "cpu_to_le32",
    "le32_to_cpu",
];

/// Routines that the structured driver code calls with meaningful
/// arguments (so `e1000_sw_init` does not double-call them blindly).
const CALLED_WITH_ARGS: &[&str] = &[
    "pci_enable_device",
    "pci_set_master",
    "pci_request_regions",
    "pci_read_config_dword",
    "ioremap",
    "alloc_etherdev",
    "dma_alloc_coherent",
    "kmalloc",
    "spin_lock_init",
    "init_timer",
    "mod_timer",
    "del_timer",
    "request_irq",
    "register_netdev",
    "netif_carrier_on",
    "netif_carrier_ok",
    "netif_start_queue",
    "netif_stop_queue",
    "printk",
    "mii_ethtool_gset",
    "mii_link_ok",
    "memset",
];

const CODE: &str = r#"
    .text

# ---------------------------------------------------------------------
# e1000_fill_desc(idx, buf, len, cmd): write one TX descriptor.
# ---------------------------------------------------------------------
    .globl e1000_fill_desc
e1000_fill_desc:
    pushl %ebp
    movl %esp, %ebp
    movl cur_adapter, %ecx
    movl 8(%ecx), %ecx          # tx_ring
    movl 8(%ebp), %eax          # idx
    shll $4, %eax
    addl %eax, %ecx             # desc
    movl 12(%ebp), %eax
    movl %eax, (%ecx)           # buffer address
    movl 16(%ebp), %eax
    movl %eax, 8(%ecx)          # length
    movl 20(%ebp), %eax
    movb %eax, 11(%ecx)         # cmd
    movb $0, 12(%ecx)           # clear status
    popl %ebp
    ret

# ---------------------------------------------------------------------
# e1000_clean_tx(): reap DD descriptors, unmap and free skbs.
# Caller holds the TX lock.
# ---------------------------------------------------------------------
    .globl e1000_clean_tx
e1000_clean_tx:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    pushl %esi
    pushl %edi
    movl cur_adapter, %ebx
    movl 24(%ebx), %esi         # next_clean
.Lctx_loop:
    cmpl 20(%ebx), %esi         # caught up with next_use?
    je .Lctx_done
    movl 8(%ebx), %ecx
    movl %esi, %eax
    shll $4, %eax
    addl %eax, %ecx             # desc
    movzbl 12(%ecx), %eax
    testl $1, %eax              # DD set?
    je .Lctx_done
    movb $0, 12(%ecx)
    movl 52(%ebx), %ecx         # tx_skb array
    movl %esi, %eax
    shll $2, %eax
    addl %eax, %ecx
    movl (%ecx), %edi           # skb (0 for fragment slots)
    movl $0, (%ecx)
    cmpl $0, %edi
    je .Lctx_next
    pushl 4(%edi)
    pushl (%edi)
    call dma_unmap_single
    addl $8, %esp
    movl 28(%edi), %eax         # nr_frags
    cmpl $0, %eax
    je .Lctx_free
    pushl 24(%edi)
    pushl 20(%edi)
    call dma_unmap_page
    addl $8, %esp
.Lctx_free:
    pushl %edi
    call dev_kfree_skb_any
    addl $4, %esp
.Lctx_next:
    incl %esi
    andl $127, %esi
    jmp .Lctx_loop
.Lctx_done:
    movl %esi, 24(%ebx)
    popl %edi
    popl %esi
    popl %ebx
    popl %ebp
    ret

# ---------------------------------------------------------------------
# e1000_xmit_fill(skb) -> 0 ok, 1 no-descriptor/runt.
# The descriptor-fill half of transmit: maps the buffer(s), writes the
# descriptor(s) and updates bookkeeping, but does NOT touch TDT. The
# caller holds the TX lock and issues the doorbell, so a burst of fills
# shares a single posted MMIO write.
# ---------------------------------------------------------------------
    .globl e1000_xmit_fill
e1000_xmit_fill:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    pushl %esi
    pushl %edi
    movl cur_adapter, %ebx
    movl 8(%ebp), %edi          # skb
    movl 20(%ebx), %esi         # next_use
    # free descriptors = (next_clean - next_use - 1) mod ring; a packet
    # needs 1 + nr_frags slots (a fragmented packet takes two, so the
    # single-slot collision test would let a burst lap the ring)
    movl 24(%ebx), %eax
    subl %esi, %eax
    decl %eax
    andl $127, %eax
    movl 28(%edi), %ecx         # nr_frags
    incl %ecx                   # descriptors needed
    cmpl %ecx, %eax
    jl .Lfill_full
    # sanity: reject runt frames (below the Ethernet minimum)
    movl 4(%edi), %eax
    addl 24(%edi), %eax         # linear + fragment bytes
    cmpl $14, %eax
    jl .Lfill_full
    # pseudo-header checksum over the first 16 bytes, folded into the
    # hardware checksum context (the real driver prepares a context
    # descriptor with exactly this kind of partial sum)
    movl (%edi), %edx           # skb->data
    movl $0, %eax
    movl $4, %ecx
.Lfill_csum:
    addl (%edx), %eax
    addl $4, %edx
    decl %ecx
    jne .Lfill_csum
    movl %eax, %edx
    shrl $16, %edx
    addl %edx, %eax             # fold carries
    andl $0xffff, %eax
    movl %eax, 112(%ebx)        # adapter csum context scratch
    pushl 4(%edi)               # len
    pushl (%edi)                # data
    call dma_map_single
    addl $8, %esp               # eax = machine address
    movl 28(%edi), %ecx         # nr_frags
    cmpl $0, %ecx
    jne .Lfill_frag
    pushl $9                    # cmd = EOP|RS
    pushl 4(%edi)
    pushl %eax
    pushl %esi
    call e1000_fill_desc
    addl $16, %esp
    jmp .Lfill_store
.Lfill_frag:
    pushl $8                    # cmd = RS (more descriptors follow)
    pushl 4(%edi)
    pushl %eax
    pushl %esi
    call e1000_fill_desc
    addl $16, %esp
    pushl 24(%edi)              # frag len
    pushl 20(%edi)              # frag machine page
    call dma_map_page
    addl $8, %esp
    movl %esi, %ecx
    incl %ecx
    andl $127, %ecx
    pushl $9                    # cmd = EOP|RS
    pushl 24(%edi)
    pushl %eax
    pushl %ecx
    call e1000_fill_desc
    addl $16, %esp
    # zero the fragment slot's bookkeeping entry
    movl 52(%ebx), %eax
    movl %esi, %edx
    incl %edx
    andl $127, %edx
    shll $2, %edx
    addl %edx, %eax
    movl $0, (%eax)
.Lfill_store:
    movl 52(%ebx), %ecx
    movl %esi, %edx
    shll $2, %edx
    addl %edx, %ecx
    movl %edi, (%ecx)           # remember skb at its first descriptor
    movl 28(%edi), %edx         # nr_frags
    leal 1(%esi,%edx,1), %eax
    andl $127, %eax
    movl %eax, 20(%ebx)         # next_use
    incl 60(%ebx)               # tx_packets
    movl 4(%edi), %eax
    addl 24(%edi), %eax         # plus frag bytes (0 if none)
    addl %eax, 64(%ebx)         # tx_bytes
    movl $0, %eax
    jmp .Lfill_out
.Lfill_full:
    incl 76(%ebx)               # tx_errors
    movl $1, %eax
.Lfill_out:
    popl %edi
    popl %esi
    popl %ebx
    popl %ebp
    ret

# ---------------------------------------------------------------------
# e1000_xmit_frame(skb, dev) -> 0 ok, 1 busy: the per-packet entry,
# now a burst of one — lock, reap, fill, one doorbell.
# ---------------------------------------------------------------------
    .globl e1000_xmit_frame
e1000_xmit_frame:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    pushl %esi
    movl cur_adapter, %ebx
    movl cur_adapter, %eax
    addl $48, %eax
    pushl %eax
    call spin_trylock
    addl $4, %esp
    cmpl $0, %eax
    je .Lxmit_busy
    call e1000_clean_tx
    pushl 8(%ebp)
    call e1000_xmit_fill
    addl $4, %esp
    movl %eax, %esi             # fill status
    cmpl $0, %esi
    jne .Lxmit_nokick
    movl (%ebx), %ecx           # hw_addr
    movl 20(%ebx), %eax
    movl %eax, 0x3818(%ecx)     # TDT: the posted doorbell write
.Lxmit_nokick:
    movl cur_adapter, %eax
    addl $48, %eax
    pushl $0
    pushl %eax
    call spin_unlock_irqrestore
    addl $8, %esp
    movl %esi, %eax
    jmp .Lxmit_out
.Lxmit_busy:
    movl $1, %eax
.Lxmit_out:
    popl %esi
    popl %ebx
    popl %ebp
    ret

# ---------------------------------------------------------------------
# e1000_xmit_batch(array, count, dev) -> frames accepted.
# One lock acquisition, one reap pass and one TDT doorbell move the
# whole burst; `array` holds `count` skb pointers in driver memory.
# Stops early when the ring fills; the caller owns unaccepted skbs.
# ---------------------------------------------------------------------
    .globl e1000_xmit_batch
e1000_xmit_batch:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    pushl %esi
    movl cur_adapter, %ebx
    movl cur_adapter, %eax
    addl $48, %eax
    pushl %eax
    call spin_trylock
    addl $4, %esp
    cmpl $0, %eax
    je .Lxb_busy
    call e1000_clean_tx
    movl $0, %esi               # accepted
.Lxb_loop:
    cmpl 12(%ebp), %esi         # whole burst placed?
    je .Lxb_kick
    movl 8(%ebp), %eax          # skb pointer array
    movl %esi, %edx
    shll $2, %edx
    addl %edx, %eax
    movl (%eax), %eax           # skb
    pushl %eax
    call e1000_xmit_fill
    addl $4, %esp
    cmpl $0, %eax
    jne .Lxb_kick               # ring full: kick what we have
    incl %esi
    jmp .Lxb_loop
.Lxb_kick:
    cmpl $0, %esi
    je .Lxb_unlock
    movl (%ebx), %ecx           # hw_addr
    movl 20(%ebx), %eax
    movl %eax, 0x3818(%ecx)     # single doorbell for the whole burst
.Lxb_unlock:
    movl cur_adapter, %eax
    addl $48, %eax
    pushl $0
    pushl %eax
    call spin_unlock_irqrestore
    addl $8, %esp
    movl %esi, %eax
    jmp .Lxb_out
.Lxb_busy:
    movl $0, %eax
.Lxb_out:
    popl %esi
    popl %ebx
    popl %ebp
    ret

# ---------------------------------------------------------------------
# e1000_clean_rx() -> frames delivered: reap every DD descriptor in one
# pass (the burst half of receive), hand each to the stack, replenish,
# and bump RDT once at the end of the pass.
# ---------------------------------------------------------------------
    .globl e1000_clean_rx
e1000_clean_rx:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    pushl %esi
    pushl %edi
    movl cur_adapter, %ebx
    movl $0, 120(%ebx)          # reap count for this pass
    movl 44(%ebx), %esi         # rx next_clean
.Lcrx_loop:
    movl 28(%ebx), %ecx
    movl %esi, %eax
    shll $4, %eax
    addl %eax, %ecx             # desc
    movzbl 12(%ecx), %eax
    testl $1, %eax              # DD?
    je .Lcrx_done
    movl 56(%ebx), %edx         # rx_skb array
    movl %esi, %eax
    shll $2, %eax
    addl %eax, %edx
    movl (%edx), %edi           # skb
    # hardware error bits (descriptor byte 13): count and drop
    movzbl 13(%ecx), %eax
    cmpl $0, %eax
    jne .Lcrx_badframe
    movl 8(%ecx), %eax
    andl $0xffff, %eax
    # sanity: length must fit the posted buffer
    cmpl $2048, %eax
    jg .Lcrx_badframe
    movl %eax, 4(%edi)          # skb->len = descriptor length
    pushl 4(%edi)
    pushl (%ecx)
    call dma_unmap_single
    addl $8, %esp
    pushl 4(%ebx)               # dev
    pushl %edi
    call eth_type_trans
    addl $8, %esp
    movl %eax, 12(%edi)         # skb->protocol
    incl 68(%ebx)               # rx_packets
    incl 120(%ebx)              # reap count
    movl 4(%edi), %eax
    addl %eax, 72(%ebx)         # rx_bytes
    pushl %edi
    call netif_rx
    addl $4, %esp
    pushl $2048
    pushl 4(%ebx)
    call netdev_alloc_skb
    addl $8, %esp
    cmpl $0, %eax
    je .Lcrx_nomem
    movl %eax, %edi             # new skb
    movl 56(%ebx), %edx
    movl %esi, %ecx
    shll $2, %ecx
    addl %ecx, %edx
    movl %eax, (%edx)
    pushl $2048
    pushl (%edi)
    call dma_map_single
    addl $8, %esp
    movl 28(%ebx), %ecx
    movl %esi, %edx
    shll $4, %edx
    addl %edx, %ecx
    movl %eax, (%ecx)           # fresh buffer for hardware
    movb $0, 12(%ecx)
    jmp .Lcrx_adv
.Lcrx_badframe:
    incl 80(%ebx)               # rx_errors
    # reuse the same buffer: clear status, keep skb posted
    movl 28(%ebx), %ecx
    movl %esi, %edx
    shll $4, %edx
    addl %edx, %ecx
    movb $0, 12(%ecx)
    movb $0, 13(%ecx)
    jmp .Lcrx_adv
.Lcrx_nomem:
    incl 80(%ebx)               # rx_errors
.Lcrx_adv:
    movl %esi, 40(%ebx)         # RDT shadow
    incl %esi
    andl $127, %esi
    jmp .Lcrx_loop
.Lcrx_done:
    movl %esi, 44(%ebx)
    movl (%ebx), %ecx
    movl 40(%ebx), %eax
    movl %eax, 0x2818(%ecx)     # RDT
    movl 120(%ebx), %eax        # return frames delivered
    popl %edi
    popl %esi
    popl %ebx
    popl %ebp
    ret

# ---------------------------------------------------------------------
# e1000_poll_rx_batch(dev) -> frames reaped: NAPI-style polled receive.
# No ICR read — the caller (hypervisor softirq or a polling kernel)
# already knows work is pending, so one coalesced interrupt ack covers
# the whole burst.
# ---------------------------------------------------------------------
    .globl e1000_poll_rx_batch
e1000_poll_rx_batch:
    pushl %ebp
    movl %esp, %ebp
    call e1000_clean_rx
    popl %ebp
    ret

# ---------------------------------------------------------------------
# e1000_clean_rx_budget(budget) -> frames delivered: the NAPI weight
# loop (the real e1000_clean). Identical reap/replenish body to
# e1000_clean_rx, but stops after `budget` frames so one pass cannot
# monopolise the softirq context; the leftover DD descriptors stay
# posted for the next poll. RDT is still bumped once per pass.
# ---------------------------------------------------------------------
    .globl e1000_clean_rx_budget
e1000_clean_rx_budget:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    pushl %esi
    pushl %edi
    movl cur_adapter, %ebx
    movl $0, 120(%ebx)          # reap count for this pass
    movl 44(%ebx), %esi         # rx next_clean
.Lcrb_loop:
    movl 120(%ebx), %eax
    cmpl 8(%ebp), %eax          # weight exhausted?
    jge .Lcrb_done
    movl 28(%ebx), %ecx
    movl %esi, %eax
    shll $4, %eax
    addl %eax, %ecx             # desc
    movzbl 12(%ecx), %eax
    testl $1, %eax              # DD?
    je .Lcrb_done
    movl 56(%ebx), %edx         # rx_skb array
    movl %esi, %eax
    shll $2, %eax
    addl %eax, %edx
    movl (%edx), %edi           # skb
    # hardware error bits (descriptor byte 13): count and drop
    movzbl 13(%ecx), %eax
    cmpl $0, %eax
    jne .Lcrb_badframe
    movl 8(%ecx), %eax
    andl $0xffff, %eax
    # sanity: length must fit the posted buffer
    cmpl $2048, %eax
    jg .Lcrb_badframe
    movl %eax, 4(%edi)          # skb->len = descriptor length
    pushl 4(%edi)
    pushl (%ecx)
    call dma_unmap_single
    addl $8, %esp
    pushl 4(%ebx)               # dev
    pushl %edi
    call eth_type_trans
    addl $8, %esp
    movl %eax, 12(%edi)         # skb->protocol
    incl 68(%ebx)               # rx_packets
    incl 120(%ebx)              # reap count
    movl 4(%edi), %eax
    addl %eax, 72(%ebx)         # rx_bytes
    pushl %edi
    call netif_rx
    addl $4, %esp
    pushl $2048
    pushl 4(%ebx)
    call netdev_alloc_skb
    addl $8, %esp
    cmpl $0, %eax
    je .Lcrb_nomem
    movl %eax, %edi             # new skb
    movl 56(%ebx), %edx
    movl %esi, %ecx
    shll $2, %ecx
    addl %ecx, %edx
    movl %eax, (%edx)
    pushl $2048
    pushl (%edi)
    call dma_map_single
    addl $8, %esp
    movl 28(%ebx), %ecx
    movl %esi, %edx
    shll $4, %edx
    addl %edx, %ecx
    movl %eax, (%ecx)           # fresh buffer for hardware
    movb $0, 12(%ecx)
    jmp .Lcrb_adv
.Lcrb_badframe:
    incl 80(%ebx)               # rx_errors
    # reuse the same buffer: clear status, keep skb posted
    movl 28(%ebx), %ecx
    movl %esi, %edx
    shll $4, %edx
    addl %edx, %ecx
    movb $0, 12(%ecx)
    movb $0, 13(%ecx)
    jmp .Lcrb_adv
.Lcrb_nomem:
    incl 80(%ebx)               # rx_errors
.Lcrb_adv:
    movl %esi, 40(%ebx)         # RDT shadow
    incl %esi
    andl $127, %esi
    jmp .Lcrb_loop
.Lcrb_done:
    movl %esi, 44(%ebx)
    movl (%ebx), %ecx
    movl 40(%ebx), %eax
    movl %eax, 0x2818(%ecx)     # RDT
    movl 120(%ebx), %eax        # return frames delivered
    popl %edi
    popl %esi
    popl %ebx
    popl %ebp
    ret

# ---------------------------------------------------------------------
# e1000_poll_rx_budget(netdev, budget) -> frames reaped: one budgeted
# NAPI poll pass. Like e1000_poll_rx_batch, no ICR read — the device
# is masked while polled, so there is nothing to ack.
# ---------------------------------------------------------------------
    .globl e1000_poll_rx_budget
e1000_poll_rx_budget:
    pushl %ebp
    movl %esp, %ebp
    pushl 12(%ebp)              # budget
    call e1000_clean_rx_budget
    addl $4, %esp
    popl %ebp
    ret

# ---------------------------------------------------------------------
# e1000_set_device(devid): select the adapter slot that subsequent
# entry-point invocations operate on (cur_adapter = adapter + devid*128).
# ---------------------------------------------------------------------
    .globl e1000_set_device
e1000_set_device:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %eax
    shll $7, %eax
    addl $adapter, %eax
    movl %eax, cur_adapter
    popl %ebp
    ret

# ---------------------------------------------------------------------
# Device-id-taking fast-path entries for the multi-NIC sharded datapath:
# each selects its adapter slot, then tail-jumps into the shared body.
# The extra trailing devid argument is invisible to the body (cdecl: the
# caller owns the frame). Single-NIC callers keep using the classic
# entries, whose cost is unchanged.
# ---------------------------------------------------------------------
    .globl e1000_xmit_frame_dev
e1000_xmit_frame_dev:           # (skb, netdev, devid)
    movl 12(%esp), %eax
    shll $7, %eax
    addl $adapter, %eax
    movl %eax, cur_adapter
    jmp e1000_xmit_frame

    .globl e1000_xmit_batch_dev
e1000_xmit_batch_dev:           # (array, count, netdev, devid)
    movl 16(%esp), %eax
    shll $7, %eax
    addl $adapter, %eax
    movl %eax, cur_adapter
    jmp e1000_xmit_batch

    .globl e1000_poll_rx_batch_dev
e1000_poll_rx_batch_dev:        # (netdev, devid)
    movl 8(%esp), %eax
    shll $7, %eax
    addl $adapter, %eax
    movl %eax, cur_adapter
    jmp e1000_poll_rx_batch

    .globl e1000_intr_dev
e1000_intr_dev:                 # (netdev, devid)
    movl 8(%esp), %eax
    shll $7, %eax
    addl $adapter, %eax
    movl %eax, cur_adapter
    jmp e1000_intr

    .globl e1000_poll_rx_budget_dev
e1000_poll_rx_budget_dev:       # (netdev, budget, devid)
    movl 12(%esp), %eax
    shll $7, %eax
    addl $adapter, %eax
    movl %eax, cur_adapter
    jmp e1000_poll_rx_budget

# ---------------------------------------------------------------------
# e1000_intr(dev): interrupt service routine.
# ---------------------------------------------------------------------
    .globl e1000_intr
e1000_intr:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    pushl %esi
    movl cur_adapter, %ebx
    incl 88(%ebx)
    movl (%ebx), %ecx
    movl 0xC0(%ecx), %esi       # ICR (read-to-clear)
    cmpl $0, %esi
    je .Lintr_out
    testl $0x80, %esi           # RXT0
    je .Lintr_tx
    call e1000_clean_rx
.Lintr_tx:
    testl $1, %esi              # TXDW
    je .Lintr_out
    movl cur_adapter, %eax
    addl $48, %eax
    pushl %eax
    call spin_trylock
    addl $4, %esp
    cmpl $0, %eax
    je .Lintr_out
    call e1000_clean_tx
    movl cur_adapter, %eax
    addl $48, %eax
    pushl $0
    pushl %eax
    call spin_unlock_irqrestore
    addl $8, %esp
.Lintr_out:
    popl %esi
    popl %ebx
    popl %ebp
    ret

# ---------------------------------------------------------------------
# e1000_alloc_rx_buffers(): fill the whole RX ring with fresh skbs.
# ---------------------------------------------------------------------
    .globl e1000_alloc_rx_buffers
e1000_alloc_rx_buffers:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    pushl %esi
    pushl %edi
    movl cur_adapter, %ebx
    movl $0, %esi
.Larb_loop:
    cmpl $128, %esi
    je .Larb_done
    pushl $2048
    pushl 4(%ebx)
    call netdev_alloc_skb
    addl $8, %esp
    cmpl $0, %eax
    je .Larb_done
    movl %eax, %edi
    movl 56(%ebx), %edx
    movl %esi, %ecx
    shll $2, %ecx
    addl %ecx, %edx
    movl %eax, (%edx)           # rx_skb[i]
    pushl $2048
    pushl (%edi)
    call dma_map_single
    addl $8, %esp
    movl 28(%ebx), %ecx
    movl %esi, %edx
    shll $4, %edx
    addl %edx, %ecx
    movl %eax, (%ecx)
    movb $0, 12(%ecx)
    incl %esi
    jmp .Larb_loop
.Larb_done:
    popl %edi
    popl %esi
    popl %ebx
    popl %ebp
    ret

# ---------------------------------------------------------------------
# e1000_open(dev): program rings, enable engines and interrupts.
# ---------------------------------------------------------------------
    .globl e1000_open
e1000_open:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    movl cur_adapter, %ebx
    movl (%ebx), %ecx
    movl 12(%ebx), %eax
    movl %eax, 0x3800(%ecx)     # TDBAL
    movl $2048, %eax
    movl %eax, 0x3808(%ecx)     # TDLEN = 128 * 16
    movl $0, %eax
    movl %eax, 0x3810(%ecx)     # TDH
    movl $2, %eax
    movl %eax, 0x400(%ecx)      # TCTL.EN (before first TDT write)
    movl $0, %eax
    movl %eax, 0x3818(%ecx)     # TDT
    movl 32(%ebx), %eax
    movl %eax, 0x2800(%ecx)     # RDBAL
    movl $2048, %eax
    movl %eax, 0x2808(%ecx)     # RDLEN
    movl $0, %eax
    movl %eax, 0x2810(%ecx)     # RDH
    call e1000_alloc_rx_buffers
    movl (%ebx), %ecx
    movl $127, %eax
    movl %eax, 0x2818(%ecx)     # RDT: 127 buffers posted
    movl $127, %eax
    movl %eax, 40(%ebx)
    movl $0, 44(%ebx)
    movl $2, %eax
    movl %eax, 0x100(%ecx)      # RCTL.EN
    movl $0x81, %eax
    movl %eax, 0xD0(%ecx)       # IMS = RXT0 | TXDW
    pushl 8(%ebp)
    call netif_start_queue
    addl $4, %esp
    movl $0, %eax
    popl %ebx
    popl %ebp
    ret

# ---------------------------------------------------------------------
# e1000_close(dev)
# ---------------------------------------------------------------------
    .globl e1000_close
e1000_close:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    movl cur_adapter, %ebx
    movl (%ebx), %ecx
    movl $0xffffffff, %eax
    movl %eax, 0xD8(%ecx)       # IMC: mask everything
    movl $0, %eax
    movl %eax, 0x400(%ecx)
    movl %eax, 0x100(%ecx)
    pushl 8(%ebp)
    call netif_stop_queue
    addl $4, %esp
    pushl $0
    call del_timer
    addl $4, %esp
    movl $0, %eax
    popl %ebx
    popl %ebp
    ret

# ---------------------------------------------------------------------
# e1000_update_stats(): read hardware counters into the mirror.
# ---------------------------------------------------------------------
    .globl e1000_update_stats
e1000_update_stats:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    movl cur_adapter, %ebx
    movl (%ebx), %ecx
    movl 0x4074(%ecx), %eax     # GPRC
    movl %eax, 100(%ebx)
    movl 0x4080(%ecx), %eax     # GPTC
    movl %eax, 104(%ebx)
    movl 0x4010(%ecx), %eax     # MPC
    movl %eax, 108(%ebx)
    popl %ebx
    popl %ebp
    ret

# ---------------------------------------------------------------------
# e1000_watchdog(data): periodic link check + stats refresh. The timer
# data is this device's index (probe arms one timer per NIC), so the
# watchdog always operates on its own adapter slot regardless of which
# device the fast path last selected.
# ---------------------------------------------------------------------
    .globl e1000_watchdog
e1000_watchdog:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    movl 8(%ebp), %eax
    shll $7, %eax
    addl $adapter, %eax
    movl %eax, cur_adapter
    movl cur_adapter, %ebx
    incl 84(%ebx)
    movl (%ebx), %ecx
    # read the PHY BMSR through MDIC: issue read op, poll READY
    movl $0x08010000, %eax      # read op, PHY reg 1 (BMSR)
    movl %eax, 0x20(%ecx)       # MDIC
.Lwd_mdic_poll:
    movl 0x20(%ecx), %eax
    testl $0x10000000, %eax     # READY?
    je .Lwd_mdic_poll
    andl $0xffff, %eax
    movl %eax, 116(%ebx)        # cached PHY status
    testl $4, %eax              # BMSR link status
    je .Lwd_nolink
    movl 0x8(%ecx), %eax        # STATUS (link)
    testl $2, %eax
    je .Lwd_nolink
    pushl 4(%ebx)
    call netif_carrier_ok
    addl $4, %esp
.Lwd_nolink:
    call e1000_update_stats
    pushl 8(%ebp)               # re-arm with this device's index
    pushl $e1000_watchdog
    pushl $100
    call mod_timer
    addl $12, %esp
    popl %ebx
    popl %ebp
    ret

# ---------------------------------------------------------------------
# e1000_get_stats(dev) -> pointer to the stats block.
# ---------------------------------------------------------------------
    .globl e1000_get_stats
e1000_get_stats:
    movl cur_adapter, %eax
    addl $60, %eax
    ret

# ---------------------------------------------------------------------
# e1000_set_mac(dev, addr): write RAL/RAH from a 6-byte buffer.
# ---------------------------------------------------------------------
    .globl e1000_set_mac
e1000_set_mac:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    movl cur_adapter, %ebx
    movl 12(%ebp), %edx         # addr buffer
    movl (%edx), %eax
    movl (%ebx), %ecx
    movl %eax, 0x5400(%ecx)     # RAL0
    movzwl 4(%edx), %eax
    movl %eax, 0x5404(%ecx)     # RAH0
    movl $0, %eax
    popl %ebx
    popl %ebp
    ret

# ---------------------------------------------------------------------
# e1000_set_multi(dev): rebuild the multicast filter (config path).
# ---------------------------------------------------------------------
    .globl e1000_set_multi
e1000_set_multi:
    pushl %ebp
    movl %esp, %ebp
    pushl $0
    pushl $0
    call crc32
    addl $8, %esp
    pushl $0
    pushl $0
    call set_bit
    addl $8, %esp
    movl $0, %eax
    popl %ebp
    ret

# ---------------------------------------------------------------------
# e1000_change_mtu(dev, mtu)
# ---------------------------------------------------------------------
    .globl e1000_change_mtu
e1000_change_mtu:
    pushl %ebp
    movl %esp, %ebp
    movl 12(%ebp), %eax
    cmpl $68, %eax
    jl .Lmtu_bad
    cmpl $9000, %eax
    jg .Lmtu_bad
    movl $0, %eax
    popl %ebp
    ret
.Lmtu_bad:
    movl $-22, %eax             # -EINVAL
    popl %ebp
    ret

# ---------------------------------------------------------------------
# e1000_tx_timeout(dev): error path — reset statistics and reap.
# ---------------------------------------------------------------------
    .globl e1000_tx_timeout
e1000_tx_timeout:
    pushl %ebp
    movl %esp, %ebp
    pushl $0
    call printk
    addl $4, %esp
    pushl $0
    call schedule_work
    addl $4, %esp
    popl %ebp
    ret

# ---------------------------------------------------------------------
# ethtool operations (config path; called through the ops table).
# ---------------------------------------------------------------------
    .globl e1000_get_settings
e1000_get_settings:
    pushl %ebp
    movl %esp, %ebp
    pushl $0
    call mii_ethtool_gset
    addl $4, %esp
    movl $0, %eax
    popl %ebp
    ret

    .globl e1000_get_drvinfo
e1000_get_drvinfo:
    pushl %ebp
    movl %esp, %ebp
    pushl %esi
    pushl %edi
    movl 8(%ebp), %edi          # caller's info buffer
    cmpl $0, %edi
    je .Ldrvinfo_done
    movl $driver_name, %esi
    movl $6, %ecx               # "e1000\0"
    rep movsb
.Ldrvinfo_done:
    movl $0, %eax
    popl %edi
    popl %esi
    popl %ebp
    ret

    .globl e1000_get_link
e1000_get_link:
    pushl %ebp
    movl %esp, %ebp
    pushl $0
    call mii_link_ok
    addl $4, %esp
    popl %ebp
    ret

# ---------------------------------------------------------------------
# e1000_ethtool_dispatch(op, arg): indirect call through the ops table —
# exercises stlb_call translation in the hypervisor instance.
# ---------------------------------------------------------------------
    .globl e1000_ethtool_dispatch
e1000_ethtool_dispatch:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %eax          # op index
    shll $2, %eax
    movl e1000_ethtool_ops(%eax), %ecx
    pushl 12(%ebp)
    call *%ecx
    addl $4, %esp
    popl %ebp
    ret

# ---------------------------------------------------------------------
# e1000_probe(dev_index): init hardware, rings and kernel plumbing.
# ---------------------------------------------------------------------
    .globl e1000_probe
e1000_probe:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    pushl %esi
    pushl %edi
    # the device index selects this device's adapter slot; every later
    # entry point reaches the same slot through cur_adapter
    movl 8(%ebp), %eax
    shll $7, %eax               # * ADAPTER_STRIDE (128)
    addl $adapter, %eax
    movl %eax, cur_adapter
    movl cur_adapter, %ebx
    pushl 8(%ebp)
    call pci_enable_device
    addl $4, %esp
    pushl 8(%ebp)
    call pci_set_master
    addl $4, %esp
    pushl 8(%ebp)
    call pci_request_regions
    addl $4, %esp
    pushl $16
    pushl 8(%ebp)
    call pci_read_config_dword
    addl $8, %esp
    pushl 8(%ebp)
    call ioremap
    addl $4, %esp
    movl %eax, (%ebx)           # hw_addr
    pushl $256
    call alloc_etherdev
    addl $4, %esp
    movl %eax, 4(%ebx)          # netdev
    # read the MAC out of the EEPROM (words 0..2) and validate the
    # image checksum (words 0..3 must sum to 0xBABA), as e1000_probe does
    movl (%ebx), %ecx
    movl $0, %esi               # word index
    movl $0, %edi               # running checksum
.Lprobe_eeprom:
    movl %esi, %eax
    shll $8, %eax               # address in bits 8..16
    movl %eax, 0x14(%ecx)       # EERD
.Lprobe_eerd_poll:
    movl 0x14(%ecx), %eax
    testl $0x10, %eax           # DONE?
    je .Lprobe_eerd_poll
    shrl $16, %eax              # data word
    addl %eax, %edi
    cmpl $3, %esi
    jge .Lprobe_eeprom_next
    # stash MAC words into the adapter (92 + 2*i)
    movl cur_adapter, %edx
    addl $92, %edx
    movl %esi, %eax
    addl %eax, %eax
    addl %eax, %edx
    movl 0x14(%ecx), %eax
    shrl $16, %eax
    movw %eax, (%edx)
.Lprobe_eeprom_next:
    incl %esi
    cmpl $4, %esi
    jne .Lprobe_eeprom
    andl $0xffff, %edi
    cmpl $0xbaba, %edi          # checksum must match
    je .Lprobe_eeprom_ok
    pushl $0
    call printk                 # complain, keep going (RAL/RAH fallback)
    addl $4, %esp
.Lprobe_eeprom_ok:
    # MAC from receive-address registers into the adapter copy
    movl (%ebx), %ecx
    movl 0x5400(%ecx), %eax
    movl %eax, 92(%ebx)
    movl 0x5404(%ecx), %eax
    movl %eax, 96(%ebx)
    # descriptor rings (DMA-coherent)
    movl cur_adapter, %eax
    addl $12, %eax
    pushl %eax
    pushl $2048
    call dma_alloc_coherent
    addl $8, %esp
    movl %eax, 8(%ebx)          # tx_ring VA
    movl cur_adapter, %eax
    addl $32, %eax
    pushl %eax
    pushl $2048
    call dma_alloc_coherent
    addl $8, %esp
    movl %eax, 28(%ebx)         # rx_ring VA
    # zero both descriptor rings (string stores; rewritten into the
    # page-chunked loop of paper §5.1.1 for the hypervisor instance)
    movl 8(%ebx), %edi
    movl $0, %eax
    movl $512, %ecx
    rep stosl
    movl 28(%ebx), %edi
    movl $0, %eax
    movl $512, %ecx
    rep stosl
    # bookkeeping arrays
    pushl $512
    call kmalloc
    addl $4, %esp
    movl %eax, 52(%ebx)
    pushl $512
    call kmalloc
    addl $4, %esp
    movl %eax, 56(%ebx)
    # ring indices and lock
    movl $0, 20(%ebx)
    movl $0, 24(%ebx)
    movl $0, 40(%ebx)
    movl $0, 44(%ebx)
    movl cur_adapter, %eax
    addl $48, %eax
    pushl %eax
    call spin_lock_init
    addl $4, %esp
    # kernel plumbing
    pushl $0
    call init_timer
    addl $4, %esp
    pushl 8(%ebp)               # timer data: this device's index
    pushl $e1000_watchdog
    pushl $100
    call mod_timer
    addl $12, %esp
    pushl $e1000_intr
    pushl 8(%ebp)
    call request_irq
    addl $8, %esp
    pushl 4(%ebx)
    call register_netdev
    addl $4, %esp
    pushl 4(%ebx)
    call netif_carrier_on
    addl $4, %esp
    pushl $0
    call printk
    addl $4, %esp
    call e1000_sw_init
    movl $0, %eax
    popl %edi
    popl %esi
    popl %ebx
    popl %ebp
    ret
"#;

const DATA: &str = r#"
    .data
    .align 4
    .globl adapter
adapter:
    .zero 1024                  # MAX_NICS (8) slots of ADAPTER_STRIDE (128)
    .globl cur_adapter
cur_adapter:
    .long adapter               # active slot (slot 0 until a probe/select)
    .globl e1000_netdev_ops
e1000_netdev_ops:
    .long e1000_open
    .long e1000_close
    .long e1000_xmit_frame
    .long e1000_get_stats
    .long e1000_set_mac
    .long e1000_set_multi
    .long e1000_change_mtu
    .long e1000_tx_timeout
    .globl e1000_ethtool_ops
e1000_ethtool_ops:
    .long e1000_get_settings
    .long e1000_get_drvinfo
    .long e1000_get_link
    .globl driver_name
driver_name:
    .asciz "e1000"
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use twin_isa::asm::assemble;

    #[test]
    fn driver_assembles() {
        let m = assemble("e1000", &source()).expect("driver source must assemble");
        assert!(
            m.text.len() > 300,
            "driver has {} instructions",
            m.text.len()
        );
        for f in [
            "e1000_probe",
            "e1000_open",
            "e1000_xmit_frame",
            "e1000_xmit_fill",
            "e1000_xmit_batch",
            "e1000_poll_rx_batch",
            "e1000_poll_rx_budget",
            "e1000_intr",
            "e1000_clean_rx",
            "e1000_clean_rx_budget",
            "e1000_clean_tx",
            "e1000_watchdog",
            "e1000_get_stats",
            "e1000_set_device",
            "e1000_xmit_frame_dev",
            "e1000_xmit_batch_dev",
            "e1000_poll_rx_batch_dev",
            "e1000_poll_rx_budget_dev",
            "e1000_intr_dev",
        ] {
            assert!(m.labels.contains_key(f), "missing {f}");
            assert!(m.globals.contains(f));
        }
        assert!(m.data.symbols.contains_key("adapter"));
        // Function-pointer tables are relocated data.
        assert!(m.data.relocs.iter().any(|r| r.symbol == "e1000_xmit_frame"));
    }

    #[test]
    fn adapter_array_holds_max_nics_slots() {
        let m = assemble("e1000", &source()).unwrap();
        let adapter = m.data.symbols["adapter"];
        let cur = m.data.symbols["cur_adapter"];
        assert_eq!(
            cur - adapter,
            MAX_NICS as u64 * ADAPTER_STRIDE,
            "cur_adapter sits right after the slot array"
        );
        // cur_adapter is initialised (via a data reloc) to slot 0.
        assert!(m
            .data
            .relocs
            .iter()
            .any(|r| r.offset == cur && r.symbol == "adapter"));
    }

    // Every adapter field fits inside one slot.
    const _: () = assert!(adapter::RX_REAPED < ADAPTER_STRIDE);

    #[test]
    fn driver_calls_a_large_support_surface() {
        let m = assemble("e1000", &source()).unwrap();
        let undef = m.undefined_symbols();
        // The ten fast-path routines plus the long tail.
        assert!(undef.contains("netif_rx"));
        assert!(undef.contains("spin_trylock"));
        assert!(
            undef.len() >= 90,
            "support surface is {} routines",
            undef.len()
        );
    }

    #[test]
    fn mem_reference_fraction_matches_paper() {
        // Paper §4.1: "in a typical driver, only roughly 25% of the
        // instructions reference memory".
        let m = assemble("e1000", &source()).unwrap();
        let mem = m.text.iter().filter(|i| i.needs_svm()).count();
        let frac = mem as f64 / m.text.len() as f64;
        assert!(
            (0.10..0.45).contains(&frac),
            "mem fraction {frac:.2} out of plausible range"
        );
    }
}
