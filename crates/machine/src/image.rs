//! Loaded code images and symbol resolution (linking).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use twin_isa::{Insn, MemRef, Module, Operand, Target, INSN_SIZE};

/// Identifier of a loaded code image.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct ImageId(pub usize);

/// Error produced when a module cannot be linked.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LinkError {
    /// The symbol that could not be resolved.
    pub symbol: String,
    /// Module being linked.
    pub module: String,
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unresolved symbol `{}` while linking module `{}`",
            self.symbol, self.module
        )
    }
}

impl Error for LinkError {}

/// A fully linked code image: instructions with all symbols resolved to
/// absolute addresses, placed at `base`.
///
/// Instruction `i` occupies addresses `[base + i*INSN_SIZE, base +
/// (i+1)*INSN_SIZE)`. Exports map global label names to their absolute
/// addresses.
#[derive(Clone, Debug)]
pub struct CodeImage {
    /// Image (module) name.
    pub name: String,
    /// Base code address.
    pub base: u64,
    /// Resolved instruction stream.
    pub insns: Vec<Insn>,
    /// Exported label name → absolute address.
    pub exports: BTreeMap<String, u64>,
}

impl CodeImage {
    /// Whether `pc` falls inside this image.
    pub fn contains(&self, pc: u64) -> bool {
        pc >= self.base && pc < self.base + self.insns.len() as u64 * INSN_SIZE
    }

    /// The instruction at code address `pc`.
    ///
    /// Returns `None` if `pc` is outside the image or unaligned.
    pub fn fetch(&self, pc: u64) -> Option<&Insn> {
        if !self.contains(pc) || (pc - self.base) % INSN_SIZE != 0 {
            return None;
        }
        self.insns.get(((pc - self.base) / INSN_SIZE) as usize)
    }

    /// Address of an exported symbol.
    pub fn export(&self, name: &str) -> Option<u64> {
        self.exports.get(name).copied()
    }

    /// End address (exclusive).
    pub fn end(&self) -> u64 {
        self.base + self.insns.len() as u64 * INSN_SIZE
    }
}

/// Links `module` at `code_base`: local labels become absolute code
/// addresses; all other symbols (data symbols, externs, cross-module
/// references) are resolved through `resolve`.
///
/// # Errors
///
/// Returns [`LinkError`] naming the first unresolvable symbol.
pub fn link<F>(module: &Module, code_base: u64, mut resolve: F) -> Result<CodeImage, LinkError>
where
    F: FnMut(&str) -> Option<u64>,
{
    let label_addr = |name: &str| -> Option<u64> {
        module
            .labels
            .get(name)
            .map(|idx| code_base + *idx as u64 * INSN_SIZE)
    };
    let mut lookup = |name: &str| -> Result<u64, LinkError> {
        label_addr(name)
            .or_else(|| resolve(name))
            .ok_or_else(|| LinkError {
                symbol: name.to_string(),
                module: module.name.clone(),
            })
    };

    let mut insns = Vec::with_capacity(module.text.len());
    for insn in &module.text {
        insns.push(resolve_insn(insn, &mut lookup)?);
    }

    let mut exports = BTreeMap::new();
    for (name, idx) in &module.labels {
        exports.insert(name.clone(), code_base + *idx as u64 * INSN_SIZE);
    }

    Ok(CodeImage {
        name: module.name.clone(),
        base: code_base,
        insns,
        exports,
    })
}

fn resolve_mem<F>(m: &MemRef, lookup: &mut F) -> Result<MemRef, LinkError>
where
    F: FnMut(&str) -> Result<u64, LinkError>,
{
    let mut out = m.clone();
    if let Some(sym) = out.sym.take() {
        let addr = lookup(&sym)?;
        out.disp = out.disp.wrapping_add(addr as i64);
    }
    Ok(out)
}

fn resolve_operand<F>(o: &Operand, lookup: &mut F) -> Result<Operand, LinkError>
where
    F: FnMut(&str) -> Result<u64, LinkError>,
{
    Ok(match o {
        Operand::Sym(name, off) => Operand::Imm(lookup(name)? as i64 + off),
        Operand::Mem(m) => Operand::Mem(resolve_mem(m, lookup)?),
        other => other.clone(),
    })
}

fn resolve_target<F>(t: &Target, lookup: &mut F) -> Result<Target, LinkError>
where
    F: FnMut(&str) -> Result<u64, LinkError>,
{
    Ok(match t {
        Target::Label(name) => Target::Abs(lookup(name)?),
        Target::Mem(m) => Target::Mem(resolve_mem(m, lookup)?),
        other => other.clone(),
    })
}

fn resolve_insn<F>(insn: &Insn, lookup: &mut F) -> Result<Insn, LinkError>
where
    F: FnMut(&str) -> Result<u64, LinkError>,
{
    Ok(match insn {
        Insn::Mov { w, dst, src } => Insn::Mov {
            w: *w,
            dst: resolve_operand(dst, lookup)?,
            src: resolve_operand(src, lookup)?,
        },
        Insn::Movzx { w, dst, src } => Insn::Movzx {
            w: *w,
            dst: *dst,
            src: resolve_operand(src, lookup)?,
        },
        Insn::Movsx { w, dst, src } => Insn::Movsx {
            w: *w,
            dst: *dst,
            src: resolve_operand(src, lookup)?,
        },
        Insn::Lea { dst, mem } => Insn::Lea {
            dst: *dst,
            mem: resolve_mem(mem, lookup)?,
        },
        Insn::Alu { op, w, dst, src } => Insn::Alu {
            op: *op,
            w: *w,
            dst: resolve_operand(dst, lookup)?,
            src: resolve_operand(src, lookup)?,
        },
        Insn::Shift { op, dst, amount } => Insn::Shift {
            op: *op,
            dst: resolve_operand(dst, lookup)?,
            amount: resolve_operand(amount, lookup)?,
        },
        Insn::Cmp { w, src, dst } => Insn::Cmp {
            w: *w,
            src: resolve_operand(src, lookup)?,
            dst: resolve_operand(dst, lookup)?,
        },
        Insn::Test { w, src, dst } => Insn::Test {
            w: *w,
            src: resolve_operand(src, lookup)?,
            dst: resolve_operand(dst, lookup)?,
        },
        Insn::Un { op, w, dst } => Insn::Un {
            op: *op,
            w: *w,
            dst: resolve_operand(dst, lookup)?,
        },
        Insn::Imul { dst, src } => Insn::Imul {
            dst: *dst,
            src: resolve_operand(src, lookup)?,
        },
        Insn::Push { src } => Insn::Push {
            src: resolve_operand(src, lookup)?,
        },
        Insn::Pop { dst } => Insn::Pop {
            dst: resolve_operand(dst, lookup)?,
        },
        Insn::Jmp { target } => Insn::Jmp {
            target: resolve_target(target, lookup)?,
        },
        Insn::Jcc { cond, target } => Insn::Jcc {
            cond: *cond,
            target: resolve_target(target, lookup)?,
        },
        Insn::Call { target } => Insn::Call {
            target: resolve_target(target, lookup)?,
        },
        other => other.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use twin_isa::asm::assemble;

    #[test]
    fn links_labels_and_data_syms() {
        let m = assemble(
            "t",
            r#"
            .text
            .globl f
        f:
            movl counter, %eax
            call g
            jmp f
        g:
            ret
        "#,
        )
        .unwrap();
        let img = link(&m, 0x1000, |s| (s == "counter").then_some(0x2000_0000)).unwrap();
        assert_eq!(img.export("f"), Some(0x1000));
        assert_eq!(img.export("g"), Some(0x1000 + 3 * INSN_SIZE));
        // movl counter -> absolute disp
        match &img.insns[0] {
            Insn::Mov {
                src: Operand::Mem(mem),
                ..
            } => {
                assert_eq!(mem.disp, 0x2000_0000);
                assert!(mem.sym.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
        match &img.insns[1] {
            Insn::Call {
                target: Target::Abs(a),
            } => assert_eq!(*a, 0x1000 + 3 * INSN_SIZE),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unresolved_symbol_errors() {
        let m = assemble("t", ".text\nf:\n call missing\n").unwrap();
        let e = link(&m, 0, |_| None).unwrap_err();
        assert_eq!(e.symbol, "missing");
        assert!(e.to_string().contains("missing"));
    }

    #[test]
    fn fetch_and_contains() {
        let m = assemble("t", ".text\nf:\n nop\n nop\n ret\n").unwrap();
        let img = link(&m, 0x100, |_| None).unwrap();
        assert!(img.contains(0x100));
        assert!(img.contains(0x100 + 2 * INSN_SIZE));
        assert!(!img.contains(0x100 + 3 * INSN_SIZE));
        assert!(img.fetch(0x100 + 1).is_none(), "unaligned fetch");
        assert!(matches!(img.fetch(0x100 + 2 * INSN_SIZE), Some(Insn::Ret)));
        assert_eq!(img.end(), 0x100 + 3 * INSN_SIZE);
    }
}
