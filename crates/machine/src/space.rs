//! Per-domain address spaces: page tables mapping virtual pages to frames
//! or MMIO regions.

use crate::mem::PAGE_SIZE;
use std::collections::HashMap;

/// Identifier of an address space (one per domain).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SpaceId(pub usize);

/// What a mapped page refers to.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PageKind {
    /// Ordinary RAM (the entry's `pfn` is a physical frame).
    Ram,
    /// Memory-mapped I/O owned by device `id`; loads/stores are routed to
    /// [`crate::Env::mmio_read`] / [`crate::Env::mmio_write`].
    Mmio(u32),
}

/// A page table entry.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct PageEntry {
    /// Physical frame number (for [`PageKind::Ram`]) or device-relative
    /// page index (for [`PageKind::Mmio`]).
    pub pfn: u64,
    /// Whether stores are permitted.
    pub writable: bool,
    /// RAM or MMIO.
    pub kind: PageKind,
}

impl PageEntry {
    /// A RAM entry.
    pub fn ram(pfn: u64, writable: bool) -> PageEntry {
        PageEntry {
            pfn,
            writable,
            kind: PageKind::Ram,
        }
    }

    /// An MMIO entry for device `dev`, page `page` of its register window.
    pub fn mmio(dev: u32, page: u64) -> PageEntry {
        PageEntry {
            pfn: page,
            writable: true,
            kind: PageKind::Mmio(dev),
        }
    }
}

/// Result of a successful translation.
#[derive(Copy, Clone, Debug)]
pub struct Translation {
    /// The page entry.
    pub entry: PageEntry,
    /// Offset within the page.
    pub offset: u64,
}

/// A sparse page table: virtual page number → entry.
#[derive(Clone, Debug, Default)]
pub struct PageTable {
    entries: HashMap<u64, PageEntry>,
}

impl PageTable {
    /// Creates an empty table.
    pub fn new() -> PageTable {
        PageTable::default()
    }

    /// Maps the page containing `vaddr` (which is rounded down).
    /// Returns the previous entry, if any.
    pub fn map(&mut self, vaddr: u64, entry: PageEntry) -> Option<PageEntry> {
        self.entries.insert(vaddr / PAGE_SIZE, entry)
    }

    /// Removes the mapping for the page containing `vaddr`.
    pub fn unmap(&mut self, vaddr: u64) -> Option<PageEntry> {
        self.entries.remove(&(vaddr / PAGE_SIZE))
    }

    /// Looks up the entry for the page containing `vaddr`.
    pub fn lookup(&self, vaddr: u64) -> Option<PageEntry> {
        self.entries.get(&(vaddr / PAGE_SIZE)).copied()
    }

    /// Whether the page containing `vaddr` is mapped.
    pub fn is_mapped(&self, vaddr: u64) -> bool {
        self.entries.contains_key(&(vaddr / PAGE_SIZE))
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over `(virtual page base address, entry)` pairs in
    /// unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, PageEntry)> + '_ {
        self.entries.iter().map(|(vpn, e)| (vpn * PAGE_SIZE, *e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_lookup_unmap() {
        let mut t = PageTable::new();
        assert!(t.lookup(0x1000).is_none());
        t.map(0x1234, PageEntry::ram(7, true));
        // Same page, any offset.
        assert_eq!(t.lookup(0x1000).unwrap().pfn, 7);
        assert_eq!(t.lookup(0x1fff).unwrap().pfn, 7);
        assert!(t.lookup(0x2000).is_none());
        assert!(t.unmap(0x1800).is_some());
        assert!(t.lookup(0x1000).is_none());
    }

    #[test]
    fn remap_returns_previous() {
        let mut t = PageTable::new();
        assert!(t.map(0x1000, PageEntry::ram(1, true)).is_none());
        let prev = t.map(0x1000, PageEntry::ram(2, false)).unwrap();
        assert_eq!(prev.pfn, 1);
        let cur = t.lookup(0x1000).unwrap();
        assert_eq!(cur.pfn, 2);
        assert!(!cur.writable);
    }

    #[test]
    fn mmio_entries() {
        let mut t = PageTable::new();
        t.map(0xE000_0000, PageEntry::mmio(3, 0));
        let e = t.lookup(0xE000_0000).unwrap();
        assert_eq!(e.kind, PageKind::Mmio(3));
    }

    #[test]
    fn iter_counts() {
        let mut t = PageTable::new();
        t.map(0x1000, PageEntry::ram(1, true));
        t.map(0x3000, PageEntry::ram(2, true));
        assert_eq!(t.mapped_pages(), 2);
        let mut bases: Vec<u64> = t.iter().map(|(b, _)| b).collect();
        bases.sort_unstable();
        assert_eq!(bases, vec![0x1000, 0x3000]);
    }
}
