//! The cycle cost model and attribution meter.
//!
//! The paper reports per-packet CPU overhead split into four categories
//! (Fig. 7/8): the dom0 kernel, the guest kernel, the Xen hypervisor, and
//! the e1000 driver. [`CycleMeter`] reproduces that attribution with an
//! explicit domain stack: whoever is conceptually running pushes its
//! [`CostDomain`]; every charge lands in the top-of-stack category.
//!
//! [`CostParams`] holds all tunable constants. Calibration targets and the
//! rationale for each value are documented in `EXPERIMENTS.md`; the tests
//! in the workspace only assert *shape* (orderings, ratios), never exact
//! constants, so the model stays falsifiable.

use std::collections::BTreeMap;
use std::fmt;

/// Attribution category for cycle charges (the four bars of Fig. 7/8).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CostDomain {
    /// The driver-domain (dom0) kernel — for native Linux runs this is
    /// "the kernel".
    Dom0,
    /// The guest-domain kernel.
    DomU,
    /// The hypervisor (switches, hypercalls, grant ops, packet copies).
    Xen,
    /// The network driver itself (original or rewritten).
    Driver,
}

impl CostDomain {
    /// All categories, in the paper's legend order.
    pub const ALL: [CostDomain; 4] = [
        CostDomain::Dom0,
        CostDomain::DomU,
        CostDomain::Xen,
        CostDomain::Driver,
    ];

    /// The paper's legend label.
    pub fn label(self) -> &'static str {
        match self {
            CostDomain::Dom0 => "dom0",
            CostDomain::DomU => "domU",
            CostDomain::Xen => "Xen",
            CostDomain::Driver => "e1000",
        }
    }
}

impl fmt::Display for CostDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Cost constants, in CPU cycles at the modeled 3.0 GHz (the paper's Xeon).
///
/// Instruction-class costs are charged by the interpreter; the rest are
/// charged by the kernel/hypervisor models when they perform the modeled
/// operation.
#[derive(Clone, Debug)]
pub struct CostParams {
    /// Simple ALU op (reg/reg or reg/imm).
    pub alu: u64,
    /// Register-to-register or immediate move / `lea`.
    pub mov_reg: u64,
    /// Memory load (cache-warm average; includes address generation).
    pub load: u64,
    /// Memory store.
    pub store: u64,
    /// `imul`.
    pub mul: u64,
    /// Not-taken conditional branch.
    pub branch_not_taken: u64,
    /// Taken branch / unconditional jump.
    pub branch_taken: u64,
    /// `call` (direct or indirect), excluding the stack store.
    pub call: u64,
    /// `ret`, excluding the stack load.
    pub ret: u64,
    /// Per-element cost of string instructions beyond the load/store.
    pub string_per_elem: u64,
    /// `cli`/`sti` (virtualised interrupt-flag ops).
    pub cli_sti: u64,
    /// MMIO register read (uncached PCI read — expensive, like a real NIC).
    pub mmio_read: u64,
    /// MMIO register write (posted PCI write).
    pub mmio_write: u64,
    /// Address-space/domain switch, including the TLB and cache refill tax
    /// the paper identifies as the dominant overhead of the hosted model
    /// (§2, citing [12]).
    pub domain_switch: u64,
    /// Cold-delivery refill: the extra sTLB/cache warm-up paid when a
    /// frame is delivered by a NIC softirq running on a different
    /// physical CPU than the owning guest's vCPU (or while the guest
    /// sleeps), so none of the guest's receive path is resident. The
    /// cache-local slice of the same refill tax `domain_switch` models;
    /// charged only when the scheduler model is enabled.
    pub cold_delivery_refill: u64,
    /// Hypercall entry/exit (guest → hypervisor → guest, no space switch).
    pub hypercall: u64,
    /// Delivering a virtual interrupt/event to a domain.
    pub virq_deliver: u64,
    /// Grant-table map of one page (baseline Xen I/O channel).
    pub grant_map: u64,
    /// Grant-table unmap of one page.
    pub grant_unmap: u64,
    /// Hit on an already-established grant mapping (zero-copy mode):
    /// validating the cached entry and bumping its recycle index — no
    /// hypercall, no page-table work.
    pub grant_cache_hit: u64,
    /// Pinning one pool page through the IOMMU allowlist at map time
    /// (page-table walk, allowlist insert, flush of the stale IOTLB
    /// entry). Paid once per pool page, never per packet.
    pub pin_page: u64,
    /// Fixed dispatch overhead of taking the copy fallback in zero-copy
    /// mode (detecting the misaligned/exhausted/not-granted buffer and
    /// routing the frame to the bounce path), on top of the copy itself.
    pub copy_fallback: u64,
    /// Software bridge lookup + forwarding decision in dom0.
    pub bridge_per_packet: u64,
    /// Fixed cost of a memory copy (function call, setup).
    pub copy_base: u64,
    /// Per-byte cost of guest-visible packet copies (cache-cold), in
    /// 1/100 cycle units (235 = 2.35 cycles/byte; Fig. 8 discussion:
    /// 3525 cycles to copy a 1500-byte packet).
    pub copy_per_byte_x100: u64,
    /// Per-packet TCP/IP transmit-side stack cost (socket, TCP, IP, queue).
    pub tcp_tx_per_packet: u64,
    /// Per-packet TCP/IP receive-side stack cost (softirq, TCP, socket).
    pub tcp_rx_per_packet: u64,
    /// Additional paravirtualisation tax per packet for a kernel running
    /// on Xen rather than bare metal (pte updates, event checks).
    pub paravirt_tax_per_packet: u64,
    /// netfront/netback per-packet processing (requests, responses, skb
    /// juggling) on the baseline Xen guest path — charged on each side.
    pub netfront_per_packet: u64,
    /// Upcall stack-switch bookkeeping (beyond domain switches and virq).
    pub upcall_overhead: u64,
    /// Saving one deferred upcall into the request ring (routine id,
    /// parameters, continuation id — no domain switch).
    pub upcall_enqueue: u64,
    /// Fixed cost of draining the deferred-upcall ring once: switching to
    /// the upcall stack, walking the ring, posting the batched completion
    /// event (the two domain switches, virq and hypercall are charged by
    /// the hypervisor as usual — per *flush*, not per call).
    pub upcall_flush_overhead: u64,
    /// Per-entry dom0 dispatch during a flush (decode the ring entry,
    /// rebuild the call frame), beyond the routine's own cost.
    pub upcall_dispatch: u64,
    /// Posting one completion record (continuation id, return value) back
    /// through the event channel.
    pub upcall_complete: u64,
    /// Interrupt dispatch cost (vector to handler).
    pub irq_dispatch: u64,
    /// One ITR auto-tune retune: evaluating the `e1000_update_itr`-style
    /// state machine over the window counters plus the posted MMIO write
    /// that reprograms the throttling register. Charged only when the
    /// register actually changes (window evaluations that keep the value
    /// are below the model's resolution).
    pub itr_retune: u64,
    /// One NAPI mode transition (interrupt→poll or poll→interrupt): the
    /// posted `IMC`/`IMS` mask write plus the poll-list bookkeeping the
    /// real `__napi_schedule`/`napi_complete` pair does. Charged at each
    /// switch, never per packet.
    pub napi_switch: u64,
    /// Dispatching one budgeted poll pass from softirq context: no
    /// vector, no `ICR` read — cheaper than [`CostParams::irq_dispatch`]
    /// because the device is masked and the softirq was already raised.
    pub napi_poll_dispatch: u64,
    /// Dropping one frame at RX-descriptor refill time because its
    /// destination guest's backlog is over the admission watermark: a
    /// queue-length compare and a counter bump, paid *before* any reap,
    /// demux or copy work — the whole point of early drop.
    pub early_drop: u64,
    /// Allocating/freeing an sk_buff in the kernel model.
    pub skb_alloc: u64,
    /// DMA map/unmap bookkeeping in the kernel model.
    pub dma_map: u64,
    /// Spinlock acquire/release pair (uncontended).
    pub spinlock: u64,
    /// `eth_type_trans` header inspection.
    pub eth_type_trans: u64,
    /// Additional dom0 backend processing per transmitted packet on the
    /// baseline Xen guest path (request consumption, response production,
    /// skb bookkeeping — the paper's "expensive bridging and grant table
    /// operations in the driver domain", §2).
    pub backend_tx_extra: u64,
    /// Additional dom0 backend processing per received packet on the
    /// baseline path (the RX side is heavier: flipping/copying decisions,
    /// response ring maintenance, fragment bookkeeping).
    pub backend_rx_extra: u64,
    /// Hypervisor glue per transmitted packet on the TwinDrivers path:
    /// hypercall argument handling, acquiring the dom0 skb, chaining the
    /// guest page fragment (paper §5.3).
    pub twin_glue_tx: u64,
    /// Hypervisor glue per received packet on the TwinDrivers path:
    /// scheduling the softirq, guest queue management.
    pub twin_glue_rx: u64,
    /// Guest-side paravirtual driver cost per packet (TwinDrivers path).
    pub pv_driver_guest: u64,
    /// Transmit-stack cost for the second and later packets of one burst
    /// handed to the stack together (TSO/GSO-style aggregation: socket
    /// wakeups, queue-discipline entry and route lookups amortise across
    /// the burst; the first packet of a burst still pays
    /// [`CostParams::tcp_tx_per_packet`]).
    pub tcp_tx_batch_marginal: u64,
    /// Receive-stack cost for the second and later packets of one burst
    /// delivered from a single coalesced interrupt (GRO/NAPI-style
    /// aggregation: softirq entry, per-wakeup scheduling and socket
    /// bookkeeping amortise; the first packet still pays
    /// [`CostParams::tcp_rx_per_packet`]).
    pub tcp_rx_batch_marginal: u64,
}

impl Default for CostParams {
    fn default() -> CostParams {
        CostParams {
            alu: 1,
            mov_reg: 1,
            load: 4,
            store: 4,
            mul: 4,
            branch_not_taken: 1,
            branch_taken: 2,
            call: 4,
            ret: 4,
            string_per_elem: 1,
            cli_sti: 8,
            mmio_read: 250,
            mmio_write: 100,
            domain_switch: 2800,
            cold_delivery_refill: 3400,
            hypercall: 700,
            virq_deliver: 450,
            grant_map: 1050,
            grant_unmap: 950,
            grant_cache_hit: 90,
            pin_page: 400,
            copy_fallback: 120,
            bridge_per_packet: 580,
            copy_base: 60,
            copy_per_byte_x100: 235,
            tcp_tx_per_packet: 3950,
            tcp_rx_per_packet: 8650,
            paravirt_tax_per_packet: 1150,
            netfront_per_packet: 1750,
            // Upcall stub bookkeeping beyond the two domain switches and
            // the virq/hypercall pair; the full guest-context upcall then
            // costs ~12.7k cycles, matching the first-bar drop of Fig 10.
            upcall_overhead: 5950,
            upcall_enqueue: 140,
            upcall_flush_overhead: 1450,
            upcall_dispatch: 170,
            upcall_complete: 90,
            irq_dispatch: 350,
            itr_retune: 220,
            napi_switch: 180,
            napi_poll_dispatch: 260,
            early_drop: 40,
            skb_alloc: 180,
            dma_map: 120,
            spinlock: 40,
            eth_type_trans: 60,
            backend_tx_extra: 3600,
            backend_rx_extra: 7200,
            twin_glue_tx: 1400,
            twin_glue_rx: 600,
            pv_driver_guest: 250,
            tcp_tx_batch_marginal: 1900,
            tcp_rx_batch_marginal: 4300,
        }
    }
}

impl CostParams {
    /// Cycles to copy `bytes` bytes (base + per-byte).
    pub fn copy_cycles(&self, bytes: u64) -> u64 {
        self.copy_base + (bytes * self.copy_per_byte_x100) / 100
    }
}

/// The virtual clock: a monotonic cycle counter advanced by the cost
/// accounting itself. Every cycle the interpreter or a model charges to
/// *any* domain also moves this clock forward, so "when" is derived from
/// "how much work happened" — the one coherent notion of time every
/// time-driven feature (kernel timers, interrupt moderation, upcall-flush
/// deadlines) keys on.
///
/// Unlike the per-domain totals, the clock is **never reset**: it
/// survives [`CycleMeter::reset`] so timers armed before a measurement
/// window still fire at the right instant inside it. Idle time (a system
/// waiting for the wire, a harness modeling inter-arrival gaps) advances
/// the clock *without* charging any domain via
/// [`CycleMeter::advance_idle`], so per-packet cycle breakdowns are
/// untouched by waiting.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now: u64,
}

impl VirtualClock {
    /// Current virtual time in cycles since machine construction.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Moves time forward by `cycles`.
    pub fn advance(&mut self, cycles: u64) {
        self.now += cycles;
    }
}

/// Cycle accounting with domain attribution and named event counters.
///
/// The attribution stack starts empty; charges made with no pushed domain
/// land in [`CostDomain::Dom0`] (a charge must go somewhere — tests push
/// explicitly).
#[derive(Clone, Debug, Default)]
pub struct CycleMeter {
    per_domain: BTreeMap<CostDomain, u64>,
    stack: Vec<CostDomain>,
    events: BTreeMap<&'static str, u64>,
    insns: u64,
    clock: VirtualClock,
}

impl CycleMeter {
    /// Creates a zeroed meter.
    pub fn new() -> CycleMeter {
        CycleMeter::default()
    }

    /// Pushes an attribution domain; subsequent charges accrue to it.
    pub fn push_domain(&mut self, d: CostDomain) {
        self.stack.push(d);
    }

    /// Pops the current attribution domain.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty (unbalanced push/pop is a harness bug).
    pub fn pop_domain(&mut self) {
        self.stack.pop().expect("unbalanced CycleMeter::pop_domain");
    }

    /// The current attribution domain.
    pub fn current_domain(&self) -> CostDomain {
        self.stack.last().copied().unwrap_or(CostDomain::Dom0)
    }

    /// Charges `cycles` to the current domain (and advances the virtual
    /// clock by the same amount — charged work *is* elapsed time).
    #[inline]
    pub fn charge(&mut self, cycles: u64) {
        let d = self.current_domain();
        *self.per_domain.entry(d).or_insert(0) += cycles;
        self.clock.advance(cycles);
    }

    /// Charges `cycles` to an explicit domain (bypassing the stack).
    pub fn charge_to(&mut self, d: CostDomain, cycles: u64) {
        *self.per_domain.entry(d).or_insert(0) += cycles;
        self.clock.advance(cycles);
    }

    /// Current virtual time in cycles (see [`VirtualClock`]).
    #[inline]
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// The virtual clock itself.
    pub fn clock(&self) -> VirtualClock {
        self.clock
    }

    /// Advances the virtual clock without charging any domain: idle time
    /// (wire inter-arrival gaps, a system waiting on a timer). Cycle
    /// breakdowns are unaffected; only "when" moves.
    pub fn advance_idle(&mut self, cycles: u64) {
        self.clock.advance(cycles);
    }

    /// Counts one executed instruction (for dynamic instruction stats).
    #[inline]
    pub fn count_insn(&mut self) {
        self.insns += 1;
    }

    /// Total executed instructions.
    pub fn insns(&self) -> u64 {
        self.insns
    }

    /// Increments a named event counter (e.g. `"domain_switch"`,
    /// `"stlb_miss"`, `"upcall"`).
    pub fn count_event(&mut self, name: &'static str) {
        *self.events.entry(name).or_insert(0) += 1;
    }

    /// Value of a named event counter.
    pub fn event(&self, name: &str) -> u64 {
        self.events.get(name).copied().unwrap_or(0)
    }

    /// All event counters.
    pub fn events(&self) -> &BTreeMap<&'static str, u64> {
        &self.events
    }

    /// Cycles charged to a domain.
    pub fn cycles(&self, d: CostDomain) -> u64 {
        self.per_domain.get(&d).copied().unwrap_or(0)
    }

    /// Total cycles across all domains.
    pub fn total_cycles(&self) -> u64 {
        self.per_domain.values().sum()
    }

    /// Snapshot of per-domain totals.
    pub fn snapshot(&self) -> BTreeMap<CostDomain, u64> {
        self.per_domain.clone()
    }

    /// Difference of two snapshots, as `self_at_later - earlier`.
    pub fn delta_since(&self, earlier: &BTreeMap<CostDomain, u64>) -> BTreeMap<CostDomain, u64> {
        let mut out = BTreeMap::new();
        for d in CostDomain::ALL {
            let now = self.cycles(d);
            let then = earlier.get(&d).copied().unwrap_or(0);
            out.insert(d, now - then);
        }
        out
    }

    /// Resets all counters (keeps the attribution stack). The virtual
    /// clock is deliberately **not** reset — time is monotonic across
    /// measurement windows, so armed timers and moderation windows stay
    /// coherent.
    pub fn reset(&mut self) {
        self.per_domain.clear();
        self.events.clear();
        self.insns = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_follows_stack() {
        let mut m = CycleMeter::new();
        m.push_domain(CostDomain::DomU);
        m.charge(10);
        m.push_domain(CostDomain::Xen);
        m.charge(5);
        m.pop_domain();
        m.charge(1);
        m.pop_domain();
        assert_eq!(m.cycles(CostDomain::DomU), 11);
        assert_eq!(m.cycles(CostDomain::Xen), 5);
        assert_eq!(m.total_cycles(), 16);
    }

    #[test]
    fn default_domain_is_dom0() {
        let mut m = CycleMeter::new();
        m.charge(3);
        assert_eq!(m.cycles(CostDomain::Dom0), 3);
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn unbalanced_pop_panics() {
        let mut m = CycleMeter::new();
        m.pop_domain();
    }

    #[test]
    fn events_and_reset() {
        let mut m = CycleMeter::new();
        m.count_event("stlb_miss");
        m.count_event("stlb_miss");
        assert_eq!(m.event("stlb_miss"), 2);
        assert_eq!(m.event("nonexistent"), 0);
        m.reset();
        assert_eq!(m.event("stlb_miss"), 0);
        assert_eq!(m.total_cycles(), 0);
    }

    #[test]
    fn snapshot_delta() {
        let mut m = CycleMeter::new();
        m.push_domain(CostDomain::Driver);
        m.charge(100);
        let snap = m.snapshot();
        m.charge(50);
        let d = m.delta_since(&snap);
        assert_eq!(d[&CostDomain::Driver], 50);
        assert_eq!(d[&CostDomain::Xen], 0);
    }

    #[test]
    fn virtual_clock_tracks_all_charges_and_survives_reset() {
        let mut m = CycleMeter::new();
        assert_eq!(m.now(), 0);
        m.push_domain(CostDomain::Driver);
        m.charge(100);
        m.pop_domain();
        m.charge_to(CostDomain::Xen, 40);
        assert_eq!(m.now(), 140, "every charge advances the clock");
        m.advance_idle(1000);
        assert_eq!(m.now(), 1140);
        assert_eq!(m.total_cycles(), 140, "idle time charges nothing");
        m.reset();
        assert_eq!(m.total_cycles(), 0);
        assert_eq!(m.now(), 1140, "the clock is monotonic across resets");
        m.charge(5);
        assert_eq!(m.now(), 1145);
    }

    #[test]
    fn copy_cycles_matches_paper_scale() {
        let c = CostParams::default();
        // Paper: ~3525 cycles to copy a 1500-byte packet (Fig. 8 text).
        let cycles = c.copy_cycles(1500);
        assert!((3000..4200).contains(&cycles), "copy of 1500B = {cycles}");
    }
}
