//! The instruction interpreter: CPU state, faults, environment hooks and
//! the `run` loop.
//!
//! Control transfers out of ISA code happen two ways:
//!
//! * returning to [`crate::RETURN_SENTINEL`] stops the run loop with
//!   [`StopReason::Returned`] — native code (kernel model, hypervisor)
//!   calls ISA functions by pushing a frame and running to that sentinel;
//! * calling an *extern trampoline* address dispatches to
//!   [`Env::extern_call`] — this is how driver code calls support routines
//!   (`netdev_alloc_skb`, …), which the environment may implement natively
//!   in dom0, natively in the hypervisor (paper §4.3), or as an upcall
//!   stub (paper §4.2).

use crate::space::{PageKind, SpaceId};
use crate::{Machine, EXTERN_BASE, PAGE_SIZE, RETURN_SENTINEL};
use std::error::Error;
use std::fmt;
use twin_isa::{AluOp, Cond, Insn, MemRef, Operand, Reg, Rep, ShiftOp, StrOp, Target, UnOp, Width};

/// Privilege mode of the executing CPU.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ExecMode {
    /// Guest kernel / driver-domain code: no access to the hypervisor
    /// region.
    Guest,
    /// Hypervisor code (including the derived hypervisor driver): may
    /// touch addresses above [`crate::HYPER_BASE`].
    Hypervisor,
}

/// Machine faults. These abort the current run and surface to the caller
/// (the hypervisor model decides what to do — e.g. abort the driver,
/// paper §4.1 "on such an illegal memory access by the driver, it is
/// aborted").
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Fault {
    /// Access to an unmapped page.
    PageFault {
        /// Faulting virtual address.
        addr: u64,
        /// Whether the access was a write.
        write: bool,
    },
    /// Protection violation (guest touching hypervisor region, write to
    /// read-only page).
    ProtFault {
        /// Faulting virtual address.
        addr: u64,
    },
    /// Raw access to an MMIO page through a non-MMIO path.
    MmioAccess {
        /// Faulting virtual address.
        addr: u64,
    },
    /// Instruction fetch outside any loaded image (wild jump).
    BadFetch {
        /// The bad program counter.
        pc: u64,
    },
    /// `ud2` executed.
    BadInstruction,
    /// `int3` executed (used to mark deliberate aborts).
    Breakpoint,
    /// A call to an extern trampoline the environment does not implement.
    UnknownExtern(String),
    /// The environment vetoed an operation (e.g. SVM denied an access —
    /// the message says why).
    EnvFault(String),
    /// Physical memory exhausted.
    OutOfMemory,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::PageFault { addr, write } => {
                write!(
                    f,
                    "page fault at {addr:#x} ({})",
                    if *write { "write" } else { "read" }
                )
            }
            Fault::ProtFault { addr } => write!(f, "protection fault at {addr:#x}"),
            Fault::MmioAccess { addr } => write!(f, "raw access to mmio page at {addr:#x}"),
            Fault::BadFetch { pc } => write!(f, "instruction fetch from {pc:#x}"),
            Fault::BadInstruction => write!(f, "undefined instruction"),
            Fault::Breakpoint => write!(f, "breakpoint"),
            Fault::UnknownExtern(name) => write!(f, "call to unimplemented extern `{name}`"),
            Fault::EnvFault(msg) => write!(f, "environment fault: {msg}"),
            Fault::OutOfMemory => write!(f, "simulated physical memory exhausted"),
        }
    }
}

impl Error for Fault {}

/// Why a `run` ended without a fault.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// Returned to [`RETURN_SENTINEL`] — the called ISA function finished.
    Returned,
    /// `hlt` executed.
    Halted,
    /// The instruction budget was exhausted (VINO-style watchdog,
    /// paper §4.5.2).
    Budget,
}

/// Condition flags.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct Flags {
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Carry flag.
    pub cf: bool,
    /// Overflow flag.
    pub of: bool,
}

/// CPU state: registers, flags, program counter, current address space and
/// privilege mode.
#[derive(Clone, Debug)]
pub struct Cpu {
    regs: [u32; 8],
    /// Condition flags.
    pub flags: Flags,
    /// Program counter.
    pub pc: u64,
    /// Current address space.
    pub space: SpaceId,
    /// Privilege mode.
    pub mode: ExecMode,
    /// Virtual interrupt-enable flag (manipulated by `cli`/`sti`).
    pub if_enabled: bool,
}

impl Cpu {
    /// Creates a CPU with zeroed registers in the given space and mode.
    pub fn new(space: SpaceId, mode: ExecMode) -> Cpu {
        Cpu {
            regs: [0; 8],
            flags: Flags::default(),
            pc: 0,
            space,
            mode,
            if_enabled: true,
        }
    }

    /// Reads a register (full 32 bits).
    #[inline]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register (full 32 bits).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        self.regs[r.index()] = v;
    }

    /// Writes the low `w` bytes of a register, preserving the rest
    /// (x86 partial-register semantics).
    pub fn set_reg_w(&mut self, r: Reg, w: Width, v: u32) {
        let mask = w.mask() as u32;
        let old = self.regs[r.index()];
        self.regs[r.index()] = (old & !mask) | (v & mask);
    }

    /// Sets the stack pointer.
    pub fn set_stack(&mut self, top: u64) {
        self.set_reg(Reg::Esp, top as u32);
    }

    /// Pushes a 32-bit value on the stack.
    ///
    /// # Errors
    ///
    /// Faults if the stack page is unmapped (guard-page hit).
    pub fn push(&mut self, m: &mut Machine, v: u32) -> Result<(), Fault> {
        let esp = self.reg(Reg::Esp).wrapping_sub(4);
        self.set_reg(Reg::Esp, esp);
        m.write_u32(self.space, self.mode, esp as u64, v)
    }

    /// Pops a 32-bit value off the stack.
    ///
    /// # Errors
    ///
    /// Faults if the stack page is unmapped.
    pub fn pop(&mut self, m: &mut Machine) -> Result<u32, Fault> {
        let esp = self.reg(Reg::Esp);
        let v = m.read_u32(self.space, self.mode, esp as u64)?;
        self.set_reg(Reg::Esp, esp.wrapping_add(4));
        Ok(v)
    }

    /// Pushes `args` (right to left, cdecl) and the return sentinel; after
    /// this, point `pc` at a function and `run` until
    /// [`StopReason::Returned`].
    ///
    /// # Errors
    ///
    /// Faults if the stack pages are unmapped.
    pub fn push_call_frame(&mut self, m: &mut Machine, args: &[u32]) -> Result<(), Fault> {
        for a in args.iter().rev() {
            self.push(m, *a)?;
        }
        self.push(m, RETURN_SENTINEL as u32)?;
        Ok(())
    }

    /// Reads argument `i` (0-based) of the current cdecl frame, assuming
    /// `pc` is at the function entry (return address on top of stack).
    ///
    /// # Errors
    ///
    /// Faults if the stack read fails.
    pub fn arg(&self, m: &Machine, i: u32) -> Result<u32, Fault> {
        let esp = self.reg(Reg::Esp) as u64;
        m.read_u32(self.space, self.mode, esp + 4 + 4 * i as u64)
    }
}

/// The execution environment: extern dispatch and MMIO routing.
///
/// Implemented by the kernel model (dom0 support routines), the hypervisor
/// (support routines, upcall stubs, SVM slow path) and by tests.
pub trait Env {
    /// Called when ISA code calls an extern trampoline. The callee's
    /// return value goes in `%eax`; the run loop performs the `ret`.
    ///
    /// # Errors
    ///
    /// May fault (e.g. unknown extern, or a support routine detecting an
    /// invalid argument).
    fn extern_call(&mut self, name: &str, m: &mut Machine, cpu: &mut Cpu) -> Result<(), Fault>;

    /// MMIO load from device `dev` at byte `offset` of its window.
    ///
    /// # Errors
    ///
    /// Device-specific faults.
    fn mmio_read(&mut self, m: &mut Machine, dev: u32, offset: u64, w: Width)
        -> Result<u32, Fault>;

    /// MMIO store to device `dev`.
    ///
    /// # Errors
    ///
    /// Device-specific faults.
    fn mmio_write(
        &mut self,
        m: &mut Machine,
        dev: u32,
        offset: u64,
        w: Width,
        val: u32,
    ) -> Result<(), Fault>;
}

/// An environment with no externs and no devices; any extern call or MMIO
/// access faults. Useful for pure-code tests.
#[derive(Copy, Clone, Debug, Default)]
pub struct NullEnv;

impl Env for NullEnv {
    fn extern_call(&mut self, name: &str, _m: &mut Machine, _cpu: &mut Cpu) -> Result<(), Fault> {
        Err(Fault::UnknownExtern(name.to_string()))
    }
    fn mmio_read(
        &mut self,
        _m: &mut Machine,
        _dev: u32,
        offset: u64,
        _w: Width,
    ) -> Result<u32, Fault> {
        Err(Fault::MmioAccess { addr: offset })
    }
    fn mmio_write(
        &mut self,
        _m: &mut Machine,
        _dev: u32,
        offset: u64,
        _w: Width,
        _val: u32,
    ) -> Result<(), Fault> {
        Err(Fault::MmioAccess { addr: offset })
    }
}

fn ea(cpu: &Cpu, mem: &MemRef) -> u64 {
    debug_assert!(mem.sym.is_none(), "unlinked memory reference executed");
    let mut a = mem.disp as u32;
    if let Some(b) = mem.base {
        a = a.wrapping_add(cpu.reg(b));
    }
    if let Some((i, s)) = mem.index {
        a = a.wrapping_add(cpu.reg(i).wrapping_mul(s as u32));
    }
    a as u64
}

fn read_mem(
    m: &mut Machine,
    cpu: &mut Cpu,
    env: &mut dyn Env,
    addr: u64,
    w: Width,
) -> Result<u32, Fault> {
    let t = m.translate(cpu.space, cpu.mode, addr, false)?;
    match t.entry.kind {
        PageKind::Ram => {
            let cost = m.cost.load;
            m.meter.charge(cost);
            m.read_virt(cpu.space, cpu.mode, addr, w)
        }
        PageKind::Mmio(dev) => {
            let cost = m.cost.mmio_read;
            m.meter.charge(cost);
            m.meter.count_event("mmio_read");
            env.mmio_read(m, dev, t.entry.pfn * PAGE_SIZE + t.offset, w)
        }
    }
}

fn write_mem(
    m: &mut Machine,
    cpu: &mut Cpu,
    env: &mut dyn Env,
    addr: u64,
    w: Width,
    val: u32,
) -> Result<(), Fault> {
    let t = m.translate(cpu.space, cpu.mode, addr, true)?;
    match t.entry.kind {
        PageKind::Ram => {
            let cost = m.cost.store;
            m.meter.charge(cost);
            m.write_virt(cpu.space, cpu.mode, addr, w, val)
        }
        PageKind::Mmio(dev) => {
            let cost = m.cost.mmio_write;
            m.meter.charge(cost);
            m.meter.count_event("mmio_write");
            env.mmio_write(m, dev, t.entry.pfn * PAGE_SIZE + t.offset, w, val)
        }
    }
}

fn read_operand(
    m: &mut Machine,
    cpu: &mut Cpu,
    env: &mut dyn Env,
    op: &Operand,
    w: Width,
) -> Result<u32, Fault> {
    Ok(match op {
        Operand::Reg(r) => cpu.reg(*r) & w.mask() as u32,
        Operand::Imm(v) => (*v as u32) & w.mask() as u32,
        Operand::Sym(s, _) => {
            return Err(Fault::EnvFault(format!("unlinked symbol operand `{s}`")))
        }
        Operand::Mem(mem) => read_mem(m, cpu, env, ea(cpu, mem), w)? & w.mask() as u32,
    })
}

fn write_operand(
    m: &mut Machine,
    cpu: &mut Cpu,
    env: &mut dyn Env,
    op: &Operand,
    w: Width,
    val: u32,
) -> Result<(), Fault> {
    match op {
        Operand::Reg(r) => {
            cpu.set_reg_w(*r, w, val);
            Ok(())
        }
        Operand::Mem(mem) => write_mem(m, cpu, env, ea(cpu, mem), w, val),
        other => Err(Fault::EnvFault(format!(
            "write to non-lvalue operand `{other:?}`"
        ))),
    }
}

fn set_zs(flags: &mut Flags, val: u32, w: Width) {
    let m = w.mask() as u32;
    flags.zf = val & m == 0;
    flags.sf = val & (1 << (w.bytes() * 8 - 1)) != 0;
}

fn alu(flags: &mut Flags, op: AluOp, a: u32, b: u32, w: Width) -> u32 {
    // a = dst, b = src; result = a op b.
    let bits = w.bytes() * 8;
    let mask = w.mask() as u32;
    let (a, b) = (a & mask, b & mask);
    let sign = 1u32 << (bits - 1);
    let res = match op {
        AluOp::Add => {
            let wide = a as u64 + b as u64;
            flags.cf = wide > mask as u64;
            let r = (wide as u32) & mask;
            flags.of = ((a ^ r) & (b ^ r) & sign) != 0;
            r
        }
        AluOp::Sub => {
            flags.cf = a < b;
            let r = a.wrapping_sub(b) & mask;
            flags.of = ((a ^ b) & (a ^ r) & sign) != 0;
            r
        }
        AluOp::And => {
            flags.cf = false;
            flags.of = false;
            a & b
        }
        AluOp::Or => {
            flags.cf = false;
            flags.of = false;
            a | b
        }
        AluOp::Xor => {
            flags.cf = false;
            flags.of = false;
            a ^ b
        }
    };
    set_zs(flags, res, w);
    res
}

fn cond_true(flags: &Flags, c: Cond) -> bool {
    match c {
        Cond::E => flags.zf,
        Cond::Ne => !flags.zf,
        Cond::L => flags.sf != flags.of,
        Cond::Le => flags.zf || flags.sf != flags.of,
        Cond::G => !flags.zf && flags.sf == flags.of,
        Cond::Ge => flags.sf == flags.of,
        Cond::B => flags.cf,
        Cond::Be => flags.cf || flags.zf,
        Cond::A => !flags.cf && !flags.zf,
        Cond::Ae => !flags.cf,
        Cond::S => flags.sf,
        Cond::Ns => !flags.sf,
    }
}

fn target_addr(
    m: &mut Machine,
    cpu: &mut Cpu,
    env: &mut dyn Env,
    t: &Target,
) -> Result<u64, Fault> {
    Ok(match t {
        Target::Abs(a) => *a,
        Target::Label(l) => return Err(Fault::EnvFault(format!("unlinked label target `{l}`"))),
        Target::Reg(r) => cpu.reg(*r) as u64,
        Target::Mem(mem) => read_mem(m, cpu, env, ea(cpu, mem), Width::Long)? as u64,
    })
}

/// Runs the interpreter until the code returns to the sentinel, halts,
/// faults, or `max_insns` instructions have executed.
///
/// # Errors
///
/// Returns the [`Fault`] that stopped execution; `cpu.pc` points at the
/// faulting instruction.
pub fn run(
    m: &mut Machine,
    cpu: &mut Cpu,
    env: &mut dyn Env,
    max_insns: u64,
) -> Result<StopReason, Fault> {
    let mut budget = max_insns;
    loop {
        if cpu.pc == RETURN_SENTINEL {
            return Ok(StopReason::Returned);
        }
        if cpu.pc >= EXTERN_BASE && cpu.pc < RETURN_SENTINEL {
            // Extern trampoline: dispatch to the environment, then return.
            let name = m
                .extern_name(cpu.pc)
                .ok_or(Fault::BadFetch { pc: cpu.pc })?
                .to_string();
            env.extern_call(&name, m, cpu)?;
            let ret = cpu.pop(m)?;
            cpu.pc = ret as u64;
            continue;
        }
        if budget == 0 {
            return Ok(StopReason::Budget);
        }
        budget -= 1;

        let insn = match m.image_at(cpu.pc).and_then(|img| img.fetch(cpu.pc)) {
            Some(i) => i.clone(),
            None => return Err(Fault::BadFetch { pc: cpu.pc }),
        };
        m.meter.count_insn();
        let next_pc = cpu.pc + twin_isa::INSN_SIZE;

        match &insn {
            Insn::Mov { w, dst, src } => {
                let v = read_operand(m, cpu, env, src, *w)?;
                let base = m.cost.mov_reg;
                m.meter.charge(base);
                write_operand(m, cpu, env, dst, *w, v)?;
                cpu.pc = next_pc;
            }
            Insn::Movzx { w, dst, src } => {
                let v = read_operand(m, cpu, env, src, *w)?;
                let base = m.cost.mov_reg;
                m.meter.charge(base);
                cpu.set_reg(*dst, v);
                cpu.pc = next_pc;
            }
            Insn::Movsx { w, dst, src } => {
                let v = read_operand(m, cpu, env, src, *w)?;
                let bits = w.bytes() * 8;
                let sext = ((v as i32) << (32 - bits)) >> (32 - bits);
                let base = m.cost.mov_reg;
                m.meter.charge(base);
                cpu.set_reg(*dst, sext as u32);
                cpu.pc = next_pc;
            }
            Insn::Lea { dst, mem } => {
                let a = ea(cpu, mem);
                let base = m.cost.mov_reg;
                m.meter.charge(base);
                cpu.set_reg(*dst, a as u32);
                cpu.pc = next_pc;
            }
            Insn::Alu { op, w, dst, src } => {
                let b = read_operand(m, cpu, env, src, *w)?;
                let a = read_operand(m, cpu, env, dst, *w)?;
                let r = alu(&mut cpu.flags, *op, a, b, *w);
                let base = m.cost.alu;
                m.meter.charge(base);
                write_operand(m, cpu, env, dst, *w, r)?;
                cpu.pc = next_pc;
            }
            Insn::Shift { op, dst, amount } => {
                let amt = read_operand(m, cpu, env, amount, Width::Byte)? & 31;
                let a = read_operand(m, cpu, env, dst, Width::Long)?;
                let r = match op {
                    ShiftOp::Shl => {
                        cpu.flags.cf = amt > 0 && (a >> (32 - amt)) & 1 != 0;
                        a.wrapping_shl(amt)
                    }
                    ShiftOp::Shr => {
                        cpu.flags.cf = amt > 0 && (a >> (amt - 1)) & 1 != 0;
                        a.wrapping_shr(amt)
                    }
                    ShiftOp::Sar => {
                        cpu.flags.cf = amt > 0 && ((a as i32) >> (amt - 1)) & 1 != 0;
                        ((a as i32).wrapping_shr(amt)) as u32
                    }
                };
                cpu.flags.of = false;
                set_zs(&mut cpu.flags, r, Width::Long);
                let base = m.cost.alu;
                m.meter.charge(base);
                write_operand(m, cpu, env, dst, Width::Long, r)?;
                cpu.pc = next_pc;
            }
            Insn::Cmp { w, src, dst } => {
                let b = read_operand(m, cpu, env, src, *w)?;
                let a = read_operand(m, cpu, env, dst, *w)?;
                alu(&mut cpu.flags, AluOp::Sub, a, b, *w);
                let base = m.cost.alu;
                m.meter.charge(base);
                cpu.pc = next_pc;
            }
            Insn::Test { w, src, dst } => {
                let b = read_operand(m, cpu, env, src, *w)?;
                let a = read_operand(m, cpu, env, dst, *w)?;
                alu(&mut cpu.flags, AluOp::And, a, b, *w);
                let base = m.cost.alu;
                m.meter.charge(base);
                cpu.pc = next_pc;
            }
            Insn::Un { op, w, dst } => {
                let a = read_operand(m, cpu, env, dst, *w)?;
                let mask = w.mask() as u32;
                let r = match op {
                    UnOp::Neg => {
                        cpu.flags.cf = a != 0;
                        (a.wrapping_neg()) & mask
                    }
                    UnOp::Not => !a & mask,
                    UnOp::Inc => {
                        let cf = cpu.flags.cf;
                        let r = alu(&mut cpu.flags, AluOp::Add, a, 1, *w);
                        cpu.flags.cf = cf; // inc preserves CF like x86
                        r
                    }
                    UnOp::Dec => {
                        let cf = cpu.flags.cf;
                        let r = alu(&mut cpu.flags, AluOp::Sub, a, 1, *w);
                        cpu.flags.cf = cf;
                        r
                    }
                };
                if matches!(op, UnOp::Neg | UnOp::Not) {
                    set_zs(&mut cpu.flags, r, *w);
                }
                let base = m.cost.alu;
                m.meter.charge(base);
                write_operand(m, cpu, env, dst, *w, r)?;
                cpu.pc = next_pc;
            }
            Insn::Imul { dst, src } => {
                let b = read_operand(m, cpu, env, src, Width::Long)?;
                let a = cpu.reg(*dst);
                let r = a.wrapping_mul(b);
                set_zs(&mut cpu.flags, r, Width::Long);
                let base = m.cost.mul;
                m.meter.charge(base);
                cpu.set_reg(*dst, r);
                cpu.pc = next_pc;
            }
            Insn::Push { src } => {
                let v = read_operand(m, cpu, env, src, Width::Long)?;
                let base = m.cost.store;
                m.meter.charge(base);
                cpu.push(m, v)?;
                cpu.pc = next_pc;
            }
            Insn::Pop { dst } => {
                let base = m.cost.load;
                m.meter.charge(base);
                let v = cpu.pop(m)?;
                write_operand(m, cpu, env, dst, Width::Long, v)?;
                cpu.pc = next_pc;
            }
            Insn::Jmp { target } => {
                let a = target_addr(m, cpu, env, target)?;
                let base = m.cost.branch_taken;
                m.meter.charge(base);
                cpu.pc = a;
            }
            Insn::Jcc { cond, target } => {
                if cond_true(&cpu.flags, *cond) {
                    let a = target_addr(m, cpu, env, target)?;
                    let base = m.cost.branch_taken;
                    m.meter.charge(base);
                    cpu.pc = a;
                } else {
                    let base = m.cost.branch_not_taken;
                    m.meter.charge(base);
                    cpu.pc = next_pc;
                }
            }
            Insn::Call { target } => {
                let a = target_addr(m, cpu, env, target)?;
                let base = m.cost.call;
                m.meter.charge(base);
                cpu.push(m, next_pc as u32)?;
                cpu.pc = a;
            }
            Insn::Ret => {
                let base = m.cost.ret;
                m.meter.charge(base);
                let a = cpu.pop(m)?;
                cpu.pc = a as u64;
            }
            Insn::Str { op, w, rep } => {
                exec_string(m, cpu, env, *op, *w, *rep)?;
                cpu.pc = next_pc;
            }
            Insn::Cli => {
                cpu.if_enabled = false;
                let base = m.cost.cli_sti;
                m.meter.charge(base);
                cpu.pc = next_pc;
            }
            Insn::Sti => {
                cpu.if_enabled = true;
                let base = m.cost.cli_sti;
                m.meter.charge(base);
                cpu.pc = next_pc;
            }
            Insn::Nop => {
                let base = m.cost.alu;
                m.meter.charge(base);
                cpu.pc = next_pc;
            }
            Insn::Hlt => {
                cpu.pc = next_pc;
                return Ok(StopReason::Halted);
            }
            Insn::Int3 => return Err(Fault::Breakpoint),
            Insn::Ud2 => return Err(Fault::BadInstruction),
        }
    }
}

fn exec_string(
    m: &mut Machine,
    cpu: &mut Cpu,
    env: &mut dyn Env,
    op: StrOp,
    w: Width,
    rep: Rep,
) -> Result<(), Fault> {
    let step = w.bytes() as u32;
    let mut count = match rep {
        Rep::None => 1,
        _ => cpu.reg(Reg::Ecx),
    };
    while count > 0 {
        let per = m.cost.string_per_elem;
        m.meter.charge(per);
        let mut equal = true;
        match op {
            StrOp::Movs => {
                let v = read_mem(m, cpu, env, cpu.reg(Reg::Esi) as u64, w)?;
                write_mem(m, cpu, env, cpu.reg(Reg::Edi) as u64, w, v)?;
                cpu.set_reg(Reg::Esi, cpu.reg(Reg::Esi).wrapping_add(step));
                cpu.set_reg(Reg::Edi, cpu.reg(Reg::Edi).wrapping_add(step));
            }
            StrOp::Stos => {
                write_mem(m, cpu, env, cpu.reg(Reg::Edi) as u64, w, cpu.reg(Reg::Eax))?;
                cpu.set_reg(Reg::Edi, cpu.reg(Reg::Edi).wrapping_add(step));
            }
            StrOp::Lods => {
                let v = read_mem(m, cpu, env, cpu.reg(Reg::Esi) as u64, w)?;
                cpu.set_reg_w(Reg::Eax, w, v);
                cpu.set_reg(Reg::Esi, cpu.reg(Reg::Esi).wrapping_add(step));
            }
            StrOp::Cmps => {
                let a = read_mem(m, cpu, env, cpu.reg(Reg::Esi) as u64, w)?;
                let b = read_mem(m, cpu, env, cpu.reg(Reg::Edi) as u64, w)?;
                alu(&mut cpu.flags, AluOp::Sub, a, b, w);
                equal = cpu.flags.zf;
                cpu.set_reg(Reg::Esi, cpu.reg(Reg::Esi).wrapping_add(step));
                cpu.set_reg(Reg::Edi, cpu.reg(Reg::Edi).wrapping_add(step));
            }
            StrOp::Scas => {
                let b = read_mem(m, cpu, env, cpu.reg(Reg::Edi) as u64, w)?;
                let a = cpu.reg(Reg::Eax) & w.mask() as u32;
                alu(&mut cpu.flags, AluOp::Sub, a, b, w);
                equal = cpu.flags.zf;
                cpu.set_reg(Reg::Edi, cpu.reg(Reg::Edi).wrapping_add(step));
            }
        }
        count -= 1;
        if !matches!(rep, Rep::None) {
            cpu.set_reg(Reg::Ecx, count);
        }
        match rep {
            Rep::Repe if !equal => break,
            Rep::Repne if equal => break,
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExecMode;
    use twin_isa::asm::assemble;

    fn setup(src: &str) -> (Machine, Cpu, u64) {
        let module = assemble("t", src).unwrap();
        let mut m = Machine::new();
        let space = m.new_space();
        m.map_fresh(space, 0x2000_0000, 8).unwrap(); // heap
        m.map_stack(space, 0x3000_0000, 4).unwrap();
        let img = m.load_image(&module, 0x0800_0000, |_| None).unwrap();
        let entry = m.image(img).export("f").expect("function f");
        let mut cpu = Cpu::new(space, ExecMode::Guest);
        cpu.set_stack(0x3000_0000 + 4 * PAGE_SIZE);
        (m, cpu, entry)
    }

    fn call(m: &mut Machine, cpu: &mut Cpu, entry: u64, args: &[u32]) -> StopReason {
        cpu.push_call_frame(m, args).unwrap();
        cpu.pc = entry;
        run(m, cpu, &mut NullEnv, 100_000).unwrap()
    }

    #[test]
    fn arith_and_return() {
        let (mut m, mut cpu, f) = setup(
            r#"
            .text
            .globl f
        f:
            movl 4(%esp), %eax
            movl 8(%esp), %ecx
            addl %ecx, %eax
            ret
        "#,
        );
        let stop = call(&mut m, &mut cpu, f, &[30, 12]);
        assert_eq!(stop, StopReason::Returned);
        assert_eq!(cpu.reg(Reg::Eax), 42);
    }

    #[test]
    fn loops_and_branches() {
        let (mut m, mut cpu, f) = setup(
            r#"
            .text
            .globl f
        f:
            movl 4(%esp), %ecx
            movl $0, %eax
        loop_top:
            cmpl $0, %ecx
            je done
            addl %ecx, %eax
            decl %ecx
            jmp loop_top
        done:
            ret
        "#,
        );
        call(&mut m, &mut cpu, f, &[10]);
        assert_eq!(cpu.reg(Reg::Eax), 55);
    }

    #[test]
    fn memory_load_store() {
        let (mut m, mut cpu, f) = setup(
            r#"
            .text
            .globl f
        f:
            movl 4(%esp), %ebx
            movl $77, (%ebx)
            movl (%ebx), %eax
            addl $1, 4(%ebx)
            movl 4(%ebx), %ecx
            addl %ecx, %eax
            ret
        "#,
        );
        call(&mut m, &mut cpu, f, &[0x2000_0100]);
        assert_eq!(cpu.reg(Reg::Eax), 78);
        assert_eq!(
            m.read_u32(cpu.space, ExecMode::Guest, 0x2000_0100).unwrap(),
            77
        );
    }

    #[test]
    fn sub_word_ops() {
        let (mut m, mut cpu, f) = setup(
            r#"
            .text
            .globl f
        f:
            movl 4(%esp), %ebx
            movl $0x11223344, (%ebx)
            movzbl (%ebx), %eax
            movzwl 2(%ebx), %ecx
            movsbl 3(%ebx), %edx
            ret
        "#,
        );
        call(&mut m, &mut cpu, f, &[0x2000_0200]);
        assert_eq!(cpu.reg(Reg::Eax), 0x44);
        assert_eq!(cpu.reg(Reg::Ecx), 0x1122);
        assert_eq!(cpu.reg(Reg::Edx), 0x11); // positive sign-extend
    }

    #[test]
    fn string_copy_rep_movs() {
        let (mut m, mut cpu, f) = setup(
            r#"
            .text
            .globl f
        f:
            movl $0x20000000, %esi
            movl $0x20000400, %edi
            movl $16, %ecx
            rep movsl
            ret
        "#,
        );
        for i in 0..16u32 {
            m.write_u32(
                cpu.space,
                ExecMode::Guest,
                0x2000_0000 + 4 * i as u64,
                i * 3,
            )
            .unwrap();
        }
        call(&mut m, &mut cpu, f, &[]);
        for i in 0..16u32 {
            assert_eq!(
                m.read_u32(cpu.space, ExecMode::Guest, 0x2000_0400 + 4 * i as u64)
                    .unwrap(),
                i * 3
            );
        }
        assert_eq!(cpu.reg(Reg::Ecx), 0);
    }

    #[test]
    fn indirect_call_through_register_and_memory() {
        let (mut m, mut cpu, f) = setup(
            r#"
            .text
            .globl f
        f:
            movl $target, %eax
            call *%eax
            movl %eax, %ebx
            movl $0x20000000, %ecx
            movl $target, (%ecx)
            call *(%ecx)
            addl %ebx, %eax
            ret
            .globl target
        target:
            movl $21, %eax
            ret
        "#,
        );
        call(&mut m, &mut cpu, f, &[]);
        assert_eq!(cpu.reg(Reg::Eax), 42);
    }

    #[test]
    fn guard_page_faults_on_stack_overflow() {
        let (mut m, mut cpu, f) = setup(
            r#"
            .text
            .globl f
        f:
            pushl %eax
            jmp f
        "#,
        );
        cpu.push_call_frame(&mut m, &[]).unwrap();
        cpu.pc = f;
        let e = run(&mut m, &mut cpu, &mut NullEnv, 1_000_000).unwrap_err();
        assert!(matches!(e, Fault::PageFault { write: true, .. }));
    }

    #[test]
    fn budget_stops_infinite_loop() {
        let (mut m, mut cpu, f) = setup(
            r#"
            .text
            .globl f
        f:
            jmp f
        "#,
        );
        cpu.push_call_frame(&mut m, &[]).unwrap();
        cpu.pc = f;
        let stop = run(&mut m, &mut cpu, &mut NullEnv, 1000).unwrap();
        assert_eq!(stop, StopReason::Budget);
    }

    #[test]
    fn extern_dispatch() {
        struct AddEnv;
        impl Env for AddEnv {
            fn extern_call(
                &mut self,
                name: &str,
                m: &mut Machine,
                cpu: &mut Cpu,
            ) -> Result<(), Fault> {
                assert_eq!(name, "add2");
                let a = cpu.arg(m, 0)?;
                let b = cpu.arg(m, 1)?;
                cpu.set_reg(Reg::Eax, a + b);
                Ok(())
            }
            fn mmio_read(
                &mut self,
                _: &mut Machine,
                _: u32,
                a: u64,
                _: Width,
            ) -> Result<u32, Fault> {
                Err(Fault::MmioAccess { addr: a })
            }
            fn mmio_write(
                &mut self,
                _: &mut Machine,
                _: u32,
                a: u64,
                _: Width,
                _: u32,
            ) -> Result<(), Fault> {
                Err(Fault::MmioAccess { addr: a })
            }
        }
        let module = assemble(
            "t",
            r#"
            .extern add2
            .text
            .globl f
        f:
            pushl $5
            pushl $37
            call add2
            addl $8, %esp
            ret
        "#,
        )
        .unwrap();
        let mut m = Machine::new();
        let space = m.new_space();
        m.map_stack(space, 0x3000_0000, 4).unwrap();
        let img = m.load_image(&module, 0x0800_0000, |_| None).unwrap();
        let entry = m.image(img).export("f").unwrap();
        let mut cpu = Cpu::new(space, ExecMode::Guest);
        cpu.set_stack(0x3000_0000 + 4 * PAGE_SIZE);
        cpu.push_call_frame(&mut m, &[]).unwrap();
        cpu.pc = entry;
        let stop = run(&mut m, &mut cpu, &mut AddEnv, 1000).unwrap();
        assert_eq!(stop, StopReason::Returned);
        assert_eq!(cpu.reg(Reg::Eax), 42);
    }

    #[test]
    fn flags_signed_unsigned() {
        let (mut m, mut cpu, f) = setup(
            r#"
            .text
            .globl f
        f:
            movl $1, %eax
            cmpl $2, %eax      # 1 - 2: below and less
            jb below_ok
            movl $0, %eax
            ret
        below_ok:
            cmpl $-1, %eax     # 1 - (-1) = 2: unsigned 1 < 0xffffffff -> B; signed 1 > -1 -> G
            jb ub_ok
            movl $0, %eax
            ret
        ub_ok:
            cmpl $-1, %eax
            jg done
            movl $0, %eax
            ret
        done:
            movl $1, %eax
            ret
        "#,
        );
        call(&mut m, &mut cpu, f, &[]);
        assert_eq!(cpu.reg(Reg::Eax), 1);
    }

    #[test]
    fn cli_sti_toggle() {
        let (mut m, mut cpu, f) = setup(".text\n.globl f\nf:\n cli\n sti\n cli\n ret\n");
        call(&mut m, &mut cpu, f, &[]);
        assert!(!cpu.if_enabled);
    }

    #[test]
    fn int3_and_ud2_fault() {
        let (mut m, mut cpu, f) = setup(".text\n.globl f\nf:\n int3\n");
        cpu.push_call_frame(&mut m, &[]).unwrap();
        cpu.pc = f;
        assert!(matches!(
            run(&mut m, &mut cpu, &mut NullEnv, 10),
            Err(Fault::Breakpoint)
        ));

        let (mut m, mut cpu, f) = setup(".text\n.globl f\nf:\n ud2\n");
        cpu.push_call_frame(&mut m, &[]).unwrap();
        cpu.pc = f;
        assert!(matches!(
            run(&mut m, &mut cpu, &mut NullEnv, 10),
            Err(Fault::BadInstruction)
        ));
    }

    #[test]
    fn inc_dec_preserve_carry() {
        // x86 semantics: inc/dec update ZF/SF/OF but leave CF alone.
        let (mut m, mut cpu, f) = setup(
            r#"
            .text
            .globl f
        f:
            movl $0xffffffff, %eax
            addl $1, %eax          # sets CF
            movl $5, %ecx
            incl %ecx              # must not clear CF
            movl $0, %eax
            jnc done
            movl $1, %eax
        done:
            ret
        "#,
        );
        call(&mut m, &mut cpu, f, &[]);
        assert_eq!(cpu.reg(Reg::Eax), 1, "CF survived inc");
    }

    #[test]
    fn signed_overflow_flag() {
        let (mut m, mut cpu, f) = setup(
            r#"
            .text
            .globl f
        f:
            movl $0x7fffffff, %eax
            addl $1, %eax          # overflow: 0x80000000
            movl $0, %eax
            jl of_set              # SF != OF would be false... use js
            movl $2, %eax
        of_set:
            ret
        "#,
        );
        // After 0x7fffffff + 1: SF=1, OF=1 -> not less (SF == OF).
        call(&mut m, &mut cpu, f, &[]);
        assert_eq!(cpu.reg(Reg::Eax), 2);
    }

    #[test]
    fn movsx_negative_byte() {
        let (mut m, mut cpu, f) = setup(
            r#"
            .text
            .globl f
        f:
            movl 4(%esp), %ebx
            movl $0xfe, (%ebx)
            movsbl (%ebx), %eax
            ret
        "#,
        );
        call(&mut m, &mut cpu, f, &[0x2000_0300]);
        assert_eq!(cpu.reg(Reg::Eax), 0xffff_fffe, "sign-extended -2");
    }

    #[test]
    fn shifts_set_carry_from_last_bit() {
        let (mut m, mut cpu, f) = setup(
            r#"
            .text
            .globl f
        f:
            movl $0x80000001, %eax
            shrl $1, %eax          # CF = old bit 0 = 1
            movl $0, %eax
            jnc done
            movl $1, %eax
        done:
            ret
        "#,
        );
        call(&mut m, &mut cpu, f, &[]);
        assert_eq!(cpu.reg(Reg::Eax), 1);
    }

    #[test]
    fn partial_register_writes_preserve_high_bits() {
        let (mut m, mut cpu, f) = setup(
            r#"
            .text
            .globl f
        f:
            movl $0x11223344, %eax
            movl 4(%esp), %ebx
            movl $0xaa, (%ebx)
            movb (%ebx), %eax      # only the low byte changes
            ret
        "#,
        );
        call(&mut m, &mut cpu, f, &[0x2000_0400]);
        assert_eq!(cpu.reg(Reg::Eax), 0x1122_33aa);
    }

    #[test]
    fn repe_cmps_stops_at_difference() {
        let (mut m, mut cpu, f) = setup(
            r#"
            .text
            .globl f
        f:
            movl $0x20000000, %esi
            movl $0x20000100, %edi
            movl $8, %ecx
            repe cmpsl
            movl %ecx, %eax        # remaining count after mismatch
            ret
        "#,
        );
        for i in 0..8u32 {
            m.write_u32(cpu.space, ExecMode::Guest, 0x2000_0000 + 4 * i as u64, i)
                .unwrap();
            let v = if i == 5 { 99 } else { i };
            m.write_u32(cpu.space, ExecMode::Guest, 0x2000_0100 + 4 * i as u64, v)
                .unwrap();
        }
        call(&mut m, &mut cpu, f, &[]);
        // Mismatch at element 5 (0-based); ecx counted down 6 times.
        assert_eq!(cpu.reg(Reg::Eax), 2);
    }

    #[test]
    fn cycles_are_charged() {
        let (mut m, mut cpu, f) = setup(
            r#"
            .text
            .globl f
        f:
            movl $0, %eax
            movl 4(%esp), %ecx
        top:
            addl $1, %eax
            cmpl %ecx, %eax
            jne top
            ret
        "#,
        );
        m.meter.push_domain(crate::CostDomain::Driver);
        call(&mut m, &mut cpu, f, &[100]);
        m.meter.pop_domain();
        let cycles = m.meter.cycles(crate::CostDomain::Driver);
        assert!(cycles > 300, "loop of 100 iterations charged {cycles}");
        assert!(m.meter.insns() > 300);
    }
}
