//! # twin-machine — the simulated machine
//!
//! Executes [`twin_isa`] code against simulated physical memory with 4 KiB
//! paging, per-domain address spaces, a shared hypervisor region (mapped in
//! every space, accessible only in hypervisor mode — like Xen's reserved
//! region), MMIO routing, faults, and a deterministic cycle cost model.
//!
//! The paper's evaluation is reported in *CPU cycles per packet* attributed
//! to four categories (dom0 kernel, guest kernel, Xen, the e1000 driver —
//! Figures 7/8). [`CycleMeter`] implements exactly that attribution: an
//! explicit stack of [`CostDomain`]s, charged by the interpreter for every
//! instruction and by the hypervisor/kernel models for every modeled
//! operation (domain switch, hypercall, grant op, copy, …) with constants
//! from [`CostParams`].
//!
//! Driver code runs *for real*: the interpreter in [`interp`] steps the ISA
//! instruction by instruction, so the 2–3× slowdown of the SVM-rewritten
//! driver (paper §6.2) emerges from the rewritten instruction stream rather
//! than from a fudge factor.
//!
//! ```
//! use twin_isa::asm::assemble;
//! use twin_machine::{Machine, Cpu, ExecMode, NullEnv, run, StopReason};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = assemble("m", ".text\n.globl f\nf:\n movl $7, %eax\n addl %eax, %eax\n ret\n")?;
//! let mut m = Machine::new();
//! let space = m.new_space();
//! let image = m.load_image(&module, 0x0800_0000, |_| None)?;
//! let mut cpu = Cpu::new(space, ExecMode::Guest);
//! m.map_stack(space, 0x3000_0000, 4)?;
//! cpu.set_stack(0x3000_0000 + 4 * 4096);
//! cpu.push_call_frame(&mut m, &[])?;
//! cpu.pc = m.image(image).export("f").unwrap();
//! let stop = run(&mut m, &mut cpu, &mut NullEnv, 1000)?;
//! assert_eq!(stop, StopReason::Returned);
//! assert_eq!(cpu.reg(twin_isa::Reg::Eax), 14);
//! # Ok(())
//! # }
//! ```

pub mod cost;
pub mod image;
pub mod interp;
pub mod mem;
pub mod space;

pub use cost::{CostDomain, CostParams, CycleMeter, VirtualClock};
pub use image::{CodeImage, ImageId, LinkError};
pub use interp::{run, Cpu, Env, ExecMode, Fault, NullEnv, StopReason};
pub use mem::{PhysMem, PAGE_SIZE};
pub use space::{PageEntry, PageKind, PageTable, SpaceId};

use twin_isa::Module;

/// Base of the hypervisor-reserved virtual region, mapped into every
/// address space but accessible only in [`ExecMode::Hypervisor`].
pub const HYPER_BASE: u64 = 0xF000_0000;

/// Sentinel return address: `ret`-ing to it stops the interpreter with
/// [`StopReason::Returned`], which is how native code calls into ISA code.
pub const RETURN_SENTINEL: u64 = 0xFFFF_FFF0;

/// Base virtual address where extern trampolines are laid out; each
/// resolved extern symbol gets a unique address `EXTERN_BASE + 8*id`.
pub const EXTERN_BASE: u64 = 0xEE00_0000;

/// The complete simulated machine: physical memory, address spaces, the
/// shared hypervisor region, loaded code images, extern trampolines and the
/// cycle meter.
#[derive(Debug)]
pub struct Machine {
    /// Physical memory and frame allocator.
    pub phys: PhysMem,
    /// Per-domain address spaces, indexed by [`SpaceId`].
    spaces: Vec<PageTable>,
    /// The shared hypervisor region (addresses above [`HYPER_BASE`]).
    pub hyper: PageTable,
    /// Cycle accounting.
    pub meter: CycleMeter,
    /// Cost constants.
    pub cost: CostParams,
    /// Flight recorder (disabled by default). Recording is pure
    /// bookkeeping outside the charged path: [`Machine::trace_event`]
    /// *reads* the clock and domain stack but never charges, so a traced
    /// run's cycle accounting is bit-identical to an untraced run's.
    pub trace: twin_trace::FlightRecorder,
    images: Vec<CodeImage>,
    extern_names: Vec<String>,
}

impl Default for Machine {
    fn default() -> Self {
        Machine::new()
    }
}

impl Machine {
    /// Creates a machine with default cost parameters and 256 MiB of
    /// simulated physical memory.
    pub fn new() -> Machine {
        Machine::with_cost(CostParams::default())
    }

    /// Creates a machine with explicit cost parameters.
    pub fn with_cost(cost: CostParams) -> Machine {
        Machine {
            phys: PhysMem::new(256 * 1024 * 1024 / PAGE_SIZE as usize),
            spaces: Vec::new(),
            hyper: PageTable::new(),
            meter: CycleMeter::new(),
            cost,
            trace: twin_trace::FlightRecorder::new(),
            images: Vec::new(),
            extern_names: Vec::new(),
        }
    }

    /// Current virtual time in cycles (monotonic; advanced by every cost
    /// charge and by explicit idle advances — see
    /// [`cost::VirtualClock`]).
    pub fn now_cycles(&self) -> u64 {
        self.meter.now()
    }

    /// Records a flight-recorder event stamped with the current virtual
    /// clock and cost domain. A branch-and-return while tracing is
    /// disabled; never charges a cycle either way.
    #[inline]
    pub fn trace_event(&mut self, event: twin_trace::TraceEvent) {
        if self.trace.enabled() {
            self.trace
                .record(self.meter.now(), self.meter.current_domain().label(), event);
        }
    }

    /// Creates a new, empty address space and returns its id.
    pub fn new_space(&mut self) -> SpaceId {
        let id = SpaceId(self.spaces.len());
        self.spaces.push(PageTable::new());
        id
    }

    /// Number of address spaces.
    pub fn space_count(&self) -> usize {
        self.spaces.len()
    }

    /// Borrow an address space's page table.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a space of this machine.
    pub fn space(&self, id: SpaceId) -> &PageTable {
        &self.spaces[id.0]
    }

    /// Mutably borrow an address space's page table.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a space of this machine.
    pub fn space_mut(&mut self, id: SpaceId) -> &mut PageTable {
        &mut self.spaces[id.0]
    }

    /// Registers an extern symbol, returning its trampoline address.
    /// Calling this address transfers control to [`Env::extern_call`].
    pub fn register_extern(&mut self, name: &str) -> u64 {
        if let Some(i) = self.extern_names.iter().position(|n| n == name) {
            return EXTERN_BASE + 8 * i as u64;
        }
        self.extern_names.push(name.to_string());
        EXTERN_BASE + 8 * (self.extern_names.len() - 1) as u64
    }

    /// Looks up an already-registered extern trampoline address.
    pub fn extern_addr(&self, name: &str) -> Option<u64> {
        self.extern_names
            .iter()
            .position(|n| n == name)
            .map(|i| EXTERN_BASE + 8 * i as u64)
    }

    /// Resolves a trampoline address back to the extern's name.
    pub fn extern_name(&self, addr: u64) -> Option<&str> {
        if addr < EXTERN_BASE || (addr - EXTERN_BASE) % 8 != 0 {
            return None;
        }
        self.extern_names
            .get(((addr - EXTERN_BASE) / 8) as usize)
            .map(String::as_str)
    }

    /// Loads a module's text at `code_base`, resolving local labels and
    /// data symbols via the module plus `resolve` for everything else
    /// (externs and cross-module symbols). Unresolved externs are
    /// auto-registered as trampolines.
    ///
    /// The data section is *not* placed by this call — callers (the dom0
    /// module loader, the hypervisor ELF-like loader) map and fill data
    /// pages themselves and pass the resulting symbol addresses through
    /// `resolve`. See `twin-kernel` and `twin-xen`.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError`] if a referenced symbol cannot be resolved.
    pub fn load_image<F>(
        &mut self,
        module: &Module,
        code_base: u64,
        mut resolve: F,
    ) -> Result<ImageId, LinkError>
    where
        F: FnMut(&str) -> Option<u64>,
    {
        // Register all declared externs up-front so their trampoline
        // addresses are stable, then link with full resolution.
        let declared: Vec<String> = module.externs.iter().cloned().collect();
        for name in &declared {
            // Caller-provided resolution wins; only register the rest.
            if resolve(name).is_none() {
                self.register_extern(name);
            }
        }
        let names = self.extern_names.clone();
        let image = image::link(module, code_base, |name| {
            if let Some(a) = resolve(name) {
                return Some(a);
            }
            names
                .iter()
                .position(|n| n == name)
                .map(|i| EXTERN_BASE + 8 * i as u64)
        })?;
        let id = ImageId(self.images.len());
        self.images.push(image);
        Ok(id)
    }

    /// Borrow a loaded image.
    ///
    /// # Panics
    ///
    /// Panics if `id` is invalid.
    pub fn image(&self, id: ImageId) -> &CodeImage {
        &self.images[id.0]
    }

    /// The image containing code address `pc`, if any.
    pub fn image_at(&self, pc: u64) -> Option<&CodeImage> {
        self.images.iter().find(|img| img.contains(pc))
    }

    /// Allocates `pages` physical frames and maps them contiguously at
    /// `base` in space `space` (read-write data pages).
    ///
    /// # Errors
    ///
    /// Returns [`Fault::OutOfMemory`] when physical memory is exhausted.
    pub fn map_fresh(&mut self, space: SpaceId, base: u64, pages: u64) -> Result<(), Fault> {
        for i in 0..pages {
            let pfn = self.phys.alloc_frame().ok_or(Fault::OutOfMemory)?;
            self.spaces[space.0].map(base + i * PAGE_SIZE, PageEntry::ram(pfn, true));
        }
        Ok(())
    }

    /// Maps a stack of `pages` pages at `base`. The page below `base` is
    /// deliberately left unmapped as a guard page (paper §4.1: hypervisor
    /// driver stack overflow "is prevented by the use of guard pages").
    ///
    /// # Errors
    ///
    /// Returns [`Fault::OutOfMemory`] when physical memory is exhausted.
    pub fn map_stack(&mut self, space: SpaceId, base: u64, pages: u64) -> Result<(), Fault> {
        self.map_fresh(space, base, pages)
    }

    /// Allocates and maps pages in the *hypervisor* region.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::OutOfMemory`] when physical memory is exhausted.
    pub fn map_hyper_fresh(&mut self, base: u64, pages: u64) -> Result<(), Fault> {
        for i in 0..pages {
            let pfn = self.phys.alloc_frame().ok_or(Fault::OutOfMemory)?;
            self.hyper
                .map(base + i * PAGE_SIZE, PageEntry::ram(pfn, true));
        }
        Ok(())
    }

    /// Translates a virtual address in `space`/`mode` to a page entry and
    /// offset, without charging cycles.
    ///
    /// # Errors
    ///
    /// [`Fault::PageFault`] if unmapped, [`Fault::ProtFault`] for a guest
    /// touching the hypervisor region or writing a read-only page.
    pub fn translate(
        &self,
        space: SpaceId,
        mode: ExecMode,
        addr: u64,
        write: bool,
    ) -> Result<space::Translation, Fault> {
        let table = if addr >= HYPER_BASE {
            if mode != ExecMode::Hypervisor {
                return Err(Fault::ProtFault { addr });
            }
            &self.hyper
        } else {
            &self.spaces[space.0]
        };
        let entry = table.lookup(addr).ok_or(Fault::PageFault { addr, write })?;
        if write && !entry.writable {
            return Err(Fault::ProtFault { addr });
        }
        Ok(space::Translation {
            entry,
            offset: addr % PAGE_SIZE,
        })
    }

    /// Reads `width` bytes at a virtual address (no cycle charge; the
    /// interpreter charges separately). Values are zero-extended.
    ///
    /// # Errors
    ///
    /// Propagates translation faults; MMIO pages cannot be read through
    /// this accessor and return [`Fault::MmioAccess`].
    pub fn read_virt(
        &self,
        space: SpaceId,
        mode: ExecMode,
        addr: u64,
        width: twin_isa::Width,
    ) -> Result<u32, Fault> {
        let mut val = 0u32;
        for i in 0..width.bytes() {
            let t = self.translate(space, mode, addr + i, false)?;
            let pfn = match t.entry.kind {
                PageKind::Ram => t.entry.pfn,
                PageKind::Mmio(_) => return Err(Fault::MmioAccess { addr }),
            };
            let b = self.phys.read_u8(pfn * PAGE_SIZE + (addr + i) % PAGE_SIZE);
            val |= (b as u32) << (8 * i);
        }
        Ok(val)
    }

    /// Writes `width` bytes at a virtual address.
    ///
    /// # Errors
    ///
    /// Propagates translation faults; see [`Machine::read_virt`].
    pub fn write_virt(
        &mut self,
        space: SpaceId,
        mode: ExecMode,
        addr: u64,
        width: twin_isa::Width,
        val: u32,
    ) -> Result<(), Fault> {
        for i in 0..width.bytes() {
            let t = self.translate(space, mode, addr + i, true)?;
            let pfn = match t.entry.kind {
                PageKind::Ram => t.entry.pfn,
                PageKind::Mmio(_) => return Err(Fault::MmioAccess { addr }),
            };
            self.phys.write_u8(
                pfn * PAGE_SIZE + (addr + i) % PAGE_SIZE,
                (val >> (8 * i)) as u8,
            );
        }
        Ok(())
    }

    /// Reads a 32-bit little-endian value; convenience wrapper.
    ///
    /// # Errors
    ///
    /// See [`Machine::read_virt`].
    pub fn read_u32(&self, space: SpaceId, mode: ExecMode, addr: u64) -> Result<u32, Fault> {
        self.read_virt(space, mode, addr, twin_isa::Width::Long)
    }

    /// Writes a 32-bit little-endian value; convenience wrapper.
    ///
    /// # Errors
    ///
    /// See [`Machine::write_virt`].
    pub fn write_u32(
        &mut self,
        space: SpaceId,
        mode: ExecMode,
        addr: u64,
        val: u32,
    ) -> Result<(), Fault> {
        self.write_virt(space, mode, addr, twin_isa::Width::Long, val)
    }

    /// Copies `len` bytes of simulated memory between virtual ranges which
    /// may live in different spaces. Used by the hypervisor's packet-copy
    /// path; charges nothing (callers charge copy cycles explicitly).
    ///
    /// # Errors
    ///
    /// Propagates translation faults from either side.
    pub fn copy_virt(
        &mut self,
        src: (SpaceId, ExecMode, u64),
        dst: (SpaceId, ExecMode, u64),
        len: u64,
    ) -> Result<(), Fault> {
        for i in 0..len {
            let b = self.read_virt(src.0, src.1, src.2 + i, twin_isa::Width::Byte)?;
            self.write_virt(dst.0, dst.1, dst.2 + i, twin_isa::Width::Byte, b)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twin_isa::Width;

    #[test]
    fn map_and_access() {
        let mut m = Machine::new();
        let s = m.new_space();
        m.map_fresh(s, 0x2000_0000, 2).unwrap();
        m.write_u32(s, ExecMode::Guest, 0x2000_0ffc, 0xdead_beef)
            .unwrap();
        assert_eq!(
            m.read_u32(s, ExecMode::Guest, 0x2000_0ffc).unwrap(),
            0xdead_beef
        );
        // Cross-page unaligned access works.
        m.write_u32(s, ExecMode::Guest, 0x2000_0ffe, 0x1234_5678)
            .unwrap();
        assert_eq!(
            m.read_u32(s, ExecMode::Guest, 0x2000_0ffe).unwrap(),
            0x1234_5678
        );
    }

    #[test]
    fn unmapped_faults() {
        let mut m = Machine::new();
        let s = m.new_space();
        let e = m.read_u32(s, ExecMode::Guest, 0x4000_0000).unwrap_err();
        assert!(matches!(e, Fault::PageFault { .. }));
    }

    #[test]
    fn hypervisor_region_protected_from_guests() {
        let mut m = Machine::new();
        let s = m.new_space();
        m.map_hyper_fresh(HYPER_BASE, 1).unwrap();
        let e = m.read_u32(s, ExecMode::Guest, HYPER_BASE).unwrap_err();
        assert!(matches!(e, Fault::ProtFault { .. }));
        assert!(m.read_u32(s, ExecMode::Hypervisor, HYPER_BASE).is_ok());
    }

    #[test]
    fn shared_mapping_between_spaces() {
        let mut m = Machine::new();
        let a = m.new_space();
        let b = m.new_space();
        let pfn = m.phys.alloc_frame().unwrap();
        m.space_mut(a).map(0x2000_0000, PageEntry::ram(pfn, true));
        m.space_mut(b).map(0x5000_0000, PageEntry::ram(pfn, true));
        m.write_u32(a, ExecMode::Guest, 0x2000_0004, 77).unwrap();
        assert_eq!(m.read_u32(b, ExecMode::Guest, 0x5000_0004).unwrap(), 77);
    }

    #[test]
    fn extern_registration_is_stable() {
        let mut m = Machine::new();
        let a1 = m.register_extern("netif_rx");
        let a2 = m.register_extern("netif_rx");
        assert_eq!(a1, a2);
        assert_eq!(m.extern_name(a1), Some("netif_rx"));
        assert_eq!(m.extern_addr("netif_rx"), Some(a1));
        let b = m.register_extern("netdev_alloc_skb");
        assert_ne!(a1, b);
    }

    #[test]
    fn readonly_pages_fault_on_write() {
        let mut m = Machine::new();
        let s = m.new_space();
        let pfn = m.phys.alloc_frame().unwrap();
        m.space_mut(s).map(0x2000_0000, PageEntry::ram(pfn, false));
        assert!(m
            .read_virt(s, ExecMode::Guest, 0x2000_0000, Width::Byte)
            .is_ok());
        let e = m
            .write_virt(s, ExecMode::Guest, 0x2000_0000, Width::Byte, 1)
            .unwrap_err();
        assert!(matches!(e, Fault::ProtFault { .. }));
    }

    #[test]
    fn copy_virt_across_spaces() {
        let mut m = Machine::new();
        let a = m.new_space();
        let b = m.new_space();
        m.map_fresh(a, 0x2000_0000, 1).unwrap();
        m.map_fresh(b, 0x2000_0000, 1).unwrap();
        for i in 0..16u32 {
            m.write_virt(a, ExecMode::Guest, 0x2000_0000 + i as u64, Width::Byte, i)
                .unwrap();
        }
        m.copy_virt(
            (a, ExecMode::Guest, 0x2000_0000),
            (b, ExecMode::Guest, 0x2000_0008),
            8,
        )
        .unwrap();
        assert_eq!(
            m.read_virt(b, ExecMode::Guest, 0x2000_000f, Width::Byte)
                .unwrap(),
            7
        );
    }
}
