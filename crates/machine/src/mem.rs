//! Simulated physical memory with a frame allocator.

use std::collections::BTreeSet;

/// Page size in bytes (4 KiB, matching the paper's x86-32 target).
pub const PAGE_SIZE: u64 = 4096;

/// Simulated physical memory: a flat byte array divided into frames, plus a
/// free-list allocator.
///
/// Frames are identified by physical frame number (`pfn`); byte `i` of
/// frame `f` lives at physical address `f * PAGE_SIZE + i`.
#[derive(Debug)]
pub struct PhysMem {
    bytes: Vec<u8>,
    free: BTreeSet<u64>,
    total_frames: usize,
}

impl PhysMem {
    /// Creates memory with `frames` frames, all free.
    pub fn new(frames: usize) -> PhysMem {
        PhysMem {
            bytes: vec![0; frames * PAGE_SIZE as usize],
            free: (0..frames as u64).collect(),
            total_frames: frames,
        }
    }

    /// Total number of frames.
    pub fn total_frames(&self) -> usize {
        self.total_frames
    }

    /// Number of currently free frames.
    pub fn free_frames(&self) -> usize {
        self.free.len()
    }

    /// Allocates the lowest-numbered free frame, zeroing it.
    /// Returns `None` when memory is exhausted.
    pub fn alloc_frame(&mut self) -> Option<u64> {
        let pfn = *self.free.iter().next()?;
        self.free.remove(&pfn);
        let start = (pfn * PAGE_SIZE) as usize;
        self.bytes[start..start + PAGE_SIZE as usize].fill(0);
        Some(pfn)
    }

    /// Returns a frame to the free list.
    ///
    /// # Panics
    ///
    /// Panics if the frame is already free or out of range (double free is
    /// a bug in the simulator itself, not a modeled driver bug).
    pub fn free_frame(&mut self, pfn: u64) {
        assert!((pfn as usize) < self.total_frames, "pfn {pfn} out of range");
        assert!(self.free.insert(pfn), "double free of pfn {pfn}");
    }

    /// Reads one byte at a physical address.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range physical addresses (simulator bug).
    #[inline]
    pub fn read_u8(&self, paddr: u64) -> u8 {
        self.bytes[paddr as usize]
    }

    /// Writes one byte at a physical address.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range physical addresses (simulator bug).
    #[inline]
    pub fn write_u8(&mut self, paddr: u64, val: u8) {
        self.bytes[paddr as usize] = val;
    }

    /// Reads a little-endian u32 at a physical address.
    pub fn read_u32(&self, paddr: u64) -> u32 {
        u32::from_le_bytes(
            self.bytes[paddr as usize..paddr as usize + 4]
                .try_into()
                .expect("4 bytes"),
        )
    }

    /// Writes a little-endian u32 at a physical address.
    pub fn write_u32(&mut self, paddr: u64, val: u32) {
        self.bytes[paddr as usize..paddr as usize + 4].copy_from_slice(&val.to_le_bytes());
    }

    /// Copies a byte slice into physical memory at `paddr`.
    pub fn write_bytes(&mut self, paddr: u64, data: &[u8]) {
        self.bytes[paddr as usize..paddr as usize + data.len()].copy_from_slice(data);
    }

    /// Reads `len` bytes starting at `paddr`.
    pub fn read_bytes(&self, paddr: u64, len: usize) -> &[u8] {
        &self.bytes[paddr as usize..paddr as usize + len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_zeroes_and_reuses() {
        let mut pm = PhysMem::new(4);
        let a = pm.alloc_frame().unwrap();
        pm.write_u8(a * PAGE_SIZE, 0xab);
        pm.free_frame(a);
        let b = pm.alloc_frame().unwrap();
        assert_eq!(a, b, "lowest frame is reused");
        assert_eq!(pm.read_u8(b * PAGE_SIZE), 0, "frame is zeroed on alloc");
    }

    #[test]
    fn exhaustion() {
        let mut pm = PhysMem::new(2);
        assert!(pm.alloc_frame().is_some());
        assert!(pm.alloc_frame().is_some());
        assert!(pm.alloc_frame().is_none());
        assert_eq!(pm.free_frames(), 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut pm = PhysMem::new(2);
        let a = pm.alloc_frame().unwrap();
        pm.free_frame(a);
        pm.free_frame(a);
    }

    #[test]
    fn u32_roundtrip() {
        let mut pm = PhysMem::new(1);
        pm.write_u32(12, 0xdead_beef);
        assert_eq!(pm.read_u32(12), 0xdead_beef);
        assert_eq!(pm.read_u8(12), 0xef, "little endian");
    }

    #[test]
    fn bulk_bytes() {
        let mut pm = PhysMem::new(1);
        pm.write_bytes(100, b"hello");
        assert_eq!(pm.read_bytes(100, 5), b"hello");
    }
}
