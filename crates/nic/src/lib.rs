//! # twin-nic — an e1000-like gigabit NIC model
//!
//! Models the hardware interface the Intel e1000 driver programs: a
//! memory-mapped register window (CTRL/STATUS/ICR/IMS/TCTL/RCTL, ring
//! registers TDBAL/TDLEN/TDH/TDT and RDBAL/RDLEN/RDH/RDT, receive-address
//! and statistics registers), legacy 16-byte transmit/receive descriptors
//! in driver memory, a DMA engine operating on simulated physical memory,
//! and a level-style interrupt (`ICR & IMS`).
//!
//! The driver in `twin-kernel` is written against this interface in ISA
//! assembly, so the TX path exercised by the TwinDrivers fast path —
//! write descriptor, bump `TDT` (one posted MMIO write), reap `DD` status
//! — matches the real driver's structure instruction for instruction.
//!
//! The "wire" side is exposed as plain queues: [`Nic::take_tx_frames`]
//! drains transmitted frames, [`Nic::deliver`] injects received frames
//! (returning backpressure when the RX ring is out of buffers, which real
//! e1000s report as missed-packet events).

use twin_machine::{PhysMem, PAGE_SIZE};
use twin_net::{Frame, MacAddr, ETH_HEADER_LEN, META_LEN};

/// Register offsets within the MMIO window (real e1000 layout).
pub mod regs {
    /// Device control.
    pub const CTRL: u64 = 0x00000;
    /// Device status (link up, speed).
    pub const STATUS: u64 = 0x00008;
    /// EEPROM read (EERD): write address, poll DONE, read data.
    pub const EERD: u64 = 0x00014;
    /// MDI control (MDIC): PHY register access.
    pub const MDIC: u64 = 0x00020;
    /// Interrupt cause read (read-to-clear).
    pub const ICR: u64 = 0x000C0;
    /// Interrupt throttling register: minimum inter-interrupt interval in
    /// [`crate::ITR_UNIT_CYCLES`]-cycle units (the real part's 256 ns
    /// granularity). 0 disables moderation.
    pub const ITR: u64 = 0x000C4;
    /// Interrupt cause set (software-triggered causes).
    pub const ICS: u64 = 0x000C8;
    /// Interrupt mask set/read.
    pub const IMS: u64 = 0x000D0;
    /// Interrupt mask clear.
    pub const IMC: u64 = 0x000D8;
    /// Receive control.
    pub const RCTL: u64 = 0x00100;
    /// Transmit control.
    pub const TCTL: u64 = 0x00400;
    /// RX descriptor base (low 32 bits).
    pub const RDBAL: u64 = 0x02800;
    /// RX descriptor ring length in bytes.
    pub const RDLEN: u64 = 0x02808;
    /// RX head (hardware-owned).
    pub const RDH: u64 = 0x02810;
    /// RX tail (software-owned).
    pub const RDT: u64 = 0x02818;
    /// TX descriptor base (low 32 bits).
    pub const TDBAL: u64 = 0x03800;
    /// TX descriptor ring length in bytes.
    pub const TDLEN: u64 = 0x03808;
    /// TX head (hardware-owned).
    pub const TDH: u64 = 0x03810;
    /// TX tail (software-owned).
    pub const TDT: u64 = 0x03818;
    /// Good packets received count (read-to-clear).
    pub const GPRC: u64 = 0x04074;
    /// Good packets transmitted count (read-to-clear).
    pub const GPTC: u64 = 0x04080;
    /// Missed packets count (RX ring empty).
    pub const MPC: u64 = 0x04010;
    /// Receive address low (MAC bytes 0-3).
    pub const RAL0: u64 = 0x05400;
    /// Receive address high (MAC bytes 4-5 + valid bit).
    pub const RAH0: u64 = 0x05404;
}

/// Interrupt cause bits.
pub mod intr {
    /// Transmit descriptor written back.
    pub const TXDW: u32 = 0x01;
    /// Link status change.
    pub const LSC: u32 = 0x04;
    /// Receiver timer (packet received).
    pub const RXT0: u32 = 0x80;
}

/// TX descriptor command bits.
pub mod txcmd {
    /// End of packet.
    pub const EOP: u8 = 0x01;
    /// Report status (write DD back).
    pub const RS: u8 = 0x08;
}

/// Descriptor status bits.
pub mod stat {
    /// Descriptor done.
    pub const DD: u8 = 0x01;
    /// End of packet (RX).
    pub const EOP: u8 = 0x02;
}

/// Size of one legacy descriptor in bytes.
pub const DESC_SIZE: u64 = 16;

/// Size of the MMIO register window in bytes (32 pages, like the real
/// device's 128 KiB BAR).
pub const MMIO_WINDOW: u64 = 32 * PAGE_SIZE;

/// Link speed in bits per second (1 GbE).
pub const LINK_BPS: u64 = 1_000_000_000;

/// Cycles per `ITR` register unit: the real e1000's throttling interval
/// granularity is 256 ns, which is 768 cycles on the modeled 3.0 GHz
/// Xeon.
pub const ITR_UNIT_CYCLES: u64 = 768;

/// Default auto-tune interval window in virtual cycles (~67 µs at
/// 3.0 GHz): long enough that a window at offered load holds several
/// packets, short enough that the tuner crosses the whole
/// [`ITR_LADDER`] well inside one measurement phase.
pub const AUTOTUNE_WINDOW_CYCLES: u64 = 200_000;

/// The ITR settings the auto-tuner steps along — exactly the static
/// moderation sweep's grid, so "tracking the pareto front" means landing
/// on the sweep point the current load regime would have picked.
pub const ITR_LADDER: [u32; 4] = [0, 500, 1000, 2000];

/// Consecutive busy tuner windows before sustained traffic counts as the
/// bulk regime (see [`classify_itr_window`]).
pub const BULK_STREAK_WINDOWS: u32 = 3;

/// Packets a window must carry to count as one sustained-busy window
/// toward [`BULK_STREAK_WINDOWS`]: a multi-window service span
/// contributes `min(elapsed, packets / BUSY_WINDOW_PACKETS)` streak
/// windows (at least one), so one small burst smeared across an
/// unserviced span — a moderated light-load wait, where the gated
/// cause also masks the idle signal — reads as a single busy window,
/// while genuinely saturated spans (tens of packets per window) keep
/// their full weight.
pub const BUSY_WINDOW_PACKETS: u64 = 8;

/// Consecutive *bursty* busy windows (each preceded by an idle gap)
/// before the bulk regime demotes. Linux's `e1000_update_itr` is
/// likewise asymmetric — `bulk_latency` only steps down on clearly
/// light intervals — so one isolated gap (a measurement drain, a brief
/// lull) does not throw away a converged setting, while a genuine drop
/// to bursty load demotes within two windows.
pub const BULK_DEMOTE_WINDOWS: u32 = 2;

/// Idle cycles between two busy windows that mark the traffic as
/// bursty: any gap at least this long (a quarter window) restarts the
/// sustained-load streak, so only genuinely back-to-back load — the
/// regime where interrupt cost compounds into receive livelock — can
/// climb to [`LatencyClass::BulkLatency`]. The tuner learns about idle
/// through [`ItrTuner::note_idle`]; a device whose latched cause is
/// merely waiting out its own moderation window is backlogged, not
/// idle, and must not be fed here.
pub const IDLE_RESET_CYCLES: u64 = AUTOTUNE_WINDOW_CYCLES / 4;

/// Consecutive *idle* windows before the tuner starts decaying toward
/// latency mode. Within the grace the knob is frozen, like the real
/// `e1000_update_itr` (which simply never runs without interrupts):
/// a pause while a latched cause waits out its own moderation window —
/// up to `2000 × 768` cycles ≈ 7.7 windows — must not soften the very
/// window it is waiting on, and an inter-burst lull stacked on top of
/// such a wait must not either. Sustained idleness beyond the grace
/// (~4.8 M cycles, 1.6 ms at 3 GHz) steps class and register down one
/// rung per window, so a device that goes genuinely quiet delivers its
/// next interrupt immediately.
pub const IDLE_DECAY_GRACE_WINDOWS: u32 = 24;

/// At most this many packets per window still counts as a trickle…
pub const TRICKLE_PACKETS: u64 = 4;

/// …provided they carry less than this many bytes (a few small frames:
/// pure latency mode, like Linux's `lowest_latency` small-packet rule).
pub const TRICKLE_BYTES: u64 = 4096;

/// Bytes/packet above which a window is bulk regardless of rate
/// (Linux's `bytes/packets > 8000` jumbo rule in `e1000_update_itr`).
pub const BULK_BYTES_PER_PACKET: u64 = 8000;

/// The three latency regimes of the Linux e1000 `e1000_update_itr`
/// state machine. Each maps to a target point on the [`ITR_LADDER`];
/// the tuner steps the `ITR` register one rung per window toward the
/// current class's target (hysteresis), so a transient window never
/// swings the knob across the whole range.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LatencyClass {
    /// Sporadic, small traffic: deliver every interrupt immediately.
    LowestLatency,
    /// Meaningful but bursty traffic: moderate lightly.
    LowLatency,
    /// Sustained traffic saturating the service capacity (the
    /// receive-livelock regime): moderate hard.
    BulkLatency,
}

impl LatencyClass {
    /// The ladder point this regime steers toward.
    pub fn target_itr(self) -> u32 {
        match self {
            LatencyClass::LowestLatency => 0,
            LatencyClass::LowLatency => 500,
            LatencyClass::BulkLatency => 2000,
        }
    }

    /// One step toward latency mode (an idle window's decay).
    pub fn decay(self) -> LatencyClass {
        match self {
            LatencyClass::BulkLatency => LatencyClass::LowLatency,
            _ => LatencyClass::LowestLatency,
        }
    }
}

/// Classifies one tuner window from its observed counters — the
/// `e1000_update_itr` decision, restated on the virtual clock:
///
/// * an idle window decays one class toward latency mode;
/// * jumbo-sized packets (`bytes/packet >` [`BULK_BYTES_PER_PACKET`])
///   are bulk at any rate, like the real driver's first test;
/// * the regime promotes on *sustainedness*: traffic in
///   [`BULK_STREAK_WINDOWS`] consecutive windows with no idle gap means
///   the device never goes quiet — the bulk regime where interrupt cost
///   compounds into receive livelock;
/// * demotion out of bulk is asymmetric: it needs
///   [`BULK_DEMOTE_WINDOWS`] consecutive *bursty* windows
///   (`light_streak`), so one isolated gap does not discard a converged
///   setting;
/// * below bulk, a trickle (≤ [`TRICKLE_PACKETS`] packets under
///   [`TRICKLE_BYTES`] bytes) is `lowest_latency` and anything more is
///   `low_latency`.
///
/// `busy_streak` counts consecutive no-idle-gap windows with traffic
/// *including* this one; `light_streak` counts consecutive bursty
/// (idle-gapped) busy windows including this one. Pure function so
/// boundary tests can hit it directly.
pub fn classify_itr_window(
    current: LatencyClass,
    busy_streak: u32,
    light_streak: u32,
    packets: u64,
    bytes: u64,
) -> LatencyClass {
    if packets == 0 {
        return current.decay();
    }
    if bytes / packets > BULK_BYTES_PER_PACKET {
        return LatencyClass::BulkLatency;
    }
    if busy_streak >= BULK_STREAK_WINDOWS {
        return LatencyClass::BulkLatency;
    }
    if current == LatencyClass::BulkLatency && light_streak < BULK_DEMOTE_WINDOWS {
        return LatencyClass::BulkLatency;
    }
    if packets <= TRICKLE_PACKETS && bytes < TRICKLE_BYTES {
        LatencyClass::LowestLatency
    } else {
        LatencyClass::LowLatency
    }
}

/// One rung along the [`ITR_LADDER`] from `cur` toward `target` (both
/// snapped to the nearest rung first, so an externally programmed
/// off-grid value converges onto the ladder instead of wedging).
pub fn itr_step_toward(cur: u32, target: u32) -> u32 {
    let nearest = |v: u32| -> usize {
        ITR_LADDER
            .iter()
            .enumerate()
            .min_by_key(|(_, &l)| l.abs_diff(v))
            .map(|(i, _)| i)
            .expect("non-empty ladder")
    };
    let c = nearest(cur);
    let t = nearest(target);
    match t.cmp(&c) {
        std::cmp::Ordering::Greater => ITR_LADDER[c + 1],
        std::cmp::Ordering::Less => ITR_LADDER[c - 1],
        std::cmp::Ordering::Equal => ITR_LADDER[c],
    }
}

/// Counters accumulated by the auto-tuner over its most recent closed
/// interval window (test/bench observability).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TunerWindow {
    /// Packets the device received in the window.
    pub packets: u64,
    /// Bytes the device received in the window.
    pub bytes: u64,
    /// Interrupts actually delivered to software in the window.
    pub irqs: u64,
}

/// Per-device closed-loop `ITR` auto-tuner, modeled on the Linux e1000
/// `e1000_update_itr`/`e1000_set_itr` pair: every
/// [`AUTOTUNE_WINDOW_CYCLES`] of virtual time it consumes the device's
/// receive-counter deltas, classifies the window into a
/// [`LatencyClass`], and retunes the `ITR` register **one ladder rung
/// per window** toward that class's target — hysteresis that keeps a
/// constant load from oscillating the knob. Short idle gaps freeze the
/// tuner ([`IDLE_DECAY_GRACE_WINDOWS`]); sustained idleness beyond the
/// grace decays class and register toward latency mode, so a device
/// that goes genuinely quiet is ready to deliver the next interrupt
/// immediately.
///
/// The tuner only observes the [`Nic`] and proposes a new value; the
/// system writes it back through the normal MMIO path, exactly as
/// driver code would.
#[derive(Clone, Debug)]
pub struct ItrTuner {
    window_cycles: u64,
    /// Start of the currently accumulating window (virtual cycles).
    window_start: u64,
    last_rx_packets: u64,
    last_rx_bytes: u64,
    last_irqs_delivered: u64,
    class: LatencyClass,
    busy_streak: u32,
    light_streak: u32,
    idle_streak: u32,
    /// True-idle cycles (not gated-pending waits) reported via
    /// [`ItrTuner::note_idle`] since the last serviced window.
    idle_accum: u64,
    /// Counters of the most recent *closed* window.
    pub last_window: TunerWindow,
    /// Closed windows so far.
    pub windows: u64,
    /// Windows that changed the `ITR` register.
    pub retunes: u64,
}

impl ItrTuner {
    /// Creates a tuner for `nic`, anchored at virtual time `now` with
    /// the given window length (use [`AUTOTUNE_WINDOW_CYCLES`]).
    pub fn new(now: u64, window_cycles: u64, nic: &Nic) -> ItrTuner {
        let s = nic.stats();
        ItrTuner {
            window_cycles: window_cycles.max(1),
            window_start: now,
            last_rx_packets: s.rx_packets,
            last_rx_bytes: s.rx_bytes,
            last_irqs_delivered: nic.irqs_delivered(),
            class: LatencyClass::LowestLatency,
            busy_streak: 0,
            light_streak: 0,
            idle_streak: 0,
            idle_accum: 0,
            last_window: TunerWindow::default(),
            windows: 0,
            retunes: 0,
        }
    }

    /// The current latency regime.
    pub fn class(&self) -> LatencyClass {
        self.class
    }

    /// Reports `cycles` of true device idleness (nothing latched,
    /// nothing arriving) inside the current window. The virtual clock
    /// only elapses when work is charged, so offered-vs-capacity
    /// pressure is invisible in packet rates alone — idle time is the
    /// honest load signal, and any gap of [`IDLE_RESET_CYCLES`]
    /// restarts the sustained-load streak. Do **not** report waits of a
    /// latched cause on its own moderation window: a gated device is
    /// backlogged, not idle (at light load its idleness still shows in
    /// the gap after each window-open delivery clears the cause; the
    /// [`BUSY_WINDOW_PACKETS`] rate floor keeps the masked span from
    /// inflating the streak meanwhile).
    pub fn note_idle(&mut self, cycles: u64) {
        self.idle_accum = self.idle_accum.saturating_add(cycles);
    }

    /// When the currently accumulating window closes — the tuner's
    /// virtual-timer due time.
    pub fn next_window_at(&self) -> u64 {
        self.window_start + self.window_cycles
    }

    /// Services the tuner at virtual time `now`: if at least one window
    /// has elapsed, consume the device's counter deltas, reclassify on
    /// the span's totals, and return the one-rung retuned `ITR` value
    /// when it differs from the device's current one (`None` otherwise —
    /// including mid-window).
    ///
    /// A span of several windows with traffic and no idle means the
    /// system was processing the whole time (heavy passes outrun the
    /// wheel): it stays one classification with its packet-rate-capped
    /// streak weight, never a string of synthetic per-window rates.
    /// Only sustained idle takes multiple decay steps in one service.
    pub fn service(&mut self, now: u64, nic: &Nic) -> Option<u32> {
        if now < self.next_window_at() {
            return None;
        }
        let elapsed = (now - self.window_start) / self.window_cycles;
        self.window_start += elapsed * self.window_cycles;
        self.windows += elapsed;
        let s = nic.stats();
        let packets = s.rx_packets - self.last_rx_packets;
        let bytes = s.rx_bytes - self.last_rx_bytes;
        let irqs = nic.irqs_delivered() - self.last_irqs_delivered;
        self.last_rx_packets = s.rx_packets;
        self.last_rx_bytes = s.rx_bytes;
        self.last_irqs_delivered = nic.irqs_delivered();
        self.last_window = TunerWindow {
            packets,
            bytes,
            irqs,
        };

        let cur = nic.itr();
        let mut new = cur;
        if packets == 0 && self.idle_accum < IDLE_RESET_CYCLES {
            // No arrivals, but no reported idleness either: the span
            // was pure processing (another device's pass, post-pass
            // bookkeeping) — neutral evidence. Consume the window and
            // keep every streak; a still-growing idle gap keeps
            // accumulating toward the next evaluation.
        } else if packets == 0 {
            // Genuinely idle windows: frozen within the grace (a
            // latched cause waiting out its own window must not soften
            // it), decaying one rung per window beyond it. The loop
            // bound covers a full decay from the top of the ladder;
            // longer idles change nothing more.
            self.busy_streak = 0;
            self.idle_accum = 0; // absorbed into the idle-window streak
            let bound = (IDLE_DECAY_GRACE_WINDOWS as u64) + ITR_LADDER.len() as u64;
            for _ in 0..elapsed.min(bound) {
                self.idle_streak = self.idle_streak.saturating_add(1);
                if self.idle_streak > IDLE_DECAY_GRACE_WINDOWS {
                    self.class = self.class.decay();
                    new = itr_step_toward(new, self.class.target_itr());
                }
            }
        } else {
            // Traffic after any idle gap — a whole idle window, or a
            // sub-window gap reported via `note_idle` — is bursty: the
            // sustained-load streak restarts and the lightness streak
            // grows. A multi-window span with *no* idle means the
            // system was crunching the whole time (processing outran
            // the wheel) — sustained load, however few new packets the
            // span carried, so classification uses the span's totals
            // and the streak weights the span by its packet rate.
            let bursty = self.idle_streak > 0 || self.idle_accum >= IDLE_RESET_CYCLES;
            if bursty {
                self.busy_streak = 0;
                self.light_streak = self.light_streak.saturating_add(1);
                // Only a gap that triggered a reset is consumed; a
                // window boundary landing *inside* a still-growing gap
                // must not swallow it piecemeal, or a fixed-rate bursty
                // load whose gaps straddle boundaries would read as
                // sustained (the boundary-phasing race).
                self.idle_accum = 0;
            } else {
                self.light_streak = 0;
                // A sub-threshold remainder keeps most of its weight (a
                // gap may still be growing across this service), but
                // decays geometrically so *distinct* tiny slivers — a
                // near-saturated device idling a few percent of every
                // window — can never pile up into a spurious reset.
                self.idle_accum /= 2;
            }
            self.idle_streak = 0;
            let span_busy = elapsed.min((packets / BUSY_WINDOW_PACKETS).max(1));
            self.busy_streak = self.busy_streak.saturating_add(span_busy as u32);
            self.class = classify_itr_window(
                self.class,
                self.busy_streak,
                self.light_streak,
                packets,
                bytes,
            );
            new = itr_step_toward(new, self.class.target_itr());
        }
        if new != cur {
            self.retunes += 1;
            Some(new)
        } else {
            None
        }
    }
}

/// Counters a real e1000 keeps in hardware.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct NicStats {
    /// Good packets transmitted.
    pub tx_packets: u64,
    /// Good packets received.
    pub rx_packets: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Frames dropped because the RX ring was out of buffers.
    pub rx_missed: u64,
    /// Receive interrupt assertions (one per delivery burst, however many
    /// frames it carried — the coalescing the burst datapath measures).
    pub rx_irqs: u64,
    /// Transmit-done interrupt assertions (one per `TDT` kick that moved
    /// at least one frame).
    pub tx_irqs: u64,
}

/// The NIC device model.
#[derive(Debug)]
pub struct Nic {
    /// Device id used in MMIO routing.
    pub dev_id: u32,
    mac: MacAddr,
    ctrl: u32,
    icr: u32,
    ims: u32,
    rctl: u32,
    tctl: u32,
    tdbal: u32,
    tdlen: u32,
    tdh: u32,
    tdt: u32,
    rdbal: u32,
    rdlen: u32,
    rdh: u32,
    rdt: u32,
    ral: u32,
    rah: u32,
    stats: NicStats,
    /// Interrupt throttling register (moderation interval in
    /// [`ITR_UNIT_CYCLES`]-cycle units; 0 = no moderation).
    itr: u32,
    /// Virtual-cycle timestamp of the last *delivered* interrupt (the
    /// moderation window anchor); `None` until the first delivery.
    last_irq_cycles: Option<u64>,
    /// Interrupts actually delivered to software (every
    /// [`Nic::note_irq_delivered`]) — the rate the ITR auto-tuner
    /// observes, distinct from `stats.rx_irqs` (hardware assertions).
    irqs_delivered: u64,
    tx_out: Vec<Frame>,
    /// Partial multi-descriptor TX packet being accumulated.
    tx_partial: Option<(Frame, u32)>,
    /// Last EERD command written (address select).
    eerd: u32,
    /// Last MDIC command written.
    mdic: u32,
}

impl Nic {
    /// Creates a NIC with the given device id and permanent MAC address.
    pub fn new(dev_id: u32, mac: MacAddr) -> Nic {
        let ral = u32::from_le_bytes(mac.0[0..4].try_into().expect("4 bytes"));
        let rah = u16::from_le_bytes(mac.0[4..6].try_into().expect("2 bytes")) as u32 | 0x8000_0000;
        Nic {
            dev_id,
            mac,
            ctrl: 0,
            icr: 0,
            ims: 0,
            rctl: 0,
            tctl: 0,
            tdbal: 0,
            tdlen: 0,
            tdh: 0,
            tdt: 0,
            rdbal: 0,
            rdlen: 0,
            rdh: 0,
            rdt: 0,
            ral,
            rah,
            stats: NicStats::default(),
            itr: 0,
            last_irq_cycles: None,
            irqs_delivered: 0,
            tx_out: Vec::new(),
            tx_partial: None,
            eerd: 0,
            mdic: 0,
        }
    }

    /// EEPROM contents: three 16-bit words of MAC address followed by a
    /// checksum word making the image sum to 0xBABA (like real parts).
    fn eeprom_word(&self, addr: u32) -> u16 {
        let m = self.mac.0;
        match addr {
            0 => u16::from_le_bytes([m[0], m[1]]),
            1 => u16::from_le_bytes([m[2], m[3]]),
            2 => u16::from_le_bytes([m[4], m[5]]),
            3 => {
                let sum = (0..3u32).map(|i| self.eeprom_word(i) as u32).sum::<u32>();
                0xBABAu16.wrapping_sub(sum as u16)
            }
            _ => 0xffff,
        }
    }

    /// The device's MAC address.
    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// The interrupt line this NIC asserts on. Each device gets its own
    /// line (the multi-NIC sharded datapath routes it to a per-device
    /// handler registration / softirq source); the model simply reuses
    /// the device id, like sequential legacy INTx assignment.
    pub fn irq_line(&self) -> u32 {
        self.dev_id
    }

    /// Hardware statistics.
    pub fn stats(&self) -> NicStats {
        self.stats
    }

    /// Whether the interrupt line is asserted (`ICR & IMS != 0`). This is
    /// the raw latched cause — interrupt moderation does not clear it, it
    /// only delays *delivery* (see [`Nic::irq_deliverable`]), so no
    /// pending work is ever lost while a window is closed.
    pub fn irq_asserted(&self) -> bool {
        self.icr & self.ims != 0
    }

    /// Current `ITR` register value (moderation interval units).
    pub fn itr(&self) -> u32 {
        self.itr
    }

    /// The moderation interval in cycles (`ITR` × [`ITR_UNIT_CYCLES`]).
    pub fn itr_cycles(&self) -> u64 {
        self.itr as u64 * ITR_UNIT_CYCLES
    }

    /// True when the throttling window permits delivering an interrupt at
    /// virtual time `now`: either moderation is off, no interrupt has
    /// been delivered yet, or `itr_cycles` have elapsed since the last
    /// delivery.
    pub fn irq_allowed_at(&self, now: u64) -> bool {
        match self.last_irq_cycles {
            _ if self.itr == 0 => true,
            None => true,
            Some(last) => now >= last + self.itr_cycles(),
        }
    }

    /// True when a latched cause can be delivered right now (asserted and
    /// inside an open window).
    pub fn irq_deliverable(&self, now: u64) -> bool {
        self.irq_asserted() && self.irq_allowed_at(now)
    }

    /// When the latched cause becomes deliverable: `Some(cycle)` while a
    /// cause is pending (the cycle is in the past if the window is
    /// already open), `None` when nothing is latched. Used to arm the
    /// virtual moderation timer.
    pub fn irq_ready_at(&self) -> Option<u64> {
        if !self.irq_asserted() {
            return None;
        }
        match self.last_irq_cycles {
            _ if self.itr == 0 => Some(0),
            None => Some(0),
            Some(last) => Some(last + self.itr_cycles()),
        }
    }

    /// Records that the interrupt was delivered to software at virtual
    /// time `now`, opening a new moderation window.
    pub fn note_irq_delivered(&mut self, now: u64) {
        self.last_irq_cycles = Some(now);
        self.irqs_delivered += 1;
    }

    /// Interrupts delivered to software so far (the auto-tuner's
    /// per-window interrupt counter reads deltas of this).
    pub fn irqs_delivered(&self) -> u64 {
        self.irqs_delivered
    }

    /// Number of TX descriptors in the ring (0 before TDLEN is set).
    pub fn tx_ring_len(&self) -> u32 {
        self.tdlen / DESC_SIZE as u32
    }

    /// Number of RX descriptors in the ring.
    pub fn rx_ring_len(&self) -> u32 {
        self.rdlen / DESC_SIZE as u32
    }

    /// Drains frames transmitted since the last call (the wire side).
    pub fn take_tx_frames(&mut self) -> Vec<Frame> {
        std::mem::take(&mut self.tx_out)
    }

    /// MMIO register read. `ICR` is read-to-clear; statistics registers
    /// are read-to-clear like the real device.
    pub fn mmio_read(&mut self, offset: u64) -> u32 {
        match offset {
            regs::CTRL => self.ctrl,
            regs::STATUS => 0x8_0003, // link up, full duplex, 1000 Mb/s
            regs::EERD => {
                // DONE (bit 4) | data in bits 16..32, addr echoed in 8..16.
                let addr = (self.eerd >> 8) & 0xff;
                (self.eeprom_word(addr) as u32) << 16 | (addr << 8) | 0x10
            }
            regs::MDIC => {
                // READY (bit 28) | PHY register data. BMSR (reg 1) reads
                // link-up | autoneg-complete.
                let reg = (self.mdic >> 16) & 0x1f;
                let data: u32 = match reg {
                    1 => 0x0024, // BMSR: link status + autoneg complete
                    2 => 0x0141, // PHY id 1
                    _ => 0,
                };
                (1 << 28) | data
            }
            regs::ICR => {
                let v = self.icr;
                self.icr = 0;
                v
            }
            regs::ITR => self.itr,
            regs::IMS => self.ims,
            regs::RCTL => self.rctl,
            regs::TCTL => self.tctl,
            regs::RDBAL => self.rdbal,
            regs::RDLEN => self.rdlen,
            regs::RDH => self.rdh,
            regs::RDT => self.rdt,
            regs::TDBAL => self.tdbal,
            regs::TDLEN => self.tdlen,
            regs::TDH => self.tdh,
            regs::TDT => self.tdt,
            regs::GPRC => self.stats.rx_packets as u32,
            regs::GPTC => self.stats.tx_packets as u32,
            regs::MPC => self.stats.rx_missed as u32,
            regs::RAL0 => self.ral,
            regs::RAH0 => self.rah,
            _ => 0,
        }
    }

    /// MMIO register write. Writing `TDT` kicks the transmit DMA engine
    /// (the path the driver's `xmit_frame` ends with).
    pub fn mmio_write(&mut self, phys: &mut PhysMem, offset: u64, val: u32) {
        match offset {
            regs::CTRL => self.ctrl = val,
            regs::EERD => self.eerd = val,
            regs::MDIC => self.mdic = val,
            regs::ICS => {
                self.icr |= val;
            }
            regs::ITR => self.itr = val,
            regs::IMS => self.ims |= val,
            regs::IMC => self.ims &= !val,
            regs::ICR => self.icr &= !val, // write-1-to-clear
            regs::RCTL => self.rctl = val,
            regs::TCTL => self.tctl = val,
            regs::RDBAL => self.rdbal = val,
            regs::RDLEN => self.rdlen = val,
            regs::RDH => self.rdh = val,
            regs::RDT => self.rdt = val,
            regs::TDBAL => self.tdbal = val,
            regs::TDLEN => self.tdlen = val,
            regs::TDH => self.tdh = val,
            regs::TDT => {
                self.tdt = val;
                self.process_tx(phys);
            }
            regs::RAL0 => self.ral = val,
            regs::RAH0 => self.rah = val,
            _ => {}
        }
    }

    /// Transmit engine: consume descriptors from `TDH` up to `TDT`,
    /// reading packet data via DMA, writing back `DD` status, and placing
    /// completed frames on the wire queue.
    fn process_tx(&mut self, phys: &mut PhysMem) {
        let n = self.tx_ring_len();
        if n == 0 || self.tctl & 0x2 == 0 {
            return; // ring not configured or TX disabled (TCTL.EN)
        }
        let mut sent = false;
        while self.tdh != self.tdt {
            let daddr = self.tdbal as u64 + self.tdh as u64 * DESC_SIZE;
            let buf = phys.read_u32(daddr) as u64;
            let len = phys.read_u32(daddr + 8) & 0xffff;
            let cmd = phys.read_u8(daddr + 11);

            match &mut self.tx_partial {
                None => {
                    // First descriptor of a packet: parse the wire prefix.
                    let prefix = phys.read_bytes(buf, (ETH_HEADER_LEN + META_LEN) as usize);
                    if let Some(f) = Frame::from_wire_prefix(prefix, len.max(ETH_HEADER_LEN)) {
                        self.tx_partial = Some((f, len));
                    } else {
                        // Malformed packet: count and skip to EOP.
                        self.tx_partial =
                            Some((Frame::data(MacAddr::BROADCAST, self.mac, 0, 0), len));
                    }
                }
                Some((_, total)) => {
                    *total += len;
                }
            }

            if cmd & txcmd::EOP != 0 {
                if let Some((mut f, total)) = self.tx_partial.take() {
                    f.payload_len = total.saturating_sub(ETH_HEADER_LEN);
                    self.stats.tx_packets += 1;
                    self.stats.tx_bytes += total as u64;
                    self.tx_out.push(f);
                    sent = true;
                }
            }
            if cmd & txcmd::RS != 0 {
                phys.write_u8(daddr + 12, stat::DD);
            }
            self.tdh = (self.tdh + 1) % n;
        }
        if sent {
            self.icr |= intr::TXDW;
            self.stats.tx_irqs += 1;
        }
    }

    /// Receive path: DMA a frame into the next posted RX buffer.
    ///
    /// Returns `false` (and counts a missed packet) when the ring has no
    /// free descriptors — i.e. software hasn't replenished buffers.
    /// Equivalent to a [`Nic::deliver_batch`] of one frame.
    pub fn deliver(&mut self, phys: &mut PhysMem, frame: &Frame) -> bool {
        self.deliver_batch(phys, std::slice::from_ref(frame)) == 1
    }

    /// Burst receive path: DMAs as many of `frames` as fit into posted RX
    /// buffers, in order, then asserts a **single** coalesced receive
    /// interrupt — the receive-side interrupt moderation a real e1000
    /// performs with its receive timer (`RXT0` fires once per burst, not
    /// once per frame).
    ///
    /// Returns how many frames were accepted; the remainder are counted
    /// as missed (ring out of buffers).
    pub fn deliver_batch(&mut self, phys: &mut PhysMem, frames: &[Frame]) -> usize {
        let n = self.rx_ring_len();
        if n == 0 || self.rctl & 0x2 == 0 {
            self.stats.rx_missed += frames.len() as u64;
            return 0;
        }
        let mut accepted = 0;
        for frame in frames {
            // Hardware may fill descriptors while RDH != RDT.
            if self.rdh == self.rdt {
                break;
            }
            let daddr = self.rdbal as u64 + self.rdh as u64 * DESC_SIZE;
            let buf = phys.read_u32(daddr) as u64;
            let prefix = frame.wire_prefix();
            phys.write_bytes(buf, &prefix);
            let total = frame.len();
            phys.write_u32(daddr + 8, total & 0xffff);
            phys.write_u8(daddr + 12, stat::DD | stat::EOP);
            self.rdh = (self.rdh + 1) % n;
            self.stats.rx_packets += 1;
            self.stats.rx_bytes += total as u64;
            accepted += 1;
        }
        self.stats.rx_missed += (frames.len() - accepted) as u64;
        if accepted > 0 {
            self.icr |= intr::RXT0;
            self.stats.rx_irqs += 1;
        }
        accepted
    }

    /// Free RX descriptors currently posted to hardware.
    pub fn rx_free_descriptors(&self) -> u32 {
        let n = self.rx_ring_len();
        if n == 0 {
            return 0;
        }
        (self.rdt + n - self.rdh) % n
    }

    /// RX descriptors the hardware has filled that software has not yet
    /// reaped and replenished — the poll loop's "is there work" signal.
    /// (The driver always posts `n - 1` buffers, so pending work is
    /// whatever of that headroom is currently consumed.)
    pub fn rx_pending(&self) -> u32 {
        let n = self.rx_ring_len();
        if n == 0 {
            return 0;
        }
        (n - 1).saturating_sub(self.rx_free_descriptors())
    }

    /// Whether the receive-interrupt cause is masked (`IMS` bit for
    /// `RXT0` clear) — the NAPI poll-mode state as hardware sees it:
    /// masked means arrivals latch `ICR` silently and the budgeted poll
    /// loop owns the ring until software re-arms via `IMS`.
    pub fn rx_irq_masked(&self) -> bool {
        self.ims & intr::RXT0 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twin_net::EtherType;

    fn mk() -> (Nic, PhysMem) {
        let nic = Nic::new(0, MacAddr::for_guest(1));
        let phys = PhysMem::new(64);
        (nic, phys)
    }

    /// Builds a TX ring at phys 0x1000 with `n` descriptors and one
    /// buffer page per descriptor starting at 0x10000.
    fn setup_tx(nic: &mut Nic, phys: &mut PhysMem, n: u32) {
        nic.mmio_write(phys, regs::TDBAL, 0x1000);
        nic.mmio_write(phys, regs::TDLEN, n * DESC_SIZE as u32);
        nic.mmio_write(phys, regs::TDH, 0);
        nic.mmio_write(phys, regs::TDT, 0);
        nic.mmio_write(phys, regs::TCTL, 0x2);
    }

    fn setup_rx(nic: &mut Nic, phys: &mut PhysMem, n: u32) {
        nic.mmio_write(phys, regs::RDBAL, 0x2000);
        nic.mmio_write(phys, regs::RDLEN, n * DESC_SIZE as u32);
        nic.mmio_write(phys, regs::RDH, 0);
        for i in 0..n {
            let daddr = 0x2000 + i as u64 * DESC_SIZE;
            phys.write_u32(daddr, 0x20000 + i * 0x1000);
        }
        nic.mmio_write(phys, regs::RDT, n - 1); // post n-1 buffers
        nic.mmio_write(phys, regs::RCTL, 0x2);
    }

    fn queue_tx_frame(_nic: &mut Nic, phys: &mut PhysMem, frame: &Frame, desc: u32) {
        let buf = 0x10000 + desc as u64 * 0x1000;
        phys.write_bytes(buf, &frame.wire_prefix());
        let daddr = 0x1000 + desc as u64 * DESC_SIZE;
        phys.write_u32(daddr, buf as u32);
        phys.write_u32(daddr + 8, frame.len());
        phys.write_u8(daddr + 11, txcmd::EOP | txcmd::RS);
        phys.write_u8(daddr + 12, 0);
    }

    #[test]
    fn tx_single_frame() {
        let (mut nic, mut phys) = mk();
        setup_tx(&mut nic, &mut phys, 8);
        let f = Frame::data(MacAddr::for_guest(2), nic.mac(), 7, 3);
        queue_tx_frame(&mut nic, &mut phys, &f, 0);
        nic.mmio_write(&mut phys, regs::TDT, 1);
        let out = nic.take_tx_frames();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, f.dst);
        assert_eq!(out[0].flow, 7);
        assert_eq!(out[0].seq, 3);
        assert_eq!(out[0].payload_len, f.payload_len);
        // DD written back.
        assert_eq!(phys.read_u8(0x1000 + 12) & stat::DD, stat::DD);
        // TDH advanced.
        assert_eq!(nic.mmio_read(regs::TDH), 1);
        assert_eq!(nic.stats().tx_packets, 1);
    }

    #[test]
    fn tx_interrupt_gated_by_mask() {
        let (mut nic, mut phys) = mk();
        setup_tx(&mut nic, &mut phys, 8);
        let f = Frame::data(MacAddr::for_guest(2), nic.mac(), 0, 0);
        queue_tx_frame(&mut nic, &mut phys, &f, 0);
        nic.mmio_write(&mut phys, regs::TDT, 1);
        assert!(!nic.irq_asserted(), "masked interrupts stay deasserted");
        nic.mmio_write(&mut phys, regs::IMS, intr::TXDW);
        assert!(nic.irq_asserted());
        // ICR is read-to-clear.
        let icr = nic.mmio_read(regs::ICR);
        assert_ne!(icr & intr::TXDW, 0);
        assert!(!nic.irq_asserted());
    }

    #[test]
    fn tx_ring_wraps() {
        let (mut nic, mut phys) = mk();
        setup_tx(&mut nic, &mut phys, 4);
        for round in 0..3u32 {
            for i in 0..4u32 {
                let f = Frame::data(MacAddr::for_guest(2), nic.mac(), 0, (round * 4 + i) as u64);
                queue_tx_frame(&mut nic, &mut phys, &f, i);
            }
            // Move TDT one descriptor at a time, wrapping.
            for i in 0..4u32 {
                nic.mmio_write(&mut phys, regs::TDT, (i + 1) % 4);
            }
        }
        let out = nic.take_tx_frames();
        assert_eq!(out.len(), 12);
        assert_eq!(out.last().unwrap().seq, 11);
    }

    #[test]
    fn tx_multi_descriptor_packet() {
        let (mut nic, mut phys) = mk();
        setup_tx(&mut nic, &mut phys, 8);
        let f = Frame::data(MacAddr::for_guest(2), nic.mac(), 1, 1);
        // First descriptor: header + 96 bytes; second: the rest, EOP.
        let buf0 = 0x10000u64;
        phys.write_bytes(buf0, &f.wire_prefix());
        phys.write_u32(0x1000, buf0 as u32);
        phys.write_u32(0x1000 + 8, 96 + ETH_HEADER_LEN);
        phys.write_u8(0x1000 + 11, txcmd::RS); // no EOP
        let rest = f.payload_len - 96;
        phys.write_u32(0x1010, 0x11000);
        phys.write_u32(0x1010 + 8, rest);
        phys.write_u8(0x1010 + 11, txcmd::EOP | txcmd::RS);
        nic.mmio_write(&mut phys, regs::TDT, 2);
        let out = nic.take_tx_frames();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload_len, f.payload_len);
        assert_eq!(nic.mmio_read(regs::TDH), 2);
    }

    #[test]
    fn rx_delivery_and_backpressure() {
        let (mut nic, mut phys) = mk();
        setup_rx(&mut nic, &mut phys, 4); // 3 buffers posted
        let f = Frame {
            dst: nic.mac(),
            src: MacAddr::for_guest(9),
            ethertype: EtherType::Ipv4,
            payload_len: 900,
            flow: 5,
            seq: 42,
        };
        assert!(nic.deliver(&mut phys, &f));
        assert!(nic.deliver(&mut phys, &f));
        assert!(nic.deliver(&mut phys, &f));
        assert!(!nic.deliver(&mut phys, &f), "ring exhausted");
        assert_eq!(nic.stats().rx_packets, 3);
        assert_eq!(nic.stats().rx_missed, 1);
        // First descriptor has DD|EOP and the right length.
        assert_eq!(phys.read_u8(0x2000 + 12), stat::DD | stat::EOP);
        assert_eq!(phys.read_u32(0x2000 + 8), f.len());
        // Buffer contains the header (demux by MAC reads this).
        let got = Frame::from_wire_prefix(
            phys.read_bytes(0x20000, (ETH_HEADER_LEN + META_LEN) as usize),
            f.len(),
        )
        .unwrap();
        assert_eq!(got.dst, nic.mac());
        assert_eq!(got.seq, 42);
        // Replenish: software moves RDT forward; delivery works again.
        nic.mmio_write(&mut phys, regs::RDT, 2);
        assert!(nic.deliver(&mut phys, &f));
    }

    #[test]
    fn rx_pending_tracks_fill_and_reap() {
        let (mut nic, mut phys) = mk();
        setup_rx(&mut nic, &mut phys, 4); // 3 buffers posted
        assert_eq!(nic.rx_pending(), 0);
        let f = Frame::data(nic.mac(), MacAddr::for_guest(9), 0, 0);
        assert!(nic.deliver(&mut phys, &f));
        assert!(nic.deliver(&mut phys, &f));
        assert_eq!(nic.rx_pending(), 2);
        // Software reaps + replenishes: RDT catches up to RDH - 1.
        nic.mmio_write(&mut phys, regs::RDT, 1);
        assert_eq!(nic.rx_pending(), 0);
    }

    #[test]
    fn rx_irq_mask_state_follows_ims_imc() {
        let (mut nic, mut phys) = mk();
        setup_rx(&mut nic, &mut phys, 4);
        assert!(nic.rx_irq_masked(), "masked until software enables");
        nic.mmio_write(&mut phys, regs::IMS, intr::RXT0);
        assert!(!nic.rx_irq_masked());
        // Poll-mode entry: mask via IMC. The cause still latches, but
        // the line stays deasserted until re-armed.
        nic.mmio_write(&mut phys, regs::IMC, intr::RXT0);
        assert!(nic.rx_irq_masked());
        let f = Frame::data(nic.mac(), MacAddr::for_guest(9), 0, 0);
        assert!(nic.deliver(&mut phys, &f));
        assert!(!nic.irq_asserted(), "masked cause must not assert");
        nic.mmio_write(&mut phys, regs::IMS, intr::RXT0);
        assert!(nic.irq_asserted(), "re-arm raises the latched cause");
    }

    #[test]
    fn rx_interrupt_cause() {
        let (mut nic, mut phys) = mk();
        setup_rx(&mut nic, &mut phys, 4);
        nic.mmio_write(&mut phys, regs::IMS, intr::RXT0);
        let f = Frame::data(nic.mac(), MacAddr::for_guest(9), 0, 0);
        nic.deliver(&mut phys, &f);
        assert!(nic.irq_asserted());
        nic.mmio_read(regs::ICR);
        assert!(!nic.irq_asserted());
    }

    #[test]
    fn disabled_rings_do_nothing() {
        let (mut nic, mut phys) = mk();
        // No TCTL.EN: TDT write is ignored.
        nic.mmio_write(&mut phys, regs::TDBAL, 0x1000);
        nic.mmio_write(&mut phys, regs::TDLEN, 4 * DESC_SIZE as u32);
        nic.mmio_write(&mut phys, regs::TDT, 2);
        assert!(nic.take_tx_frames().is_empty());
        // No RCTL.EN: delivery misses.
        let f = Frame::data(nic.mac(), MacAddr::for_guest(9), 0, 0);
        assert!(!nic.deliver(&mut phys, &f));
    }

    #[test]
    fn mac_in_receive_address_registers() {
        let (mut nic, phys) = mk();
        let _ = phys;
        let ral = nic.mmio_read(regs::RAL0);
        let rah = nic.mmio_read(regs::RAH0);
        let mac = nic.mac();
        assert_eq!(ral.to_le_bytes()[..4], mac.0[..4]);
        assert_eq!((rah as u16).to_le_bytes()[..2], mac.0[4..6]);
        assert_ne!(rah & 0x8000_0000, 0, "address valid bit");
    }

    #[test]
    fn eeprom_holds_mac_and_checksums() {
        let (mut nic, mut phys) = mk();
        let mac = nic.mac();
        let mut sum = 0u16;
        let mut bytes = Vec::new();
        for w in 0..4u32 {
            nic.mmio_write(&mut phys, regs::EERD, w << 8);
            let v = nic.mmio_read(regs::EERD);
            assert_ne!(v & 0x10, 0, "DONE bit");
            let data = (v >> 16) as u16;
            sum = sum.wrapping_add(data);
            if w < 3 {
                bytes.extend_from_slice(&data.to_le_bytes());
            }
        }
        assert_eq!(&bytes[..], &mac.0[..], "MAC stored in words 0..2");
        assert_eq!(sum, 0xBABA, "image checksum");
    }

    #[test]
    fn mdic_phy_registers() {
        let (mut nic, mut phys) = mk();
        nic.mmio_write(&mut phys, regs::MDIC, 0x0801_0000); // read BMSR
        let v = nic.mmio_read(regs::MDIC);
        assert_ne!(v & (1 << 28), 0, "READY");
        assert_ne!(v & 0x0004, 0, "link up");
        nic.mmio_write(&mut phys, regs::MDIC, 0x0802_0000); // PHY id
        assert_eq!(nic.mmio_read(regs::MDIC) & 0xffff, 0x0141);
    }

    #[test]
    fn rx_batch_delivers_in_order_with_one_irq() {
        let (mut nic, mut phys) = mk();
        setup_rx(&mut nic, &mut phys, 16); // 15 buffers posted
        let frames: Vec<Frame> = (0..8)
            .map(|i| Frame::data(nic.mac(), MacAddr::for_guest(9), 1, i))
            .collect();
        assert_eq!(nic.deliver_batch(&mut phys, &frames), 8);
        assert_eq!(nic.stats().rx_packets, 8);
        assert_eq!(nic.stats().rx_irqs, 1, "one coalesced interrupt per burst");
        // Descriptors filled in order.
        for i in 0..8u64 {
            let daddr = 0x2000 + i * DESC_SIZE;
            assert_eq!(phys.read_u8(daddr + 12), stat::DD | stat::EOP);
            let got = Frame::from_wire_prefix(
                phys.read_bytes(0x20000 + i * 0x1000, (ETH_HEADER_LEN + META_LEN) as usize),
                frames[i as usize].len(),
            )
            .unwrap();
            assert_eq!(got.seq, i);
        }
    }

    #[test]
    fn rx_batch_partial_acceptance_on_ring_pressure() {
        let (mut nic, mut phys) = mk();
        setup_rx(&mut nic, &mut phys, 4); // 3 buffers posted
        let frames: Vec<Frame> = (0..5)
            .map(|i| Frame::data(nic.mac(), MacAddr::for_guest(9), 1, i))
            .collect();
        assert_eq!(nic.deliver_batch(&mut phys, &frames), 3);
        assert_eq!(nic.stats().rx_missed, 2);
        assert_eq!(nic.stats().rx_irqs, 1);
        // A burst that fits nothing asserts no interrupt.
        nic.mmio_read(regs::ICR);
        assert_eq!(nic.deliver_batch(&mut phys, &frames[..2]), 0);
        assert_eq!(nic.stats().rx_irqs, 1);
        assert!(!nic.irq_asserted());
    }

    #[test]
    fn tx_kick_counts_one_irq_per_drained_tail() {
        let (mut nic, mut phys) = mk();
        setup_tx(&mut nic, &mut phys, 16);
        for i in 0..4u32 {
            let f = Frame::data(MacAddr::for_guest(2), nic.mac(), 0, i as u64);
            queue_tx_frame(&mut nic, &mut phys, &f, i);
        }
        // One doorbell covering four descriptors: one TXDW assertion.
        nic.mmio_write(&mut phys, regs::TDT, 4);
        assert_eq!(nic.take_tx_frames().len(), 4);
        assert_eq!(nic.stats().tx_irqs, 1);
    }

    #[test]
    fn multiple_nics_have_independent_rings_and_irq_lines() {
        // Two devices over the same physical memory: rings, statistics
        // and interrupt state never bleed across instances.
        let mut phys = PhysMem::new(128);
        let mut a = Nic::new(0, MacAddr::for_guest(0));
        let mut b = Nic::new(1, MacAddr::for_guest(1));
        assert_eq!(a.irq_line(), 0);
        assert_eq!(b.irq_line(), 1);
        // Distinct ring placements (disjoint descriptor/buffer ranges).
        a.mmio_write(&mut phys, regs::RDBAL, 0x2000);
        a.mmio_write(&mut phys, regs::RDLEN, 8 * DESC_SIZE as u32);
        a.mmio_write(&mut phys, regs::RDH, 0);
        for i in 0..8u64 {
            phys.write_u32(0x2000 + i * DESC_SIZE, (0x20000 + i * 0x1000) as u32);
        }
        a.mmio_write(&mut phys, regs::RDT, 7);
        a.mmio_write(&mut phys, regs::RCTL, 0x2);
        b.mmio_write(&mut phys, regs::RDBAL, 0x4000);
        b.mmio_write(&mut phys, regs::RDLEN, 8 * DESC_SIZE as u32);
        b.mmio_write(&mut phys, regs::RDH, 0);
        for i in 0..8u64 {
            phys.write_u32(0x4000 + i * DESC_SIZE, (0x40000 + i * 0x1000) as u32);
        }
        b.mmio_write(&mut phys, regs::RDT, 7);
        b.mmio_write(&mut phys, regs::RCTL, 0x2);

        let fa = Frame::data(a.mac(), MacAddr::for_guest(9), 1, 0);
        let fb = Frame::data(b.mac(), MacAddr::for_guest(9), 2, 0);
        assert_eq!(a.deliver_batch(&mut phys, &[fa.clone(), fa]), 2);
        assert_eq!(b.deliver_batch(&mut phys, &[fb]), 1);
        assert_eq!(a.stats().rx_packets, 2);
        assert_eq!(b.stats().rx_packets, 1);
        assert_eq!(a.stats().rx_irqs, 1, "one coalesced irq per device burst");
        assert_eq!(b.stats().rx_irqs, 1);
        // Interrupt causes are per-device: clearing one leaves the other.
        a.mmio_write(&mut phys, regs::IMS, intr::RXT0);
        b.mmio_write(&mut phys, regs::IMS, intr::RXT0);
        assert!(a.irq_asserted() && b.irq_asserted());
        a.mmio_read(regs::ICR);
        assert!(!a.irq_asserted());
        assert!(b.irq_asserted(), "device 1's cause survives device 0's ack");
        // Descriptors landed in each device's own ring.
        assert_eq!(phys.read_u8(0x2000 + 12), stat::DD | stat::EOP);
        assert_eq!(phys.read_u8(0x4000 + 12), stat::DD | stat::EOP);
    }

    #[test]
    fn itr_gates_delivery_but_keeps_the_cause_latched() {
        let (mut nic, mut phys) = mk();
        setup_rx(&mut nic, &mut phys, 8);
        nic.mmio_write(&mut phys, regs::IMS, intr::RXT0);
        // ITR = 100 units → a 76 800-cycle window.
        nic.mmio_write(&mut phys, regs::ITR, 100);
        assert_eq!(nic.mmio_read(regs::ITR), 100);
        assert_eq!(nic.itr_cycles(), 100 * ITR_UNIT_CYCLES);

        // First interrupt: no prior delivery, window open.
        let f = Frame::data(nic.mac(), MacAddr::for_guest(9), 0, 0);
        assert!(nic.deliver(&mut phys, &f));
        assert!(nic.irq_deliverable(0));
        nic.note_irq_delivered(1_000);
        nic.mmio_read(regs::ICR); // handler acks

        // A frame inside the window: cause latches, delivery is gated.
        assert!(nic.deliver(&mut phys, &f));
        assert!(nic.irq_asserted(), "cause stays latched");
        assert!(!nic.irq_deliverable(1_000 + nic.itr_cycles() - 1));
        assert_eq!(nic.irq_ready_at(), Some(1_000 + nic.itr_cycles()));
        // Window elapses: deliverable, nothing was lost.
        assert!(nic.irq_deliverable(1_000 + nic.itr_cycles()));
    }

    #[test]
    fn itr_zero_never_gates() {
        let (mut nic, mut phys) = mk();
        setup_rx(&mut nic, &mut phys, 8);
        nic.mmio_write(&mut phys, regs::IMS, intr::RXT0);
        let f = Frame::data(nic.mac(), MacAddr::for_guest(9), 0, 0);
        nic.deliver(&mut phys, &f);
        nic.note_irq_delivered(500);
        nic.deliver(&mut phys, &f);
        // Back-to-back deliveries are allowed immediately with ITR = 0.
        assert!(nic.irq_deliverable(500));
        assert_eq!(nic.irq_ready_at(), Some(0), "ready since forever");
        // And with no cause pending there is nothing to wait for.
        nic.mmio_read(regs::ICR);
        assert_eq!(nic.irq_ready_at(), None);
    }

    #[test]
    fn rx_free_descriptor_count() {
        let (mut nic, mut phys) = mk();
        setup_rx(&mut nic, &mut phys, 8);
        assert_eq!(nic.rx_free_descriptors(), 7);
        let f = Frame::data(nic.mac(), MacAddr::for_guest(9), 0, 0);
        nic.deliver(&mut phys, &f);
        assert_eq!(nic.rx_free_descriptors(), 6);
    }

    #[test]
    fn classifier_boundaries() {
        use LatencyClass::*;
        // Idle window: one-class decay toward latency mode.
        assert_eq!(classify_itr_window(BulkLatency, 0, 0, 0, 0), LowLatency);
        assert_eq!(classify_itr_window(LowLatency, 0, 0, 0, 0), LowestLatency);
        assert_eq!(
            classify_itr_window(LowestLatency, 0, 0, 0, 0),
            LowestLatency
        );
        // Jumbo rule: bytes/packet above the threshold is bulk at any
        // rate or streak.
        assert_eq!(
            classify_itr_window(LowestLatency, 1, 0, 1, BULK_BYTES_PER_PACKET + 1),
            BulkLatency
        );
        assert_eq!(
            classify_itr_window(LowestLatency, 1, 0, 1, BULK_BYTES_PER_PACKET),
            LowLatency,
            "exactly at the threshold is not jumbo (but too big for a trickle)"
        );
        // Trickle: both limits must hold.
        assert_eq!(
            classify_itr_window(LowLatency, 1, 0, TRICKLE_PACKETS, TRICKLE_BYTES - 1),
            LowestLatency
        );
        assert_eq!(
            classify_itr_window(LowestLatency, 1, 0, TRICKLE_PACKETS + 1, TRICKLE_BYTES - 1),
            LowLatency,
            "one packet over the trickle limit is real traffic"
        );
        assert_eq!(
            classify_itr_window(LowestLatency, 1, 0, TRICKLE_PACKETS, TRICKLE_BYTES),
            LowLatency,
            "trickle-count packets at full size are real traffic"
        );
        // Sustainedness: the busy-streak boundary decides promotion.
        assert_eq!(
            classify_itr_window(LowestLatency, BULK_STREAK_WINDOWS - 1, 0, 32, 48_000),
            LowLatency
        );
        assert_eq!(
            classify_itr_window(LowestLatency, BULK_STREAK_WINDOWS, 0, 32, 48_000),
            BulkLatency
        );
        // Asymmetric demotion: bulk holds through one bursty window and
        // steps down only on a sustained run of them.
        assert_eq!(
            classify_itr_window(BulkLatency, 1, BULK_DEMOTE_WINDOWS - 1, 32, 48_000),
            BulkLatency,
            "one isolated gap does not demote a converged bulk setting"
        );
        assert_eq!(
            classify_itr_window(BulkLatency, 1, BULK_DEMOTE_WINDOWS, 32, 48_000),
            LowLatency
        );
        assert_eq!(
            classify_itr_window(BulkLatency, 1, BULK_DEMOTE_WINDOWS, TRICKLE_PACKETS, 512),
            LowestLatency,
            "a sustained-light trickle demotes straight to lowest"
        );
    }

    #[test]
    fn itr_ladder_steps_one_rung_and_snaps_off_grid_values() {
        assert_eq!(itr_step_toward(0, 2000), 500);
        assert_eq!(itr_step_toward(500, 2000), 1000);
        assert_eq!(itr_step_toward(1000, 2000), 2000);
        assert_eq!(itr_step_toward(2000, 2000), 2000);
        assert_eq!(itr_step_toward(2000, 0), 1000);
        assert_eq!(itr_step_toward(500, 500), 500);
        // Off-grid values snap to the nearest rung before stepping.
        assert_eq!(itr_step_toward(600, 2000), 1000);
        assert_eq!(itr_step_toward(1900, 0), 1000);
    }

    /// A NIC with a 64-descriptor RX ring over enough physical memory
    /// for its 64 one-page buffers (the tuner tests' fixture).
    fn mk_tuner() -> (Nic, PhysMem) {
        let mut nic = Nic::new(0, MacAddr::for_guest(1));
        let mut phys = PhysMem::new(128);
        setup_rx(&mut nic, &mut phys, 64);
        (nic, phys)
    }

    fn rx_window(nic: &mut Nic, phys: &mut PhysMem, n: u64, seq0: u64) {
        let frames: Vec<Frame> = (0..n)
            .map(|i| Frame::data(nic.mac(), MacAddr::for_guest(9), 1, seq0 + i))
            .collect();
        assert_eq!(nic.deliver_batch(phys, &frames), n as usize);
        // Replenish so the ring never backpressures the test.
        let tail = nic.mmio_read(regs::RDH).wrapping_sub(1) % nic.rx_ring_len();
        nic.mmio_write(phys, regs::RDT, tail);
    }

    #[test]
    fn tuner_converges_on_constant_load_without_oscillation() {
        let (mut nic, mut phys) = mk_tuner();
        let w = AUTOTUNE_WINDOW_CYCLES;
        let mut tuner = ItrTuner::new(0, w, &nic);
        let mut seq = 0;
        let mut trace = Vec::new();
        for k in 1..=12u64 {
            // Constant sustained load: 20 MTU frames every window.
            rx_window(&mut nic, &mut phys, 20, seq);
            seq += 20;
            if let Some(new) = tuner.service(k * w, &nic) {
                nic.mmio_write(&mut phys, regs::ITR, new);
            }
            trace.push(nic.itr());
        }
        // One rung per window up the ladder, then pinned: no oscillation.
        assert_eq!(&trace[..4], &[500, 500, 1000, 2000]);
        assert!(trace[3..].iter().all(|&v| v == 2000), "{trace:?}");
        assert_eq!(tuner.class(), LatencyClass::BulkLatency);
        assert_eq!(tuner.last_window.packets, 20);
        assert!(tuner.retunes >= 3);
        assert_eq!(tuner.windows, 12);
    }

    #[test]
    fn tuner_decays_toward_latency_mode_on_sustained_idle() {
        let (mut nic, mut phys) = mk_tuner();
        let w = AUTOTUNE_WINDOW_CYCLES;
        let mut tuner = ItrTuner::new(0, w, &nic);
        let mut seq = 0;
        for k in 1..=5u64 {
            rx_window(&mut nic, &mut phys, 20, seq);
            seq += 20;
            if let Some(new) = tuner.service(k * w, &nic) {
                nic.mmio_write(&mut phys, regs::ITR, new);
            }
        }
        assert_eq!(nic.itr(), 2000);
        // Idle windows within the grace: frozen — a latched cause
        // waiting out its own moderation window must not soften it.
        let grace = IDLE_DECAY_GRACE_WINDOWS as u64;
        for k in 6..=5 + grace {
            tuner.note_idle(w);
            if let Some(new) = tuner.service(k * w, &nic) {
                nic.mmio_write(&mut phys, regs::ITR, new);
            }
        }
        assert_eq!(nic.itr(), 2000, "frozen within the grace");
        // Sustained idleness beyond it decays one rung per window, all
        // the way down, so the next interrupt delivers immediately.
        for k in 6 + grace..=5 + grace + 8 {
            tuner.note_idle(w);
            if let Some(new) = tuner.service(k * w, &nic) {
                nic.mmio_write(&mut phys, regs::ITR, new);
            }
        }
        assert_eq!(nic.itr(), 0);
        assert_eq!(tuner.class(), LatencyClass::LowestLatency);
        // Mid-window service is a no-op.
        assert_eq!(tuner.service((5 + grace + 8) * w + w / 2, &nic), None);
    }

    #[test]
    fn processing_spans_without_arrivals_are_neutral() {
        // Windows with no arrivals and no *reported* idle were pure
        // processing time (another device's pass, bookkeeping): they
        // neither decay the knob nor reset the sustained-load streak —
        // only genuine idleness does. This is what keeps a converged
        // bulk setting stable through heavy multi-window reap passes.
        let (mut nic, mut phys) = mk_tuner();
        let w = AUTOTUNE_WINDOW_CYCLES;
        let mut tuner = ItrTuner::new(0, w, &nic);
        let mut seq = 0;
        for k in 1..=5u64 {
            rx_window(&mut nic, &mut phys, 20, seq);
            seq += 20;
            if let Some(new) = tuner.service(k * w, &nic) {
                nic.mmio_write(&mut phys, regs::ITR, new);
            }
        }
        assert_eq!(nic.itr(), 2000);
        for k in 6..=40u64 {
            assert_eq!(tuner.service(k * w, &nic), None, "window {k} moved");
        }
        assert_eq!(nic.itr(), 2000);
        assert_eq!(tuner.class(), LatencyClass::BulkLatency);
        // And the streak survives, so the next busy window is still
        // classified as sustained load.
        rx_window(&mut nic, &mut phys, 20, seq);
        tuner.service(41 * w, &nic);
        assert_eq!(tuner.class(), LatencyClass::BulkLatency);
    }

    #[test]
    fn tuner_stays_on_nongating_rungs_under_sparse_load() {
        // Isolated busy windows (bursty light traffic) never climb past
        // low latency: the sustained-load streak resets at every idle
        // gap, and short gaps freeze (not decay) the knob.
        let (mut nic, mut phys) = mk_tuner();
        let w = AUTOTUNE_WINDOW_CYCLES;
        let mut tuner = ItrTuner::new(0, w, &nic);
        let mut seq = 0;
        for k in 1..=16u64 {
            if k % 4 == 0 {
                rx_window(&mut nic, &mut phys, 32, seq);
                seq += 32;
            } else {
                // A sparse system idles its empty windows (the system
                // reports this through run_idle → note_idle).
                tuner.note_idle(w);
            }
            if let Some(new) = tuner.service(k * w, &nic) {
                nic.mmio_write(&mut phys, regs::ITR, new);
            }
            assert!(nic.itr() <= 500, "window {k}: itr {}", nic.itr());
            assert!(tuner.class() <= LatencyClass::LowLatency);
        }
    }

    #[test]
    fn sub_window_idle_gaps_keep_bursty_load_off_the_bulk_rung() {
        // Every window carries traffic, but each service span also saw a
        // quarter-window of true idleness — bursty traffic, not
        // sustained: the streak restarts each time and the tuner never
        // classifies bulk.
        let (mut nic, mut phys) = mk_tuner();
        let w = AUTOTUNE_WINDOW_CYCLES;
        let mut tuner = ItrTuner::new(0, w, &nic);
        let mut seq = 0;
        for k in 1..=12u64 {
            rx_window(&mut nic, &mut phys, 20, seq);
            seq += 20;
            tuner.note_idle(IDLE_RESET_CYCLES);
            if let Some(new) = tuner.service(k * w, &nic) {
                nic.mmio_write(&mut phys, regs::ITR, new);
            }
            assert!(nic.itr() <= 500, "window {k}: itr {}", nic.itr());
            assert!(tuner.class() <= LatencyClass::LowLatency);
        }
        // The same load with no idle gaps is sustained: bulk within the
        // streak threshold.
        for k in 13..=17u64 {
            rx_window(&mut nic, &mut phys, 20, seq);
            seq += 20;
            if let Some(new) = tuner.service(k * w, &nic) {
                nic.mmio_write(&mut phys, regs::ITR, new);
            }
        }
        assert_eq!(tuner.class(), LatencyClass::BulkLatency);
        assert_eq!(nic.itr(), 2000);
    }

    #[test]
    fn delivered_irq_counter_feeds_the_tuner_window() {
        let (mut nic, mut phys) = mk();
        setup_rx(&mut nic, &mut phys, 16);
        let mut tuner = ItrTuner::new(0, 1000, &nic);
        let f = Frame::data(nic.mac(), MacAddr::for_guest(9), 0, 0);
        nic.deliver(&mut phys, &f);
        nic.note_irq_delivered(100);
        nic.note_irq_delivered(700);
        assert_eq!(nic.irqs_delivered(), 2);
        tuner.service(1000, &nic);
        assert_eq!(tuner.last_window.irqs, 2);
        assert_eq!(tuner.last_window.packets, 1);
    }
}
