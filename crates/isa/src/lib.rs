//! # twin-isa — a compact x86-32-like instruction set
//!
//! The TwinDrivers paper (ASPLOS 2009) rewrites guest-OS driver *assembly* so
//! that every heap memory reference is translated through a software TLB
//! (`stlb`). This crate provides the instruction set that the rest of the
//! reproduction works on: eight general-purpose registers, x86-style
//! addressing modes (`disp(base,index,scale)`), condition flags, string
//! instructions with `rep` prefixes, and direct/indirect calls — exactly the
//! feature set the paper's rewriter must handle (§5.1).
//!
//! The crate contains:
//!
//! * [`Insn`] and friends — the instruction model, with [`defs`](Insn::defs) /
//!   [`uses`](Insn::uses) register sets for the liveness analysis the paper
//!   relies on to find scratch registers (§4.1, footnote 3);
//! * [`asm`] — an AT&T-style assembler (`movl 8(%ebp), %eax`);
//! * [`Module`] — an assembled translation unit with labels, globals,
//!   externs, data section and relocations (the "driver binary");
//! * [`encode`] — a byte-level object format with round-trip guarantees, so
//!   modules can be treated as binaries on disk.
//!
//! Every instruction occupies [`INSN_SIZE`] bytes of simulated address space;
//! this keeps function pointers honest (indirect calls through memory work)
//! and preserves the paper's constant-offset property between the VM driver
//! and hypervisor driver code (§5.1.2).
//!
//! ```
//! use twin_isa::asm::assemble;
//! let m = assemble(
//!     "mini",
//!     r#"
//!     .text
//!     .globl double_it
//! double_it:
//!     movl 4(%esp), %eax
//!     addl %eax, %eax
//!     ret
//! "#,
//! )?;
//! assert_eq!(m.text.len(), 3);
//! # Ok::<(), twin_isa::asm::AsmError>(())
//! ```

pub mod asm;
pub mod encode;
mod insn;
mod module;
mod reg;

pub use insn::{AluOp, Cond, Insn, MemRef, Operand, Rep, ShiftOp, StrOp, Target, UnOp, Width};
pub use module::{DataItem, DataSection, Module, SymbolKind};
pub use reg::{Reg, RegSet};

/// Size in simulated bytes of one instruction slot.
///
/// Code addresses are `image_base + INSN_SIZE * index`, so code pointers are
/// ordinary numbers that can be stored in simulated memory and called
/// indirectly.
pub const INSN_SIZE: u64 = 4;
