//! Byte-level object format (`.two` — TwinDrivers object).
//!
//! The paper works on driver *binaries* (§5.1: "conceptually,
//! assembler-level rewriting is equivalent to binary rewriting"). To keep
//! that claim honest in the reproduction, modules can be serialised to a
//! compact byte format and decoded back, so rewriting pipelines can store
//! and exchange real binary artifacts. [`decode`]`(`[`encode`]`(m)) == m`
//! for every module (verified by property tests).

use crate::insn::{AluOp, Cond, Insn, MemRef, Operand, Rep, ShiftOp, StrOp, Target, UnOp, Width};
use crate::module::{DataReloc, Module};
use crate::reg::Reg;
use std::error::Error;
use std::fmt;

/// Magic bytes identifying the object format.
pub const MAGIC: &[u8; 4] = b"TWO1";

/// Error produced when decoding a malformed object.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// Byte offset at which decoding failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.message)
    }
}

impl Error for DecodeError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Writer {
        Writer { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u64(&mut self, v: u64) {
        // LEB128-style varint.
        let mut v = v;
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(b);
                break;
            }
            self.buf.push(b | 0x80);
        }
    }
    fn i64(&mut self, v: i64) {
        // Zigzag encoding.
        self.u64(((v << 1) ^ (v >> 63)) as u64);
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, DecodeError> {
        Err(DecodeError {
            offset: self.pos,
            message: message.into(),
        })
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or_else(|| DecodeError {
            offset: self.pos,
            message: "unexpected end of input".into(),
        })?;
        self.pos += 1;
        Ok(b)
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return self.err("varint too long");
            }
        }
    }
    fn i64(&mut self) -> Result<i64, DecodeError> {
        let z = self.u64()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }
    fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.u64()? as usize;
        if self.pos + n > self.buf.len() {
            return self.err("string overruns input");
        }
        let s = std::str::from_utf8(&self.buf[self.pos..self.pos + n])
            .map_err(|_| DecodeError {
                offset: self.pos,
                message: "invalid utf-8".into(),
            })?
            .to_string();
        self.pos += n;
        Ok(s)
    }
    fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let n = self.u64()? as usize;
        if self.pos + n > self.buf.len() {
            return self.err("bytes overrun input");
        }
        let v = self.buf[self.pos..self.pos + n].to_vec();
        self.pos += n;
        Ok(v)
    }
}

fn put_width(w: &mut Writer, width: Width) {
    w.u8(match width {
        Width::Byte => 0,
        Width::Word => 1,
        Width::Long => 2,
    });
}

fn get_width(r: &mut Reader) -> Result<Width, DecodeError> {
    Ok(match r.u8()? {
        0 => Width::Byte,
        1 => Width::Word,
        2 => Width::Long,
        other => return r.err(format!("bad width {other}")),
    })
}

fn put_reg(w: &mut Writer, reg: Reg) {
    w.u8(reg.index() as u8);
}

fn get_reg(r: &mut Reader) -> Result<Reg, DecodeError> {
    let i = r.u8()?;
    Reg::from_index(i as usize).ok_or(DecodeError {
        offset: r.pos,
        message: format!("bad register {i}"),
    })
}

fn put_mem(w: &mut Writer, m: &MemRef) {
    let mut flags = 0u8;
    if m.base.is_some() {
        flags |= 1;
    }
    if m.index.is_some() {
        flags |= 2;
    }
    if m.sym.is_some() {
        flags |= 4;
    }
    w.u8(flags);
    if let Some(b) = m.base {
        put_reg(w, b);
    }
    if let Some((i, s)) = m.index {
        put_reg(w, i);
        w.u8(s);
    }
    w.i64(m.disp);
    if let Some(s) = &m.sym {
        w.str(s);
    }
}

fn get_mem(r: &mut Reader) -> Result<MemRef, DecodeError> {
    let flags = r.u8()?;
    let base = if flags & 1 != 0 {
        Some(get_reg(r)?)
    } else {
        None
    };
    let index = if flags & 2 != 0 {
        let reg = get_reg(r)?;
        let scale = r.u8()?;
        Some((reg, scale))
    } else {
        None
    };
    let disp = r.i64()?;
    let sym = if flags & 4 != 0 { Some(r.str()?) } else { None };
    Ok(MemRef {
        base,
        index,
        disp,
        sym,
    })
}

fn put_operand(w: &mut Writer, o: &Operand) {
    match o {
        Operand::Reg(r) => {
            w.u8(0);
            put_reg(w, *r);
        }
        Operand::Imm(v) => {
            w.u8(1);
            w.i64(*v);
        }
        Operand::Sym(s, off) => {
            w.u8(2);
            w.str(s);
            w.i64(*off);
        }
        Operand::Mem(m) => {
            w.u8(3);
            put_mem(w, m);
        }
    }
}

fn get_operand(r: &mut Reader) -> Result<Operand, DecodeError> {
    Ok(match r.u8()? {
        0 => Operand::Reg(get_reg(r)?),
        1 => Operand::Imm(r.i64()?),
        2 => {
            let s = r.str()?;
            let off = r.i64()?;
            Operand::Sym(s, off)
        }
        3 => Operand::Mem(get_mem(r)?),
        other => return r.err(format!("bad operand tag {other}")),
    })
}

fn put_target(w: &mut Writer, t: &Target) {
    match t {
        Target::Label(l) => {
            w.u8(0);
            w.str(l);
        }
        Target::Abs(a) => {
            w.u8(1);
            w.u64(*a);
        }
        Target::Reg(r) => {
            w.u8(2);
            put_reg(w, *r);
        }
        Target::Mem(m) => {
            w.u8(3);
            put_mem(w, m);
        }
    }
}

fn get_target(r: &mut Reader) -> Result<Target, DecodeError> {
    Ok(match r.u8()? {
        0 => Target::Label(r.str()?),
        1 => Target::Abs(r.u64()?),
        2 => Target::Reg(get_reg(r)?),
        3 => Target::Mem(get_mem(r)?),
        other => return r.err(format!("bad target tag {other}")),
    })
}

fn alu_code(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::And => 2,
        AluOp::Or => 3,
        AluOp::Xor => 4,
    }
}

fn cond_code(c: Cond) -> u8 {
    match c {
        Cond::E => 0,
        Cond::Ne => 1,
        Cond::L => 2,
        Cond::Le => 3,
        Cond::G => 4,
        Cond::Ge => 5,
        Cond::B => 6,
        Cond::Be => 7,
        Cond::A => 8,
        Cond::Ae => 9,
        Cond::S => 10,
        Cond::Ns => 11,
    }
}

fn put_insn(w: &mut Writer, insn: &Insn) {
    match insn {
        Insn::Mov { w: width, dst, src } => {
            w.u8(0);
            put_width(w, *width);
            put_operand(w, dst);
            put_operand(w, src);
        }
        Insn::Movzx { w: width, dst, src } => {
            w.u8(1);
            put_width(w, *width);
            put_reg(w, *dst);
            put_operand(w, src);
        }
        Insn::Movsx { w: width, dst, src } => {
            w.u8(2);
            put_width(w, *width);
            put_reg(w, *dst);
            put_operand(w, src);
        }
        Insn::Lea { dst, mem } => {
            w.u8(3);
            put_reg(w, *dst);
            put_mem(w, mem);
        }
        Insn::Alu {
            op,
            w: width,
            dst,
            src,
        } => {
            w.u8(4);
            w.u8(alu_code(*op));
            put_width(w, *width);
            put_operand(w, dst);
            put_operand(w, src);
        }
        Insn::Shift { op, dst, amount } => {
            w.u8(5);
            w.u8(match op {
                ShiftOp::Shl => 0,
                ShiftOp::Shr => 1,
                ShiftOp::Sar => 2,
            });
            put_operand(w, dst);
            put_operand(w, amount);
        }
        Insn::Cmp { w: width, src, dst } => {
            w.u8(6);
            put_width(w, *width);
            put_operand(w, src);
            put_operand(w, dst);
        }
        Insn::Test { w: width, src, dst } => {
            w.u8(7);
            put_width(w, *width);
            put_operand(w, src);
            put_operand(w, dst);
        }
        Insn::Un { op, w: width, dst } => {
            w.u8(8);
            w.u8(match op {
                UnOp::Neg => 0,
                UnOp::Not => 1,
                UnOp::Inc => 2,
                UnOp::Dec => 3,
            });
            put_width(w, *width);
            put_operand(w, dst);
        }
        Insn::Imul { dst, src } => {
            w.u8(9);
            put_reg(w, *dst);
            put_operand(w, src);
        }
        Insn::Push { src } => {
            w.u8(10);
            put_operand(w, src);
        }
        Insn::Pop { dst } => {
            w.u8(11);
            put_operand(w, dst);
        }
        Insn::Jmp { target } => {
            w.u8(12);
            put_target(w, target);
        }
        Insn::Jcc { cond, target } => {
            w.u8(13);
            w.u8(cond_code(*cond));
            put_target(w, target);
        }
        Insn::Call { target } => {
            w.u8(14);
            put_target(w, target);
        }
        Insn::Ret => w.u8(15),
        Insn::Str { op, w: width, rep } => {
            w.u8(16);
            w.u8(match op {
                StrOp::Movs => 0,
                StrOp::Stos => 1,
                StrOp::Lods => 2,
                StrOp::Cmps => 3,
                StrOp::Scas => 4,
            });
            put_width(w, *width);
            w.u8(match rep {
                Rep::None => 0,
                Rep::Rep => 1,
                Rep::Repe => 2,
                Rep::Repne => 3,
            });
        }
        Insn::Cli => w.u8(17),
        Insn::Sti => w.u8(18),
        Insn::Nop => w.u8(19),
        Insn::Hlt => w.u8(20),
        Insn::Int3 => w.u8(21),
        Insn::Ud2 => w.u8(22),
    }
}

fn get_insn(r: &mut Reader) -> Result<Insn, DecodeError> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => {
            let w = get_width(r)?;
            let dst = get_operand(r)?;
            let src = get_operand(r)?;
            Insn::Mov { w, dst, src }
        }
        1 => {
            let w = get_width(r)?;
            let dst = get_reg(r)?;
            let src = get_operand(r)?;
            Insn::Movzx { w, dst, src }
        }
        2 => {
            let w = get_width(r)?;
            let dst = get_reg(r)?;
            let src = get_operand(r)?;
            Insn::Movsx { w, dst, src }
        }
        3 => {
            let dst = get_reg(r)?;
            let mem = get_mem(r)?;
            Insn::Lea { dst, mem }
        }
        4 => {
            let op = match r.u8()? {
                0 => AluOp::Add,
                1 => AluOp::Sub,
                2 => AluOp::And,
                3 => AluOp::Or,
                4 => AluOp::Xor,
                other => return r.err(format!("bad alu op {other}")),
            };
            let w = get_width(r)?;
            let dst = get_operand(r)?;
            let src = get_operand(r)?;
            Insn::Alu { op, w, dst, src }
        }
        5 => {
            let op = match r.u8()? {
                0 => ShiftOp::Shl,
                1 => ShiftOp::Shr,
                2 => ShiftOp::Sar,
                other => return r.err(format!("bad shift op {other}")),
            };
            let dst = get_operand(r)?;
            let amount = get_operand(r)?;
            Insn::Shift { op, dst, amount }
        }
        6 => {
            let w = get_width(r)?;
            let src = get_operand(r)?;
            let dst = get_operand(r)?;
            Insn::Cmp { w, src, dst }
        }
        7 => {
            let w = get_width(r)?;
            let src = get_operand(r)?;
            let dst = get_operand(r)?;
            Insn::Test { w, src, dst }
        }
        8 => {
            let op = match r.u8()? {
                0 => UnOp::Neg,
                1 => UnOp::Not,
                2 => UnOp::Inc,
                3 => UnOp::Dec,
                other => return r.err(format!("bad un op {other}")),
            };
            let w = get_width(r)?;
            let dst = get_operand(r)?;
            Insn::Un { op, w, dst }
        }
        9 => {
            let dst = get_reg(r)?;
            let src = get_operand(r)?;
            Insn::Imul { dst, src }
        }
        10 => Insn::Push {
            src: get_operand(r)?,
        },
        11 => Insn::Pop {
            dst: get_operand(r)?,
        },
        12 => Insn::Jmp {
            target: get_target(r)?,
        },
        13 => {
            let cond = match r.u8()? {
                0 => Cond::E,
                1 => Cond::Ne,
                2 => Cond::L,
                3 => Cond::Le,
                4 => Cond::G,
                5 => Cond::Ge,
                6 => Cond::B,
                7 => Cond::Be,
                8 => Cond::A,
                9 => Cond::Ae,
                10 => Cond::S,
                11 => Cond::Ns,
                other => return r.err(format!("bad cond {other}")),
            };
            Insn::Jcc {
                cond,
                target: get_target(r)?,
            }
        }
        14 => Insn::Call {
            target: get_target(r)?,
        },
        15 => Insn::Ret,
        16 => {
            let op = match r.u8()? {
                0 => StrOp::Movs,
                1 => StrOp::Stos,
                2 => StrOp::Lods,
                3 => StrOp::Cmps,
                4 => StrOp::Scas,
                other => return r.err(format!("bad string op {other}")),
            };
            let w = get_width(r)?;
            let rep = match r.u8()? {
                0 => Rep::None,
                1 => Rep::Rep,
                2 => Rep::Repe,
                3 => Rep::Repne,
                other => return r.err(format!("bad rep prefix {other}")),
            };
            Insn::Str { op, w, rep }
        }
        17 => Insn::Cli,
        18 => Insn::Sti,
        19 => Insn::Nop,
        20 => Insn::Hlt,
        21 => Insn::Int3,
        22 => Insn::Ud2,
        other => return r.err(format!("bad instruction tag {other}")),
    })
}

/// Serialises a module to the `.two` byte format.
pub fn encode(m: &Module) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(MAGIC);
    w.str(&m.name);
    w.u64(m.text.len() as u64);
    for insn in &m.text {
        put_insn(&mut w, insn);
    }
    w.u64(m.labels.len() as u64);
    for (name, idx) in &m.labels {
        w.str(name);
        w.u64(*idx as u64);
    }
    w.u64(m.globals.len() as u64);
    for g in &m.globals {
        w.str(g);
    }
    w.u64(m.externs.len() as u64);
    for e in &m.externs {
        w.str(e);
    }
    w.bytes(&m.data.bytes);
    w.u64(m.data.symbols.len() as u64);
    for (name, off) in &m.data.symbols {
        w.str(name);
        w.u64(*off);
    }
    w.u64(m.data.relocs.len() as u64);
    for r in &m.data.relocs {
        w.u64(r.offset);
        w.str(&r.symbol);
    }
    w.buf
}

/// Decodes a module from the `.two` byte format.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated input, bad magic or malformed
/// encodings.
pub fn decode(bytes: &[u8]) -> Result<Module, DecodeError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if bytes.len() < 4 || &bytes[0..4] != MAGIC {
        return r.err("bad magic");
    }
    r.pos = 4;
    let name = r.str()?;
    let mut m = Module::new(name);
    let n = r.u64()? as usize;
    for _ in 0..n {
        m.text.push(get_insn(&mut r)?);
    }
    let n = r.u64()? as usize;
    for _ in 0..n {
        let name = r.str()?;
        let idx = r.u64()? as usize;
        m.labels.insert(name, idx);
    }
    let n = r.u64()? as usize;
    for _ in 0..n {
        m.globals.insert(r.str()?);
    }
    let n = r.u64()? as usize;
    for _ in 0..n {
        m.externs.insert(r.str()?);
    }
    m.data.bytes = r.bytes()?;
    let n = r.u64()? as usize;
    for _ in 0..n {
        let name = r.str()?;
        let off = r.u64()?;
        m.data.symbols.insert(name, off);
    }
    let n = r.u64()? as usize;
    for _ in 0..n {
        let offset = r.u64()?;
        let symbol = r.str()?;
        m.data.relocs.push(DataReloc { offset, symbol });
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn roundtrip_representative_module() {
        let m = assemble(
            "rt",
            r#"
            .extern helper
            .text
            .globl f
        f:
            pushl %ebp
            movl %esp, %ebp
            movl table(,%eax,4), %ecx
            movzbl (%ecx), %edx
            rep movsl
            call *%ecx
            call helper
            je f
            popl %ebp
            ret
            .data
        table:
            .long 1
            .long f
            .zero 12
        "#,
        )
        .unwrap();
        let bytes = encode(&m);
        let m2 = decode(&bytes).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(decode(b"nope").is_err());
        assert!(decode(b"").is_err());
    }

    #[test]
    fn rejects_truncation() {
        let m = assemble("t", ".text\nf:\n ret\n").unwrap();
        let bytes = encode(&m);
        for cut in 1..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn varint_edge_values() {
        let mut w = Writer::new();
        for v in [0u64, 1, 127, 128, 16384, u64::MAX] {
            w.u64(v);
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX] {
            w.i64(v);
        }
        let mut r = Reader {
            buf: &w.buf,
            pos: 0,
        };
        for v in [0u64, 1, 127, 128, 16384, u64::MAX] {
            assert_eq!(r.u64().unwrap(), v);
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX] {
            assert_eq!(r.i64().unwrap(), v);
        }
    }
}
