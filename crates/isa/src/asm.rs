//! An AT&T-style assembler for the twin-isa instruction set.
//!
//! The paper derives the hypervisor driver by "compiling the driver into
//! assembly" and feeding that file to an assembler-level rewriting tool
//! (§5.1). This module is the front end of that pipeline: it turns assembly
//! text into a [`Module`] the rewriter can transform.
//!
//! Supported syntax (a practical subset of GNU as):
//!
//! ```text
//!     .text
//!     .globl  e1000_xmit_frame
//!     .extern netdev_alloc_skb
//! e1000_xmit_frame:
//!     pushl   %ebp
//!     movl    %esp, %ebp
//!     movl    8(%ebp), %eax          # register + displacement
//!     movl    adapter+12(,%ecx,4), %edx  # symbol disp + scaled index
//!     rep movsl                      # string op with prefix
//!     call    *24(%ebx)              # indirect call
//!     ret
//!     .data
//!     .align 4
//! adapter:
//!     .long 0
//!     .long e1000_poll               # function pointer (relocated)
//!     .zero 64
//! ```

use crate::insn::{AluOp, Cond, Insn, MemRef, Operand, Rep, ShiftOp, StrOp, Target, UnOp, Width};
use crate::module::{DataItem, DataReloc, Module};
use crate::reg::Reg;
use std::error::Error;
use std::fmt;

/// Error produced when assembly text cannot be parsed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsmError {
    /// 1-based source line number.
    pub line: usize,
    /// Explanation of what went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "assembly error at line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

#[derive(Copy, Clone, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// Assembles AT&T-style source text into a [`Module`].
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line on any syntax error,
/// unknown mnemonic, malformed operand, or duplicate label.
pub fn assemble(name: &str, source: &str) -> Result<Module, AsmError> {
    let mut m = Module::new(name);
    let mut section = Section::Text;
    let mut data_items: Vec<(usize, DataItem)> = Vec::new();
    let mut data_labels: Vec<(String, usize)> = Vec::new(); // label -> item index

    for (lineno0, raw) in source.lines().enumerate() {
        let lineno = lineno0 + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let mut rest = line;
        // Labels (possibly several) at the start of the line.
        while let Some(colon) = find_label_colon(rest) {
            let label = rest[..colon].trim();
            if !is_ident(label) {
                return err(lineno, format!("invalid label name `{label}`"));
            }
            let dup = match section {
                Section::Text => m.labels.insert(label.to_string(), m.text.len()).is_some(),
                Section::Data => {
                    let existed = data_labels.iter().any(|(l, _)| l == label);
                    data_labels.push((label.to_string(), data_items.len()));
                    existed
                }
            };
            if dup || (section == Section::Data && m.labels.contains_key(label)) {
                return err(lineno, format!("duplicate label `{label}`"));
            }
            rest = rest[colon + 1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        if let Some(directive) = rest.strip_prefix('.') {
            handle_directive(
                directive,
                lineno,
                &mut m,
                &mut section,
                &mut data_items,
                &mut data_labels,
            )?;
            continue;
        }
        if section != Section::Text {
            return err(lineno, format!("instruction `{rest}` outside .text"));
        }
        let insn = parse_insn(rest, lineno)?;
        m.text.push(insn);
    }

    layout_data(&mut m, &data_items, &data_labels);
    Ok(m)
}

fn err<T>(line: usize, message: String) -> Result<T, AsmError> {
    Err(AsmError { line, message })
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Finds the colon ending a leading label, ignoring colons inside quotes.
/// Dot-prefixed local labels (`.Lfoo:`) are labels, not directives — the
/// distinction is the trailing colon on the first token.
fn find_label_colon(s: &str) -> Option<usize> {
    let head = s.split_whitespace().next()?;
    if head.starts_with('"') {
        return None;
    }
    let colon = head.find(':')?;
    // Only a label if the colon terminates the first token.
    if colon + 1 == head.len() {
        s.find(':')
    } else {
        None
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .map(|c| c.is_ascii_alphabetic() || c == '_' || c == '.')
            .unwrap_or(false)
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$')
}

fn handle_directive(
    directive: &str,
    lineno: usize,
    m: &mut Module,
    section: &mut Section,
    data_items: &mut Vec<(usize, DataItem)>,
    data_labels: &mut Vec<(String, usize)>,
) -> Result<(), AsmError> {
    let (name, arg) = match directive.find(char::is_whitespace) {
        Some(i) => (&directive[..i], directive[i..].trim()),
        None => (directive, ""),
    };
    match name {
        "text" => *section = Section::Text,
        "data" | "bss" => *section = Section::Data,
        "globl" | "global" => {
            for g in arg.split(',') {
                let g = g.trim();
                if !is_ident(g) {
                    return err(lineno, format!("invalid .globl name `{g}`"));
                }
                m.globals.insert(g.to_string());
            }
        }
        "extern" => {
            for e in arg.split(',') {
                let e = e.trim();
                if !is_ident(e) {
                    return err(lineno, format!("invalid .extern name `{e}`"));
                }
                m.externs.insert(e.to_string());
            }
        }
        "long" => {
            if *section != Section::Data {
                return err(lineno, ".long outside .data".into());
            }
            for part in arg.split(',') {
                let part = part.trim();
                if let Ok(v) = parse_int(part) {
                    data_items.push((lineno, DataItem::Long(v)));
                } else if is_ident(part) {
                    data_items.push((lineno, DataItem::LongSym(part.to_string())));
                } else {
                    return err(lineno, format!("bad .long value `{part}`"));
                }
            }
        }
        "byte" => {
            for part in arg.split(',') {
                let v = parse_int(part.trim()).map_err(|e| AsmError {
                    line: lineno,
                    message: e,
                })?;
                data_items.push((lineno, DataItem::Byte(v as u8)));
            }
        }
        "zero" | "skip" | "space" => {
            let v = parse_int(arg).map_err(|e| AsmError {
                line: lineno,
                message: e,
            })?;
            data_items.push((lineno, DataItem::Zero(v as u64)));
        }
        "asciz" | "string" => {
            let s = arg
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| AsmError {
                    line: lineno,
                    message: format!("bad string literal `{arg}`"),
                })?;
            data_items.push((lineno, DataItem::Asciz(s.to_string())));
        }
        "align" => {
            let v = parse_int(arg).map_err(|e| AsmError {
                line: lineno,
                message: e,
            })?;
            data_items.push((lineno, DataItem::Align(v as u64)));
        }
        "comm" => {
            // .comm name, size  — common (zero-initialised) symbol.
            let mut parts = arg.splitn(2, ',');
            let nm = parts.next().unwrap_or("").trim().to_string();
            let sz = parse_int(parts.next().unwrap_or("").trim()).map_err(|e| AsmError {
                line: lineno,
                message: e,
            })?;
            if !is_ident(&nm) {
                return err(lineno, format!("bad .comm name `{nm}`"));
            }
            data_items.push((lineno, DataItem::Align(4)));
            data_labels.push((nm, data_items.len()));
            data_items.push((lineno, DataItem::Zero(sz as u64)));
        }
        "file" | "ident" | "size" | "type" | "section" => { /* ignored metadata */ }
        other => return err(lineno, format!("unknown directive `.{other}`")),
    }
    Ok(())
}

fn layout_data(m: &mut Module, items: &[(usize, DataItem)], labels: &[(String, usize)]) {
    // Compute the byte offset of the start of each item.
    let mut offsets = Vec::with_capacity(items.len() + 1);
    let bytes = &mut m.data.bytes;
    for (_, item) in items {
        offsets.push(bytes.len() as u64);
        match item {
            DataItem::Long(v) => bytes.extend_from_slice(&(*v as u32).to_le_bytes()),
            DataItem::LongSym(sym) => {
                m.data.relocs.push(DataReloc {
                    offset: bytes.len() as u64,
                    symbol: sym.clone(),
                });
                bytes.extend_from_slice(&0u32.to_le_bytes());
            }
            DataItem::Zero(n) => bytes.resize(bytes.len() + *n as usize, 0),
            DataItem::Byte(b) => bytes.push(*b),
            DataItem::Asciz(s) => {
                bytes.extend_from_slice(s.as_bytes());
                bytes.push(0);
            }
            DataItem::Align(n) => {
                if *n > 1 {
                    while bytes.len() as u64 % n != 0 {
                        bytes.push(0);
                    }
                }
            }
        }
    }
    offsets.push(bytes.len() as u64);
    for (label, item_idx) in labels {
        m.data.symbols.insert(label.clone(), offsets[*item_idx]);
    }
}

fn parse_int(s: &str) -> Result<i64, String> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map_err(|_| format!("bad integer `{s}`"))? as i64
    } else {
        body.parse::<i64>()
            .map_err(|_| format!("bad integer `{s}`"))?
    };
    Ok(if neg { -v } else { v })
}

/// Splits an operand list at top-level commas (commas inside parentheses
/// belong to memory operands).
fn split_operands(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = s[start..].trim();
    if !last.is_empty() {
        out.push(last);
    }
    out
}

fn parse_mem(s: &str, lineno: usize) -> Result<MemRef, AsmError> {
    let s = s.trim();
    let (disp_str, inner) = match s.find('(') {
        Some(open) => {
            if !s.ends_with(')') {
                return err(lineno, format!("unterminated memory operand `{s}`"));
            }
            (&s[..open], Some(&s[open + 1..s.len() - 1]))
        }
        None => (s, None),
    };
    let mut mem = MemRef::default();
    let disp_str = disp_str.trim();
    if !disp_str.is_empty() {
        if let Ok(v) = parse_int(disp_str) {
            mem.disp = v;
        } else {
            // symbol, symbol+n, symbol-n
            let (sym, off) = split_sym_offset(disp_str).ok_or_else(|| AsmError {
                line: lineno,
                message: format!("bad displacement `{disp_str}`"),
            })?;
            mem.sym = Some(sym.to_string());
            mem.disp = off;
        }
    }
    if let Some(inner) = inner {
        let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
        if parts.len() > 3 {
            return err(lineno, format!("too many memory operand fields `{s}`"));
        }
        if let Some(b) = parts.first() {
            if !b.is_empty() {
                let r = parse_reg(b, lineno)?;
                mem.base = Some(r);
            }
        }
        if let Some(i) = parts.get(1) {
            if !i.is_empty() {
                let r = parse_reg(i, lineno)?;
                let scale = match parts.get(2) {
                    Some(sc) if !sc.is_empty() => parse_int(sc).map_err(|e| AsmError {
                        line: lineno,
                        message: e,
                    })? as u8,
                    _ => 1,
                };
                if ![1, 2, 4, 8].contains(&scale) {
                    return err(lineno, format!("bad scale `{scale}`"));
                }
                mem.index = Some((r, scale));
            }
        }
    }
    Ok(mem)
}

fn split_sym_offset(s: &str) -> Option<(&str, i64)> {
    if let Some(plus) = s.rfind('+') {
        let (sym, num) = (s[..plus].trim(), s[plus + 1..].trim());
        if is_ident(sym) {
            return parse_int(num).ok().map(|v| (sym, v));
        }
    }
    if let Some(minus) = s.rfind('-') {
        if minus > 0 {
            let (sym, num) = (s[..minus].trim(), s[minus + 1..].trim());
            if is_ident(sym) {
                return parse_int(num).ok().map(|v| (sym, -v));
            }
        }
    }
    if is_ident(s) {
        return Some((s, 0));
    }
    None
}

fn parse_reg(s: &str, lineno: usize) -> Result<Reg, AsmError> {
    s.strip_prefix('%')
        .and_then(Reg::from_name)
        .ok_or_else(|| AsmError {
            line: lineno,
            message: format!("bad register `{s}`"),
        })
}

fn parse_operand(s: &str, lineno: usize) -> Result<Operand, AsmError> {
    let s = s.trim();
    if let Some(r) = s.strip_prefix('%') {
        return Reg::from_name(r).map(Operand::Reg).ok_or_else(|| AsmError {
            line: lineno,
            message: format!("bad register `%{r}`"),
        });
    }
    if let Some(imm) = s.strip_prefix('$') {
        if let Ok(v) = parse_int(imm) {
            return Ok(Operand::Imm(v));
        }
        if let Some((sym, off)) = split_sym_offset(imm) {
            return Ok(Operand::Sym(sym.to_string(), off));
        }
        return err(lineno, format!("bad immediate `${imm}`"));
    }
    Ok(Operand::Mem(parse_mem(s, lineno)?))
}

fn parse_target(s: &str, lineno: usize) -> Result<Target, AsmError> {
    let s = s.trim();
    if let Some(ind) = s.strip_prefix('*') {
        let ind = ind.trim();
        if let Some(r) = ind.strip_prefix('%') {
            return Reg::from_name(r).map(Target::Reg).ok_or_else(|| AsmError {
                line: lineno,
                message: format!("bad register `%{r}`"),
            });
        }
        return Ok(Target::Mem(parse_mem(ind, lineno)?));
    }
    if let Ok(v) = parse_int(s) {
        return Ok(Target::Abs(v as u64));
    }
    if is_ident(s) {
        return Ok(Target::Label(s.to_string()));
    }
    err(lineno, format!("bad jump/call target `{s}`"))
}

fn width_from_suffix(c: char) -> Option<Width> {
    match c {
        'b' => Some(Width::Byte),
        'w' => Some(Width::Word),
        'l' => Some(Width::Long),
        _ => None,
    }
}

fn parse_insn(line: &str, lineno: usize) -> Result<Insn, AsmError> {
    let (mnemonic, ops_str) = match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], line[i..].trim()),
        None => (line, ""),
    };
    let mnemonic = mnemonic.to_ascii_lowercase();

    // rep / repe / repne prefixes.
    if let Some(rep) = match mnemonic.as_str() {
        "rep" => Some(Rep::Rep),
        "repe" | "repz" => Some(Rep::Repe),
        "repne" | "repnz" => Some(Rep::Repne),
        _ => None,
    } {
        let inner = parse_insn(ops_str, lineno)?;
        return match inner {
            Insn::Str { op, w, .. } => Ok(Insn::Str { op, w, rep }),
            other => err(lineno, format!("rep prefix on non-string insn `{other}`")),
        };
    }

    let ops = split_operands(ops_str);
    let two = |lineno: usize| -> Result<(Operand, Operand), AsmError> {
        if ops.len() != 2 {
            return err(lineno, format!("expected 2 operands, got {}", ops.len()));
        }
        Ok((
            parse_operand(ops[0], lineno)?,
            parse_operand(ops[1], lineno)?,
        ))
    };
    let one = |lineno: usize| -> Result<Operand, AsmError> {
        if ops.len() != 1 {
            return err(lineno, format!("expected 1 operand, got {}", ops.len()));
        }
        parse_operand(ops[0], lineno)
    };

    // String instructions: movsb/movsw/movsl, stosl, lodsl, cmpsl, scasl...
    // (movs{b,w}l collide with sign extension and are matched first below.)
    if mnemonic.len() == 6 && (mnemonic.starts_with("movs") || mnemonic.starts_with("movz")) {
        // movzbl / movzwl / movsbl / movswl
        let from = width_from_suffix(mnemonic.chars().nth(4).unwrap());
        let to = width_from_suffix(mnemonic.chars().nth(5).unwrap());
        if let (Some(fw), Some(Width::Long)) = (from, to) {
            let (src, dst) = two(lineno)?;
            let dst = match dst {
                Operand::Reg(r) => r,
                other => {
                    return err(
                        lineno,
                        format!("extension destination must be a register, got `{other:?}`"),
                    )
                }
            };
            return Ok(if mnemonic.starts_with("movz") {
                Insn::Movzx { w: fw, dst, src }
            } else {
                Insn::Movsx { w: fw, dst, src }
            });
        }
    }
    if mnemonic.len() == 5 {
        let stem = &mnemonic[..4];
        let suffix = mnemonic.chars().nth(4).unwrap();
        if let Some(w) = width_from_suffix(suffix) {
            let strop = match stem {
                "movs" => Some(StrOp::Movs),
                "stos" => Some(StrOp::Stos),
                "lods" => Some(StrOp::Lods),
                "cmps" => Some(StrOp::Cmps),
                "scas" => Some(StrOp::Scas),
                _ => None,
            };
            if let Some(op) = strop {
                if !ops.is_empty() {
                    return err(lineno, "string instructions take no operands".into());
                }
                return Ok(Insn::Str {
                    op,
                    w,
                    rep: Rep::None,
                });
            }
        }
    }

    // Unsuffixed mnemonics first (`call` must not lose its final `l`).
    match mnemonic.as_str() {
        "jmp" => {
            return Ok(Insn::Jmp {
                target: parse_target(ops_str, lineno)?,
            })
        }
        "call" => {
            return Ok(Insn::Call {
                target: parse_target(ops_str, lineno)?,
            })
        }
        "ret" => return Ok(Insn::Ret),
        "cli" => return Ok(Insn::Cli),
        "sti" => return Ok(Insn::Sti),
        "nop" => return Ok(Insn::Nop),
        "hlt" => return Ok(Insn::Hlt),
        "int3" => return Ok(Insn::Int3),
        "ud2" => return Ok(Insn::Ud2),
        _ => {}
    }

    // Width-suffixed general instructions.
    let (stem, width) = match mnemonic.chars().last().and_then(width_from_suffix) {
        Some(w) if mnemonic.len() > 1 => (&mnemonic[..mnemonic.len() - 1], Some(w)),
        _ => (mnemonic.as_str(), None),
    };
    let w = width.unwrap_or(Width::Long);

    match stem {
        "mov" => {
            let (src, dst) = two(lineno)?;
            Ok(Insn::Mov { w, dst, src })
        }
        "lea" => {
            let (src, dst) = two(lineno)?;
            match (src, dst) {
                (Operand::Mem(mem), Operand::Reg(dst)) => Ok(Insn::Lea { dst, mem }),
                _ => err(lineno, "lea needs memory source and register dest".into()),
            }
        }
        "add" | "sub" | "and" | "or" | "xor" => {
            let (src, dst) = two(lineno)?;
            let op = match stem {
                "add" => AluOp::Add,
                "sub" => AluOp::Sub,
                "and" => AluOp::And,
                "or" => AluOp::Or,
                _ => AluOp::Xor,
            };
            Ok(Insn::Alu { op, w, dst, src })
        }
        "shl" | "shr" | "sar" => {
            let (amount, dst) = two(lineno)?;
            let op = match stem {
                "shl" => ShiftOp::Shl,
                "shr" => ShiftOp::Shr,
                _ => ShiftOp::Sar,
            };
            Ok(Insn::Shift { op, dst, amount })
        }
        "cmp" => {
            let (src, dst) = two(lineno)?;
            Ok(Insn::Cmp { w, src, dst })
        }
        "test" => {
            let (src, dst) = two(lineno)?;
            Ok(Insn::Test { w, src, dst })
        }
        "neg" | "not" | "inc" | "dec" => {
            let dst = one(lineno)?;
            let op = match stem {
                "neg" => UnOp::Neg,
                "not" => UnOp::Not,
                "inc" => UnOp::Inc,
                _ => UnOp::Dec,
            };
            Ok(Insn::Un { op, w, dst })
        }
        "imul" => {
            let (src, dst) = two(lineno)?;
            match dst {
                Operand::Reg(dst) => Ok(Insn::Imul { dst, src }),
                _ => err(lineno, "imul destination must be a register".into()),
            }
        }
        "push" => Ok(Insn::Push { src: one(lineno)? }),
        "pop" => Ok(Insn::Pop { dst: one(lineno)? }),
        _ => {
            // jcc family: j + condition suffix (no width suffix logic).
            if let Some(cc) = mnemonic.strip_prefix('j') {
                let cond = match cc {
                    "e" | "z" => Some(Cond::E),
                    "ne" | "nz" => Some(Cond::Ne),
                    "l" => Some(Cond::L),
                    "le" => Some(Cond::Le),
                    "g" => Some(Cond::G),
                    "ge" => Some(Cond::Ge),
                    "b" | "c" => Some(Cond::B),
                    "be" => Some(Cond::Be),
                    "a" => Some(Cond::A),
                    "ae" | "nc" => Some(Cond::Ae),
                    "s" => Some(Cond::S),
                    "ns" => Some(Cond::Ns),
                    _ => None,
                };
                if let Some(cond) = cond {
                    return Ok(Insn::Jcc {
                        cond,
                        target: parse_target(ops_str, lineno)?,
                    });
                }
            }
            err(lineno, format!("unknown mnemonic `{mnemonic}`"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_function() {
        let m = assemble(
            "t",
            r#"
            .text
            .globl f
        f:
            pushl %ebp
            movl %esp, %ebp
            movl 8(%ebp), %eax
            addl $1, %eax
            popl %ebp
            ret
        "#,
        )
        .unwrap();
        assert_eq!(m.text.len(), 6);
        assert_eq!(m.label("f"), Some(0));
        assert!(m.globals.contains("f"));
    }

    #[test]
    fn memory_operand_forms() {
        let m = assemble(
            "t",
            r#"
            .text
        f:
            movl (%eax), %ebx
            movl 8(%eax), %ebx
            movl -4(%ebp), %ebx
            movl adapter(%eax), %ebx
            movl adapter+12(%eax,%ecx,4), %ebx
            movl counter, %ebx
            movl 0x1000, %ebx
        "#,
        )
        .unwrap();
        let refs: Vec<_> = m.text.iter().flat_map(|i| i.explicit_mem_refs()).collect();
        assert_eq!(refs.len(), 7);
        assert_eq!(refs[0].base, Some(Reg::Eax));
        assert_eq!(refs[1].disp, 8);
        assert_eq!(refs[2].disp, -4);
        assert_eq!(refs[3].sym.as_deref(), Some("adapter"));
        assert_eq!(refs[4].index, Some((Reg::Ecx, 4)));
        assert_eq!(refs[4].disp, 12);
        assert_eq!(refs[5].sym.as_deref(), Some("counter"));
        assert_eq!(refs[6].disp, 0x1000);
    }

    #[test]
    fn string_and_rep() {
        let m = assemble(
            "t",
            r#"
            .text
        f:
            rep movsl
            movsb
            repne scasb
            movzbl (%eax), %ecx
            movswl 2(%eax), %edx
        "#,
        )
        .unwrap();
        assert_eq!(
            m.text[0],
            Insn::Str {
                op: StrOp::Movs,
                w: Width::Long,
                rep: Rep::Rep
            }
        );
        assert_eq!(
            m.text[1],
            Insn::Str {
                op: StrOp::Movs,
                w: Width::Byte,
                rep: Rep::None
            }
        );
        assert_eq!(
            m.text[2],
            Insn::Str {
                op: StrOp::Scas,
                w: Width::Byte,
                rep: Rep::Repne
            }
        );
        assert!(matches!(
            m.text[3],
            Insn::Movzx {
                w: Width::Byte,
                dst: Reg::Ecx,
                ..
            }
        ));
        assert!(matches!(
            m.text[4],
            Insn::Movsx {
                w: Width::Word,
                dst: Reg::Edx,
                ..
            }
        ));
    }

    #[test]
    fn calls_and_jumps() {
        let m = assemble(
            "t",
            r#"
            .text
        f:
            call helper
            call *%eax
            call *12(%ebx)
            jmp f
            je f
            jnz f
        "#,
        )
        .unwrap();
        assert!(
            matches!(&m.text[0], Insn::Call { target: Target::Label(l) } if l == "f" || l == "helper")
        );
        assert!(matches!(
            &m.text[1],
            Insn::Call {
                target: Target::Reg(Reg::Eax)
            }
        ));
        assert!(matches!(
            &m.text[2],
            Insn::Call {
                target: Target::Mem(_)
            }
        ));
        assert!(matches!(&m.text[4], Insn::Jcc { cond: Cond::E, .. }));
        assert!(matches!(&m.text[5], Insn::Jcc { cond: Cond::Ne, .. }));
    }

    #[test]
    fn data_section_layout() {
        let m = assemble(
            "t",
            r#"
            .data
            .align 4
        adapter:
            .long 7
            .long e1000_poll
            .zero 8
        name:
            .asciz "e1000"
        "#,
        )
        .unwrap();
        assert_eq!(m.data.symbols["adapter"], 0);
        assert_eq!(m.data.symbols["name"], 16);
        assert_eq!(&m.data.bytes[0..4], &7u32.to_le_bytes());
        assert_eq!(m.data.relocs.len(), 1);
        assert_eq!(m.data.relocs[0].offset, 4);
        assert_eq!(m.data.relocs[0].symbol, "e1000_poll");
        assert_eq!(&m.data.bytes[16..22], b"e1000\0");
    }

    #[test]
    fn comm_symbols() {
        let m = assemble(
            "t",
            r#"
            .data
            .comm pool, 64
        "#,
        )
        .unwrap();
        assert_eq!(m.data.symbols["pool"], 0);
        assert_eq!(m.data.bytes.len(), 64);
    }

    #[test]
    fn errors_have_line_numbers() {
        let e = assemble("t", ".text\nf:\n  bogus %eax\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("bogus"));

        let e = assemble("t", ".text\nf:\nf:\n").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn immediates_and_symbols() {
        let m = assemble(
            "t",
            r#"
            .text
        f:
            movl $42, %eax
            movl $-1, %ebx
            movl $0x10, %ecx
            movl $adapter, %edx
            movl $adapter+8, %esi
        "#,
        )
        .unwrap();
        assert!(matches!(
            &m.text[0],
            Insn::Mov {
                src: Operand::Imm(42),
                ..
            }
        ));
        assert!(matches!(
            &m.text[1],
            Insn::Mov {
                src: Operand::Imm(-1),
                ..
            }
        ));
        assert!(matches!(
            &m.text[2],
            Insn::Mov {
                src: Operand::Imm(16),
                ..
            }
        ));
        assert!(matches!(&m.text[3], Insn::Mov { src: Operand::Sym(s, 0), .. } if s == "adapter"));
        assert!(matches!(&m.text[4], Insn::Mov { src: Operand::Sym(s, 8), .. } if s == "adapter"));
    }

    #[test]
    fn roundtrip_through_render() {
        let src = r#"
            .text
            .globl f
        f:
            pushl %ebp
            movl %esp, %ebp
            movl counter, %eax
            addl $1, %eax
            movl %eax, counter
            rep movsl
            call *%eax
            popl %ebp
            ret
            .data
        counter:
            .long 0
        "#;
        let m1 = assemble("t", src).unwrap();
        let rendered = m1.render();
        let m2 = assemble("t", &rendered).unwrap();
        assert_eq!(m1.text, m2.text);
        assert_eq!(m1.labels, m2.labels);
        assert_eq!(m1.data.bytes, m2.data.bytes);
        assert_eq!(m1.data.symbols, m2.data.symbols);
    }
}
