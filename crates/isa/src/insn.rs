//! The instruction model: operands, addressing modes and instructions.

use crate::reg::{Reg, RegSet};
use std::fmt;

/// Operand width. The interpreter zero-extends sub-word loads unless a
/// sign-extending instruction ([`Insn::Movsx`]) is used.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Width {
    /// 8 bits (`b` suffix).
    Byte,
    /// 16 bits (`w` suffix).
    Word,
    /// 32 bits (`l` suffix) — the native width.
    Long,
}

impl Width {
    /// Width in bytes (1, 2 or 4).
    pub fn bytes(self) -> u64 {
        match self {
            Width::Byte => 1,
            Width::Word => 2,
            Width::Long => 4,
        }
    }

    /// AT&T mnemonic suffix character.
    pub fn suffix(self) -> char {
        match self {
            Width::Byte => 'b',
            Width::Word => 'w',
            Width::Long => 'l',
        }
    }

    /// Mask selecting the low `bytes()` bytes of a value.
    pub fn mask(self) -> u64 {
        match self {
            Width::Byte => 0xff,
            Width::Word => 0xffff,
            Width::Long => 0xffff_ffff,
        }
    }
}

/// An x86-style memory reference: `disp(base, index, scale)` with an
/// optional symbolic displacement resolved at load time.
///
/// `sym` carries an unresolved symbol name; the loader adds the symbol's
/// address to `disp` and clears `sym`. The SVM rewriter treats any
/// reference whose base register is not `esp`/`ebp` (and absolute/symbolic
/// references) as a heap access to be translated (paper §4.1).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct MemRef {
    /// Base register.
    pub base: Option<Reg>,
    /// Index register and scale (1, 2, 4 or 8).
    pub index: Option<(Reg, u8)>,
    /// Constant displacement (wrapping 32-bit arithmetic at runtime).
    pub disp: i64,
    /// Unresolved symbolic displacement, if any.
    pub sym: Option<String>,
}

impl MemRef {
    /// Absolute reference to a resolved address.
    pub fn abs(addr: u64) -> MemRef {
        MemRef {
            disp: addr as i64,
            ..MemRef::default()
        }
    }

    /// `disp(base)` reference.
    pub fn base_disp(base: Reg, disp: i64) -> MemRef {
        MemRef {
            base: Some(base),
            disp,
            ..MemRef::default()
        }
    }

    /// Symbolic reference `sym+disp`, optionally indexed.
    pub fn sym(sym: impl Into<String>, disp: i64) -> MemRef {
        MemRef {
            sym: Some(sym.into()),
            disp,
            ..MemRef::default()
        }
    }

    /// Registers read when computing the effective address.
    pub fn regs(&self) -> RegSet {
        let mut s = RegSet::new();
        if let Some(b) = self.base {
            s.insert(b);
        }
        if let Some((i, _)) = self.index {
            s.insert(i);
        }
        s
    }

    /// True when this reference is relative to the stack or frame pointer,
    /// which the rewriter leaves untranslated (paper §4.1).
    pub fn is_stack_relative(&self) -> bool {
        self.base.map(Reg::is_stack_reg).unwrap_or(false)
    }

    /// True when the reference still carries an unresolved symbol.
    pub fn is_symbolic(&self) -> bool {
        self.sym.is_some()
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.sym, self.disp) {
            (Some(s), 0) => write!(f, "{s}")?,
            (Some(s), d) if d > 0 => write!(f, "{s}+{d}")?,
            (Some(s), d) => write!(f, "{s}{d}")?,
            (None, d) => {
                if d != 0 || (self.base.is_none() && self.index.is_none()) {
                    write!(f, "{d}")?;
                }
            }
        }
        if self.base.is_some() || self.index.is_some() {
            write!(f, "(")?;
            if let Some(b) = self.base {
                write!(f, "{b}")?;
            }
            if let Some((i, s)) = self.index {
                write!(f, ",{i},{s}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// An instruction operand.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// A register.
    Reg(Reg),
    /// An immediate constant (`$5`).
    Imm(i64),
    /// An immediate symbol address (`$adapter`), resolved at load time to
    /// the symbol's address plus the offset.
    Sym(String, i64),
    /// A memory reference.
    Mem(MemRef),
}

impl Operand {
    /// Registers read to *evaluate* this operand as a source.
    pub fn uses(&self) -> RegSet {
        match self {
            Operand::Reg(r) => RegSet::of(*r),
            Operand::Imm(_) | Operand::Sym(..) => RegSet::new(),
            Operand::Mem(m) => m.regs(),
        }
    }

    /// Registers read when this operand is a *destination* (address
    /// computation only; a register destination is written, not read).
    pub fn addr_uses(&self) -> RegSet {
        match self {
            Operand::Mem(m) => m.regs(),
            _ => RegSet::new(),
        }
    }

    /// The register written when this operand is a destination.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// Borrow the memory reference, if this is a memory operand.
    pub fn as_mem(&self) -> Option<&MemRef> {
        match self {
            Operand::Mem(m) => Some(m),
            _ => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Operand {
        Operand::Imm(v)
    }
}

impl From<MemRef> for Operand {
    fn from(m: MemRef) -> Operand {
        Operand::Mem(m)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "${v}"),
            Operand::Sym(s, 0) => write!(f, "${s}"),
            Operand::Sym(s, d) if *d > 0 => write!(f, "${s}+{d}"),
            Operand::Sym(s, d) => write!(f, "${s}{d}"),
            Operand::Mem(m) => write!(f, "{m}"),
        }
    }
}

/// Two-operand ALU operations (`op src, dst` computes `dst = dst op src`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// Addition; sets CF/OF.
    Add,
    /// Subtraction; sets CF/OF.
    Sub,
    /// Bitwise AND; clears CF/OF.
    And,
    /// Bitwise OR; clears CF/OF.
    Or,
    /// Bitwise XOR; clears CF/OF.
    Xor,
}

impl AluOp {
    /// AT&T mnemonic stem.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
        }
    }
}

/// Shift operations.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ShiftOp {
    /// Logical left shift.
    Shl,
    /// Logical right shift.
    Shr,
    /// Arithmetic right shift.
    Sar,
}

impl ShiftOp {
    /// AT&T mnemonic stem.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ShiftOp::Shl => "shl",
            ShiftOp::Shr => "shr",
            ShiftOp::Sar => "sar",
        }
    }
}

/// Single-operand read-modify-write operations.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Two's complement negation.
    Neg,
    /// Bitwise complement.
    Not,
    /// Increment (does not touch CF, like x86).
    Inc,
    /// Decrement (does not touch CF).
    Dec,
}

impl UnOp {
    /// AT&T mnemonic stem.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::Inc => "inc",
            UnOp::Dec => "dec",
        }
    }
}

/// Branch conditions (subset of x86 `jcc`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Cond {
    /// Equal / zero.
    E,
    /// Not equal / not zero.
    Ne,
    /// Signed less-than.
    L,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    G,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned below.
    B,
    /// Unsigned below-or-equal.
    Be,
    /// Unsigned above.
    A,
    /// Unsigned above-or-equal.
    Ae,
    /// Sign flag set.
    S,
    /// Sign flag clear.
    Ns,
}

impl Cond {
    /// AT&T condition-code suffix.
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::E => "e",
            Cond::Ne => "ne",
            Cond::L => "l",
            Cond::Le => "le",
            Cond::G => "g",
            Cond::Ge => "ge",
            Cond::B => "b",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::Ae => "ae",
            Cond::S => "s",
            Cond::Ns => "ns",
        }
    }

    /// The negated condition.
    pub fn negate(self) -> Cond {
        match self {
            Cond::E => Cond::Ne,
            Cond::Ne => Cond::E,
            Cond::L => Cond::Ge,
            Cond::Le => Cond::G,
            Cond::G => Cond::Le,
            Cond::Ge => Cond::L,
            Cond::B => Cond::Ae,
            Cond::Be => Cond::A,
            Cond::A => Cond::Be,
            Cond::Ae => Cond::B,
            Cond::S => Cond::Ns,
            Cond::Ns => Cond::S,
        }
    }
}

/// Jump / call target.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Target {
    /// A label in the same module (resolved by the loader to an address).
    Label(String),
    /// An absolute, already-resolved code address.
    Abs(u64),
    /// Indirect through a register (`call *%eax`).
    Reg(Reg),
    /// Indirect through memory (`call *12(%ebx)`).
    Mem(MemRef),
}

impl Target {
    /// True for the indirect forms the rewriter must translate through the
    /// `stlb_call` table (paper §5.1.2).
    pub fn is_indirect(&self) -> bool {
        matches!(self, Target::Reg(_) | Target::Mem(_))
    }

    /// Registers read to evaluate the target.
    pub fn uses(&self) -> RegSet {
        match self {
            Target::Label(_) | Target::Abs(_) => RegSet::new(),
            Target::Reg(r) => RegSet::of(*r),
            Target::Mem(m) => m.regs(),
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Label(l) => write!(f, "{l}"),
            Target::Abs(a) => write!(f, "0x{a:x}"),
            Target::Reg(r) => write!(f, "*{r}"),
            Target::Mem(m) => write!(f, "*{m}"),
        }
    }
}

/// String-instruction family (paper §5.1.1).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum StrOp {
    /// Copy `(%esi)` to `(%edi)`, advancing both.
    Movs,
    /// Store `%eax` to `(%edi)`, advancing `%edi`.
    Stos,
    /// Load `(%esi)` into `%eax`, advancing `%esi`.
    Lods,
    /// Compare `(%esi)` with `(%edi)`, advancing both.
    Cmps,
    /// Compare `%eax` with `(%edi)`, advancing `%edi`.
    Scas,
}

impl StrOp {
    /// AT&T mnemonic stem.
    pub fn mnemonic(self) -> &'static str {
        match self {
            StrOp::Movs => "movs",
            StrOp::Stos => "stos",
            StrOp::Lods => "lods",
            StrOp::Cmps => "cmps",
            StrOp::Scas => "scas",
        }
    }

    /// True if the instruction reads memory at `(%esi)`.
    pub fn reads_si(self) -> bool {
        matches!(self, StrOp::Movs | StrOp::Lods | StrOp::Cmps)
    }

    /// True if the instruction accesses memory at `(%edi)`.
    pub fn uses_di(self) -> bool {
        matches!(self, StrOp::Movs | StrOp::Stos | StrOp::Cmps | StrOp::Scas)
    }
}

/// Repeat prefixes for string instructions.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Rep {
    /// No prefix: one element.
    None,
    /// `rep`: repeat `%ecx` times.
    Rep,
    /// `repe`: repeat while equal, at most `%ecx` times.
    Repe,
    /// `repne`: repeat while not equal, at most `%ecx` times.
    Repne,
}

impl Rep {
    /// Prefix spelling including trailing space, or `""`.
    pub fn prefix(self) -> &'static str {
        match self {
            Rep::None => "",
            Rep::Rep => "rep ",
            Rep::Repe => "repe ",
            Rep::Repne => "repne ",
        }
    }
}

/// One instruction of the twin-isa instruction set.
///
/// The set intentionally mirrors the x86 features the paper's rewriter has
/// to deal with: memory operands on most instructions, string instructions
/// with implicit registers, and indirect calls.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Insn {
    /// `mov src, dst`.
    Mov {
        /// Operand width.
        w: Width,
        /// Destination (register or memory).
        dst: Operand,
        /// Source (register, immediate, symbol address or memory).
        src: Operand,
    },
    /// `movz  src, dst` — zero-extend a narrow source into a register.
    Movzx {
        /// Width of the *source*.
        w: Width,
        /// Destination register (written at full width).
        dst: Reg,
        /// Narrow source.
        src: Operand,
    },
    /// `movs src, dst` — sign-extend a narrow source into a register.
    Movsx {
        /// Width of the *source*.
        w: Width,
        /// Destination register.
        dst: Reg,
        /// Narrow source.
        src: Operand,
    },
    /// `lea mem, dst` — effective address computation; **no memory access**.
    Lea {
        /// Destination register.
        dst: Reg,
        /// Address expression.
        mem: MemRef,
    },
    /// Two-operand ALU operation `op src, dst`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Operand width.
        w: Width,
        /// Destination (read-modify-write).
        dst: Operand,
        /// Source.
        src: Operand,
    },
    /// Shift `dst` by `amount` (immediate or `%ecx`).
    Shift {
        /// Operation.
        op: ShiftOp,
        /// Destination (read-modify-write).
        dst: Operand,
        /// Shift amount: immediate or `Operand::Reg(Ecx)`.
        amount: Operand,
    },
    /// `cmp src, dst` — sets flags from `dst - src`.
    Cmp {
        /// Operand width.
        w: Width,
        /// Subtrahend (AT&T first operand).
        src: Operand,
        /// Minuend (AT&T second operand).
        dst: Operand,
    },
    /// `test src, dst` — sets flags from `dst & src`.
    Test {
        /// Operand width.
        w: Width,
        /// First operand.
        src: Operand,
        /// Second operand.
        dst: Operand,
    },
    /// Single-operand read-modify-write (`neg`, `not`, `inc`, `dec`).
    Un {
        /// Operation.
        op: UnOp,
        /// Operand width.
        w: Width,
        /// Destination.
        dst: Operand,
    },
    /// `imul src, dst` — 32-bit two-operand multiply.
    Imul {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// Push a 32-bit value.
    Push {
        /// Value pushed.
        src: Operand,
    },
    /// Pop a 32-bit value.
    Pop {
        /// Destination.
        dst: Operand,
    },
    /// Unconditional jump.
    Jmp {
        /// Target.
        target: Target,
    },
    /// Conditional jump.
    Jcc {
        /// Condition.
        cond: Cond,
        /// Target (label or absolute only).
        target: Target,
    },
    /// Call; pushes the return address.
    Call {
        /// Target, possibly indirect.
        target: Target,
    },
    /// Return; pops the return address.
    Ret,
    /// String instruction with optional repeat prefix.
    Str {
        /// Which string operation.
        op: StrOp,
        /// Element width.
        w: Width,
        /// Repeat prefix.
        rep: Rep,
    },
    /// Disable (virtual) interrupts.
    Cli,
    /// Enable (virtual) interrupts.
    Sti,
    /// No operation.
    Nop,
    /// Halt until interrupt (ends a run quantum).
    Hlt,
    /// Debug trap — used by the framework to mark aborts.
    Int3,
    /// Undefined instruction — raises a fault.
    Ud2,
}

impl Insn {
    /// Registers read by this instruction, including implicit ones
    /// (`%ecx`/`%esi`/`%edi` for string ops, `%esp` for stack ops).
    pub fn uses(&self) -> RegSet {
        let mut s = RegSet::new();
        match self {
            Insn::Mov { dst, src, .. } => {
                s = s.union(src.uses()).union(dst.addr_uses());
            }
            Insn::Movzx { src, .. } | Insn::Movsx { src, .. } => {
                s = s.union(src.uses());
            }
            Insn::Lea { mem, .. } => {
                s = s.union(mem.regs());
            }
            Insn::Alu { dst, src, .. } => {
                s = s.union(src.uses()).union(dst.uses());
            }
            Insn::Shift { dst, amount, .. } => {
                s = s.union(dst.uses()).union(amount.uses());
            }
            Insn::Cmp { src, dst, .. } | Insn::Test { src, dst, .. } => {
                s = s.union(src.uses()).union(dst.uses());
            }
            Insn::Un { dst, .. } => {
                s = s.union(dst.uses());
            }
            Insn::Imul { dst, src } => {
                s.insert(*dst);
                s = s.union(src.uses());
            }
            Insn::Push { src } => {
                s = s.union(src.uses());
                s.insert(Reg::Esp);
            }
            Insn::Pop { dst } => {
                s = s.union(dst.addr_uses());
                s.insert(Reg::Esp);
            }
            Insn::Jmp { target } | Insn::Jcc { target, .. } => {
                s = s.union(target.uses());
            }
            Insn::Call { target } => {
                s = s.union(target.uses());
                s.insert(Reg::Esp);
            }
            Insn::Ret => {
                s.insert(Reg::Esp);
            }
            Insn::Str { op, rep, .. } => {
                if op.reads_si() {
                    s.insert(Reg::Esi);
                }
                if op.uses_di() {
                    s.insert(Reg::Edi);
                }
                if matches!(op, StrOp::Stos | StrOp::Scas) {
                    s.insert(Reg::Eax);
                }
                if !matches!(rep, Rep::None) {
                    s.insert(Reg::Ecx);
                }
            }
            Insn::Cli | Insn::Sti | Insn::Nop | Insn::Hlt | Insn::Int3 | Insn::Ud2 => {}
        }
        s
    }

    /// Registers written by this instruction, including implicit ones.
    pub fn defs(&self) -> RegSet {
        let mut s = RegSet::new();
        match self {
            Insn::Mov { dst, .. } | Insn::Alu { dst, .. } | Insn::Shift { dst, .. } => {
                if let Some(r) = dst.def() {
                    s.insert(r);
                }
            }
            Insn::Movzx { dst, .. } | Insn::Movsx { dst, .. } | Insn::Lea { dst, .. } => {
                s.insert(*dst);
            }
            Insn::Un { dst, .. } => {
                if let Some(r) = dst.def() {
                    s.insert(r);
                }
            }
            Insn::Imul { dst, .. } => {
                s.insert(*dst);
            }
            Insn::Push { .. } => {
                s.insert(Reg::Esp);
            }
            Insn::Pop { dst } => {
                if let Some(r) = dst.def() {
                    s.insert(r);
                }
                s.insert(Reg::Esp);
            }
            Insn::Call { .. } => {
                // Caller-saved registers are clobbered across a call under
                // the cdecl-like convention used by the drivers.
                s.insert(Reg::Eax);
                s.insert(Reg::Ecx);
                s.insert(Reg::Edx);
                s.insert(Reg::Esp);
            }
            Insn::Ret => {
                s.insert(Reg::Esp);
            }
            Insn::Str { op, rep, .. } => {
                if op.reads_si() {
                    s.insert(Reg::Esi);
                }
                if op.uses_di() {
                    s.insert(Reg::Edi);
                }
                if matches!(op, StrOp::Lods) {
                    s.insert(Reg::Eax);
                }
                if !matches!(rep, Rep::None) {
                    s.insert(Reg::Ecx);
                }
            }
            Insn::Cmp { .. }
            | Insn::Test { .. }
            | Insn::Jmp { .. }
            | Insn::Jcc { .. }
            | Insn::Cli
            | Insn::Sti
            | Insn::Nop
            | Insn::Hlt
            | Insn::Int3
            | Insn::Ud2 => {}
        }
        s
    }

    /// Memory references made by this instruction that are *explicit*
    /// (appear as operands). `lea` is excluded — it computes an address but
    /// performs no access. Stack-implicit accesses (`push`/`pop`/`call`/
    /// `ret`) are excluded: they are `%esp`-relative by construction.
    pub fn explicit_mem_refs(&self) -> Vec<&MemRef> {
        let mut v = Vec::new();
        match self {
            Insn::Mov { dst, src, .. } => {
                if let Operand::Mem(m) = src {
                    v.push(m);
                }
                if let Operand::Mem(m) = dst {
                    v.push(m);
                }
            }
            Insn::Movzx { src, .. } | Insn::Movsx { src, .. } => {
                if let Operand::Mem(m) = src {
                    v.push(m);
                }
            }
            Insn::Alu { dst, src, .. }
            | Insn::Cmp { src, dst, .. }
            | Insn::Test { src, dst, .. } => {
                if let Operand::Mem(m) = src {
                    v.push(m);
                }
                if let Operand::Mem(m) = dst {
                    v.push(m);
                }
            }
            Insn::Shift { dst, .. } | Insn::Un { dst, .. } => {
                if let Operand::Mem(m) = dst {
                    v.push(m);
                }
            }
            Insn::Imul {
                src: Operand::Mem(m),
                ..
            } => {
                v.push(m);
            }
            Insn::Push {
                src: Operand::Mem(m),
            } => {
                v.push(m);
            }
            Insn::Pop {
                dst: Operand::Mem(m),
            } => {
                v.push(m);
            }
            Insn::Jmp { target } | Insn::Jcc { target, .. } | Insn::Call { target } => {
                if let Target::Mem(m) = target {
                    v.push(m);
                }
            }
            _ => {}
        }
        v
    }

    /// True if this instruction makes any non-stack-relative data memory
    /// access, i.e. it must be rewritten to use SVM (paper §4.1). String
    /// instructions always qualify (their pointers are heap pointers).
    pub fn needs_svm(&self) -> bool {
        if matches!(self, Insn::Str { .. }) {
            return true;
        }
        self.explicit_mem_refs()
            .iter()
            .any(|m| !m.is_stack_relative())
    }

    /// True if this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Insn::Jmp { .. } | Insn::Jcc { .. } | Insn::Ret | Insn::Hlt | Insn::Int3 | Insn::Ud2
        )
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Insn::Mov { w, dst, src } => write!(f, "mov{} {}, {}", w.suffix(), src, dst),
            Insn::Movzx { w, dst, src } => write!(f, "movz{}l {}, {}", w.suffix(), src, dst),
            Insn::Movsx { w, dst, src } => write!(f, "movs{}l {}, {}", w.suffix(), src, dst),
            Insn::Lea { dst, mem } => write!(f, "leal {mem}, {dst}"),
            Insn::Alu { op, w, dst, src } => {
                write!(f, "{}{} {}, {}", op.mnemonic(), w.suffix(), src, dst)
            }
            Insn::Shift { op, dst, amount } => {
                write!(f, "{}l {}, {}", op.mnemonic(), amount, dst)
            }
            Insn::Cmp { w, src, dst } => write!(f, "cmp{} {}, {}", w.suffix(), src, dst),
            Insn::Test { w, src, dst } => write!(f, "test{} {}, {}", w.suffix(), src, dst),
            Insn::Un { op, w, dst } => write!(f, "{}{} {}", op.mnemonic(), w.suffix(), dst),
            Insn::Imul { dst, src } => write!(f, "imull {src}, {dst}"),
            Insn::Push { src } => write!(f, "pushl {src}"),
            Insn::Pop { dst } => write!(f, "popl {dst}"),
            Insn::Jmp { target } => write!(f, "jmp {target}"),
            Insn::Jcc { cond, target } => write!(f, "j{} {}", cond.suffix(), target),
            Insn::Call { target } => write!(f, "call {target}"),
            Insn::Ret => write!(f, "ret"),
            Insn::Str { op, w, rep } => {
                write!(f, "{}{}{}", rep.prefix(), op.mnemonic(), w.suffix())
            }
            Insn::Cli => write!(f, "cli"),
            Insn::Sti => write!(f, "sti"),
            Insn::Nop => write!(f, "nop"),
            Insn::Hlt => write!(f, "hlt"),
            Insn::Int3 => write!(f, "int3"),
            Insn::Ud2 => write!(f, "ud2"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mov_load(dst: Reg, base: Reg, disp: i64) -> Insn {
        Insn::Mov {
            w: Width::Long,
            dst: Operand::Reg(dst),
            src: Operand::Mem(MemRef::base_disp(base, disp)),
        }
    }

    #[test]
    fn uses_defs_mov_load() {
        let i = mov_load(Reg::Eax, Reg::Ebx, 8);
        assert!(i.uses().contains(Reg::Ebx));
        assert!(!i.uses().contains(Reg::Eax));
        assert!(i.defs().contains(Reg::Eax));
    }

    #[test]
    fn uses_defs_mov_store() {
        let i = Insn::Mov {
            w: Width::Long,
            dst: Operand::Mem(MemRef::base_disp(Reg::Ebx, 0)),
            src: Operand::Reg(Reg::Eax),
        };
        assert!(i.uses().contains(Reg::Eax));
        assert!(i.uses().contains(Reg::Ebx));
        assert!(i.defs().is_empty());
    }

    #[test]
    fn stack_relative_detection() {
        assert!(MemRef::base_disp(Reg::Esp, 4).is_stack_relative());
        assert!(MemRef::base_disp(Reg::Ebp, -8).is_stack_relative());
        assert!(!MemRef::base_disp(Reg::Eax, 0).is_stack_relative());
        assert!(!MemRef::abs(0x1000).is_stack_relative());
    }

    #[test]
    fn needs_svm() {
        assert!(mov_load(Reg::Eax, Reg::Ebx, 8).needs_svm());
        assert!(!mov_load(Reg::Eax, Reg::Ebp, 8).needs_svm());
        assert!(!Insn::Lea {
            dst: Reg::Eax,
            mem: MemRef::base_disp(Reg::Ebx, 4)
        }
        .needs_svm());
        assert!(Insn::Str {
            op: StrOp::Movs,
            w: Width::Long,
            rep: Rep::Rep
        }
        .needs_svm());
        // Symbolic (data-section) reference counts as heap.
        let i = Insn::Mov {
            w: Width::Long,
            dst: Operand::Reg(Reg::Eax),
            src: Operand::Mem(MemRef::sym("adapter", 0)),
        };
        assert!(i.needs_svm());
    }

    #[test]
    fn string_implicit_regs() {
        let i = Insn::Str {
            op: StrOp::Movs,
            w: Width::Long,
            rep: Rep::Rep,
        };
        let u = i.uses();
        assert!(u.contains(Reg::Esi) && u.contains(Reg::Edi) && u.contains(Reg::Ecx));
        let d = i.defs();
        assert!(d.contains(Reg::Esi) && d.contains(Reg::Edi) && d.contains(Reg::Ecx));
    }

    #[test]
    fn call_clobbers() {
        let i = Insn::Call {
            target: Target::Label("f".into()),
        };
        let d = i.defs();
        assert!(d.contains(Reg::Eax) && d.contains(Reg::Ecx) && d.contains(Reg::Edx));
        assert!(!d.contains(Reg::Ebx));
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            mov_load(Reg::Eax, Reg::Ebx, 8).to_string(),
            "movl 8(%ebx), %eax"
        );
        assert_eq!(
            Insn::Lea {
                dst: Reg::Ecx,
                mem: MemRef {
                    base: Some(Reg::Eax),
                    index: Some((Reg::Ebx, 4)),
                    disp: 12,
                    sym: None
                }
            }
            .to_string(),
            "leal 12(%eax,%ebx,4), %ecx"
        );
        assert_eq!(
            Insn::Str {
                op: StrOp::Movs,
                w: Width::Long,
                rep: Rep::Rep
            }
            .to_string(),
            "rep movsl"
        );
        assert_eq!(
            Insn::Call {
                target: Target::Reg(Reg::Eax)
            }
            .to_string(),
            "call *%eax"
        );
        assert_eq!(
            Insn::Mov {
                w: Width::Long,
                dst: Operand::Reg(Reg::Eax),
                src: Operand::Mem(MemRef::sym("stlb", 4)),
            }
            .to_string(),
            "movl stlb+4, %eax"
        );
    }

    #[test]
    fn cond_negate_involution() {
        for c in [
            Cond::E,
            Cond::Ne,
            Cond::L,
            Cond::Le,
            Cond::G,
            Cond::Ge,
            Cond::B,
            Cond::Be,
            Cond::A,
            Cond::Ae,
            Cond::S,
            Cond::Ns,
        ] {
            assert_eq!(c.negate().negate(), c);
        }
    }

    #[test]
    fn terminators() {
        assert!(Insn::Ret.is_terminator());
        assert!(Insn::Jmp {
            target: Target::Label("x".into())
        }
        .is_terminator());
        assert!(!Insn::Nop.is_terminator());
        assert!(!Insn::Call {
            target: Target::Label("x".into())
        }
        .is_terminator());
    }
}
