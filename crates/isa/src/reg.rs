//! General-purpose registers and register sets.

use std::fmt;

/// The eight x86-32 general purpose registers, in x86 encoding order.
///
/// `Esp` is the stack pointer and `Ebp` the conventional frame pointer;
/// memory references relative to either are exempt from SVM rewriting
/// (paper §4.1: "stack-relative memory references").
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum Reg {
    /// Accumulator; holds return values by convention.
    Eax = 0,
    /// Counter; implicit count register for `rep` string instructions.
    Ecx = 1,
    /// Data register.
    Edx = 2,
    /// Base register; callee-saved by convention.
    Ebx = 3,
    /// Stack pointer.
    Esp = 4,
    /// Frame pointer; callee-saved.
    Ebp = 5,
    /// Source index; implicit source for string instructions.
    Esi = 6,
    /// Destination index; implicit destination for string instructions.
    Edi = 7,
}

impl Reg {
    /// All registers, in encoding order.
    pub const ALL: [Reg; 8] = [
        Reg::Eax,
        Reg::Ecx,
        Reg::Edx,
        Reg::Ebx,
        Reg::Esp,
        Reg::Ebp,
        Reg::Esi,
        Reg::Edi,
    ];

    /// Registers the SVM rewriter may use as scratch when they are dead
    /// (everything except the stack and frame pointers).
    pub const SCRATCH_CANDIDATES: [Reg; 6] =
        [Reg::Eax, Reg::Ecx, Reg::Edx, Reg::Ebx, Reg::Esi, Reg::Edi];

    /// Numeric encoding (0..8).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Register from its numeric encoding.
    ///
    /// Returns `None` if `idx >= 8`.
    pub fn from_index(idx: usize) -> Option<Reg> {
        Reg::ALL.get(idx).copied()
    }

    /// AT&T-style name without the `%` sigil (`"eax"`).
    pub fn name(self) -> &'static str {
        match self {
            Reg::Eax => "eax",
            Reg::Ecx => "ecx",
            Reg::Edx => "edx",
            Reg::Ebx => "ebx",
            Reg::Esp => "esp",
            Reg::Ebp => "ebp",
            Reg::Esi => "esi",
            Reg::Edi => "edi",
        }
    }

    /// Parse a register name (without `%`), e.g. `"eax"`.
    pub fn from_name(name: &str) -> Option<Reg> {
        Some(match name {
            "eax" => Reg::Eax,
            "ecx" => Reg::Ecx,
            "edx" => Reg::Edx,
            "ebx" => Reg::Ebx,
            "esp" => Reg::Esp,
            "ebp" => Reg::Ebp,
            "esi" => Reg::Esi,
            "edi" => Reg::Edi,
            _ => return None,
        })
    }

    /// True for the stack-addressing registers (`esp`, `ebp`) whose memory
    /// references the rewriter leaves untouched.
    #[inline]
    pub fn is_stack_reg(self) -> bool {
        matches!(self, Reg::Esp | Reg::Ebp)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.name())
    }
}

/// A set of registers, stored as a bitmask.
///
/// Used by the rewriter's liveness analysis: `RegSet` values are the
/// live-out sets per instruction, and their complement yields the free
/// scratch registers for the SVM fast path.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct RegSet(u8);

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet(0);
    /// All eight registers.
    pub const ALL: RegSet = RegSet(0xff);

    /// Creates an empty set.
    pub fn new() -> RegSet {
        RegSet::EMPTY
    }

    /// Set containing exactly `r`.
    pub fn of(r: Reg) -> RegSet {
        RegSet(1 << r.index())
    }

    /// Inserts `r`; returns whether it was newly inserted.
    pub fn insert(&mut self, r: Reg) -> bool {
        let had = self.contains(r);
        self.0 |= 1 << r.index();
        !had
    }

    /// Removes `r`; returns whether it was present.
    pub fn remove(&mut self, r: Reg) -> bool {
        let had = self.contains(r);
        self.0 &= !(1 << r.index());
        had
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, r: Reg) -> bool {
        self.0 & (1 << r.index()) != 0
    }

    /// Union.
    #[inline]
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Set difference (`self` minus `other`).
    #[inline]
    pub fn difference(self, other: RegSet) -> RegSet {
        RegSet(self.0 & !other.0)
    }

    /// Intersection.
    #[inline]
    pub fn intersection(self, other: RegSet) -> RegSet {
        RegSet(self.0 & other.0)
    }

    /// Number of registers in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if no registers are present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate over members in encoding order.
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        Reg::ALL.into_iter().filter(move |r| self.contains(*r))
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<T: IntoIterator<Item = Reg>>(iter: T) -> Self {
        let mut s = RegSet::new();
        for r in iter {
            s.insert(r);
        }
        s
    }
}

impl Extend<Reg> for RegSet {
    fn extend<T: IntoIterator<Item = Reg>>(&mut self, iter: T) {
        for r in iter {
            self.insert(r);
        }
    }
}

impl fmt::Debug for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for r in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{}", r.name())?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip_name() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_name(r.name()), Some(r));
        }
        assert_eq!(Reg::from_name("xyz"), None);
    }

    #[test]
    fn reg_roundtrip_index() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_index(r.index()), Some(r));
        }
        assert_eq!(Reg::from_index(8), None);
    }

    #[test]
    fn regset_basics() {
        let mut s = RegSet::new();
        assert!(s.is_empty());
        assert!(s.insert(Reg::Eax));
        assert!(!s.insert(Reg::Eax));
        assert!(s.contains(Reg::Eax));
        assert_eq!(s.len(), 1);
        assert!(s.remove(Reg::Eax));
        assert!(!s.remove(Reg::Eax));
        assert!(s.is_empty());
    }

    #[test]
    fn regset_ops() {
        let a: RegSet = [Reg::Eax, Reg::Ebx].into_iter().collect();
        let b: RegSet = [Reg::Ebx, Reg::Ecx].into_iter().collect();
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersection(b).len(), 1);
        assert!(a.intersection(b).contains(Reg::Ebx));
        assert_eq!(a.difference(b).len(), 1);
        assert!(a.difference(b).contains(Reg::Eax));
    }

    #[test]
    fn regset_iter_order() {
        let s: RegSet = [Reg::Edi, Reg::Eax].into_iter().collect();
        let v: Vec<Reg> = s.iter().collect();
        assert_eq!(v, vec![Reg::Eax, Reg::Edi]);
    }

    #[test]
    fn stack_regs() {
        assert!(Reg::Esp.is_stack_reg());
        assert!(Reg::Ebp.is_stack_reg());
        assert!(!Reg::Eax.is_stack_reg());
    }

    #[test]
    fn debug_nonempty() {
        assert_eq!(format!("{:?}", RegSet::EMPTY), "{}");
        assert_eq!(format!("{:?}", RegSet::of(Reg::Eax)), "{eax}");
    }
}
