//! Assembled modules: text, labels, data section and symbol information.

use crate::insn::Insn;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Kind of a symbol exported by a [`Module`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum SymbolKind {
    /// A code label (function or jump target).
    Text,
    /// A data-section symbol.
    Data,
}

/// One item of the data section, as written in the assembly source.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DataItem {
    /// `.long value` — a 32-bit constant.
    Long(i64),
    /// `.long symbol` — a 32-bit slot relocated to a symbol's address.
    /// Function-pointer tables (e.g. `net_device_ops`) are built this way.
    LongSym(String),
    /// `.zero n` / `.skip n` — `n` zero bytes.
    Zero(u64),
    /// `.byte value`.
    Byte(u8),
    /// `.asciz "…"` — NUL-terminated string.
    Asciz(String),
    /// `.align n` — pad with zeros to an `n`-byte boundary.
    Align(u64),
}

/// Relocation record in the data section: patch the 4 bytes at `offset`
/// with the load-time address of `symbol`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DataReloc {
    /// Byte offset within the data section.
    pub offset: u64,
    /// Symbol whose address is written there.
    pub symbol: String,
}

/// The data section of a module: laid-out bytes, symbols and relocations.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DataSection {
    /// Raw initial bytes (relocation slots are zero until load).
    pub bytes: Vec<u8>,
    /// Symbol name → byte offset within the section.
    pub symbols: BTreeMap<String, u64>,
    /// Slots to patch with symbol addresses at load time.
    pub relocs: Vec<DataReloc>,
}

impl DataSection {
    /// Size of the section in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the section is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// An assembled translation unit — the "driver binary" the rewriter and
/// loaders operate on.
///
/// Instruction `i` lives at code offset `i * INSN_SIZE`. Labels map to
/// instruction indices. `externs` are unresolved references to support
/// routines (the Linux driver API); the loader binds them to native
/// implementations, hypervisor implementations, or upcall stubs, exactly
/// as in paper §5.2.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Module {
    /// Module name (for diagnostics).
    pub name: String,
    /// Instruction stream.
    pub text: Vec<Insn>,
    /// Label → instruction index.
    pub labels: BTreeMap<String, usize>,
    /// Exported (global) symbols.
    pub globals: BTreeSet<String>,
    /// Imported symbols (driver support routines, tables).
    pub externs: BTreeSet<String>,
    /// The data section.
    pub data: DataSection,
}

impl Module {
    /// Creates an empty module with the given name.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            ..Module::default()
        }
    }

    /// Instruction index of a label.
    pub fn label(&self, name: &str) -> Option<usize> {
        self.labels.get(name).copied()
    }

    /// All labels that point at instruction index `idx`, in sorted order.
    pub fn labels_at(&self, idx: usize) -> Vec<&str> {
        self.labels
            .iter()
            .filter(|(_, i)| **i == idx)
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Whether `name` is defined in this module (text label or data symbol).
    pub fn defines(&self, name: &str) -> bool {
        self.labels.contains_key(name) || self.data.symbols.contains_key(name)
    }

    /// Returns the list of undefined symbols actually referenced by the
    /// text or data sections but not defined locally. The loader must
    /// resolve each of these.
    pub fn undefined_symbols(&self) -> BTreeSet<String> {
        let mut refs = BTreeSet::new();
        for insn in &self.text {
            collect_insn_syms(insn, &mut refs);
        }
        for r in &self.data.relocs {
            refs.insert(r.symbol.clone());
        }
        refs.retain(|s| !self.defines(s));
        refs
    }

    /// Function bodies: map from each global text label to the half-open
    /// instruction index range ending at the next label or end of text.
    ///
    /// This is a coarse view used for per-function statistics; the rewriter
    /// uses a proper CFG instead.
    pub fn function_ranges(&self) -> Vec<(String, std::ops::Range<usize>)> {
        let mut starts: Vec<(usize, &String)> = self
            .labels
            .iter()
            .filter(|(n, _)| self.globals.contains(*n))
            .map(|(n, i)| (*i, n))
            .collect();
        starts.sort();
        let mut out = Vec::new();
        for (k, (start, name)) in starts.iter().enumerate() {
            let end = starts
                .get(k + 1)
                .map(|(s, _)| *s)
                .unwrap_or(self.text.len());
            out.push(((*name).clone(), *start..end));
        }
        out
    }

    /// Renders the module back to assembly source. `assemble(render(m))`
    /// reproduces `m` up to label placement (labels print before their
    /// instruction).
    pub fn render(&self) -> String {
        format!("{self}")
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# module {}", self.name)?;
        for e in &self.externs {
            writeln!(f, "    .extern {e}")?;
        }
        writeln!(f, "    .text")?;
        for g in &self.globals {
            if self.labels.contains_key(g) {
                writeln!(f, "    .globl {g}")?;
            }
        }
        // Labels per index.
        let mut by_idx: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
        for (name, idx) in &self.labels {
            by_idx.entry(*idx).or_default().push(name);
        }
        for (i, insn) in self.text.iter().enumerate() {
            if let Some(ls) = by_idx.get(&i) {
                for l in ls {
                    writeln!(f, "{l}:")?;
                }
            }
            writeln!(f, "    {insn}")?;
        }
        if let Some(ls) = by_idx.get(&self.text.len()) {
            for l in ls {
                writeln!(f, "{l}:")?;
            }
        }
        if !self.data.is_empty() {
            writeln!(f, "    .data")?;
            let mut syms: Vec<(&String, &u64)> = self.data.symbols.iter().collect();
            syms.sort_by_key(|(_, off)| **off);
            let mut si = 0usize;
            let relocs: BTreeMap<u64, &str> = self
                .data
                .relocs
                .iter()
                .map(|r| (r.offset, r.symbol.as_str()))
                .collect();
            let mut off = 0u64;
            let n = self.data.bytes.len() as u64;
            while off < n {
                while si < syms.len() && *syms[si].1 == off {
                    if self.globals.contains(syms[si].0.as_str()) {
                        writeln!(f, "    .globl {}", syms[si].0)?;
                    }
                    writeln!(f, "{}:", syms[si].0)?;
                    si += 1;
                }
                if let Some(sym) = relocs.get(&off) {
                    writeln!(f, "    .long {sym}")?;
                    off += 4;
                } else if off + 4 <= n && !syms.iter().any(|(_, o)| **o > off && **o < off + 4) {
                    let w = u32::from_le_bytes(
                        self.data.bytes[off as usize..off as usize + 4]
                            .try_into()
                            .expect("4 bytes"),
                    );
                    writeln!(f, "    .long {w}")?;
                    off += 4;
                } else {
                    writeln!(f, "    .byte {}", self.data.bytes[off as usize])?;
                    off += 1;
                }
            }
            while si < syms.len() {
                writeln!(f, "{}:", syms[si].0)?;
                si += 1;
            }
        }
        Ok(())
    }
}

fn collect_insn_syms(insn: &Insn, out: &mut BTreeSet<String>) {
    use crate::insn::{Operand, Target};
    fn op(o: &Operand, out: &mut BTreeSet<String>) {
        match o {
            Operand::Sym(s, _) => {
                out.insert(s.clone());
            }
            Operand::Mem(m) => {
                if let Some(s) = &m.sym {
                    out.insert(s.clone());
                }
            }
            _ => {}
        }
    }
    fn tgt(t: &Target, out: &mut BTreeSet<String>) {
        match t {
            Target::Label(l) => {
                out.insert(l.clone());
            }
            Target::Mem(m) => {
                if let Some(s) = &m.sym {
                    out.insert(s.clone());
                }
            }
            _ => {}
        }
    }
    match insn {
        Insn::Mov { dst, src, .. } => {
            op(dst, out);
            op(src, out);
        }
        Insn::Movzx { src, .. } | Insn::Movsx { src, .. } => op(src, out),
        Insn::Lea { mem, .. } => {
            if let Some(s) = &mem.sym {
                out.insert(s.clone());
            }
        }
        Insn::Alu { dst, src, .. } | Insn::Cmp { src, dst, .. } | Insn::Test { src, dst, .. } => {
            op(dst, out);
            op(src, out);
        }
        Insn::Shift { dst, amount, .. } => {
            op(dst, out);
            op(amount, out);
        }
        Insn::Un { dst, .. } => op(dst, out),
        Insn::Imul { src, .. } => op(src, out),
        Insn::Push { src } => op(src, out),
        Insn::Pop { dst } => op(dst, out),
        Insn::Jmp { target } | Insn::Jcc { target, .. } | Insn::Call { target } => tgt(target, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{Operand, Target, Width};
    use crate::Reg;

    fn sample() -> Module {
        let mut m = Module::new("t");
        m.text.push(Insn::Mov {
            w: Width::Long,
            dst: Operand::Reg(Reg::Eax),
            src: Operand::Sym("counter".into(), 0),
        });
        m.text.push(Insn::Call {
            target: Target::Label("helper".into()),
        });
        m.text.push(Insn::Ret);
        m.labels.insert("f".into(), 0);
        m.globals.insert("f".into());
        m.data.bytes.extend_from_slice(&0u32.to_le_bytes());
        m.data.symbols.insert("counter".into(), 0);
        m
    }

    #[test]
    fn undefined_symbols_found() {
        let m = sample();
        let undef = m.undefined_symbols();
        assert!(undef.contains("helper"));
        assert!(!undef.contains("counter"));
        assert!(!undef.contains("f"));
    }

    #[test]
    fn function_ranges_cover_text() {
        let m = sample();
        let ranges = m.function_ranges();
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0].0, "f");
        assert_eq!(ranges[0].1, 0..3);
    }

    #[test]
    fn labels_at_index() {
        let m = sample();
        assert_eq!(m.labels_at(0), vec!["f"]);
        assert!(m.labels_at(1).is_empty());
    }

    #[test]
    fn render_contains_instructions() {
        let m = sample();
        let s = m.render();
        assert!(s.contains("movl $counter, %eax"));
        assert!(s.contains("call helper"));
        assert!(s.contains("f:"));
        assert!(s.contains(".data"));
    }
}
