//! The assembly-level SVM rewriting transformation (paper §4.1, §5.1).
//!
//! For every instruction that references memory other than stack-relative
//! (`%esp`/`%ebp`-based) accesses, the rewriter emits the paper's Figure 4
//! fast path: effective address → stlb tag check → `xor` translation →
//! the original access through the translated address, with an out-of-line
//! slow path that calls `__svm_slow` and retries. Scratch registers come
//! from the liveness analysis; when fewer than three are free the site
//! spills (push/pop) — counted in [`RewriteStats`].
//!
//! String instructions are rewritten into page-chunked loops (§5.1.1) and
//! indirect calls are routed through `__svm_call_xlat` (§5.1.2).

use crate::liveness::Liveness;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use twin_isa::{
    AluOp, Cond, Insn, MemRef, Module, Operand, Reg, RegSet, Rep, ShiftOp, StrOp, Target, UnOp,
    Width,
};
use twin_svm::{CALL_XLAT_SYMBOL, SLOW_PATH_SYMBOL, STLB_SYMBOL};

/// Extern called by the stack-protection extension (paper §4.5.1) to
/// validate variable-offset stack accesses at runtime.
pub const STACK_CHECK_SYMBOL: &str = "__svm_stack_check";

/// Options controlling the rewrite.
#[derive(Clone, Debug)]
pub struct RewriteOptions {
    /// Use liveness analysis to find free scratch registers (paper
    /// default). With `false`, every SVM site spills — the ablation for
    /// footnote 3.
    pub liveness: bool,
    /// Insert runtime checks for variable-offset stack accesses
    /// (XFI-like extension the paper proposes in §4.5.1 but does not
    /// implement).
    pub stack_checks: bool,
    /// Reject privileged instructions at rewrite time (paper §4.5.2:
    /// "detected and prevented by static inspection of the driver code
    /// during binary translation").
    pub scan_privileged: bool,
}

impl Default for RewriteOptions {
    fn default() -> RewriteOptions {
        RewriteOptions {
            liveness: true,
            stack_checks: false,
            scan_privileged: true,
        }
    }
}

/// Statistics from one rewrite run (reported by the `rewriter_inspect`
/// example and the engineering-effort bench).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Instructions in the input module.
    pub insns_before: usize,
    /// Instructions in the output module.
    pub insns_after: usize,
    /// Plain memory-reference sites rewritten to the SVM fast path.
    pub mem_sites: usize,
    /// String-instruction sites rewritten to page-chunked loops.
    pub string_sites: usize,
    /// Indirect call/jump sites routed through `__svm_call_xlat`.
    pub indirect_sites: usize,
    /// Sites that needed register spills.
    pub spill_sites: usize,
    /// Total registers spilled across all sites.
    pub spilled_regs: usize,
    /// Runtime stack checks inserted (extension).
    pub stack_checks_inserted: usize,
    /// Stack accesses statically verified safe (constant offset).
    pub stack_static_verified: usize,
}

impl RewriteStats {
    /// Code-size expansion factor.
    pub fn expansion_factor(&self) -> f64 {
        if self.insns_before == 0 {
            1.0
        } else {
            self.insns_after as f64 / self.insns_before as f64
        }
    }

    /// Fraction of input instructions that referenced memory (the paper
    /// measures "roughly 25%" for network drivers).
    pub fn mem_fraction(&self) -> f64 {
        if self.insns_before == 0 {
            0.0
        } else {
            (self.mem_sites + self.string_sites) as f64 / self.insns_before as f64
        }
    }
}

/// Errors detected during rewriting.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RewriteError {
    /// An instruction had two non-stack memory operands (not valid in the
    /// modeled ISA).
    TwoMemOperands {
        /// Instruction index in the input module.
        index: usize,
    },
    /// A privileged instruction was found with
    /// [`RewriteOptions::scan_privileged`] enabled.
    Privileged {
        /// Instruction index in the input module.
        index: usize,
        /// Rendered instruction.
        insn: String,
    },
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::TwoMemOperands { index } => {
                write!(f, "instruction {index} has two memory operands")
            }
            RewriteError::Privileged { index, insn } => {
                write!(f, "privileged instruction `{insn}` at index {index}")
            }
        }
    }
}

impl Error for RewriteError {}

/// Output of a rewrite: the derived module plus statistics.
#[derive(Clone, Debug)]
pub struct RewriteOutput {
    /// The rewritten module (the "hypervisor driver binary").
    pub module: Module,
    /// Rewrite statistics.
    pub stats: RewriteStats,
}

struct Emitter {
    text: Vec<Insn>,
    labels: BTreeMap<String, usize>,
    deferred: Vec<(String, Vec<Insn>)>,
    site: u32,
}

impl Emitter {
    fn new() -> Emitter {
        Emitter {
            text: Vec::new(),
            labels: BTreeMap::new(),
            deferred: Vec::new(),
            site: 0,
        }
    }

    fn emit(&mut self, i: Insn) {
        self.text.push(i);
    }

    fn label_here(&mut self, name: String) {
        self.labels.insert(name, self.text.len());
    }

    fn fresh(&mut self, kind: &str) -> String {
        let n = self.site;
        self.site += 1;
        format!(".Lsvm_{kind}_{n}")
    }
}

fn stlb_ref(idx_reg: Reg, off: i64) -> MemRef {
    MemRef {
        base: None,
        index: Some((idx_reg, 1)),
        disp: off,
        sym: Some(STLB_SYMBOL.to_string()),
    }
}

fn mov(dst: Reg, src: Operand) -> Insn {
    Insn::Mov {
        w: Width::Long,
        dst: Operand::Reg(dst),
        src,
    }
}

fn alu_ri(op: AluOp, dst: Reg, imm: i64) -> Insn {
    Insn::Alu {
        op,
        w: Width::Long,
        dst: Operand::Reg(dst),
        src: Operand::Imm(imm),
    }
}

fn alu_rr(op: AluOp, dst: Reg, src: Reg) -> Insn {
    Insn::Alu {
        op,
        w: Width::Long,
        dst: Operand::Reg(dst),
        src: Operand::Reg(src),
    }
}

/// Where the address being translated comes from.
enum AddrExpr {
    Mem(MemRef),
    Reg(Reg),
}

/// Emits the Figure 4 fast path. Leaves the translated address in `out`;
/// `s1`/`s2` are scratch. The slow path is deferred to the end of the
/// module and jumps back to the retry label.
fn emit_fastpath(em: &mut Emitter, addr: AddrExpr, s1: Reg, s2: Reg, out: Reg) {
    let retry = em.fresh("retry");
    let slow = em.fresh("slow");
    em.label_here(retry.clone());
    match addr {
        AddrExpr::Mem(mem) => em.emit(Insn::Lea { dst: s1, mem }),
        AddrExpr::Reg(r) => em.emit(Insn::Lea {
            dst: s1,
            mem: MemRef::base_disp(r, 0),
        }),
    }
    em.emit(mov(out, Operand::Reg(s1)));
    em.emit(alu_ri(AluOp::And, s1, 0xffff_f000));
    em.emit(mov(s2, Operand::Reg(s1)));
    em.emit(alu_ri(AluOp::And, s1, 0x00ff_f000));
    em.emit(Insn::Shift {
        op: ShiftOp::Shr,
        dst: Operand::Reg(s1),
        amount: Operand::Imm(9),
    });
    em.emit(Insn::Cmp {
        w: Width::Long,
        src: Operand::Mem(stlb_ref(s1, 0)),
        dst: Operand::Reg(s2),
    });
    em.emit(Insn::Jcc {
        cond: Cond::Ne,
        target: Target::Label(slow.clone()),
    });
    em.emit(Insn::Alu {
        op: AluOp::Xor,
        w: Width::Long,
        dst: Operand::Reg(out),
        src: Operand::Mem(stlb_ref(s1, 4)),
    });
    // Deferred slow path: push the untranslated address (still in `out`),
    // let the handler fill the stlb, retry.
    em.deferred.push((
        slow,
        vec![
            Insn::Push {
                src: Operand::Reg(out),
            },
            Insn::Call {
                target: Target::Label(SLOW_PATH_SYMBOL.to_string()),
            },
            alu_ri(AluOp::Add, Reg::Esp, 4),
            Insn::Jmp {
                target: Target::Label(retry),
            },
        ],
    ));
}

/// Scratch selection for a generic memory site: three registers not used
/// by the instruction; dead ones preferred, spills otherwise.
///
/// `regs[0]` is the `out` register holding the translated address; when
/// any dead register exists it is assigned to `out`, so spilled registers
/// can be restored *before* the final access. That ordering is what makes
/// rewritten `push`/`pop` instructions with spills correct: a spill `pop`
/// after the rewritten `push` would consume the value just pushed.
struct Scratch {
    regs: [Reg; 3],
    spills: Vec<Reg>,
}

impl Scratch {
    /// Whether the `out` register itself had to be spilled (no dead
    /// register was available at this site).
    fn out_spilled(&self) -> bool {
        self.spills.contains(&self.regs[0])
    }
}

fn pick_scratch(insn: &Insn, live_out: RegSet, blocked_extra: RegSet) -> Scratch {
    let blocked = insn.uses().union(blocked_extra);
    let defs = insn.defs();
    let mut chosen = Vec::new();
    let mut spills = Vec::new();
    // Dead (or about-to-be-defined) registers first — the first of these
    // becomes `out`.
    for r in Reg::SCRATCH_CANDIDATES {
        if chosen.len() == 3 {
            break;
        }
        if blocked.contains(r) {
            continue;
        }
        if defs.contains(r) || !live_out.contains(r) {
            chosen.push(r);
        }
    }
    // Spill live registers if needed (excluding defs: popping one would
    // clobber the instruction's result).
    for r in Reg::SCRATCH_CANDIDATES {
        if chosen.len() == 3 {
            break;
        }
        if blocked.contains(r) || chosen.contains(&r) || defs.contains(r) {
            continue;
        }
        chosen.push(r);
        spills.push(r);
    }
    assert!(chosen.len() == 3, "ISA guarantees three scratch registers");
    Scratch {
        regs: [chosen[0], chosen[1], chosen[2]],
        spills,
    }
}

/// Replaces the (single) non-stack memory operand of `insn` with `(%out)`.
fn substitute_mem(insn: &Insn, out: Reg) -> Insn {
    let rep = |op: &Operand| -> Operand {
        match op {
            Operand::Mem(m) if !m.is_stack_relative() => Operand::Mem(MemRef::base_disp(out, 0)),
            other => other.clone(),
        }
    };
    match insn {
        Insn::Mov { w, dst, src } => Insn::Mov {
            w: *w,
            dst: rep(dst),
            src: rep(src),
        },
        Insn::Movzx { w, dst, src } => Insn::Movzx {
            w: *w,
            dst: *dst,
            src: rep(src),
        },
        Insn::Movsx { w, dst, src } => Insn::Movsx {
            w: *w,
            dst: *dst,
            src: rep(src),
        },
        Insn::Alu { op, w, dst, src } => Insn::Alu {
            op: *op,
            w: *w,
            dst: rep(dst),
            src: rep(src),
        },
        Insn::Shift { op, dst, amount } => Insn::Shift {
            op: *op,
            dst: rep(dst),
            amount: amount.clone(),
        },
        Insn::Cmp { w, src, dst } => Insn::Cmp {
            w: *w,
            src: rep(src),
            dst: rep(dst),
        },
        Insn::Test { w, src, dst } => Insn::Test {
            w: *w,
            src: rep(src),
            dst: rep(dst),
        },
        Insn::Un { op, w, dst } => Insn::Un {
            op: *op,
            w: *w,
            dst: rep(dst),
        },
        Insn::Imul { dst, src } => Insn::Imul {
            dst: *dst,
            src: rep(src),
        },
        Insn::Push { src } => Insn::Push { src: rep(src) },
        Insn::Pop { dst } => Insn::Pop { dst: rep(dst) },
        other => other.clone(),
    }
}

/// Rewrites `module` into its hypervisor-driver form.
///
/// # Errors
///
/// See [`RewriteError`].
pub fn rewrite(module: &Module, opts: &RewriteOptions) -> Result<RewriteOutput, RewriteError> {
    let liveness = if opts.liveness {
        Liveness::compute(module)
    } else {
        Liveness::all_live(module)
    };

    let mut stats = RewriteStats {
        insns_before: module.text.len(),
        ..RewriteStats::default()
    };
    let mut em = Emitter::new();
    let mut index_map = vec![0usize; module.text.len() + 1];

    for (i, insn) in module.text.iter().enumerate() {
        index_map[i] = em.text.len();
        let live_out = liveness.live_out(i);

        if opts.scan_privileged && matches!(insn, Insn::Hlt) {
            return Err(RewriteError::Privileged {
                index: i,
                insn: insn.to_string(),
            });
        }

        // Optional stack-protection extension (§4.5.1).
        if opts.stack_checks {
            for m in insn.explicit_mem_refs() {
                if m.is_stack_relative() {
                    if m.index.is_some() {
                        emit_stack_check(&mut em, m.clone(), insn, live_out, &mut stats);
                    } else {
                        stats.stack_static_verified += 1;
                    }
                }
            }
        }

        match insn {
            Insn::Str { op, w, rep } => {
                stats.string_sites += 1;
                match op {
                    StrOp::Movs => emit_movs_loop(&mut em, *w, *rep),
                    StrOp::Stos => emit_stos_loop(&mut em, *w, *rep),
                    StrOp::Lods | StrOp::Cmps | StrOp::Scas => {
                        emit_element_loop(&mut em, *op, *w, *rep)
                    }
                }
            }
            Insn::Call { target } | Insn::Jmp { target } if target.is_indirect() => {
                stats.indirect_sites += 1;
                let is_call = matches!(insn, Insn::Call { .. });
                emit_indirect(&mut em, target, is_call, live_out, &mut stats);
            }
            _ if insn.needs_svm() => {
                let mems: Vec<&MemRef> = insn
                    .explicit_mem_refs()
                    .into_iter()
                    .filter(|m| !m.is_stack_relative())
                    .collect();
                if mems.len() > 1 {
                    return Err(RewriteError::TwoMemOperands { index: i });
                }
                stats.mem_sites += 1;
                let mem = mems[0].clone();
                let sc = pick_scratch(insn, live_out, RegSet::EMPTY);
                if !sc.spills.is_empty() {
                    stats.spill_sites += 1;
                    stats.spilled_regs += sc.spills.len();
                }
                let stack_op = matches!(insn, Insn::Push { .. } | Insn::Pop { .. });
                if stack_op && sc.out_spilled() {
                    // Every scratch register is live (no-liveness mode, or
                    // extreme pressure): rewrite push/pop through a
                    // reserved stack slot so spill restores cannot consume
                    // the pushed/popped value.
                    emit_stack_op_all_spilled(&mut em, insn, &mem, &sc);
                } else {
                    for r in &sc.spills {
                        em.emit(Insn::Push {
                            src: Operand::Reg(*r),
                        });
                    }
                    let [out, s1, s2] = sc.regs;
                    emit_fastpath(&mut em, AddrExpr::Mem(mem), s1, s2, out);
                    if !sc.out_spilled() {
                        // Restore spills before the access: mandatory for
                        // push/pop, harmless otherwise (`out` is dead).
                        for r in sc.spills.iter().rev() {
                            em.emit(Insn::Pop {
                                dst: Operand::Reg(*r),
                            });
                        }
                        em.emit(substitute_mem(insn, out));
                    } else {
                        em.emit(substitute_mem(insn, out));
                        for r in sc.spills.iter().rev() {
                            em.emit(Insn::Pop {
                                dst: Operand::Reg(*r),
                            });
                        }
                    }
                }
            }
            other => em.emit(other.clone()),
        }
    }
    index_map[module.text.len()] = em.text.len();

    // Barrier so straight-line code cannot fall into the slow paths.
    em.emit(Insn::Int3);
    let deferred = std::mem::take(&mut em.deferred);
    for (label, body) in deferred {
        em.label_here(label);
        for insn in body {
            em.emit(insn);
        }
    }

    let mut out = Module::new(format!("{}.twin", module.name));
    out.text = em.text;
    out.labels = em.labels;
    for (name, old_idx) in &module.labels {
        out.labels.insert(name.clone(), index_map[*old_idx]);
    }
    out.globals = module.globals.clone();
    out.externs = module.externs.clone();
    out.externs.insert(SLOW_PATH_SYMBOL.to_string());
    out.externs.insert(CALL_XLAT_SYMBOL.to_string());
    out.externs.insert(STLB_SYMBOL.to_string());
    if opts.stack_checks {
        out.externs.insert(STACK_CHECK_SYMBOL.to_string());
    }
    out.data = module.data.clone();

    stats.insns_after = out.text.len();
    Ok(RewriteOutput { module: out, stats })
}

/// Rewrites `pushl mem` / `popl mem` when all three scratch registers are
/// spilled. A value slot on the stack decouples the spill frames from the
/// pushed/popped value:
///
/// * push: reserve the slot, spill, translate, load the value through
///   `out`, store it into the slot stack-relatively, restore spills — the
///   slot (now on top) is the pushed value.
/// * pop: spill above the existing value, translate, copy the value from
///   its known offset through `out`, restore spills, drop the value.
fn emit_stack_op_all_spilled(em: &mut Emitter, insn: &Insn, mem: &MemRef, sc: &Scratch) {
    let [out, s1, s2] = sc.regs;
    let is_push = matches!(insn, Insn::Push { .. });
    if is_push {
        em.emit(alu_ri(AluOp::Sub, Reg::Esp, 4)); // reserve the value slot
    }
    for r in &sc.spills {
        em.emit(Insn::Push {
            src: Operand::Reg(*r),
        });
    }
    let depth = 4 * sc.spills.len() as i64;
    emit_fastpath(em, AddrExpr::Mem(mem.clone()), s1, s2, out);
    if is_push {
        em.emit(mov(out, Operand::Mem(MemRef::base_disp(out, 0))));
        em.emit(Insn::Mov {
            w: Width::Long,
            dst: Operand::Mem(MemRef::base_disp(Reg::Esp, depth)),
            src: Operand::Reg(out),
        });
        for r in sc.spills.iter().rev() {
            em.emit(Insn::Pop {
                dst: Operand::Reg(*r),
            });
        }
    } else {
        // Value to pop sits just above the spill frames; `s1` carries it
        // (s1's real value is restored right after).
        em.emit(Insn::Mov {
            w: Width::Long,
            dst: Operand::Reg(s1),
            src: Operand::Mem(MemRef::base_disp(Reg::Esp, depth)),
        });
        em.emit(Insn::Mov {
            w: Width::Long,
            dst: Operand::Mem(MemRef::base_disp(out, 0)),
            src: Operand::Reg(s1),
        });
        for r in sc.spills.iter().rev() {
            em.emit(Insn::Pop {
                dst: Operand::Reg(*r),
            });
        }
        em.emit(alu_ri(AluOp::Add, Reg::Esp, 4)); // consume the value
    }
}

fn emit_stack_check(
    em: &mut Emitter,
    mem: MemRef,
    insn: &Insn,
    live_out: RegSet,
    stats: &mut RewriteStats,
) {
    stats.stack_checks_inserted += 1;
    let sc = pick_scratch(insn, live_out, RegSet::EMPTY);
    let s = sc.regs[0];
    let spill = sc.spills.contains(&s);
    if spill {
        em.emit(Insn::Push {
            src: Operand::Reg(s),
        });
    }
    em.emit(Insn::Lea { dst: s, mem });
    em.emit(Insn::Push {
        src: Operand::Reg(s),
    });
    em.emit(Insn::Call {
        target: Target::Label(STACK_CHECK_SYMBOL.to_string()),
    });
    em.emit(alu_ri(AluOp::Add, Reg::Esp, 4));
    if spill {
        em.emit(Insn::Pop {
            dst: Operand::Reg(s),
        });
    }
}

fn emit_indirect(
    em: &mut Emitter,
    target: &Target,
    is_call: bool,
    live_out: RegSet,
    stats: &mut RewriteStats,
) {
    // Calling convention: %eax/%ecx/%edx are caller-saved, so they are
    // free at a call site (the original call clobbered them anyway).
    match target {
        Target::Reg(r) => {
            if *r != Reg::Eax {
                em.emit(mov(Reg::Eax, Operand::Reg(*r)));
            }
        }
        Target::Mem(m) => {
            if m.is_stack_relative() {
                // Stack-held function pointer: plain load, no translation
                // of the *address*; the value still needs call translation.
                em.emit(mov(Reg::Eax, Operand::Mem(m.clone())));
            } else {
                stats.mem_sites += 1;
                // Translate the pointer location via SVM, then load it.
                emit_fastpath(em, AddrExpr::Mem(m.clone()), Reg::Ecx, Reg::Edx, Reg::Eax);
                em.emit(mov(Reg::Eax, Operand::Mem(MemRef::base_disp(Reg::Eax, 0))));
            }
        }
        _ => unreachable!("direct targets are not rewritten"),
    }
    let _ = live_out;
    em.emit(Insn::Push {
        src: Operand::Reg(Reg::Eax),
    });
    em.emit(Insn::Call {
        target: Target::Label(CALL_XLAT_SYMBOL.to_string()),
    });
    em.emit(alu_ri(AluOp::Add, Reg::Esp, 4));
    if is_call {
        em.emit(Insn::Call {
            target: Target::Reg(Reg::Eax),
        });
    } else {
        em.emit(Insn::Jmp {
            target: Target::Reg(Reg::Eax),
        });
    }
}

fn log2_bytes(w: Width) -> u32 {
    match w {
        Width::Byte => 0,
        Width::Word => 1,
        Width::Long => 2,
    }
}

/// Page-chunked `movs` loop (paper §5.1.1): "loops over the entire string
/// in chunks of page length, and use[s] the string instruction on the
/// individual string chunks that are guaranteed to lie within a single
/// page".
fn emit_movs_loop(em: &mut Emitter, w: Width, rep: Rep) {
    let k = log2_bytes(w);
    let single = matches!(rep, Rep::None);
    let top = em.fresh("movs_top");
    let done = em.fresh("movs_done");
    let m1 = em.fresh("movs_m1");
    let m2 = em.fresh("movs_m2");
    let m3 = em.fresh("movs_m3");

    for r in [Reg::Eax, Reg::Ebx, Reg::Edx] {
        em.emit(Insn::Push {
            src: Operand::Reg(r),
        });
    }
    if single {
        em.emit(Insn::Push {
            src: Operand::Reg(Reg::Ecx),
        });
        em.emit(mov(Reg::Ecx, Operand::Imm(1)));
    }
    em.label_here(top.clone());
    em.emit(Insn::Cmp {
        w: Width::Long,
        src: Operand::Imm(0),
        dst: Operand::Reg(Reg::Ecx),
    });
    em.emit(Insn::Jcc {
        cond: Cond::E,
        target: Target::Label(done.clone()),
    });
    // eax = elements to end of esi's page.
    em.emit(mov(Reg::Eax, Operand::Reg(Reg::Esi)));
    em.emit(alu_ri(AluOp::Or, Reg::Eax, 0xfff));
    em.emit(Insn::Un {
        op: UnOp::Inc,
        w: Width::Long,
        dst: Operand::Reg(Reg::Eax),
    });
    em.emit(alu_rr(AluOp::Sub, Reg::Eax, Reg::Esi));
    if k > 0 {
        em.emit(Insn::Shift {
            op: ShiftOp::Shr,
            dst: Operand::Reg(Reg::Eax),
            amount: Operand::Imm(k as i64),
        });
    }
    // ebx = elements to end of edi's page.
    em.emit(mov(Reg::Ebx, Operand::Reg(Reg::Edi)));
    em.emit(alu_ri(AluOp::Or, Reg::Ebx, 0xfff));
    em.emit(Insn::Un {
        op: UnOp::Inc,
        w: Width::Long,
        dst: Operand::Reg(Reg::Ebx),
    });
    em.emit(alu_rr(AluOp::Sub, Reg::Ebx, Reg::Edi));
    if k > 0 {
        em.emit(Insn::Shift {
            op: ShiftOp::Shr,
            dst: Operand::Reg(Reg::Ebx),
            amount: Operand::Imm(k as i64),
        });
    }
    // edx = max(1, min(ecx, eax, ebx)).
    em.emit(mov(Reg::Edx, Operand::Reg(Reg::Ecx)));
    em.emit(Insn::Cmp {
        w: Width::Long,
        src: Operand::Reg(Reg::Eax),
        dst: Operand::Reg(Reg::Edx),
    });
    em.emit(Insn::Jcc {
        cond: Cond::Be,
        target: Target::Label(m1.clone()),
    });
    em.emit(mov(Reg::Edx, Operand::Reg(Reg::Eax)));
    em.label_here(m1);
    em.emit(Insn::Cmp {
        w: Width::Long,
        src: Operand::Reg(Reg::Ebx),
        dst: Operand::Reg(Reg::Edx),
    });
    em.emit(Insn::Jcc {
        cond: Cond::Be,
        target: Target::Label(m2.clone()),
    });
    em.emit(mov(Reg::Edx, Operand::Reg(Reg::Ebx)));
    em.label_here(m2);
    em.emit(Insn::Cmp {
        w: Width::Long,
        src: Operand::Imm(0),
        dst: Operand::Reg(Reg::Edx),
    });
    em.emit(Insn::Jcc {
        cond: Cond::Ne,
        target: Target::Label(m3.clone()),
    });
    em.emit(mov(Reg::Edx, Operand::Imm(1)));
    em.label_here(m3);
    // Save originals, translate pointers in place, run the chunk.
    for r in [Reg::Esi, Reg::Edi, Reg::Ecx] {
        em.emit(Insn::Push {
            src: Operand::Reg(r),
        });
    }
    emit_fastpath(em, AddrExpr::Reg(Reg::Esi), Reg::Eax, Reg::Ebx, Reg::Esi);
    emit_fastpath(em, AddrExpr::Reg(Reg::Edi), Reg::Eax, Reg::Ebx, Reg::Edi);
    em.emit(mov(Reg::Ecx, Operand::Reg(Reg::Edx)));
    em.emit(Insn::Str {
        op: StrOp::Movs,
        w,
        rep: Rep::Rep,
    });
    for r in [Reg::Ecx, Reg::Edi, Reg::Esi] {
        em.emit(Insn::Pop {
            dst: Operand::Reg(r),
        });
    }
    // Advance originals by the chunk.
    em.emit(mov(Reg::Eax, Operand::Reg(Reg::Edx)));
    if k > 0 {
        em.emit(Insn::Shift {
            op: ShiftOp::Shl,
            dst: Operand::Reg(Reg::Eax),
            amount: Operand::Imm(k as i64),
        });
    }
    em.emit(alu_rr(AluOp::Add, Reg::Esi, Reg::Eax));
    em.emit(alu_rr(AluOp::Add, Reg::Edi, Reg::Eax));
    em.emit(alu_rr(AluOp::Sub, Reg::Ecx, Reg::Edx));
    em.emit(Insn::Jmp {
        target: Target::Label(top),
    });
    em.label_here(done);
    if single {
        em.emit(Insn::Pop {
            dst: Operand::Reg(Reg::Ecx),
        });
    }
    for r in [Reg::Edx, Reg::Ebx, Reg::Eax] {
        em.emit(Insn::Pop {
            dst: Operand::Reg(r),
        });
    }
}

/// Page-chunked `stos` loop. `%eax` holds the stored value, so scratch is
/// restricted to `%ebx`/`%edx`/`%esi` (all saved).
fn emit_stos_loop(em: &mut Emitter, w: Width, rep: Rep) {
    let k = log2_bytes(w);
    let single = matches!(rep, Rep::None);
    let top = em.fresh("stos_top");
    let done = em.fresh("stos_done");
    let m1 = em.fresh("stos_m1");
    let m2 = em.fresh("stos_m2");

    for r in [Reg::Ebx, Reg::Edx, Reg::Esi] {
        em.emit(Insn::Push {
            src: Operand::Reg(r),
        });
    }
    if single {
        em.emit(Insn::Push {
            src: Operand::Reg(Reg::Ecx),
        });
        em.emit(mov(Reg::Ecx, Operand::Imm(1)));
    }
    em.label_here(top.clone());
    em.emit(Insn::Cmp {
        w: Width::Long,
        src: Operand::Imm(0),
        dst: Operand::Reg(Reg::Ecx),
    });
    em.emit(Insn::Jcc {
        cond: Cond::E,
        target: Target::Label(done.clone()),
    });
    // ebx = elements to end of edi's page.
    em.emit(mov(Reg::Ebx, Operand::Reg(Reg::Edi)));
    em.emit(alu_ri(AluOp::Or, Reg::Ebx, 0xfff));
    em.emit(Insn::Un {
        op: UnOp::Inc,
        w: Width::Long,
        dst: Operand::Reg(Reg::Ebx),
    });
    em.emit(alu_rr(AluOp::Sub, Reg::Ebx, Reg::Edi));
    if k > 0 {
        em.emit(Insn::Shift {
            op: ShiftOp::Shr,
            dst: Operand::Reg(Reg::Ebx),
            amount: Operand::Imm(k as i64),
        });
    }
    // esi = max(1, min(ecx, ebx)) — chunk size.
    em.emit(mov(Reg::Esi, Operand::Reg(Reg::Ecx)));
    em.emit(Insn::Cmp {
        w: Width::Long,
        src: Operand::Reg(Reg::Ebx),
        dst: Operand::Reg(Reg::Esi),
    });
    em.emit(Insn::Jcc {
        cond: Cond::Be,
        target: Target::Label(m1.clone()),
    });
    em.emit(mov(Reg::Esi, Operand::Reg(Reg::Ebx)));
    em.label_here(m1);
    em.emit(Insn::Cmp {
        w: Width::Long,
        src: Operand::Imm(0),
        dst: Operand::Reg(Reg::Esi),
    });
    em.emit(Insn::Jcc {
        cond: Cond::Ne,
        target: Target::Label(m2.clone()),
    });
    em.emit(mov(Reg::Esi, Operand::Imm(1)));
    em.label_here(m2);
    em.emit(Insn::Push {
        src: Operand::Reg(Reg::Edi),
    });
    em.emit(Insn::Push {
        src: Operand::Reg(Reg::Ecx),
    });
    emit_fastpath(em, AddrExpr::Reg(Reg::Edi), Reg::Ebx, Reg::Edx, Reg::Edi);
    em.emit(mov(Reg::Ecx, Operand::Reg(Reg::Esi)));
    em.emit(Insn::Str {
        op: StrOp::Stos,
        w,
        rep: Rep::Rep,
    });
    em.emit(Insn::Pop {
        dst: Operand::Reg(Reg::Ecx),
    });
    em.emit(Insn::Pop {
        dst: Operand::Reg(Reg::Edi),
    });
    em.emit(mov(Reg::Ebx, Operand::Reg(Reg::Esi)));
    if k > 0 {
        em.emit(Insn::Shift {
            op: ShiftOp::Shl,
            dst: Operand::Reg(Reg::Ebx),
            amount: Operand::Imm(k as i64),
        });
    }
    em.emit(alu_rr(AluOp::Add, Reg::Edi, Reg::Ebx));
    em.emit(alu_rr(AluOp::Sub, Reg::Ecx, Reg::Esi));
    em.emit(Insn::Jmp {
        target: Target::Label(top),
    });
    em.label_here(done);
    if single {
        em.emit(Insn::Pop {
            dst: Operand::Reg(Reg::Ecx),
        });
    }
    for r in [Reg::Esi, Reg::Edx, Reg::Ebx] {
        em.emit(Insn::Pop {
            dst: Operand::Reg(r),
        });
    }
}

/// Per-element loop for `lods`/`cmps`/`scas`: translate, run one element
/// on the translated pointers, restore and advance the originals with
/// flag-preserving `lea`, then apply the repeat-prefix exit conditions.
fn emit_element_loop(em: &mut Emitter, op: StrOp, w: Width, rep: Rep) {
    let step = w.bytes() as i64;
    let single = matches!(rep, Rep::None);
    let top = em.fresh("str_top");
    let done = em.fresh("str_done");

    // %eax is data for lods/scas; scratch must avoid it.
    for r in [Reg::Ebx, Reg::Edx] {
        em.emit(Insn::Push {
            src: Operand::Reg(r),
        });
    }
    em.label_here(top.clone());
    if !single {
        em.emit(Insn::Cmp {
            w: Width::Long,
            src: Operand::Imm(0),
            dst: Operand::Reg(Reg::Ecx),
        });
        em.emit(Insn::Jcc {
            cond: Cond::E,
            target: Target::Label(done.clone()),
        });
    }
    let uses_si = op.reads_si();
    let uses_di = op.uses_di();
    if uses_si {
        em.emit(Insn::Push {
            src: Operand::Reg(Reg::Esi),
        });
    }
    if uses_di {
        em.emit(Insn::Push {
            src: Operand::Reg(Reg::Edi),
        });
    }
    if uses_si {
        emit_fastpath(em, AddrExpr::Reg(Reg::Esi), Reg::Ebx, Reg::Edx, Reg::Esi);
    }
    if uses_di {
        emit_fastpath(em, AddrExpr::Reg(Reg::Edi), Reg::Ebx, Reg::Edx, Reg::Edi);
    }
    em.emit(Insn::Str {
        op,
        w,
        rep: Rep::None,
    });
    if uses_di {
        em.emit(Insn::Pop {
            dst: Operand::Reg(Reg::Edi),
        });
    }
    if uses_si {
        em.emit(Insn::Pop {
            dst: Operand::Reg(Reg::Esi),
        });
    }
    // Advance with flag-preserving lea.
    if uses_si {
        em.emit(Insn::Lea {
            dst: Reg::Esi,
            mem: MemRef::base_disp(Reg::Esi, step),
        });
    }
    if uses_di {
        em.emit(Insn::Lea {
            dst: Reg::Edi,
            mem: MemRef::base_disp(Reg::Edi, step),
        });
    }
    if !single {
        // Exit on the comparison flags *before* they are clobbered.
        match rep {
            Rep::Repe => em.emit(Insn::Jcc {
                cond: Cond::Ne,
                target: Target::Label(done.clone()),
            }),
            Rep::Repne => em.emit(Insn::Jcc {
                cond: Cond::E,
                target: Target::Label(done.clone()),
            }),
            _ => {}
        }
        em.emit(Insn::Un {
            op: UnOp::Dec,
            w: Width::Long,
            dst: Operand::Reg(Reg::Ecx),
        });
        em.emit(Insn::Jmp {
            target: Target::Label(top),
        });
    }
    em.label_here(done);
    for r in [Reg::Edx, Reg::Ebx] {
        em.emit(Insn::Pop {
            dst: Operand::Reg(r),
        });
    }
}
