//! Register liveness analysis over module text.
//!
//! The paper's rewriter needs scratch registers for the SVM fast path and
//! "avoid[s] the cost of spilling registers most of the time by doing a
//! register liveness analysis to determine the set of free registers
//! available at each instruction" (§4.1, footnote 3). This module computes
//! the classic backward may-live dataflow over the whole instruction
//! stream, using labels for branch-target edges.

use std::collections::HashMap;
use twin_isa::{Insn, Module, Reg, RegSet, Target};

/// Per-instruction live-out sets for a module.
#[derive(Clone, Debug)]
pub struct Liveness {
    live_out: Vec<RegSet>,
}

/// Registers assumed live at every exit (`ret`): the return value plus the
/// callee-saved set of the cdecl-like convention.
pub fn exit_live_set() -> RegSet {
    [Reg::Eax, Reg::Ebx, Reg::Esi, Reg::Edi, Reg::Ebp, Reg::Esp]
        .into_iter()
        .collect()
}

impl Liveness {
    /// Computes liveness for `module`.
    pub fn compute(module: &Module) -> Liveness {
        let n = module.text.len();
        let mut live_out = vec![RegSet::EMPTY; n];
        let mut live_in = vec![RegSet::EMPTY; n];
        let exit = exit_live_set();

        // Successor sets per instruction.
        let label_of = |t: &Target| -> Option<usize> {
            match t {
                Target::Label(l) => module.labels.get(l).copied(),
                _ => None,
            }
        };
        let succs: Vec<Vec<usize>> = module
            .text
            .iter()
            .enumerate()
            .map(|(i, insn)| match insn {
                Insn::Jmp { target } => label_of(target).into_iter().collect(),
                Insn::Jcc { target, .. } => {
                    let mut v: Vec<usize> = label_of(target).into_iter().collect();
                    if i + 1 < n {
                        v.push(i + 1);
                    }
                    v
                }
                Insn::Ret | Insn::Hlt | Insn::Int3 | Insn::Ud2 => Vec::new(),
                _ => {
                    if i + 1 < n {
                        vec![i + 1]
                    } else {
                        Vec::new()
                    }
                }
            })
            .collect();
        let exits: Vec<bool> = module
            .text
            .iter()
            .map(|insn| {
                matches!(insn, Insn::Ret)
                    // An indirect jump could go anywhere: treat as exit.
                    || matches!(insn, Insn::Jmp { target } if target.is_indirect())
            })
            .collect();

        // Backward fixpoint; reverse program order converges fast.
        let mut changed = true;
        while changed {
            changed = false;
            for i in (0..n).rev() {
                let mut out = if exits[i] { exit } else { RegSet::EMPTY };
                for &s in &succs[i] {
                    out = out.union(live_in[s]);
                }
                let insn = &module.text[i];
                let inn = insn.uses().union(out.difference(insn.defs()));
                if out != live_out[i] || inn != live_in[i] {
                    live_out[i] = out;
                    live_in[i] = inn;
                    changed = true;
                }
            }
        }

        Liveness { live_out }
    }

    /// A conservative liveness that reports every register live everywhere
    /// (used for the no-liveness ablation: every SVM site must spill).
    pub fn all_live(module: &Module) -> Liveness {
        Liveness {
            live_out: vec![RegSet::ALL; module.text.len()],
        }
    }

    /// Live-out set of instruction `idx`.
    pub fn live_out(&self, idx: usize) -> RegSet {
        self.live_out.get(idx).copied().unwrap_or(RegSet::ALL)
    }

    /// Free-register histogram: for each instruction, how many scratch
    /// candidates are dead. Used for rewrite statistics.
    pub fn free_counts(&self, module: &Module) -> HashMap<usize, usize> {
        module
            .text
            .iter()
            .enumerate()
            .map(|(i, insn)| {
                let blocked = self.live_out(i).union(insn.uses());
                let free = Reg::SCRATCH_CANDIDATES
                    .iter()
                    .filter(|r| !blocked.contains(**r))
                    .count();
                (i, free)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twin_isa::asm::assemble;

    #[test]
    fn dead_after_last_use() {
        let m = assemble(
            "t",
            r#"
            .text
        f:
            movl $1, %ecx
            addl %ecx, %eax
            movl $2, %ecx
            ret
        "#,
        )
        .unwrap();
        let lv = Liveness::compute(&m);
        // After `addl %ecx, %eax`, the first %ecx value is dead (it is
        // redefined before any use).
        assert!(!lv.live_out(1).contains(Reg::Ecx));
        // %eax is live out of the add (it flows to ret).
        assert!(lv.live_out(1).contains(Reg::Eax));
    }

    #[test]
    fn live_through_branch() {
        let m = assemble(
            "t",
            r#"
            .text
        f:
            movl $5, %edx
            cmpl $0, %eax
            je take
            movl $0, %edx
        take:
            movl %edx, %ebx
            ret
        "#,
        )
        .unwrap();
        let lv = Liveness::compute(&m);
        // %edx live across the conditional branch (used at `take`).
        assert!(lv.live_out(2).contains(Reg::Edx));
        assert!(lv.live_out(0).contains(Reg::Edx));
    }

    #[test]
    fn loop_keeps_counter_live() {
        let m = assemble(
            "t",
            r#"
            .text
        f:
            movl $10, %ecx
        top:
            decl %ecx
            cmpl $0, %ecx
            jne top
            ret
        "#,
        )
        .unwrap();
        let lv = Liveness::compute(&m);
        // %ecx live out of the jne (back edge).
        assert!(lv.live_out(3).contains(Reg::Ecx));
    }

    #[test]
    fn call_kills_caller_saved() {
        let m = assemble(
            "t",
            r#"
            .extern g
            .text
        f:
            movl $1, %ecx
            call g
            movl %eax, %ebx
            ret
        "#,
        )
        .unwrap();
        let lv = Liveness::compute(&m);
        // %ecx dead before the call (call clobbers it, no use first).
        assert!(!lv.live_out(0).contains(Reg::Ecx));
        // %eax live out of the call (used after).
        assert!(lv.live_out(1).contains(Reg::Eax));
    }

    #[test]
    fn exit_set_conservative() {
        let m = assemble("t", ".text\nf:\n ret\n").unwrap();
        let lv = Liveness::compute(&m);
        let _ = lv; // live_out of ret itself is unused
        let ex = exit_live_set();
        assert!(ex.contains(Reg::Eax) && ex.contains(Reg::Ebx) && ex.contains(Reg::Esp));
        assert!(!ex.contains(Reg::Ecx) && !ex.contains(Reg::Edx));
    }

    #[test]
    fn all_live_mode() {
        let m = assemble("t", ".text\nf:\n nop\n ret\n").unwrap();
        let lv = Liveness::all_live(&m);
        assert_eq!(lv.live_out(0), RegSet::ALL);
        let free = lv.free_counts(&m);
        assert_eq!(free[&0], 0);
    }
}
