//! # twin-rewriter — deriving the hypervisor driver by binary rewriting
//!
//! This crate is the paper's "assembler-level rewriting tool" (§5.1): it
//! takes the VM driver module produced by `twin_isa::asm::assemble` and
//! derives the hypervisor driver module, in which
//!
//! * every non-stack memory reference runs through the SVM fast path
//!   (Figure 4 of the paper — see [`twin_svm`] for the table layout),
//! * string instructions become page-chunked loops (§5.1.1),
//! * indirect calls are translated through `__svm_call_xlat` (§5.1.2),
//!
//! with scratch registers chosen by [`liveness`] analysis so that most
//! sites avoid spills (§4.1 footnote 3). The same rewritten binary serves
//! as both the VM instance (identity stlb) and the hypervisor instance,
//! which is what makes code addresses differ by a constant offset.
//!
//! ```
//! use twin_isa::asm::assemble;
//! use twin_rewriter::{rewrite, RewriteOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let vm = assemble("drv", ".text\n.globl f\nf:\n movl (%ebx), %eax\n ret\n")?;
//! let out = rewrite(&vm, &RewriteOptions::default())?;
//! assert_eq!(out.stats.mem_sites, 1);
//! // One memory instruction becomes the ten-instruction fast path.
//! assert!(out.stats.insns_after > vm.text.len() + 8);
//! # Ok(())
//! # }
//! ```

pub mod liveness;
mod rewrite;

pub use liveness::Liveness;
pub use rewrite::{
    rewrite, RewriteError, RewriteOptions, RewriteOutput, RewriteStats, STACK_CHECK_SYMBOL,
};

#[cfg(test)]
mod tests {
    use super::*;
    use twin_isa::asm::assemble;
    use twin_isa::Width;
    use twin_isa::{Insn, Module, Reg, INSN_SIZE};
    use twin_machine::{
        run, Cpu, Env, ExecMode, Fault, Machine, SpaceId, StopReason, HYPER_BASE, PAGE_SIZE,
    };
    use twin_svm::{Svm, CALL_XLAT_SYMBOL, SLOW_PATH_SYMBOL, STLB_SYMBOL};

    /// Test environment: dispatches the SVM externs to a real `Svm`.
    struct SvmEnv {
        svm: Svm,
    }

    impl Env for SvmEnv {
        fn extern_call(&mut self, name: &str, m: &mut Machine, cpu: &mut Cpu) -> Result<(), Fault> {
            match name {
                SLOW_PATH_SYMBOL => {
                    let addr = cpu.arg(m, 0)? as u64;
                    self.svm.slow_path(m, addr)?;
                    Ok(())
                }
                CALL_XLAT_SYMBOL => {
                    let t = cpu.arg(m, 0)? as u64;
                    let x = self.svm.translate_call(m, t)?;
                    cpu.set_reg(Reg::Eax, x as u32);
                    Ok(())
                }
                other => Err(Fault::UnknownExtern(other.to_string())),
            }
        }
        fn mmio_read(&mut self, _: &mut Machine, _: u32, a: u64, _: Width) -> Result<u32, Fault> {
            Err(Fault::MmioAccess { addr: a })
        }
        fn mmio_write(
            &mut self,
            _: &mut Machine,
            _: u32,
            a: u64,
            _: Width,
            _: u32,
        ) -> Result<(), Fault> {
            Err(Fault::MmioAccess { addr: a })
        }
    }

    const DOM0_DATA: u64 = 0x2000_0000;
    const DOM0_STACK: u64 = 0x3000_0000;
    const VM_CODE: u64 = 0x0800_0000;
    const HYP_CODE: u64 = 0x0c00_0000;
    const HYP_STACK: u64 = HYPER_BASE + 0x0080_0000;

    /// Loads `module`'s data section into dom0 and returns a resolver for
    /// its symbols given the code base it will be linked at.
    fn load_data(m: &mut Machine, dom0: SpaceId, module: &Module, code_base: u64) {
        let pages = (module.data.bytes.len() as u64).div_ceil(PAGE_SIZE).max(1);
        m.map_fresh(dom0, DOM0_DATA, pages + 4).unwrap();
        for (i, b) in module.data.bytes.iter().enumerate() {
            m.write_virt(
                dom0,
                ExecMode::Guest,
                DOM0_DATA + i as u64,
                Width::Byte,
                *b as u32,
            )
            .unwrap();
        }
        for r in &module.data.relocs {
            let addr = if let Some(off) = module.data.symbols.get(&r.symbol) {
                DOM0_DATA + off
            } else if let Some(idx) = module.labels.get(&r.symbol) {
                code_base + *idx as u64 * INSN_SIZE
            } else {
                panic!("unresolved data reloc {}", r.symbol);
            };
            m.write_u32(dom0, ExecMode::Guest, DOM0_DATA + r.offset, addr as u32)
                .unwrap();
        }
    }

    fn resolver(module: &Module, stlb: u64) -> impl Fn(&str) -> Option<u64> + '_ {
        move |name: &str| {
            if name == STLB_SYMBOL {
                return Some(stlb);
            }
            module.data.symbols.get(name).map(|off| DOM0_DATA + off)
        }
    }

    /// Runs a function of the *original* module natively in dom0.
    fn run_original(src: &str, func: &str, args: &[u32]) -> (Machine, SpaceId, u32) {
        let module = assemble("drv", src).unwrap();
        let mut m = Machine::new();
        let dom0 = m.new_space();
        load_data(&mut m, dom0, &module, VM_CODE);
        m.map_stack(dom0, DOM0_STACK, 8).unwrap();
        let img = m
            .load_image(&module, VM_CODE, |n| {
                module.data.symbols.get(n).map(|off| DOM0_DATA + off)
            })
            .unwrap();
        let entry = m.image(img).export(func).unwrap();
        let mut cpu = Cpu::new(dom0, ExecMode::Guest);
        cpu.set_stack(DOM0_STACK + 8 * PAGE_SIZE);
        cpu.push_call_frame(&mut m, args).unwrap();
        cpu.pc = entry;
        let stop = run(&mut m, &mut cpu, &mut twin_machine::NullEnv, 10_000_000).unwrap();
        assert_eq!(stop, StopReason::Returned);
        (m, dom0, cpu.reg(Reg::Eax))
    }

    /// Runs a function of the *rewritten* module as the hypervisor
    /// instance: executing from a guest (domU) context in hypervisor mode,
    /// reaching dom0 data purely through SVM.
    fn run_rewritten(
        src: &str,
        func: &str,
        args: &[u32],
        opts: &RewriteOptions,
    ) -> (Machine, SpaceId, Result<u32, Fault>, RewriteStats, Svm) {
        let module = assemble("drv", src).unwrap();
        let out = rewrite(&module, opts).unwrap();
        let mut m = Machine::new();
        let dom0 = m.new_space();
        let domu = m.new_space();
        // Data loaded once in dom0; relocated text labels point at the VM
        // instance's copy (paper §5.2) — here VM_CODE.
        load_data(&mut m, dom0, &out.module, VM_CODE);
        m.map_hyper_fresh(HYP_STACK, 8).unwrap();

        let mut svm = Svm::new_hypervisor(&mut m, dom0, 0, (0, u64::MAX)).unwrap();
        let hyp_len = out.module.text.len() as u64 * INSN_SIZE;
        svm.set_code_mapping((HYP_CODE - VM_CODE) as i64, (HYP_CODE, HYP_CODE + hyp_len));
        let stlb = svm.placement().base;

        // Load the same rewritten module twice: VM instance (unused here)
        // and hypervisor instance at constant offset.
        let res = resolver(&out.module, stlb);
        let img = m.load_image(&out.module, HYP_CODE, &res).unwrap();
        let entry = m.image(img).export(func).unwrap();

        let mut cpu = Cpu::new(domu, ExecMode::Hypervisor);
        cpu.set_stack(HYP_STACK + 8 * PAGE_SIZE);
        cpu.push_call_frame(&mut m, args).unwrap();
        cpu.pc = entry;
        let mut env = SvmEnv { svm };
        let r = run(&mut m, &mut cpu, &mut env, 10_000_000);
        let val = r.map(|stop| {
            assert_eq!(stop, StopReason::Returned);
            cpu.reg(Reg::Eax)
        });
        (m, dom0, val, out.stats, env.svm)
    }

    fn dump_data(m: &Machine, space: SpaceId, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| {
                m.read_virt(space, ExecMode::Guest, DOM0_DATA + i as u64, Width::Byte)
                    .unwrap() as u8
            })
            .collect()
    }

    const STRUCT_SRC: &str = r#"
        .text
        .globl bump
    bump:
        pushl %ebp
        movl %esp, %ebp
        movl 8(%ebp), %eax         # n
        movl counter, %ecx
        addl %eax, %ecx
        movl %ecx, counter
        movl stats+4, %edx
        incl %edx
        movl %edx, stats+4
        movl %ecx, %eax
        popl %ebp
        ret
        .data
        .globl counter
    counter:
        .long 100
    stats:
        .long 0
        .long 0
    "#;

    #[test]
    fn rewritten_matches_original_struct_updates() {
        let (m0, s0, r0) = run_original(STRUCT_SRC, "bump", &[5]);
        let opts = RewriteOptions::default();
        let (m1, s1, r1, stats, _svm) = run_rewritten(STRUCT_SRC, "bump", &[5], &opts);
        assert_eq!(r0, 105);
        assert_eq!(r1.unwrap(), 105);
        assert_eq!(dump_data(&m0, s0, 12), dump_data(&m1, s1, 12));
        assert!(stats.mem_sites >= 4, "four data references rewritten");
    }

    #[test]
    fn rewritten_copy_with_rep_movs() {
        let src_init = r#"
            .text
            .globl copy
        copy:
            movl $src_buf, %esi
            movl $dst_buf, %edi
            movl $600, %ecx
            rep movsl
            movl dst_buf+2396, %eax
            ret
            .data
        src_buf:
            .zero 2396
            .long 3735928559       # 0xdeadbeef sentinel at the tail
        dst_buf:
            .zero 2400
        "#;
        let (m0, s0, r0) = run_original(src_init, "copy", &[]);
        let (m1, s1, r1, stats, svm) =
            run_rewritten(src_init, "copy", &[], &RewriteOptions::default());
        assert_eq!(r0, 0xdeadbeef);
        assert_eq!(r1.unwrap(), 0xdeadbeef);
        assert_eq!(dump_data(&m0, s0, 4800), dump_data(&m1, s1, 4800));
        assert_eq!(stats.string_sites, 1);
        // The 2400-byte copy spans pages: at least 2 chunk translations.
        assert!(svm.stats().misses >= 2);
    }

    #[test]
    fn rewritten_indirect_call_through_data_table() {
        let src = r#"
            .text
            .globl dispatch
        dispatch:
            movl ops+4, %eax       # ops->second
            call *%eax
            ret
            .globl handler_a
        handler_a:
            movl $11, %eax
            ret
            .globl handler_b
        handler_b:
            movl $22, %eax
            ret
            .data
        ops:
            .long handler_a
            .long handler_b
        "#;
        let (_m0, _s0, r0) = run_original(src, "dispatch", &[]);
        let (_m1, _s1, r1, stats, svm) =
            run_rewritten(src, "dispatch", &[], &RewriteOptions::default());
        assert_eq!(r0, 22);
        assert_eq!(
            r1.unwrap(),
            22,
            "indirect call through shared fptr table translates via stlb_call"
        );
        assert_eq!(stats.indirect_sites, 1);
        assert!(svm.stats().call_translations >= 1);
    }

    #[test]
    fn wild_write_is_caught_and_hypervisor_survives() {
        let src = r#"
            .text
            .globl evil
        evil:
            movl $0xf0000100, %ebx   # hypervisor text address
            movl $0x41414141, (%ebx)
            movl $1, %eax
            ret
        "#;
        let (_m, _s, r, _stats, svm) = run_rewritten(src, "evil", &[], &RewriteOptions::default());
        let err = r.unwrap_err();
        assert!(
            matches!(err, Fault::EnvFault(ref msg) if msg.contains("svm")),
            "got {err:?}"
        );
        assert_eq!(svm.stats().rejected, 1);
    }

    #[test]
    fn wild_read_of_unmapped_dom0_is_caught() {
        let src = r#"
            .text
            .globl evil
        evil:
            movl $0x66660000, %ebx
            movl (%ebx), %eax
            ret
        "#;
        let (_m, _s, r, _stats, _svm) = run_rewritten(src, "evil", &[], &RewriteOptions::default());
        assert!(r.is_err());
    }

    #[test]
    fn stack_relative_refs_not_rewritten() {
        let src = ".text\n.globl f\nf:\n movl 4(%esp), %eax\n movl -8(%ebp), %ecx\n ret\n";
        let module = assemble("t", src).unwrap();
        let out = rewrite(&module, &RewriteOptions::default()).unwrap();
        assert_eq!(out.stats.mem_sites, 0);
        // Only the int3 barrier is added.
        assert_eq!(out.stats.insns_after, out.stats.insns_before + 1);
    }

    #[test]
    fn expansion_factor_about_ten_per_mem_site() {
        let module = assemble(
            "t",
            ".text\n.globl f\nf:\n movl (%ebx), %eax\n addl $1, %eax\n ret\n",
        )
        .unwrap();
        let out = rewrite(&module, &RewriteOptions::default()).unwrap();
        // 1 mem site: +9 fast path +4 slow path +1 barrier.
        assert_eq!(out.stats.insns_after, 3 + 9 + 4 + 1);
    }

    #[test]
    fn no_liveness_forces_spills() {
        let src = ".text\n.globl f\nf:\n movl (%ebx), %eax\n ret\n";
        let module = assemble("t", src).unwrap();
        let with = rewrite(&module, &RewriteOptions::default()).unwrap();
        let without = rewrite(
            &module,
            &RewriteOptions {
                liveness: false,
                ..RewriteOptions::default()
            },
        )
        .unwrap();
        assert_eq!(with.stats.spill_sites, 0, "liveness finds dead regs");
        assert!(without.stats.spill_sites >= 1, "all-live forces spills");
        assert!(without.stats.insns_after > with.stats.insns_after);
    }

    #[test]
    fn spilled_version_still_correct() {
        let (m0, s0, r0) = run_original(STRUCT_SRC, "bump", &[7]);
        let opts = RewriteOptions {
            liveness: false,
            ..RewriteOptions::default()
        };
        let (m1, s1, r1, stats, _svm) = run_rewritten(STRUCT_SRC, "bump", &[7], &opts);
        assert_eq!(r0, r1.unwrap());
        assert_eq!(dump_data(&m0, s0, 12), dump_data(&m1, s1, 12));
        assert!(stats.spill_sites > 0);
    }

    #[test]
    fn privileged_scan_rejects_hlt() {
        let module = assemble("t", ".text\nf:\n hlt\n ret\n").unwrap();
        let e = rewrite(&module, &RewriteOptions::default()).unwrap_err();
        assert!(matches!(e, RewriteError::Privileged { index: 0, .. }));
        // Disabled scan accepts it.
        let opts = RewriteOptions {
            scan_privileged: false,
            ..RewriteOptions::default()
        };
        assert!(rewrite(&module, &opts).is_ok());
    }

    #[test]
    fn stack_check_extension_inserts_checks() {
        let src = r#"
            .text
            .globl f
        f:
            movl 8(%esp), %eax          # constant offset: static ok
            movl 4(%esp,%ecx,4), %edx   # variable offset: runtime check
            ret
        "#;
        let module = assemble("t", src).unwrap();
        let opts = RewriteOptions {
            stack_checks: true,
            ..RewriteOptions::default()
        };
        let out = rewrite(&module, &opts).unwrap();
        assert_eq!(out.stats.stack_static_verified, 1);
        assert_eq!(out.stats.stack_checks_inserted, 1);
        assert!(out.module.externs.contains(STACK_CHECK_SYMBOL));
    }

    #[test]
    fn labels_remap_to_rewritten_indices() {
        let src = r#"
            .text
            .globl f
        f:
            movl (%ebx), %eax
        mid:
            addl $1, %eax
            ret
        "#;
        let module = assemble("t", src).unwrap();
        let out = rewrite(&module, &RewriteOptions::default()).unwrap();
        let mid = out.module.labels["mid"];
        assert!(matches!(out.module.text[mid], Insn::Alu { .. }));
        assert_eq!(out.module.labels["f"], 0);
    }

    #[test]
    fn push_mem_with_live_registers_preserves_argument() {
        // Regression: `pushl 4(%edi)` at a site where most registers are
        // live forces a spill; the spill restore must not consume the
        // pushed argument. Keep eax/ebx/esi/edi live across the push.
        let src = r#"
            .text
            .globl f
        f:
            pushl %ebp
            movl %esp, %ebp
            pushl %ebx
            pushl %esi
            pushl %edi
            movl $data, %edi
            movl $11, %eax
            movl $22, %ebx
            movl $33, %esi
            pushl 4(%edi)          # pushes 77 through SVM; eax/ebx/esi live
            popl %ecx              # retrieve the pushed value
            addl %ebx, %eax        # 11+22
            addl %esi, %eax        # +33
            addl %ecx, %eax        # +77
            popl %edi
            popl %esi
            popl %ebx
            popl %ebp
            ret
            .data
        data:
            .long 0
            .long 77
        "#;
        let module = assemble("t", src).unwrap();
        let out = rewrite(&module, &RewriteOptions::default()).unwrap();
        assert!(out.stats.spill_sites >= 1, "site must spill");
        let (_m, _s, r, _stats, _svm) = run_rewritten(src, "f", &[], &RewriteOptions::default());
        assert_eq!(r.unwrap(), 11 + 22 + 33 + 77);
    }

    #[test]
    fn stos_and_scas_rewritten_and_correct() {
        let src = r#"
            .text
            .globl fill_find
        fill_find:
            movl $buf, %edi
            movl $0xab, %eax
            movl $64, %ecx
            rep stosb
            movl $buf, %edi
            movl $0, buf+32            # poke a hole
            movl $0, %eax
            movl $64, %ecx
            repne scasb                # find the zero
            movl $buf+65, %eax
            subl %edi, %eax            # distance from end
            ret
            .data
        buf:
            .zero 64
        "#;
        let (_m0, _s0, r0) = run_original(src, "fill_find", &[]);
        let (_m1, _s1, r1, stats, _svm) =
            run_rewritten(src, "fill_find", &[], &RewriteOptions::default());
        assert_eq!(r0, r1.unwrap());
        assert_eq!(stats.string_sites, 2);
    }
}
