//! IOMMU extension (paper §4.5).
//!
//! The paper notes that a buggy or malicious driver "can set up illegal
//! DMA transfers", a hole shared with the stock Xen driver-domain model,
//! and that "a complete solution to this problem requires the use of an
//! IOMMU that can be programmed to restrict the memory regions accessible
//! from the network card". The paper does not build one; this module
//! does, as the substitution-rule extension: a machine-frame allowlist
//! checked when the driver rings a doorbell (transmit **and** receive —
//! posted RX buffers are DMA targets too).
//!
//! The allowlist is range-aware: whole address spaces and pre-pinned
//! zero-copy pools coalesce into `[start, end)` pfn ranges, so the
//! per-descriptor check is a handful of range comparisons instead of a
//! per-frame set lookup that grows with every pinned pool page.

use std::collections::{BTreeMap, BTreeSet};
use twin_machine::{Fault, Machine, SpaceId, PAGE_SIZE};
use twin_nic::{regs, Nic, DESC_SIZE};

/// A simple IOMMU: machine frames the NIC is allowed to DMA to/from.
#[derive(Debug, Default)]
pub struct Iommu {
    /// Coalesced allowed ranges: start pfn → end pfn (exclusive).
    ranges: BTreeMap<u64, u64>,
    /// Stray single frames that did not coalesce into any range.
    allowed: BTreeSet<u64>,
    /// DMA attempts blocked.
    pub blocked: u64,
    /// Pool pages pinned up front ([`Iommu::pin_range`]).
    pub pinned_pages: u64,
}

impl Iommu {
    /// Creates an empty (deny-all) IOMMU.
    pub fn new() -> Iommu {
        Iommu::default()
    }

    /// Allows one machine frame.
    pub fn allow_frame(&mut self, pfn: u64) {
        self.allow_frame_range(pfn, 1);
    }

    /// Allows `count` consecutive machine frames starting at
    /// `start_pfn`, merging with any adjacent or overlapping range so
    /// the table stays small however many pool pages are pinned.
    pub fn allow_frame_range(&mut self, start_pfn: u64, count: u64) {
        if count == 0 {
            return;
        }
        let mut start = start_pfn;
        let mut end = start_pfn + count;
        // Absorb every existing range that touches [start, end).
        let touching: Vec<u64> = self
            .ranges
            .range(..=end)
            .filter(|(_, &e)| e >= start)
            .map(|(&s, _)| s)
            .collect();
        for s in touching {
            let e = self.ranges.remove(&s).expect("key just enumerated");
            start = start.min(s);
            end = end.max(e);
        }
        // Absorb stray singles the widened range now covers or abuts.
        while self.allowed.remove(&(end)) {
            end += 1;
        }
        while start > 0 && self.allowed.remove(&(start - 1)) {
            start -= 1;
        }
        let covered: Vec<u64> = self.allowed.range(start..end).copied().collect();
        for pfn in covered {
            self.allowed.remove(&pfn);
        }
        self.ranges.insert(start, end);
    }

    /// Allows every frame currently mapped by an address space (e.g. all
    /// of dom0's memory, or a guest's), coalescing consecutive pfns into
    /// ranges.
    pub fn allow_space_frames(&mut self, m: &Machine, space: SpaceId) {
        let mut pfns: Vec<u64> = m
            .space(space)
            .iter()
            .filter(|(_va, e)| matches!(e.kind, twin_machine::PageKind::Ram))
            .map(|(_va, e)| e.pfn)
            .collect();
        pfns.sort_unstable();
        pfns.dedup();
        let mut i = 0;
        while i < pfns.len() {
            let start = pfns[i];
            let mut j = i + 1;
            while j < pfns.len() && pfns[j] == pfns[j - 1] + 1 {
                j += 1;
            }
            self.allow_frame_range(start, (j - i) as u64);
            i = j;
        }
    }

    /// Pre-pins a zero-copy pool: allows the range and records the pages
    /// as pinned, so the per-doorbell walk over pool-backed descriptors
    /// degenerates to one cached range comparison.
    pub fn pin_range(&mut self, start_pfn: u64, count: u64) {
        self.allow_frame_range(start_pfn, count);
        self.pinned_pages += count;
    }

    /// Number of coalesced ranges plus stray singles (observability: a
    /// pinned pool should add at most one range, not `pool_frames`
    /// entries).
    pub fn allowlist_entries(&self) -> usize {
        self.ranges.len() + self.allowed.len()
    }

    /// Whether a machine address may be DMA-targeted.
    pub fn frame_allowed(&self, machine_addr: u64) -> bool {
        let pfn = machine_addr / PAGE_SIZE;
        if let Some((_, &end)) = self.ranges.range(..=pfn).next_back() {
            if pfn < end {
                return true;
            }
        }
        self.allowed.contains(&pfn)
    }

    /// Validates every descriptor the driver just posted (TDH..new TDT)
    /// before the doorbell reaches the device.
    ///
    /// # Errors
    ///
    /// [`Fault::EnvFault`] when a descriptor points outside the allowed
    /// frames — the modeled IOMMU blocks the transfer.
    pub fn check_tx_ring(&mut self, m: &Machine, nic: &mut Nic, new_tdt: u32) -> Result<(), Fault> {
        let base = nic.mmio_read(regs::TDBAL) as u64;
        let n = nic.tx_ring_len();
        if n == 0 {
            return Ok(());
        }
        let mut i = nic.mmio_read(regs::TDH);
        while i != new_tdt % n {
            let daddr = base + i as u64 * DESC_SIZE;
            let buf = m.phys.read_u32(daddr) as u64;
            if !self.frame_allowed(buf) {
                self.blocked += 1;
                return Err(Fault::EnvFault(format!(
                    "iommu: DMA from disallowed machine address {buf:#x}"
                )));
            }
            i = (i + 1) % n;
        }
        Ok(())
    }

    /// Validates every receive buffer the driver just posted (old
    /// RDT..new RDT) before the doorbell reaches the device — posted RX
    /// buffers are DMA *write* targets, the more dangerous direction,
    /// and get the same doorbell-time walk transmit has.
    ///
    /// # Errors
    ///
    /// [`Fault::EnvFault`] when a posted buffer points outside the
    /// allowed frames.
    pub fn check_rx_ring(&mut self, m: &Machine, nic: &mut Nic, new_rdt: u32) -> Result<(), Fault> {
        let base = nic.mmio_read(regs::RDBAL) as u64;
        let n = nic.rx_ring_len();
        if n == 0 {
            return Ok(());
        }
        let mut i = nic.mmio_read(regs::RDT);
        while i != new_rdt % n {
            let daddr = base + i as u64 * DESC_SIZE;
            let buf = m.phys.read_u32(daddr) as u64;
            if !self.frame_allowed(buf) {
                self.blocked += 1;
                return Err(Fault::EnvFault(format!(
                    "iommu: RX DMA to disallowed machine address {buf:#x}"
                )));
            }
            i = (i + 1) % n;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twin_net::MacAddr;

    #[test]
    fn allowlist_by_space() {
        let mut m = Machine::new();
        let s = m.new_space();
        m.map_fresh(s, 0x2000_0000, 2).unwrap();
        let mut io = Iommu::new();
        io.allow_space_frames(&m, s);
        let t = m
            .translate(s, twin_machine::ExecMode::Guest, 0x2000_0000, false)
            .unwrap();
        assert!(io.frame_allowed(t.entry.pfn * PAGE_SIZE));
        assert!(!io.frame_allowed(0x3FFF_F000));
    }

    #[test]
    fn ranges_coalesce() {
        let mut io = Iommu::new();
        io.allow_frame_range(100, 10); // [100, 110)
        io.allow_frame_range(110, 10); // adjacent: one range [100, 120)
        io.allow_frame_range(105, 3); // inside: absorbed
        assert_eq!(io.allowlist_entries(), 1);
        io.allow_frame(120); // abuts the range end
        assert_eq!(io.allowlist_entries(), 1, "single absorbed into range");
        io.allow_frame(500); // genuinely disjoint
        assert_eq!(io.allowlist_entries(), 2);
        for pfn in [100u64, 119, 120, 500] {
            assert!(io.frame_allowed(pfn * PAGE_SIZE), "pfn {pfn}");
        }
        for pfn in [99u64, 121, 499, 501] {
            assert!(!io.frame_allowed(pfn * PAGE_SIZE), "pfn {pfn}");
        }
        // Bridging range: singles and both ranges merge into one.
        io.allow_frame_range(121, 379);
        assert_eq!(io.allowlist_entries(), 1);
        assert!(io.frame_allowed(300 * PAGE_SIZE));
    }

    #[test]
    fn pinned_pool_is_one_entry() {
        let mut io = Iommu::new();
        io.pin_range(0x4000, 64);
        assert_eq!(io.pinned_pages, 64);
        assert_eq!(io.allowlist_entries(), 1, "a pool pins as one range");
        assert!(io.frame_allowed(0x4000 * PAGE_SIZE));
        assert!(io.frame_allowed(0x403F * PAGE_SIZE));
        assert!(!io.frame_allowed(0x4040 * PAGE_SIZE));
    }

    #[test]
    fn blocks_rogue_descriptor() {
        let mut m = Machine::new();
        let mut nic = Nic::new(0, MacAddr::for_guest(0));
        // Build a TX ring at machine address 0x1000 with one descriptor
        // pointing at a disallowed frame.
        nic.mmio_write(&mut m.phys, regs::TDBAL, 0x1000);
        nic.mmio_write(&mut m.phys, regs::TDLEN, 4 * DESC_SIZE as u32);
        nic.mmio_write(&mut m.phys, regs::TCTL, 0x2);
        m.phys.write_u32(0x1000, 0x0066_6000); // rogue buffer address
        let mut io = Iommu::new();
        let e = io.check_tx_ring(&m, &mut nic, 1).unwrap_err();
        assert!(matches!(e, Fault::EnvFault(_)));
        assert_eq!(io.blocked, 1);
        // Allow it and the check passes.
        io.allow_frame(0x0066_6000 / PAGE_SIZE);
        assert!(io.check_tx_ring(&m, &mut nic, 1).is_ok());
    }

    #[test]
    fn blocks_rogue_rx_buffer() {
        let mut m = Machine::new();
        let mut nic = Nic::new(0, MacAddr::for_guest(0));
        // An RX ring at 0x2000 with one posted buffer at a disallowed
        // frame (descriptor 0; RDT still at 0 — the walk covers
        // old RDT..new RDT).
        nic.mmio_write(&mut m.phys, regs::RDBAL, 0x2000);
        nic.mmio_write(&mut m.phys, regs::RDLEN, 4 * DESC_SIZE as u32);
        m.phys.write_u32(0x2000, 0x0077_7000);
        let mut io = Iommu::new();
        let e = io.check_rx_ring(&m, &mut nic, 1).unwrap_err();
        assert!(matches!(e, Fault::EnvFault(_)));
        assert_eq!(io.blocked, 1);
        io.allow_frame(0x0077_7000 / PAGE_SIZE);
        assert!(io.check_rx_ring(&m, &mut nic, 1).is_ok());
    }
}
