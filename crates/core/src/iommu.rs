//! IOMMU extension (paper §4.5).
//!
//! The paper notes that a buggy or malicious driver "can set up illegal
//! DMA transfers", a hole shared with the stock Xen driver-domain model,
//! and that "a complete solution to this problem requires the use of an
//! IOMMU that can be programmed to restrict the memory regions accessible
//! from the network card". The paper does not build one; this module
//! does, as the substitution-rule extension: a machine-frame allowlist
//! checked when the driver rings the transmit doorbell.

use std::collections::BTreeSet;
use twin_machine::{Fault, Machine, SpaceId, PAGE_SIZE};
use twin_nic::{regs, Nic, DESC_SIZE};

/// A simple IOMMU: machine frames the NIC is allowed to DMA to/from.
#[derive(Debug, Default)]
pub struct Iommu {
    allowed: BTreeSet<u64>,
    /// DMA attempts blocked.
    pub blocked: u64,
}

impl Iommu {
    /// Creates an empty (deny-all) IOMMU.
    pub fn new() -> Iommu {
        Iommu::default()
    }

    /// Allows one machine frame.
    pub fn allow_frame(&mut self, pfn: u64) {
        self.allowed.insert(pfn);
    }

    /// Allows every frame currently mapped by an address space (e.g. all
    /// of dom0's memory, or a guest's).
    pub fn allow_space_frames(&mut self, m: &Machine, space: SpaceId) {
        for (_va, entry) in m.space(space).iter() {
            if matches!(entry.kind, twin_machine::PageKind::Ram) {
                self.allowed.insert(entry.pfn);
            }
        }
    }

    /// Whether a machine address may be DMA-targeted.
    pub fn frame_allowed(&self, machine_addr: u64) -> bool {
        self.allowed.contains(&(machine_addr / PAGE_SIZE))
    }

    /// Validates every descriptor the driver just posted (TDH..new TDT)
    /// before the doorbell reaches the device.
    ///
    /// # Errors
    ///
    /// [`Fault::EnvFault`] when a descriptor points outside the allowed
    /// frames — the modeled IOMMU blocks the transfer.
    pub fn check_tx_ring(&mut self, m: &Machine, nic: &mut Nic, new_tdt: u32) -> Result<(), Fault> {
        let base = nic.mmio_read(regs::TDBAL) as u64;
        let n = nic.tx_ring_len();
        if n == 0 {
            return Ok(());
        }
        let mut i = nic.mmio_read(regs::TDH);
        while i != new_tdt % n {
            let daddr = base + i as u64 * DESC_SIZE;
            let buf = m.phys.read_u32(daddr) as u64;
            if !self.frame_allowed(buf) {
                self.blocked += 1;
                return Err(Fault::EnvFault(format!(
                    "iommu: DMA from disallowed machine address {buf:#x}"
                )));
            }
            i = (i + 1) % n;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twin_net::MacAddr;

    #[test]
    fn allowlist_by_space() {
        let mut m = Machine::new();
        let s = m.new_space();
        m.map_fresh(s, 0x2000_0000, 2).unwrap();
        let mut io = Iommu::new();
        io.allow_space_frames(&m, s);
        let t = m
            .translate(s, twin_machine::ExecMode::Guest, 0x2000_0000, false)
            .unwrap();
        assert!(io.frame_allowed(t.entry.pfn * PAGE_SIZE));
        assert!(!io.frame_allowed(0x3FFF_F000));
    }

    #[test]
    fn blocks_rogue_descriptor() {
        let mut m = Machine::new();
        let mut nic = Nic::new(0, MacAddr::for_guest(0));
        // Build a TX ring at machine address 0x1000 with one descriptor
        // pointing at a disallowed frame.
        nic.mmio_write(&mut m.phys, regs::TDBAL, 0x1000);
        nic.mmio_write(&mut m.phys, regs::TDLEN, 4 * DESC_SIZE as u32);
        nic.mmio_write(&mut m.phys, regs::TCTL, 0x2);
        m.phys.write_u32(0x1000, 0x0066_6000); // rogue buffer address
        let mut io = Iommu::new();
        let e = io.check_tx_ring(&m, &mut nic, 1).unwrap_err();
        assert!(matches!(e, Fault::EnvFault(_)));
        assert_eq!(io.blocked, 1);
        // Allow it and the check passes.
        io.allow_frame(0x0066_6000 / PAGE_SIZE);
        assert!(io.check_tx_ring(&m, &mut nic, 1).is_ok());
    }
}
