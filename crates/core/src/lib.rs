//! # twindrivers — semi-automatic derivation of fast and safe hypervisor
//! network drivers from guest OS drivers
//!
//! A full reproduction of *TwinDrivers* (Menon, Schubert, Zwaenepoel —
//! ASPLOS 2009) on a simulated substrate. The paper's pipeline is
//! faithfully implemented end to end:
//!
//! 1. the e1000 driver, written in an x86-32-like assembly
//!    ([`twin_kernel::e1000`]), is **rewritten** so that every heap
//!    reference goes through Software Virtual Memory ([`twin_rewriter`],
//!    [`twin_svm`]);
//! 2. the VM instance of the rewritten driver is loaded into dom0 with an
//!    identity stlb and initialises the (simulated) NIC;
//! 3. the hypervisor instance is loaded into the hypervisor, its data
//!    references resolved to dom0 addresses, with the ten fast-path
//!    support routines implemented natively in the hypervisor and
//!    everything else forwarded to dom0 by upcalls ([`twin_xen`]);
//! 4. guests transmit and receive through a paravirtual driver that
//!    invokes the hypervisor driver directly — no domain switches.
//!
//! [`System`] assembles the four measured configurations (native Linux,
//! Xen dom0, baseline Xen guest, TwinDrivers guest) and [`measure`]
//! converts per-packet cycle breakdowns into the paper's figures.
//!
//! ```no_run
//! use twindrivers::{Config, System};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sys = System::build(Config::TwinDrivers)?;
//! let tx = sys.measure_tx(100)?;
//! println!("{}", tx.row("domU-twin"));
//! let t = twindrivers::measure::throughput(tx.total(), 5);
//! println!("transmit: {:.0} Mb/s at {:.0}% CPU", t.mbps, t.cpu_util * 100.0);
//! # Ok(())
//! # }
//! ```

pub mod iommu;
pub mod measure;
pub mod system;

pub use iommu::Iommu;
pub use measure::{throughput, Breakdown, Throughput, CPU_HZ, TESTBED_NICS};
pub use system::{peer_mac, Config, System, SystemError, SystemOptions, World};

// Re-export the substrate crates so downstream users (workloads, benches,
// examples) need only one dependency.
pub use twin_isa as isa;
pub use twin_kernel as kernel;
pub use twin_machine as machine;
pub use twin_net as net;
pub use twin_nic as nic;
pub use twin_rewriter as rewriter;
pub use twin_svm as svm;
pub use twin_xen as xen;

#[cfg(test)]
mod tests {
    use super::*;
    use twin_machine::CostDomain;

    #[test]
    fn native_linux_transmits_and_receives() {
        let mut sys = System::build(Config::NativeLinux).unwrap();
        for _ in 0..20 {
            sys.transmit_one().unwrap();
        }
        assert_eq!(sys.take_wire_frames().len(), 20);
        for _ in 0..20 {
            sys.receive_one().unwrap();
        }
        assert_eq!(sys.delivered_rx(), 20);
    }

    #[test]
    fn twin_guest_transmits_through_hypervisor_driver() {
        let mut sys = System::build(Config::TwinDrivers).unwrap();
        for _ in 0..20 {
            sys.transmit_one().unwrap();
        }
        let frames = sys.take_wire_frames();
        assert_eq!(frames.len(), 20);
        // Full-size frames reassembled from header + guest fragment.
        assert_eq!(frames[0].len(), 1514);
        // No domain switches on the transmit path.
        assert_eq!(sys.machine.meter.event("domain_switch"), 0);
        assert!(sys.machine.meter.insns() > 0);
    }

    #[test]
    fn twin_guest_receives_via_demux() {
        let mut sys = System::build(Config::TwinDrivers).unwrap();
        for _ in 0..20 {
            sys.receive_one().unwrap();
        }
        assert_eq!(sys.delivered_rx(), 20);
        assert_eq!(sys.machine.meter.event("domain_switch"), 0);
        assert_eq!(sys.machine.meter.event("demux_miss"), 0);
    }

    #[test]
    fn baseline_guest_pays_domain_switches() {
        let mut sys = System::build(Config::XenGuest).unwrap();
        for _ in 0..10 {
            sys.transmit_one().unwrap();
        }
        assert_eq!(sys.take_wire_frames().len(), 10);
        assert!(sys.machine.meter.event("domain_switch") >= 20, "two per packet");
        assert!(sys.machine.meter.event("grant_map") >= 10);
        for _ in 0..10 {
            sys.receive_one().unwrap();
        }
        assert_eq!(sys.delivered_rx(), 10);
    }

    #[test]
    fn tx_cost_ordering_matches_paper() {
        // Figure 7: domU > domU-twin > dom0 > Linux.
        let mut costs = Vec::new();
        for c in [
            Config::XenGuest,
            Config::TwinDrivers,
            Config::XenDom0,
            Config::NativeLinux,
        ] {
            let mut sys = System::build(c).unwrap();
            let b = sys.measure_tx(50).unwrap();
            costs.push((c, b.total()));
        }
        for w in costs.windows(2) {
            assert!(
                w[0].1 > w[1].1,
                "{} ({:.0}) should cost more than {} ({:.0})",
                w[0].0,
                w[0].1,
                w[1].0,
                w[1].1
            );
        }
        // TwinDrivers improves on the baseline guest by at least 1.7x
        // (paper: 2.4x in CPU-scaled units).
        let baseline = costs[0].1;
        let twin = costs[1].1;
        assert!(
            baseline / twin > 1.7,
            "improvement only {:.2}x",
            baseline / twin
        );
    }

    #[test]
    fn rx_cost_ordering_matches_paper() {
        // Figure 8: domU > domU-twin > dom0 > Linux.
        let mut costs = Vec::new();
        for c in [
            Config::XenGuest,
            Config::TwinDrivers,
            Config::XenDom0,
            Config::NativeLinux,
        ] {
            let mut sys = System::build(c).unwrap();
            let b = sys.measure_rx(50).unwrap();
            costs.push((c, b.total()));
        }
        for w in costs.windows(2) {
            assert!(
                w[0].1 > w[1].1,
                "{} ({:.0}) should cost more than {} ({:.0})",
                w[0].0,
                w[0].1,
                w[1].0,
                w[1].1
            );
        }
        let baseline = costs[0].1;
        let twin = costs[1].1;
        assert!(
            baseline / twin > 1.5,
            "improvement only {:.2}x",
            baseline / twin
        );
    }

    #[test]
    fn rewritten_driver_slowdown_in_paper_range() {
        // Paper §6.2: "the rewritten driver runs slower by a factor of
        // roughly 2 to 3".
        let mut native = System::build(Config::NativeLinux).unwrap();
        let nb = native.measure_tx(50).unwrap();
        let mut twin = System::build(Config::TwinDrivers).unwrap();
        let tb = twin.measure_tx(50).unwrap();
        let ratio = tb.cycles(CostDomain::Driver) / nb.cycles(CostDomain::Driver);
        assert!(
            (1.6..4.0).contains(&ratio),
            "rewritten/native driver ratio {ratio:.2}"
        );
    }

    #[test]
    fn upcalls_forced_on_fastpath_cost_throughput() {
        let mut base = System::build(Config::TwinDrivers).unwrap();
        let b0 = base.measure_tx(30).unwrap();
        let opts = SystemOptions {
            upcall_count: 9,
            ..SystemOptions::default()
        };
        let mut slow = System::build_with(Config::TwinDrivers, &opts).unwrap();
        let b9 = slow.measure_tx(30).unwrap();
        assert!(
            b9.total() > b0.total() * 3.0,
            "9 upcalls {:.0} vs 0 upcalls {:.0}",
            b9.total(),
            b0.total()
        );
        assert!(slow.machine.meter.event("upcall") > 0);
    }

    #[test]
    fn iommu_extension_builds_and_allows_legitimate_traffic() {
        let opts = SystemOptions {
            iommu: true,
            ..SystemOptions::default()
        };
        let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
        for _ in 0..5 {
            sys.transmit_one().unwrap();
        }
        assert_eq!(sys.take_wire_frames().len(), 5);
        assert_eq!(sys.world.iommu.as_ref().unwrap().blocked, 0);
    }

    #[test]
    fn throughput_numbers_in_paper_band() {
        // Figure 5 shape: Linux saturates the links below CPU saturation;
        // twin beats the baseline guest by at least 2x.
        let mut linux = System::build(Config::NativeLinux).unwrap();
        let lt = throughput(linux.measure_tx(50).unwrap().total(), 5);
        let mut twin = System::build(Config::TwinDrivers).unwrap();
        let tt = throughput(twin.measure_tx(50).unwrap().total(), 5);
        let mut guest = System::build(Config::XenGuest).unwrap();
        let gt = throughput(guest.measure_tx(50).unwrap().total(), 5);
        assert_eq!(lt.mbps, 5000.0, "native saturates the links");
        assert!(lt.cpu_util < 1.0, "…below CPU saturation");
        assert!(tt.mbps > 2.0 * gt.mbps, "twin ≥ 2x baseline guest");
        assert!(tt.mbps / lt.mbps > 0.5, "twin within reach of native");
    }
}
