//! # twindrivers — semi-automatic derivation of fast and safe hypervisor
//! network drivers from guest OS drivers
//!
//! A full reproduction of *TwinDrivers* (Menon, Schubert, Zwaenepoel —
//! ASPLOS 2009) on a simulated substrate. The paper's pipeline is
//! faithfully implemented end to end:
//!
//! 1. the e1000 driver, written in an x86-32-like assembly
//!    ([`twin_kernel::e1000`]), is **rewritten** so that every heap
//!    reference goes through Software Virtual Memory ([`twin_rewriter`],
//!    [`twin_svm`]);
//! 2. the VM instance of the rewritten driver is loaded into dom0 with an
//!    identity stlb and initialises the (simulated) NIC;
//! 3. the hypervisor instance is loaded into the hypervisor, its data
//!    references resolved to dom0 addresses, with the ten fast-path
//!    support routines implemented natively in the hypervisor and
//!    everything else forwarded to dom0 by upcalls ([`twin_xen`]);
//! 4. guests transmit and receive through a paravirtual driver that
//!    invokes the hypervisor driver directly — no domain switches.
//!
//! [`System`] assembles the four measured configurations (native Linux,
//! Xen dom0, baseline Xen guest, TwinDrivers guest) and [`measure`]
//! converts per-packet cycle breakdowns into the paper's figures.
//!
//! ## The burst datapath
//!
//! On top of the paper's per-packet pipeline, the datapath is
//! **burst-based end to end** — the single biggest throughput lever in
//! modern driver work (cf. Emmerich et al. on high-level-language
//! drivers, Kedia & Bansal on software device passthrough):
//!
//! * the NIC model fills a whole burst of RX descriptors and asserts
//!   **one coalesced interrupt** ([`twin_nic::Nic::deliver_batch`]), and
//!   one `TDT` doorbell drains the whole TX tail in one pass;
//! * the e1000 driver exposes burst entry points — `e1000_xmit_batch`
//!   (one lock, N descriptor fills, one doorbell) and
//!   `e1000_poll_rx_batch` (NAPI-style reap, no `ICR` read) — next to
//!   the classic per-packet `e1000_xmit_frame`/`e1000_intr`;
//! * the hypervisor coalesces duplicate driver softirqs and invokes the
//!   hypervisor driver instance **once per burst**, so a burst costs one
//!   hypercall, one driver invocation and one doorbell;
//! * [`System::transmit_burst`] / [`System::receive_burst`] run the
//!   whole path burst-wise; the receive demux fans one batch out to
//!   every destination guest's RX queue in a single sweep with one
//!   virtual interrupt per guest, and stack costs amortise GRO/TSO-style
//!   (first packet of a burst pays the full wakeup cost, the rest a
//!   marginal cost).
//!
//! [`System::transmit_one`] / [`System::receive_one`] are pure
//! burst-of-1 wrappers, so all per-packet figures reproduce unchanged;
//! [`System::measure_tx_burst`] / [`System::measure_rx_burst`] sweep
//! burst sizes and report amortized cycles/packet plus
//! interrupts/doorbells per packet (`cargo bench -p twin-bench --bench
//! batch_sweep`). At burst 32 the TwinDrivers configuration moves the
//! same traffic with ≥ 1.3× fewer amortized cycles/packet and 32× fewer
//! interrupts/packet than burst 1.
//!
//! ## The multi-NIC sharded datapath
//!
//! On top of the burst pipeline, [`System`] drives up to
//! [`kernel::e1000::MAX_NICS`] NICs from **one** driver image, like the
//! paper's five-NIC testbed (§6.1): each device gets its own MMIO
//! window, descriptor rings, IRQ line, softirq source and adapter slot
//! (the driver's `*_dev` entry points take a device id and select the
//! slot before the shared body runs), and a [`ShardPolicy`] maps traffic
//! to devices — `Static` pinning, `RoundRobin` burst rotation, or
//! `FlowHash` flow pinning (which preserves per-flow order by
//! construction). Each NIC's RX batch demuxes into per-guest queues and
//! one fan-out flush delivers them with one virtual interrupt per guest
//! per fairness-quantum round, so a flooding guest cannot starve
//! another guest's virq latency.
//!
//! [`measure::measure_aggregate_throughput`] converts the amortized
//! cycles/packet of a sharded run into aggregate RX+TX throughput over
//! the system's links (`cargo bench -p twin-bench --bench shard_sweep`
//! sweeps 1→8 NICs at burst 1/8/32 and emits `BENCH_shard.json`).
//! Aggregate throughput scales ≥ 3× from one to four NICs at burst 32;
//! a single NIC is the degenerate case and reproduces PR 1's burst
//! figures cycle for cycle.
//!
//! ## The deferred-upcall engine
//!
//! Support routines the hypervisor does not implement natively upcall
//! to dom0 at two domain switches per call (paper §4.2, Figure 10).
//! With [`SystemOptions::upcall_mode`] set to
//! [`UpcallMode::Deferred`], eligible calls are instead queued in the
//! ring at [`twin_xen::UPCALL_RING_BASE`] — per the
//! [`twin_kernel::TABLE1_DEFER_POLICY`] class: fire-and-forget
//! side effects defer outright, inline-consumed results suspend the
//! burst via a continuation — and dom0 drains the whole ring in **one**
//! switch-pair at the end of each burst pass (or on queue-full /
//! high-water kick), posting completions back through the event
//! channel. At burst 32 with four or more routines forced onto the
//! upcall path this sustains ≥ 3× the synchronous throughput, while
//! [`UpcallMode::Sync`] (the default) stays cycle-exact with the PR 2
//! path; [`measure::upcall_latency`] reports p50/p99
//! cycles-to-completion so the latency cost of deferral stays visible
//! (`cargo bench -p twin-bench --bench upcall_sweep` emits
//! `BENCH_upcall.json`).
//!
//! ## The virtual-time engine
//!
//! Every time-driven feature keys on [`twin_machine::VirtualClock`]:
//! a monotonic cycle counter advanced by the cost accounting itself
//! (charged work *is* elapsed time; [`System::run_idle`] advances it
//! without charging, firing due virtual timers event-driven along the
//! way). Kernel timers live in a cycles-keyed
//! [`twin_kernel::TimerWheel`] (O(due) expiry,
//! [`twin_kernel::CYCLES_PER_JIFFY`] conversion); each NIC models the
//! real e1000 `ITR` register — IRQ *delivery* is suppressed until the
//! throttling window opens while the cause stays latched
//! ([`SystemOptions::itr`], [`System::set_itr`]; delay, never drop);
//! and [`SystemOptions::upcall_flush_deadline_cycles`] arms a
//! deadline-driven upcall flush so an idle system's deferred upcalls
//! complete in bounded time (serviced flush-before-IRQ against the
//! moderation timer). [`System::measure_rx_moderated`] paces arrivals
//! on the virtual clock and reports the latency/throughput trade-off
//! (`cargo bench -p twin-bench --bench moderation_sweep` emits
//! `BENCH_itr.json`): at burst 32 on 4 NICs, moderation cuts
//! interrupts/packet ≥ 4× within 2× of the unmoderated p99, and
//! ITR 0 with no deadline stays cycle-exact with the PR 3 path.
//!
//! ```no_run
//! use twindrivers::{Config, System};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sys = System::build(Config::TwinDrivers)?;
//! let tx = sys.measure_tx(100)?;
//! println!("{}", tx.row("domU-twin"));
//! let t = twindrivers::measure::throughput(tx.total(), 5);
//! println!("transmit: {:.0} Mb/s at {:.0}% CPU", t.mbps, t.cpu_util * 100.0);
//! // Amortized cost at burst 32 (one doorbell/interrupt per burst):
//! let b = sys.measure_tx_burst(32, 256)?;
//! println!("{}", b.row());
//! # Ok(())
//! # }
//! ```

pub mod iommu;
pub mod measure;
pub mod system;

pub use iommu::Iommu;
pub use measure::{
    balanced_flow_set, fault_injected_source, measure_aggregate_throughput, measure_fault_recovery,
    measure_rx_affinity, measure_rx_autotuned, measure_rx_livelock, percentile, throughput,
    upcall_latency, AffinityPoint, AggregateThroughput, AutotunedRx, Breakdown, BurstMeasurement,
    FaultClass, FaultPoint, LatencyStats, LivelockPoint, LoadProfile, ModeratedRx, OverloadProfile,
    RxPhase, SampleReservoir, Throughput, CPU_HZ, TESTBED_NICS, VICTIM_FRAMES_PER_BURST,
};
pub use system::{
    peer_mac, Config, RecoveryReport, SchedOptions, ShardPolicy, System, SystemError,
    SystemOptions, UpcallMode, World, MAX_BURST,
};

// Re-export the substrate crates so downstream users (workloads, benches,
// examples) need only one dependency.
pub use twin_isa as isa;
pub use twin_kernel as kernel;
pub use twin_machine as machine;
pub use twin_net as net;
pub use twin_nic as nic;
pub use twin_rewriter as rewriter;
pub use twin_sched as sched;
pub use twin_svm as svm;
pub use twin_trace as trace;
pub use twin_xen as xen;

#[cfg(test)]
mod tests {
    use super::*;
    use twin_machine::CostDomain;

    #[test]
    fn native_linux_transmits_and_receives() {
        let mut sys = System::build(Config::NativeLinux).unwrap();
        for _ in 0..20 {
            sys.transmit_one().unwrap();
        }
        assert_eq!(sys.take_wire_frames().len(), 20);
        for _ in 0..20 {
            sys.receive_one().unwrap();
        }
        assert_eq!(sys.delivered_rx(), 20);
    }

    #[test]
    fn twin_guest_transmits_through_hypervisor_driver() {
        let mut sys = System::build(Config::TwinDrivers).unwrap();
        for _ in 0..20 {
            sys.transmit_one().unwrap();
        }
        let frames = sys.take_wire_frames();
        assert_eq!(frames.len(), 20);
        // Full-size frames reassembled from header + guest fragment.
        assert_eq!(frames[0].len(), 1514);
        // No domain switches on the transmit path.
        assert_eq!(sys.machine.meter.event("domain_switch"), 0);
        assert!(sys.machine.meter.insns() > 0);
    }

    #[test]
    fn twin_guest_receives_via_demux() {
        let mut sys = System::build(Config::TwinDrivers).unwrap();
        for _ in 0..20 {
            sys.receive_one().unwrap();
        }
        assert_eq!(sys.delivered_rx(), 20);
        assert_eq!(sys.machine.meter.event("domain_switch"), 0);
        assert_eq!(sys.machine.meter.event("demux_miss"), 0);
    }

    #[test]
    fn baseline_guest_pays_domain_switches() {
        let mut sys = System::build(Config::XenGuest).unwrap();
        for _ in 0..10 {
            sys.transmit_one().unwrap();
        }
        assert_eq!(sys.take_wire_frames().len(), 10);
        assert!(
            sys.machine.meter.event("domain_switch") >= 20,
            "two per packet"
        );
        assert!(sys.machine.meter.event("grant_map") >= 10);
        for _ in 0..10 {
            sys.receive_one().unwrap();
        }
        assert_eq!(sys.delivered_rx(), 10);
    }

    #[test]
    fn tx_cost_ordering_matches_paper() {
        // Figure 7: domU > domU-twin > dom0 > Linux.
        let mut costs = Vec::new();
        for c in [
            Config::XenGuest,
            Config::TwinDrivers,
            Config::XenDom0,
            Config::NativeLinux,
        ] {
            let mut sys = System::build(c).unwrap();
            let b = sys.measure_tx(50).unwrap();
            costs.push((c, b.total()));
        }
        for w in costs.windows(2) {
            assert!(
                w[0].1 > w[1].1,
                "{} ({:.0}) should cost more than {} ({:.0})",
                w[0].0,
                w[0].1,
                w[1].0,
                w[1].1
            );
        }
        // TwinDrivers improves on the baseline guest by at least 1.7x
        // (paper: 2.4x in CPU-scaled units).
        let baseline = costs[0].1;
        let twin = costs[1].1;
        assert!(
            baseline / twin > 1.7,
            "improvement only {:.2}x",
            baseline / twin
        );
    }

    #[test]
    fn rx_cost_ordering_matches_paper() {
        // Figure 8: domU > domU-twin > dom0 > Linux.
        let mut costs = Vec::new();
        for c in [
            Config::XenGuest,
            Config::TwinDrivers,
            Config::XenDom0,
            Config::NativeLinux,
        ] {
            let mut sys = System::build(c).unwrap();
            let b = sys.measure_rx(50).unwrap();
            costs.push((c, b.total()));
        }
        for w in costs.windows(2) {
            assert!(
                w[0].1 > w[1].1,
                "{} ({:.0}) should cost more than {} ({:.0})",
                w[0].0,
                w[0].1,
                w[1].0,
                w[1].1
            );
        }
        let baseline = costs[0].1;
        let twin = costs[1].1;
        assert!(
            baseline / twin > 1.5,
            "improvement only {:.2}x",
            baseline / twin
        );
    }

    #[test]
    fn rewritten_driver_slowdown_in_paper_range() {
        // Paper §6.2: "the rewritten driver runs slower by a factor of
        // roughly 2 to 3".
        let mut native = System::build(Config::NativeLinux).unwrap();
        let nb = native.measure_tx(50).unwrap();
        let mut twin = System::build(Config::TwinDrivers).unwrap();
        let tb = twin.measure_tx(50).unwrap();
        let ratio = tb.cycles(CostDomain::Driver) / nb.cycles(CostDomain::Driver);
        assert!(
            (1.6..4.0).contains(&ratio),
            "rewritten/native driver ratio {ratio:.2}"
        );
    }

    #[test]
    fn upcalls_forced_on_fastpath_cost_throughput() {
        let mut base = System::build(Config::TwinDrivers).unwrap();
        let b0 = base.measure_tx(30).unwrap();
        let opts = SystemOptions {
            upcall_count: 9,
            ..SystemOptions::default()
        };
        let mut slow = System::build_with(Config::TwinDrivers, &opts).unwrap();
        let b9 = slow.measure_tx(30).unwrap();
        assert!(
            b9.total() > b0.total() * 3.0,
            "9 upcalls {:.0} vs 0 upcalls {:.0}",
            b9.total(),
            b0.total()
        );
        assert!(slow.machine.meter.event("upcall") > 0);
    }

    #[test]
    fn iommu_extension_builds_and_allows_legitimate_traffic() {
        let opts = SystemOptions {
            iommu: true,
            ..SystemOptions::default()
        };
        let mut sys = System::build_with(Config::TwinDrivers, &opts).unwrap();
        for _ in 0..5 {
            sys.transmit_one().unwrap();
        }
        assert_eq!(sys.take_wire_frames().len(), 5);
        assert_eq!(sys.world.iommu.as_ref().unwrap().blocked, 0);
    }

    #[test]
    fn burst32_amortizes_cycles_and_interrupts() {
        // The tentpole acceptance numbers: on the TwinDrivers config a
        // burst-32 run must show ≥ 1.3× fewer amortized cycles/packet and
        // ≥ 8× fewer interrupts/packet than burst-1.
        let mut one = System::build(Config::TwinDrivers).unwrap();
        let rx1 = one.measure_rx_burst(1, 96).unwrap();
        let mut many = System::build(Config::TwinDrivers).unwrap();
        let rx32 = many.measure_rx_burst(32, 96).unwrap();
        let cycle_ratio = rx1.breakdown.total() / rx32.breakdown.total();
        assert!(
            cycle_ratio >= 1.3,
            "rx cycles/packet only {cycle_ratio:.2}x better at burst 32"
        );
        let irq_ratio = rx1.irqs_per_packet / rx32.irqs_per_packet.max(1e-9);
        assert!(
            irq_ratio >= 8.0,
            "rx interrupts/packet only {irq_ratio:.1}x better at burst 32"
        );

        let mut t1 = System::build(Config::TwinDrivers).unwrap();
        let tx1 = t1.measure_tx_burst(1, 96).unwrap();
        let mut t32 = System::build(Config::TwinDrivers).unwrap();
        let tx32 = t32.measure_tx_burst(32, 96).unwrap();
        let tx_cycle_ratio = tx1.breakdown.total() / tx32.breakdown.total();
        assert!(
            tx_cycle_ratio >= 1.3,
            "tx cycles/packet only {tx_cycle_ratio:.2}x better at burst 32"
        );
        let db_ratio = tx1.doorbells_per_packet / tx32.doorbells_per_packet.max(1e-9);
        assert!(
            db_ratio >= 8.0,
            "tx doorbells/packet only {db_ratio:.1}x better at burst 32"
        );
    }

    #[test]
    fn bursts_deliver_identical_frames_in_order() {
        // Burst-of-N puts exactly the same frames on the wire, in the
        // same order, as N per-packet transmits.
        let mut a = System::build(Config::TwinDrivers).unwrap();
        for _ in 0..24 {
            a.transmit_one().unwrap();
        }
        let singles = a.take_wire_frames();
        let mut b = System::build(Config::TwinDrivers).unwrap();
        assert_eq!(b.transmit_burst(24).unwrap(), 24);
        let burst = b.take_wire_frames();
        assert_eq!(singles, burst);
    }

    #[test]
    fn polled_rx_matches_interrupt_rx() {
        let mut sys = System::build(Config::TwinDrivers).unwrap();
        // Fill descriptors without running the interrupt path.
        let frames: Vec<_> = (0..10)
            .map(|i| twin_net::Frame {
                dst: twin_net::MacAddr::for_guest(1),
                src: peer_mac(),
                ethertype: twin_net::EtherType::Ipv4,
                payload_len: twin_net::MTU,
                flow: 2,
                seq: i,
            })
            .collect();
        let accepted = sys.world.nics[0].deliver_batch(&mut sys.machine.phys, &frames);
        assert_eq!(accepted, 10);
        let reaped = sys.poll_rx_batch().unwrap();
        assert_eq!(reaped, 10, "polled path reaps the whole burst");
        assert_eq!(sys.delivered_rx(), 10);
        assert_eq!(sys.machine.meter.event("irq"), 0, "no interrupt dispatched");
    }

    #[test]
    fn throughput_numbers_in_paper_band() {
        // Figure 5 shape: Linux saturates the links below CPU saturation;
        // twin beats the baseline guest by at least 2x.
        let mut linux = System::build(Config::NativeLinux).unwrap();
        let lt = throughput(linux.measure_tx(50).unwrap().total(), 5);
        let mut twin = System::build(Config::TwinDrivers).unwrap();
        let tt = throughput(twin.measure_tx(50).unwrap().total(), 5);
        let mut guest = System::build(Config::XenGuest).unwrap();
        let gt = throughput(guest.measure_tx(50).unwrap().total(), 5);
        assert_eq!(lt.mbps, 5000.0, "native saturates the links");
        assert!(lt.cpu_util < 1.0, "…below CPU saturation");
        assert!(tt.mbps > 2.0 * gt.mbps, "twin ≥ 2x baseline guest");
        assert!(tt.mbps / lt.mbps > 0.5, "twin within reach of native");
    }
}
