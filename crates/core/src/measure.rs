//! Measurement primitives: per-packet cycle breakdowns, the
//! cycles-to-throughput conversion used by every figure harness, and the
//! multi-NIC aggregate-throughput sweep.

use crate::system::{System, SystemError};
use std::collections::BTreeMap;
use twin_machine::{CostDomain, CycleMeter};
use twin_net::{wire_bits, EtherType, Frame, MacAddr, MTU};
use twin_xen::{DomId, DomainKind, GrantStats};

/// Modeled CPU frequency — the paper's 3.0 GHz Xeon.
pub const CPU_HZ: f64 = 3.0e9;

/// Number of gigabit NICs in the paper's testbed.
pub const TESTBED_NICS: u32 = 5;

/// Per-packet cycle breakdown in the paper's four categories
/// (Figures 7 and 8).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Breakdown {
    /// Cycles per packet per category.
    pub per_domain: BTreeMap<CostDomain, f64>,
    /// Packets measured.
    pub packets: u64,
    /// Selected event counts (total, not per packet).
    pub events: BTreeMap<&'static str, u64>,
}

impl Breakdown {
    /// Builds a breakdown from meter deltas over `packets` packets.
    pub fn from_meter(meter: &CycleMeter, packets: u64) -> Breakdown {
        let mut per_domain = BTreeMap::new();
        for d in CostDomain::ALL {
            per_domain.insert(d, meter.cycles(d) as f64 / packets.max(1) as f64);
        }
        Breakdown {
            per_domain,
            packets,
            events: meter.events().clone(),
        }
    }

    /// Cycles per packet for one category.
    pub fn cycles(&self, d: CostDomain) -> f64 {
        self.per_domain.get(&d).copied().unwrap_or(0.0)
    }

    /// Total cycles per packet.
    pub fn total(&self) -> f64 {
        self.per_domain.values().sum()
    }

    /// Renders one figure-style row: `label total dom0 domU Xen e1000`.
    pub fn row(&self, label: &str) -> String {
        format!(
            "{label:>10}  total {:>8.0}   dom0 {:>8.0}   domU {:>8.0}   Xen {:>8.0}   e1000 {:>8.0}",
            self.total(),
            self.cycles(CostDomain::Dom0),
            self.cycles(CostDomain::DomU),
            self.cycles(CostDomain::Xen),
            self.cycles(CostDomain::Driver),
        )
    }
}

/// One point of a batch-size sweep: amortized per-packet cost and
/// notification rates at a fixed burst size.
#[derive(Clone, Debug)]
pub struct BurstMeasurement {
    /// Burst size measured.
    pub burst: usize,
    /// Per-packet cycle breakdown, amortized over the burst.
    pub breakdown: Breakdown,
    /// Hardware interrupts dispatched per packet (receive side; 1.0 at
    /// burst 1, ~1/N with N-frame coalescing).
    pub irqs_per_packet: f64,
    /// `TDT` doorbell writes per packet (transmit side).
    pub doorbells_per_packet: f64,
}

impl BurstMeasurement {
    /// One sweep-table row.
    pub fn row(&self) -> String {
        format!(
            "burst {:>4}  cycles/pkt {:>8.0}   irqs/pkt {:>6.3}   doorbells/pkt {:>6.3}",
            self.burst,
            self.breakdown.total(),
            self.irqs_per_packet,
            self.doorbells_per_packet,
        )
    }
}

/// Latency percentiles over a set of cycles-to-completion samples —
/// the groundwork adaptive interrupt moderation needs, and the metric
/// that keeps upcall deferral honest: throughput may rise only while the
/// tail stays bounded.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Number of samples.
    pub samples: usize,
    /// Median cycles-to-completion.
    pub p50: u64,
    /// 99th-percentile cycles-to-completion.
    pub p99: u64,
    /// Worst observed.
    pub max: u64,
}

impl LatencyStats {
    /// Computes nearest-rank percentiles over `samples` (any order).
    /// All-zero on an empty set.
    pub fn from_samples(samples: &[u64]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        LatencyStats {
            samples: sorted.len(),
            p50: percentile(&sorted, 50.0),
            p99: percentile(&sorted, 99.0),
            max: *sorted.last().unwrap(),
        }
    }

    /// One report row.
    pub fn row(&self) -> String {
        format!(
            "upcall latency  p50 {:>8} cyc   p99 {:>8} cyc   max {:>8} cyc   ({} samples)",
            self.p50, self.p99, self.max, self.samples
        )
    }
}

/// Capacity of the receive-latency reservoir held by a `System`: far
/// above any single measurement window's sample count (the sweeps
/// measure hundreds of frames per point), so the committed sweeps and
/// tests see exact percentiles, while an arbitrarily long paced run
/// stays at a fixed memory footprint.
pub const RX_LATENCY_RESERVOIR: usize = 65_536;

/// The deterministic bounded reservoir and nearest-rank percentile now
/// live in `twin_trace` (the metrics registry builds its histogram
/// summaries from the same primitives); re-exported here so every
/// existing consumer keeps its import path.
pub use twin_trace::{percentile, SampleReservoir};

/// Latency percentiles of every upcall completed in the current
/// measurement window of `sys` (empty stats outside TwinDrivers or when
/// no upcalls ran).
pub fn upcall_latency(sys: &System) -> LatencyStats {
    LatencyStats::from_samples(sys.upcall_latency_samples())
}

/// Result of converting a per-packet cost into netperf-style throughput.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Throughput {
    /// Achieved throughput in Mb/s.
    pub mbps: f64,
    /// CPU utilisation in [0, 1] (1.0 = saturated).
    pub cpu_util: f64,
}

/// Converts cycles/packet into aggregate TCP throughput over `nics`
/// gigabit links, netperf style: the CPU processes packets at
/// `CPU_HZ / cpp`; throughput is link-limited or CPU-limited, whichever
/// binds first (this is how the paper's Linux transmit saturates 5 NICs
/// at 76.9% CPU while every Xen configuration is CPU-bound).
pub fn throughput(cpp: f64, nics: u32) -> Throughput {
    let bits = wire_bits(MTU) as f64;
    let link_mbps = nics as f64 * 1000.0;
    let cpu_pps = CPU_HZ / cpp.max(1.0);
    let cpu_mbps = cpu_pps * bits / 1e6;
    if cpu_mbps >= link_mbps {
        Throughput {
            mbps: link_mbps,
            cpu_util: link_mbps / cpu_mbps,
        }
    } else {
        Throughput {
            mbps: cpu_mbps,
            cpu_util: 1.0,
        }
    }
}

/// One point of the multi-NIC shard sweep: amortized per-packet cost and
/// the aggregate throughput it sustains over `nics` gigabit links, both
/// directions.
#[derive(Clone, Debug)]
pub struct AggregateThroughput {
    /// NICs driven concurrently.
    pub nics: u32,
    /// Burst size per driver invocation.
    pub burst: usize,
    /// Amortized transmit cycles/packet at this burst size.
    pub tx_cycles_per_packet: f64,
    /// Amortized receive cycles/packet at this burst size.
    pub rx_cycles_per_packet: f64,
    /// Transmit throughput over the `nics` links.
    pub tx: Throughput,
    /// Receive throughput over the `nics` links.
    pub rx: Throughput,
    /// Grant-table traffic (maps/unmaps/copies, with per-NIC
    /// attribution) over the whole measurement including warm-up —
    /// empty for configurations without a hypervisor.
    pub grants: GrantStats,
    /// Per-guest frames shed at the admission watermark over the
    /// measurement (guest id → drops); empty with overload control off.
    pub early_drops: BTreeMap<u32, u64>,
}

impl AggregateThroughput {
    /// Combined RX+TX throughput in Mb/s (full-duplex aggregate — the
    /// shard sweep's headline scaling figure).
    pub fn aggregate_mbps(&self) -> f64 {
        self.tx.mbps + self.rx.mbps
    }

    /// One sweep-table row.
    pub fn row(&self) -> String {
        format!(
            "nics {:>2}  burst {:>4}  tx {:>6.0} Mb/s ({:>6.0} cyc/pkt)  rx {:>6.0} Mb/s ({:>6.0} cyc/pkt)  aggregate {:>7.0} Mb/s",
            self.nics,
            self.burst,
            self.tx.mbps,
            self.tx_cycles_per_packet,
            self.rx.mbps,
            self.rx_cycles_per_packet,
            self.aggregate_mbps(),
        )
    }
}

/// One point of the interrupt-moderation sweep: amortized receive cost,
/// interrupt rate and arrival-to-delivery latency percentiles at a fixed
/// `ITR` setting under a paced arrival process (see
/// [`System::measure_rx_moderated`]).
#[derive(Clone, Debug)]
pub struct ModeratedRx {
    /// NICs driven concurrently.
    pub nics: u32,
    /// Frames per scheduled arrival burst.
    pub burst: usize,
    /// `ITR` register setting ([`twin_nic::ITR_UNIT_CYCLES`]-cycle
    /// units; 0 = unmoderated).
    pub itr: u32,
    /// Scheduled inter-burst gap in virtual cycles (the offered load).
    pub gap_cycles: u64,
    /// Frames measured.
    pub packets: u64,
    /// Per-packet cycle breakdown (idle time charges nothing, so this is
    /// pure processing cost).
    pub breakdown: Breakdown,
    /// Hardware interrupts dispatched per packet — the side moderation
    /// shrinks.
    pub irqs_per_packet: f64,
    /// Deliveries the ITR window held back (later coalesced into one
    /// interrupt).
    pub moderated_irqs: u64,
    /// Arrival-to-delivery latency percentiles — the side moderation
    /// spends.
    pub latency: LatencyStats,
}

impl ModeratedRx {
    /// Receive throughput implied by the amortized per-packet cost over
    /// this system's links.
    pub fn throughput(&self) -> Throughput {
        throughput(self.breakdown.total(), self.nics)
    }

    /// One sweep-table row.
    pub fn row(&self) -> String {
        format!(
            "nics {:>2}  burst {:>4}  itr {:>6}  cyc/pkt {:>7.0}  irqs/pkt {:>6.3}  p50 {:>9}  p99 {:>9}",
            self.nics,
            self.burst,
            self.itr,
            self.breakdown.total(),
            self.irqs_per_packet,
            self.latency.p50,
            self.latency.p99,
        )
    }
}

/// A multi-phase offered-load profile for the auto-tune harness: each
/// phase paces arrival bursts at a different inter-burst gap, so the
/// run crosses the latency/bulk regimes mid-measurement and a
/// closed-loop tuner has something to track that no static `ITR`
/// setting can follow.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LoadProfile {
    /// Two phases: light (latency regime), then heavy (the
    /// receive-livelock regime the moderation sweep paces).
    Step,
    /// Three phases stepping light → medium → heavy.
    Ramp,
}

impl LoadProfile {
    /// The JSON/label name.
    pub fn label(self) -> &'static str {
        match self {
            LoadProfile::Step => "step",
            LoadProfile::Ramp => "ramp",
        }
    }

    /// Per-phase inter-burst gaps, derived from the heavy (final) gap so
    /// the moderation and autotune benches share one pacing knob: the
    /// light phase offers 6× sparser arrivals (underloaded — windows
    /// mostly idle), the ramp's middle phase 3× (busy but unsaturated).
    pub fn gaps(self, heavy_gap_cycles: u64) -> Vec<u64> {
        match self {
            LoadProfile::Step => vec![heavy_gap_cycles * 6, heavy_gap_cycles],
            LoadProfile::Ramp => vec![heavy_gap_cycles * 6, heavy_gap_cycles * 3, heavy_gap_cycles],
        }
    }
}

impl std::fmt::Display for LoadProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One measured phase of a multi-phase paced receive run: steady-state
/// cost, interrupt rate and arrival-to-delivery latency at that phase's
/// offered load (each phase leads with an unmeasured settle span so a
/// retuning system is compared in steady state, like every other
/// harness's warm-up).
#[derive(Clone, Debug)]
pub struct RxPhase {
    /// Scheduled inter-burst gap during this phase.
    pub gap_cycles: u64,
    /// Frames measured (after the settle span).
    pub packets: u64,
    /// Per-packet cycle breakdown over the measured span.
    pub breakdown: Breakdown,
    /// Hardware interrupts dispatched per measured packet.
    pub irqs_per_packet: f64,
    /// Arrival-to-delivery latency percentiles over the measured span.
    pub latency: LatencyStats,
    /// `ITR` retunes the auto-tuner performed in the measured span
    /// (0 for static runs).
    pub retunes: u64,
    /// Widest per-device `ITR` at phase end — where the tuner (or the
    /// static setting) sits when the phase closes.
    pub itr_end: u32,
}

impl RxPhase {
    /// One phase-table row.
    pub fn row(&self) -> String {
        format!(
            "gap {:>8}  cyc/pkt {:>7.0}  irqs/pkt {:>6.4}  p50 {:>9}  p99 {:>9}  itr@end {:>5}  retunes {:>3}",
            self.gap_cycles,
            self.breakdown.total(),
            self.irqs_per_packet,
            self.latency.p50,
            self.latency.p99,
            self.itr_end,
            self.retunes,
        )
    }
}

/// Result of running one system through a shifting-load profile: the
/// per-phase points the autotune sweep compares against the per-phase
/// best static `ITR`.
#[derive(Clone, Debug)]
pub struct AutotunedRx {
    /// NICs driven concurrently.
    pub nics: u32,
    /// Frames per scheduled arrival burst.
    pub burst: usize,
    /// The load profile run.
    pub profile: LoadProfile,
    /// Whether the closed-loop tuner was active.
    pub autotune: bool,
    /// The fixed `ITR` programmed at build time (static runs; the
    /// tuner's starting point otherwise).
    pub static_itr: u32,
    /// One entry per profile phase, in offered order.
    pub phases: Vec<RxPhase>,
}

/// Runs `sys` through `profile` — paced arrival bursts whose gap shifts
/// at each phase boundary — and reports per-phase steady-state points
/// (see [`RxPhase`]). Works identically for a static-`ITR` system and
/// an auto-tuning one ([`crate::SystemOptions::itr_autotune`]), which is
/// what makes the sweep's comparison apples-to-apples: same warm-up,
/// same pacing, same settle spans, same drift accounting.
///
/// `heavy_gap_cycles` is the final (heaviest) phase's gap — the same
/// knob the moderation sweep paces with; earlier phases derive from it
/// (see [`LoadProfile::gaps`]). Each phase injects `settle_packets`
/// unmeasured frames at the new load first (the tuner's adaptation
/// transient), then measures `packets_per_phase` frames.
///
/// # Errors
///
/// Propagates per-burst errors.
pub fn measure_rx_autotuned(
    sys: &mut System,
    burst: usize,
    profile: LoadProfile,
    heavy_gap_cycles: u64,
    settle_packets: u64,
    packets_per_phase: u64,
) -> Result<AutotunedRx, SystemError> {
    let static_itr = sys
        .world
        .nics
        .iter()
        .map(twin_nic::Nic::itr)
        .max()
        .unwrap_or(0);
    // Per-NIC steady state needs a full ring cycle of buffer swaps —
    // the same warm-up as the moderated harness.
    for _ in 0..160 * sys.nic_count() {
        sys.receive_one()?;
    }
    sys.drain_moderated()?;
    let mut phases = Vec::new();
    for gap in profile.gaps(heavy_gap_cycles) {
        phases.push(sys.paced_rx_phase(burst, settle_packets, packets_per_phase, gap)?);
    }
    Ok(AutotunedRx {
        nics: sys.nic_count() as u32,
        burst,
        profile,
        autotune: sys.itr_autotune(),
        static_itr,
        phases,
    })
}

/// An adversarial offered-load shape for the receive-livelock harness.
/// Every profile keeps the victim guests' rate fixed and sub-capacity
/// while the flood scales with the offered multiple — the fairness
/// question is always "does the flood's overload leak into bystanders",
/// and the profiles vary *how* the flood stresses the path.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum OverloadProfile {
    /// The whole flood is one heavy flow aimed at one guest — the
    /// classic receive-livelock shape (Mogul & Ramakrishnan).
    FloodOneGuest,
    /// The flood churns through a large flow-id space, defeating any
    /// flow-keyed affinity state (the `rx_flow_dev` map, shard hashing)
    /// while offering the same aggregate load.
    FlowChurn,
    /// One elephant flow carries most of the flood while a swarm of
    /// short mice flows carries the rest — bimodal, like a busy server
    /// behind a DoS.
    ElephantMice,
}

impl OverloadProfile {
    /// The JSON/label name.
    pub fn label(self) -> &'static str {
        match self {
            OverloadProfile::FloodOneGuest => "flood_one_guest",
            OverloadProfile::FlowChurn => "flow_churn",
            OverloadProfile::ElephantMice => "elephant_mice",
        }
    }
}

impl std::fmt::Display for OverloadProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Fixed frames per victim guest per arrival burst — deliberately
/// independent of the offered multiple: victims stay well-behaved while
/// the flood scales past capacity.
pub const VICTIM_FRAMES_PER_BURST: usize = 4;

/// One point of the receive-livelock sweep: goodput, drop accounting
/// and victim-guest tail latency at a fixed offered-load multiple of
/// the calibrated knee.
#[derive(Clone, Debug)]
pub struct LivelockPoint {
    /// NICs driven concurrently.
    pub nics: u32,
    /// Frames per arrival burst at the 1.0× knee.
    pub burst: usize,
    /// Offered-load shape.
    pub profile: OverloadProfile,
    /// Offered load as tenths of the knee rate (integer identity: 10 =
    /// 1.0×, 100 = 10×).
    pub offered_x10: u32,
    /// Frames offered on the wire over the measured span.
    pub frames_offered: u64,
    /// Frames fully delivered into guests (the goodput numerator).
    pub frames_delivered: u64,
    /// Delivered throughput over the arrival span, in Mb/s.
    pub goodput_mbps: f64,
    /// Charged cycles per *delivered* packet — under livelock this
    /// balloons as work is sunk into frames that die at a queue cap.
    pub rx_cycles_per_packet: f64,
    /// Frames shed at the admission watermark (before any ring work).
    pub early_drops: u64,
    /// Frames dropped at a demux queue cap (after the reap — waste).
    pub queue_drops: u64,
    /// Frames dropped by the NICs for want of a free descriptor.
    pub ring_drops: u64,
    /// Hardware interrupts dispatched over the span.
    pub irqs: u64,
    /// Budgeted NAPI poll passes over the span.
    pub polls: u64,
    /// Frames delivered to the victim (non-flooded) guests.
    pub victim_delivered: u64,
    /// Worst p99 arrival-to-delivery latency across victim guests.
    pub victim_p99: u64,
}

impl LivelockPoint {
    /// Offered load as a multiple of the knee (1.0 = knee).
    pub fn offered(&self) -> f64 {
        f64::from(self.offered_x10) / 10.0
    }

    /// One sweep-table row.
    pub fn row(&self) -> String {
        format!(
            "{:>15}  offered {:>5.1}x  goodput {:>7.0} Mb/s  cyc/pkt {:>8.0}  early {:>6}  queue {:>6}  ring {:>6}  irqs {:>6}  polls {:>5}  victim p99 {:>9}",
            self.profile.label(),
            self.offered(),
            self.goodput_mbps,
            self.rx_cycles_per_packet,
            self.early_drops,
            self.queue_drops,
            self.ring_drops,
            self.irqs,
            self.polls,
            self.victim_p99,
        )
    }
}

/// Builds one arrival burst for `profile` at `offered_x10` tenths of
/// the knee: each victim guest gets its fixed trickle, the flood guest
/// gets the rest, and `seq` advances once per frame (unique `(flow,
/// seq)` keys for latency tracking).
fn overload_burst(
    profile: OverloadProfile,
    offered_x10: u32,
    burst_base: usize,
    flood: (DomId, MacAddr),
    victims: &[(DomId, MacAddr)],
    seq: &mut u64,
) -> Vec<Frame> {
    let total = (burst_base * offered_x10 as usize / 10).max(1);
    let victim_total = victims.len() * VICTIM_FRAMES_PER_BURST;
    let flood_frames = total.saturating_sub(victim_total);
    let mut out = Vec::with_capacity(victim_total + flood_frames);
    let mut push = |dst: MacAddr, flow: u32, seq: &mut u64| {
        out.push(Frame {
            dst,
            src: MacAddr([0x02, 0, 0, 0, 0, 0xee]),
            ethertype: EtherType::Ipv4,
            payload_len: MTU,
            flow,
            seq: *seq,
        });
        *seq += 1;
    };
    // Victims first in the burst: under overload the tail of a burst is
    // likelier to find full rings, so this ordering is *generous* to
    // the uncontrolled config — it still collapses.
    for (gid, mac) in victims {
        for _ in 0..VICTIM_FRAMES_PER_BURST {
            push(*mac, 900 + gid.0, seq);
        }
    }
    for i in 0..flood_frames {
        let flow = match profile {
            OverloadProfile::FloodOneGuest => 800,
            OverloadProfile::FlowChurn => 1000 + (*seq % 1024) as u32,
            OverloadProfile::ElephantMice => {
                if i % 5 == 4 {
                    1000 + (*seq % 64) as u32 // every 5th frame: a mouse
                } else {
                    800 // the elephant
                }
            }
        };
        push(flood.1, flow, seq);
    }
    out
}

/// Runs one **open-loop** receive-livelock point: `bursts` arrival
/// bursts land at a fixed `gap_cycles` schedule (calibrated so 1.0×
/// saturates the consumer — the knee), each one
/// `offered_x10`/10 × the knee's `burst_base` frames shaped by
/// `profile`. Arrivals charge only what hardware forces at that instant
/// (ISR reap, or nothing for a masked poll-mode NIC); the consumer —
/// budgeted NAPI polls or standalone DRR flush rounds — runs only in
/// the gaps, exactly the regime where per-arrival interrupt work
/// starves delivery and goodput collapses (Mogul & Ramakrishnan; paper
/// §4.4's softirq discipline is the exposure).
///
/// The flood aims at the primary guest; every other guest is a
/// fixed-rate victim whose tail latency the overload controls must
/// bound. The span includes the post-schedule drain, so a backlogged
/// system cannot launder its backlog into goodput.
///
/// # Errors
///
/// Propagates faults; arrival overruns are data, not errors.
pub fn measure_rx_livelock(
    sys: &mut System,
    profile: OverloadProfile,
    offered_x10: u32,
    burst_base: usize,
    bursts: u64,
    gap_cycles: u64,
) -> Result<LivelockPoint, SystemError> {
    let flood_gid = sys.guest.expect("livelock harness needs a guest");
    let (flood, victims) = {
        let xen = sys.world.xen.as_ref().expect("livelock harness needs xen");
        let mut flood = None;
        let mut victims = Vec::new();
        for d in &xen.domains {
            if d.kind != DomainKind::Guest {
                continue;
            }
            if d.id == flood_gid {
                flood = Some((d.id, d.mac));
            } else {
                victims.push((d.id, d.mac));
            }
        }
        (flood.expect("primary guest present"), victims)
    };
    sys.track_guest_latency();
    // Closed-loop warm-up: fill every ring's buffer-swap cycle.
    for _ in 0..160 * sys.nic_count() {
        sys.receive_one()?;
    }
    sys.drain_moderated()?;
    let delivered_before: u64 = std::iter::once(flood.0)
        .chain(victims.iter().map(|v| v.0))
        .map(|g| sys.delivered_rx_for(g) as u64)
        .sum();
    let victim_delivered_before: u64 = victims
        .iter()
        .map(|v| sys.delivered_rx_for(v.0) as u64)
        .sum();
    let early_before = sys.rx_early_drops();
    let queue_before = sys.rx_queue_drops();
    let ring_before = sys.rx_ring_drops();
    sys.reset_measurement();
    let mut seq = 1_000_000u64; // clear of every closed-loop generator
    let t0 = sys.now_cycles();
    let mut offered = 0u64;
    for i in 0..bursts {
        let arrival = t0 + i * gap_cycles;
        // The consumer gets exactly the gap before this arrival.
        sys.rx_open_loop_service(arrival)?;
        let frames = overload_burst(profile, offered_x10, burst_base, flood, &victims, &mut seq);
        offered += frames.len() as u64;
        sys.rx_open_loop_arrival(&frames, arrival)?;
    }
    // The last burst gets exactly one gap of service, then the window
    // closes. Backlog still queued (or stranded in a masked ring) at
    // window close is NOT goodput — an open-loop source never stops, so
    // frames the consumer couldn't deliver inside the schedule are lost
    // throughput, not work in flight. Counting a tail drain would let a
    // livelocked system launder its backlog into goodput.
    let end_sched = t0 + bursts * gap_cycles;
    sys.rx_open_loop_service(end_sched)?;
    let delivered: u64 = std::iter::once(flood.0)
        .chain(victims.iter().map(|v| v.0))
        .map(|g| sys.delivered_rx_for(g) as u64)
        .sum::<u64>()
        - delivered_before;
    let victim_delivered: u64 = victims
        .iter()
        .map(|v| sys.delivered_rx_for(v.0) as u64)
        .sum::<u64>()
        - victim_delivered_before;
    let span = bursts * gap_cycles;
    let goodput_mbps = delivered as f64 * wire_bits(MTU) as f64 / (span as f64 / CPU_HZ) / 1e6;
    let breakdown = Breakdown::from_meter(&sys.machine.meter, delivered.max(1));
    let victim_p99 = victims
        .iter()
        .map(|v| LatencyStats::from_samples(sys.guest_rx_latency(v.0)).p99)
        .max()
        .unwrap_or(0);
    // Flight-recorder export: a no-op unless TWIN_TRACE_OUT names a
    // directory (and empty unless the system was built with tracing).
    sys.export_trace(&format!("livelock_{}_{offered_x10}", profile.label()));
    Ok(LivelockPoint {
        nics: sys.nic_count() as u32,
        burst: burst_base,
        profile,
        offered_x10,
        frames_offered: offered,
        frames_delivered: delivered,
        goodput_mbps,
        rx_cycles_per_packet: breakdown.total(),
        early_drops: sys.rx_early_drops() - early_before,
        queue_drops: sys.rx_queue_drops() - queue_before,
        ring_drops: sys.rx_ring_drops() - ring_before,
        irqs: breakdown.events.get("irq").copied().unwrap_or(0),
        polls: breakdown.events.get("napi_poll").copied().unwrap_or(0),
        victim_delivered,
        victim_p99,
    })
}

/// One point of the scheduler-affinity sweep: cycles/packet, cold
/// deliveries, migration accounting and per-guest tail latency for one
/// shard policy at one run/sleep duty cycle.
#[derive(Clone, Debug)]
pub struct AffinityPoint {
    /// NICs driven concurrently.
    pub nics: u32,
    /// Frames per arrival burst.
    pub burst: usize,
    /// Shard-policy label (`flowhash` / `affinity`).
    pub policy: &'static str,
    /// Run duty cycle in percent (100 = vCPUs never sleep).
    pub duty_pct: u32,
    /// Frames offered on the wire over the measured span.
    pub frames_offered: u64,
    /// Frames fully delivered into guests (equal to offered on a
    /// drop-free run — the acceptance requires it).
    pub frames_delivered: u64,
    /// Charged cycles per delivered packet, the headline metric the
    /// affinity win shows up in.
    pub rx_cycles_per_packet: f64,
    /// Deliveries that paid the cold sTLB/cache refill (softirq CPU ≠
    /// guest vCPU).
    pub cold_deliveries: u64,
    /// Affinity flow placements over the run (0 under FlowHash).
    pub placements: u64,
    /// Affinity flow migrations following the scheduler (0 with pinned
    /// vCPUs).
    pub migrations: u64,
    /// vCPU wakeups observed during the measured span.
    pub wakes: u64,
    /// Admission-watermark drops (must be 0 — the harness runs uncapped).
    pub early_drops: u64,
    /// Demux queue-cap drops (must be 0).
    pub queue_drops: u64,
    /// RX-descriptor drops (must be 0).
    pub ring_drops: u64,
    /// Per-(guest, flow) sequence inversions in the delivered logs
    /// (must be 0 — order is preserved across sleep deferral and
    /// migration alike).
    pub reorders: u64,
    /// Worst p99 arrival-to-delivery latency across the scheduled
    /// guests, in cycles (includes sleep deferral by construction).
    pub victim_p99: u64,
}

impl AffinityPoint {
    /// One sweep-table row.
    pub fn row(&self) -> String {
        format!(
            "{:>9}  duty {:>3}%  cyc/pkt {:>8.0}  cold {:>6}  placements {:>4}  migrations {:>4}  wakes {:>5}  drops {:>2}/{:>2}/{:>2}  reorders {:>2}  p99 {:>9}",
            self.policy,
            self.duty_pct,
            self.rx_cycles_per_packet,
            self.cold_deliveries,
            self.placements,
            self.migrations,
            self.wakes,
            self.early_drops,
            self.queue_drops,
            self.ring_drops,
            self.reorders,
            self.victim_p99,
        )
    }
}

/// Counts per-(guest, flow) sequence inversions in every guest's
/// delivered log — the order-preservation check the affinity
/// acceptance gates on.
fn rx_reorders(sys: &System) -> u64 {
    let Some(xen) = sys.world.xen.as_ref() else {
        return 0;
    };
    let mut reorders = 0u64;
    for d in &xen.domains {
        let mut last: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        for f in &d.rx_delivered {
            if let Some(prev) = last.insert(f.flow, f.seq) {
                if f.seq <= prev {
                    reorders += 1;
                }
            }
        }
    }
    reorders
}

/// Runs one **open-loop** scheduler-affinity point: `bursts` arrival
/// bursts land on a fixed `gap_cycles` schedule, each spread evenly
/// (round-robin) across the `traffic` guests on their fixed flows;
/// the consumer — per-arrival ISR reaps plus DRR flush rounds between
/// arrivals — follows the vCPU schedule registered from `vcpus`
/// (guest, cpu, run cycles, sleep cycles; an empty slice leaves every
/// guest always-running). After the schedule closes, the harness
/// drains the deferred backlog to the last frame — both policies
/// deliver identical frame sets on a drop-free run, so cycles per
/// delivered packet is an apples-to-apples comparison and sleep
/// deferral shows up in latency, not in lost goodput.
///
/// The system must be built with [`SystemOptions::sched`] when `vcpus`
/// is non-empty. `policy` and `duty_pct` are reporting labels.
///
/// # Errors
///
/// Propagates faults; [`SystemError::Build`] if the post-schedule
/// drain fails to converge (a wedged consumer must fail loudly).
#[allow(clippy::too_many_arguments)] // one sweep point = one call site; the grid is the signature
pub fn measure_rx_affinity(
    sys: &mut System,
    traffic: &[(DomId, MacAddr, u32)],
    vcpus: &[(DomId, u32, u64, u64)],
    policy: &'static str,
    duty_pct: u32,
    burst: usize,
    bursts: u64,
    gap_cycles: u64,
) -> Result<AffinityPoint, SystemError> {
    // Closed-loop warm-up before any vCPU exists: every ring completes
    // its buffer-swap cycle with all guests running, identically for
    // every policy/duty combination.
    for _ in 0..160 * sys.nic_count() {
        sys.receive_one()?;
    }
    sys.drain_moderated()?;
    for &(gid, cpu, run, sleep) in vcpus {
        sys.sched_add_vcpu(gid, cpu, run, sleep)?;
    }
    sys.track_guest_latency();
    let placements_before = sys.metrics().counter("sched.placements");
    let migrations_before = sys.metrics().counter("sched.migrations");
    let delivered_before: u64 = traffic
        .iter()
        .map(|t| sys.delivered_rx_for(t.0) as u64)
        .sum();
    let early_before = sys.rx_early_drops();
    let queue_before = sys.rx_queue_drops();
    let ring_before = sys.rx_ring_drops();
    sys.reset_measurement();
    let mut seq = 1_000_000u64; // clear of every closed-loop generator
    let t0 = sys.now_cycles();
    let mut offered = 0u64;
    for i in 0..bursts {
        let arrival = t0 + i * gap_cycles;
        sys.rx_open_loop_service(arrival)?;
        let frames: Vec<Frame> = (0..burst)
            .map(|j| {
                let (_, mac, flow) = traffic[j % traffic.len()];
                let f = Frame {
                    dst: mac,
                    src: MacAddr([0x02, 0, 0, 0, 0, 0xee]),
                    ethertype: EtherType::Ipv4,
                    payload_len: MTU,
                    flow,
                    seq,
                };
                seq += 1;
                f
            })
            .collect();
        offered += frames.len() as u64;
        sys.rx_open_loop_arrival(&frames, arrival)?;
    }
    sys.rx_open_loop_service(t0 + bursts * gap_cycles)?;
    // Drain the deferred backlog: sleeping guests' frames deliver at
    // their wakeup edges. Unlike the livelock sweep this tail counts —
    // the question is delivery cost, not overload goodput, and both
    // policies deliver the same frames.
    let mut guard = 0u32;
    while sys
        .world
        .xen
        .as_ref()
        .is_some_and(|x| x.domains.iter().any(|d| !d.rx_queue.is_empty()))
    {
        let now = sys.now_cycles();
        sys.rx_open_loop_service(now + 100_000)?;
        guard += 1;
        if guard > 10_000 {
            return Err(SystemError::Build("affinity drain did not converge".into()));
        }
    }
    let delivered: u64 = traffic
        .iter()
        .map(|t| sys.delivered_rx_for(t.0) as u64)
        .sum::<u64>()
        - delivered_before;
    let breakdown = Breakdown::from_meter(&sys.machine.meter, delivered.max(1));
    let victim_p99 = traffic
        .iter()
        .map(|t| LatencyStats::from_samples(sys.guest_rx_latency(t.0)).p99)
        .max()
        .unwrap_or(0);
    let ms = sys.metrics();
    sys.export_trace(&format!("affinity_{policy}_{duty_pct}"));
    Ok(AffinityPoint {
        nics: sys.nic_count() as u32,
        burst,
        policy,
        duty_pct,
        frames_offered: offered,
        frames_delivered: delivered,
        rx_cycles_per_packet: breakdown.total(),
        cold_deliveries: breakdown.events.get("cold_delivery").copied().unwrap_or(0),
        placements: ms.counter("sched.placements") - placements_before,
        migrations: ms.counter("sched.migrations") - migrations_before,
        wakes: breakdown.events.get("vcpu_run").copied().unwrap_or(0),
        early_drops: sys.rx_early_drops() - early_before,
        queue_drops: sys.rx_queue_drops() - queue_before,
        ring_drops: sys.rx_ring_drops() - ring_before,
        reorders: rx_reorders(sys),
        victim_p99,
    })
}

/// Measures aggregate RX+TX throughput of a (possibly multi-NIC) system
/// at a fixed burst size: `packets` packets move in each direction in
/// bursts of `burst`, sharded across the NICs by the system's policy;
/// the amortized cycles/packet convert to throughput via [`throughput`]
/// (link-limited or CPU-limited, whichever binds first — exactly how the
/// paper's five-NIC testbed aggregates).
///
/// The link ceiling per direction counts only NICs that **actually
/// carried traffic** during that direction's run: a 4-NIC system under
/// `ShardPolicy::Static(0)` is capped at one gigabit link, not four —
/// idle hardware adds no capacity.
///
/// A single NIC at burst 1 is the degenerate case and reproduces the
/// per-packet figures.
///
/// # Errors
///
/// Propagates measurement errors from the underlying burst sweeps.
pub fn measure_aggregate_throughput(
    sys: &mut System,
    burst: usize,
    packets: u64,
) -> Result<AggregateThroughput, SystemError> {
    let nics = sys.nic_count() as u32;
    // Everything this report derives — active links, grant traffic,
    // early drops — now comes from [`System::metrics`] registry deltas
    // rather than reaching into each stats struct. All counters are
    // integers, so the deltas are bit-exact with the old per-struct
    // bookkeeping.
    let links = |d: &twin_trace::MetricSet, dir: &str| -> u32 {
        (0..nics)
            .filter(|i| d.counter(&format!("nic{i}.{dir}_packets")) > 0)
            .count() as u32
    };

    let m0 = sys.metrics();
    let tx = sys.measure_tx_burst(burst, packets)?;
    let m1 = sys.metrics();
    let rx = sys.measure_rx_burst(burst, packets)?;
    let m2 = sys.metrics();

    let tx_links = links(&m1.delta_since(&m0), "tx");
    let rx_links = links(&m2.delta_since(&m1), "rx");

    let span = m2.delta_since(&m0);
    let mut grants = GrantStats {
        maps: span.counter("grant.maps"),
        unmaps: span.counter("grant.unmaps"),
        copies: span.counter("grant.copies"),
        ..GrantStats::default()
    };
    for (key, n) in span.counters_with_prefix("grant.dev") {
        let Some((dev, field)) = key["grant.dev".len()..].split_once('.') else {
            continue;
        };
        let Ok(dev) = dev.parse::<u32>() else {
            continue;
        };
        let slot = grants.per_device.entry(dev).or_default();
        match field {
            "maps" => slot.maps = n,
            "unmaps" => slot.unmaps = n,
            "copies" => slot.copies = n,
            _ => {}
        }
    }
    grants
        .per_device
        .retain(|_, d| d.maps + d.unmaps + d.copies > 0);

    let early_drops: BTreeMap<u32, u64> = span
        .counters_with_prefix("guest")
        .filter_map(|(key, n)| {
            let (g, field) = key["guest".len()..].split_once('.')?;
            (field == "early_drops" && n > 0).then(|| (g.parse::<u32>().ok(), n))
        })
        .filter_map(|(g, n)| Some((g?, n)))
        .collect();

    let tx_cpp = tx.breakdown.total();
    let rx_cpp = rx.breakdown.total();
    Ok(AggregateThroughput {
        nics,
        burst,
        tx_cycles_per_packet: tx_cpp,
        rx_cycles_per_packet: rx_cpp,
        tx: throughput(tx_cpp, tx_links.max(1)),
        rx: throughput(rx_cpp, rx_links.max(1)),
        grants,
        early_drops,
    })
}

/// A driver-fault class the fault sweep injects — the three failure
/// modes the paper's §4.5 safety machinery must contain: an SVM-rejected
/// illegal store, corrupted driver state that faults on the next
/// register access, and a runaway loop reclaimed by the VINO-style
/// execution watchdog.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// Wild store into the hypervisor address space: SVM rejects the
    /// access and the invocation aborts at the faulting instruction.
    WildWrite,
    /// The driver corrupts its own adapter slot (`hw_addr` ← 1), so the
    /// very next register access dereferences garbage and faults — the
    /// wedged-ring shape: state is bad, not the current instruction.
    WedgedRing,
    /// Runaway spin: no illegal access at all; only the execution
    /// watchdog's cycle budget reclaims the CPU (paper §4.5.2).
    InfiniteLoop,
}

impl FaultClass {
    /// All three, in sweep order.
    pub const ALL: [FaultClass; 3] = [
        FaultClass::WildWrite,
        FaultClass::WedgedRing,
        FaultClass::InfiniteLoop,
    ];

    /// Table/JSON label.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::WildWrite => "wild_write",
            FaultClass::WedgedRing => "wedged_ring",
            FaultClass::InfiniteLoop => "infinite_loop",
        }
    }

    /// The value [`System::arm_driver_fault`] writes into the driver's
    /// `fault_arm` word to fault device `dev`: the payload compares it
    /// against the active adapter slot's index + 1, so only an
    /// invocation *on behalf of that device* trips — other devices'
    /// invocations in the same pass sail past the armed payload.
    pub fn arm_value(self, dev: u32) -> u32 {
        dev + 1
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The five shared driver bodies every `*_dev` wrapper tail-jumps into
/// after selecting `cur_adapter` — a payload placed right after each
/// label runs on every hot-path invocation regardless of which device
/// (or which entry wrapper) triggered it.
const FAULT_SITES: [&str; 5] = [
    "e1000_xmit_frame:",
    "e1000_xmit_batch:",
    "e1000_intr:",
    "e1000_poll_rx_budget:",
    "e1000_poll_rx_batch:",
];

/// Builds a driver source with a **device-conditional, one-shot**
/// fault of the given class injected into every hot-path entry
/// ([`FAULT_SITES`]): each invocation loads the `fault_arm` data word,
/// skips ahead when it is zero or names a different device (the word
/// holds faulted-device-index + 1, compared against the active
/// `cur_adapter` slot), and otherwise disarms it (the store persists
/// even though the invocation is about to die — abort stops execution,
/// it does not roll memory back) and executes the fault body. Arm it
/// at runtime with [`System::arm_driver_fault`]; exactly one
/// invocation on behalf of the named device faults — sibling devices'
/// invocations in the same pass are untouched — and recovery resumes
/// with the payload dormant.
///
/// The unarmed check is a handful of extra instructions per invocation,
/// so cycle figures from a sabotaged build are *not* comparable with
/// the stock driver — fault sweeps must compare against a control
/// system built from the **same** source with the fault never armed.
pub fn fault_injected_source(class: FaultClass) -> String {
    let mut src = twin_kernel::e1000::source();
    for (i, site) in FAULT_SITES.iter().enumerate() {
        let body = match class {
            FaultClass::WildWrite => {
                "    movl $0xf0000100, %eax\n    movl $0x41414141, (%eax)".to_string()
            }
            FaultClass::WedgedRing => "    movl cur_adapter, %eax\n    movl $1, (%eax)".to_string(),
            FaultClass::InfiniteLoop => {
                format!(".Lfault_spin_{i}:\n    jmp .Lfault_spin_{i}")
            }
        };
        let payload = format!(
            "{site}\n    pushl %eax\n    pushl %ecx\n    movl fault_arm, %eax\n    \
             cmpl $0, %eax\n    je .Lfault_skip_{i}\n    movl cur_adapter, %ecx\n    \
             subl $adapter, %ecx\n    shrl $7, %ecx\n    addl $1, %ecx\n    \
             cmpl %ecx, %eax\n    jne .Lfault_skip_{i}\n    movl $0, %ecx\n    \
             movl %ecx, fault_arm\n{body}\n.Lfault_skip_{i}:\n    popl %ecx\n    popl %eax"
        );
        src = src.replace(site, &payload);
    }
    // The arm word lives with the driver's other data, zero (dormant)
    // until a harness writes it.
    src.replace(
        "    .globl cur_adapter",
        "    .globl fault_arm\nfault_arm:\n    .long 0\n    .globl cur_adapter",
    )
}

/// One point of the fault sweep: a fault class injected into one device
/// of a multi-NIC system, with recovery latency, in-flight loss
/// accounting, and blast radius measured purely from registry deltas
/// (`nic{i}.rx_packets`, `fault.*`) plus the recovery log.
#[derive(Clone, Debug)]
pub struct FaultPoint {
    /// Fault class injected.
    pub class: FaultClass,
    /// NICs in the system.
    pub nics: u32,
    /// The faulted device.
    pub dev: u32,
    /// Frames offered per device per round.
    pub burst: usize,
    /// Fault episodes injected (the sweep's fault-rate axis).
    pub episodes: u32,
    /// Mean cycles from fault detection to device reset completion.
    pub recovery_cycles: u64,
    /// Queued deferred upcalls replayed natively during teardown
    /// (frees/unlocks the faulted driver owed the kernel).
    pub replayed: u64,
    /// In-flight work discarded with accounting (queued upcalls with no
    /// replay policy + in-flight frames attributed to the dead device).
    pub dropped: u64,
    /// Grant mappings revoked across all episodes (zero-copy pools the
    /// faulted image had cached).
    pub revoked_mappings: u64,
    /// Frames the faulted device delivered in the pre-fault window.
    pub pre_delivered: u64,
    /// Frames it delivered in an equal window after recovery.
    pub post_delivered: u64,
    /// Frames sibling devices delivered from the first fault onward.
    pub sibling_delivered: u64,
    /// Sibling frames over the same schedule on the unfaulted control.
    pub sibling_control: u64,
    /// Frames offered to the faulted device in aborted invocations
    /// (upper bound on wire loss per episode: one burst).
    pub lost_frames: u64,
}

impl FaultPoint {
    /// Post-recovery goodput as a fraction of pre-fault goodput
    /// (acceptance: ≥ 0.95).
    pub fn recovery_frac(&self) -> f64 {
        self.post_delivered as f64 / self.pre_delivered.max(1) as f64
    }

    /// Sibling goodput as a fraction of the unfaulted control run
    /// (acceptance: within 5% of 1.0 — zero cross-NIC blast radius).
    pub fn sibling_frac(&self) -> f64 {
        self.sibling_delivered as f64 / self.sibling_control.max(1) as f64
    }

    /// One sweep-table row.
    pub fn row(&self) -> String {
        format!(
            "{:>13}  episodes {:>2}  recovery {:>9} cyc   dev{} {:>4}->{:<4} ({:>5.1}%)   siblings {:>6.1}%   replayed {:>3}  dropped {:>3}  lost {:>3}",
            self.class.label(),
            self.episodes,
            self.recovery_cycles,
            self.dev,
            self.pre_delivered,
            self.post_delivered,
            self.recovery_frac() * 100.0,
            self.sibling_frac() * 100.0,
            self.replayed,
            self.dropped,
            self.lost_frames,
        )
    }
}

/// A flow set that [`ShardPolicy::FlowHash`] provably balances across
/// `num_nics` devices: exactly `flows_per_nic` flows hash to each
/// device, found by scanning ids upward from
/// [`System::BALANCED_FLOW_BASE`] and keeping a flow only while its
/// device still has room. Returned in scan (ascending) order, so for
/// four NICs × two flows the set is exactly `203..=210` — the
/// hand-picked constant the autotune harness used to special-case —
/// and indexing round-robin by sequence number reproduces that
/// harness's traffic bit-exactly while generalising to any NIC count.
pub fn balanced_flow_set(num_nics: u32, flows_per_nic: usize) -> Vec<u32> {
    let n = num_nics.max(1);
    let mut per_dev = vec![0usize; n as usize];
    let mut out = Vec::with_capacity(n as usize * flows_per_nic);
    let mut flow = System::BALANCED_FLOW_BASE;
    while out.len() < n as usize * flows_per_nic {
        let dev = (flow.wrapping_mul(2_654_435_761) >> 16) % n;
        if per_dev[dev as usize] < flows_per_nic {
            per_dev[dev as usize] += 1;
            out.push(flow);
        }
        flow += 1;
    }
    out
}

/// Picks a flow id that [`ShardPolicy::FlowHash`] maps to `dev` (the
/// same multiplicative hash, mirrored), distinct per `salt` so repeated
/// windows can use fresh sequence spaces without colliding flows.
fn flow_for_dev(dev: u32, nics: u32, salt: u32) -> u32 {
    (0u32..)
        .map(|i| 0x5000 + salt * 1009 + i)
        .find(|f| (f.wrapping_mul(2_654_435_761) >> 16) % nics.max(1) == dev)
        .expect("some flow hashes to every device")
}

/// Measures one fault-recovery episode set: identical closed-loop
/// per-device receive schedules run on `sys` (fault class armed
/// `episodes` times against device `dev`) and `control` (same sabotaged
/// source, never armed — see [`fault_injected_source`] for why the
/// control cannot be the stock driver). Both systems must be built with
/// [`ShardPolicy::FlowHash`] and `sys` with `fault_recovery: true`.
///
/// Schedule: warm-up, a `rounds`-round pre-fault window, `episodes` ×
/// (one faulted round + one recovery round), then a `rounds`-round
/// post-recovery window. Each round offers `burst` frames to every
/// device through flows that hash to it. Per-device goodput comes from
/// `nic{i}.rx_packets` registry deltas; replay/drop accounting from the
/// `fault.*` counters and the recovery log.
///
/// # Errors
///
/// Propagates faults; [`SystemError::Build`] if the armed fault never
/// triggers or recovery does not occur (a broken harness must fail
/// loudly, not report vacuous goodput).
pub fn measure_fault_recovery(
    sys: &mut System,
    control: &mut System,
    dev: u32,
    class: FaultClass,
    rounds: u64,
    burst: usize,
    episodes: u32,
) -> Result<FaultPoint, SystemError> {
    let nics = sys.nic_count() as u32;
    let mut seqs: Vec<u64> = vec![0; nics as usize];
    let frames_for = |d: u32, burst: usize, seqs: &mut Vec<u64>| -> Vec<Frame> {
        let flow = flow_for_dev(d, nics, 0);
        (0..burst)
            .map(|_| {
                let seq = seqs[d as usize];
                seqs[d as usize] += 1;
                Frame {
                    dst: MacAddr::for_guest(1),
                    src: MacAddr([0x02, 0, 0, 0, 0, 0xfa]),
                    ethertype: EtherType::Ipv4,
                    payload_len: MTU,
                    flow,
                    seq,
                }
            })
            .collect()
    };
    // Closed-loop warm-up: fill every ring's buffer-swap cycle on both
    // systems so the measured windows see steady state.
    for _ in 0..4 {
        for d in 0..nics {
            let frames = frames_for(d, burst, &mut seqs);
            sys.receive_burst(&frames)?;
            control.receive_burst(&frames)?;
        }
    }

    let m0f = sys.metrics();
    for _ in 0..rounds {
        for d in 0..nics {
            let frames = frames_for(d, burst, &mut seqs);
            sys.receive_burst(&frames)?;
            control.receive_burst(&frames)?;
        }
    }
    let (m1f, m1c) = (sys.metrics(), control.metrics());

    // Fault episodes: arm, run one round (the target burst dies inside
    // the driver — whole burst counted lost, the bounded per-episode
    // loss), then one recovery round (the target's next invocation
    // finds the device quarantined, resets it, and serves). The control
    // runs the identical schedule unarmed.
    let mut lost = 0u64;
    for _ in 0..episodes {
        for round in 0..2 {
            for d in 0..nics {
                let frames = frames_for(d, burst, &mut seqs);
                control.receive_burst(&frames)?;
                if round == 0 && d == dev {
                    // Device-conditional arming: the one-shot payload
                    // fires on the target's next invocation only;
                    // sibling invocations sail past it.
                    sys.arm_driver_fault(class.arm_value(dev))?;
                    match sys.receive_burst(&frames) {
                        Err(SystemError::DriverAborted(_)) => lost += frames.len() as u64,
                        Ok(_) => {
                            return Err(SystemError::Build(format!(
                                "armed {class} fault never triggered on dev {dev}"
                            )))
                        }
                        Err(e) => return Err(e),
                    }
                } else {
                    sys.receive_burst(&frames)?;
                }
            }
        }
    }
    let m2f = sys.metrics();
    if sys.recovery_log().len() != episodes as usize {
        return Err(SystemError::Build(format!(
            "{} recoveries logged, expected {episodes}",
            sys.recovery_log().len()
        )));
    }

    for _ in 0..rounds {
        for d in 0..nics {
            let frames = frames_for(d, burst, &mut seqs);
            sys.receive_burst(&frames)?;
            control.receive_burst(&frames)?;
        }
    }
    let (m3f, m3c) = (sys.metrics(), control.metrics());

    let rx = |d: &twin_trace::MetricSet, i: u32| d.counter(&format!("nic{i}.rx_packets"));
    let siblings = |hi: &twin_trace::MetricSet, lo: &twin_trace::MetricSet| -> u64 {
        let delta = hi.delta_since(lo);
        (0..nics).filter(|i| *i != dev).map(|i| rx(&delta, i)).sum()
    };
    let fault_span = m3f.delta_since(&m0f);
    let recovery_cycles = {
        let log = sys.recovery_log();
        log.iter()
            .map(|r| r.recovered_at - r.quarantined_at)
            .sum::<u64>()
            / log.len().max(1) as u64
    };
    // Flight-recorder export: a no-op unless TWIN_TRACE_OUT names a
    // directory (and empty unless the system was built with tracing).
    sys.export_trace(&format!("fault_{}", class.label()));
    Ok(FaultPoint {
        class,
        nics,
        dev,
        burst,
        episodes,
        recovery_cycles,
        replayed: fault_span.counter("fault.inflight_replayed"),
        dropped: fault_span.counter("fault.inflight_dropped"),
        revoked_mappings: sys
            .recovery_log()
            .iter()
            .map(|r| r.revoked_mappings as u64)
            .sum(),
        pre_delivered: rx(&m1f.delta_since(&m0f), dev),
        post_delivered: rx(&m3f.delta_since(&m2f), dev),
        sibling_delivered: siblings(&m3f, &m1f),
        sibling_control: siblings(&m3c, &m1c),
        lost_frames: lost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_bound_vs_link_bound() {
        // Very cheap packets: link-bound, low CPU.
        let t = throughput(1000.0, 5);
        assert_eq!(t.mbps, 5000.0);
        assert!(t.cpu_util < 0.2);
        // Expensive packets: CPU-bound.
        let t = throughput(30_000.0, 5);
        assert!(t.mbps < 5000.0);
        assert_eq!(t.cpu_util, 1.0);
    }

    #[test]
    fn paper_scale_sanity() {
        // ~9972 cycles/packet (domU-twin TX) should land in the high
        // 3000s of Mb/s, like the paper's 3902.
        let t = throughput(9972.0, 5);
        assert!((3000.0..4800.0).contains(&t.mbps), "{}", t.mbps);
        // ~21159 (baseline domU) lands near 1619.
        let t = throughput(21159.0, 5);
        assert!((1400.0..2100.0).contains(&t.mbps), "{}", t.mbps);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&sorted, 0.0), 1);
        assert_eq!(percentile(&[], 50.0), 0);
        let one = [42u64];
        assert_eq!(percentile(&one, 50.0), 42);
        assert_eq!(percentile(&one, 99.0), 42);
    }

    #[test]
    fn latency_stats_from_unsorted_samples() {
        let s = LatencyStats::from_samples(&[500, 100, 900, 300, 700]);
        assert_eq!(s.samples, 5);
        assert_eq!(s.p50, 500);
        assert_eq!(s.p99, 900);
        assert_eq!(s.max, 900);
        assert!(s.p50 <= s.p99);
        assert_eq!(LatencyStats::from_samples(&[]), LatencyStats::default());
        let row = s.row();
        assert!(row.contains("p50"));
        assert!(row.contains("p99"));
    }

    #[test]
    fn reservoir_exact_below_capacity_bounded_above() {
        let mut r = SampleReservoir::new(8);
        for v in 0..8u64 {
            r.push(v);
        }
        // Below capacity: every sample retained in order — percentiles
        // are exact.
        assert_eq!(r.samples(), &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(r.seen(), 8);
        for v in 8..10_000u64 {
            r.push(v);
        }
        // Above: bounded at capacity, still a subset of what was pushed.
        assert_eq!(r.len(), 8);
        assert_eq!(r.seen(), 10_000);
        assert!(r.samples().iter().all(|&v| v < 10_000));
        // Determinism: an identical run holds identical samples.
        let mut r2 = SampleReservoir::new(8);
        for v in 0..10_000u64 {
            r2.push(v);
        }
        assert_eq!(r.samples(), r2.samples());
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.seen(), 0);
    }

    #[test]
    fn reservoir_spreads_over_the_whole_stream() {
        // A uniform reservoir over a long stream must keep samples from
        // early, middle and late thirds — a head-only or tail-only cap
        // would skew the percentiles a long paced run reports.
        let n = 300_000u64;
        let mut r = SampleReservoir::new(1024);
        for v in 0..n {
            r.push(v);
        }
        let third = |lo: u64, hi: u64| r.samples().iter().filter(|&&v| v >= lo && v < hi).count();
        let (a, b, c) = (
            third(0, n / 3),
            third(n / 3, 2 * n / 3),
            third(2 * n / 3, n),
        );
        assert_eq!(a + b + c, 1024);
        for (name, k) in [("early", a), ("middle", b), ("late", c)] {
            assert!(
                (170..=512).contains(&k),
                "{name} third holds {k} of 1024 samples"
            );
        }
    }

    #[test]
    fn load_profile_gaps_share_the_heavy_knob() {
        assert_eq!(LoadProfile::Step.gaps(150_000), vec![900_000, 150_000]);
        assert_eq!(
            LoadProfile::Ramp.gaps(150_000),
            vec![900_000, 450_000, 150_000]
        );
        assert_eq!(LoadProfile::Step.label(), "step");
        assert_eq!(LoadProfile::Ramp.to_string(), "ramp");
    }

    #[test]
    fn breakdown_row_mentions_categories() {
        let mut m = CycleMeter::new();
        m.charge_to(CostDomain::Xen, 500);
        m.charge_to(CostDomain::Driver, 100);
        let b = Breakdown::from_meter(&m, 10);
        assert_eq!(b.cycles(CostDomain::Xen), 50.0);
        assert_eq!(b.total(), 60.0);
        let row = b.row("test");
        assert!(row.contains("Xen"));
        assert!(row.contains("e1000"));
    }
}
