//! Measurement primitives: per-packet cycle breakdowns, the
//! cycles-to-throughput conversion used by every figure harness, and the
//! multi-NIC aggregate-throughput sweep.

use crate::system::{System, SystemError};
use std::collections::BTreeMap;
use twin_machine::{CostDomain, CycleMeter};
use twin_net::{wire_bits, MTU};

/// Modeled CPU frequency — the paper's 3.0 GHz Xeon.
pub const CPU_HZ: f64 = 3.0e9;

/// Number of gigabit NICs in the paper's testbed.
pub const TESTBED_NICS: u32 = 5;

/// Per-packet cycle breakdown in the paper's four categories
/// (Figures 7 and 8).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Breakdown {
    /// Cycles per packet per category.
    pub per_domain: BTreeMap<CostDomain, f64>,
    /// Packets measured.
    pub packets: u64,
    /// Selected event counts (total, not per packet).
    pub events: BTreeMap<&'static str, u64>,
}

impl Breakdown {
    /// Builds a breakdown from meter deltas over `packets` packets.
    pub fn from_meter(meter: &CycleMeter, packets: u64) -> Breakdown {
        let mut per_domain = BTreeMap::new();
        for d in CostDomain::ALL {
            per_domain.insert(d, meter.cycles(d) as f64 / packets.max(1) as f64);
        }
        Breakdown {
            per_domain,
            packets,
            events: meter.events().clone(),
        }
    }

    /// Cycles per packet for one category.
    pub fn cycles(&self, d: CostDomain) -> f64 {
        self.per_domain.get(&d).copied().unwrap_or(0.0)
    }

    /// Total cycles per packet.
    pub fn total(&self) -> f64 {
        self.per_domain.values().sum()
    }

    /// Renders one figure-style row: `label total dom0 domU Xen e1000`.
    pub fn row(&self, label: &str) -> String {
        format!(
            "{label:>10}  total {:>8.0}   dom0 {:>8.0}   domU {:>8.0}   Xen {:>8.0}   e1000 {:>8.0}",
            self.total(),
            self.cycles(CostDomain::Dom0),
            self.cycles(CostDomain::DomU),
            self.cycles(CostDomain::Xen),
            self.cycles(CostDomain::Driver),
        )
    }
}

/// One point of a batch-size sweep: amortized per-packet cost and
/// notification rates at a fixed burst size.
#[derive(Clone, Debug)]
pub struct BurstMeasurement {
    /// Burst size measured.
    pub burst: usize,
    /// Per-packet cycle breakdown, amortized over the burst.
    pub breakdown: Breakdown,
    /// Hardware interrupts dispatched per packet (receive side; 1.0 at
    /// burst 1, ~1/N with N-frame coalescing).
    pub irqs_per_packet: f64,
    /// `TDT` doorbell writes per packet (transmit side).
    pub doorbells_per_packet: f64,
}

impl BurstMeasurement {
    /// One sweep-table row.
    pub fn row(&self) -> String {
        format!(
            "burst {:>4}  cycles/pkt {:>8.0}   irqs/pkt {:>6.3}   doorbells/pkt {:>6.3}",
            self.burst,
            self.breakdown.total(),
            self.irqs_per_packet,
            self.doorbells_per_packet,
        )
    }
}

/// Latency percentiles over a set of cycles-to-completion samples —
/// the groundwork adaptive interrupt moderation needs, and the metric
/// that keeps upcall deferral honest: throughput may rise only while the
/// tail stays bounded.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Number of samples.
    pub samples: usize,
    /// Median cycles-to-completion.
    pub p50: u64,
    /// 99th-percentile cycles-to-completion.
    pub p99: u64,
    /// Worst observed.
    pub max: u64,
}

impl LatencyStats {
    /// Computes nearest-rank percentiles over `samples` (any order).
    /// All-zero on an empty set.
    pub fn from_samples(samples: &[u64]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        LatencyStats {
            samples: sorted.len(),
            p50: percentile(&sorted, 50.0),
            p99: percentile(&sorted, 99.0),
            max: *sorted.last().unwrap(),
        }
    }

    /// One report row.
    pub fn row(&self) -> String {
        format!(
            "upcall latency  p50 {:>8} cyc   p99 {:>8} cyc   max {:>8} cyc   ({} samples)",
            self.p50, self.p99, self.max, self.samples
        )
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (`p` in 0..=100).
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Latency percentiles of every upcall completed in the current
/// measurement window of `sys` (empty stats outside TwinDrivers or when
/// no upcalls ran).
pub fn upcall_latency(sys: &System) -> LatencyStats {
    LatencyStats::from_samples(sys.upcall_latency_samples())
}

/// Result of converting a per-packet cost into netperf-style throughput.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Throughput {
    /// Achieved throughput in Mb/s.
    pub mbps: f64,
    /// CPU utilisation in [0, 1] (1.0 = saturated).
    pub cpu_util: f64,
}

/// Converts cycles/packet into aggregate TCP throughput over `nics`
/// gigabit links, netperf style: the CPU processes packets at
/// `CPU_HZ / cpp`; throughput is link-limited or CPU-limited, whichever
/// binds first (this is how the paper's Linux transmit saturates 5 NICs
/// at 76.9% CPU while every Xen configuration is CPU-bound).
pub fn throughput(cpp: f64, nics: u32) -> Throughput {
    let bits = wire_bits(MTU) as f64;
    let link_mbps = nics as f64 * 1000.0;
    let cpu_pps = CPU_HZ / cpp.max(1.0);
    let cpu_mbps = cpu_pps * bits / 1e6;
    if cpu_mbps >= link_mbps {
        Throughput {
            mbps: link_mbps,
            cpu_util: link_mbps / cpu_mbps,
        }
    } else {
        Throughput {
            mbps: cpu_mbps,
            cpu_util: 1.0,
        }
    }
}

/// One point of the multi-NIC shard sweep: amortized per-packet cost and
/// the aggregate throughput it sustains over `nics` gigabit links, both
/// directions.
#[derive(Clone, Debug)]
pub struct AggregateThroughput {
    /// NICs driven concurrently.
    pub nics: u32,
    /// Burst size per driver invocation.
    pub burst: usize,
    /// Amortized transmit cycles/packet at this burst size.
    pub tx_cycles_per_packet: f64,
    /// Amortized receive cycles/packet at this burst size.
    pub rx_cycles_per_packet: f64,
    /// Transmit throughput over the `nics` links.
    pub tx: Throughput,
    /// Receive throughput over the `nics` links.
    pub rx: Throughput,
}

impl AggregateThroughput {
    /// Combined RX+TX throughput in Mb/s (full-duplex aggregate — the
    /// shard sweep's headline scaling figure).
    pub fn aggregate_mbps(&self) -> f64 {
        self.tx.mbps + self.rx.mbps
    }

    /// One sweep-table row.
    pub fn row(&self) -> String {
        format!(
            "nics {:>2}  burst {:>4}  tx {:>6.0} Mb/s ({:>6.0} cyc/pkt)  rx {:>6.0} Mb/s ({:>6.0} cyc/pkt)  aggregate {:>7.0} Mb/s",
            self.nics,
            self.burst,
            self.tx.mbps,
            self.tx_cycles_per_packet,
            self.rx.mbps,
            self.rx_cycles_per_packet,
            self.aggregate_mbps(),
        )
    }
}

/// One point of the interrupt-moderation sweep: amortized receive cost,
/// interrupt rate and arrival-to-delivery latency percentiles at a fixed
/// `ITR` setting under a paced arrival process (see
/// [`System::measure_rx_moderated`]).
#[derive(Clone, Debug)]
pub struct ModeratedRx {
    /// NICs driven concurrently.
    pub nics: u32,
    /// Frames per scheduled arrival burst.
    pub burst: usize,
    /// `ITR` register setting ([`twin_nic::ITR_UNIT_CYCLES`]-cycle
    /// units; 0 = unmoderated).
    pub itr: u32,
    /// Scheduled inter-burst gap in virtual cycles (the offered load).
    pub gap_cycles: u64,
    /// Frames measured.
    pub packets: u64,
    /// Per-packet cycle breakdown (idle time charges nothing, so this is
    /// pure processing cost).
    pub breakdown: Breakdown,
    /// Hardware interrupts dispatched per packet — the side moderation
    /// shrinks.
    pub irqs_per_packet: f64,
    /// Deliveries the ITR window held back (later coalesced into one
    /// interrupt).
    pub moderated_irqs: u64,
    /// Arrival-to-delivery latency percentiles — the side moderation
    /// spends.
    pub latency: LatencyStats,
}

impl ModeratedRx {
    /// Receive throughput implied by the amortized per-packet cost over
    /// this system's links.
    pub fn throughput(&self) -> Throughput {
        throughput(self.breakdown.total(), self.nics)
    }

    /// One sweep-table row.
    pub fn row(&self) -> String {
        format!(
            "nics {:>2}  burst {:>4}  itr {:>6}  cyc/pkt {:>7.0}  irqs/pkt {:>6.3}  p50 {:>9}  p99 {:>9}",
            self.nics,
            self.burst,
            self.itr,
            self.breakdown.total(),
            self.irqs_per_packet,
            self.latency.p50,
            self.latency.p99,
        )
    }
}

/// Measures aggregate RX+TX throughput of a (possibly multi-NIC) system
/// at a fixed burst size: `packets` packets move in each direction in
/// bursts of `burst`, sharded across the NICs by the system's policy;
/// the amortized cycles/packet convert to throughput via [`throughput`]
/// (link-limited or CPU-limited, whichever binds first — exactly how the
/// paper's five-NIC testbed aggregates).
///
/// The link ceiling per direction counts only NICs that **actually
/// carried traffic** during that direction's run: a 4-NIC system under
/// `ShardPolicy::Static(0)` is capped at one gigabit link, not four —
/// idle hardware adds no capacity.
///
/// A single NIC at burst 1 is the degenerate case and reproduces the
/// per-packet figures.
///
/// # Errors
///
/// Propagates measurement errors from the underlying burst sweeps.
pub fn measure_aggregate_throughput(
    sys: &mut System,
    burst: usize,
    packets: u64,
) -> Result<AggregateThroughput, SystemError> {
    let nics = sys.nic_count() as u32;
    let active = |before: &[(u64, u64)], sys: &System| -> (u32, u32) {
        let mut tx_links = 0;
        let mut rx_links = 0;
        for (nic, (t0, r0)) in sys.world.nics.iter().zip(before) {
            let s = nic.stats();
            tx_links += u32::from(s.tx_packets > *t0);
            rx_links += u32::from(s.rx_packets > *r0);
        }
        (tx_links, rx_links)
    };
    let snapshot = |sys: &System| -> Vec<(u64, u64)> {
        sys.world
            .nics
            .iter()
            .map(|n| (n.stats().tx_packets, n.stats().rx_packets))
            .collect()
    };

    let before = snapshot(sys);
    let tx = sys.measure_tx_burst(burst, packets)?;
    let (tx_links, _) = active(&before, sys);
    let before = snapshot(sys);
    let rx = sys.measure_rx_burst(burst, packets)?;
    let (_, rx_links) = active(&before, sys);

    let tx_cpp = tx.breakdown.total();
    let rx_cpp = rx.breakdown.total();
    Ok(AggregateThroughput {
        nics,
        burst,
        tx_cycles_per_packet: tx_cpp,
        rx_cycles_per_packet: rx_cpp,
        tx: throughput(tx_cpp, tx_links.max(1)),
        rx: throughput(rx_cpp, rx_links.max(1)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_bound_vs_link_bound() {
        // Very cheap packets: link-bound, low CPU.
        let t = throughput(1000.0, 5);
        assert_eq!(t.mbps, 5000.0);
        assert!(t.cpu_util < 0.2);
        // Expensive packets: CPU-bound.
        let t = throughput(30_000.0, 5);
        assert!(t.mbps < 5000.0);
        assert_eq!(t.cpu_util, 1.0);
    }

    #[test]
    fn paper_scale_sanity() {
        // ~9972 cycles/packet (domU-twin TX) should land in the high
        // 3000s of Mb/s, like the paper's 3902.
        let t = throughput(9972.0, 5);
        assert!((3000.0..4800.0).contains(&t.mbps), "{}", t.mbps);
        // ~21159 (baseline domU) lands near 1619.
        let t = throughput(21159.0, 5);
        assert!((1400.0..2100.0).contains(&t.mbps), "{}", t.mbps);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&sorted, 0.0), 1);
        assert_eq!(percentile(&[], 50.0), 0);
        let one = [42u64];
        assert_eq!(percentile(&one, 50.0), 42);
        assert_eq!(percentile(&one, 99.0), 42);
    }

    #[test]
    fn latency_stats_from_unsorted_samples() {
        let s = LatencyStats::from_samples(&[500, 100, 900, 300, 700]);
        assert_eq!(s.samples, 5);
        assert_eq!(s.p50, 500);
        assert_eq!(s.p99, 900);
        assert_eq!(s.max, 900);
        assert!(s.p50 <= s.p99);
        assert_eq!(LatencyStats::from_samples(&[]), LatencyStats::default());
        let row = s.row();
        assert!(row.contains("p50"));
        assert!(row.contains("p99"));
    }

    #[test]
    fn breakdown_row_mentions_categories() {
        let mut m = CycleMeter::new();
        m.charge_to(CostDomain::Xen, 500);
        m.charge_to(CostDomain::Driver, 100);
        let b = Breakdown::from_meter(&m, 10);
        assert_eq!(b.cycles(CostDomain::Xen), 50.0);
        assert_eq!(b.total(), 60.0);
        let row = b.row("test");
        assert!(row.contains("Xen"));
        assert!(row.contains("e1000"));
    }
}
