//! Measurement primitives: per-packet cycle breakdowns and the
//! cycles-to-throughput conversion used by every figure harness.

use std::collections::BTreeMap;
use twin_machine::{CostDomain, CycleMeter};
use twin_net::{wire_bits, MTU};

/// Modeled CPU frequency — the paper's 3.0 GHz Xeon.
pub const CPU_HZ: f64 = 3.0e9;

/// Number of gigabit NICs in the paper's testbed.
pub const TESTBED_NICS: u32 = 5;

/// Per-packet cycle breakdown in the paper's four categories
/// (Figures 7 and 8).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Breakdown {
    /// Cycles per packet per category.
    pub per_domain: BTreeMap<CostDomain, f64>,
    /// Packets measured.
    pub packets: u64,
    /// Selected event counts (total, not per packet).
    pub events: BTreeMap<&'static str, u64>,
}

impl Breakdown {
    /// Builds a breakdown from meter deltas over `packets` packets.
    pub fn from_meter(meter: &CycleMeter, packets: u64) -> Breakdown {
        let mut per_domain = BTreeMap::new();
        for d in CostDomain::ALL {
            per_domain.insert(d, meter.cycles(d) as f64 / packets.max(1) as f64);
        }
        Breakdown {
            per_domain,
            packets,
            events: meter.events().clone(),
        }
    }

    /// Cycles per packet for one category.
    pub fn cycles(&self, d: CostDomain) -> f64 {
        self.per_domain.get(&d).copied().unwrap_or(0.0)
    }

    /// Total cycles per packet.
    pub fn total(&self) -> f64 {
        self.per_domain.values().sum()
    }

    /// Renders one figure-style row: `label total dom0 domU Xen e1000`.
    pub fn row(&self, label: &str) -> String {
        format!(
            "{label:>10}  total {:>8.0}   dom0 {:>8.0}   domU {:>8.0}   Xen {:>8.0}   e1000 {:>8.0}",
            self.total(),
            self.cycles(CostDomain::Dom0),
            self.cycles(CostDomain::DomU),
            self.cycles(CostDomain::Xen),
            self.cycles(CostDomain::Driver),
        )
    }
}

/// One point of a batch-size sweep: amortized per-packet cost and
/// notification rates at a fixed burst size.
#[derive(Clone, Debug)]
pub struct BurstMeasurement {
    /// Burst size measured.
    pub burst: usize,
    /// Per-packet cycle breakdown, amortized over the burst.
    pub breakdown: Breakdown,
    /// Hardware interrupts dispatched per packet (receive side; 1.0 at
    /// burst 1, ~1/N with N-frame coalescing).
    pub irqs_per_packet: f64,
    /// `TDT` doorbell writes per packet (transmit side).
    pub doorbells_per_packet: f64,
}

impl BurstMeasurement {
    /// One sweep-table row.
    pub fn row(&self) -> String {
        format!(
            "burst {:>4}  cycles/pkt {:>8.0}   irqs/pkt {:>6.3}   doorbells/pkt {:>6.3}",
            self.burst,
            self.breakdown.total(),
            self.irqs_per_packet,
            self.doorbells_per_packet,
        )
    }
}

/// Result of converting a per-packet cost into netperf-style throughput.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Throughput {
    /// Achieved throughput in Mb/s.
    pub mbps: f64,
    /// CPU utilisation in [0, 1] (1.0 = saturated).
    pub cpu_util: f64,
}

/// Converts cycles/packet into aggregate TCP throughput over `nics`
/// gigabit links, netperf style: the CPU processes packets at
/// `CPU_HZ / cpp`; throughput is link-limited or CPU-limited, whichever
/// binds first (this is how the paper's Linux transmit saturates 5 NICs
/// at 76.9% CPU while every Xen configuration is CPU-bound).
pub fn throughput(cpp: f64, nics: u32) -> Throughput {
    let bits = wire_bits(MTU) as f64;
    let link_mbps = nics as f64 * 1000.0;
    let cpu_pps = CPU_HZ / cpp.max(1.0);
    let cpu_mbps = cpu_pps * bits / 1e6;
    if cpu_mbps >= link_mbps {
        Throughput {
            mbps: link_mbps,
            cpu_util: link_mbps / cpu_mbps,
        }
    } else {
        Throughput {
            mbps: cpu_mbps,
            cpu_util: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_bound_vs_link_bound() {
        // Very cheap packets: link-bound, low CPU.
        let t = throughput(1000.0, 5);
        assert_eq!(t.mbps, 5000.0);
        assert!(t.cpu_util < 0.2);
        // Expensive packets: CPU-bound.
        let t = throughput(30_000.0, 5);
        assert!(t.mbps < 5000.0);
        assert_eq!(t.cpu_util, 1.0);
    }

    #[test]
    fn paper_scale_sanity() {
        // ~9972 cycles/packet (domU-twin TX) should land in the high
        // 3000s of Mb/s, like the paper's 3902.
        let t = throughput(9972.0, 5);
        assert!((3000.0..4800.0).contains(&t.mbps), "{}", t.mbps);
        // ~21159 (baseline domU) lands near 1619.
        let t = throughput(21159.0, 5);
        assert!((1400.0..2100.0).contains(&t.mbps), "{}", t.mbps);
    }

    #[test]
    fn breakdown_row_mentions_categories() {
        let mut m = CycleMeter::new();
        m.charge_to(CostDomain::Xen, 500);
        m.charge_to(CostDomain::Driver, 100);
        let b = Breakdown::from_meter(&m, 10);
        assert_eq!(b.cycles(CostDomain::Xen), 50.0);
        assert_eq!(b.total(), 60.0);
        let row = b.row("test");
        assert!(row.contains("Xen"));
        assert!(row.contains("e1000"));
    }
}
