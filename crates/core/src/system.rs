//! The four measured systems (paper §6.1) and the TwinDrivers derivation
//! pipeline that builds the fourth.
//!
//! * [`Config::NativeLinux`] — driver in the bare kernel;
//! * [`Config::XenDom0`] — driver in dom0 on Xen (virtualisation tax, no
//!   per-packet domain switches for its own traffic);
//! * [`Config::XenGuest`] — the baseline "hosted" path: guest netfront →
//!   I/O channel (grants, copies, domain switches) → netback → bridge →
//!   dom0 driver (paper §2, Figure 1);
//! * [`Config::TwinDrivers`] — guest paravirtual driver → hypercall →
//!   **rewritten driver running in the hypervisor** via SVM → NIC
//!   (paper Figure 2).
//!
//! Driver code always executes instruction-by-instruction on the
//! simulated machine; everything around it (stack, hypervisor, backend)
//! is charged from the calibrated cost model. Cycle attribution follows
//! the paper's four categories.

use crate::iommu::Iommu;
use crate::measure::Breakdown;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use twin_isa::asm::assemble;
use twin_kernel::{
    call_function, e1000, load_driver, Dom0Kernel, LoadedDriver, RxMode, SkBuff, MMIO_BASE,
};
use twin_machine::{CostDomain, Cpu, Env, ExecMode, Fault, Machine, PageEntry, SpaceId, PAGE_SIZE};
use twin_net::{EtherType, Frame, MacAddr, MTU};
use twin_nic::{ItrTuner, Nic, AUTOTUNE_WINDOW_CYCLES, MMIO_WINDOW};
use twin_rewriter::{rewrite, RewriteOptions, RewriteStats};
pub use twin_sched::SchedOptions;
use twin_sched::VcpuSched;
use twin_svm::{Svm, CALL_XLAT_SYMBOL, SLOW_PATH_SYMBOL};
use twin_trace::{FlushCause, MetricSet, TraceEvent};
use twin_xen::{
    load_hypervisor_driver, DomainKind, GrantAccess, GrantCache, HyperSupport, HypervisorDriver,
    Softirq, Xen, HYP_CODE_BASE, UPCALL_RING_SLOTS, UPCALL_STACK_BASE, UPCALL_STACK_PAGES,
};
pub use twin_xen::{DomId, UpcallMode};

/// Code base of the VM driver instance in dom0.
pub const VM_CODE_BASE: u64 = 0x0800_0000;

/// Largest burst one `transmit_burst`/`receive_burst` call moves (the TX
/// ring holds 128 descriptors, so bigger bursts would only split).
pub const MAX_BURST: usize = 128;

/// Data base of the driver in dom0. Staggered against the heap base so
/// the hot adapter page does not share an stlb index with hot heap pages
/// (the stlb is direct-mapped on bits 12..24).
pub const DRIVER_DATA_BASE: u64 = 0x2815_0000;

/// Identity stlb table placement (VM instance, paper §5.1.2).
pub const IDENTITY_STLB_BASE: u64 = 0x2f00_0000;

/// Guest heap base (paravirtual driver buffers).
pub const GUEST_HEAP_BASE: u64 = 0x4000_0000;

/// Guest VA where a zero-copy buffer pool is mapped (one region per
/// granted guest, [`SystemOptions::zero_copy_pool_frames`] pages).
pub const ZC_POOL_BASE: u64 = 0x5000_0000;

/// Bytes one zero-copy pool slot holds (the e1000's 2 KiB RX buffer
/// size); frames longer than this cannot land in a slot and take the
/// copy fallback.
pub const ZC_SLOT_BYTES: u32 = 2048;

/// Live mappings the grant cache holds before LRU eviction kicks in —
/// sized for every pool slot of a realistic flow set (64 flows × a
/// 64-frame pool), so steady state never evicts; pathological flow
/// churn degrades to extra map/unmap pairs, never to wrong behaviour.
pub const ZC_CACHE_CAPACITY: usize = 4096;

/// MAC address of the external traffic peer (the "client machines").
pub fn peer_mac() -> MacAddr {
    MacAddr::for_guest(1000)
}

/// How traffic is sharded across the NICs of a multi-NIC system (the
/// paper's testbed drove five NICs concurrently from one hypervisor
/// driver image; §6.1).
///
/// Sharding operates at *driver-invocation* granularity where possible so
/// burst amortization survives: a whole burst lands on one NIC, and the
/// next burst may land on another. [`ShardPolicy::FlowHash`] pins every
/// flow to one NIC (like receive-side scaling / transmit packet
/// steering), which preserves per-flow frame order by construction. With
/// a single NIC every policy degenerates to the exact PR 1 burst path on
/// NIC 0.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ShardPolicy {
    /// All traffic on one fixed NIC (clamped to the last device). The
    /// default, and the single-NIC degenerate case.
    Static(u32),
    /// Successive bursts rotate across NICs round-robin (bonding mode
    /// balance-rr at burst granularity; keeps whole-burst amortization).
    RoundRobin,
    /// Frames hash by flow id to a NIC: same flow, same NIC, always —
    /// per-flow ordering is preserved across any number of devices.
    FlowHash,
    /// Scheduler-aware placement: a guest's flows land on the NIC whose
    /// softirq CPU matches the guest's vCPU (per the
    /// [`SystemOptions::sched`] topology map), so deliveries stay
    /// cache-warm. Flows of guests with no vCPU — and every flow when
    /// the scheduler model is off — fall back to the exact
    /// [`ShardPolicy::FlowHash`] placement, making this policy
    /// FlowHash-equivalent whenever the scheduler is disabled. When the
    /// scheduler later moves a guest, its flows follow, bounded by the
    /// configured hysteresis and deferred until the old device's ring
    /// is drained so per-flow order is preserved across the migration.
    Affinity,
}

impl Default for ShardPolicy {
    fn default() -> ShardPolicy {
        ShardPolicy::Static(0)
    }
}

/// Which system is being measured.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Config {
    /// Native Linux ("Linux").
    NativeLinux,
    /// Driver domain on Xen ("dom0").
    XenDom0,
    /// Unoptimised Xen guest ("domU").
    XenGuest,
    /// TwinDrivers guest ("domU-twin").
    TwinDrivers,
}

impl Config {
    /// All four, in the paper's bar order.
    pub const ALL: [Config; 4] = [
        Config::XenGuest,
        Config::TwinDrivers,
        Config::XenDom0,
        Config::NativeLinux,
    ];

    /// The paper's label.
    pub fn label(self) -> &'static str {
        match self {
            Config::NativeLinux => "Linux",
            Config::XenDom0 => "dom0",
            Config::XenGuest => "domU",
            Config::TwinDrivers => "domU-twin",
        }
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Options for building a [`System`].
#[derive(Clone, Debug)]
pub struct SystemOptions {
    /// Rewriter configuration (TwinDrivers only).
    pub rewrite: RewriteOptions,
    /// Number of fast-path routines forced onto the upcall path
    /// (Figure 10; 0 = the paper's best configuration).
    pub upcall_count: usize,
    /// Bytes of the guest packet copied into the dom0 sk_buff header on
    /// transmit (paper §5.3 uses "up to the first 96 bytes").
    pub header_copy_bytes: u32,
    /// Enable the IOMMU extension (paper §4.5 proposes it as the fix for
    /// DMA attacks; not in the paper's implementation).
    pub iommu: bool,
    /// sk_buff pool sizes.
    pub pool_size: usize,
    /// Alternative driver assembly source (fault-injection experiments);
    /// `None` uses the stock e1000 driver.
    pub driver_source: Option<String>,
    /// Number of NICs the system drives (clamped to
    /// 1..=[`e1000::MAX_NICS`]). Each gets its own MMIO window, rings,
    /// IRQ line, softirq source and adapter slot.
    pub num_nics: usize,
    /// How traffic maps to NICs when `num_nics > 1`.
    pub shard: ShardPolicy,
    /// Per-guest fairness quantum for the receive demux flush: at most
    /// this many frames are copied into one guest per round before every
    /// other pending guest gets its virtual interrupt, so a flooding
    /// guest cannot starve others' virq latency. The guest-stack wakeup
    /// cost still amortises across the whole flush, so per-packet cycle
    /// figures are unchanged; only backlogs beyond the quantum pay an
    /// extra (cheap) virq per round.
    pub rx_flush_quantum: usize,
    /// How upcalls to dom0 execute (TwinDrivers only):
    /// [`UpcallMode::Sync`] is the paper's per-call switch-pair (the
    /// default — cycle-exact with the pre-engine path);
    /// [`UpcallMode::Deferred`] queues policy-eligible calls and drains
    /// the ring in one switch-pair at the end of each burst pass (or on
    /// queue-full/high-water), amortizing the two switches per *flush*.
    pub upcall_mode: UpcallMode,
    /// Deferred-upcall ring capacity in entries (clamped to the mapped
    /// ring: 1..=[`twin_xen::UPCALL_RING_SLOTS`]). Enqueueing at
    /// capacity forces a flush first.
    pub upcall_queue_capacity: usize,
    /// Interrupt-moderation interval programmed into every NIC's `ITR`
    /// register at build time, in [`twin_nic::ITR_UNIT_CYCLES`]-cycle
    /// units (the real part's 256 ns granularity). 0 — the default —
    /// disables moderation and is cycle-exact with the unmoderated
    /// path. Per-device values can be set later with
    /// [`System::set_itr`].
    pub itr: u32,
    /// Deadline-driven upcall flush (deferred mode only): the first
    /// enqueue into an empty ring arms a virtual timer this many cycles
    /// ahead, so an idle system's queued upcalls complete within the
    /// deadline even when no burst-pass flush point arrives. `None`
    /// (the default) disables the timer and is cycle-exact with the
    /// PR 3 path.
    pub upcall_flush_deadline_cycles: Option<u64>,
    /// Closed-loop per-device `ITR` auto-tuning
    /// ([`twin_nic::ItrTuner`], modeled on Linux's `e1000_update_itr`
    /// state machine): every [`twin_nic::AUTOTUNE_WINDOW_CYCLES`] of
    /// virtual time each device's receive counters are classified into
    /// a latency regime and the `ITR` register is stepped one
    /// [`twin_nic::ITR_LADDER`] rung toward that regime's target,
    /// through the same MMIO path [`System::set_itr`] uses. `false`
    /// (the default) leaves whatever [`SystemOptions::itr`] programmed
    /// untouched and is cycle-exact with the static path.
    pub itr_autotune: bool,
    /// Zero-copy grant-mapped datapath (guest configurations): RX/TX
    /// buffer pools are granted once, mapped on first touch through the
    /// [`twin_xen::GrantCache`] and recycled via an index ring, so the
    /// per-packet grant-copy (and the baseline path's per-buffer
    /// map/unmap pair) disappears in steady state. Frames that cross a
    /// protection domain anyway — oversized, pool-exhausted, or headed
    /// to a guest whose pool was never granted — take the copy
    /// fallback. `false` (the default) is cycle-exact with the copy
    /// path.
    pub zero_copy: bool,
    /// Pool slots granted per guest in zero-copy mode, per flow
    /// direction: a flow that lands more frames than this in one flush
    /// pass overflows its slice of the pool and the excess falls back
    /// to copies (clamped to 1..=[`MAX_BURST`]).
    pub zero_copy_pool_frames: usize,
    /// NAPI-style interrupt→poll mode switching (TwinDrivers only): the
    /// poll weight — the real `e1000_clean` budget — in frames per poll
    /// pass. When non-zero, an RX interrupt acks the cause, masks the
    /// device via `IMC` and hands the ring to a budgeted softirq poll
    /// loop; interrupts re-arm via `IMS` only when a pass drains below
    /// this weight. Under sustained overload the device takes **one**
    /// interrupt instead of one per burst — the canonical
    /// receive-livelock defence. 0 (the default) keeps the pure
    /// interrupt path, bit-exact with every prior baseline. Poll mode
    /// takes precedence over the `ITR` moderation latch: a masked
    /// device never joins the moderated-pending set.
    pub napi_weight: usize,
    /// Per-guest weights for the receive-demux flush's deficit-round-
    /// robin accounting, as `(domain id, weight)` pairs: each round a
    /// guest's deficit grows by `rx_flush_quantum × weight` frames and
    /// it is served up to its deficit. Guests not listed (and every
    /// guest when the list is empty — the default) get weight 1, which
    /// is exactly the PR 2 quantum behaviour, bit-exact.
    pub guest_weights: Vec<(u32, u32)>,
    /// Early-drop admission watermark (frames): when a guest's demux
    /// backlog reaches this bound, further frames toward it are dropped
    /// at RX-descriptor refill time — *before* the ring, the reap and
    /// the demux spend anything on them — for a compare and a counter
    /// bump ([`twin_machine::CostParams::early_drop`]). `None` (the
    /// default) admits everything, bit-exact with the prior path.
    pub rx_backlog_watermark: Option<usize>,
    /// Bound on each guest's demux queue ([`twin_xen::Domain`]
    /// `rx_queue`): past it the demux drops frames *after* the reap
    /// work is spent — the receive-livelock drop point the open-loop
    /// harness measures. `None` (the default) keeps the queue
    /// unbounded, bit-exact with the prior path.
    pub rx_queue_cap: Option<usize>,
    /// Enable the flight recorder ([`twin_trace::FlightRecorder`]) at
    /// build time. Recording is pure bookkeeping outside the charged
    /// path — a traced run's cycle accounting, wire frames and stats are
    /// bit-identical to an untraced run's — so this knob only controls
    /// whether the event ring fills. `false` (the default) records
    /// nothing. Can also be toggled later with [`System::set_tracing`].
    pub tracing: bool,
    /// Driver fault quarantine + live recovery (TwinDrivers only): when
    /// a hypervisor-driver call faults (SVM illegal access, wedged-ring
    /// dereference, or execution-watchdog budget exhaustion), quarantine
    /// the faulted *device* instead of sticky-aborting the shared image
    /// — tear down its leaked state (cached grants, queued deferred
    /// upcalls, NAPI/moderation latches, ring skbs, watchdog timer) with
    /// bounded in-flight accounting, then reset and resume it on the
    /// next call while sibling NICs keep serving. `false` (the default)
    /// keeps the paper's §4.5 sticky abort (now leak-free) and is
    /// bit-exact with every prior baseline on fault-free runs.
    pub fault_recovery: bool,
    /// vCPU scheduler model ([`twin_sched::VcpuSched`], TwinDrivers
    /// only): per-guest run/sleep schedules on the virtual clock, a run
    /// queue per physical CPU and a static CPU↔NIC-softirq topology
    /// map. When set, placement ([`ShardPolicy::Affinity`]), NAPI poll
    /// budgets, DRR flush grants and ITR idle accounting all follow the
    /// scheduler, and deliveries pay
    /// [`twin_machine::CostParams::cold_delivery_refill`] when they run
    /// far from the owning guest's vCPU. vCPUs are registered at run
    /// time with [`System::sched_add_vcpu`]. `None` (the default)
    /// compiles the machinery out of every decision and is bit-exact
    /// with every prior baseline.
    pub sched: Option<SchedOptions>,
}

impl Default for SystemOptions {
    fn default() -> SystemOptions {
        SystemOptions {
            rewrite: RewriteOptions::default(),
            upcall_count: 0,
            header_copy_bytes: 96,
            iommu: false,
            pool_size: 1024,
            driver_source: None,
            num_nics: 1,
            shard: ShardPolicy::default(),
            rx_flush_quantum: 64,
            upcall_mode: UpcallMode::Sync,
            upcall_queue_capacity: 128,
            itr: 0,
            upcall_flush_deadline_cycles: None,
            itr_autotune: false,
            zero_copy: false,
            zero_copy_pool_frames: 64,
            napi_weight: 0,
            guest_weights: Vec::new(),
            rx_backlog_watermark: None,
            rx_queue_cap: None,
            tracing: false,
            fault_recovery: false,
            sched: None,
        }
    }
}

/// One quarantine episode in progress: the fault was detected and the
/// device torn down, but [`System::recover_device`] has not run yet.
#[derive(Clone, Debug)]
struct QuarantineEpisode {
    /// Abort reason from [`twin_xen::hyperdrv::abort_reason_for`].
    reason: String,
    /// Virtual-clock stamp at quarantine entry.
    at: u64,
    /// Queued deferred upcalls replayed natively during teardown.
    replayed: u32,
    /// Upcalls discarded plus in-flight frames lost — the bounded loss.
    dropped: u32,
    /// Domains whose zero-copy grants were revoked, owed a re-grant.
    revoked_doms: Vec<u32>,
    /// Grant mappings revoked (each paid its `grant_unmap`).
    revoked_mappings: usize,
}

/// Outcome of one fault → quarantine → recovery episode, as returned by
/// [`System::recover_device`] and kept in [`System::recovery_log`]. All
/// stamps are virtual-clock cycles, so `recovered_at - quarantined_at`
/// is the recovery latency the fault sweep measures.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// The recovered device.
    pub dev: u32,
    /// The abort reason that triggered the episode.
    pub reason: String,
    /// Virtual-clock stamp at quarantine entry.
    pub quarantined_at: u64,
    /// Virtual-clock stamp when the device re-entered service.
    pub recovered_at: u64,
    /// Queued deferred upcalls replayed natively during teardown.
    pub replayed: u32,
    /// Upcalls discarded plus in-flight frames lost — the bounded,
    /// counted loss for this episode.
    pub dropped: u32,
    /// Grant mappings revoked at quarantine (re-granted on recovery).
    pub revoked_mappings: usize,
}

/// Errors surfaced by system construction or packet operations.
#[derive(Debug)]
pub enum SystemError {
    /// Machine fault (outside the hypervisor driver).
    Fault(Fault),
    /// The hypervisor driver was aborted (SVM caught an illegal access,
    /// watchdog fired, …). The hypervisor itself keeps running.
    DriverAborted(String),
    /// Driver assembly/rewriting/loading failed.
    Build(String),
    /// The NIC receive ring had no buffers.
    RxRingFull,
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::Fault(e) => write!(f, "machine fault: {e}"),
            SystemError::DriverAborted(r) => write!(f, "hypervisor driver aborted: {r}"),
            SystemError::Build(r) => write!(f, "system build failed: {r}"),
            SystemError::RxRingFull => write!(f, "receive ring out of buffers"),
        }
    }
}

impl Error for SystemError {}

impl From<Fault> for SystemError {
    fn from(e: Fault) -> SystemError {
        SystemError::Fault(e)
    }
}

/// The mutable environment: dom0 kernel, devices, hypervisor pieces.
/// Implements [`Env`]; extern dispatch is selected by the executing
/// privilege mode, which is equivalent to the paper's per-instance symbol
/// resolution (§5.2).
#[derive(Debug)]
pub struct World {
    /// The dom0 kernel model.
    pub kernel: Dom0Kernel,
    /// NIC device models.
    pub nics: Vec<Nic>,
    /// The hypervisor (absent for native Linux).
    pub xen: Option<Xen>,
    /// Hypervisor support routines + upcalls (TwinDrivers only).
    pub hyper: Option<HyperSupport>,
    /// Identity SVM for the VM instance of the rewritten driver.
    pub svm_vm: Option<Svm>,
    /// Hypervisor SVM for the hypervisor instance.
    pub svm_hyp: Option<Svm>,
    /// Optional IOMMU (extension).
    pub iommu: Option<Iommu>,
}

impl Env for World {
    fn extern_call(&mut self, name: &str, m: &mut Machine, cpu: &mut Cpu) -> Result<(), Fault> {
        if cpu.mode == ExecMode::Hypervisor {
            if let (Some(hyper), Some(xen), Some(svm)) = (
                self.hyper.as_mut(),
                self.xen.as_mut(),
                self.svm_hyp.as_mut(),
            ) {
                if let Some(r) = hyper.handle_extern(name, m, cpu, &mut self.kernel, xen, svm) {
                    return r;
                }
            }
            return Err(Fault::UnknownExtern(name.to_string()));
        }
        // Guest mode: dom0 context. The VM instance of a rewritten driver
        // resolves the SVM helpers to the identity table (paper §5.1.2).
        match name {
            SLOW_PATH_SYMBOL => {
                let svm = self
                    .svm_vm
                    .as_mut()
                    .ok_or_else(|| Fault::UnknownExtern(name.to_string()))?;
                let addr = cpu.arg(m, 0)? as u64;
                svm.slow_path(m, addr)?;
                Ok(())
            }
            CALL_XLAT_SYMBOL => {
                let svm = self
                    .svm_vm
                    .as_mut()
                    .ok_or_else(|| Fault::UnknownExtern(name.to_string()))?;
                let t = cpu.arg(m, 0)? as u64;
                let x = svm.translate_call(m, t)?;
                cpu.set_reg(twin_isa::Reg::Eax, x as u32);
                Ok(())
            }
            twin_rewriter::STACK_CHECK_SYMBOL => Ok(()),
            _ => match self.kernel.handle_extern(name, m, cpu) {
                Some(r) => r,
                None => Err(Fault::UnknownExtern(name.to_string())),
            },
        }
    }

    fn mmio_read(
        &mut self,
        _m: &mut Machine,
        dev: u32,
        offset: u64,
        _w: twin_isa::Width,
    ) -> Result<u32, Fault> {
        Ok(self.nics[dev as usize].mmio_read(offset))
    }

    fn mmio_write(
        &mut self,
        m: &mut Machine,
        dev: u32,
        offset: u64,
        _w: twin_isa::Width,
        val: u32,
    ) -> Result<(), Fault> {
        if offset == twin_nic::regs::TDT {
            // The posted doorbell write: one per driver kick, however
            // many descriptors the tail move covers (the burst metric).
            m.meter.count_event("doorbell");
            if let Some(iommu) = &mut self.iommu {
                iommu.check_tx_ring(m, &mut self.nics[dev as usize], val)?;
            }
        }
        if offset == twin_nic::regs::RDT {
            // Posted RX buffers are DMA-write targets: validate them at
            // the same doorbell boundary the TX ring gets.
            if let Some(iommu) = &mut self.iommu {
                iommu.check_rx_ring(m, &mut self.nics[dev as usize], val)?;
            }
        }
        self.nics[dev as usize].mmio_write(&mut m.phys, offset, val);
        Ok(())
    }
}

/// One fully constructed, measurable system.
#[derive(Debug)]
pub struct System {
    /// The simulated machine.
    pub machine: Machine,
    /// Kernel, devices and hypervisor pieces.
    pub world: World,
    /// Which configuration this is.
    pub config: Config,
    /// The dom0 / native driver instance.
    pub driver: LoadedDriver,
    /// The derived hypervisor driver (TwinDrivers only).
    pub hyperdrv: Option<HypervisorDriver>,
    /// Rewrite statistics (TwinDrivers only).
    pub rewrite_stats: Option<RewriteStats>,
    /// net_device pointer of NIC 0 (the single-NIC fast path).
    pub netdev: u64,
    /// net_device pointers, one per NIC in device order.
    pub netdevs: Vec<u64>,
    /// The measured guest (guest configurations).
    pub guest: Option<DomId>,
    /// Per-round log of the most recent receive-demux flush:
    /// `(round, guest, frames delivered)` — the fairness quantum's
    /// observable behaviour (a starved guest would only appear in late
    /// rounds).
    pub rx_flush_log: Vec<(usize, DomId, usize)>,
    /// Traffic-to-NIC mapping.
    shard: ShardPolicy,
    /// Round-robin cursor for [`ShardPolicy::RoundRobin`].
    rr_next: u32,
    /// Per-guest flush quantum (see [`SystemOptions::rx_flush_quantum`]).
    rx_flush_quantum: usize,
    /// Devices holding a latched interrupt cause whose moderation window
    /// is still closed: the virtual moderation timer delivers them when
    /// the window opens (no delivery is ever lost — the `ICR` cause
    /// stays latched in hardware meanwhile).
    moderated_pending: Vec<u32>,
    /// Per-device closed-loop `ITR` tuners, one per NIC in device order
    /// when [`SystemOptions::itr_autotune`] is set; empty otherwise (the
    /// static-knob path, untouched).
    itr_tuners: Vec<ItrTuner>,
    /// Per-device gated-wait anchor `(rx_packets, cycles)` captured when
    /// a device's latched cause starts waiting on its moderation
    /// window. Resolved when the wait ends: a wait whose arrival rate
    /// stayed below the busy floor is reported to the tuner as idle
    /// time (the wait of a *quiet* gated device is load-idleness; the
    /// wait of a backlogged one is not). Parallel to `itr_tuners`
    /// (empty when auto-tuning is off) — pure bookkeeping, no cycles.
    gate_anchors: Vec<Option<(u64, u64)>>,
    /// Arrival stamp (virtual cycles) per in-flight received frame,
    /// keyed by `(flow, seq)`; matched off by
    /// [`System::sample_rx_completions`].
    rx_inflight: BTreeMap<(u32, u64), u64>,
    /// Cycles-to-delivery samples for frames completed in the current
    /// measurement window (the latency side of the moderation sweep) —
    /// a bounded reservoir, so arbitrarily long paced runs keep a fixed
    /// footprint while every committed sweep stays exact (it holds far
    /// fewer samples than [`crate::measure::RX_LATENCY_RESERVOIR`]).
    rx_latency: crate::measure::SampleReservoir,
    /// Per-endpoint cursors into the delivered-frame logs (`u32::MAX`
    /// keys the dom0 stack, domain ids key the guests).
    rx_sample_cursors: BTreeMap<u32, usize>,
    /// Zero-copy mode ([`SystemOptions::zero_copy`]).
    zero_copy: bool,
    /// Pool slots per guest per flow direction
    /// ([`SystemOptions::zero_copy_pool_frames`]).
    zc_pool_frames: usize,
    /// Live grant mappings of the zero-copy pools (`None` when the mode
    /// is off — the copy path allocates nothing).
    grant_cache: Option<GrantCache>,
    /// Domains whose zero-copy pool has been granted: the build grants
    /// the primary guest; later guests opt in via
    /// [`System::grant_zero_copy_pool`]. Frames toward an ungranted
    /// domain take the copy fallback.
    zc_granted: std::collections::BTreeSet<u32>,
    /// Which NIC last carried each RX flow (recorded where the wire
    /// side shards, read where grant work loses the device) — pure
    /// bookkeeping behind the per-device grant attribution.
    rx_flow_dev: BTreeMap<u32, u32>,
    /// NAPI poll weight ([`SystemOptions::napi_weight`]; 0 = off).
    napi_weight: usize,
    /// Per-device poll-mode flag: `true` while the device's RX
    /// interrupt is masked and the budgeted poll loop owns its ring.
    /// Empty when NAPI is off — the interrupt path allocates nothing.
    poll_mode: Vec<bool>,
    /// Virtual-clock stamp of each device's current poll-mode entry
    /// (`None` when interrupt-driven). Pure bookkeeping for the
    /// poll-mode-residency metric; parallel to `poll_mode`.
    poll_entered_at: Vec<Option<u64>>,
    /// Accumulated poll-mode residency per device, in virtual cycles
    /// over completed episodes; [`System::poll_mode_cycles`] adds the
    /// in-progress episode. Parallel to `poll_mode`.
    poll_cycles: Vec<u64>,
    /// DRR weights per guest domain id (absent = weight 1).
    guest_weights: BTreeMap<u32, u32>,
    /// Deficit-round-robin counters (frames) per guest domain id,
    /// carried across flush rounds; reset when a guest's queue drains.
    drr_deficit: BTreeMap<u32, u64>,
    /// Early-drop admission watermark
    /// ([`SystemOptions::rx_backlog_watermark`]).
    rx_watermark: Option<usize>,
    /// Frames dropped at the admission watermark, per guest domain id.
    rx_early_drops: BTreeMap<u32, u64>,
    /// Demux queue cap applied to every guest
    /// ([`SystemOptions::rx_queue_cap`]), kept so guests added later
    /// inherit it.
    rx_queue_cap: Option<usize>,
    /// Per-guest latency reservoirs (keyed by domain id), populated
    /// alongside the aggregate reservoir when enabled via
    /// [`System::track_guest_latency`] — the well-behaved-guest p99 the
    /// livelock acceptance is about. Off (and allocation-free) by
    /// default.
    guest_latency: Option<BTreeMap<u32, crate::measure::SampleReservoir>>,
    /// Per-device quarantine + live recovery
    /// ([`SystemOptions::fault_recovery`]; `false` keeps the sticky
    /// abort).
    fault_recovery: bool,
    /// Episodes between fault detection and recovery, keyed by device.
    /// Empty on fault-free runs — allocates nothing.
    quarantine: BTreeMap<u32, QuarantineEpisode>,
    /// Completed recovery reports in episode order — pure bookkeeping
    /// (never charged), the fault sweep's latency source.
    recovery_log: Vec<RecoveryReport>,
    /// vCPU scheduler model ([`SystemOptions::sched`]; `None` — the
    /// default — allocates nothing and leaves every decision on the
    /// scheduler-oblivious path).
    sched: Option<VcpuSched>,
    /// Sticky [`ShardPolicy::Affinity`] placements: flow → device.
    /// Populated only with the scheduler on; FlowHash fallback flows
    /// are never recorded.
    affinity_flow_dev: BTreeMap<u32, u32>,
    /// Virtual-clock stamp of each guest's last flow migration — the
    /// hysteresis clock bounding how often placements may follow the
    /// scheduler.
    affinity_moved_at: BTreeMap<u32, u64>,
    /// Per-guest `(placements, migrations)` counters for the `sched.*`
    /// metrics.
    affinity_stats: BTreeMap<u32, (u64, u64)>,
    dom0: SpaceId,
    dom0_stack_top: u64,
    guest_tx_frag: u64,
    header_copy: u32,
    seq: u64,
    /// Dom0 VA of the `skb*[MAX_BURST]` array handed to
    /// `e1000_xmit_batch` (both driver instances read it — it lives in
    /// dom0 memory like all driver data).
    tx_batch_buf: u64,
}

impl System {
    /// Builds a system in the given configuration with default options.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Build`] when the driver cannot be
    /// assembled, rewritten or loaded.
    pub fn build(config: Config) -> Result<System, SystemError> {
        System::build_with(config, &SystemOptions::default())
    }

    /// Builds a system driving `nics` NICs under `shard`, with all other
    /// options at their defaults (the multi-NIC sweep entry point).
    ///
    /// # Errors
    ///
    /// See [`System::build`].
    pub fn build_sharded(
        config: Config,
        nics: usize,
        shard: ShardPolicy,
    ) -> Result<System, SystemError> {
        System::build_with(
            config,
            &SystemOptions {
                num_nics: nics,
                shard,
                ..SystemOptions::default()
            },
        )
    }

    /// Number of NICs this system drives.
    pub fn nic_count(&self) -> usize {
        self.world.nics.len()
    }

    /// True when more than one NIC is attached: driver invocations then
    /// go through the device-id-taking entry points.
    fn multi_nic(&self) -> bool {
        self.world.nics.len() > 1
    }

    /// net_device pointer for a NIC.
    fn netdev_of(&self, dev: u32) -> u64 {
        self.netdevs[dev as usize]
    }

    /// Splits one burst's frames into per-NIC groups under the sharding
    /// policy. Order within a group preserves arrival order, so per-flow
    /// order is preserved whenever a flow maps to a single NIC (always,
    /// for every policy here).
    fn shard_frames(&mut self, frames: Vec<Frame>) -> Vec<(u32, Vec<Frame>)> {
        let n = self.world.nics.len() as u32;
        if n == 1 {
            return vec![(0, frames)];
        }
        match self.shard {
            ShardPolicy::Static(dev) => vec![(dev.min(n - 1), frames)],
            ShardPolicy::RoundRobin => {
                let dev = self.rr_next % n;
                self.rr_next = (self.rr_next + 1) % n;
                vec![(dev, frames)]
            }
            ShardPolicy::FlowHash => {
                let mut groups: Vec<(u32, Vec<Frame>)> = Vec::new();
                for f in frames {
                    let dev = (f.flow.wrapping_mul(2_654_435_761) >> 16) % n;
                    match groups.iter_mut().find(|(d, _)| *d == dev) {
                        Some((_, v)) => v.push(f),
                        None => groups.push((dev, vec![f])),
                    }
                }
                groups
            }
            ShardPolicy::Affinity => {
                let mut groups: Vec<(u32, Vec<Frame>)> = Vec::new();
                for f in frames {
                    let dev = self.affinity_dev(&f, n);
                    match groups.iter_mut().find(|(d, _)| *d == dev) {
                        Some((_, v)) => v.push(f),
                        None => groups.push((dev, vec![f])),
                    }
                }
                groups
            }
        }
    }

    /// Device choice for one frame under [`ShardPolicy::Affinity`].
    ///
    /// Flows that cannot be tied to a scheduled vCPU — the scheduler
    /// model is off, the frame is not guest-bound, or the guest has no
    /// registered vCPU — take the exact [`ShardPolicy::FlowHash`]
    /// placement, so the policy is FlowHash-equivalent whenever the
    /// scheduler is disabled. Scheduled flows stick to a NIC whose
    /// softirq CPU matches the guest's vCPU; when the scheduler has
    /// moved the guest, the flow follows only after the configured
    /// hysteresis interval *and* once the old device's RX ring is
    /// drained — frames still queued there would overtake the migrated
    /// ones and break per-flow order.
    fn affinity_dev(&mut self, f: &Frame, n: u32) -> u32 {
        let hash16 = f.flow.wrapping_mul(2_654_435_761) >> 16;
        let hash_dev = hash16 % n;
        if self.sched.is_none() {
            return hash_dev;
        }
        // Only guest-bound RX frames are steered: delivery locality is
        // a receive-side property (NIC softirq CPU vs the owning
        // guest's vCPU). TX and non-guest frames keep the oblivious
        // hash, so the wire interleave never depends on the scheduler.
        let Some(g) = self.world.xen.as_ref().and_then(|x| {
            x.domains
                .iter()
                .find(|d| d.kind == DomainKind::Guest && d.mac == f.dst)
                .map(|d| d.id.0)
        }) else {
            return hash_dev;
        };
        let sched = self.sched.as_ref().expect("checked above");
        let Some(cpu) = sched.cpu_of(g) else {
            return hash_dev;
        };
        let local: Vec<u32> = (0..n).filter(|&d| sched.nic_cpu(d) == cpu).collect();
        let target = if local.is_empty() {
            hash_dev
        } else {
            // Spread a guest's flows across its local NICs by the same
            // hash the oblivious policy uses.
            local[hash16 as usize % local.len()]
        };
        let hysteresis = sched.options().affinity_hysteresis;
        match self.affinity_flow_dev.get(&f.flow).copied() {
            None => {
                self.affinity_flow_dev.insert(f.flow, target);
                let stats = self.affinity_stats.entry(g).or_insert((0, 0));
                stats.0 += 1;
                self.machine.meter.count_event("affinity_place");
                if self.machine.trace.enabled() {
                    self.machine.trace_event(TraceEvent::AffinityPlace {
                        guest: g,
                        flow: f.flow,
                        dev: target,
                    });
                }
                target
            }
            Some(cur) if cur == target => cur,
            Some(cur) => {
                let now = self.machine.meter.now();
                let moved_at = self.affinity_moved_at.get(&g).copied().unwrap_or(0);
                let old_ring_drained = self.world.nics[cur as usize].rx_pending() == 0;
                if now.saturating_sub(moved_at) >= hysteresis && old_ring_drained {
                    self.affinity_flow_dev.insert(f.flow, target);
                    self.affinity_moved_at.insert(g, now);
                    let stats = self.affinity_stats.entry(g).or_insert((0, 0));
                    stats.1 += 1;
                    self.machine.meter.count_event("affinity_migrate");
                    if self.machine.trace.enabled() {
                        self.machine.trace_event(TraceEvent::AffinityMigrate {
                            guest: g,
                            flow: f.flow,
                            from_dev: cur,
                            to_dev: target,
                        });
                    }
                    target
                } else {
                    cur
                }
            }
        }
    }

    /// Builds a system with explicit options.
    ///
    /// # Errors
    ///
    /// See [`System::build`].
    pub fn build_with(config: Config, opts: &SystemOptions) -> Result<System, SystemError> {
        let source = opts.driver_source.clone().unwrap_or_else(e1000::source);
        let module = assemble("e1000", &source).map_err(|e| SystemError::Build(e.to_string()))?;

        let num_nics = opts.num_nics.clamp(1, e1000::MAX_NICS);
        let mut machine = Machine::new();
        let dom0 = machine.new_space();
        // One MMIO window per device, contiguous in dom0's address space
        // (`ioremap(dev)` hands out `MMIO_BASE + dev * MMIO_WINDOW`).
        for dev in 0..num_nics as u64 {
            for p in 0..(MMIO_WINDOW / PAGE_SIZE) {
                machine.space_mut(dom0).map(
                    MMIO_BASE + dev * MMIO_WINDOW + p * PAGE_SIZE,
                    PageEntry::mmio(dev as u32, p),
                );
            }
        }
        machine.map_stack(
            dom0,
            twin_kernel::DOM0_STACK_BASE,
            twin_kernel::DOM0_STACK_PAGES,
        )?;
        let dom0_stack_top =
            twin_kernel::DOM0_STACK_BASE + twin_kernel::DOM0_STACK_PAGES * PAGE_SIZE;
        // Each extra NIC posts 127 RX buffers at open; grow the pool so
        // multi-NIC systems keep the same transmit headroom as one NIC.
        let pool_size = opts.pool_size + 256 * (num_nics - 1);
        let kernel = Dom0Kernel::new(&mut machine, dom0, pool_size)?;
        let nics: Vec<Nic> = (0..num_nics as u32)
            .map(|dev| {
                // NIC 0 keeps dom0's classic MAC (the degenerate path is
                // bit-identical); extra NICs get their own hardware MACs.
                let mac = if dev == 0 {
                    MacAddr::for_guest(0)
                } else {
                    MacAddr::for_nic(dev)
                };
                Nic::new(dev, mac)
            })
            .collect();

        let mut world = World {
            kernel,
            nics,
            xen: None,
            hyper: None,
            svm_vm: None,
            svm_hyp: None,
            iommu: None,
        };

        // Xen present for everything but native Linux.
        if config != Config::NativeLinux {
            world.xen = Some(Xen::new(dom0));
        }

        // The driver module: original for the baselines, rewritten for
        // TwinDrivers (the same rewritten binary serves both instances,
        // paper §5.1.2).
        let (drv_module, rewrite_stats) = if config == Config::TwinDrivers {
            let out =
                rewrite(&module, &opts.rewrite).map_err(|e| SystemError::Build(e.to_string()))?;
            (out.module, Some(out.stats))
        } else {
            (module, None)
        };

        if config == Config::TwinDrivers {
            world.svm_vm = Some(Svm::new_identity(&mut machine, dom0, IDENTITY_STLB_BASE)?);
        }

        let identity_base = world.svm_vm.as_ref().map(|s| s.placement().base);
        let driver = load_driver(
            &mut machine,
            dom0,
            &drv_module,
            VM_CODE_BASE,
            DRIVER_DATA_BASE,
            |name| {
                if name == twin_svm::STLB_SYMBOL {
                    identity_base
                } else {
                    None
                }
            },
        )
        .map_err(|e| SystemError::Build(e.to_string()))?;

        let mut sys = System {
            machine,
            world,
            config,
            driver,
            hyperdrv: None,
            rewrite_stats,
            netdev: 0,
            netdevs: Vec::new(),
            guest: None,
            rx_flush_log: Vec::new(),
            shard: opts.shard,
            rr_next: 0,
            rx_flush_quantum: opts.rx_flush_quantum,
            moderated_pending: Vec::new(),
            itr_tuners: Vec::new(),
            gate_anchors: Vec::new(),
            rx_inflight: BTreeMap::new(),
            rx_latency: crate::measure::SampleReservoir::new(crate::measure::RX_LATENCY_RESERVOIR),
            rx_sample_cursors: BTreeMap::new(),
            zero_copy: opts.zero_copy,
            zc_pool_frames: opts.zero_copy_pool_frames.clamp(1, MAX_BURST),
            grant_cache: None,
            zc_granted: std::collections::BTreeSet::new(),
            rx_flow_dev: BTreeMap::new(),
            napi_weight: opts.napi_weight,
            poll_mode: if opts.napi_weight > 0 {
                vec![false; num_nics]
            } else {
                Vec::new()
            },
            poll_entered_at: if opts.napi_weight > 0 {
                vec![None; num_nics]
            } else {
                Vec::new()
            },
            poll_cycles: if opts.napi_weight > 0 {
                vec![0; num_nics]
            } else {
                Vec::new()
            },
            guest_weights: opts.guest_weights.iter().copied().collect(),
            drr_deficit: BTreeMap::new(),
            rx_watermark: opts.rx_backlog_watermark,
            rx_early_drops: BTreeMap::new(),
            rx_queue_cap: opts.rx_queue_cap,
            guest_latency: None,
            fault_recovery: opts.fault_recovery,
            quarantine: BTreeMap::new(),
            recovery_log: Vec::new(),
            sched: opts.sched.clone().map(VcpuSched::new),
            affinity_flow_dev: BTreeMap::new(),
            affinity_moved_at: BTreeMap::new(),
            affinity_stats: BTreeMap::new(),
            dom0,
            dom0_stack_top,
            guest_tx_frag: 0,
            header_copy: opts.header_copy_bytes.clamp(26, 1024),
            seq: 0,
            tx_batch_buf: 0,
        };
        if opts.tracing {
            sys.machine.trace.set_enabled(true);
        }

        // Initialise the VM instance in dom0 (paper §3.1: "we first load
        // the VM driver into the dom0 kernel where it performs the
        // initialization of the NIC and the driver data structures").
        // Probe selects adapter slot `dev`; open programs that device's
        // rings — one pass per NIC.
        for dev in 0..num_nics {
            let probe = sys.driver.entry("e1000_probe").unwrap();
            sys.call_dom0(probe, &[dev as u32], 50_000_000)?;
            let netdev = sys.world.kernel.registered_netdevs[dev];
            sys.netdevs.push(netdev);
            let open = sys.driver.entry("e1000_open").unwrap();
            sys.call_dom0(open, &[netdev as u32], 200_000_000)?;
        }
        sys.netdev = sys.netdevs[0];
        // Pointer array for burst transmits, in dom0 memory so both
        // driver instances can walk it.
        sys.tx_batch_buf = sys
            .world
            .kernel
            .heap
            .kmalloc(&mut sys.machine, (MAX_BURST * 4) as u64)?;
        // Interrupt moderation: program every device's ITR register
        // through the MMIO window. Skipped entirely at 0 so the
        // unmoderated build is bit-identical.
        if opts.itr != 0 {
            for dev in 0..num_nics as u32 {
                sys.set_itr(dev, opts.itr)?;
            }
        }
        // Closed-loop ITR auto-tuning: one tuner per device, anchored at
        // the current virtual time with the device's current counters.
        // The Vec stays empty when the knob is off, so the static path
        // is untouched.
        if opts.itr_autotune {
            let now = sys.machine.meter.now();
            sys.itr_tuners = sys
                .world
                .nics
                .iter()
                .map(|n| ItrTuner::new(now, AUTOTUNE_WINDOW_CYCLES, n))
                .collect();
            sys.gate_anchors = vec![None; num_nics];
        }

        // NAPI poll mode drives the hypervisor driver from softirq
        // context; only the TwinDrivers configuration has one.
        if opts.napi_weight > 0 && config != Config::TwinDrivers {
            return Err(SystemError::Build(
                "napi_weight requires the TwinDrivers configuration".into(),
            ));
        }

        // Quarantine + live recovery only makes sense where a
        // hypervisor driver can fault.
        if opts.fault_recovery && config != Config::TwinDrivers {
            return Err(SystemError::Build(
                "fault_recovery requires the TwinDrivers configuration".into(),
            ));
        }

        // The scheduler model drives guest-facing placement and service
        // decisions; only the TwinDrivers configuration demuxes to
        // scheduled guests.
        if opts.sched.is_some() && config != Config::TwinDrivers {
            return Err(SystemError::Build(
                "sched requires the TwinDrivers configuration".into(),
            ));
        }

        // Guest domain for the guest configurations.
        if matches!(config, Config::XenGuest | Config::TwinDrivers) {
            let gspace = sys.machine.new_space();
            let gid = sys
                .world
                .xen
                .as_mut()
                .expect("xen present")
                .add_guest(gspace, MacAddr::for_guest(1));
            if sys.rx_queue_cap.is_some() {
                sys.world.xen.as_mut().unwrap().domain_mut(gid).rx_queue_cap = sys.rx_queue_cap;
            }
            sys.guest = Some(gid);
            // The measured workload runs in the guest, so that is who is
            // on the CPU between packets.
            sys.world.xen.as_mut().unwrap().current = gid;
            // One guest payload page whose machine address the TX glue
            // chains as an sk_buff fragment (paper §5.3).
            sys.machine.map_fresh(gspace, GUEST_HEAP_BASE, 4)?;
            let t = sys
                .machine
                .translate(gspace, ExecMode::Guest, GUEST_HEAP_BASE, false)?;
            sys.guest_tx_frag = t.entry.pfn * PAGE_SIZE;
        }

        // TwinDrivers: derive and load the hypervisor instance.
        if config == Config::TwinDrivers {
            // The reserved pool backs RX replenishment for every NIC in
            // steady state (each swaps in ~128 buffers), so it scales
            // with the device count; one NIC keeps the paper's 512.
            sys.world
                .kernel
                .reserve_hypervisor_pool(&mut sys.machine, 512 * num_nics)?;
            let mut svm = Svm::new_hypervisor(&mut sys.machine, dom0, 0, (0, u64::MAX))?;
            let hyp = load_hypervisor_driver(
                &mut sys.machine,
                &drv_module,
                &sys.driver,
                svm.placement().base,
            )
            .map_err(|e| SystemError::Build(e.to_string()))?;
            svm.set_code_mapping((HYP_CODE_BASE - VM_CODE_BASE) as i64, hyp.code_range());
            sys.world.svm_hyp = Some(svm);
            let mut hs = HyperSupport::new();
            hs.set_upcall_count(opts.upcall_count);
            hs.engine.set_mode(opts.upcall_mode);
            hs.engine.set_capacity(
                opts.upcall_queue_capacity
                    .clamp(1, UPCALL_RING_SLOTS as usize),
            );
            hs.engine
                .set_flush_deadline(opts.upcall_flush_deadline_cycles);
            sys.world.hyper = Some(hs);
            sys.hyperdrv = Some(hyp);
            if opts.iommu {
                let mut iommu = Iommu::new();
                iommu.allow_space_frames(&sys.machine, dom0);
                if let Some(gid) = sys.guest {
                    let gspace = sys.world.xen.as_ref().unwrap().domain(gid).space;
                    iommu.allow_space_frames(&sys.machine, gspace);
                }
                sys.world.iommu = Some(iommu);
            }
        }

        // Baseline guest path: dom0 bridges instead of consuming locally.
        if config == Config::XenGuest {
            sys.world.kernel.rx_mode = RxMode::Bridge;
        }

        // Zero-copy datapath: the grant cache comes up empty (mappings
        // establish on first touch) and the primary guest's buffer pool
        // is granted and pre-pinned up front. Entirely absent when the
        // knob is off — the copy path allocates and charges nothing.
        if opts.zero_copy && matches!(config, Config::XenGuest | Config::TwinDrivers) {
            sys.grant_cache = Some(GrantCache::new(ZC_CACHE_CAPACITY));
            let gid = sys.guest.expect("guest configurations have a guest");
            sys.grant_zero_copy_pool(gid)?;
        }

        Ok(sys)
    }

    /// Runs a function of the dom0/native driver instance.
    fn call_dom0(&mut self, entry: u64, args: &[u32], budget: u64) -> Result<u32, SystemError> {
        call_function(
            &mut self.machine,
            &mut self.world,
            self.dom0,
            ExecMode::Guest,
            self.dom0_stack_top,
            entry,
            args,
            budget,
        )
        .map_err(SystemError::Fault)
    }

    /// Runs a function of the hypervisor driver instance, from the guest
    /// context, in hypervisor mode — no address-space switch, the core of
    /// the paper's performance claim. `dev` is the device the call
    /// drives: a fault is attributed to it, and in fault-recovery mode
    /// ([`SystemOptions::fault_recovery`]) a call toward a quarantined
    /// device first runs [`System::recover_device`] so traffic resumes
    /// transparently after the one errored invocation.
    fn call_hyperdrv(
        &mut self,
        entry: u64,
        args: &[u32],
        budget: u64,
        dev: u32,
    ) -> Result<u32, SystemError> {
        let hyp = self.hyperdrv.as_ref().expect("hypervisor driver");
        if let Some(reason) = &hyp.aborted {
            return Err(SystemError::DriverAborted(reason.clone()));
        }
        if hyp.is_quarantined(dev) {
            // Live recovery: reset the device and fall through into the
            // requested call on the rebuilt adapter slot.
            self.recover_device(dev)?;
        }
        let hyp = self.hyperdrv.as_ref().unwrap();
        let gid = self.guest.expect("guest");
        let gspace = self.world.xen.as_ref().unwrap().domain(gid).space;
        let stack_top = hyp.stack_top;
        let r = call_function(
            &mut self.machine,
            &mut self.world,
            gspace,
            ExecMode::Hypervisor,
            stack_top,
            entry,
            args,
            budget,
        );
        match r {
            Ok(v) => Ok(v),
            Err(fault) => {
                // SVM caught something (or the watchdog fired): the
                // hypervisor itself survives (paper §4.5).
                let reason = twin_xen::hyperdrv::abort_reason_for(&fault);
                self.machine.meter.count_event("driver_abort");
                if self.machine.trace.enabled() {
                    self.machine.trace_event(TraceEvent::FaultDetected {
                        dev,
                        reason: reason.clone(),
                    });
                }
                if self.fault_recovery {
                    // Quarantine the faulted device, not the image:
                    // siblings keep serving through the shared driver.
                    self.hyperdrv
                        .as_mut()
                        .unwrap()
                        .quarantine_device(dev, reason.clone());
                    self.machine.meter.count_event("quarantine_enter");
                    if self.machine.trace.enabled() {
                        self.machine
                            .trace_event(TraceEvent::QuarantineEnter { dev });
                    }
                    let at = self.machine.meter.now();
                    let (replayed, dropped, revoked_doms, revoked_mappings) =
                        self.fault_teardown(dev)?;
                    if self.machine.trace.enabled() {
                        self.machine.trace_event(TraceEvent::InflightAccounted {
                            dev,
                            replayed,
                            dropped,
                        });
                    }
                    self.quarantine.insert(
                        dev,
                        QuarantineEpisode {
                            reason: reason.clone(),
                            at,
                            replayed,
                            dropped,
                            revoked_doms,
                            revoked_mappings,
                        },
                    );
                } else {
                    // Sticky abort (the paper's §4.5 endpoint) — but
                    // "safe" must not mean "leaks": every device's
                    // grants, queued upcalls, poll latches and watchdogs
                    // are torn down, with one aggregated accounting
                    // event for the episode.
                    self.hyperdrv.as_mut().unwrap().abort(reason.clone());
                    let (mut replayed, mut dropped) = (0u32, 0u32);
                    for d in 0..self.world.nics.len() as u32 {
                        let (r, dr, _, _) = self.fault_teardown(d)?;
                        replayed += r;
                        dropped += dr;
                    }
                    if self.machine.trace.enabled() {
                        self.machine.trace_event(TraceEvent::InflightAccounted {
                            dev,
                            replayed,
                            dropped,
                        });
                    }
                }
                Err(SystemError::DriverAborted(reason))
            }
        }
    }

    /// Tears down the state a faulted driver leaves behind for one
    /// device: drains the deferred-upcall ring (replaying restorative
    /// frees/unlocks natively, discarding the rest — counted), disarms
    /// the flush-deadline, drops the device's in-flight frames, frees
    /// its ring-held skbs back to their pools (pool conservation across
    /// the reset), closes an open NAPI poll span, clears moderation
    /// latches, revokes every cached zero-copy grant (the faulted
    /// *image* touched all of them — the trust decision is per driver,
    /// re-granted per device on recovery), and disarms the device's
    /// watchdog so the wheel cannot fire a handler over the corrupted
    /// adapter slot. Returns `(replayed, dropped, revoked_doms,
    /// revoked_mappings)`.
    fn fault_teardown(&mut self, dev: u32) -> Result<(u32, u32, Vec<u32>, usize), SystemError> {
        let mut replayed = 0u32;
        let mut dropped = 0u32;
        // 1. The deferred-upcall ring: a queued free or unlock is state
        // dom0 is owed regardless of which device queued it — replay
        // those natively (charged as Xen cleanup work). Anything else is
        // discarded and counted. `drain` also disarms the flush-deadline
        // timer, so an idle system stops re-arming toward a dead ring.
        let drained = self
            .world
            .hyper
            .as_mut()
            .map(|hs| hs.engine.drain())
            .unwrap_or_default();
        for q in &drained {
            match q.routine.as_str() {
                "dev_kfree_skb_any" | "dev_kfree_skb" | "kfree_skb" => {
                    let skb = q.args.first().copied().unwrap_or(0);
                    if skb != 0 {
                        let m = &mut self.machine;
                        m.meter.charge_to(CostDomain::Xen, m.cost.skb_alloc / 2);
                        self.world
                            .kernel
                            .free_skb(&self.machine, SkBuff(u64::from(skb)))?;
                    }
                    replayed += 1;
                    self.machine.meter.count_event("upcall_replayed");
                }
                "spin_unlock_irqrestore" => {
                    let lock = q.args.first().copied().unwrap_or(0);
                    if lock != 0 {
                        let m = &mut self.machine;
                        m.meter.charge_to(CostDomain::Xen, m.cost.spinlock);
                        self.machine
                            .write_u32(self.dom0, ExecMode::Guest, u64::from(lock), 0)?;
                    }
                    replayed += 1;
                    self.machine.meter.count_event("upcall_replayed");
                }
                _ => {
                    dropped += 1;
                    self.machine.meter.count_event("upcall_discarded");
                }
            }
        }
        if let Some(hs) = self.world.hyper.as_mut() {
            hs.engine.prune_stale_completions();
        }
        // 2. In-flight frames on this device: their delivery stamps will
        // never match — bounded, counted loss.
        let before = self.rx_inflight.len();
        let flow_dev = &self.rx_flow_dev;
        self.rx_inflight
            .retain(|(flow, _), _| flow_dev.get(flow).copied().unwrap_or(0) != dev);
        let lost = (before - self.rx_inflight.len()) as u32;
        dropped += lost;
        for _ in 0..lost {
            self.machine.meter.count_event("inflight_lost");
        }
        // 3. Ring-held skbs: the reset re-probes the adapter slot and
        // re-fills both rings, so buffers the old rings hold must go
        // back to their pools first or every episode leaks a ring's
        // worth of pool. `e1000_clean_tx` nulls entries it frees, so
        // every non-null slot is live exactly once.
        let slot = self
            .driver
            .data_symbol("adapter")
            .map(|a| a + u64::from(dev) * e1000::ADAPTER_STRIDE);
        if let Some(slot) = slot {
            for &arr_off in &[e1000::adapter::TX_SKB, e1000::adapter::RX_SKB] {
                let arr = self
                    .machine
                    .read_u32(self.dom0, ExecMode::Guest, slot + arr_off)?;
                if arr == 0 {
                    continue;
                }
                for i in 0..e1000::RING_SIZE {
                    let p = u64::from(arr) + u64::from(i) * 4;
                    let skb = self.machine.read_u32(self.dom0, ExecMode::Guest, p)?;
                    if skb != 0 {
                        self.machine.write_u32(self.dom0, ExecMode::Guest, p, 0)?;
                        self.world
                            .kernel
                            .free_skb(&self.machine, SkBuff(u64::from(skb)))?;
                    }
                }
            }
        }
        // 4. NAPI: close an open poll span (the residency metric and
        // the chrome export both need the episode bounded); the IRQ
        // stays masked until the reset's `e1000_open` re-enables `IMS`.
        if self.napi_weight > 0 && self.poll_mode.get(dev as usize).copied().unwrap_or(false) {
            self.poll_mode[dev as usize] = false;
            let now = self.machine.meter.now();
            if let Some(entered) = self.poll_entered_at[dev as usize].take() {
                self.poll_cycles[dev as usize] += now.saturating_sub(entered);
            }
            self.machine.meter.count_event("napi_exit");
            if self.machine.trace.enabled() {
                self.machine.trace_event(TraceEvent::NapiComplete { dev });
            }
        }
        // 5. Moderation latches: a quarantined device owes no delivery.
        self.moderated_pending.retain(|d| *d != dev);
        if let Some(anchor) = self.gate_anchors.get_mut(dev as usize) {
            *anchor = None;
        }
        // 6. Zero-copy grants: the faulted image cached mappings for
        // every granted pool, so all of them outlive the trust decision
        // unless revoked (each pays its `grant_unmap`). Recovery
        // re-grants, reusing the still-mapped pool pages.
        let revoked_doms: Vec<u32> = self.zc_granted.iter().copied().collect();
        let mut revoked_mappings = 0usize;
        for d in &revoked_doms {
            revoked_mappings += self.revoke_zero_copy_grants(DomId(*d));
        }
        // 7. The device's watchdog: its handler would run the dom0
        // instance over the corrupted adapter slot at the next wheel
        // service. Re-probe re-arms it via `mod_timer`.
        if let Some(wd) = self.driver.entry("e1000_watchdog") {
            self.world
                .kernel
                .timers
                .disarm_where(|t| t.handler == wd && t.data == u64::from(dev));
        }
        Ok((replayed, dropped, revoked_doms, revoked_mappings))
    }

    /// Resets and resumes a quarantined device: re-runs `e1000_probe`
    /// (adapter-slot reconstruction, `request_irq`, watchdog re-arm) and
    /// `e1000_open` (ring reconstruction, `IMS` re-enable) through the
    /// dom0 instance — charged, so recovery latency is real virtual
    /// time — then re-grants the revoked zero-copy pools and releases
    /// the quarantine. Called automatically by the next driver
    /// invocation toward the device when
    /// [`SystemOptions::fault_recovery`] is set; callable directly for
    /// eager recovery.
    ///
    /// # Errors
    ///
    /// [`SystemError::Build`] if the device is not quarantined;
    /// propagates faults from the reset itself.
    pub fn recover_device(&mut self, dev: u32) -> Result<RecoveryReport, SystemError> {
        let Some(ep) = self.quarantine.remove(&dev) else {
            return Err(SystemError::Build(format!(
                "device {dev} is not quarantined"
            )));
        };
        let probe = self.driver.entry("e1000_probe").unwrap();
        self.call_dom0(probe, &[dev], 50_000_000)?;
        // `register_netdev` pushes: the re-probe's netdev is the newest.
        let netdev = *self.world.kernel.registered_netdevs.last().unwrap();
        self.netdevs[dev as usize] = netdev;
        if dev == 0 {
            self.netdev = netdev;
        }
        let open = self.driver.entry("e1000_open").unwrap();
        self.call_dom0(open, &[netdev as u32], 200_000_000)?;
        self.machine.meter.count_event("device_reset");
        if self.machine.trace.enabled() {
            self.machine.trace_event(TraceEvent::DeviceReset { dev });
        }
        for d in &ep.revoked_doms {
            self.grant_zero_copy_pool(DomId(*d))?;
        }
        self.hyperdrv
            .as_mut()
            .expect("quarantine implies a hypervisor driver")
            .release_device(dev);
        self.machine.meter.count_event("quarantine_exit");
        if self.machine.trace.enabled() {
            self.machine.trace_event(TraceEvent::QuarantineExit { dev });
        }
        let report = RecoveryReport {
            dev,
            reason: ep.reason,
            quarantined_at: ep.at,
            recovered_at: self.machine.meter.now(),
            replayed: ep.replayed,
            dropped: ep.dropped,
            revoked_mappings: ep.revoked_mappings,
        };
        self.recovery_log.push(report.clone());
        Ok(report)
    }

    /// Devices currently quarantined (empty on fault-free runs and in
    /// sticky-abort mode).
    pub fn quarantined_devices(&self) -> Vec<u32> {
        self.quarantine.keys().copied().collect()
    }

    /// Arms the driver's fault-injection hook: writes `value` into the
    /// driver's `fault_arm` data word (present only in sources built by
    /// [`crate::measure::fault_injected_source`]). The next fast-path
    /// invocation of the hypervisor instance *on behalf of device
    /// `value - 1`* sees the match, disarms the word (one-shot) and
    /// executes its fault body; invocations for other devices sail
    /// past. Use [`crate::measure::FaultClass::arm_value`].
    ///
    /// # Errors
    ///
    /// [`SystemError::Build`] when the loaded driver has no `fault_arm`
    /// hook (i.e. it was built from the stock source).
    pub fn arm_driver_fault(&mut self, value: u32) -> Result<(), SystemError> {
        let addr = self.driver.data_symbol("fault_arm").ok_or_else(|| {
            SystemError::Build(
                "driver has no fault_arm hook (build with fault_injected_source)".into(),
            )
        })?;
        self.machine
            .write_u32(self.dom0, ExecMode::Guest, addr, value)
            .map_err(SystemError::Fault)
    }

    /// Completed fault → quarantine → recovery episodes, in order.
    pub fn recovery_log(&self) -> &[RecoveryReport] {
        &self.recovery_log
    }

    /// Calls a hypervisor support routine directly (the paravirtual glue
    /// uses this for buffer management, so forced upcalls are exercised —
    /// Figure 10).
    fn call_support(&mut self, name: &str, args: &[u32]) -> Result<u32, SystemError> {
        let gid = self.guest.expect("guest");
        let gspace = self.world.xen.as_ref().unwrap().domain(gid).space;
        let mut cpu = Cpu::new(gspace, ExecMode::Hypervisor);
        cpu.set_stack(UPCALL_STACK_BASE + UPCALL_STACK_PAGES * PAGE_SIZE);
        cpu.push_call_frame(&mut self.machine, args)?;
        self.world.extern_call(name, &mut self.machine, &mut cpu)?;
        Ok(cpu.reg(twin_isa::Reg::Eax))
    }

    /// Drains the deferred-upcall ring in one switch-pair — the "natural
    /// dom0 scheduling point" at the end of a burst pass. No-op in
    /// synchronous mode or on an empty ring, so the default path is
    /// untouched. Returns how many queued upcalls executed.
    ///
    /// # Errors
    ///
    /// Propagates faults from the flushed routines.
    pub fn flush_deferred_upcalls(&mut self) -> Result<usize, SystemError> {
        self.flush_deferred_upcalls_as(FlushCause::BurstEnd)
    }

    /// [`System::flush_deferred_upcalls`] with an explicit cause for the
    /// flight recorder (the cause is trace metadata only — every cause
    /// drains the same way).
    fn flush_deferred_upcalls_as(&mut self, cause: FlushCause) -> Result<usize, SystemError> {
        let World {
            kernel, xen, hyper, ..
        } = &mut self.world;
        if let (Some(hs), Some(xen)) = (hyper.as_mut(), xen.as_mut()) {
            if hs.engine.deferred() && hs.engine.depth() > 0 {
                return Ok(hs.flush_upcalls(&mut self.machine, kernel, xen, cause)?);
            }
        }
        Ok(0)
    }

    /// Programs a device's interrupt-moderation interval (`ITR`
    /// register, in [`twin_nic::ITR_UNIT_CYCLES`]-cycle units) through
    /// the MMIO window, exactly as driver code would.
    ///
    /// # Errors
    ///
    /// Propagates MMIO faults.
    pub fn set_itr(&mut self, dev: u32, itr: u32) -> Result<(), SystemError> {
        Env::mmio_write(
            &mut self.world,
            &mut self.machine,
            dev,
            twin_nic::regs::ITR,
            twin_isa::Width::Long,
            itr,
        )?;
        Ok(())
    }

    /// Current virtual time in cycles (see
    /// [`twin_machine::VirtualClock`]).
    pub fn now_cycles(&self) -> u64 {
        self.machine.meter.now()
    }

    /// Whether closed-loop `ITR` auto-tuning is active.
    pub fn itr_autotune(&self) -> bool {
        !self.itr_tuners.is_empty()
    }

    /// A device's auto-tuner (`None` when auto-tuning is off) —
    /// observability for tests and sweeps.
    pub fn itr_tuner(&self, dev: u32) -> Option<&ItrTuner> {
        self.itr_tuners.get(dev as usize)
    }

    /// Services every device's auto-tuner: at each elapsed interval
    /// window the tuner classifies the window's receive counters and
    /// proposes a one-rung `ITR` step; the system charges the retune
    /// cost to the driver (the state machine runs in the driver's
    /// interrupt context, like Linux's `e1000_set_itr`) and writes the
    /// register through the normal MMIO path. A no-op costing zero
    /// cycles when auto-tuning is off or no window has closed.
    ///
    /// # Errors
    ///
    /// Propagates MMIO faults from the register write.
    /// Ends a device's gated wait at virtual time `now` (the moment its
    /// latched cause delivers, or is otherwise consumed): a wait whose
    /// arrival rate stayed below the busy floor (fewer than
    /// [`twin_nic::BUSY_WINDOW_PACKETS`] packets per tuner window) was
    /// load-idleness — the device was gated *and quiet* — and is
    /// reported to the tuner as idle; a backlogged wait (arrivals at or
    /// above the floor) is not. This lets the tuner distinguish
    /// moderated bursty traffic from moderated overload, where the live
    /// idle feed is masked by the latched cause either way. Must run at
    /// the delivery instant — the reap pass that follows is work, not
    /// waiting, and would inflate the wait.
    fn end_gated_wait(&mut self, dev: u32, now: u64) {
        let Some(anchor) = self.gate_anchors.get_mut(dev as usize) else {
            return;
        };
        if let Some((p0, t0)) = anchor.take() {
            let arrivals = self.world.nics[dev as usize].stats().rx_packets - p0;
            let wait = now.saturating_sub(t0);
            if arrivals * AUTOTUNE_WINDOW_CYCLES < twin_nic::BUSY_WINDOW_PACKETS * wait {
                self.itr_tuners[dev as usize].note_idle(wait);
            }
        }
    }

    fn service_itr_tuners(&mut self) -> Result<(), SystemError> {
        if self.itr_tuners.is_empty() {
            return Ok(());
        }
        let now = self.machine.meter.now();
        // Fallback resolution for waits that ended without a delivery
        // (a polled reap consumed the cause): the wait ends here.
        for dev in 0..self.itr_tuners.len() {
            if self.gate_anchors[dev].is_some() && !self.moderated_pending.contains(&(dev as u32)) {
                self.end_gated_wait(dev as u32, now);
            }
        }
        for dev in 0..self.itr_tuners.len() {
            let old = self.world.nics[dev].itr();
            let retuned = self.itr_tuners[dev].service(now, &self.world.nics[dev]);
            if let Some(itr) = retuned {
                let m = &mut self.machine;
                m.meter.charge_to(CostDomain::Driver, m.cost.itr_retune);
                m.meter.count_event("itr_retune");
                self.set_itr(dev as u32, itr)?;
                if self.machine.trace.enabled() {
                    let regime = match self.itr_tuners[dev].class() {
                        twin_nic::LatencyClass::LowestLatency => "lowest_latency",
                        twin_nic::LatencyClass::LowLatency => "low_latency",
                        twin_nic::LatencyClass::BulkLatency => "bulk_latency",
                    };
                    self.machine.trace_event(TraceEvent::ItrRetune {
                        dev: dev as u32,
                        old,
                        new: itr,
                        regime,
                    });
                }
            }
        }
        Ok(())
    }

    /// Applies every scheduler transition due at `now` — pure
    /// bookkeeping, no cycles charged — emitting the `vcpu_run` /
    /// `vcpu_sleep` events. Returns whether any vCPU woke (the caller
    /// then releases deferred backlog). A no-op without the scheduler
    /// model.
    fn advance_sched(&mut self, now: u64) -> bool {
        let transitions = match self.sched.as_mut() {
            Some(s) => s.advance(now),
            None => return false,
        };
        let mut woke = false;
        for tr in &transitions {
            woke |= tr.now_running;
            self.machine.meter.count_event(if tr.now_running {
                "vcpu_run"
            } else {
                "vcpu_sleep"
            });
            if self.machine.trace.enabled() {
                let cpu = self
                    .sched
                    .as_ref()
                    .and_then(|s| s.cpu_of(tr.guest))
                    .unwrap_or(0);
                self.machine.trace_event(if tr.now_running {
                    TraceEvent::VcpuRun {
                        guest: tr.guest,
                        cpu,
                    }
                } else {
                    TraceEvent::VcpuSleep {
                        guest: tr.guest,
                        cpu,
                    }
                });
            }
        }
        woke
    }

    /// Services every virtual timer that is due *now*, in
    /// flush-before-IRQ order: (1) the deadline-driven upcall flush, so
    /// queued frees/unmaps reach dom0 before interrupt work piles more
    /// behind them; (2) moderated interrupt deliveries whose ITR window
    /// has opened; (3) — only when `fire_kernel_timers` — due kernel
    /// timers (the e1000 watchdogs), which fire from idle time, never
    /// from the datapath, preserving the pre-clock watchdog semantics
    /// bit-exactly.
    ///
    /// A no-op costing zero cycles when nothing is armed or due, so the
    /// default configuration (ITR 0, no deadline) stays cycle-exact.
    ///
    /// # Errors
    ///
    /// Propagates faults from flushed upcalls, interrupt handlers and
    /// timer handlers.
    pub fn service_virtual_timers(&mut self, fire_kernel_timers: bool) -> Result<(), SystemError> {
        let now = self.machine.meter.now();
        let sched_woke = self.advance_sched(now);
        if self
            .world
            .hyper
            .as_ref()
            .is_some_and(|h| h.engine.flush_due(now))
        {
            self.flush_deferred_upcalls_as(FlushCause::Deadline)?;
        }
        if !self.moderated_pending.is_empty() {
            // Entries whose cause was acked by another path (an allowed
            // delivery, a polled reap) have nothing left to deliver.
            self.moderated_pending
                .retain(|d| self.world.nics[*d as usize].irq_asserted());
            let now = self.machine.meter.now();
            let ready: Vec<u32> = self
                .moderated_pending
                .iter()
                .copied()
                .filter(|d| self.world.nics[*d as usize].irq_deliverable(now))
                .collect();
            if !ready.is_empty() {
                self.moderated_pending.retain(|d| !ready.contains(d));
                for &dev in &ready {
                    self.world.nics[dev as usize].note_irq_delivered(now);
                    self.end_gated_wait(dev, now);
                }
                if self.napi_weight > 0 {
                    // A moderated delivery on a NAPI system is still an
                    // ack-and-mask: enter poll mode and drain budgeted.
                    for &dev in &ready {
                        self.napi_enter(dev)?;
                    }
                    while self.napi_work_pending() {
                        if self.napi_poll_pass()? == 0 {
                            break;
                        }
                    }
                } else {
                    self.rx_pass(&ready)?;
                }
                self.flush_deferred_upcalls()?;
                self.sample_rx_completions();
            }
        }
        // A wakeup releases the guest's deferred backlog: the frames
        // the DRR flush skipped while it slept deliver now, at the
        // scheduler edge — the deferral bound the wakeup timer
        // provides.
        if sched_woke {
            let backlog = self.world.xen.as_ref().is_some_and(|x| {
                x.domains.iter().any(|d| {
                    !d.rx_queue.is_empty()
                        && self.sched.as_ref().is_some_and(|s| s.is_running(d.id.0))
                })
            });
            if backlog {
                self.flush_guest_rx_queues()?;
                self.sample_rx_completions();
            }
        }
        // After moderated deliveries, so an interrupt delivered at this
        // service point counts into the window that just closed.
        self.service_itr_tuners()?;
        if fire_kernel_timers {
            let now = self.machine.meter.now();
            let due = self.world.kernel.take_due_timers(now);
            for t in due {
                if self.machine.trace.enabled() {
                    self.machine
                        .trace_event(TraceEvent::TimerFire { data: t.data });
                }
                self.machine.meter.push_domain(CostDomain::Driver);
                let r = self.call_dom0(t.handler, &[t.data as u32], 5_000_000);
                self.machine.meter.pop_domain();
                r?;
            }
        }
        Ok(())
    }

    /// The earliest armed virtual-timer event: kernel wheel, upcall
    /// flush deadline, or a moderated device's window opening.
    fn next_virtual_event(&self) -> Option<u64> {
        let mut candidates: Vec<u64> = Vec::new();
        if let Some(t) = self.world.kernel.timers.next_due() {
            candidates.push(t);
        }
        if let Some(t) = self
            .world
            .hyper
            .as_ref()
            .and_then(|h| h.engine.flush_due_at())
        {
            candidates.push(t);
        }
        for &d in &self.moderated_pending {
            if let Some(t) = self.world.nics[d as usize].irq_ready_at() {
                candidates.push(t);
            }
        }
        // Auto-tune interval windows are virtual timers too: idle
        // stepping wakes at each boundary so the knob decays toward
        // latency mode on schedule.
        for t in &self.itr_tuners {
            candidates.push(t.next_window_at());
        }
        // Scheduler run/sleep edges: idle stepping lands exactly on the
        // next wakeup so deferred backlog never waits past it.
        if let Some(t) = self.sched.as_ref().and_then(|s| s.next_event()) {
            candidates.push(t);
        }
        candidates.into_iter().min()
    }

    /// Advances virtual time by `cycles` of idle (no domain is charged),
    /// firing every virtual timer — kernel timers, the upcall-flush
    /// deadline, moderated interrupt deliveries — at its due instant
    /// along the way (event-driven stepping, not polling).
    ///
    /// # Errors
    ///
    /// Propagates faults from fired timers and handlers.
    pub fn run_idle(&mut self, cycles: u64) -> Result<(), SystemError> {
        let end = self.machine.meter.now().saturating_add(cycles);
        loop {
            self.service_virtual_timers(true)?;
            let now = self.machine.meter.now();
            if now >= end {
                break;
            }
            let step = match self.next_virtual_event() {
                // Sleep exactly to the next due event (or the horizon).
                Some(t) if t > now => (t - now).min(end - now),
                // An event at or before `now` that service could not
                // clear cannot progress by waiting: skip to the horizon.
                _ => end - now,
            };
            self.machine.meter.advance_idle(step);
            // The tuners' load signal: true idleness. A device whose
            // latched cause is waiting out its own moderation window is
            // backlogged, not idle — its wait is not reported (at
            // sustained load the schedule runs ahead between cheap
            // latching injections, and counting those waits would
            // demote a converged bulk setting mid-overload). The
            // idleness of a *lightly* loaded gated device still shows:
            // its cause clears at each window-open delivery and the
            // remaining inter-burst gap is reported.
            // A sleeping guest's backlog is deferred work, not light
            // load: while it waits for its wakeup the system is
            // backlogged, and reporting the wait as idleness would
            // decay a converged bulk ITR setting every sleep interval.
            let sleep_backlog = self.sched.as_ref().is_some_and(|s| {
                self.world.xen.as_ref().is_some_and(|x| {
                    x.domains
                        .iter()
                        .any(|d| !d.rx_queue.is_empty() && !s.is_running(d.id.0))
                })
            });
            for (dev, t) in self.itr_tuners.iter_mut().enumerate() {
                if !self.world.nics[dev].irq_asserted() && !sleep_backlog {
                    t.note_idle(step);
                }
            }
        }
        self.service_virtual_timers(true)
    }

    /// Bounds the in-flight arrival-stamp map: frames that never reach a
    /// delivery log (demux misses, colliding `(flow, seq)` keys) would
    /// otherwise leak an entry forever. Genuine in-flight frames are
    /// bounded by the RX rings, so anything beyond one ring's worth per
    /// device is dead — evict oldest-first.
    fn prune_rx_inflight(&mut self) {
        // With a demux queue cap the backlog legitimately extends past
        // the rings: capped queues hold live frames too.
        let cap = 128 * self.world.nics.len()
            + self.rx_queue_cap.unwrap_or(0)
                * self.world.xen.as_ref().map_or(0, |x| x.domains.len());
        while self.rx_inflight.len() > cap {
            let oldest = self
                .rx_inflight
                .iter()
                .min_by_key(|(_, stamp)| **stamp)
                .map(|(k, _)| *k)
                .expect("non-empty map");
            self.rx_inflight.remove(&oldest);
        }
    }

    /// Matches newly delivered frames against their arrival stamps and
    /// records cycles-to-delivery samples (the latency side of the
    /// moderation sweep). Pure bookkeeping — no cycles are charged.
    fn sample_rx_completions(&mut self) {
        if self.rx_inflight.is_empty() {
            return; // nothing tracked: skip the delivery-log scans
        }
        let now = self.machine.meter.now();
        match self.config {
            Config::NativeLinux | Config::XenDom0 => {
                let cur = *self.rx_sample_cursors.get(&u32::MAX).unwrap_or(&0);
                let new: Vec<(u32, u64)> = self
                    .world
                    .kernel
                    .rx_delivered
                    .iter()
                    .skip(cur)
                    .map(|f| (f.flow, f.seq))
                    .collect();
                for key in &new {
                    if let Some(t) = self.rx_inflight.remove(key) {
                        self.rx_latency.push(now.saturating_sub(t));
                    }
                }
                self.rx_sample_cursors.insert(u32::MAX, cur + new.len());
            }
            Config::XenGuest | Config::TwinDrivers => {
                let Some(ndoms) = self.world.xen.as_ref().map(|x| x.domains.len()) else {
                    return;
                };
                for i in 0..ndoms {
                    let key = i as u32;
                    let cur = *self.rx_sample_cursors.get(&key).unwrap_or(&0);
                    let new: Vec<(u32, u64)> = self.world.xen.as_ref().unwrap().domains[i]
                        .rx_delivered
                        .iter()
                        .skip(cur)
                        .map(|f| (f.flow, f.seq))
                        .collect();
                    for k in &new {
                        if let Some(t) = self.rx_inflight.remove(k) {
                            let sample = now.saturating_sub(t);
                            self.rx_latency.push(sample);
                            if let Some(per_guest) = self.guest_latency.as_mut() {
                                per_guest
                                    .entry(key)
                                    .or_insert_with(|| {
                                        crate::measure::SampleReservoir::new(
                                            crate::measure::RX_LATENCY_RESERVOIR,
                                        )
                                    })
                                    .push(sample);
                            }
                        }
                    }
                    self.rx_sample_cursors.insert(key, cur + new.len());
                }
            }
        }
    }

    /// Cycles-from-arrival-to-delivery samples for frames completed in
    /// the current measurement window (a bounded uniform reservoir; see
    /// [`crate::measure::SampleReservoir`]).
    pub fn rx_latency_samples(&self) -> &[u64] {
        self.rx_latency.samples()
    }

    /// Cycles-to-completion samples for every upcall since the last
    /// measurement reset (empty when no hypervisor support is present).
    pub fn upcall_latency_samples(&self) -> &[u64] {
        self.world
            .hyper
            .as_ref()
            .map(|h| h.engine.latency_samples())
            .unwrap_or(&[])
    }

    /// Resets the cycle meter and both latency windows together (the
    /// start of every measurement interval). The virtual clock keeps
    /// running — it is monotonic by design.
    pub(crate) fn reset_measurement(&mut self) {
        self.machine.meter.reset();
        if let Some(h) = self.world.hyper.as_mut() {
            h.engine.clear_latency();
        }
        self.rx_latency.clear();
        if let Some(per_guest) = self.guest_latency.as_mut() {
            for r in per_guest.values_mut() {
                r.clear();
            }
        }
    }

    /// Enables per-guest arrival-to-delivery latency reservoirs
    /// (TwinDrivers/XenGuest paths): after this, each delivered frame's
    /// latency is also recorded against its destination domain — the
    /// fairness side of the overload sweeps, where a victim guest's p99
    /// must stay bounded while a neighbour floods.
    pub fn track_guest_latency(&mut self) {
        if self.guest_latency.is_none() {
            self.guest_latency = Some(BTreeMap::new());
        }
    }

    /// Latency samples recorded for one domain (empty unless
    /// [`System::track_guest_latency`] was enabled).
    pub fn guest_rx_latency(&self, gid: DomId) -> &[u64] {
        self.guest_latency
            .as_ref()
            .and_then(|m| m.get(&gid.0))
            .map(|r| r.samples())
            .unwrap_or(&[])
    }

    /// Flows the internal traffic generators cycle over: the paper's
    /// netperf runs several concurrent streams to fill five NICs, so
    /// generated traffic models a small set of flows — enough for
    /// [`ShardPolicy::FlowHash`] to spread across every device (flow is
    /// bookkeeping only; costs and single-NIC behaviour are unchanged).
    const GEN_FLOWS: u64 = 8;

    fn next_tx_frame(&mut self) -> Frame {
        let src = match self.config {
            Config::XenGuest | Config::TwinDrivers => MacAddr::for_guest(1),
            _ => MacAddr::for_guest(0),
        };
        let f = Frame {
            dst: peer_mac(),
            src,
            ethertype: EtherType::Ipv4,
            payload_len: MTU,
            flow: 1 + (self.seq % Self::GEN_FLOWS) as u32,
            seq: self.seq,
        };
        self.seq += 1;
        f
    }

    /// Scan base for [`crate::measure::balanced_flow_set`], the
    /// device-balanced flow generator the autotune and affinity
    /// harnesses pace with. (The classic generator's flows 101–108
    /// split 2/2/1/3 across four NICs under [`ShardPolicy::FlowHash`] —
    /// a device with a single thin flow sees a genuinely lighter regime
    /// than its siblings, which is a property of the traffic, not of
    /// the system under test. Scanning from 203 yields `203..=210`: two
    /// flows per device at four NICs.)
    pub const BALANCED_FLOW_BASE: u32 = 203;

    fn next_rx_frame(&mut self) -> Frame {
        let dst = match self.config {
            Config::XenGuest | Config::TwinDrivers => MacAddr::for_guest(1),
            _ => MacAddr::for_guest(0),
        };
        let f = Frame {
            dst,
            src: peer_mac(),
            ethertype: EtherType::Ipv4,
            payload_len: MTU,
            flow: 101 + (self.seq % Self::GEN_FLOWS) as u32,
            seq: self.seq,
        };
        self.seq += 1;
        f
    }

    /// Transmits one MTU-sized packet along the configuration's full
    /// path — a burst of one through [`System::transmit_burst`].
    ///
    /// # Errors
    ///
    /// Propagates faults; [`SystemError::DriverAborted`] if the
    /// hypervisor driver is dead.
    pub fn transmit_one(&mut self) -> Result<(), SystemError> {
        self.transmit_burst(1).map(|_| ())
    }

    /// Transmits a burst of `n` MTU-sized packets along the
    /// configuration's full path: one notification/hypercall, one driver
    /// invocation, one `TDT` doorbell per pipeline pass of up to
    /// [`MAX_BURST`] packets (larger bursts split into several passes).
    /// Stack costs amortise across the burst (TSO/GSO-style);
    /// per-packet work (copies, grants, descriptors) does not.
    ///
    /// Returns how many packets reached the driver's ring (less than `n`
    /// only under ring pressure; the rest are dropped and their buffers
    /// freed, like a queue-discipline drop).
    ///
    /// # Errors
    ///
    /// See [`System::transmit_one`].
    pub fn transmit_burst(&mut self, n: usize) -> Result<usize, SystemError> {
        // Catch up anything already due (deadline flush, opened
        // moderation windows) — a zero-cost no-op when neither is armed.
        self.service_virtual_timers(false)?;
        let mut total = 0;
        'bursts: while total < n {
            let chunk = (n - total).min(MAX_BURST);
            let frames: Vec<Frame> = (0..chunk).map(|_| self.next_tx_frame()).collect();
            // Shard the chunk across NICs; one NIC receives the whole
            // chunk under Static/RoundRobin, FlowHash may split it.
            for (dev, group) in self.shard_frames(frames) {
                let want = group.len();
                let sent = match self.config {
                    Config::NativeLinux => self.tx_dom0_style(&group, false, dev),
                    Config::XenDom0 => self.tx_dom0_style(&group, true, dev),
                    Config::XenGuest => self.tx_baseline_guest(&group, dev),
                    Config::TwinDrivers => self.tx_twin(&group, dev),
                }?;
                total += sent;
                if sent < want {
                    break 'bursts; // ring pressure: the shortfall was dropped
                }
            }
            // End of one transmit pass: a natural dom0 scheduling point.
            self.flush_deferred_upcalls()?;
        }
        // The ring-pressure break skips the in-loop flush.
        self.flush_deferred_upcalls()?;
        Ok(total)
    }

    /// Frees a set of sk_buffs back to their pools (error-path cleanup
    /// and queue-discipline drops).
    fn free_skbs(&mut self, skbs: &[SkBuff]) -> Result<(), SystemError> {
        for skb in skbs {
            self.world.kernel.free_skb(&self.machine, *skb)?;
        }
        Ok(())
    }

    /// Stack cost of the `i`-th packet of a transmit burst: the first
    /// pays the full per-wakeup price, the rest the batched marginal.
    fn tx_stack_cost(&self, i: usize) -> u64 {
        if i == 0 {
            self.machine.cost.tcp_tx_per_packet
        } else {
            self.machine.cost.tcp_tx_batch_marginal
        }
    }

    /// Hands a prepared burst of sk_buffs to a driver instance. Each
    /// driver invocation is one lock acquisition and one doorbell; when
    /// the ring cannot hold the whole burst (fragmented packets take two
    /// descriptors each) the kick drains it synchronously and the
    /// remainder goes in a follow-up invocation, so large bursts cost a
    /// few doorbells instead of failing. Returns how many packets the
    /// ring accepted; unaccepted skbs are freed here.
    fn drive_tx(
        &mut self,
        skbs: &[SkBuff],
        hypervisor: bool,
        dev: u32,
    ) -> Result<usize, SystemError> {
        let mut done = 0;
        while done < skbs.len() {
            let accepted = match self.drive_tx_once(&skbs[done..], hypervisor, dev) {
                Ok(a) => a,
                Err(e) => {
                    // Return the in-flight remainder to the pools before
                    // surfacing the fault, or the pool drains for good.
                    self.free_skbs(&skbs[done..])?;
                    return Err(e);
                }
            };
            if accepted == 0 {
                break;
            }
            done += accepted;
        }
        self.free_skbs(&skbs[done..])?;
        Ok(done)
    }

    /// One driver invocation: `e1000_xmit_frame` for a burst of one (the
    /// exact per-packet path), `e1000_xmit_batch` otherwise. Multi-NIC
    /// systems go through the `*_dev` entries, which select device
    /// `dev`'s adapter slot before the shared body runs.
    fn drive_tx_once(
        &mut self,
        skbs: &[SkBuff],
        hypervisor: bool,
        dev: u32,
    ) -> Result<usize, SystemError> {
        let multi = self.multi_nic();
        let sent = if let [skb] = skbs {
            let args = if multi {
                vec![skb.0 as u32, self.netdev_of(dev) as u32, dev]
            } else {
                vec![skb.0 as u32, self.netdev as u32]
            };
            let entry = if multi {
                "e1000_xmit_frame_dev"
            } else {
                "e1000_xmit_frame"
            };
            self.machine.meter.push_domain(CostDomain::Driver);
            let r = if hypervisor {
                let xmit = self.hyperdrv.as_ref().unwrap().entry(entry).unwrap();
                self.call_hyperdrv(xmit, &args, 2_000_000, dev)
            } else {
                let xmit = self.driver.entry(entry).unwrap();
                self.call_dom0(xmit, &args, 2_000_000)
            };
            self.machine.meter.pop_domain();
            usize::from(r? == 0)
        } else {
            for (i, skb) in skbs.iter().enumerate() {
                self.machine.write_u32(
                    self.dom0,
                    ExecMode::Guest,
                    self.tx_batch_buf + i as u64 * 4,
                    skb.0 as u32,
                )?;
            }
            let args = if multi {
                vec![
                    self.tx_batch_buf as u32,
                    skbs.len() as u32,
                    self.netdev_of(dev) as u32,
                    dev,
                ]
            } else {
                vec![
                    self.tx_batch_buf as u32,
                    skbs.len() as u32,
                    self.netdev as u32,
                ]
            };
            let entry = if multi {
                "e1000_xmit_batch_dev"
            } else {
                "e1000_xmit_batch"
            };
            let budget = 2_000_000 * skbs.len() as u64;
            self.machine.meter.push_domain(CostDomain::Driver);
            let r = if hypervisor {
                let hyp = self.hyperdrv.as_ref().unwrap();
                let xmit = if multi {
                    hyp.xmit_batch_dev_entry()
                } else {
                    hyp.xmit_batch_entry()
                }
                .unwrap();
                self.call_hyperdrv(xmit, &args, budget, dev)
            } else {
                let xmit = self.driver.entry(entry).unwrap();
                self.call_dom0(xmit, &args, budget)
            };
            self.machine.meter.pop_domain();
            r? as usize
        };
        Ok(sent)
    }

    /// Native Linux / dom0 transmit: stack → driver, burst-wise.
    fn tx_dom0_style(
        &mut self,
        frames: &[Frame],
        on_xen: bool,
        dev: u32,
    ) -> Result<usize, SystemError> {
        let mut skbs = Vec::with_capacity(frames.len());
        for (i, frame) in frames.iter().enumerate() {
            {
                // Socket + TCP/IP transmit processing.
                let c = self.tx_stack_cost(i);
                let m = &mut self.machine;
                m.meter.charge_to(CostDomain::Dom0, c);
                m.meter.charge_to(CostDomain::Dom0, m.cost.skb_alloc);
                if on_xen {
                    // Paravirtualisation tax (pte maintenance, event checks).
                    m.meter
                        .charge_to(CostDomain::Xen, m.cost.paravirt_tax_per_packet);
                }
            }
            let skb = match self.world.kernel.pool.alloc(&mut self.machine, self.dom0) {
                Some(skb) => skb,
                None => {
                    self.free_skbs(&skbs)?;
                    return Err(SystemError::Build("dom0 skb pool empty".into()));
                }
            };
            skbs.push(skb);
            if let Err(e) = skb.fill_from_frame(&mut self.machine, self.dom0, frame) {
                self.free_skbs(&skbs)?;
                return Err(e.into());
            }
        }
        self.drive_tx(&skbs, false, dev)
    }

    /// Baseline Xen guest transmit (paper §2): netfront → I/O channel →
    /// netback → bridge → dom0 driver. netfront produces the whole burst
    /// of requests and notifies **once**; grants, copies and backend
    /// bookkeeping stay per-packet.
    fn tx_baseline_guest(&mut self, frames: &[Frame], dev: u32) -> Result<usize, SystemError> {
        let gid = self.guest.expect("guest");
        for i in 0..frames.len() {
            // Guest stack + netfront request production.
            let c = self.tx_stack_cost(i);
            let m = &mut self.machine;
            m.meter.charge_to(CostDomain::DomU, c);
            m.meter
                .charge_to(CostDomain::DomU, m.cost.netfront_per_packet);
        }
        let xen = self.world.xen.as_mut().expect("xen");
        // One notify + one switch into the driver domain per burst.
        xen.hypercall(&mut self.machine);
        xen.send_virq(&mut self.machine, DomId::DOM0, 1);
        xen.switch_to(&mut self.machine, DomId::DOM0);
        // netback: map each granted guest page, build skbs, bridge them.
        // In zero-copy mode the guest's TX pool is already mapped: a
        // cache hit replaces the per-packet map (and the unmap below);
        // fallback frames keep the baseline map/unmap pair.
        let mut zc_occ: BTreeMap<u32, usize> = BTreeMap::new();
        let mut zc_landed = 0usize;
        let mut skbs = Vec::with_capacity(frames.len());
        for frame in frames {
            let zc_hit = if self.zero_copy {
                let slot = *zc_occ.get(&frame.flow).unwrap_or(&0);
                let hit = self.zc_access(gid, frame.flow, true, slot, frame.len(), dev);
                if hit {
                    *zc_occ.entry(frame.flow).or_insert(0) += 1;
                    zc_landed += 1;
                }
                hit
            } else {
                false
            };
            if !zc_hit {
                let xen = self.world.xen.as_mut().unwrap();
                xen.grant_map_dev(&mut self.machine, dev);
            }
            {
                let m = &mut self.machine;
                m.meter
                    .charge_to(CostDomain::Dom0, m.cost.netfront_per_packet);
                m.meter
                    .charge_to(CostDomain::Dom0, m.cost.bridge_per_packet);
                m.meter.charge_to(CostDomain::Dom0, m.cost.backend_tx_extra);
            }
            let skb = match self.world.kernel.pool.alloc(&mut self.machine, self.dom0) {
                Some(skb) => skb,
                None => {
                    self.free_skbs(&skbs)?;
                    return Err(SystemError::Build("dom0 skb pool empty".into()));
                }
            };
            skbs.push(skb);
            if let Err(e) = skb.fill_from_frame(&mut self.machine, self.dom0, frame) {
                self.free_skbs(&skbs)?;
                return Err(e.into());
            }
        }
        let sent = self.drive_tx(&skbs, false, dev)?;
        // Unmap the per-packet (non-pool) mappings, produce the
        // responses, one notification, switch back. Pool pages stay
        // mapped — that is the point of zero-copy mode.
        let xen = self.world.xen.as_mut().unwrap();
        for _ in 0..frames.len() - zc_landed {
            xen.grant_unmap_dev(&mut self.machine, dev);
        }
        xen.send_virq(&mut self.machine, gid, 2);
        xen.switch_to(&mut self.machine, gid);
        Ok(sent)
    }

    /// In deferred mode with the allocator forced onto the upcall path,
    /// the paravirtual TX glue batches its allocation requests: it queues
    /// one `netdev_alloc_skb` per frame and suspends the burst **once**,
    /// so one switch-pair returns every buffer (the continuation ids
    /// match completions to frames). Returns `None` when the per-call
    /// path should run instead (sync mode, or the allocator is native).
    fn alloc_burst_deferred(
        &mut self,
        n: usize,
        netdev: u32,
    ) -> Result<Option<Vec<u32>>, SystemError> {
        let World {
            kernel, xen, hyper, ..
        } = &mut self.world;
        let (Some(hs), Some(xen)) = (hyper.as_mut(), xen.as_mut()) else {
            return Ok(None);
        };
        if !hs.engine.deferred() || !hs.upcall_routines.contains("netdev_alloc_skb") {
            return Ok(None);
        }
        // One suspension per ring's worth of requests: completions are
        // consumed right after the flush that posts them (they do not
        // survive a later flush), so the glue suspends whenever the ring
        // fills and once more at the end. With the default capacity a
        // whole burst is a single suspension.
        fn resume(
            hs: &mut HyperSupport,
            kernel: &mut Dom0Kernel,
            xen: &mut Xen,
            machine: &mut Machine,
            pending: &mut Vec<u64>,
            ptrs: &mut Vec<u32>,
        ) -> Result<(), SystemError> {
            hs.engine.stats.continuations += 1;
            machine.meter.count_event("upcall_continuation");
            hs.flush_upcalls(machine, kernel, xen, FlushCause::Continuation)?;
            for id in pending.drain(..) {
                let done = hs
                    .engine
                    .take_completion(id)
                    .expect("flush posts every allocation completion");
                ptrs.push(done.ret);
            }
            Ok(())
        }
        let mut ptrs = Vec::with_capacity(n);
        let mut pending: Vec<u64> = Vec::with_capacity(n);
        for _ in 0..n {
            if hs.engine.is_full() {
                resume(hs, kernel, xen, &mut self.machine, &mut pending, &mut ptrs)?;
            }
            let m = &mut self.machine;
            m.meter.charge_to(CostDomain::Xen, m.cost.twin_glue_tx);
            pending.push(hs.enqueue_upcall(
                "netdev_alloc_skb",
                vec![netdev, 2048],
                m,
                kernel,
                xen,
            )?);
        }
        resume(hs, kernel, xen, &mut self.machine, &mut pending, &mut ptrs)?;
        Ok(Some(ptrs))
    }

    /// TwinDrivers transmit (paper §5.3): paravirtual driver hypercall →
    /// hypervisor glue (dom0 skb + guest-page fragment per packet) →
    /// hypervisor driver instance, all without leaving the guest
    /// context. A burst pays **one** hypercall and one driver
    /// invocation/doorbell.
    fn tx_twin(&mut self, frames: &[Frame], dev: u32) -> Result<usize, SystemError> {
        let gid = self.guest.expect("guest");
        let mut zc_occ: BTreeMap<u32, usize> = BTreeMap::new();
        for i in 0..frames.len() {
            let c = self.tx_stack_cost(i);
            let m = &mut self.machine;
            // Guest stack + paravirtual driver.
            m.meter.charge_to(CostDomain::DomU, c);
            m.meter.charge_to(CostDomain::DomU, m.cost.pv_driver_guest);
        }
        let xen = self.world.xen.as_mut().expect("xen");
        xen.hypercall(&mut self.machine);
        let netdev = self.netdev_of(dev) as u32;
        let batched = self.alloc_burst_deferred(frames.len(), netdev)?;
        let mut skbs = Vec::with_capacity(frames.len());
        for (fi, frame) in frames.iter().enumerate() {
            let header_copy = self.header_copy.min(frame.len());
            // Acquire a pre-allocated dom0 sk_buff: from the batched
            // continuation's completions, or through the (possibly
            // upcalled) support routine.
            let raw = match &batched {
                Some(ptrs) => Ok(ptrs[fi]),
                None => {
                    let m = &mut self.machine;
                    m.meter.charge_to(CostDomain::Xen, m.cost.twin_glue_tx);
                    self.call_support("netdev_alloc_skb", &[netdev, 2048])
                }
            };
            let skb = match raw {
                Ok(v) if v != 0 => SkBuff(v as u64),
                Ok(_) => {
                    self.free_skbs(&skbs)?;
                    self.free_batched_tail(&batched, fi + 1)?;
                    return Err(SystemError::Build("hypervisor skb pool empty".into()));
                }
                Err(e) => {
                    self.free_skbs(&skbs)?;
                    self.free_batched_tail(&batched, fi + 1)?;
                    return Err(e);
                }
            };
            skbs.push(skb);
            // Copy the packet header into the sk_buff and chain the rest
            // of the guest packet as a page fragment. With a warm
            // zero-copy pool the header lives in an already-mapped pool
            // page, so even the header copy collapses to the cached
            // grant access; fallback frames bounce through the copy.
            let zc_hit = if self.zero_copy {
                let slot = *zc_occ.get(&frame.flow).unwrap_or(&0);
                let hit = self.zc_access(gid, frame.flow, true, slot, frame.len(), dev);
                if hit {
                    *zc_occ.entry(frame.flow).or_insert(0) += 1;
                }
                hit
            } else {
                false
            };
            if !zc_hit {
                {
                    let m = &mut self.machine;
                    let c = m.cost.copy_cycles(header_copy as u64);
                    m.meter.charge_to(CostDomain::Xen, c);
                }
                if let Some(xen) = self.world.xen.as_mut() {
                    xen.note_grant_copy(Some(dev));
                }
            }
            let filled = skb
                .fill_from_frame(&mut self.machine, self.dom0, frame)
                .and_then(|()| skb.set_len(&mut self.machine, self.dom0, header_copy))
                .and_then(|()| {
                    skb.set_frag(
                        &mut self.machine,
                        self.dom0,
                        self.guest_tx_frag,
                        frame.len() - header_copy,
                    )
                });
            if let Err(e) = filled {
                self.free_skbs(&skbs)?;
                self.free_batched_tail(&batched, fi + 1)?;
                return Err(e.into());
            }
        }
        self.drive_tx(&skbs, true, dev)
    }

    /// Error-path cleanup for the batched allocation continuation: frees
    /// the buffers already allocated up front but not yet wrapped into
    /// `skbs` when a mid-burst failure aborts the glue loop, so the
    /// failure cannot drain the pool.
    fn free_batched_tail(
        &mut self,
        batched: &Option<Vec<u32>>,
        next: usize,
    ) -> Result<(), SystemError> {
        if let Some(ptrs) = batched {
            let tail: Vec<SkBuff> = ptrs[next.min(ptrs.len())..]
                .iter()
                .filter(|p| **p != 0)
                .map(|p| SkBuff(*p as u64))
                .collect();
            self.free_skbs(&tail)?;
        }
        Ok(())
    }

    /// Receives one MTU-sized packet along the configuration's full path
    /// (wire → NIC → interrupt → stack/guest) — a burst of one through
    /// [`System::receive_burst`].
    ///
    /// # Errors
    ///
    /// [`SystemError::RxRingFull`] if the driver has not replenished
    /// buffers; otherwise propagates faults.
    pub fn receive_one(&mut self) -> Result<(), SystemError> {
        let frame = self.next_rx_frame();
        self.receive_frame(&frame)
    }

    /// Injects an arbitrary frame from the wire and runs the
    /// configuration's receive path (used for multi-guest demultiplexing
    /// experiments).
    ///
    /// # Errors
    ///
    /// See [`System::receive_one`].
    pub fn receive_frame(&mut self, frame: &Frame) -> Result<(), SystemError> {
        self.receive_burst(std::slice::from_ref(frame)).map(|_| ())
    }

    /// Injects a burst of frames from the wire and runs the
    /// configuration's receive path with **one coalesced interrupt** per
    /// hardware pass: the NIC fills as many RX descriptors as it has
    /// buffers, asserts `RXT0` once, and a single handler pass reaps
    /// them all, fanning the batch out to every destination guest in one
    /// demux sweep (one virtual interrupt per guest per pass).
    ///
    /// Bursts larger than the posted buffers split into multiple
    /// hardware passes (each replenishes the ring), so arbitrarily large
    /// bursts still complete. Returns the number of frames delivered.
    ///
    /// # Errors
    ///
    /// [`SystemError::RxRingFull`] if the ring accepts nothing at all;
    /// otherwise propagates faults.
    pub fn receive_burst(&mut self, frames: &[Frame]) -> Result<usize, SystemError> {
        self.receive_burst_arriving(frames, None)
    }

    /// [`System::receive_burst`] with an explicit arrival stamp: when
    /// `arrival` is `Some(t)`, in-flight frames are stamped with the
    /// *scheduled* wire-arrival time `t` instead of the current virtual
    /// time, so an overloaded system's processing backlog shows up as
    /// completion latency exactly like a real receive queue. `None`
    /// stamps at the moment of delivery (the default path).
    fn receive_burst_arriving(
        &mut self,
        frames: &[Frame],
        arrival: Option<u64>,
    ) -> Result<usize, SystemError> {
        if frames.is_empty() {
            return Ok(0);
        }
        // Catch up anything already due (deadline flush before IRQ
        // work) — a zero-cost no-op when neither knob is armed.
        self.service_virtual_timers(false)?;
        // Arrival-stamp bookkeeping is only kept when someone can read
        // it back: an explicit arrival stamp (a moderated measurement)
        // or an armed time knob. The default path allocates nothing.
        let track = arrival.is_some()
            || self.world.nics.iter().any(|n| n.itr() != 0)
            || !self.itr_tuners.is_empty()
            || self
                .world
                .hyper
                .as_ref()
                .is_some_and(|h| h.engine.flush_deadline().is_some());
        // The "wire side" of sharding: the switch sprays frames across
        // the NICs per policy (all to NIC 0 in the degenerate case).
        let mut incoming = frames.to_vec();
        self.admit_rx_frames(&mut incoming);
        if incoming.is_empty() {
            return Ok(0); // whole burst early-dropped at the watermark
        }
        let napi = self.napi_weight > 0;
        let mut groups = self.shard_frames(incoming);
        let mut done = 0;
        loop {
            // One hardware pass: every NIC with pending frames fills as
            // many descriptors as it has buffers and latches one
            // coalesced interrupt. A device inside a closed ITR window
            // keeps its cause latched instead of joining the software
            // pass; the virtual moderation timer delivers it later.
            let mut pass_devs: Vec<u32> = Vec::new();
            let mut gated_wedged: Vec<u32> = Vec::new();
            for (dev, pending) in groups.iter_mut() {
                if pending.is_empty() {
                    continue;
                }
                // Live recovery happens *before* the hardware pass: the
                // reset reconstructs the rings, so frames posted first
                // would be wiped with the corrupted slot — recovering
                // here means only the aborted burst is ever lost.
                if self.fault_recovery
                    && self
                        .hyperdrv
                        .as_ref()
                        .is_some_and(|h| h.is_quarantined(*dev))
                {
                    self.recover_device(*dev)?;
                }
                let accepted =
                    self.world.nics[*dev as usize].deliver_batch(&mut self.machine.phys, pending);
                if accepted > 0 {
                    if track {
                        let stamp = arrival.unwrap_or_else(|| self.machine.meter.now());
                        for f in &pending[..accepted] {
                            self.rx_inflight.insert((f.flow, f.seq), stamp);
                        }
                    }
                    // Flow→device attribution for grant accounting: the
                    // demux flush no longer knows which NIC carried a
                    // frame, so remember it here (bookkeeping only; the
                    // map is bounded by the live flow set).
                    if self.rx_flow_dev.len() > 8192 {
                        self.rx_flow_dev.clear();
                    }
                    for f in &pending[..accepted] {
                        self.rx_flow_dev.insert(f.flow, *dev);
                    }
                    pending.drain(..accepted);
                    done += accepted;
                    let now = self.machine.meter.now();
                    if napi && self.poll_mode[*dev as usize] {
                        // Masked: the ring filled silently — free at
                        // arrival time. The budgeted poll pass below
                        // services it; poll mode takes precedence over
                        // the moderation latch.
                    } else if self.world.nics[*dev as usize].irq_allowed_at(now) {
                        self.moderated_pending.retain(|d| d != dev);
                        pass_devs.push(*dev);
                    } else {
                        if !self.moderated_pending.contains(dev) {
                            self.moderated_pending.push(*dev);
                            if self.machine.trace.enabled() {
                                self.machine
                                    .trace_event(TraceEvent::IrqMasked { dev: *dev });
                            }
                        }
                        // Anchor the gated wait (auto-tune only): the
                        // just-latched batch is excluded, so the anchor
                        // measures what arrives *while* waiting.
                        if let Some(slot @ None) = self.gate_anchors.get_mut(*dev as usize) {
                            *slot = Some((
                                self.world.nics[*dev as usize].stats().rx_packets,
                                self.machine.meter.now(),
                            ));
                        }
                        self.machine.meter.count_event("irq_moderated");
                    }
                } else if self.moderated_pending.contains(dev)
                    && self.world.nics[*dev as usize].irq_asserted()
                {
                    // Ring wedged behind a closed moderation window:
                    // real hardware would start dropping here.
                    gated_wedged.push(*dev);
                }
            }
            if pass_devs.is_empty() && !gated_wedged.is_empty() {
                // Ring-pressure override: deliver despite the window
                // (like the e1000's packets-waiting forced interrupt),
                // so moderation can delay frames but never drop them.
                for dev in &gated_wedged {
                    self.moderated_pending.retain(|d| d != dev);
                    self.machine.meter.count_event("irq_moderation_override");
                }
                pass_devs = gated_wedged;
            }
            if napi {
                // The interrupt is an ack-and-mask: devices that would
                // have taken a full reap pass enter poll mode instead,
                // and one budgeted poll pass services every masked
                // device — just interrupted and long-masked alike.
                if !pass_devs.is_empty() {
                    let now = self.machine.meter.now();
                    for &dev in &pass_devs {
                        self.world.nics[dev as usize].note_irq_delivered(now);
                        self.end_gated_wait(dev, now);
                        self.napi_enter(dev)?;
                    }
                }
                let polled = self.napi_poll_pass()?;
                if polled > 0 {
                    self.flush_deferred_upcalls()?;
                    self.sample_rx_completions();
                    self.service_itr_tuners()?;
                }
                if groups.iter().all(|(_, pending)| pending.is_empty()) {
                    if self.napi_work_pending() {
                        // Rings may still hold reaped-under-weight work;
                        // keep polling until every device completes and
                        // re-arms.
                        continue;
                    }
                    break;
                }
                if pass_devs.is_empty() && polled == 0 {
                    if done == 0 {
                        return Err(SystemError::RxRingFull);
                    }
                    break; // every remaining ring is wedged
                }
                continue;
            }
            if pass_devs.is_empty() {
                if groups.iter().all(|(_, pending)| pending.is_empty()) {
                    break; // all delivered; latched causes fire later
                }
                if done == 0 {
                    return Err(SystemError::RxRingFull);
                }
                break; // every remaining ring is wedged
            }
            // One software pass: reap each NIC's batch, then fan the
            // union out to the guests (one demux sweep per pass).
            let now = self.machine.meter.now();
            for &dev in &pass_devs {
                self.world.nics[dev as usize].note_irq_delivered(now);
                self.end_gated_wait(dev, now);
            }
            self.rx_pass(&pass_devs)?;
            // End of one receive pass: drain any deferred upcalls the
            // reap queued (unmaps, frees).
            self.flush_deferred_upcalls()?;
            self.sample_rx_completions();
            // Heavy passes outrun the tuner's interval window; retune
            // between passes so sustained load escalates promptly.
            self.service_itr_tuners()?;
            if groups.iter().all(|(_, pending)| pending.is_empty()) {
                break;
            }
        }
        self.prune_rx_inflight();
        Ok(done)
    }

    /// **Open-loop** arrival: one wire burst lands at scheduled time
    /// `arrival` and the receive path does only what real hardware
    /// forces at that instant — rings fill, and per-arrival interrupt
    /// work (or nothing, for a masked poll-mode device) runs. Frames
    /// that find no free descriptor are dropped silently at the wire
    /// (the NIC's `rx_missed` counter), *not* retried: unlike
    /// [`System::receive_burst`], the arrival schedule does not wait for
    /// the consumer. The consumer side runs separately through
    /// [`System::rx_open_loop_service`] — together they reproduce
    /// receive livelock: per-arrival ISR work preempts the consumer,
    /// and past saturation the CPU reaps frames it can never deliver.
    /// Returns the frames accepted into rings.
    ///
    /// # Errors
    ///
    /// Propagates faults; never returns `RxRingFull` (an overrun is the
    /// phenomenon under measurement, not an error).
    pub fn rx_open_loop_arrival(
        &mut self,
        frames: &[Frame],
        arrival: u64,
    ) -> Result<usize, SystemError> {
        self.service_virtual_timers(false)?;
        let mut incoming = frames.to_vec();
        self.admit_rx_frames(&mut incoming);
        if incoming.is_empty() {
            return Ok(0);
        }
        let napi = self.napi_weight > 0;
        let groups = self.shard_frames(incoming);
        let mut accepted_total = 0usize;
        for (dev, pending) in groups {
            if pending.is_empty() {
                continue;
            }
            let accepted =
                self.world.nics[dev as usize].deliver_batch(&mut self.machine.phys, &pending);
            if accepted == 0 {
                continue; // ring overrun: dropped free, before any work
            }
            accepted_total += accepted;
            for f in &pending[..accepted] {
                self.rx_inflight.insert((f.flow, f.seq), arrival);
            }
            if self.rx_flow_dev.len() > 8192 {
                self.rx_flow_dev.clear();
            }
            for f in &pending[..accepted] {
                self.rx_flow_dev.insert(f.flow, dev);
            }
            let now = self.machine.meter.now();
            if napi && self.poll_mode[dev as usize] {
                // Masked: zero per-arrival cost — the point of NAPI.
            } else if self.world.nics[dev as usize].irq_allowed_at(now) {
                self.moderated_pending.retain(|d| *d != dev);
                self.world.nics[dev as usize].note_irq_delivered(now);
                self.end_gated_wait(dev, now);
                if napi {
                    self.napi_enter(dev)?;
                } else {
                    // Per-arrival ISR: reap every filled descriptor now
                    // (into the demux queues for TwinDrivers); the
                    // consumer flush happens whenever the CPU next gets
                    // a gap. This is the livelock-prone discipline.
                    self.rx_isr_reap(dev)?;
                }
            } else if !self.moderated_pending.contains(&dev) {
                self.moderated_pending.push(dev);
                self.machine.meter.count_event("irq_moderated");
                if self.machine.trace.enabled() {
                    self.machine.trace_event(TraceEvent::IrqMasked { dev });
                }
            }
        }
        self.flush_deferred_upcalls()?;
        self.sample_rx_completions();
        self.prune_rx_inflight();
        Ok(accepted_total)
    }

    /// The open-loop consumer: runs poll passes (NAPI) or standalone
    /// flush rounds (interrupt mode) until virtual time reaches `until`
    /// or all work drains — whichever is first. Idle gaps advance the
    /// virtual clock through [`System::run_idle`], so moderation timers
    /// and deadline flushes fire on schedule.
    ///
    /// # Errors
    ///
    /// Propagates faults from serviced work and timers.
    pub fn rx_open_loop_service(&mut self, until: u64) -> Result<(), SystemError> {
        loop {
            self.service_virtual_timers(false)?;
            let now = self.machine.meter.now();
            if now >= until {
                return Ok(());
            }
            if self.napi_weight > 0 && self.napi_work_pending() {
                let polled = self.napi_poll_pass()?;
                self.sample_rx_completions();
                // A zero-reap pass re-armed every idle device; loop to
                // reclassify.
                let _ = polled;
                continue;
            }
            if self.rx_open_loop_pending() {
                self.flush_rx_round()?;
                self.sample_rx_completions();
                continue;
            }
            let now = self.machine.meter.now();
            if now < until {
                self.run_idle(until - now)?;
            }
            return Ok(());
        }
    }

    /// Whether the open-loop consumer still owes work: a non-empty
    /// per-guest demux queue, or ring descriptors waiting under a
    /// masked poll-mode device.
    pub fn rx_open_loop_pending(&self) -> bool {
        if self.world.xen.as_ref().is_some_and(|x| {
            x.domains.iter().any(|d| {
                // A sleeping guest's backlog is not serviceable work:
                // it waits for the wakeup timer, which idle stepping
                // lands on (`next_virtual_event`), not for the
                // consumer loop.
                !d.rx_queue.is_empty() && self.sched.as_ref().map_or(true, |s| s.is_running(d.id.0))
            })
        }) {
            return true;
        }
        self.poll_mode
            .iter()
            .zip(&self.world.nics)
            .any(|(&polling, nic)| polling && nic.rx_pending() > 0)
    }

    /// Runs the configuration's receive software path for one hardware
    /// pass covering `devs` (each with a freshly filled RX ring): per-NIC
    /// interrupt dispatch and descriptor reap, then a single demux flush
    /// with one virtual interrupt per destination guest per quantum
    /// round.
    fn rx_pass(&mut self, devs: &[u32]) -> Result<(), SystemError> {
        match self.config {
            Config::NativeLinux => {
                for &dev in devs {
                    self.rx_dom0_style(false, dev)?;
                }
            }
            Config::XenDom0 => {
                for &dev in devs {
                    self.rx_dom0_style(true, dev)?;
                }
            }
            Config::XenGuest => self.rx_baseline_guest(devs)?,
            Config::TwinDrivers => self.rx_twin(devs)?,
        }
        Ok(())
    }

    /// Polled receive (NAPI-style): reaps every filled RX descriptor
    /// through `e1000_poll_rx_batch` on the configuration's driver
    /// instance — no interrupt dispatch, no `ICR` read — then flushes
    /// per-guest queues. Returns the number of frames reaped.
    ///
    /// # Errors
    ///
    /// Propagates faults; [`SystemError::DriverAborted`] if the
    /// hypervisor driver is dead.
    pub fn poll_rx_batch(&mut self) -> Result<usize, SystemError> {
        // The polled path bypasses interrupts entirely, but due virtual
        // timers (deadline flush) still run first.
        self.service_virtual_timers(false)?;
        self.world.kernel.begin_stack_burst();
        let multi = self.multi_nic();
        let mut reaped = 0usize;
        for dev in 0..self.world.nics.len() as u32 {
            let args = if multi {
                vec![self.netdev_of(dev) as u32, dev]
            } else {
                vec![self.netdev as u32]
            };
            let entry = if multi {
                "e1000_poll_rx_batch_dev"
            } else {
                "e1000_poll_rx_batch"
            };
            self.machine.meter.push_domain(CostDomain::Driver);
            let r = if self.config == Config::TwinDrivers {
                let hyp = self.hyperdrv.as_ref().unwrap();
                let poll = if multi {
                    hyp.poll_rx_batch_dev_entry()
                } else {
                    hyp.poll_rx_batch_entry()
                }
                .unwrap();
                self.call_hyperdrv(poll, &args, 20_000_000, dev)
            } else {
                let poll = self.driver.entry(entry).unwrap();
                self.call_dom0(poll, &args, 20_000_000)
            };
            self.machine.meter.pop_domain();
            reaped += r? as usize;
        }
        // End of the polled pass: a natural dom0 scheduling point.
        self.flush_deferred_upcalls()?;
        match self.config {
            // Hypervisor demux queued frames per guest: flush them.
            Config::TwinDrivers => self.flush_guest_rx_queues()?,
            // Bridge mode queued frames toward the backend: push them
            // through the I/O channel (the poll runs in dom0, so no
            // domain switches around it).
            Config::XenGuest => self.forward_bridged_frames()?,
            _ => {}
        }
        // NAPI semantics: the polled reap consumed every device's
        // latched work (without an ICR read), so no moderated delivery
        // is owed — otherwise the window opening would dispatch a
        // spurious interrupt pass over empty rings.
        self.moderated_pending.clear();
        self.sample_rx_completions();
        Ok(reaped)
    }

    /// Whether a device is currently in NAPI poll mode (its RX interrupt
    /// masked, serviced by the budgeted poll loop). Always `false` when
    /// [`SystemOptions::napi_weight`] is 0.
    pub fn in_poll_mode(&self, dev: u32) -> bool {
        self.poll_mode.get(dev as usize).copied().unwrap_or(false)
    }

    /// Turns the flight recorder on or off at runtime (see
    /// [`SystemOptions::tracing`] for the build-time knob). Recording
    /// never charges a cycle, so toggling this cannot perturb any
    /// measurement.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.machine.trace.set_enabled(enabled);
    }

    /// Virtual cycles `dev` has spent in NAPI poll mode: completed
    /// enter→complete episodes plus the in-progress one (measured to
    /// now). Always 0 when NAPI is off. Pure bookkeeping — maintained
    /// without charging.
    pub fn poll_mode_cycles(&self, dev: u32) -> u64 {
        let i = dev as usize;
        let done = self.poll_cycles.get(i).copied().unwrap_or(0);
        let live = self
            .poll_entered_at
            .get(i)
            .copied()
            .flatten()
            .map(|t| self.machine.meter.now().saturating_sub(t))
            .unwrap_or(0);
        done + live
    }

    /// One unified snapshot of every stats source in the system — the
    /// cycle meter (per-domain totals and named event counters), per-NIC
    /// device stats, per-guest delivery/drop counters, upcall-engine and
    /// grant counters, grant-cache stats, the flight recorder's own
    /// recorded/dropped counts — as a flat [`MetricSet`]. Consumers take
    /// two snapshots and [`MetricSet::delta_since`] them; all counters
    /// are integers read from the same sources the scattered accessors
    /// expose, so sweeps built on deltas are bit-exact with the old
    /// per-struct bookkeeping.
    pub fn metrics(&self) -> MetricSet {
        let mut ms = MetricSet::new();
        let meter = &self.machine.meter;
        ms.set("clock.now_cycles", meter.now());
        for d in CostDomain::ALL {
            ms.set(format!("meter.cycles.{}", d.label()), meter.cycles(d));
        }
        for (name, v) in meter.events() {
            ms.set(format!("event.{name}"), *v);
        }
        for (i, nic) in self.world.nics.iter().enumerate() {
            let s = nic.stats();
            ms.set(format!("nic{i}.tx_packets"), s.tx_packets);
            ms.set(format!("nic{i}.rx_packets"), s.rx_packets);
            ms.set(format!("nic{i}.tx_bytes"), s.tx_bytes);
            ms.set(format!("nic{i}.rx_bytes"), s.rx_bytes);
            ms.set(format!("nic{i}.rx_missed"), s.rx_missed);
            ms.set(format!("nic{i}.rx_irqs"), s.rx_irqs);
            ms.set(format!("nic{i}.tx_irqs"), s.tx_irqs);
            ms.set(format!("nic{i}.irqs_delivered"), nic.irqs_delivered());
            ms.set(format!("nic{i}.itr"), u64::from(nic.itr()));
            ms.set(
                format!("nic{i}.poll_cycles"),
                self.poll_mode_cycles(i as u32),
            );
        }
        if let Some(xen) = self.world.xen.as_ref() {
            ms.set("xen.switches", xen.switches);
            ms.set("xen.hypercalls", xen.hypercalls);
            ms.set("xen.virqs_sent", xen.virqs_sent);
            ms.set("xen.softirqs_coalesced", xen.softirqs_coalesced);
            ms.set("grant.maps", xen.grants.maps);
            ms.set("grant.unmaps", xen.grants.unmaps);
            ms.set("grant.copies", xen.grants.copies);
            for (dev, dg) in &xen.grants.per_device {
                ms.set(format!("grant.dev{dev}.maps"), dg.maps);
                ms.set(format!("grant.dev{dev}.unmaps"), dg.unmaps);
                ms.set(format!("grant.dev{dev}.copies"), dg.copies);
            }
            for d in &xen.domains {
                if d.kind != DomainKind::Guest {
                    continue;
                }
                let g = d.id.0;
                ms.set(format!("guest{g}.delivered"), d.rx_delivered.len() as u64);
                ms.set(format!("guest{g}.queued"), d.rx_queue.len() as u64);
                ms.set(format!("guest{g}.queue_drops"), d.rx_queue_drops);
                ms.set(
                    format!("guest{g}.early_drops"),
                    self.rx_early_drops.get(&g).copied().unwrap_or(0),
                );
            }
        }
        if let Some(hs) = self.world.hyper.as_ref() {
            let s = hs.engine.stats;
            ms.set("upcall.enqueued", s.enqueued);
            ms.set("upcall.flushes", s.flushes);
            ms.set("upcall.forced_flushes", s.forced_flushes);
            ms.set("upcall.continuations", s.continuations);
            ms.set("upcall.completions", s.completions);
            ms.set("upcall.max_depth", s.max_depth as u64);
            ms.set("upcall.executed", hs.upcalls);
            ms.set("upcall.demux_misses", hs.demux_misses);
            ms.record_samples("upcall_latency", hs.engine.latency_samples());
        }
        if let Some(cs) = self.grant_cache_stats() {
            ms.set("grantcache.hits", cs.hits);
            ms.set("grantcache.misses", cs.misses);
            ms.set("grantcache.evictions", cs.evictions);
            ms.set("grantcache.revoked", cs.revoked);
        }
        ms.set("trace.events_recorded", self.machine.trace.recorded());
        ms.set("trace.events_dropped", self.machine.trace.dropped());
        ms.set("fault.quarantined", self.quarantine.len() as u64);
        ms.set("fault.recoveries", self.recovery_log.len() as u64);
        ms.set(
            "fault.inflight_replayed",
            self.recovery_log
                .iter()
                .map(|r| u64::from(r.replayed))
                .sum(),
        );
        ms.set(
            "fault.inflight_dropped",
            self.recovery_log.iter().map(|r| u64::from(r.dropped)).sum(),
        );
        if let Some(s) = self.sched.as_ref() {
            let now = meter.now();
            let mut placements = 0u64;
            let mut migrations = 0u64;
            for g in s.guests() {
                let st = s.stats(g, now).expect("registered vcpu");
                ms.set(format!("sched.guest{g}.cpu"), u64::from(st.cpu));
                ms.set(format!("sched.guest{g}.running"), u64::from(st.running));
                ms.set(format!("sched.guest{g}.run_cycles"), st.run_cycles);
                ms.set(format!("sched.guest{g}.wakes"), st.wakes);
                ms.set(format!("sched.guest{g}.sleeps"), st.sleeps);
                let (p, m) = self.affinity_stats.get(&g).copied().unwrap_or((0, 0));
                ms.set(format!("sched.guest{g}.placements"), p);
                ms.set(format!("sched.guest{g}.migrations"), m);
                placements += p;
                migrations += m;
            }
            // Flows placed for guests outside the vCPU set never happen
            // (they take the FlowHash fallback), so the totals are the
            // per-guest sums.
            ms.set("sched.placements", placements);
            ms.set("sched.migrations", migrations);
        }
        ms.record_samples("rx_latency", self.rx_latency.samples());
        if let Some(per_guest) = self.guest_latency.as_ref() {
            for (g, r) in per_guest {
                ms.record_samples(format!("rx_latency.guest{g}"), r.samples());
            }
        }
        ms
    }

    /// Writes `<label>.trace.json` (chrome://tracing) and
    /// `<label>.metrics.json` (flat [`MetricSet`] dump) into the
    /// directory named by the `TWIN_TRACE_OUT` environment variable.
    /// A no-op when the variable is unset; never fatal.
    pub fn export_trace(&self, label: &str) {
        if let Some(dir) = twin_trace::export::trace_out_dir() {
            twin_trace::export::write_trace_files(
                &dir,
                label,
                &self.machine.trace,
                &self.metrics(),
            );
        }
    }

    /// Sets (or changes) a guest's DRR flush weight at runtime. Weight 1
    /// is the neutral default; 0 is clamped to 1.
    pub fn set_guest_weight(&mut self, gid: DomId, weight: u32) {
        self.guest_weights.insert(gid.0, weight.max(1));
    }

    /// Frames early-dropped at the admission watermark for one guest.
    pub fn rx_early_drops_for(&self, gid: DomId) -> u64 {
        self.rx_early_drops.get(&gid.0).copied().unwrap_or(0)
    }

    /// Total frames early-dropped at the admission watermark.
    pub fn rx_early_drops(&self) -> u64 {
        self.rx_early_drops.values().sum()
    }

    /// Per-guest early-drop counters (guest id → frames dropped).
    pub fn rx_early_drops_per_guest(&self) -> BTreeMap<u32, u64> {
        self.rx_early_drops.clone()
    }

    /// Frames dropped at one guest's demux queue cap (work already sunk
    /// — the livelock waste the early drop exists to avoid).
    pub fn rx_queue_drops_for(&self, gid: DomId) -> u64 {
        self.world
            .xen
            .as_ref()
            .map_or(0, |x| x.domain(gid).rx_queue_drops)
    }

    /// Total frames dropped at demux queue caps across all guests.
    pub fn rx_queue_drops(&self) -> u64 {
        self.world
            .xen
            .as_ref()
            .map_or(0, |x| x.domains.iter().map(|d| d.rx_queue_drops).sum())
    }

    /// Frames dropped by NICs for want of a free RX descriptor.
    pub fn rx_ring_drops(&self) -> u64 {
        self.world.nics.iter().map(|n| n.stats().rx_missed).sum()
    }

    /// Frames fully delivered to one domain.
    pub fn delivered_rx_for(&self, gid: DomId) -> usize {
        self.world
            .xen
            .as_ref()
            .map_or(0, |x| x.domain(gid).rx_delivered.len())
    }

    /// NAPI mode entry for one device: the ISR acknowledges the cause
    /// (`ICR` read-to-clear), masks the RX interrupt (`IMC`) and
    /// schedules the poll softirq — no descriptor is reaped here; the
    /// budgeted poll pass does that. Poll mode takes precedence over the
    /// ITR moderation latch: a device entering poll mode leaves
    /// `moderated_pending`, since its cause is consumed right here.
    fn napi_enter(&mut self, dev: u32) -> Result<(), SystemError> {
        if self.poll_mode[dev as usize] {
            return Ok(());
        }
        {
            let m = &mut self.machine;
            m.meter.count_event("irq");
            m.meter.charge_to(CostDomain::Xen, m.cost.irq_dispatch);
        }
        if self.machine.trace.enabled() {
            self.machine.trace_event(TraceEvent::IrqDelivered { dev });
        }
        // Ack: read-to-clear consumes the latched cause.
        let _ = self.world.nics[dev as usize].mmio_read(twin_nic::regs::ICR);
        Env::mmio_write(
            &mut self.world,
            &mut self.machine,
            dev,
            twin_nic::regs::IMC,
            twin_isa::Width::Long,
            twin_nic::intr::RXT0,
        )?;
        {
            let m = &mut self.machine;
            m.meter.charge_to(CostDomain::Xen, m.cost.napi_switch);
            m.meter.count_event("napi_enter");
        }
        self.poll_mode[dev as usize] = true;
        self.poll_entered_at[dev as usize] = Some(self.machine.meter.now());
        if self.machine.trace.enabled() {
            self.machine.trace_event(TraceEvent::NapiEnter { dev });
        }
        self.moderated_pending.retain(|d| *d != dev);
        Ok(())
    }

    /// NAPI completion for one device: re-enable the RX interrupt
    /// (`IMS`) after a poll pass that drained the ring below its weight.
    /// The `ICR` read-to-clear first discards any cause latched by
    /// frames the pass already reaped, so re-arming cannot fire a
    /// spurious interrupt over an empty ring.
    fn napi_rearm(&mut self, dev: u32) -> Result<(), SystemError> {
        let _ = self.world.nics[dev as usize].mmio_read(twin_nic::regs::ICR);
        Env::mmio_write(
            &mut self.world,
            &mut self.machine,
            dev,
            twin_nic::regs::IMS,
            twin_isa::Width::Long,
            twin_nic::intr::RXT0,
        )?;
        {
            let m = &mut self.machine;
            m.meter.charge_to(CostDomain::Xen, m.cost.napi_switch);
            m.meter.count_event("napi_exit");
        }
        self.poll_mode[dev as usize] = false;
        let now = self.machine.meter.now();
        if let Some(entered) = self.poll_entered_at[dev as usize].take() {
            self.poll_cycles[dev as usize] += now.saturating_sub(entered);
        }
        if self.machine.trace.enabled() {
            self.machine.trace_event(TraceEvent::NapiComplete { dev });
        }
        Ok(())
    }

    /// The reap half of one budgeted poll: dispatch the poll softirq and
    /// reap up to [`SystemOptions::napi_weight`] descriptors through
    /// `e1000_clean_rx_budget` into the per-guest queues. No flush, no
    /// re-arm — [`System::napi_poll_pass`] sequences those across all
    /// polled devices. Returns frames reaped.
    fn napi_poll_dev_reap(&mut self, dev: u32) -> Result<usize, SystemError> {
        let weight = self.napi_budget_for(dev) as u32;
        if self.machine.trace.enabled() {
            self.machine.trace_event(TraceEvent::SoftirqDispatch {
                kind: "napi_poll",
                dev,
            });
        }
        {
            let xen = self.world.xen.as_mut().expect("napi implies xen");
            xen.raise_softirq(Softirq::NapiPoll { nic: dev });
            // Drain the pending set so the poll is accounted as softirq
            // work; UpcallFlush kicks ride along as usual.
            let work = xen.take_runnable_softirqs();
            for w in work {
                if let Softirq::UpcallFlush = w {
                    if self.machine.trace.enabled() {
                        self.machine.trace_event(TraceEvent::SoftirqDispatch {
                            kind: "upcall_flush",
                            dev: 0,
                        });
                    }
                    self.flush_deferred_upcalls_as(FlushCause::HighWater)?;
                }
            }
        }
        {
            let m = &mut self.machine;
            m.meter
                .charge_to(CostDomain::Xen, m.cost.napi_poll_dispatch);
            m.meter.count_event("napi_poll");
        }
        self.world.kernel.begin_stack_burst();
        let multi = self.multi_nic();
        let hyp = self.hyperdrv.as_ref().expect("napi implies twindrivers");
        let (entry, args) = if multi {
            (
                hyp.entry("e1000_poll_rx_budget_dev").unwrap(),
                vec![self.netdev_of(dev) as u32, weight, dev],
            )
        } else {
            (
                hyp.entry("e1000_poll_rx_budget").unwrap(),
                vec![self.netdev as u32, weight],
            )
        };
        self.machine.meter.push_domain(CostDomain::Driver);
        let r = self.call_hyperdrv(entry, &args, 20_000_000, dev);
        self.machine.meter.pop_domain();
        let reaped = r? as usize;
        if self.machine.trace.enabled() {
            self.machine.trace_event(TraceEvent::NapiPoll {
                dev,
                reaped: reaped as u32,
            });
        }
        Ok(reaped)
    }

    /// One poll pass over every device currently in poll mode: reap each
    /// device's budget first, then one demux flush over the union (so no
    /// guest's ring wait includes another guest's flush), then re-arm
    /// every device whose reap came in under weight (the ring is
    /// drained — classic `napi_complete`). Returns total frames reaped.
    fn napi_poll_pass(&mut self) -> Result<usize, SystemError> {
        let mut polled: Vec<(u32, usize, usize)> = Vec::new();
        for dev in 0..self.world.nics.len() as u32 {
            if self.poll_mode[dev as usize] {
                let budget = self.napi_budget_for(dev);
                let reaped = self.napi_poll_dev_reap(dev)?;
                polled.push((dev, reaped, budget));
            }
        }
        if polled.is_empty() {
            return Ok(0);
        }
        self.flush_deferred_upcalls()?;
        self.flush_guest_rx_queues()?;
        for &(dev, reaped, budget) in &polled {
            if reaped < budget {
                self.napi_rearm(dev)?;
            }
        }
        Ok(polled.iter().map(|(_, r, _)| r).sum())
    }

    /// The poll budget for `dev` this pass. Without the scheduler model
    /// this is exactly [`SystemOptions::napi_weight`]. With it, polling
    /// capacity weights toward devices whose guests can consume the
    /// frames: a device whose softirq CPU hosts a running vCPU (or no
    /// vCPU at all — an unscheduled device) polls at full weight, while
    /// one whose CPU's vCPUs are all asleep drops to a quarter weight —
    /// it still drains (livelock defence intact), but the budget the
    /// sleeping guests cannot consume goes to devices that can.
    fn napi_budget_for(&self, dev: u32) -> usize {
        match self.sched.as_ref() {
            Some(s) => {
                let cpu = s.nic_cpu(dev);
                if !s.cpu_has_vcpus(cpu) || s.cpu_has_running(cpu) {
                    self.napi_weight
                } else {
                    (self.napi_weight / 4).max(1)
                }
            }
            None => self.napi_weight,
        }
    }

    /// Whether any device still owes poll work (is in poll mode).
    fn napi_work_pending(&self) -> bool {
        self.poll_mode.iter().any(|&p| p)
    }

    /// The configuration's per-arrival ISR reap — interrupt dispatch and
    /// descriptor reap without the consumer-side flush (TwinDrivers
    /// demux-queues frames; the dom0-style paths deliver inline, as
    /// their stack runs in interrupt context anyway).
    fn rx_isr_reap(&mut self, dev: u32) -> Result<(), SystemError> {
        match self.config {
            Config::NativeLinux => self.rx_dom0_style(false, dev),
            Config::XenDom0 => self.rx_dom0_style(true, dev),
            Config::XenGuest => self.rx_baseline_guest(&[dev]),
            Config::TwinDrivers => self.rx_twin_reap(&[dev]),
        }
    }

    /// Early drop at RX-descriptor refill time: frames whose destination
    /// guest's backlog has reached
    /// [`SystemOptions::rx_backlog_watermark`] are dropped *before*
    /// being posted to a ring, for the cost of a compare and a counter
    /// bump — the Mogul/Ramakrishnan discipline of shedding load at the
    /// cheapest point instead of after the reap work is sunk. A no-op
    /// when the watermark is unset. Admitted frames count toward the
    /// backlog snapshot, so one oversized burst cannot overshoot the
    /// watermark.
    fn admit_rx_frames(&mut self, frames: &mut Vec<Frame>) {
        let Some(wm) = self.rx_watermark else {
            return;
        };
        let Some(xen) = self.world.xen.as_ref() else {
            return;
        };
        let mut guests: Vec<(MacAddr, u32, usize)> = xen
            .domains
            .iter()
            .filter(|d| d.kind == DomainKind::Guest)
            .map(|d| (d.mac, d.id.0, d.rx_queue.len()))
            .collect();
        let mut dropped: Vec<(u32, u64)> = Vec::new();
        frames.retain(|f| {
            let Some(slot) = guests.iter_mut().find(|(mac, _, _)| *mac == f.dst) else {
                return true; // not guest-bound: the demux-miss path counts it
            };
            if slot.2 >= wm {
                match dropped.iter_mut().find(|(g, _)| *g == slot.1) {
                    Some(d) => d.1 += 1,
                    None => dropped.push((slot.1, 1)),
                }
                false
            } else {
                slot.2 += 1;
                true
            }
        });
        for (gid, n) in dropped {
            *self.rx_early_drops.entry(gid).or_insert(0) += n;
            for _ in 0..n {
                let m = &mut self.machine;
                m.meter.charge_to(CostDomain::Xen, m.cost.early_drop);
                m.meter.count_event("early_drop");
                if self.machine.trace.enabled() {
                    self.machine
                        .trace_event(TraceEvent::EarlyDrop { guest: gid });
                }
            }
        }
    }

    /// Adds another guest domain (TwinDrivers configuration) with its own
    /// MAC, so the hypervisor's receive demultiplexing has more than one
    /// destination. Returns the new domain's id.
    ///
    /// # Errors
    ///
    /// Fails if guest memory cannot be mapped.
    pub fn add_guest(&mut self, mac: MacAddr) -> Result<DomId, SystemError> {
        let gspace = self.machine.new_space();
        let xen = self
            .world
            .xen
            .as_mut()
            .ok_or_else(|| SystemError::Build("no hypervisor in this configuration".into()))?;
        let gid = xen.add_guest(gspace, mac);
        if self.rx_queue_cap.is_some() {
            xen.domain_mut(gid).rx_queue_cap = self.rx_queue_cap;
        }
        self.machine.map_fresh(gspace, GUEST_HEAP_BASE, 4)?;
        Ok(gid)
    }

    /// Registers a vCPU for `guest` on physical CPU `cpu` with a
    /// periodic `run_cycles`-on / `sleep_cycles`-off schedule starting
    /// now. Requires [`SystemOptions::sched`]; guests without a vCPU
    /// stay always-running.
    ///
    /// # Errors
    ///
    /// [`SystemError::Build`] when the scheduler model is off.
    pub fn sched_add_vcpu(
        &mut self,
        guest: DomId,
        cpu: u32,
        run_cycles: u64,
        sleep_cycles: u64,
    ) -> Result<(), SystemError> {
        let now = self.machine.meter.now();
        let sched = self
            .sched
            .as_mut()
            .ok_or_else(|| SystemError::Build("sched model is not enabled".into()))?;
        sched.add_vcpu(guest.0, cpu, run_cycles, sleep_cycles, now);
        Ok(())
    }

    /// The scheduler model, when enabled (test/tool observability).
    pub fn sched(&self) -> Option<&VcpuSched> {
        self.sched.as_ref()
    }

    /// Overrides the softirq CPU of one device in the scheduler's
    /// topology map (default `dev % num_cpus`). A no-op without the
    /// scheduler model.
    pub fn sched_set_nic_cpu(&mut self, dev: u32, cpu: u32) {
        if let Some(s) = self.sched.as_mut() {
            s.set_nic_cpu(dev, cpu);
        }
    }

    /// Whether the zero-copy datapath is active.
    pub fn zero_copy(&self) -> bool {
        self.zero_copy
    }

    /// Grant-cache counters (`None` when zero-copy mode is off).
    pub fn grant_cache_stats(&self) -> Option<twin_xen::GrantCacheStats> {
        self.grant_cache.as_ref().map(|c| c.stats)
    }

    /// Grants a guest's zero-copy buffer pool: maps the pool region in
    /// the guest's space and pre-pins its frames through the IOMMU
    /// allowlist (one coalesced range per run of consecutive pfns, so
    /// the per-doorbell ring walk stays a range check). The build does
    /// this for the primary guest; guests added later start ungranted —
    /// their frames take the copy fallback until this runs. Returns the
    /// pages granted (0 when already granted or zero-copy is off).
    ///
    /// # Errors
    ///
    /// Fails if pool memory cannot be mapped.
    pub fn grant_zero_copy_pool(&mut self, gid: DomId) -> Result<usize, SystemError> {
        if !self.zero_copy || self.zc_granted.contains(&gid.0) {
            return Ok(0);
        }
        let gspace = self
            .world
            .xen
            .as_ref()
            .ok_or_else(|| SystemError::Build("no hypervisor in this configuration".into()))?
            .domain(gid)
            .space;
        let pages = self.zc_pool_frames as u64;
        // Re-granting after a revocation reuses the pool pages already
        // mapped in the guest; only a first grant allocates.
        if self
            .machine
            .translate(gspace, ExecMode::Guest, ZC_POOL_BASE, false)
            .is_err()
        {
            self.machine.map_fresh(gspace, ZC_POOL_BASE, pages)?;
        }
        if let Some(iommu) = self.world.iommu.as_mut() {
            // Pin the pool up front, coalescing consecutive pfns.
            let mut run: Option<(u64, u64)> = None; // (start_pfn, count)
            for p in 0..pages {
                let t = self.machine.translate(
                    gspace,
                    ExecMode::Guest,
                    ZC_POOL_BASE + p * PAGE_SIZE,
                    false,
                )?;
                run = match run {
                    Some((start, n)) if t.entry.pfn == start + n => Some((start, n + 1)),
                    Some((start, n)) => {
                        iommu.pin_range(start, n);
                        Some((t.entry.pfn, 1))
                    }
                    None => Some((t.entry.pfn, 1)),
                };
            }
            if let Some((start, n)) = run {
                iommu.pin_range(start, n);
            }
        }
        self.zc_granted.insert(gid.0);
        Ok(pages as usize)
    }

    /// Revokes every cached grant a guest owns — the quarantine seam
    /// for fault isolation: when trust in a guest (or the driver slice
    /// serving it) is withdrawn, its live pool mappings are torn down
    /// (one `grant_unmap` each, charged) and subsequent frames fall
    /// back to copies until the pool is granted again. Returns how many
    /// mappings were revoked.
    pub fn revoke_zero_copy_grants(&mut self, gid: DomId) -> usize {
        let Some(cache) = self.grant_cache.as_mut() else {
            return 0;
        };
        let n = cache.revoke_domain(gid.0);
        for _ in 0..n {
            self.world
                .xen
                .as_mut()
                .expect("zero-copy implies a hypervisor")
                .grant_unmap(&mut self.machine);
        }
        if self.machine.trace.enabled() {
            self.machine.trace_event(TraceEvent::GrantCacheRevoke {
                dom: gid.0,
                count: n as u32,
            });
        }
        self.zc_granted.remove(&gid.0);
        n
    }

    /// One zero-copy slot access for a frame toward domain `dom`:
    /// `slot` is the frame's index within its `(flow, direction)` pool
    /// slice for the current pass. Charges `grant_cache_hit` on a hit;
    /// `grant_map` + `pin_page` on a first-touch miss (plus a
    /// `grant_unmap` when LRU eviction made room); `copy_fallback`
    /// dispatch when the frame cannot land in a slot — ungranted
    /// domain, oversized frame, or exhausted pool slice. Returns `true`
    /// when the mapping covers the frame (the caller skips its copy),
    /// `false` on fallback (the caller copies and charges as in copy
    /// mode).
    fn zc_access(
        &mut self,
        dom: DomId,
        flow: u32,
        tx: bool,
        slot: usize,
        len: u32,
        dev: u32,
    ) -> bool {
        if !self.zc_granted.contains(&dom.0) || len > ZC_SLOT_BYTES || slot >= self.zc_pool_frames {
            let m = &mut self.machine;
            m.meter.charge_to(CostDomain::Xen, m.cost.copy_fallback);
            m.meter.count_event("copy_fallback");
            return false;
        }
        let page = (u64::from(tx) << 48) | (u64::from(flow) << 16) | slot as u64;
        let access = self
            .grant_cache
            .as_mut()
            .expect("granted domains imply a cache")
            .access(dom.0, page);
        match access {
            GrantAccess::Hit => {
                let m = &mut self.machine;
                m.meter.charge_to(CostDomain::Xen, m.cost.grant_cache_hit);
                m.meter.count_event("grant_cache_hit");
                if self.machine.trace.enabled() {
                    self.machine
                        .trace_event(TraceEvent::GrantCacheHit { dom: dom.0, page });
                }
            }
            GrantAccess::Miss { evicted } => {
                self.world
                    .xen
                    .as_mut()
                    .expect("zero-copy implies a hypervisor")
                    .grant_map_dev(&mut self.machine, dev);
                let m = &mut self.machine;
                m.meter.charge_to(CostDomain::Xen, m.cost.pin_page);
                m.meter.count_event("pin_page");
                if self.machine.trace.enabled() {
                    self.machine
                        .trace_event(TraceEvent::GrantCacheMiss { dom: dom.0, page });
                }
                if let Some((edom, epage)) = evicted {
                    self.world
                        .xen
                        .as_mut()
                        .unwrap()
                        .grant_unmap(&mut self.machine);
                    self.machine.meter.count_event("grant_cache_evict");
                    if self.machine.trace.enabled() {
                        self.machine.trace_event(TraceEvent::GrantCacheEvict {
                            dom: edom,
                            page: epage,
                        });
                    }
                }
            }
        }
        true
    }

    fn dispatch_dom0_irq(&mut self, dev: u32) -> Result<(), SystemError> {
        // One interrupt covers however many descriptors the NIC filled;
        // the first packet the handler pushes into the stack pays the
        // full wakeup cost, the rest of the burst the GRO marginal.
        self.world.kernel.begin_stack_burst();
        if self.machine.trace.enabled() {
            self.machine.trace_event(TraceEvent::IrqDelivered { dev });
        }
        let m = &mut self.machine;
        m.meter.count_event("irq");
        m.meter.charge_to(CostDomain::Dom0, m.cost.irq_dispatch);
        // Each NIC asserts its own IRQ line, which probe registered a
        // handler for (`request_irq(dev, …)`).
        let irq = self.world.nics[dev as usize].irq_line();
        let handler = *self
            .world
            .kernel
            .irq_handlers
            .get(&irq)
            .expect("irq handler registered");
        self.machine.meter.push_domain(CostDomain::Driver);
        let r = if self.multi_nic() {
            let intr = self.driver.entry("e1000_intr_dev").unwrap();
            self.call_dom0(intr, &[self.netdev_of(dev) as u32, dev], 10_000_000)
        } else {
            self.call_dom0(handler, &[self.netdev as u32], 10_000_000)
        };
        self.machine.meter.pop_domain();
        r.map(|_| ())
    }

    fn rx_dom0_style(&mut self, on_xen: bool, dev: u32) -> Result<(), SystemError> {
        if on_xen {
            let xen = self.world.xen.as_mut().expect("xen");
            // Xen routes the physical interrupt to dom0 as an event.
            xen.send_virq(&mut self.machine, DomId::DOM0, 3);
            let m = &mut self.machine;
            m.meter
                .charge_to(CostDomain::Xen, m.cost.paravirt_tax_per_packet);
        }
        self.dispatch_dom0_irq(dev)
    }

    fn rx_baseline_guest(&mut self, devs: &[u32]) -> Result<(), SystemError> {
        let gid = self.guest.expect("guest");
        // Interrupts arrive while the guest runs: one event per raising
        // NIC, but a single switch to dom0 covers the whole pass.
        let xen = self.world.xen.as_mut().expect("xen");
        for _ in devs {
            xen.send_virq(&mut self.machine, DomId::DOM0, 3);
        }
        xen.switch_to(&mut self.machine, DomId::DOM0);
        for &dev in devs {
            self.dispatch_dom0_irq(dev)?;
        }
        self.forward_bridged_frames()?;
        let xen = self.world.xen.as_mut().unwrap();
        xen.switch_to(&mut self.machine, gid);
        Ok(())
    }

    /// Pushes frames the bridge queued toward the backend through the
    /// I/O channel into the guest (baseline path, running in dom0):
    /// grants and copies stay per-packet, the guest is notified once for
    /// the whole batch, and its stack pays the full wakeup cost only for
    /// the first frame.
    fn forward_bridged_frames(&mut self) -> Result<(), SystemError> {
        let gid = self.guest.expect("guest");
        let frames: Vec<Frame> = self.world.kernel.rx_delivered.drain(..).collect();
        let batched = !frames.is_empty();
        let mut zc_occ: BTreeMap<u32, usize> = BTreeMap::new();
        for (i, f) in frames.into_iter().enumerate() {
            let dev = self.rx_flow_dev.get(&f.flow).copied().unwrap_or(0);
            {
                let m = &mut self.machine;
                m.meter
                    .charge_to(CostDomain::Dom0, m.cost.netfront_per_packet);
                m.meter.charge_to(CostDomain::Dom0, m.cost.backend_rx_extra);
            }
            // Zero-copy: the frame lands straight in the guest's granted
            // RX pool — a warm pool page costs one cached grant access
            // instead of a grant-copy bracketed by map/unmap.
            let zc_hit = if self.zero_copy {
                let slot = *zc_occ.get(&f.flow).unwrap_or(&0);
                let hit = self.zc_access(gid, f.flow, false, slot, f.len(), dev);
                if hit {
                    *zc_occ.entry(f.flow).or_insert(0) += 1;
                }
                hit
            } else {
                false
            };
            if !zc_hit {
                {
                    let m = &mut self.machine;
                    // Grant-copy of the packet into guest memory.
                    let c = m.cost.copy_cycles(f.len() as u64);
                    m.meter.charge_to(CostDomain::Dom0, c);
                }
                let xen = self.world.xen.as_mut().unwrap();
                xen.grant_map_dev(&mut self.machine, dev);
                xen.grant_unmap_dev(&mut self.machine, dev);
                xen.note_grant_copy(Some(dev));
            }
            {
                let m = &mut self.machine;
                m.meter
                    .charge_to(CostDomain::DomU, m.cost.netfront_per_packet);
                let stack = if i == 0 {
                    m.cost.tcp_rx_per_packet
                } else {
                    m.cost.tcp_rx_batch_marginal
                };
                m.meter.charge_to(CostDomain::DomU, stack);
            }
            let xen = self.world.xen.as_mut().unwrap();
            xen.domain_mut(gid).rx_delivered.push(f);
        }
        if batched {
            let xen = self.world.xen.as_mut().unwrap();
            xen.send_virq(&mut self.machine, gid, 4);
        }
        Ok(())
    }

    fn rx_twin(&mut self, devs: &[u32]) -> Result<(), SystemError> {
        self.rx_twin_reap(devs)?;
        self.flush_guest_rx_queues()
    }

    /// The interrupt half of [`System::rx_twin`]: per-NIC dispatch and
    /// descriptor reap into the per-guest queues, without the demux
    /// flush — so the open-loop harness can model a per-arrival ISR
    /// whose consumer (the flush) runs only when the CPU gets a gap.
    fn rx_twin_reap(&mut self, devs: &[u32]) -> Result<(), SystemError> {
        // The hypervisor takes each NIC's interrupt directly and runs the
        // hypervisor driver's handler in softirq context (paper §4.4) —
        // from the current (guest) context, no switch. Every NIC is its
        // own softirq source (duplicates coalesce per device), and one
        // softirq pass reaps every descriptor each NIC filled.
        for &dev in devs {
            {
                let m = &mut self.machine;
                m.meter.count_event("irq");
                m.meter.charge_to(CostDomain::Xen, m.cost.irq_dispatch);
            }
            if self.machine.trace.enabled() {
                self.machine.trace_event(TraceEvent::IrqDelivered { dev });
            }
            let xen = self.world.xen.as_mut().expect("xen");
            xen.raise_softirq(Softirq::DriverIrq { nic: dev });
        }
        let multi = self.multi_nic();
        let work = self.world.xen.as_mut().unwrap().take_runnable_softirqs();
        for w in work {
            let nic = match w {
                // A poll softirq raised while an interrupt pass is in
                // flight reaps through the same handler: the ICR read
                // inside it consumes whatever cause is latched.
                Softirq::DriverIrq { nic } | Softirq::NapiPoll { nic } => {
                    if self.machine.trace.enabled() {
                        let kind = match w {
                            Softirq::DriverIrq { .. } => "driver_irq",
                            _ => "napi_poll",
                        };
                        self.machine
                            .trace_event(TraceEvent::SoftirqDispatch { kind, dev: nic });
                    }
                    nic
                }
                // The high-water kick: drain the deferred-upcall ring if
                // no burst-pass flush got there first.
                Softirq::UpcallFlush => {
                    if self.machine.trace.enabled() {
                        self.machine.trace_event(TraceEvent::SoftirqDispatch {
                            kind: "upcall_flush",
                            dev: 0,
                        });
                    }
                    self.flush_deferred_upcalls_as(FlushCause::HighWater)?;
                    continue;
                }
            };
            let (intr, args) = if multi {
                (
                    self.hyperdrv.as_ref().unwrap().intr_dev_entry().unwrap(),
                    vec![self.netdev_of(nic) as u32, nic],
                )
            } else {
                (
                    self.hyperdrv.as_ref().unwrap().entry("e1000_intr").unwrap(),
                    vec![self.netdev as u32],
                )
            };
            self.machine.meter.push_domain(CostDomain::Driver);
            let r = self.call_hyperdrv(intr, &args, 20_000_000, nic);
            self.machine.meter.pop_domain();
            r?;
        }
        Ok(())
    }

    /// Fans demultiplexed frames out of the per-guest RX queues into the
    /// guests: per-packet copies and glue, one virtual interrupt per
    /// guest per quantum round, and the guest stack pays the full wakeup
    /// cost only for the first frame of its flush batch (paper §5.3,
    /// batched).
    ///
    /// **Fairness:** the rounds run deficit round-robin. Each round a
    /// backlogged guest's deficit grows by its weighted quantum
    /// ([`SystemOptions::rx_flush_quantum`] ×
    /// [`SystemOptions::guest_weights`], weight 1 when unset) and it is
    /// served up to the deficit, so a guest flooding the wire delays
    /// every other guest's virq by at most one weighted quantum of
    /// copies instead of its whole backlog. Unit weights degenerate to
    /// the plain per-round quantum bit-exactly. Rounds repeat until
    /// every queue drains; [`System::rx_flush_log`] records
    /// `(round, guest, frames)` for observation.
    fn flush_guest_rx_queues(&mut self) -> Result<(), SystemError> {
        self.rx_flush_log.clear();
        // Guests whose stack already paid the full wakeup cost in this
        // flush (later rounds arrive in the same scheduling pass, so they
        // only pay the batched marginal).
        let mut woken: Vec<DomId> = Vec::new();
        // Zero-copy pool occupancy per (guest, flow) across the whole
        // flush: each landed frame takes the next slot of its flow's
        // index ring, and the ring recycles when the flush completes.
        let mut zc_occ: BTreeMap<(u32, u32), usize> = BTreeMap::new();
        let mut round = 0usize;
        while self.flush_rx_round_with(round, &mut woken, &mut zc_occ)? > 0 {
            round += 1;
        }
        Ok(())
    }

    /// One standalone DRR flush round — the open-loop consumer's unit
    /// of work between arrivals. Unlike the rounds inside
    /// [`System::flush_guest_rx_queues`], each standalone round is its
    /// own scheduling pass: the first frame per guest pays the full
    /// wakeup cost again. Returns the frames delivered this round.
    ///
    /// # Errors
    ///
    /// Propagates faults from virtual-interrupt delivery.
    pub fn flush_rx_round(&mut self) -> Result<usize, SystemError> {
        self.rx_flush_log.clear();
        let mut woken: Vec<DomId> = Vec::new();
        let mut zc_occ: BTreeMap<(u32, u32), usize> = BTreeMap::new();
        self.flush_rx_round_with(0, &mut woken, &mut zc_occ)
    }

    fn flush_rx_round_with(
        &mut self,
        round: usize,
        woken: &mut Vec<DomId>,
        zc_occ: &mut BTreeMap<(u32, u32), usize>,
    ) -> Result<usize, SystemError> {
        let quantum = self.rx_flush_quantum.max(1);
        let guest_ids: Vec<DomId> = self
            .world
            .xen
            .as_ref()
            .unwrap()
            .domains
            .iter()
            .filter(|d| !d.rx_queue.is_empty())
            // Sleeping guests' quanta are skipped: their deficit does
            // not grow, no virq is raised, and the frames stay queued
            // until the wakeup edge releases them (bounded by the
            // scheduler's wakeup timer, which idle stepping lands on).
            .filter(|d| self.sched.as_ref().map_or(true, |s| s.is_running(d.id.0)))
            .map(|d| d.id)
            .collect();
        if guest_ids.is_empty() {
            return Ok(0);
        }
        let mut flushed = 0usize;
        for g in guest_ids {
            // Deficit round-robin: the deficit grows by the guest's
            // weighted quantum each round it has backlog, the guest is
            // served up to it, and it resets when the queue drains.
            let w = u64::from(self.guest_weights.get(&g.0).copied().unwrap_or(1).max(1));
            let deficit = self.drr_deficit.entry(g.0).or_insert(0);
            *deficit = deficit.saturating_add(quantum as u64 * w);
            let deficit_at_serve = *deficit;
            let budget = usize::try_from(*deficit).unwrap_or(usize::MAX);
            let frames: Vec<Frame> = {
                let xen = self.world.xen.as_mut().unwrap();
                let queue = &mut xen.domain_mut(g).rx_queue;
                let take = queue.len().min(budget);
                queue.drain(..take).collect()
            };
            let emptied = self
                .world
                .xen
                .as_ref()
                .unwrap()
                .domain(g)
                .rx_queue
                .is_empty();
            let d = self.drr_deficit.get_mut(&g.0).expect("deficit entry");
            if emptied {
                *d = 0;
            } else {
                *d = d.saturating_sub(frames.len() as u64);
            }
            flushed += frames.len();
            if self.machine.trace.enabled() {
                self.machine.trace_event(TraceEvent::DrrGrant {
                    guest: g.0,
                    deficit: deficit_at_serve,
                    granted: frames.len() as u32,
                });
            }
            let xen = self.world.xen.as_mut().unwrap();
            xen.send_virq(&mut self.machine, g, 4);
            self.rx_flush_log.push((round, g, frames.len()));
            let first_wake = !woken.contains(&g);
            if first_wake {
                woken.push(g);
            }
            for (i, f) in frames.into_iter().enumerate() {
                let dev = self.rx_flow_dev.get(&f.flow).copied().unwrap_or(0);
                // Warm vs cold delivery: with the scheduler model on, a
                // frame serviced by a softirq CPU other than the one the
                // owning guest's vCPU occupies finds none of the guest's
                // receive path resident and pays the sTLB/cache refill
                // slice. Affinity placement makes this charge vanish;
                // oblivious policies pay it on most deliveries.
                let cold = match self.sched.as_ref() {
                    Some(s) => s.cpu_of(g.0).is_some_and(|cpu| s.nic_cpu(dev) != cpu),
                    None => false,
                };
                if cold {
                    let m = &mut self.machine;
                    m.meter
                        .charge_to(CostDomain::Xen, m.cost.cold_delivery_refill);
                    m.meter.count_event("cold_delivery");
                }
                // Zero-copy: the twin driver posted a pool page for
                // this slot, so delivery is a cached grant access
                // instead of a copy into the guest.
                let zc_hit = if self.zero_copy {
                    let slot = *zc_occ.get(&(g.0, f.flow)).unwrap_or(&0);
                    let hit = self.zc_access(g, f.flow, false, slot, f.len(), dev);
                    if hit {
                        *zc_occ.entry((g.0, f.flow)).or_insert(0) += 1;
                    }
                    hit
                } else {
                    false
                };
                if !zc_hit {
                    {
                        let m = &mut self.machine;
                        let c = m.cost.copy_cycles(f.len() as u64);
                        m.meter.charge_to(CostDomain::Xen, c);
                    }
                    if let Some(xen) = self.world.xen.as_mut() {
                        xen.note_grant_copy(Some(dev));
                    }
                }
                {
                    let m = &mut self.machine;
                    m.meter.charge_to(CostDomain::Xen, m.cost.twin_glue_rx);
                }
                {
                    let m = &mut self.machine;
                    m.meter.charge_to(CostDomain::DomU, m.cost.pv_driver_guest);
                    let stack = if i == 0 && first_wake {
                        m.cost.tcp_rx_per_packet
                    } else {
                        m.cost.tcp_rx_batch_marginal
                    };
                    m.meter.charge_to(CostDomain::DomU, stack);
                }
                let xen = self.world.xen.as_mut().unwrap();
                xen.domain_mut(g).rx_delivered.push(f);
            }
        }
        Ok(flushed)
    }

    /// Drains frames that reached the wire, across every NIC in device
    /// order.
    pub fn take_wire_frames(&mut self) -> Vec<Frame> {
        let mut out = Vec::new();
        for nic in &mut self.world.nics {
            out.extend(nic.take_tx_frames());
        }
        out
    }

    /// Frames fully delivered to the measured receive endpoint.
    pub fn delivered_rx(&self) -> usize {
        match self.config {
            Config::NativeLinux | Config::XenDom0 => self.world.kernel.rx_delivered.len(),
            Config::XenGuest | Config::TwinDrivers => {
                let gid = self.guest.expect("guest");
                self.world
                    .xen
                    .as_ref()
                    .unwrap()
                    .domain(gid)
                    .rx_delivered
                    .len()
            }
        }
    }

    /// Measures the per-packet cycle breakdown for `packets` transmits
    /// (after a warm-up run that fills the stlb and pools).
    ///
    /// # Errors
    ///
    /// Propagates per-packet errors.
    pub fn measure_tx(&mut self, packets: u64) -> Result<Breakdown, SystemError> {
        for _ in 0..32 {
            self.transmit_one()?;
        }
        self.take_wire_frames();
        self.reset_measurement();
        for _ in 0..packets {
            self.transmit_one()?;
        }
        Ok(Breakdown::from_meter(&self.machine.meter, packets))
    }

    /// Measures the per-packet cycle breakdown for `packets` receives.
    ///
    /// The warm-up covers more than one full RX-ring cycle (128
    /// descriptors): the ring's initial dom0-pool buffers are gradually
    /// replaced by hypervisor-reserved buffers, and steady state begins
    /// only after the swap completes.
    ///
    /// # Errors
    ///
    /// Propagates per-packet errors.
    pub fn measure_rx(&mut self, packets: u64) -> Result<Breakdown, SystemError> {
        for _ in 0..160 {
            self.receive_one()?;
        }
        self.reset_measurement();
        for _ in 0..packets {
            self.receive_one()?;
        }
        Ok(Breakdown::from_meter(&self.machine.meter, packets))
    }

    /// Measures amortized transmit cost at a fixed burst size: at least
    /// `packets` packets move in bursts of `burst`, and the breakdown
    /// divides total cycles by the packets actually sent.
    ///
    /// # Errors
    ///
    /// Propagates per-burst errors; [`SystemError::Build`] if the ring
    /// stops accepting packets entirely.
    pub fn measure_tx_burst(
        &mut self,
        burst: usize,
        packets: u64,
    ) -> Result<crate::measure::BurstMeasurement, SystemError> {
        let burst = burst.clamp(1, MAX_BURST);
        // Warm every NIC's stlb/pools (round-robin rotation spreads the
        // warm-up bursts across all devices).
        for _ in 0..32 * self.world.nics.len() {
            self.transmit_one()?;
        }
        self.take_wire_frames();
        self.reset_measurement();
        let mut sent = 0u64;
        while sent < packets {
            let n = burst.min((packets - sent) as usize);
            let accepted = self.transmit_burst(n)?;
            if accepted == 0 {
                return Err(SystemError::Build("transmit ring wedged".into()));
            }
            sent += accepted as u64;
        }
        Ok(self.burst_measurement(burst, sent))
    }

    /// Measures amortized receive cost at a fixed burst size (see
    /// [`System::measure_tx_burst`]; the warm-up matches
    /// [`System::measure_rx`]).
    ///
    /// # Errors
    ///
    /// Propagates per-burst errors.
    pub fn measure_rx_burst(
        &mut self,
        burst: usize,
        packets: u64,
    ) -> Result<crate::measure::BurstMeasurement, SystemError> {
        let burst = burst.clamp(1, MAX_BURST);
        // Per-NIC steady state needs a full ring cycle of buffer swaps;
        // scale the warm-up so every shard reaches it.
        for _ in 0..160 * self.world.nics.len() {
            self.receive_one()?;
        }
        self.reset_measurement();
        let mut got = 0u64;
        while got < packets {
            let n = burst.min((packets - got) as usize);
            let frames: Vec<Frame> = (0..n).map(|_| self.next_rx_frame()).collect();
            got += self.receive_burst(&frames)? as u64;
        }
        Ok(self.burst_measurement(burst, got))
    }

    fn burst_measurement(&self, burst: usize, packets: u64) -> crate::measure::BurstMeasurement {
        let meter = &self.machine.meter;
        let per_packet = |ev: &str| meter.event(ev) as f64 / packets.max(1) as f64;
        crate::measure::BurstMeasurement {
            burst,
            breakdown: Breakdown::from_meter(meter, packets),
            irqs_per_packet: per_packet("irq"),
            doorbells_per_packet: per_packet("doorbell"),
        }
    }

    /// Lets every closed moderation window open and every latched cause
    /// deliver: idles one full window (plus margin) at a time until no
    /// device holds back a delivery.
    ///
    /// # Errors
    ///
    /// Propagates faults from the deliveries.
    pub fn drain_moderated(&mut self) -> Result<(), SystemError> {
        let horizon = self
            .world
            .nics
            .iter()
            .map(twin_nic::Nic::itr_cycles)
            .max()
            .unwrap_or(0);
        let mut rounds = 0;
        loop {
            self.run_idle(horizon + 1)?;
            if self.moderated_pending.is_empty() || rounds >= 8 {
                break;
            }
            rounds += 1;
        }
        Ok(())
    }

    /// Event-driven moderated drain: idles exactly to each gated
    /// device's window-open instant until nothing is latched, with no
    /// trailing idle once the last cause delivers. Deliveries happen at
    /// the same virtual instants [`System::drain_moderated`] would
    /// produce; only the artificial idle *after* the tail differs —
    /// which is what keeps a closed-loop tuner's idle signal honest
    /// across the autotune harness's phase boundaries.
    fn drain_moderated_tight(&mut self) -> Result<(), SystemError> {
        let mut rounds = 0;
        while !self.moderated_pending.is_empty() && rounds < 64 {
            let now = self.machine.meter.now();
            let due = self
                .moderated_pending
                .iter()
                .filter_map(|&d| self.world.nics[d as usize].irq_ready_at())
                .min();
            let step = match due {
                Some(t) if t > now => t - now,
                _ => 1,
            };
            self.run_idle(step)?;
            rounds += 1;
        }
        Ok(())
    }

    /// Measures the receive path under interrupt moderation with a
    /// paced arrival process: bursts of `burst` frames are scheduled
    /// `gap_cycles` of virtual time apart (wire pacing), frames are
    /// stamped with their *scheduled* arrival, and the ITR timer decides
    /// when each device's latched work is reaped. Reports amortized
    /// cycles/packet, interrupts/packet and arrival-to-delivery latency
    /// percentiles — the latency/throughput trade-off the moderation
    /// sweep plots.
    ///
    /// With ITR 0 every burst is reaped on arrival (the PR 3 behaviour);
    /// when the offered load outruns the unmoderated per-interrupt cost,
    /// the backlog shows up as completion latency — the receive-livelock
    /// regime interrupt moderation exists to fix.
    ///
    /// # Errors
    ///
    /// Propagates per-burst errors.
    pub fn measure_rx_moderated(
        &mut self,
        burst: usize,
        packets: u64,
        gap_cycles: u64,
    ) -> Result<crate::measure::ModeratedRx, SystemError> {
        let burst = burst.clamp(1, MAX_BURST);
        // Per-NIC steady state needs a full ring cycle of buffer swaps.
        for _ in 0..160 * self.world.nics.len() {
            self.receive_one()?;
        }
        self.drain_moderated()?;
        self.reset_measurement();
        let injected = self.paced_rx_run(burst, packets, gap_cycles)?;
        let meter = &self.machine.meter;
        Ok(crate::measure::ModeratedRx {
            nics: self.world.nics.len() as u32,
            burst,
            // The sweep programs a uniform ITR; with heterogeneous
            // per-device values the point is labeled by the widest
            // window (the device that dominates the latency tail).
            itr: self
                .world
                .nics
                .iter()
                .map(twin_nic::Nic::itr)
                .max()
                .unwrap_or(0),
            gap_cycles,
            packets: injected,
            breakdown: Breakdown::from_meter(meter, injected),
            irqs_per_packet: meter.event("irq") as f64 / injected.max(1) as f64,
            moderated_irqs: meter.event("irq_moderated"),
            latency: crate::measure::LatencyStats::from_samples(self.rx_latency.samples()),
        })
    }

    /// Paced injection of `packets` frames in bursts of `burst`,
    /// scheduled `gap_cycles` apart starting now, each stamped with its
    /// scheduled wire-arrival time; ends by draining every moderated
    /// window so all injected frames complete. The inner loop of
    /// [`System::measure_rx_moderated`] and of each autotune-harness
    /// phase.
    fn paced_rx_run(
        &mut self,
        burst: usize,
        packets: u64,
        gap_cycles: u64,
    ) -> Result<u64, SystemError> {
        let injected = self.paced_rx_inject(burst, packets, gap_cycles, false)?;
        self.drain_moderated()?;
        Ok(injected)
    }

    /// The bare paced-injection loop of [`System::paced_rx_run`], with
    /// no closing drain — the phase harness separates injection from
    /// draining so a phase's settle span flows straight into its
    /// measured span. `balanced_flows` swaps the classic generator's
    /// flow ids for the device-balanced set
    /// ([`crate::measure::balanced_flow_set`], two flows per device);
    /// sequence numbers still come from the shared counter, so
    /// `(flow, seq)` keys stay unique.
    fn paced_rx_inject(
        &mut self,
        burst: usize,
        packets: u64,
        gap_cycles: u64,
        balanced_flows: bool,
    ) -> Result<u64, SystemError> {
        let balanced = if balanced_flows {
            crate::measure::balanced_flow_set(self.world.nics.len() as u32, 2)
        } else {
            Vec::new()
        };
        let t0 = self.machine.meter.now();
        let mut injected = 0u64;
        let mut round = 0u64;
        while injected < packets {
            let n = burst.min((packets - injected) as usize);
            let target = t0 + round * gap_cycles;
            let now = self.machine.meter.now();
            if now < target {
                self.run_idle(target - now)?;
            }
            let frames: Vec<Frame> = (0..n)
                .map(|_| {
                    let mut f = self.next_rx_frame();
                    if !balanced.is_empty() {
                        f.flow = balanced[(f.seq % balanced.len() as u64) as usize];
                    }
                    f
                })
                .collect();
            injected += self.receive_burst_arriving(&frames, Some(target))? as u64;
            round += 1;
        }
        Ok(injected)
    }

    /// One phase of a shifting-load paced receive run:
    /// `settle_packets` frames paced at the new gap let a retuning
    /// system adapt (unmeasured — the per-phase analogue of every
    /// harness's warm-up), then the settle tail drains event-tight, the
    /// meter and latency window reset, and `packets` frames are
    /// measured on a fresh schedule ending with its own tight drain —
    /// the same settle→drain→reset→measure→drain regime
    /// [`System::measure_rx_moderated`] measures, so per-phase points
    /// are comparable with the static moderation sweep's. The drains
    /// are event-tight ([`System::drain_moderated_tight`]) so no
    /// artificial trailing idle leaks into a closed-loop tuner's load
    /// signal at the measure boundary.
    ///
    /// The multi-phase harness [`crate::measure::measure_rx_autotuned`]
    /// strings these together; static-`ITR` and auto-tuned systems run
    /// the identical code path.
    ///
    /// # Errors
    ///
    /// Propagates per-burst errors.
    pub(crate) fn paced_rx_phase(
        &mut self,
        burst: usize,
        settle_packets: u64,
        packets: u64,
        gap_cycles: u64,
    ) -> Result<crate::measure::RxPhase, SystemError> {
        let burst = burst.clamp(1, MAX_BURST);
        self.paced_rx_inject(burst, settle_packets, gap_cycles, true)?;
        self.drain_moderated_tight()?;
        self.reset_measurement();
        let measured = self.paced_rx_inject(burst, packets, gap_cycles, true)?;
        self.drain_moderated_tight()?;
        let meter = &self.machine.meter;
        Ok(crate::measure::RxPhase {
            gap_cycles,
            packets: measured,
            breakdown: crate::measure::Breakdown::from_meter(meter, measured),
            irqs_per_packet: meter.event("irq") as f64 / measured.max(1) as f64,
            latency: crate::measure::LatencyStats::from_samples(self.rx_latency.samples()),
            retunes: meter.event("itr_retune"),
            itr_end: self
                .world
                .nics
                .iter()
                .map(twin_nic::Nic::itr)
                .max()
                .unwrap_or(0),
        })
    }
}
