//! # twin-svm — Software Virtual Memory (paper §4.1)
//!
//! SVM is the paper's core mechanism: a software translation table
//! (`stlb`) that lets the hypervisor driver instance access driver data in
//! dom0's address space *from any guest context*, while catching invalid
//! accesses (anything outside dom0's space) and aborting the driver.
//!
//! The `stlb` is a real table in simulated memory — 4096 entries of 8
//! bytes, indexed by bits 12..24 of the virtual address — because the
//! rewritten driver code produced by `twin-rewriter` performs the lookup
//! with ordinary loads, exactly like the paper's Figure 4:
//!
//! ```text
//! leal  mem, %r1          ; effective address
//! movl  %r1, %r2
//! andl  $0xfffff000, %r1  ; page address (tag)
//! movl  %r1, %r3
//! andl  $0x00fff000, %r1  ; hash index bits
//! shrl  $9, %r1           ; ... times 8 bytes per entry
//! cmpl  stlb(%r1), %r3    ; tag check
//! jne   .slow             ; miss -> __svm_slow, then retry
//! xorl  stlb+4(%r1), %r2  ; entry word 2 = tag XOR mapped-page
//! movl  (%r2), %dst       ; the access, through the mapped address
//! ```
//!
//! Entry word 2 stores `tag XOR mapped_page`, so a single `xor` of the
//! *full* virtual address yields the mapped address with the page offset
//! preserved — this is why the paper's fast path is only ten instructions.
//!
//! The slow path ([`Svm::slow_path`]) performs the hash-chain lookup,
//! first-touch permission check, and page mapping: each miss maps **two
//! consecutive dom0 pages** into the hypervisor window, because x86
//! permits unaligned accesses that straddle a page boundary (paper
//! footnote 2). Illegal addresses produce a fault that the hypervisor
//! turns into a driver abort.

use std::collections::HashMap;
use twin_machine::{CostDomain, ExecMode, Fault, Machine, SpaceId, HYPER_BASE, PAGE_SIZE};

/// Number of stlb entries (paper §4.1: "an stlb hashtable with 4096
/// entries, mapping up to 16MB of dom0 virtual memory").
pub const STLB_ENTRIES: u64 = 4096;

/// Bytes per stlb entry: tag word + xor word.
pub const STLB_ENTRY_SIZE: u64 = 8;

/// Total table size in bytes.
pub const STLB_SIZE: u64 = STLB_ENTRIES * STLB_ENTRY_SIZE;

/// Tag value marking an empty entry. Never page-aligned, so it can never
/// match a real page tag.
pub const STLB_EMPTY_TAG: u32 = 0xffff_ffff;

/// Default placement of the stlb inside the hypervisor region.
pub const STLB_HYPER_BASE: u64 = HYPER_BASE + 0x0020_0000;

/// Default placement of the 16 MiB mapping window.
pub const WINDOW_HYPER_BASE: u64 = HYPER_BASE + 0x0100_0000;

/// Window capacity in pages (16 MiB).
pub const WINDOW_PAGES: u64 = STLB_ENTRIES;

/// Symbol name the rewriter emits for the table.
pub const STLB_SYMBOL: &str = "stlb";

/// Extern called by rewritten code on an stlb miss.
pub const SLOW_PATH_SYMBOL: &str = "__svm_slow";

/// Extern called by rewritten code to translate indirect-call targets
/// (paper §5.1.2).
pub const CALL_XLAT_SYMBOL: &str = "__svm_call_xlat";

/// Counters describing SVM behaviour; exported to the benches.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SvmStats {
    /// Slow-path invocations.
    pub misses: u64,
    /// Misses that were hash-collision evictions (entry was valid for a
    /// different page).
    pub collisions: u64,
    /// First-touch page mappings performed.
    pub pages_mapped: u64,
    /// Accesses rejected (would-be hypervisor corruption).
    pub rejected: u64,
    /// Whole-window flushes due to exhaustion.
    pub window_flushes: u64,
    /// Indirect-call translations served.
    pub call_translations: u64,
}

/// Where an stlb table lives and how to address it.
#[derive(Copy, Clone, Debug)]
pub struct TablePlacement {
    /// Virtual base address of the table.
    pub base: u64,
    /// Address space used to read/write it.
    pub space: SpaceId,
    /// Mode used to access it ([`ExecMode::Hypervisor`] for the hypervisor
    /// instance's table in the shared region).
    pub mode: ExecMode,
}

/// The SVM runtime: slow-path handler, mapping window and call-translation
/// cache for one driver instance.
///
/// Two configurations exist, matching the paper:
///
/// * **Hypervisor instance** ([`Svm::new_hypervisor`]): misses map dom0
///   pages into the hypervisor window; invalid addresses are rejected.
/// * **VM instance, identity mode** ([`Svm::new_identity`], paper §5.1.2):
///   the same rewritten binary runs in dom0 with identity mappings — the
///   driver "continues to use its original data addresses and functions
///   correctly as before, except that it runs a little slower".
#[derive(Debug)]
pub struct Svm {
    table: TablePlacement,
    window_base: u64,
    window_next: u64,
    /// dom0 page -> mapped page (full map; survives stlb evictions).
    mapped: HashMap<u64, u64>,
    call_xlat: HashMap<u64, u64>,
    /// Constant offset from VM-driver code addresses to hypervisor-driver
    /// code addresses (paper §5.1.2).
    code_offset: i64,
    /// Valid hypervisor-driver code range for translated calls.
    code_range: (u64, u64),
    dom0_space: SpaceId,
    identity: bool,
    stats: SvmStats,
    /// Recent miss addresses (diagnostics; capped).
    recent_misses: Vec<u64>,
}

impl Svm {
    /// Creates the hypervisor-instance SVM with the table at
    /// [`STLB_HYPER_BASE`] and window at [`WINDOW_HYPER_BASE`], and
    /// initialises the table in simulated memory.
    ///
    /// `code_offset`/`code_range` configure indirect-call translation:
    /// a VM-driver code address `a` maps to `a + code_offset`, which must
    /// fall within `code_range`.
    ///
    /// # Errors
    ///
    /// Fails if hypervisor memory for the table cannot be mapped.
    pub fn new_hypervisor(
        m: &mut Machine,
        dom0_space: SpaceId,
        code_offset: i64,
        code_range: (u64, u64),
    ) -> Result<Svm, Fault> {
        let table = TablePlacement {
            base: STLB_HYPER_BASE,
            space: dom0_space,
            mode: ExecMode::Hypervisor,
        };
        m.map_hyper_fresh(table.base, STLB_SIZE.div_ceil(PAGE_SIZE))?;
        let svm = Svm {
            table,
            window_base: WINDOW_HYPER_BASE,
            window_next: 0,
            mapped: HashMap::new(),
            call_xlat: HashMap::new(),
            code_offset,
            code_range,
            dom0_space,
            identity: false,
            stats: SvmStats::default(),
            recent_misses: Vec::new(),
        };
        svm.clear_table(m)?;
        Ok(svm)
    }

    /// Creates an identity-mode SVM for the VM instance running in dom0:
    /// the table lives in dom0 memory at `table_base` (this constructor
    /// maps it), and every valid dom0 address translates to itself.
    ///
    /// # Errors
    ///
    /// Fails if the table pages cannot be mapped in dom0.
    pub fn new_identity(
        m: &mut Machine,
        dom0_space: SpaceId,
        table_base: u64,
    ) -> Result<Svm, Fault> {
        let table = TablePlacement {
            base: table_base,
            space: dom0_space,
            mode: ExecMode::Guest,
        };
        m.map_fresh(dom0_space, table.base, STLB_SIZE.div_ceil(PAGE_SIZE))?;
        let svm = Svm {
            table,
            window_base: 0,
            window_next: 0,
            mapped: HashMap::new(),
            call_xlat: HashMap::new(),
            code_offset: 0,
            code_range: (0, u64::MAX),
            dom0_space,
            identity: true,
            stats: SvmStats::default(),
            recent_misses: Vec::new(),
        };
        svm.clear_table(m)?;
        Ok(svm)
    }

    /// The table placement (the loader resolves the `stlb` symbol to
    /// `placement().base`).
    pub fn placement(&self) -> TablePlacement {
        self.table
    }

    /// Statistics counters.
    pub fn stats(&self) -> SvmStats {
        self.stats
    }

    /// True for the identity-mode (VM instance) configuration.
    pub fn is_identity(&self) -> bool {
        self.identity
    }

    /// Recent miss addresses (diagnostics).
    pub fn recent_misses(&self) -> &[u64] {
        &self.recent_misses
    }

    /// stlb index for a virtual address: bits 12..24.
    pub fn index_of(vaddr: u64) -> u64 {
        (vaddr >> 12) & (STLB_ENTRIES - 1)
    }

    /// Resets every entry to the empty tag.
    ///
    /// # Errors
    ///
    /// Fails if the table memory is not mapped.
    pub fn clear_table(&self, m: &mut Machine) -> Result<(), Fault> {
        for i in 0..STLB_ENTRIES {
            let e = self.table.base + i * STLB_ENTRY_SIZE;
            m.write_u32(self.table.space, self.table.mode, e, STLB_EMPTY_TAG)?;
            m.write_u32(self.table.space, self.table.mode, e + 4, 0)?;
        }
        Ok(())
    }

    /// Flushes all translations: clears the table, forgets mappings and
    /// resets the window allocator. (Window pages stay mapped in the
    /// hypervisor region; they are simply re-used.)
    ///
    /// # Errors
    ///
    /// Fails if the table memory is not mapped.
    pub fn flush(&mut self, m: &mut Machine) -> Result<(), Fault> {
        self.mapped.clear();
        self.window_next = 0;
        self.clear_table(m)
    }

    /// The slow path (paper §4.1): called when the fast path's tag check
    /// fails. Validates the address, maps the dom0 page (and its
    /// successor) into the window on first touch, and fills the stlb
    /// entry so the retried fast path hits.
    ///
    /// # Errors
    ///
    /// [`Fault::EnvFault`] when the address is not mapped in dom0 — the
    /// hypervisor aborts the driver on this fault ("on such an illegal
    /// memory access by the driver, it is aborted").
    pub fn slow_path(&mut self, m: &mut Machine, vaddr: u64) -> Result<u64, Fault> {
        self.stats.misses += 1;
        if self.recent_misses.len() < 4096 {
            self.recent_misses.push(vaddr);
        }
        m.meter.count_event("stlb_miss");
        // Modeled cost of the out-of-line handler itself.
        let slow_cycles = 45;
        m.meter.charge(slow_cycles);

        let page = vaddr & !(PAGE_SIZE - 1);
        let mapped_page = if self.identity {
            // Identity mode: validate the address is dom0's, map to itself.
            m.translate(self.dom0_space, ExecMode::Guest, page, false)
                .map_err(|_| {
                    self.stats.rejected += 1;
                    Fault::EnvFault(format!("svm: access to invalid address {vaddr:#x}"))
                })?;
            page
        } else if let Some(mp) = self.mapped.get(&page) {
            // Hash-chain hit: the page is mapped, the stlb entry was
            // evicted by a colliding page.
            self.stats.collisions += 1;
            m.meter.count_event("stlb_collision");
            *mp
        } else {
            self.map_page(m, page)?
        };

        self.fill_entry(m, page, mapped_page)?;
        Ok(mapped_page | (vaddr & (PAGE_SIZE - 1)))
    }

    /// First-touch mapping: check permissions, allocate two window slots,
    /// alias them to the dom0 page and its successor.
    fn map_page(&mut self, m: &mut Machine, page: u64) -> Result<u64, Fault> {
        // Permission check: the page must be mapped in dom0's space.
        // Hypervisor addresses, other-domain addresses and wild pointers
        // all fail here.
        if page >= HYPER_BASE {
            self.stats.rejected += 1;
            return Err(Fault::EnvFault(format!(
                "svm: driver attempted hypervisor access at {page:#x}"
            )));
        }
        let t = m
            .translate(self.dom0_space, ExecMode::Guest, page, false)
            .map_err(|_| {
                self.stats.rejected += 1;
                Fault::EnvFault(format!("svm: access to invalid address {page:#x}"))
            })?;

        if self.window_next + 2 > WINDOW_PAGES {
            // Window exhausted: flush and start over (simple policy).
            self.stats.window_flushes += 1;
            self.flush(m)?;
        }

        let slot = self.window_next;
        self.window_next += 2;
        let win_addr = self.window_base + slot * PAGE_SIZE;
        // The window entry copies dom0's entry wholesale, preserving the
        // page *kind*: an MMIO page (the NIC register window mapped into
        // dom0) stays MMIO when accessed through SVM, so the rewritten
        // driver's register accesses still reach the device model.
        m.hyper.map(win_addr, t.entry);
        self.stats.pages_mapped += 1;
        m.meter.count_event("svm_page_mapped");

        // Map the next dom0 page too (unaligned accesses may straddle,
        // paper footnote 2). If it isn't mapped in dom0, leave the second
        // window slot unmapped — a straddling access will then fault
        // rather than corrupt anything. Both pages are recorded in the
        // mapping chain so a later direct touch of the second page reuses
        // the window pair instead of allocating a new one.
        if let Ok(t2) = m.translate(self.dom0_space, ExecMode::Guest, page + PAGE_SIZE, false) {
            m.hyper.map(win_addr + PAGE_SIZE, t2.entry);
            self.mapped.insert(page + PAGE_SIZE, win_addr + PAGE_SIZE);
        }

        self.mapped.insert(page, win_addr);
        Ok(win_addr)
    }

    /// Writes the stlb entry for `page` (evicting any collision).
    fn fill_entry(&self, m: &mut Machine, page: u64, mapped_page: u64) -> Result<(), Fault> {
        let idx = Svm::index_of(page);
        let e = self.table.base + idx * STLB_ENTRY_SIZE;
        m.write_u32(self.table.space, self.table.mode, e, page as u32)?;
        m.write_u32(
            self.table.space,
            self.table.mode,
            e + 4,
            (page ^ mapped_page) as u32,
        )?;
        Ok(())
    }

    /// Registers the code range and offset for indirect-call translation.
    pub fn set_code_mapping(&mut self, offset: i64, range: (u64, u64)) {
        self.code_offset = offset;
        self.code_range = range;
        self.call_xlat.clear();
    }

    /// Translates a VM-driver code address to the hypervisor-driver
    /// address (paper §5.1.2). Cached in the `stlb_call` table; the
    /// translation itself is the constant code offset because both
    /// instances run the same rewritten binary.
    ///
    /// # Errors
    ///
    /// [`Fault::EnvFault`] when the translated target falls outside the
    /// hypervisor driver's code — a control-flow violation.
    pub fn translate_call(&mut self, m: &mut Machine, vm_target: u64) -> Result<u64, Fault> {
        self.stats.call_translations += 1;
        m.meter.count_event("stlb_call_xlat");
        let xlat_cycles = 8;
        m.meter.charge(xlat_cycles);
        if let Some(t) = self.call_xlat.get(&vm_target) {
            return Ok(*t);
        }
        let target = vm_target.wrapping_add(self.code_offset as u64);
        if target < self.code_range.0 || target >= self.code_range.1 {
            self.stats.rejected += 1;
            return Err(Fault::EnvFault(format!(
                "svm: indirect call to {vm_target:#x} resolves outside driver code"
            )));
        }
        self.call_xlat.insert(vm_target, target);
        Ok(target)
    }

    /// Convenience used by native hypervisor support routines (paper §4.3
    /// — they "make use of the stlb translation table explicitly while
    /// accessing driver data"): translate a dom0 virtual address through
    /// SVM, mapping on demand.
    ///
    /// # Errors
    ///
    /// Same as [`Svm::slow_path`].
    pub fn translate_data(&mut self, m: &mut Machine, vaddr: u64) -> Result<u64, Fault> {
        let page = vaddr & !(PAGE_SIZE - 1);
        if self.identity {
            return Ok(vaddr);
        }
        if let Some(mp) = self.mapped.get(&page) {
            return Ok(mp | (vaddr & (PAGE_SIZE - 1)));
        }
        let mapped = self.map_page(m, page)?;
        self.fill_entry(m, page, mapped)?;
        Ok(mapped | (vaddr & (PAGE_SIZE - 1)))
    }

    /// Charges the cycle cost of the *fast path* hit for native support
    /// routines that model an stlb lookup without executing rewritten
    /// code (the 10-instruction Figure 4 sequence).
    pub fn charge_fast_path(&self, m: &mut Machine) {
        let cycles = 2 * m.cost.load + 6 * m.cost.alu + m.cost.branch_not_taken;
        m.meter.charge_to(CostDomain::Driver, cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Machine, SpaceId, Svm) {
        let mut m = Machine::new();
        let dom0 = m.new_space();
        m.map_fresh(dom0, 0x2000_0000, 16).unwrap();
        let svm = Svm::new_hypervisor(&mut m, dom0, 0, (0, u64::MAX)).unwrap();
        (m, dom0, svm)
    }

    fn read_entry(m: &Machine, svm: &Svm, vaddr: u64) -> (u32, u32) {
        let p = svm.placement();
        let e = p.base + Svm::index_of(vaddr) * STLB_ENTRY_SIZE;
        (
            m.read_u32(p.space, p.mode, e).unwrap(),
            m.read_u32(p.space, p.mode, e + 4).unwrap(),
        )
    }

    #[test]
    fn miss_fills_entry_and_xor_translates() {
        let (mut m, dom0, mut svm) = setup();
        let vaddr = 0x2000_0123;
        let mapped = svm.slow_path(&mut m, vaddr).unwrap();
        assert_eq!(mapped & 0xfff, 0x123, "page offset preserved");
        assert!(mapped >= WINDOW_HYPER_BASE);
        // The entry encodes tag and tag^mapped, exactly like Figure 4.
        let (tag, xorw) = read_entry(&m, &svm, vaddr);
        assert_eq!(tag, 0x2000_0000);
        assert_eq!(tag ^ xorw, (mapped & !0xfff) as u32);
        // The window page aliases the dom0 page: writes are visible both ways.
        m.write_u32(dom0, ExecMode::Guest, vaddr, 0xfeed).unwrap();
        assert_eq!(
            m.read_u32(dom0, ExecMode::Hypervisor, mapped).unwrap(),
            0xfeed
        );
        assert_eq!(svm.stats().misses, 1);
        assert_eq!(svm.stats().pages_mapped, 1);
    }

    #[test]
    fn second_touch_reuses_mapping() {
        let (mut m, _dom0, mut svm) = setup();
        let a = svm.slow_path(&mut m, 0x2000_0000).unwrap();
        let b = svm.slow_path(&mut m, 0x2000_0004).unwrap();
        assert_eq!(a + 4, b);
        assert_eq!(svm.stats().pages_mapped, 1, "no second mapping");
    }

    #[test]
    fn straddling_access_works_via_adjacent_mapping() {
        let (mut m, dom0, mut svm) = setup();
        // Map vaddr in page 0; an unaligned u32 at page end must read into
        // the *adjacent* window page, which aliases dom0's next page.
        let mapped = svm.slow_path(&mut m, 0x2000_0ffe).unwrap();
        m.write_u32(dom0, ExecMode::Guest, 0x2000_0ffe, 0xa1b2_c3d4)
            .unwrap();
        assert_eq!(
            m.read_u32(dom0, ExecMode::Hypervisor, mapped).unwrap(),
            0xa1b2_c3d4
        );
    }

    #[test]
    fn illegal_access_rejected() {
        let (mut m, _dom0, mut svm) = setup();
        // Unmapped dom0 address.
        assert!(svm.slow_path(&mut m, 0x7777_0000).is_err());
        // Hypervisor address: the driver trying to corrupt Xen.
        assert!(svm.slow_path(&mut m, HYPER_BASE + 0x100).is_err());
        assert_eq!(svm.stats().rejected, 2);
    }

    #[test]
    fn collision_evicts_but_chain_survives() {
        let (mut m, dom0, mut svm) = setup();
        // Two dom0 pages 16 MiB apart share an stlb index.
        let a = 0x2000_0000u64;
        let b = a + STLB_ENTRIES * PAGE_SIZE;
        m.map_fresh(dom0, b, 1).unwrap();
        assert_eq!(Svm::index_of(a), Svm::index_of(b));
        let ma = svm.slow_path(&mut m, a).unwrap();
        let _mb = svm.slow_path(&mut m, b).unwrap();
        // Entry now tags b; touching a again is a collision miss that
        // reuses the existing window mapping.
        let ma2 = svm.slow_path(&mut m, a).unwrap();
        assert_eq!(ma, ma2);
        assert_eq!(svm.stats().collisions, 1);
        assert_eq!(svm.stats().pages_mapped, 2);
    }

    #[test]
    fn identity_mode_translates_to_self() {
        let mut m = Machine::new();
        let dom0 = m.new_space();
        m.map_fresh(dom0, 0x2000_0000, 4).unwrap();
        let mut svm = Svm::new_identity(&mut m, dom0, 0x2800_0000).unwrap();
        let t = svm.slow_path(&mut m, 0x2000_0abc).unwrap();
        assert_eq!(t, 0x2000_0abc);
        let (tag, xorw) = {
            let p = svm.placement();
            let e = p.base + Svm::index_of(0x2000_0abc) * STLB_ENTRY_SIZE;
            (
                m.read_u32(p.space, p.mode, e).unwrap(),
                m.read_u32(p.space, p.mode, e + 4).unwrap(),
            )
        };
        assert_eq!(tag, 0x2000_0000);
        assert_eq!(xorw, 0, "identity mapping xors to zero");
        // Invalid addresses still rejected in identity mode.
        assert!(svm.slow_path(&mut m, 0x6666_0000).is_err());
    }

    #[test]
    fn call_translation_constant_offset() {
        let (mut m, _dom0, mut svm) = setup();
        svm.set_code_mapping(0x1000_0000, (0x1800_0000, 0x1900_0000));
        let t = svm.translate_call(&mut m, 0x0800_0040).unwrap();
        assert_eq!(t, 0x1800_0040);
        // Cached second time.
        let t2 = svm.translate_call(&mut m, 0x0800_0040).unwrap();
        assert_eq!(t, t2);
        assert_eq!(svm.stats().call_translations, 2);
        // Outside the driver: rejected (control-flow protection).
        assert!(svm.translate_call(&mut m, 0x4000_0000).is_err());
    }

    #[test]
    fn flush_resets_table() {
        let (mut m, _dom0, mut svm) = setup();
        svm.slow_path(&mut m, 0x2000_0000).unwrap();
        svm.flush(&mut m).unwrap();
        let (tag, _) = read_entry(&m, &svm, 0x2000_0000);
        assert_eq!(tag, STLB_EMPTY_TAG);
        // Next touch maps afresh.
        svm.slow_path(&mut m, 0x2000_0000).unwrap();
        assert_eq!(svm.stats().pages_mapped, 2);
    }

    #[test]
    fn translate_data_for_native_helpers() {
        let (mut m, dom0, mut svm) = setup();
        let t = svm.translate_data(&mut m, 0x2000_0444).unwrap();
        m.write_u32(dom0, ExecMode::Hypervisor, t, 99).unwrap();
        assert_eq!(m.read_u32(dom0, ExecMode::Guest, 0x2000_0444).unwrap(), 99);
        // Data translation fills the stlb so rewritten code will hit.
        let (tag, _) = read_entry(&m, &svm, 0x2000_0444);
        assert_eq!(tag, 0x2000_0000);
    }

    #[test]
    fn index_uses_bits_12_to_24() {
        assert_eq!(Svm::index_of(0x0000_0000), 0);
        assert_eq!(Svm::index_of(0x0000_1000), 1);
        assert_eq!(Svm::index_of(0x00ff_f000), 0xfff);
        assert_eq!(Svm::index_of(0x0100_0000), 0, "wraps at 16 MiB");
    }
}
