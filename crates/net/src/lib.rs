//! # twin-net — networking substrate
//!
//! Ethernet frames, MAC addresses, checksums and simple TCP-stream flow
//! models used by the NIC model, the kernel network stack model and the
//! workload generators (netperf-like streaming, paper §6.2; web traffic,
//! §6.3).
//!
//! Frames carry their 14-byte Ethernet header as real bytes (so the
//! hypervisor's receive demultiplexing by destination MAC — paper §5.3 —
//! operates on actual memory contents) plus a payload *length*; bulk
//! payload bytes are not materialised, which keeps multi-gigabit
//! simulations cheap while preserving every header-touching code path.

use std::fmt;

/// Standard Ethernet MTU (payload bytes).
pub const MTU: u32 = 1500;

/// Ethernet header length in bytes.
pub const ETH_HEADER_LEN: u32 = 14;

/// Bits on the wire per frame of `len` payload bytes: preamble (8) +
/// header (14) + FCS (4) + inter-frame gap (12) are accounted so that
/// throughput numbers line up with what netperf reports on real gigabit
/// hardware.
pub fn wire_bits(payload_len: u32) -> u64 {
    ((payload_len + ETH_HEADER_LEN + 8 + 4 + 12) as u64) * 8
}

/// A 48-bit MAC address.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// A deterministic locally-administered address for guest `n`.
    pub fn for_guest(n: u32) -> MacAddr {
        MacAddr([0x02, 0x16, 0x3e, (n >> 16) as u8, (n >> 8) as u8, n as u8])
    }

    /// A deterministic locally-administered address for physical NIC `n`
    /// (distinct OUI byte from the guest range, so hardware and guest
    /// identities never collide in demultiplexing tests).
    pub fn for_nic(n: u32) -> MacAddr {
        MacAddr([0x02, 0x16, 0x4e, (n >> 16) as u8, (n >> 8) as u8, n as u8])
    }

    /// Whether this is the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == MacAddr::BROADCAST
    }

    /// Parses `aa:bb:cc:dd:ee:ff` notation.
    pub fn parse(s: &str) -> Option<MacAddr> {
        let mut out = [0u8; 6];
        let mut parts = s.split(':');
        for b in &mut out {
            *b = u8::from_str_radix(parts.next()?, 16).ok()?;
        }
        parts.next().is_none().then_some(MacAddr(out))
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// EtherType values used by the models.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806).
    Arp,
    /// Anything else (raw value).
    Other(u16),
}

impl EtherType {
    /// The 16-bit wire value.
    pub fn value(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }

    /// From the 16-bit wire value.
    pub fn from_value(v: u16) -> EtherType {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

/// An Ethernet frame: real header fields plus payload length and a flow
/// tag for bookkeeping in workloads.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Frame {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// EtherType.
    pub ethertype: EtherType,
    /// Payload length in bytes (not materialised).
    pub payload_len: u32,
    /// Flow identifier (workload bookkeeping; not on the wire).
    pub flow: u32,
    /// Sequence number within the flow (workload bookkeeping).
    pub seq: u64,
}

impl Frame {
    /// A full-MTU IPv4 data frame for `flow`.
    pub fn data(dst: MacAddr, src: MacAddr, flow: u32, seq: u64) -> Frame {
        Frame {
            dst,
            src,
            ethertype: EtherType::Ipv4,
            payload_len: MTU,
            flow,
            seq,
        }
    }

    /// Total frame length (header + payload) in bytes.
    pub fn len(&self) -> u32 {
        ETH_HEADER_LEN + self.payload_len
    }

    /// Frames are never empty (the header is always present).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Serialises the 14-byte Ethernet header.
    pub fn header_bytes(&self) -> [u8; ETH_HEADER_LEN as usize] {
        let mut h = [0u8; ETH_HEADER_LEN as usize];
        h[0..6].copy_from_slice(&self.dst.0);
        h[6..12].copy_from_slice(&self.src.0);
        h[12..14].copy_from_slice(&self.ethertype.value().to_be_bytes());
        h
    }

    /// Parses a 14-byte Ethernet header (inverse of
    /// [`Frame::header_bytes`], with zeroed bookkeeping fields).
    pub fn from_header_bytes(h: &[u8], payload_len: u32) -> Option<Frame> {
        if h.len() < ETH_HEADER_LEN as usize {
            return None;
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&h[0..6]);
        src.copy_from_slice(&h[6..12]);
        let et = u16::from_be_bytes([h[12], h[13]]);
        Some(Frame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: EtherType::from_value(et),
            payload_len,
            flow: 0,
            seq: 0,
        })
    }
}

/// Length of the bookkeeping metadata (flow id + sequence number) stored
/// immediately after the Ethernet header in simulated packet buffers.
pub const META_LEN: u32 = 12;

impl Frame {
    /// Serialises the wire prefix actually materialised in simulated
    /// memory: 14 header bytes followed by [`META_LEN`] bookkeeping bytes
    /// (flow id, sequence number). The rest of the payload is length-only.
    pub fn wire_prefix(&self) -> Vec<u8> {
        let mut v = self.header_bytes().to_vec();
        v.extend_from_slice(&self.flow.to_le_bytes());
        v.extend_from_slice(&self.seq.to_le_bytes());
        v
    }

    /// Parses a wire prefix written by [`Frame::wire_prefix`].
    /// `total_len` is header + payload.
    pub fn from_wire_prefix(bytes: &[u8], total_len: u32) -> Option<Frame> {
        if bytes.len() < (ETH_HEADER_LEN + META_LEN) as usize || total_len < ETH_HEADER_LEN {
            return None;
        }
        let mut f = Frame::from_header_bytes(bytes, total_len - ETH_HEADER_LEN)?;
        let h = ETH_HEADER_LEN as usize;
        f.flow = u32::from_le_bytes(bytes[h..h + 4].try_into().ok()?);
        f.seq = u64::from_le_bytes(bytes[h + 4..h + 12].try_into().ok()?);
        Some(f)
    }
}

/// RFC 1071 Internet checksum over a byte slice.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// A unidirectional TCP-stream model, netperf style: emits back-to-back
/// MTU-sized data frames; the reverse direction produces one ACK frame per
/// `ack_every` data frames (delayed-ACK behaviour).
#[derive(Clone, Debug)]
pub struct TcpStream {
    /// Flow id.
    pub flow: u32,
    /// Sender MAC.
    pub src: MacAddr,
    /// Receiver MAC.
    pub dst: MacAddr,
    next_seq: u64,
    acks_owed: u32,
    /// Data frames per ACK (Linux delayed ACK default: 2).
    pub ack_every: u32,
}

impl TcpStream {
    /// Creates a stream between two endpoints.
    pub fn new(flow: u32, src: MacAddr, dst: MacAddr) -> TcpStream {
        TcpStream {
            flow,
            src,
            dst,
            next_seq: 0,
            acks_owed: 0,
            ack_every: 2,
        }
    }

    /// Next full-size data frame.
    pub fn next_data(&mut self) -> Frame {
        let f = Frame::data(self.dst, self.src, self.flow, self.next_seq);
        self.next_seq += 1;
        f
    }

    /// Registers receipt of one data frame; returns an ACK frame when the
    /// delayed-ACK counter fires.
    pub fn on_data_received(&mut self) -> Option<Frame> {
        self.acks_owed += 1;
        if self.acks_owed >= self.ack_every {
            self.acks_owed = 0;
            Some(Frame {
                dst: self.src,
                src: self.dst,
                ethertype: EtherType::Ipv4,
                payload_len: 52, // TCP/IP headers + options, no data
                flow: self.flow,
                seq: self.next_seq,
            })
        } else {
            None
        }
    }

    /// Number of data frames emitted so far.
    pub fn sent(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_display_parse_roundtrip() {
        let m = MacAddr::for_guest(5);
        let s = m.to_string();
        assert_eq!(MacAddr::parse(&s), Some(m));
        assert_eq!(MacAddr::parse("zz:00:00:00:00:00"), None);
        assert_eq!(MacAddr::parse("00:11:22:33:44"), None);
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(!m.is_broadcast());
    }

    #[test]
    fn guest_macs_unique() {
        let a = MacAddr::for_guest(1);
        let b = MacAddr::for_guest(2);
        assert_ne!(a, b);
    }

    #[test]
    fn frame_header_roundtrip() {
        let f = Frame::data(MacAddr::for_guest(1), MacAddr::for_guest(2), 3, 4);
        let h = f.header_bytes();
        let g = Frame::from_header_bytes(&h, f.payload_len).unwrap();
        assert_eq!(g.dst, f.dst);
        assert_eq!(g.src, f.src);
        assert_eq!(g.ethertype, EtherType::Ipv4);
        assert_eq!(g.payload_len, MTU);
        assert!(Frame::from_header_bytes(&h[..10], 0).is_none());
    }

    #[test]
    fn ethertype_values() {
        assert_eq!(EtherType::Ipv4.value(), 0x0800);
        assert_eq!(EtherType::from_value(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from_value(0x1234), EtherType::Other(0x1234));
    }

    #[test]
    fn checksum_known_vector() {
        let data = [0x45u8, 0x00, 0x00, 0x3c, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06];
        let c = internet_checksum(&data);
        let mut with = data.to_vec();
        with.extend_from_slice(&c.to_be_bytes());
        assert_eq!(internet_checksum(&with), 0);
        let _ = internet_checksum(&[1, 2, 3]);
    }

    #[test]
    fn tcp_stream_acks() {
        let mut s = TcpStream::new(1, MacAddr::for_guest(1), MacAddr::for_guest(2));
        let d0 = s.next_data();
        let d1 = s.next_data();
        assert_eq!(d0.seq, 0);
        assert_eq!(d1.seq, 1);
        assert_eq!(s.sent(), 2);
        assert!(s.on_data_received().is_none());
        let ack = s.on_data_received().expect("delayed ack fires");
        assert_eq!(ack.dst, s.src, "ack flows back to the sender");
        assert_eq!(ack.payload_len, 52);
    }

    #[test]
    fn wire_prefix_roundtrip() {
        let f = Frame {
            dst: MacAddr::for_guest(9),
            src: MacAddr::for_guest(8),
            ethertype: EtherType::Ipv4,
            payload_len: 700,
            flow: 0xabcd,
            seq: 0x1122_3344_5566,
        };
        let p = f.wire_prefix();
        let g = Frame::from_wire_prefix(&p, f.len()).unwrap();
        assert_eq!(g, f);
        assert!(Frame::from_wire_prefix(&p[..10], f.len()).is_none());
    }

    #[test]
    fn wire_bits_accounts_overheads() {
        // A 1500-byte frame is 1538 bytes on the wire.
        assert_eq!(wire_bits(MTU), 1538 * 8);
    }
}
