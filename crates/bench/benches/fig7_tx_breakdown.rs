//! Figure 7: CPU cycles per packet for the transmit workload, broken
//! down into the paper's four categories (dom0 / domU / Xen / e1000),
//! profiled on a single NIC.

use twin_bench::{banner, packets, PAPER_FIG7_TOTALS};
use twindrivers::{Config, System};

fn main() {
    banner(
        "Figure 7 — CPU cycles per packet, transmit (single NIC profile)",
        "domU 21159 and domU-twin 9972 cycles/packet; rewritten driver \
         2218 vs native 960; dom0 virtualisation tax 1184",
    );
    for config in Config::ALL {
        let mut sys = System::build(config).expect("build");
        let b = sys.measure_tx(packets()).expect("measure");
        println!("{}", b.row(config.label()));
    }
    println!();
    for (label, total) in PAPER_FIG7_TOTALS {
        println!("  paper total for {label}: {total:.0} cycles/packet");
    }
}
