//! Scheduler-aware flow-affinity sweep: cache-local NIC placement
//! driven by the vCPU run/sleep model vs static flow hashing, at 4
//! NICs / burst 32 across run duty cycles.
//!
//! Not a paper figure — TwinDrivers (§5) pins one netperf guest per
//! NIC and never migrates, so the paper cannot observe the cost of a
//! frame landing on a NIC whose softirq CPU is not the owning guest's
//! vCPU. This sweep models exactly that: four guests, each with one
//! flow and one pinned vCPU that is deliberately placed on a
//! *different* CPU than the flow's hash-chosen NIC softirq. Under
//! `ShardPolicy::FlowHash` every delivery pays the cold sTLB/cache
//! refill (`CostParams::cold_delivery_refill`); under
//! `ShardPolicy::Affinity` the demux re-places each flow on a NIC
//! local to the guest's vCPU, so every delivery is warm. Duty cycles
//! below 100% additionally exercise the DRR sleep-skip: sleeping
//! guests' frames defer to the wakeup edge (bounded by the scheduler
//! period), for both policies alike.
//!
//! Acceptance at 4 NICs / burst 32 / 50% duty:
//! * Affinity RX cycles/packet ≥ 1.2× better than FlowHash;
//! * Affinity victim p99 ≤ 1.5× FlowHash's (sleep deferral dominates
//!   both; affinity must not trade tail latency for throughput);
//! * zero drops and zero per-(guest, flow) reorders at every point.
//!
//! Besides the human-readable table, the sweep writes
//! **`BENCH_affinity.json`** (workspace root) so CI's bench-regression
//! gate can track the trajectory against `bench/baseline_affinity.json`.

use twin_bench::{banner, packets};
use twindrivers::measure::{balanced_flow_set, measure_rx_affinity, AffinityPoint};
use twindrivers::net::MacAddr;
use twindrivers::system::DomId;
use twindrivers::{Config, SchedOptions, ShardPolicy, System, SystemOptions};

const NICS: usize = 4;
const CPUS: u32 = 4;
const BURST: usize = 32;
/// Scheduler period halves, in cycles: at 50% duty a vCPU runs
/// 300k cycles then sleeps 300k. Long against the arrival gap (tens of
/// bursts land per phase) and short against the sweep span.
const PHASE_CYCLES: u64 = 300_000;
/// Run duty cycles swept, in percent.
const DUTIES: [u32; 2] = [100, 50];

fn build(policy: ShardPolicy) -> System {
    let opts = SystemOptions {
        num_nics: NICS,
        shard: policy,
        sched: Some(SchedOptions {
            num_cpus: CPUS,
            ..SchedOptions::default()
        }),
        // Pure interrupt-driven reap, no caps, no watermark: every
        // arrival is reaped immediately, so a drop-free run is the
        // only correct outcome and any drop fails the acceptance.
        tracing: std::env::var_os("TWIN_TRACE_OUT").is_some(),
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).expect("build system");
    for g in 2..=4u32 {
        sys.add_guest(MacAddr::for_guest(g)).expect("add guest");
    }
    sys
}

/// `(guest, mac, flow)` arrival plan, as `measure_rx_affinity` takes it.
type Traffic = Vec<(DomId, MacAddr, u32)>;
/// `(guest, cpu, run cycles, sleep cycles)` vCPU registrations.
type Vcpus = Vec<(DomId, u32, u64, u64)>;

/// One flow per guest, hash-balanced across the NICs, with each
/// guest's vCPU pinned one CPU *away* from its flow's hash-chosen NIC
/// softirq CPU — the adversarial placement FlowHash cannot fix.
fn plan(duty: u32) -> (Traffic, Vcpus) {
    let flows = balanced_flow_set(NICS as u32, 1);
    let mut traffic = Vec::new();
    let mut vcpus = Vec::new();
    for (i, &flow) in flows.iter().enumerate() {
        let gid = DomId(i as u32 + 1);
        let hash_dev = (flow.wrapping_mul(2_654_435_761) >> 16) % NICS as u32;
        let cpu = (hash_dev + 1) % CPUS;
        let (run, sleep) = match duty {
            100 => (PHASE_CYCLES, 0),
            d => {
                let run = PHASE_CYCLES * 2 * u64::from(d) / 100;
                (run, PHASE_CYCLES * 2 - run)
            }
        };
        traffic.push((gid, MacAddr::for_guest(gid.0), flow));
        vcpus.push((gid, cpu, run, sleep));
    }
    (traffic, vcpus)
}

/// Calibrates the arrival gap: the closed-loop amortized RX cost at
/// the sweep burst, with headroom so the consumer keeps up even while
/// paying cold refills — the sweep measures delivery cost, not
/// overload goodput.
fn knee_gap() -> u64 {
    let mut sys = build(ShardPolicy::FlowHash);
    let m = sys
        .measure_rx_burst(BURST, packets())
        .expect("knee calibration");
    (BURST as f64 * m.breakdown.total() * 2.0) as u64
}

fn json_entry(p: &AffinityPoint) -> String {
    format!(
        concat!(
            "    {{\"config\": \"{}\", \"policy\": \"{}\", \"duty\": {}, ",
            "\"nics\": {}, \"burst\": {}, ",
            "\"rx_cycles_per_packet\": {:.1}, ",
            "\"offered_frames\": {}, \"delivered\": {}, ",
            "\"cold_deliveries\": {}, \"placements\": {}, \"migrations\": {}, ",
            "\"wakes\": {}, \"early_drops\": {}, \"queue_drops\": {}, ",
            "\"ring_drops\": {}, \"reorders\": {}, \"victim_p99\": {}}}"
        ),
        Config::TwinDrivers.label(),
        p.policy,
        p.duty_pct,
        p.nics,
        p.burst,
        p.rx_cycles_per_packet,
        p.frames_offered,
        p.frames_delivered,
        p.cold_deliveries,
        p.placements,
        p.migrations,
        p.wakes,
        p.early_drops,
        p.queue_drops,
        p.ring_drops,
        p.reorders,
        p.victim_p99,
    )
}

fn main() {
    banner(
        "Scheduler-affinity sweep — cache-local NIC placement vs static flow hashing",
        "repo extension (\u{a7}4.4 demux + \u{a7}5 per-NIC guest pinning); acceptance: affinity >= 1.2x cycles/packet vs flow-hash at 50% duty, victim p99 <= 1.5x, zero drops/reorders",
    );
    let pkts = packets();
    let bursts = (pkts / BURST as u64).max(10);
    let gap = knee_gap();
    println!("  schedule: burst {BURST} every {gap} cycles (4 NICs, 4 CPUs, adversarial vCPU placement)\n");

    let mut entries: Vec<String> = Vec::new();
    // (policy label, duty) → point, for the acceptance comparisons.
    let mut pts: Vec<AffinityPoint> = Vec::new();
    for &duty in &DUTIES {
        for (policy, label) in [
            (ShardPolicy::FlowHash, "flowhash"),
            (ShardPolicy::Affinity, "affinity"),
        ] {
            let mut sys = build(policy);
            let (traffic, vcpus) = plan(duty);
            let p =
                measure_rx_affinity(&mut sys, &traffic, &vcpus, label, duty, BURST, bursts, gap)
                    .expect("affinity point");
            println!("    {}", p.row());
            entries.push(json_entry(&p));
            pts.push(p);
        }
        println!();
    }

    let json = format!(
        "{{\n  \"packets\": {},\n  \"entries\": [\n{}\n  ]\n}}\n",
        pkts,
        entries.join(",\n"),
    );
    // Anchor at the workspace root regardless of cargo's bench cwd.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_affinity.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!(
            "  wrote BENCH_affinity.json ({} sweep points)",
            entries.len()
        ),
        Err(e) => eprintln!("  could not write {out}: {e}"),
    }

    let get = |policy: &str, duty: u32| -> &AffinityPoint {
        pts.iter()
            .find(|p| p.policy == policy && p.duty_pct == duty)
            .expect("acceptance point measured")
    };
    let fh = get("flowhash", 50);
    let af = get("affinity", 50);
    let ratio = fh.rx_cycles_per_packet / af.rx_cycles_per_packet.max(1e-9);
    let p99_ratio = af.victim_p99 as f64 / fh.victim_p99.max(1) as f64;
    println!(
        "  affinity vs flow-hash at 50% duty: {:.0} vs {:.0} cycles/packet = {ratio:.2}x (acceptance >= 1.2x)",
        af.rx_cycles_per_packet, fh.rx_cycles_per_packet
    );
    println!(
        "  affinity victim p99 at 50% duty: {} cyc = {p99_ratio:.2}x flow-hash {} (acceptance <= 1.5x)",
        af.victim_p99, fh.victim_p99
    );

    let mut failed = false;
    if ratio < 1.2 {
        eprintln!("  ACCEPTANCE FAILED: affinity improvement {ratio:.2}x < 1.2x at 50% duty");
        failed = true;
    }
    if p99_ratio > 1.5 {
        eprintln!("  ACCEPTANCE FAILED: affinity victim p99 {p99_ratio:.2}x flow-hash > 1.5x");
        failed = true;
    }
    for p in &pts {
        if p.early_drops + p.queue_drops + p.ring_drops > 0 {
            eprintln!(
                "  ACCEPTANCE FAILED: drops at {} duty {}% ({}/{}/{})",
                p.policy, p.duty_pct, p.early_drops, p.queue_drops, p.ring_drops
            );
            failed = true;
        }
        if p.reorders > 0 {
            eprintln!(
                "  ACCEPTANCE FAILED: {} reorders at {} duty {}%",
                p.reorders, p.policy, p.duty_pct
            );
            failed = true;
        }
        if p.frames_delivered != p.frames_offered {
            eprintln!(
                "  ACCEPTANCE FAILED: {} duty {}% delivered {} of {} offered",
                p.policy, p.duty_pct, p.frames_delivered, p.frames_offered
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
