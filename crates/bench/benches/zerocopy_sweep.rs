//! Zero-copy sweep: grant-mapped buffer pools vs per-packet grant copy
//! on the TwinDrivers configuration, 1 / 4 NICs at burst 1 / 8 / 32
//! (flow-hash sharding, so every flow keeps a stable device and the
//! pool slots stay warm).
//!
//! Not a paper figure — the paper's I/O channel copies (or maps and
//! unmaps) every packet; this sweep quantifies what the repo's
//! map-once/recycle grant cache buys once the per-flow pools are warm.
//! Acceptance at 4 NICs / burst 32: zero-copy cuts amortized RX
//! cycles/packet by ≥ 1.3× over copy mode, with grant map+unmap traffic
//! ≤ 0.05 per packet in the warm measured window.
//!
//! Each mode gets a priming pass at the target burst before the
//! measured run: first-touch pool maps (`grant_map` + `pin_page`, paid
//! once per pool page) happen there, so the measured window shows the
//! steady state the paper's sustained benchmarks would see. Both modes
//! run the identical procedure to keep the comparison honest.
//!
//! Besides the human-readable table, the sweep writes
//! **`BENCH_zerocopy.json`** (workspace root) so CI's bench-regression
//! gate can track the trajectory against `bench/baseline_zerocopy.json`.

use twin_bench::{banner, packets};
use twindrivers::measure::{measure_aggregate_throughput, AggregateThroughput};
use twindrivers::{Config, ShardPolicy, System, SystemOptions};

const NIC_COUNTS: [usize; 2] = [1, 4];
const BURSTS: [usize; 3] = [1, 8, 32];

fn build(nics: usize, zero_copy: bool) -> System {
    System::build_with(
        Config::TwinDrivers,
        &SystemOptions {
            num_nics: nics,
            shard: ShardPolicy::FlowHash,
            zero_copy,
            ..SystemOptions::default()
        },
    )
    .expect("build system")
}

fn json_entry(config: Config, zero_copy: bool, a: &AggregateThroughput) -> String {
    format!(
        concat!(
            "    {{\"config\": \"{}\", \"zerocopy\": {}, \"nics\": {}, \"burst\": {}, ",
            "\"tx_cycles_per_packet\": {:.1}, \"rx_cycles_per_packet\": {:.1}, ",
            "\"aggregate_mbps\": {:.1}, ",
            "\"grant_maps\": {}, \"grant_unmaps\": {}, \"grant_copies\": {}}}"
        ),
        config.label(),
        zero_copy,
        a.nics,
        a.burst,
        a.tx_cycles_per_packet,
        a.rx_cycles_per_packet,
        a.aggregate_mbps(),
        a.grants.maps,
        a.grants.unmaps,
        a.grants.copies,
    )
}

fn main() {
    banner(
        "Zero-copy sweep — grant-mapped pools vs per-packet grant copy",
        "repo extension (I/O channel §2); acceptance: >= 1.3x RX cycles/pkt at 4 NICs burst 32, warm maps/pkt <= 0.05",
    );
    let config = Config::TwinDrivers;
    let pkts = packets();
    let mut entries: Vec<String> = Vec::new();
    let mut off_rx32 = 0.0_f64;
    let mut on_rx32 = 0.0_f64;
    let mut warm_maps_per_pkt = f64::NAN;
    for nics in NIC_COUNTS {
        for burst in BURSTS {
            for zero_copy in [false, true] {
                let mut sys = build(nics, zero_copy);
                // Priming pass (identical in both modes): the measured
                // window below starts with every pool slot the sweep
                // touches already mapped.
                sys.measure_tx_burst(burst, pkts).expect("prime tx");
                sys.take_wire_frames();
                sys.measure_rx_burst(burst, pkts).expect("prime rx");
                let a = measure_aggregate_throughput(&mut sys, burst, pkts).expect("sweep point");
                let mode = if zero_copy { "zero-copy" } else { "copy     " };
                println!("    {mode} {}", a.row());
                if nics == 4 && burst == 32 {
                    if zero_copy {
                        on_rx32 = a.rx_cycles_per_packet;
                        // Steady-state RX window on the warm system: the
                        // acceptance counts residual grant map/unmap
                        // traffic per packet.
                        let w = sys.measure_rx_burst(burst, pkts).expect("warm rx window");
                        let maps = w.breakdown.events.get("grant_map").copied().unwrap_or(0)
                            + w.breakdown.events.get("grant_unmap").copied().unwrap_or(0);
                        warm_maps_per_pkt = maps as f64 / w.breakdown.packets.max(1) as f64;
                    } else {
                        off_rx32 = a.rx_cycles_per_packet;
                    }
                }
                entries.push(json_entry(config, zero_copy, &a));
            }
        }
        println!();
    }
    let ratio = off_rx32 / on_rx32.max(1.0);
    println!("  RX cycles/packet at 4 NICs burst 32: copy {off_rx32:.0} vs zero-copy {on_rx32:.0} = {ratio:.2}x (acceptance >= 1.3x)");
    println!(
        "  warm-window grant map+unmap per packet: {warm_maps_per_pkt:.3} (acceptance <= 0.05)"
    );

    let json = format!(
        "{{\n  \"packets\": {},\n  \"policy\": \"flow-hash\",\n  \"entries\": [\n{}\n  ]\n}}\n",
        pkts,
        entries.join(",\n"),
    );
    // Anchor at the workspace root regardless of cargo's bench cwd.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_zerocopy.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!(
            "  wrote BENCH_zerocopy.json ({} sweep points)",
            entries.len()
        ),
        Err(e) => eprintln!("  could not write {out}: {e}"),
    }

    let mut failed = false;
    if ratio < 1.3 {
        eprintln!("  ACCEPTANCE FAILED: RX speedup {ratio:.2}x < 1.3x");
        failed = true;
    }
    if warm_maps_per_pkt.is_nan() || warm_maps_per_pkt > 0.05 {
        eprintln!("  ACCEPTANCE FAILED: warm grant maps/packet {warm_maps_per_pkt:.3} > 0.05");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
