//! Deferred-upcall sweep: transmit throughput and upcall
//! cycles-to-completion percentiles, sweeping the number of forced
//! upcalls at burst 32 in both upcall modes.
//!
//! Not a paper figure — this extends Figure 10 with the deferred-upcall
//! engine: queued, batch-executed dom0 upcalls with completions turn the
//! per-call switch-pair into a per-flush one. Acceptance: at 4+ forced
//! upcalls the deferred path sustains **≥ 3×** the synchronous Mb/s,
//! while the synchronous path stays the PR 2 regime bit for bit.
//!
//! Besides the human-readable table, the sweep writes
//! **`BENCH_upcall.json`** (workspace root) so CI's bench-regression
//! gate can track both modes against `bench/baseline_upcall.json`.

use twin_bench::{banner, packets};
use twindrivers::measure::upcall_latency;
use twindrivers::{throughput, Config, System, SystemOptions, UpcallMode, TESTBED_NICS};

const UPCALL_COUNTS: [usize; 6] = [0, 1, 2, 4, 6, 9];
const BURST: usize = 32;

struct Point {
    upcalls: usize,
    mode: &'static str,
    cycles_per_packet: f64,
    mbps: f64,
    p50: u64,
    p99: u64,
    flushes: u64,
}

fn measure(n: usize, mode: UpcallMode, pkts: u64) -> Point {
    let opts = SystemOptions {
        upcall_count: n,
        upcall_mode: mode,
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).expect("build");
    let b = sys.measure_tx_burst(BURST, pkts).expect("sweep point");
    let lat = upcall_latency(&sys);
    Point {
        upcalls: n,
        mode: match mode {
            UpcallMode::Sync => "sync",
            UpcallMode::Deferred => "deferred",
        },
        cycles_per_packet: b.breakdown.total(),
        mbps: throughput(b.breakdown.total(), TESTBED_NICS).mbps,
        p50: lat.p50,
        p99: lat.p99,
        flushes: sys.machine.meter.event("upcall_flush"),
    }
}

fn json_entry(p: &Point) -> String {
    format!(
        concat!(
            "    {{\"config\": \"domU-twin\", \"burst\": {}, \"upcalls\": {}, ",
            "\"mode\": \"{}\", \"tx_cycles_per_packet\": {:.1}, \"tx_mbps\": {:.1}, ",
            "\"p50_cycles\": {}, \"p99_cycles\": {}}}"
        ),
        BURST, p.upcalls, p.mode, p.cycles_per_packet, p.mbps, p.p50, p.p99,
    )
}

fn main() {
    banner(
        "Upcall sweep — deferred vs synchronous upcalls at burst 32",
        "repo extension (Fig 10, §4.2); acceptance: >= 3x Mb/s at 4+ forced upcalls",
    );
    let pkts = packets();
    let mut entries: Vec<String> = Vec::new();
    let mut worst_speedup_4plus = f64::INFINITY;
    println!(
        "  {:>7} {:>12} {:>12} {:>9} {:>12} {:>12} {:>9}",
        "upcalls", "sync Mb/s", "defer Mb/s", "speedup", "p50 cyc", "p99 cyc", "flushes"
    );
    for n in UPCALL_COUNTS {
        let sync = measure(n, UpcallMode::Sync, pkts);
        let defer = measure(n, UpcallMode::Deferred, pkts);
        let speedup = defer.mbps / sync.mbps.max(1.0);
        if n >= 4 {
            worst_speedup_4plus = worst_speedup_4plus.min(speedup);
        }
        println!(
            "  {:>7} {:>12.0} {:>12.0} {:>8.2}x {:>12} {:>12} {:>9}",
            n, sync.mbps, defer.mbps, speedup, defer.p50, defer.p99, defer.flushes
        );
        entries.push(json_entry(&sync));
        entries.push(json_entry(&defer));
    }
    println!(
        "\n  worst deferred/sync speedup at >= 4 upcalls: {worst_speedup_4plus:.2}x (acceptance >= 3x)"
    );

    let json = format!(
        "{{\n  \"packets\": {},\n  \"burst\": {},\n  \"entries\": [\n{}\n  ]\n}}\n",
        pkts,
        BURST,
        entries.join(",\n"),
    );
    // Anchor at the workspace root regardless of cargo's bench cwd.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_upcall.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("  wrote BENCH_upcall.json ({} sweep points)", entries.len()),
        Err(e) => eprintln!("  could not write {out}: {e}"),
    }
}
