//! Figure 6: receive performance for the netperf benchmark.

use twin_bench::{banner, packets, row, PAPER_FIG6};
use twin_workloads::{run_netperf, Direction};
use twindrivers::Config;

fn main() {
    banner(
        "Figure 6 — Receive throughput (netperf, 5 x 1GbE)",
        "domU 928 / domU-twin 2022 / dom0 2839 / Linux 3010 Mb/s",
    );
    for (config, (label, paper)) in Config::ALL.into_iter().zip(PAPER_FIG6) {
        let r = run_netperf(config, Direction::Receive, packets()).expect("netperf run");
        println!(
            "{}   ({:5.1}% CPU)",
            row(label, r.throughput.mbps, paper, "Mb/s"),
            r.throughput.cpu_util * 100.0
        );
    }
    println!();
    println!("  (improvement domU-twin / domU should be ~2.1x)");
}
