//! Figure 10: transmit throughput as a function of the number of
//! fast-path support routines implemented as upcalls instead of natively
//! in the hypervisor. `netif_rx` is always native, so the X axis runs
//! 0..=9 (paper: 3902 Mb/s at 0, 1638 at 1, down to 359 at 9).
//!
//! Beyond the paper's per-packet sweep, two more regimes show how the
//! burst pipeline and the deferred-upcall engine change the picture:
//! burst-32 synchronous upcalls (amortizing the stack but still paying
//! two switches per call), and burst-32 deferred upcalls (two switches
//! per *flush*).

use twin_bench::{banner, packets, PAPER_FIG10_ENDPOINTS};
use twindrivers::{throughput, Config, System, SystemOptions, UpcallMode, TESTBED_NICS};

fn build(n: usize, mode: UpcallMode) -> System {
    let opts = SystemOptions {
        upcall_count: n,
        upcall_mode: mode,
        ..SystemOptions::default()
    };
    System::build_with(Config::TwinDrivers, &opts).expect("build")
}

fn main() {
    banner(
        "Figure 10 — Transmit throughput vs upcalls per driver invocation",
        "3902 Mb/s at 0 upcalls, 1638 at 1, 359 at 9",
    );
    println!(
        "{:>8} {:>12} {:>16} {:>14} {:>14} {:>14}",
        "upcalls", "Mb/s", "cycles/packet", "upcalls/pkt", "b32 Mb/s", "b32+defer Mb/s"
    );
    for n in 0..=9usize {
        // The paper's regime: per-packet transmit, synchronous upcalls.
        let mut sys = build(n, UpcallMode::Sync);
        let b = sys.measure_tx(packets()).expect("measure");
        let t = throughput(b.total(), TESTBED_NICS);
        let upcalls = b.events.get("upcall").copied().unwrap_or(0) as f64 / b.packets as f64;
        // Burst 32, still synchronous: batching amortizes the stack and
        // doorbells but every upcall keeps its own switch-pair.
        let mut sys32 = build(n, UpcallMode::Sync);
        let b32 = sys32.measure_tx_burst(32, packets()).expect("measure b32");
        let t32 = throughput(b32.breakdown.total(), TESTBED_NICS);
        // Burst 32 with the deferred engine: queued upcalls drain in one
        // switch-pair per flush.
        let mut sysd = build(n, UpcallMode::Deferred);
        let bd = sysd.measure_tx_burst(32, packets()).expect("measure defer");
        let td = throughput(bd.breakdown.total(), TESTBED_NICS);
        println!(
            "{:>8} {:>12.0} {:>16.0} {:>14.2} {:>14.0} {:>14.0}",
            n,
            t.mbps,
            b.total(),
            upcalls,
            t32.mbps,
            td.mbps
        );
    }
    println!();
    for (n, mbps) in PAPER_FIG10_ENDPOINTS {
        println!("  paper at {n} upcalls: {mbps:.0} Mb/s");
    }
}
