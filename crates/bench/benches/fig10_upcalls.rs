//! Figure 10: transmit throughput as a function of the number of
//! fast-path support routines implemented as upcalls instead of natively
//! in the hypervisor. `netif_rx` is always native, so the X axis runs
//! 0..=9 (paper: 3902 Mb/s at 0, 1638 at 1, down to 359 at 9).

use twin_bench::{banner, packets, PAPER_FIG10_ENDPOINTS};
use twindrivers::{throughput, Config, System, SystemOptions, TESTBED_NICS};

fn main() {
    banner(
        "Figure 10 — Transmit throughput vs upcalls per driver invocation",
        "3902 Mb/s at 0 upcalls, 1638 at 1, 359 at 9",
    );
    println!(
        "{:>8} {:>12} {:>16} {:>14}",
        "upcalls", "Mb/s", "cycles/packet", "upcalls/pkt"
    );
    for n in 0..=9usize {
        let opts = SystemOptions {
            upcall_count: n,
            ..SystemOptions::default()
        };
        let mut sys = System::build_with(Config::TwinDrivers, &opts).expect("build");
        let b = sys.measure_tx(packets()).expect("measure");
        let t = throughput(b.total(), TESTBED_NICS);
        let upcalls = b.events.get("upcall").copied().unwrap_or(0) as f64 / b.packets as f64;
        println!(
            "{:>8} {:>12.0} {:>16.0} {:>14.2}",
            n,
            t.mbps,
            b.total(),
            upcalls
        );
    }
    println!();
    for (n, mbps) in PAPER_FIG10_ENDPOINTS {
        println!("  paper at {n} upcalls: {mbps:.0} Mb/s");
    }
}
