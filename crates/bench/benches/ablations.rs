//! Ablations for the design choices DESIGN.md calls out:
//!
//! * liveness analysis on/off (paper §4.1 footnote 3: spilling cost);
//! * header-copy threshold for the transmit glue (paper §5.3 uses 96 B);
//! * stack-access checking (paper §4.5.1 extension) overhead.

use twin_bench::{banner, packets};
use twin_rewriter::RewriteOptions;
use twindrivers::{Config, System, SystemOptions};

fn measure_tx_total(opts: &SystemOptions) -> (f64, f64) {
    let mut sys = System::build_with(Config::TwinDrivers, opts).expect("build");
    let b = sys.measure_tx(packets()).expect("measure");
    (b.total(), b.cycles(twin_machine::CostDomain::Driver))
}

fn main() {
    banner(
        "Ablations — liveness, header-copy threshold, stack checks",
        "design-choice costs, not a paper figure",
    );

    let base = SystemOptions::default();
    let (t_base, d_base) = measure_tx_total(&base);
    println!("  baseline twin TX             : total {t_base:>8.0}  driver {d_base:>7.0}");

    let no_liveness = SystemOptions {
        rewrite: RewriteOptions {
            liveness: false,
            ..RewriteOptions::default()
        },
        ..SystemOptions::default()
    };
    let (t_nl, d_nl) = measure_tx_total(&no_liveness);
    println!(
        "  without liveness (all spills): total {t_nl:>8.0}  driver {d_nl:>7.0}  (driver +{:.0}%)",
        100.0 * (d_nl - d_base) / d_base
    );

    let with_checks = SystemOptions {
        rewrite: RewriteOptions {
            stack_checks: true,
            ..RewriteOptions::default()
        },
        ..SystemOptions::default()
    };
    let (t_sc, d_sc) = measure_tx_total(&with_checks);
    println!(
        "  with stack checks (§4.5.1)   : total {t_sc:>8.0}  driver {d_sc:>7.0}  (driver +{:.0}%)",
        100.0 * (d_sc - d_base) / d_base
    );

    println!();
    println!("  header-copy threshold sweep (paper default 96 B):");
    for bytes in [32u32, 64, 96, 192, 512, 1024] {
        let opts = SystemOptions {
            header_copy_bytes: bytes,
            ..SystemOptions::default()
        };
        let (t, _) = measure_tx_total(&opts);
        println!("    copy {bytes:>5} B: total {t:>8.0} cycles/packet");
    }
}
