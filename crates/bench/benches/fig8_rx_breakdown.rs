//! Figure 8: CPU cycles per packet for the receive workload, broken down
//! into the paper's four categories; the dominant TwinDrivers receive
//! cost is the hypervisor's copy into the guest (~3525 cycles/packet).

use twin_bench::{banner, packets, PAPER_FIG8_TOTALS};
use twindrivers::{Config, System};

fn main() {
    banner(
        "Figure 8 — CPU cycles per packet, receive (single NIC profile)",
        "domU 35905 / domU-twin 20089 / dom0 14308 / Linux 11166",
    );
    for config in Config::ALL {
        let mut sys = System::build(config).expect("build");
        let b = sys.measure_rx(packets()).expect("measure");
        println!("{}", b.row(config.label()));
    }
    println!();
    for (label, total) in PAPER_FIG8_TOTALS {
        println!("  paper total for {label}: {total:.0} cycles/packet");
    }
}
