//! Multi-NIC shard sweep: aggregate RX+TX throughput and amortized
//! cycles/packet, sweeping 1 → 8 NICs at burst 1 / 8 / 32 on the
//! TwinDrivers configuration (round-robin burst sharding).
//!
//! Not a paper figure — this extends the reproduction to the paper's
//! five-NIC-testbed scale (§6.1) and beyond: one driver image serves
//! every NIC, per-device rings/IRQ/softirq/adapter state, and the
//! aggregate is link-limited or CPU-limited per direction, whichever
//! binds first. Acceptance: aggregate RX+TX throughput scales ≥ 3× from
//! 1 to 4 NICs at burst 32.
//!
//! Besides the human-readable table, the sweep writes
//! **`BENCH_shard.json`** (workspace root) so CI's bench-regression gate
//! and future PRs can track the perf trajectory against
//! `bench/baseline.json`.

use twin_bench::{banner, packets};
use twindrivers::measure::{measure_aggregate_throughput, AggregateThroughput};
use twindrivers::{Config, ShardPolicy, System};

const NIC_COUNTS: [usize; 4] = [1, 2, 4, 8];
const BURSTS: [usize; 3] = [1, 8, 32];

fn json_entry(config: Config, a: &AggregateThroughput) -> String {
    format!(
        concat!(
            "    {{\"config\": \"{}\", \"nics\": {}, \"burst\": {}, ",
            "\"tx_cycles_per_packet\": {:.1}, \"rx_cycles_per_packet\": {:.1}, ",
            "\"tx_mbps\": {:.1}, \"rx_mbps\": {:.1}, \"aggregate_mbps\": {:.1}}}"
        ),
        config.label(),
        a.nics,
        a.burst,
        a.tx_cycles_per_packet,
        a.rx_cycles_per_packet,
        a.tx.mbps,
        a.rx.mbps,
        a.aggregate_mbps(),
    )
}

fn main() {
    banner(
        "Shard sweep — aggregate RX+TX throughput vs NIC count",
        "repo extension (testbed §6.1); acceptance: ≥ 3x aggregate from 1 to 4 NICs at burst 32",
    );
    let config = Config::TwinDrivers;
    let pkts = packets();
    let mut entries: Vec<String> = Vec::new();
    let mut base_agg32 = 0.0;
    let mut four_agg32 = 0.0;
    println!("  {} (round-robin burst sharding):", config.label());
    for nics in NIC_COUNTS {
        for burst in BURSTS {
            let mut sys = System::build_sharded(config, nics, ShardPolicy::RoundRobin)
                .expect("build sharded system");
            let a = measure_aggregate_throughput(&mut sys, burst, pkts).expect("sweep point");
            println!("    {}", a.row());
            if burst == 32 && nics == 1 {
                base_agg32 = a.aggregate_mbps();
            }
            if burst == 32 && nics == 4 {
                four_agg32 = a.aggregate_mbps();
            }
            entries.push(json_entry(config, &a));
        }
        println!();
    }
    let scaling = four_agg32 / base_agg32.max(1.0);
    println!("  aggregate scaling 1 -> 4 NICs at burst 32: {scaling:.2}x (acceptance >= 3x)");

    let json = format!(
        "{{\n  \"packets\": {},\n  \"policy\": \"round-robin\",\n  \"entries\": [\n{}\n  ]\n}}\n",
        pkts,
        entries.join(",\n"),
    );
    // Anchor at the workspace root regardless of cargo's bench cwd.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("  wrote BENCH_shard.json ({} sweep points)", entries.len()),
        Err(e) => eprintln!("  could not write {out}: {e}"),
    }
}
