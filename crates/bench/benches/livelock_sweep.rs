//! Receive-livelock sweep: NAPI-style overload control (interrupt→poll
//! switching + per-guest DRR weights + early drop at admission) vs the
//! uncontrolled per-arrival-interrupt discipline, under an **open-loop**
//! arrival schedule swept from 0.5× to 10× of the calibrated knee.
//!
//! Not a paper figure — the paper's harnesses are closed-loop (netperf
//! paces itself), so they can measure the cost of overload but never
//! the collapse. This sweep fixes the arrival schedule: one burst every
//! `gap` cycles regardless of whether the consumer kept up, which is
//! the regime of Mogul & Ramakrishnan's receive livelock. Without
//! control, every arrival's interrupt reaps frames into per-guest
//! queues that overflow at their cap — all reap/demux work on a capped
//! frame is pure waste — and goodput falls as offered load rises past
//! the knee. With control, the flooded NIC masks its interrupt and is
//! serviced by a budgeted poll; excess frames die free in the ring or
//! at the cheap admission watermark; victims keep their weighted DRR
//! share.
//!
//! Adversarial profiles: `flood_one_guest` (one heavy flow), the same
//! aggregate load as `flow_churn` (flow-id churn defeats flow-affinity
//! state) and `elephant_mice` (bimodal). Victim guests always trickle
//! at a fixed sub-capacity rate — the fairness question is whether the
//! flood's overload leaks into them.
//!
//! Acceptance at 4 NICs / burst 32 / `flood_one_guest`:
//! * controlled goodput at 10× ≥ 70% of its knee (1.0×) goodput;
//! * controlled victim p99 at 10× ≤ 3× its unloaded (0.5×) p99;
//! * uncontrolled goodput falls monotonically past the knee and ends
//!   below 70% of its knee — the collapse the controls exist to stop.
//!
//! Besides the human-readable table, the sweep writes
//! **`BENCH_livelock.json`** (workspace root) so CI's bench-regression
//! gate can track the trajectory against `bench/baseline_livelock.json`.

use twin_bench::{banner, packets};
use twindrivers::measure::{measure_rx_livelock, LivelockPoint, OverloadProfile};
use twindrivers::net::MacAddr;
use twindrivers::{Config, ShardPolicy, System, SystemOptions};

const NICS: usize = 4;
const BURST: usize = 32;
/// Demux queue cap for both modes (the uncontrolled drop point: every
/// frame reaped and then capped here was pure wasted work).
const QUEUE_CAP: usize = 128;
/// Overload-control knobs (controlled mode only). The poll weight is
/// deliberately much smaller than a knee gap's worth of work so a poll
/// pass (reap + flush) completes well inside a gap — victims are
/// serviced at pass granularity, not once per flood drain.
const NAPI_WEIGHT: usize = 8;
const WATERMARK: usize = 64;
const VICTIM_WEIGHT: u32 = 2;
/// Small DRR quantum (both modes) so a victim's flush turn comes after
/// at most a few flood copies, and a flush round is fine-grained
/// relative to the arrival gap.
const FLUSH_QUANTUM: usize = 8;
/// Offered-load multiples in tenths (5 = 0.5×, 100 = 10×).
const FULL_SWEEP: [u32; 5] = [5, 10, 20, 40, 100];
const SPOT_SWEEP: [u32; 2] = [10, 100];

fn build(controlled: bool) -> System {
    let opts = SystemOptions {
        num_nics: NICS,
        shard: ShardPolicy::FlowHash,
        rx_queue_cap: Some(QUEUE_CAP),
        napi_weight: if controlled { NAPI_WEIGHT } else { 0 },
        rx_backlog_watermark: controlled.then_some(WATERMARK),
        rx_flush_quantum: FLUSH_QUANTUM,
        guest_weights: if controlled {
            vec![(2, VICTIM_WEIGHT), (3, VICTIM_WEIGHT)]
        } else {
            Vec::new()
        },
        // Flight recorder: free when off, zero cycles charged when on —
        // the sweep numbers are bit-identical either way.
        tracing: std::env::var_os("TWIN_TRACE_OUT").is_some(),
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).expect("build system");
    // Guest 1 (the primary) is the flood target; 2 and 3 are victims.
    sys.add_guest(MacAddr::for_guest(2))
        .expect("victim guest 2");
    sys.add_guest(MacAddr::for_guest(3))
        .expect("victim guest 3");
    sys
}

/// Calibrates the knee: the closed-loop amortized RX cost at the sweep
/// burst sets the gap at which a 1.0× open-loop schedule just
/// saturates the consumer.
fn knee_gap() -> u64 {
    let mut sys = build(false);
    let m = sys
        .measure_rx_burst(BURST, packets())
        .expect("knee calibration");
    (BURST as f64 * m.breakdown.total()) as u64
}

fn json_entry(mode: &str, p: &LivelockPoint) -> String {
    format!(
        concat!(
            "    {{\"config\": \"{}\", \"profile\": \"{}\", \"mode\": \"{}\", ",
            "\"offered\": {:.1}, \"guest\": \"all\", \"nics\": {}, \"burst\": {}, ",
            "\"rx_cycles_per_packet\": {:.1}, \"goodput_mbps\": {:.1}, ",
            "\"offered_frames\": {}, \"delivered\": {}, ",
            "\"early_drops\": {}, \"queue_drops\": {}, \"ring_drops\": {}, ",
            "\"irqs\": {}, \"polls\": {}, ",
            "\"victim_delivered\": {}, \"victim_p99\": {}}}"
        ),
        Config::TwinDrivers.label(),
        p.profile.label(),
        mode,
        p.offered(),
        p.nics,
        p.burst,
        p.rx_cycles_per_packet,
        p.goodput_mbps,
        p.frames_offered,
        p.frames_delivered,
        p.early_drops,
        p.queue_drops,
        p.ring_drops,
        p.irqs,
        p.polls,
        p.victim_delivered,
        p.victim_p99,
    )
}

fn main() {
    banner(
        "Receive-livelock sweep — NAPI-style overload control vs per-arrival interrupts",
        "repo extension (\u{a7}4.4 softirq discipline; Mogul & Ramakrishnan livelock); acceptance: controlled >= 70% knee goodput and victim p99 <= 3x unloaded at 10x, uncontrolled collapses",
    );
    let pkts = packets();
    // Enough bursts that the one-gap window edges don't dominate.
    let bursts = (pkts / BURST as u64).max(10);
    let gap = knee_gap();
    println!("  knee: burst {BURST} every {gap} cycles (4 NICs, flow-hash)\n");

    let mut entries: Vec<String> = Vec::new();
    // flood_one_guest acceptance points, per mode: offered_x10 → point.
    let mut flood_pts: Vec<(bool, u32, f64, u64)> = Vec::new();
    for profile in [
        OverloadProfile::FloodOneGuest,
        OverloadProfile::FlowChurn,
        OverloadProfile::ElephantMice,
    ] {
        let multiples: &[u32] = if profile == OverloadProfile::FloodOneGuest {
            &FULL_SWEEP
        } else {
            &SPOT_SWEEP
        };
        for &controlled in &[false, true] {
            let mode = if controlled {
                "controlled  "
            } else {
                "uncontrolled"
            };
            for &x10 in multiples {
                let mut sys = build(controlled);
                let p = measure_rx_livelock(&mut sys, profile, x10, BURST, bursts, gap)
                    .expect("livelock point");
                println!("    {mode} {}", p.row());
                if profile == OverloadProfile::FloodOneGuest {
                    flood_pts.push((controlled, x10, p.goodput_mbps, p.victim_p99));
                }
                entries.push(json_entry(mode.trim_end(), &p));
            }
            println!();
        }
    }

    let json = format!(
        "{{\n  \"packets\": {},\n  \"policy\": \"flow-hash\",\n  \"entries\": [\n{}\n  ]\n}}\n",
        pkts,
        entries.join(",\n"),
    );
    // Anchor at the workspace root regardless of cargo's bench cwd.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_livelock.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!(
            "  wrote BENCH_livelock.json ({} sweep points)",
            entries.len()
        ),
        Err(e) => eprintln!("  could not write {out}: {e}"),
    }

    let get = |controlled: bool, x10: u32| -> (f64, u64) {
        flood_pts
            .iter()
            .find(|(c, x, _, _)| *c == controlled && *x == x10)
            .map(|(_, _, g, p)| (*g, *p))
            .expect("acceptance point measured")
    };
    let (ctl_knee, _) = get(true, 10);
    let (ctl_10x, ctl_10x_p99) = get(true, 100);
    let (_, ctl_unloaded_p99) = get(true, 5);
    let (unc_knee, _) = get(false, 10);
    let (unc_2x, _) = get(false, 20);
    let (unc_4x, _) = get(false, 40);
    let (unc_10x, _) = get(false, 100);

    let ctl_frac = ctl_10x / ctl_knee.max(1e-9);
    let p99_ratio = ctl_10x_p99 as f64 / ctl_unloaded_p99.max(1) as f64;
    let unc_frac = unc_10x / unc_knee.max(1e-9);
    println!("  controlled goodput at 10x: {ctl_10x:.0} Mb/s = {:.0}% of knee {ctl_knee:.0} (acceptance >= 70%)", ctl_frac * 100.0);
    println!("  controlled victim p99 at 10x: {ctl_10x_p99} cyc = {p99_ratio:.2}x unloaded {ctl_unloaded_p99} (acceptance <= 3x)");
    println!("  uncontrolled goodput past knee: {unc_knee:.0} -> {unc_2x:.0} -> {unc_4x:.0} -> {unc_10x:.0} Mb/s ({:.0}% of knee at 10x; acceptance: monotone fall, < 70%)", unc_frac * 100.0);

    let mut failed = false;
    if ctl_frac < 0.70 {
        eprintln!(
            "  ACCEPTANCE FAILED: controlled 10x goodput {:.0}% of knee < 70%",
            ctl_frac * 100.0
        );
        failed = true;
    }
    if p99_ratio > 3.0 {
        eprintln!("  ACCEPTANCE FAILED: controlled victim p99 {p99_ratio:.2}x unloaded > 3x");
        failed = true;
    }
    if !(unc_2x < unc_knee && unc_4x < unc_2x && unc_10x <= unc_4x) {
        eprintln!("  ACCEPTANCE FAILED: uncontrolled goodput not monotonically falling past the knee ({unc_knee:.0} -> {unc_2x:.0} -> {unc_4x:.0} -> {unc_10x:.0})");
        failed = true;
    }
    if unc_frac >= 0.70 {
        eprintln!(
            "  ACCEPTANCE FAILED: uncontrolled did not collapse ({:.0}% of knee at 10x)",
            unc_frac * 100.0
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
