//! Fault sweep: driver quarantine + live recovery under the three
//! fault classes the paper's §4.5 safety machinery must contain —
//! wild write (SVM reject), wedged ring (corrupted adapter state
//! faulting on the next register access) and infinite loop (VINO-style
//! execution-watchdog budget exhaustion, §4.5.2) — each at two fault
//! rates (1 and 3 episodes per run).
//!
//! Not a paper figure — the paper stops at "the hypervisor survives";
//! this sweep measures what surviving is worth: recovery latency from
//! fault detection to device reset, bounded in-flight loss (one burst
//! per episode on the wire, plus counted queued-upcall and in-flight
//! discards), and blast radius — sibling NICs' goodput against an
//! unfaulted control run over the identical closed-loop schedule.
//! Everything derives from registry deltas (`nic{i}.rx_packets`,
//! `fault.*`) and the recovery log; with `TWIN_TRACE_OUT` set, each
//! class additionally exports a chrome trace whose quarantine→recovery
//! episode renders as an `X` span (CI gates on its presence).
//!
//! Both systems run the *same* sabotaged driver source
//! ([`fault_injected_source`] — the dormant arm-check costs a few
//! instructions per invocation), so the control differs from the
//! faulted run only in never arming the payload. The stock six sweep
//! baselines are untouched: they build the stock driver.
//!
//! Acceptance (per point):
//! * post-recovery goodput on the faulted device ≥ 95% of its
//!   pre-fault window;
//! * sibling goodput within 5% of the unfaulted control (zero
//!   cross-NIC blast radius);
//! * wire loss bounded by one burst per episode, and total discarded
//!   in-flight work bounded per episode.
//!
//! Besides the human-readable table, the sweep writes
//! **`BENCH_fault.json`** (workspace root) so CI's bench-regression
//! gate can track recovery latency against `bench/baseline_fault.json`
//! (normalized as `recovery_cycles_per_packet` = recovery cycles per
//! frame of the aborted burst, to ride the existing
//! `*_cycles_per_packet` gate machinery).

use twin_bench::{banner, packets};
use twindrivers::measure::{fault_injected_source, measure_fault_recovery, FaultClass, FaultPoint};
use twindrivers::{Config, ShardPolicy, System, SystemOptions, UpcallMode};

const NICS: usize = 4;
const BURST: usize = 32;
/// The faulted device; 0, 2, 3 are the siblings whose goodput must not
/// move.
const DEV: u32 = 1;
/// Everything-on configuration: the quarantine path has the most state
/// to tear down — NAPI latches, a deferred-upcall ring with a flush
/// deadline, and grant-mapped zero-copy pools.
const NAPI_WEIGHT: usize = 8;
const FLUSH_DEADLINE: u64 = 200_000;
/// Fault-rate axis: episodes injected per run.
const EPISODE_SWEEP: [u32; 2] = [1, 3];
/// Bound on counted in-flight discards per episode: at most one
/// ring's worth of frames attributed to the dead device plus one
/// upcall ring of queued entries.
const DROP_BOUND_PER_EPISODE: u64 = 256;

fn build(class: FaultClass, recovery: bool) -> System {
    let opts = SystemOptions {
        driver_source: Some(fault_injected_source(class)),
        num_nics: NICS,
        shard: ShardPolicy::FlowHash,
        zero_copy: true,
        napi_weight: NAPI_WEIGHT,
        upcall_mode: UpcallMode::Deferred,
        upcall_flush_deadline_cycles: Some(FLUSH_DEADLINE),
        fault_recovery: recovery,
        // Flight recorder: free when off, zero cycles charged when on —
        // the sweep numbers are bit-identical either way.
        tracing: recovery && std::env::var_os("TWIN_TRACE_OUT").is_some(),
        ..SystemOptions::default()
    };
    System::build_with(Config::TwinDrivers, &opts).expect("build system")
}

fn json_entry(p: &FaultPoint) -> String {
    format!(
        concat!(
            "    {{\"config\": \"{}\", \"profile\": \"{}\", \"mode\": \"ep{}\", ",
            "\"nics\": {}, \"burst\": {}, ",
            "\"recovery_cycles_per_packet\": {:.1}, \"recovery_cycles\": {}, ",
            "\"replayed\": {}, \"dropped\": {}, \"lost_frames\": {}, ",
            "\"revoked_mappings\": {}, \"pre_delivered\": {}, \"post_delivered\": {}, ",
            "\"sibling_delivered\": {}, \"sibling_control\": {}, ",
            "\"recovery_pct\": {:.1}, \"sibling_pct\": {:.1}}}"
        ),
        Config::TwinDrivers.label(),
        p.class.label(),
        p.episodes,
        p.nics,
        p.burst,
        p.recovery_cycles as f64 / p.episodes.max(1) as f64 / BURST as f64,
        p.recovery_cycles,
        p.replayed,
        p.dropped,
        p.lost_frames,
        p.revoked_mappings,
        p.pre_delivered,
        p.post_delivered,
        p.sibling_delivered,
        p.sibling_control,
        p.recovery_frac() * 100.0,
        p.sibling_frac() * 100.0,
    )
}

fn main() {
    banner(
        "Fault sweep — driver quarantine + live recovery per fault class",
        "\u{a7}4.5 safety (SVM reject, wedged state, \u{a7}4.5.2 watchdog); acceptance: recovery >= 95% pre-fault goodput, siblings within 5% of unfaulted control, loss bounded per episode",
    );
    let pkts = packets();
    // Window length per phase: enough rounds that one round's quantum
    // effects don't dominate the pre/post goodput comparison.
    let rounds = (pkts / (BURST * NICS) as u64).max(2);
    println!("  schedule: {rounds} rounds x {NICS} devices x burst {BURST} per window, faulting dev {DEV}\n");

    let mut entries: Vec<String> = Vec::new();
    let mut failed = false;
    for class in FaultClass::ALL {
        for &episodes in &EPISODE_SWEEP {
            let mut sys = build(class, true);
            let mut control = build(class, false);
            let p =
                measure_fault_recovery(&mut sys, &mut control, DEV, class, rounds, BURST, episodes)
                    .expect("fault point");
            println!("    {}", p.row());
            if p.recovery_frac() < 0.95 {
                eprintln!(
                    "  ACCEPTANCE FAILED: {class} ep{episodes}: post-recovery goodput {:.1}% of pre-fault < 95%",
                    p.recovery_frac() * 100.0
                );
                failed = true;
            }
            if !(0.95..=1.05).contains(&p.sibling_frac()) {
                eprintln!(
                    "  ACCEPTANCE FAILED: {class} ep{episodes}: sibling goodput {:.1}% of unfaulted control outside 95..105%",
                    p.sibling_frac() * 100.0
                );
                failed = true;
            }
            if p.lost_frames > episodes as u64 * BURST as u64 {
                eprintln!(
                    "  ACCEPTANCE FAILED: {class} ep{episodes}: wire loss {} > one burst per episode ({})",
                    p.lost_frames,
                    episodes as u64 * BURST as u64
                );
                failed = true;
            }
            if p.dropped > episodes as u64 * DROP_BOUND_PER_EPISODE {
                eprintln!(
                    "  ACCEPTANCE FAILED: {class} ep{episodes}: {} in-flight discards > bound {}",
                    p.dropped,
                    episodes as u64 * DROP_BOUND_PER_EPISODE
                );
                failed = true;
            }
            entries.push(json_entry(&p));
        }
        println!();
    }

    let json = format!(
        "{{\n  \"packets\": {},\n  \"policy\": \"flow-hash\",\n  \"entries\": [\n{}\n  ]\n}}\n",
        pkts,
        entries.join(",\n"),
    );
    // Anchor at the workspace root regardless of cargo's bench cwd.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fault.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("  wrote BENCH_fault.json ({} sweep points)", entries.len()),
        Err(e) => eprintln!("  could not write {out}: {e}"),
    }
    if failed {
        std::process::exit(1);
    }
}
