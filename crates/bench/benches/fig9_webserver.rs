//! Figure 9: web server workload — response throughput as a function of
//! the offered request rate (knot server, SPECweb99 static file set,
//! httperf open-loop clients).

use twin_bench::{banner, PAPER_FIG9_PEAKS};
use twin_workloads::run_webserver;
use twindrivers::Config;

fn main() {
    banner(
        "Figure 9 — Web server throughput vs request rate",
        "peaks: Linux 855 / dom0 712 / domU-twin 572 / domU 269 Mb/s",
    );
    let rates: Vec<f64> = (1..=20).map(|i| i as f64 * 1000.0).collect();
    println!(
        "{:>8} {}",
        "reqs/s",
        ["Linux", "dom0", "domU-twin", "domU"]
            .map(|l| format!("{l:>11}"))
            .join(" ")
    );
    let configs = [
        Config::NativeLinux,
        Config::XenDom0,
        Config::TwinDrivers,
        Config::XenGuest,
    ];
    let mut series = Vec::new();
    for c in configs {
        let (model, pts) = run_webserver(c, &rates, 150).expect("webserver run");
        series.push((model, pts));
    }
    for (i, rate) in rates.iter().enumerate() {
        let cells: Vec<String> = series
            .iter()
            .map(|(_, pts)| format!("{:>11.0}", pts[i].goodput_mbps))
            .collect();
        println!("{:>8.0} {}", rate, cells.join(" "));
    }
    println!();
    println!("  measured peaks (Mb/s):");
    for (model, _) in &series {
        println!(
            "    {:>10}: {:>6.0}",
            model.config.label(),
            model.peak_mbps()
        );
    }
    println!("  paper peaks:");
    for (label, peak) in PAPER_FIG9_PEAKS {
        println!("    {label:>10}: {peak:>6.0}");
    }
}
