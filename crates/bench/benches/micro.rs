//! Criterion micro-benchmarks for the reproduction's own machinery:
//! assembling and rewriting the e1000 driver, object encode/decode, SVM
//! slow-path handling, and a full simulated packet on each system.

use criterion::{criterion_group, criterion_main, Criterion};
use twin_isa::asm::assemble;
use twin_rewriter::{rewrite, RewriteOptions};
use twindrivers::{Config, System};

fn bench_assemble(c: &mut Criterion) {
    let src = twindrivers::kernel::e1000::source();
    c.bench_function("assemble_e1000", |b| {
        b.iter(|| assemble("e1000", &src).expect("assembles"))
    });
}

fn bench_rewrite(c: &mut Criterion) {
    let src = twindrivers::kernel::e1000::source();
    let module = assemble("e1000", &src).unwrap();
    let opts = RewriteOptions::default();
    c.bench_function("rewrite_e1000", |b| {
        b.iter(|| rewrite(&module, &opts).expect("rewrites"))
    });
}

fn bench_encode(c: &mut Criterion) {
    let src = twindrivers::kernel::e1000::source();
    let module = assemble("e1000", &src).unwrap();
    c.bench_function("encode_decode_e1000", |b| {
        b.iter(|| {
            let bytes = twin_isa::encode::encode(&module);
            twin_isa::encode::decode(&bytes).expect("decodes")
        })
    });
}

fn bench_svm_slow_path(c: &mut Criterion) {
    use twin_svm::Svm;
    let mut m = twin_machine::Machine::new();
    let dom0 = m.new_space();
    m.map_fresh(dom0, 0x2000_0000, 64).unwrap();
    let mut svm = Svm::new_hypervisor(&mut m, dom0, 0, (0, u64::MAX)).unwrap();
    c.bench_function("svm_slow_path_hit", |b| {
        // Steady-state: page already mapped, entry refill only.
        svm.slow_path(&mut m, 0x2000_0000).unwrap();
        b.iter(|| svm.slow_path(&mut m, 0x2000_0000).unwrap())
    });
}

fn bench_packet_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated_tx_packet");
    group.sample_size(20);
    for config in Config::ALL {
        let mut sys = System::build(config).expect("build");
        for _ in 0..8 {
            sys.transmit_one().expect("warm");
        }
        group.bench_function(config.label(), |b| {
            b.iter(|| {
                sys.transmit_one().expect("tx");
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_assemble,
    bench_rewrite,
    bench_encode,
    bench_svm_slow_path,
    bench_packet_paths
);
criterion_main!(benches);
