//! Batch-size sweep over the burst datapath: amortized cycles/packet,
//! interrupts/packet and doorbells/packet at burst 1 / 8 / 32 / 128.
//!
//! Not a paper figure — this measures the burst pipeline this repo adds
//! on top of the reproduction (interrupt coalescing and notification
//! amortization in the spirit of Kedia & Bansal's software passthrough
//! and Emmerich et al.'s batching analysis). The headline numbers: on
//! the TwinDrivers configuration, burst 32 must move the same traffic
//! with ≥ 1.3× fewer amortized cycles/packet and ≥ 8× fewer
//! interrupts/packet than burst 1.

use twin_bench::{banner, packets};
use twindrivers::{Config, System};

const BURSTS: [usize; 4] = [1, 8, 32, 128];

fn sweep(config: Config) {
    println!("  {} transmit:", config.label());
    let mut tx_base = 0.0;
    for b in BURSTS {
        let mut sys = System::build(config).expect("build");
        let m = sys.measure_tx_burst(b, packets()).expect("tx sweep");
        if b == 1 {
            tx_base = m.breakdown.total();
        }
        println!(
            "    {}   speedup {:>5.2}x",
            m.row(),
            tx_base / m.breakdown.total()
        );
    }
    println!("  {} receive:", config.label());
    let mut rx_base = 0.0;
    for b in BURSTS {
        let mut sys = System::build(config).expect("build");
        let m = sys.measure_rx_burst(b, packets()).expect("rx sweep");
        if b == 1 {
            rx_base = m.breakdown.total();
        }
        println!(
            "    {}   speedup {:>5.2}x",
            m.row(),
            rx_base / m.breakdown.total()
        );
    }
}

fn main() {
    banner(
        "Batch sweep — amortized cost vs burst size",
        "repo extension; acceptance: twin burst-32 ≥ 1.3x cycles, ≥ 8x irqs vs burst-1",
    );
    for config in Config::ALL {
        sweep(config);
        println!();
    }
}
