//! §6.5 Engineering effort: the paper implemented the ten fast-path
//! support routines in 851 lines of commented C. This harness counts the
//! equivalent artifacts of the reproduction: the hypervisor support
//! module versus the full dom0 support surface the upcall mechanism lets
//! the hypervisor *avoid* reimplementing.

use std::fs;
use std::path::Path;
use twin_bench::{banner, PAPER_EFFORT_LOC};
use twin_kernel::{KNOWN_ROUTINES, TABLE1_FASTPATH};

fn loc(path: &Path) -> usize {
    fs::read_to_string(path)
        .map(|s| s.lines().filter(|l| !l.trim().is_empty()).count())
        .unwrap_or(0)
}

fn main() {
    banner(
        "§6.5 — Engineering effort",
        "851 LoC of commented C for the 10 hypervisor support routines",
    );
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let hyper = loc(&root.join("crates/xen/src/support.rs"));
    let dom0 = loc(&root.join("crates/kernel/src/support.rs"));
    println!(
        "  hypervisor support (10 routines + upcalls): {hyper:>5} LoC  (paper: {PAPER_EFFORT_LOC})"
    );
    println!("  full dom0 support surface              : {dom0:>5} LoC");
    println!(
        "  routines implemented in the hypervisor : {:>5}",
        TABLE1_FASTPATH.len()
    );
    println!(
        "  routines reachable via upcalls instead : {:>5}",
        KNOWN_ROUTINES.len() - TABLE1_FASTPATH.len()
    );
    println!();
    println!(
        "  => the hypervisor implements {:.0}% of the support surface by",
        100.0 * TABLE1_FASTPATH.len() as f64 / KNOWN_ROUTINES.len() as f64
    );
    println!("     routine count; everything else is reused from dom0 by upcall.");
}
