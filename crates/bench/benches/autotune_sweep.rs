//! Autotune sweep: closed-loop per-device `ITR` tuning against the
//! static moderation grid, under offered load that **shifts mid-run**.
//!
//! The moderation sweep showed the static trade-off: at the heavy paced
//! load, wide `ITR` windows buy ~6× fewer interrupts/packet at ~1.9×
//! p99, while at light load any window only adds latency. No single
//! static setting is right on both sides — the pareto front moves with
//! the load. The auto-tuner (`SystemOptions::itr_autotune`, modeled on
//! Linux's `e1000_update_itr` state machine) retunes each device one
//! ladder rung per interval window from its observed traffic, so it
//! should land near the *per-phase* best static point on every phase of
//! a step or ramp profile.
//!
//! Acceptance (burst 32, 4 NICs, both profiles): in every phase the
//! auto-tuned system is within 15% of the per-phase best static `ITR`
//! on **both** interrupts/packet and p99 arrival→delivery latency,
//! where "best static" maximizes interrupt reduction subject to p99 ≤
//! 2× the phase's unmoderated p99 (the PR 4 acceptance shape). The
//! sweep also reports, per static setting, the phases where that
//! setting misses the front — the pareto-tracking contrast.
//!
//! Pacing shares `TWIN_BENCH_GAP_CYCLES` with the moderation sweep (the
//! heavy-phase gap; lighter phases derive from it — see
//! `LoadProfile::gaps`). Besides the table, the sweep writes
//! **`BENCH_autotune.json`** (workspace root) gated in CI against
//! `bench/baseline_autotune.json` (identity fields:
//! profile/phase/nics/burst/mode/itr).

use twin_bench::{banner, gap_cycles, packets};
use twindrivers::measure::{measure_rx_autotuned, AutotunedRx, LoadProfile};
use twindrivers::nic::ITR_LADDER;
use twindrivers::{Config, ShardPolicy, System, SystemOptions};

/// The acceptance grid: the moderation sweep's headline row.
const NICS: usize = 4;
const BURST: usize = 32;

/// Unmeasured frames at each phase start (the tuner's adaptation
/// transient; identical for static runs, so drift accounting matches).
const SETTLE_PACKETS: u64 = 256;

/// Phases need enough rounds for steady state regardless of the CI
/// smoke budget (matches the moderation sweep's floor).
const MIN_PACKETS: u64 = 384;

/// Best-static eligibility: p99 within this factor of the phase's
/// unmoderated (ITR 0) p99 — the PR 4 acceptance shape.
const P99_BUDGET: f64 = 2.0;

/// Tracking tolerance vs the per-phase best static point, both metrics.
const TRACK_TOLERANCE: f64 = 1.15;

fn run(profile: LoadProfile, autotune: bool, itr: u32, pkts: u64, gap: u64) -> AutotunedRx {
    let opts = SystemOptions {
        num_nics: NICS,
        shard: ShardPolicy::FlowHash,
        itr,
        itr_autotune: autotune,
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).expect("build");
    measure_rx_autotuned(&mut sys, BURST, profile, gap, SETTLE_PACKETS, pkts).expect("profile run")
}

/// Index of the phase's best static run: max interrupt reduction
/// subject to the p99 budget against the unmoderated run (statics[0]
/// must be ITR 0). Ties break toward lower p99, then lower ITR.
fn best_static(statics: &[AutotunedRx], phase: usize) -> usize {
    let base_p99 = statics[0].phases[phase].latency.p99.max(1) as f64;
    let mut best = 0usize;
    for (i, s) in statics.iter().enumerate() {
        let p = &s.phases[phase];
        if p.latency.p99 as f64 > P99_BUDGET * base_p99 {
            continue;
        }
        let b = &statics[best].phases[phase];
        let better = p.irqs_per_packet < b.irqs_per_packet - 1e-12
            || (p.irqs_per_packet < b.irqs_per_packet + 1e-12 && p.latency.p99 < b.latency.p99);
        if better {
            best = i;
        }
    }
    best
}

/// Whether `run`'s phase point is within tolerance of `best`'s on both
/// interrupts/packet and p99.
fn tracks(run: &AutotunedRx, best: &AutotunedRx, phase: usize) -> bool {
    let a = &run.phases[phase];
    let b = &best.phases[phase];
    a.irqs_per_packet <= TRACK_TOLERANCE * b.irqs_per_packet + 1e-12
        && a.latency.p99 as f64 <= TRACK_TOLERANCE * b.latency.p99.max(1) as f64
}

fn json_entries(r: &AutotunedRx, out: &mut Vec<String>) {
    for (i, p) in r.phases.iter().enumerate() {
        let itr_field = if r.autotune {
            String::new()
        } else {
            format!("\"itr\": {}, ", r.static_itr)
        };
        out.push(format!(
            concat!(
                "    {{\"config\": \"domU-twin\", \"profile\": \"{}\", \"phase\": {}, ",
                "\"nics\": {}, \"burst\": {}, \"mode\": \"{}\", {}\"gap_cycles\": {}, ",
                "\"rx_cycles_per_packet\": {:.1}, \"irqs_per_packet\": {:.4}, ",
                "\"p50_cycles\": {}, \"p99_cycles\": {}, \"itr_end\": {}, \"retunes\": {}}}"
            ),
            r.profile,
            i,
            r.nics,
            r.burst,
            if r.autotune { "autotune" } else { "static" },
            itr_field,
            p.gap_cycles,
            p.breakdown.total(),
            p.irqs_per_packet,
            p.latency.p50,
            p.latency.p99,
            p.itr_end,
            p.retunes,
        ));
    }
}

fn main() {
    banner(
        "Autotune sweep — closed-loop ITR vs the static grid under shifting load",
        "repo extension (e1000_update_itr); acceptance: within 15% of per-phase best static on irqs/pkt AND p99",
    );
    let pkts = packets().max(MIN_PACKETS);
    let gap = gap_cycles();
    let mut entries: Vec<String> = Vec::new();
    let mut all_phases_tracked = true;
    for profile in [LoadProfile::Step, LoadProfile::Ramp] {
        println!("  domU-twin, {NICS} NICs, burst {BURST}, profile {profile} (heavy gap {gap}):");
        // The static grid IS the tuner's ladder: "tracking the pareto
        // front" is evaluated against the exact rungs the tuner can
        // land on.
        let statics: Vec<AutotunedRx> = ITR_LADDER
            .iter()
            .map(|&itr| run(profile, false, itr, pkts, gap))
            .collect();
        let auto = run(profile, true, 0, pkts, gap);
        for s in &statics {
            for p in &s.phases {
                println!("    static itr {:>5}   {}", s.static_itr, p.row());
            }
        }
        for p in &auto.phases {
            println!("    autotune          {}", p.row());
        }

        // Per-phase pareto check.
        for phase in 0..auto.phases.len() {
            let b = best_static(&statics, phase);
            let ok = tracks(&auto, &statics[b], phase);
            all_phases_tracked &= ok;
            println!(
                "    phase {phase} (gap {:>7}): best static itr {:>4} ({:.4} irqs/pkt, p99 {}) — autotune {}",
                auto.phases[phase].gap_cycles,
                statics[b].static_itr,
                statics[b].phases[phase].irqs_per_packet,
                statics[b].phases[phase].latency.p99,
                if ok { "tracks (within 15%)" } else { "MISSES" },
            );
        }
        // The contrast: which static settings track every phase? A
        // profile that genuinely crosses regimes leaves this list empty.
        let chasers: Vec<u32> = statics
            .iter()
            .filter(|s| {
                (0..s.phases.len()).all(|ph| tracks(s, &statics[best_static(&statics, ph)], ph))
            })
            .map(|s| s.static_itr)
            .collect();
        println!(
            "    static settings tracking every phase: {}",
            if chasers.is_empty() {
                "none — only the auto-tuner follows the front".to_string()
            } else {
                format!("{chasers:?}")
            }
        );
        println!();
        for s in &statics {
            json_entries(s, &mut entries);
        }
        json_entries(&auto, &mut entries);
    }
    println!(
        "  acceptance: auto-tuner within 15% of per-phase best static everywhere: {}",
        if all_phases_tracked { "yes" } else { "NO" }
    );

    let json = format!(
        "{{\n  \"packets\": {},\n  \"gap_cycles\": {},\n  \"entries\": [\n{}\n  ]\n}}\n",
        pkts,
        gap,
        entries.join(",\n"),
    );
    // Anchor at the workspace root regardless of cargo's bench cwd.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_autotune.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!(
            "  wrote BENCH_autotune.json ({} sweep points)",
            entries.len()
        ),
        Err(e) => eprintln!("  could not write {out}: {e}"),
    }
    // Unlike the descriptive sweeps, the pareto-tracking claim is this
    // harness's acceptance criterion: failing it fails the CI step
    // (the regression gate only covers cycles/packet drift).
    if !all_phases_tracked {
        std::process::exit(1);
    }
}
