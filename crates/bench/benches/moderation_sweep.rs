//! Interrupt-moderation sweep: receive cost, interrupt rate and
//! arrival-to-delivery latency percentiles, sweeping the per-device
//! `ITR` register × burst size × NIC count on the TwinDrivers
//! configuration (FlowHash sharding, paced arrivals).
//!
//! Not a paper figure — this wires the virtual-time engine to the real
//! e1000's interrupt-throttling register: each device suppresses IRQ
//! delivery until `ITR × 768` cycles have elapsed since its last
//! delivered interrupt, latching the cause meanwhile (no delivery is
//! ever lost). The arrival process offers bursts every
//! [`twin_bench::gap_cycles`] of virtual time (`TWIN_BENCH_GAP_CYCLES`,
//! shared with the autotune sweep) — by default slightly above the
//! unmoderated path's per-interrupt service capacity at burst 32 on 4
//! NICs, the receive-livelock regime
//! interrupt moderation exists for: without moderation the backlog shows
//! up as completion latency *and* maximal interrupt rate; with it, one
//! interrupt reaps several bursts.
//!
//! Acceptance (burst 32, 4 NICs): some ITR > 0 point cuts interrupts
//! per packet ≥ 4× against ITR 0 while keeping p99 arrival-to-delivery
//! latency ≤ 2× the ITR 0 p99, and interrupts/packet fall monotonically
//! with ITR.
//!
//! Besides the human-readable table, the sweep writes
//! **`BENCH_itr.json`** (workspace root) so CI's bench-regression gate
//! can track the moderated receive path against
//! `bench/baseline_itr.json` (identity fields: nics/burst/itr/mode).

use twin_bench::{banner, gap_cycles, packets};
use twindrivers::measure::ModeratedRx;
use twindrivers::{Config, ShardPolicy, System, SystemOptions};

/// `(nics, burst)` grid rows; the acceptance row is (4, 32).
const GRID: [(usize, usize); 3] = [(1, 32), (4, 8), (4, 32)];

/// ITR sweep values (768-cycle units; 0 = unmoderated). The sweep stops
/// at the ring-capacity knee: past ~2000 units the 127-descriptor RX
/// ring fills before the window opens and the packets-waiting override
/// takes over, so wider windows buy no further interrupt reduction.
const ITR_VALUES: [u32; 4] = [0, 500, 1000, 2000];

/// Moderation windows span several bursts, so the sweep needs enough
/// rounds for steady state regardless of the CI smoke budget.
const MIN_PACKETS: u64 = 384;

fn measure(nics: usize, burst: usize, itr: u32, pkts: u64, gap: u64) -> ModeratedRx {
    let opts = SystemOptions {
        num_nics: nics,
        shard: ShardPolicy::FlowHash,
        itr,
        ..SystemOptions::default()
    };
    let mut sys = System::build_with(Config::TwinDrivers, &opts).expect("build");
    sys.measure_rx_moderated(burst, pkts, gap)
        .expect("sweep point")
}

fn json_entry(m: &ModeratedRx) -> String {
    format!(
        concat!(
            "    {{\"config\": \"domU-twin\", \"nics\": {}, \"burst\": {}, \"itr\": {}, ",
            "\"mode\": \"sync\", \"rx_cycles_per_packet\": {:.1}, \"irqs_per_packet\": {:.4}, ",
            "\"p50_cycles\": {}, \"p99_cycles\": {}, \"rx_mbps\": {:.1}}}"
        ),
        m.nics,
        m.burst,
        m.itr,
        m.breakdown.total(),
        m.irqs_per_packet,
        m.latency.p50,
        m.latency.p99,
        m.throughput().mbps,
    )
}

fn main() {
    banner(
        "Moderation sweep — ITR x burst x NICs, paced arrivals",
        "repo extension (virtual-time engine); acceptance: >= 4x fewer irqs/pkt at <= 2x p99, burst 32 / 4 NICs",
    );
    let pkts = packets().max(MIN_PACKETS);
    // Shared pacing knob (TWIN_BENCH_GAP_CYCLES) with the autotune
    // sweep; the default reproduces bench/baseline_itr.json bit-exactly.
    let gap = gap_cycles();
    let mut entries: Vec<String> = Vec::new();
    let mut accept: Option<(u32, f64, f64)> = None;
    let mut monotone = true;
    for (nics, burst) in GRID {
        println!("  domU-twin, {nics} NIC(s), burst {burst}, gap {gap} cycles:");
        let mut base: Option<ModeratedRx> = None;
        let mut prev_irqs = f64::INFINITY;
        for itr in ITR_VALUES {
            let m = measure(nics, burst, itr, pkts, gap);
            println!("    {}", m.row());
            if (nics, burst) == (4, 32) {
                if itr == 0 {
                    prev_irqs = m.irqs_per_packet;
                } else {
                    // Allow the flat tail (equal rates), never a rise.
                    monotone &= m.irqs_per_packet <= prev_irqs + 1e-9;
                    prev_irqs = m.irqs_per_packet;
                }
                match (&base, itr) {
                    (None, 0) => base = Some(m.clone()),
                    (Some(b), _) if itr > 0 => {
                        let irq_red = b.irqs_per_packet / m.irqs_per_packet.max(1e-9);
                        let p99_ratio = m.latency.p99 as f64 / b.latency.p99.max(1) as f64;
                        if irq_red >= 4.0 && p99_ratio <= 2.0 {
                            let better = accept.map_or(true, |(_, r, _)| irq_red > r);
                            if better {
                                accept = Some((itr, irq_red, p99_ratio));
                            }
                        }
                    }
                    _ => {}
                }
            }
            entries.push(json_entry(&m));
        }
        println!();
    }
    match accept {
        Some((itr, irq_red, p99_ratio)) => println!(
            "  acceptance point: itr {itr} cuts irqs/pkt {irq_red:.2}x at p99 ratio {p99_ratio:.2} (needs >= 4x at <= 2x)"
        ),
        None => println!("  acceptance FAILED: no ITR point reaches 4x fewer irqs/pkt within 2x p99"),
    }
    println!(
        "  irqs/pkt monotone non-increasing along ITR at burst 32 / 4 NICs: {}",
        if monotone { "yes" } else { "NO" }
    );

    let json = format!(
        "{{\n  \"packets\": {},\n  \"gap_cycles\": {},\n  \"entries\": [\n{}\n  ]\n}}\n",
        pkts,
        gap,
        entries.join(",\n"),
    );
    // Anchor at the workspace root regardless of cargo's bench cwd.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_itr.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("  wrote BENCH_itr.json ({} sweep points)", entries.len()),
        Err(e) => eprintln!("  could not write {out}: {e}"),
    }
}
