//! Figure 5: transmit performance for the netperf benchmark.
//!
//! Regenerates the four bars (domU, domU-twin, dom0, Linux) as aggregate
//! transmit throughput over five gigabit NICs, with CPU utilisation —
//! the paper's Linux bar saturates the links at 76.9% CPU.

use twin_bench::{banner, packets, row, PAPER_FIG5};
use twin_workloads::{run_netperf, Direction};
use twindrivers::Config;

fn main() {
    banner(
        "Figure 5 — Transmit throughput (netperf, 5 x 1GbE)",
        "domU 1619 / domU-twin 3902 / dom0 4683 / Linux 4690 Mb/s",
    );
    for (config, (label, paper)) in Config::ALL.into_iter().zip(PAPER_FIG5) {
        let r = run_netperf(config, Direction::Transmit, packets()).expect("netperf run");
        println!(
            "{}   ({:5.1}% CPU)",
            row(label, r.throughput.mbps, paper, "Mb/s"),
            r.throughput.cpu_util * 100.0
        );
    }
    println!();
    println!("  (improvement domU-twin / domU should be ~2.4x in CPU-scaled units)");
}
