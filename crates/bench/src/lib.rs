//! Shared helpers and paper reference values for the per-figure bench
//! harnesses in `benches/`.
//!
//! Each harness prints the same rows/series the paper's figure or table
//! reports, side by side with the paper's published values, and writes
//! nothing else — `cargo bench -p twin-bench` regenerates the entire
//! evaluation section.

/// Paper values for Figure 5 (transmit throughput, Mb/s):
/// domU, domU-twin, dom0, Linux.
pub const PAPER_FIG5: [(&str, f64); 4] = [
    ("domU", 1619.0),
    ("domU-twin", 3902.0),
    ("dom0", 4683.0),
    ("Linux", 4690.0),
];

/// Paper values for Figure 6 (receive throughput, Mb/s).
pub const PAPER_FIG6: [(&str, f64); 4] = [
    ("domU", 928.0),
    ("domU-twin", 2022.0),
    ("dom0", 2839.0),
    ("Linux", 3010.0),
];

/// Paper values for Figure 7 (transmit cycles/packet, totals).
pub const PAPER_FIG7_TOTALS: [(&str, f64); 2] = [("domU", 21159.0), ("domU-twin", 9972.0)];

/// Paper values for Figure 8 (receive cycles/packet, totals).
pub const PAPER_FIG8_TOTALS: [(&str, f64); 4] = [
    ("domU", 35905.0),
    ("domU-twin", 20089.0),
    ("dom0", 14308.0),
    ("Linux", 11166.0),
];

/// Paper values for Figure 9 (web server peak throughput, Mb/s).
pub const PAPER_FIG9_PEAKS: [(&str, f64); 4] = [
    ("Linux", 855.0),
    ("dom0", 712.0),
    ("domU-twin", 572.0),
    ("domU", 269.0),
];

/// Paper values for Figure 10 (transmit throughput vs upcalls/invocation,
/// Mb/s): only the endpoints are stated numerically in the text.
pub const PAPER_FIG10_ENDPOINTS: [(usize, f64); 3] = [(0, 3902.0), (1, 1638.0), (9, 359.0)];

/// Paper Table 1: the ten fast-path support routines with descriptions.
pub const PAPER_TABLE1: [(&str, &str); 10] = [
    ("netdev_alloc_skb", "allocate sk_buffs"),
    ("dev_kfree_skb_any", "free sk_buffs"),
    ("netif_rx", "receive network packets"),
    ("dma_map_single", "map DMA buffer"),
    ("dma_map_page", "map DMA page"),
    ("dma_unmap_single", "unmap DMA buffer"),
    ("dma_unmap_page", "unmap DMA page"),
    ("spin_trylock", "acquire spinlock"),
    (
        "spin_unlock_irqrestore",
        "release spinlock, restore interrupts",
    ),
    ("eth_type_trans", "process MAC header"),
];

/// Paper §6.5: lines of commented C for the ten hypervisor routines.
pub const PAPER_EFFORT_LOC: usize = 851;

/// Prints the standard harness banner.
pub fn banner(title: &str, paper_ref: &str) {
    println!();
    println!("================================================================");
    println!("  {title}");
    println!("  paper reference: {paper_ref}");
    println!("================================================================");
}

/// Formats a measured-vs-paper row.
pub fn row(label: &str, measured: f64, paper: f64, unit: &str) -> String {
    format!(
        "  {label:>10}  measured {measured:>9.0} {unit:<5} paper {paper:>8.0} {unit:<5} ratio {:.2}",
        measured / paper
    )
}

/// Number of packets per measurement in the figure harnesses.
pub fn packets() -> u64 {
    std::env::var("TWIN_BENCH_PACKETS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300)
}

/// Default scheduled inter-burst arrival gap for the paced receive
/// harnesses, in virtual cycles — slightly above the unmoderated
/// per-interrupt service capacity at burst 32 on 4 NICs (the
/// receive-livelock regime interrupt moderation exists for).
pub const DEFAULT_GAP_CYCLES: u64 = 150_000;

/// The paced harnesses' shared pacing knob: `TWIN_BENCH_GAP_CYCLES`
/// overrides the heavy-phase inter-burst gap for both the moderation
/// and the autotune sweeps, so one variable retargets the offered load
/// everywhere. The default reproduces the committed baselines
/// bit-exactly.
pub fn gap_cycles() -> u64 {
    std::env::var("TWIN_BENCH_GAP_CYCLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_GAP_CYCLES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_tables_consistent() {
        assert_eq!(PAPER_TABLE1.len(), 10);
        assert_eq!(PAPER_FIG5.len(), PAPER_FIG6.len());
        assert!(PAPER_FIG10_ENDPOINTS[0].1 > PAPER_FIG10_ENDPOINTS[1].1);
    }

    #[test]
    fn row_formats() {
        let r = row("Linux", 5000.0, 4690.0, "Mb/s");
        assert!(r.contains("Linux"));
        assert!(r.contains("1.07"));
    }
}
