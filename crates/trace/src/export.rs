//! Exporters: chrome://tracing JSON for the flight recorder, plus the
//! `TWIN_TRACE_OUT` plumbing that `measure_*` and the bench harness use.
//!
//! The chrome format (the Trace Event Format consumed by
//! `chrome://tracing` and Perfetto's legacy loader) wants an object with
//! a `traceEvents` array. We emit:
//!
//! * one **process** per cost domain (`dom0`, `domU`, `Xen`, `e1000`),
//!   in the paper's legend order, named via `"M"` metadata events;
//! * one **thread** per device (tid = device id) or per guest
//!   (tid = 1000 + guest id) inside the emitting domain's process;
//! * `"X"` **complete** events spanning each NAPI enter→complete
//!   episode, so poll-mode residency is visible as a bar;
//! * `"i"` **instant** events for everything punctual — drops, retunes,
//!   DRR grants, flushes, cache traffic — with the payload in `args`.
//!
//! Timestamps are microseconds on the virtual clock at the modeled
//! 3.0 GHz (`cycles / 3000`). Output is deterministic: identical
//! recorders produce byte-identical JSON.

use crate::{FlightRecorder, MetricSet, TraceEvent};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Modeled core frequency in cycles per microsecond (3.0 GHz).
const CYCLES_PER_US: f64 = 3000.0;

/// Fixed process-id assignment: the paper's legend order.
const DOMAIN_PIDS: [(&str, u64); 4] = [("dom0", 1), ("domU", 2), ("Xen", 3), ("e1000", 4)];

fn domain_pid(label: &str) -> u64 {
    DOMAIN_PIDS
        .iter()
        .find(|(l, _)| *l == label)
        .map(|(_, p)| *p)
        .unwrap_or(0)
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn ts_us(cycles: u64) -> String {
    format!("{:.3}", cycles as f64 / CYCLES_PER_US)
}

/// The track a record renders on: tid within its domain's process.
/// Devices own tids 0..1000; guests are offset to 1000+guest so a
/// device and a guest with the same id never share a lane.
fn event_tid(ev: &TraceEvent) -> u64 {
    match ev {
        TraceEvent::IrqDelivered { dev }
        | TraceEvent::IrqMasked { dev }
        | TraceEvent::NapiEnter { dev }
        | TraceEvent::NapiPoll { dev, .. }
        | TraceEvent::NapiComplete { dev }
        | TraceEvent::ItrRetune { dev, .. }
        | TraceEvent::SoftirqDispatch { dev, .. }
        | TraceEvent::FaultDetected { dev, .. }
        | TraceEvent::QuarantineEnter { dev }
        | TraceEvent::QuarantineExit { dev }
        | TraceEvent::DeviceReset { dev }
        | TraceEvent::InflightAccounted { dev, .. } => *dev as u64,
        TraceEvent::DrrGrant { guest, .. }
        | TraceEvent::EarlyDrop { guest }
        | TraceEvent::QueueCapDrop { guest } => 1000 + *guest as u64,
        TraceEvent::GrantCacheHit { dom, .. }
        | TraceEvent::GrantCacheMiss { dom, .. }
        | TraceEvent::GrantCacheEvict { dom, .. }
        | TraceEvent::GrantCacheRevoke { dom, .. } => 1000 + *dom as u64,
        TraceEvent::VcpuRun { guest, .. }
        | TraceEvent::VcpuSleep { guest, .. }
        | TraceEvent::AffinityPlace { guest, .. }
        | TraceEvent::AffinityMigrate { guest, .. } => 1000 + *guest as u64,
        TraceEvent::UpcallEnqueue { .. }
        | TraceEvent::UpcallFlush { .. }
        | TraceEvent::UpcallCompletion { .. }
        | TraceEvent::TimerFire { .. }
        | TraceEvent::KernelCall { .. } => 0,
    }
}

fn event_args(ev: &TraceEvent) -> String {
    match ev {
        TraceEvent::IrqDelivered { dev }
        | TraceEvent::IrqMasked { dev }
        | TraceEvent::NapiEnter { dev }
        | TraceEvent::NapiComplete { dev } => format!("{{\"dev\": {dev}}}"),
        TraceEvent::NapiPoll { dev, reaped } => {
            format!("{{\"dev\": {dev}, \"reaped\": {reaped}}}")
        }
        TraceEvent::ItrRetune {
            dev,
            old,
            new,
            regime,
        } => format!(
            "{{\"dev\": {dev}, \"old\": {old}, \"new\": {new}, \"regime\": \"{}\"}}",
            escape_json(regime)
        ),
        TraceEvent::DrrGrant {
            guest,
            deficit,
            granted,
        } => format!("{{\"guest\": {guest}, \"deficit\": {deficit}, \"granted\": {granted}}}"),
        TraceEvent::EarlyDrop { guest } | TraceEvent::QueueCapDrop { guest } => {
            format!("{{\"guest\": {guest}}}")
        }
        TraceEvent::UpcallEnqueue { routine, cont_id } => format!(
            "{{\"routine\": \"{}\", \"cont_id\": {cont_id}}}",
            escape_json(routine)
        ),
        TraceEvent::UpcallFlush { cause, drained } => format!(
            "{{\"cause\": \"{}\", \"drained\": {drained}}}",
            cause.label()
        ),
        TraceEvent::UpcallCompletion { routine, cont_id } => format!(
            "{{\"routine\": \"{}\", \"cont_id\": {cont_id}}}",
            escape_json(routine)
        ),
        TraceEvent::GrantCacheHit { dom, page }
        | TraceEvent::GrantCacheMiss { dom, page }
        | TraceEvent::GrantCacheEvict { dom, page } => {
            format!("{{\"dom\": {dom}, \"page\": {page}}}")
        }
        TraceEvent::GrantCacheRevoke { dom, count } => {
            format!("{{\"dom\": {dom}, \"count\": {count}}}")
        }
        TraceEvent::TimerFire { data } => format!("{{\"data\": {data}}}"),
        TraceEvent::SoftirqDispatch { kind, dev } => {
            format!("{{\"kind\": \"{}\", \"dev\": {dev}}}", escape_json(kind))
        }
        TraceEvent::KernelCall { routine, phase } => format!(
            "{{\"routine\": \"{}\", \"phase\": \"{}\"}}",
            escape_json(routine),
            escape_json(phase)
        ),
        TraceEvent::FaultDetected { dev, reason } => {
            format!(
                "{{\"dev\": {dev}, \"reason\": \"{}\"}}",
                escape_json(reason)
            )
        }
        TraceEvent::QuarantineEnter { dev }
        | TraceEvent::QuarantineExit { dev }
        | TraceEvent::DeviceReset { dev } => format!("{{\"dev\": {dev}}}"),
        TraceEvent::InflightAccounted {
            dev,
            replayed,
            dropped,
        } => format!("{{\"dev\": {dev}, \"replayed\": {replayed}, \"dropped\": {dropped}}}"),
        TraceEvent::VcpuRun { guest, cpu } | TraceEvent::VcpuSleep { guest, cpu } => {
            format!("{{\"guest\": {guest}, \"cpu\": {cpu}}}")
        }
        TraceEvent::AffinityPlace { guest, flow, dev } => {
            format!("{{\"guest\": {guest}, \"flow\": {flow}, \"dev\": {dev}}}")
        }
        TraceEvent::AffinityMigrate {
            guest,
            flow,
            from_dev,
            to_dev,
        } => format!(
            "{{\"guest\": {guest}, \"flow\": {flow}, \"from_dev\": {from_dev}, \"to_dev\": {to_dev}}}"
        ),
    }
}

/// Renders the recorder as chrome://tracing JSON (see module docs).
pub fn chrome_trace_json(rec: &FlightRecorder) -> String {
    let mut events: Vec<String> = Vec::new();

    // Metadata: name the domain processes and the tracks actually used.
    for (label, pid) in DOMAIN_PIDS {
        events.push(format!(
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \
             \"args\": {{\"name\": \"{label}\"}}}}"
        ));
    }
    let mut tracks: Vec<(u64, u64)> = Vec::new();
    for r in rec.records() {
        let key = (domain_pid(r.domain), event_tid(&r.event));
        if !tracks.contains(&key) {
            tracks.push(key);
        }
    }
    tracks.sort_unstable();
    for (pid, tid) in tracks {
        let name = if tid >= 1000 {
            format!("guest{}", tid - 1000)
        } else {
            format!("dev{tid}")
        };
        events.push(format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \
             \"args\": {{\"name\": \"{name}\"}}}}"
        ));
    }

    // Enter→exit pairs become "X" complete events so residency renders
    // as a bar: NAPI enter→complete as "poll_mode", quarantine
    // enter→exit as "quarantine". An episode still open at the end of
    // the recording spans to the last stamp.
    let last_at = rec.records().last().map(|r| r.at).unwrap_or(0);
    for (span, is_enter, is_exit) in [
        (
            "poll_mode",
            (|ev: &TraceEvent| match ev {
                TraceEvent::NapiEnter { dev } => Some(*dev),
                _ => None,
            }) as fn(&TraceEvent) -> Option<u32>,
            (|ev: &TraceEvent| match ev {
                TraceEvent::NapiComplete { dev } => Some(*dev),
                _ => None,
            }) as fn(&TraceEvent) -> Option<u32>,
        ),
        (
            "quarantine",
            |ev: &TraceEvent| match ev {
                TraceEvent::QuarantineEnter { dev } => Some(*dev),
                _ => None,
            },
            |ev: &TraceEvent| match ev {
                TraceEvent::QuarantineExit { dev } => Some(*dev),
                _ => None,
            },
        ),
    ] {
        let mut open: Vec<(u64, u64, &'static str)> = Vec::new(); // (dev, at, domain)
        for r in rec.records() {
            if let Some(dev) = is_enter(&r.event) {
                if !open.iter().any(|(d, _, _)| *d == u64::from(dev)) {
                    open.push((u64::from(dev), r.at, r.domain));
                }
            } else if let Some(dev) = is_exit(&r.event) {
                if let Some(i) = open.iter().position(|(d, _, _)| *d == u64::from(dev)) {
                    let (dev, start, domain) = open.remove(i);
                    events.push(format!(
                        "{{\"name\": \"{span}\", \"ph\": \"X\", \"pid\": {}, \"tid\": {dev}, \
                         \"ts\": {}, \"dur\": {}, \"args\": {{\"dev\": {dev}}}}}",
                        domain_pid(domain),
                        ts_us(start),
                        ts_us(r.at.saturating_sub(start)),
                    ));
                }
            }
        }
        open.sort_unstable();
        for (dev, start, domain) in open {
            events.push(format!(
                "{{\"name\": \"{span}\", \"ph\": \"X\", \"pid\": {}, \"tid\": {dev}, \
                 \"ts\": {}, \"dur\": {}, \"args\": {{\"dev\": {dev}, \"open\": true}}}}",
                domain_pid(domain),
                ts_us(start),
                ts_us(last_at.saturating_sub(start)),
            ));
        }
    }

    // Everything else is an instant on its track.
    for r in rec.records() {
        if matches!(
            r.event,
            TraceEvent::NapiEnter { .. }
                | TraceEvent::NapiComplete { .. }
                | TraceEvent::QuarantineEnter { .. }
                | TraceEvent::QuarantineExit { .. }
        ) {
            continue;
        }
        events.push(format!(
            "{{\"name\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \"pid\": {}, \"tid\": {}, \
             \"ts\": {}, \"args\": {}}}",
            r.event.kind(),
            domain_pid(r.domain),
            event_tid(&r.event),
            ts_us(r.at),
            event_args(&r.event),
        ));
    }

    let mut out = String::from("{\"traceEvents\": [\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// The trace output directory named by `TWIN_TRACE_OUT`, if set and
/// non-empty. All `measure_*` export hooks key off this.
pub fn trace_out_dir() -> Option<PathBuf> {
    match std::env::var_os("TWIN_TRACE_OUT") {
        Some(d) if !d.is_empty() => Some(PathBuf::from(d)),
        _ => None,
    }
}

/// Writes `<dir>/<label>.trace.json` (chrome format) and
/// `<dir>/<label>.metrics.json` (flat metrics dump), creating `dir` as
/// needed. Export failures are reported on stderr, never fatal — a
/// broken output path must not fail a measurement run.
pub fn write_trace_files(
    dir: &std::path::Path,
    label: &str,
    rec: &FlightRecorder,
    metrics: &MetricSet,
) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("twin-trace: cannot create {}: {e}", dir.display());
        return;
    }
    let trace_path = dir.join(format!("{label}.trace.json"));
    if let Err(e) = std::fs::write(&trace_path, chrome_trace_json(rec)) {
        eprintln!("twin-trace: cannot write {}: {e}", trace_path.display());
    }
    let metrics_path = dir.join(format!("{label}.metrics.json"));
    if let Err(e) = std::fs::write(&metrics_path, metrics.to_json()) {
        eprintln!("twin-trace: cannot write {}: {e}", metrics_path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceEvent;

    fn sample_recorder() -> FlightRecorder {
        let mut r = FlightRecorder::new();
        r.set_enabled(true);
        r.record(3_000, "e1000", TraceEvent::NapiEnter { dev: 0 });
        r.record(4_500, "e1000", TraceEvent::NapiPoll { dev: 0, reaped: 8 });
        r.record(6_000, "Xen", TraceEvent::EarlyDrop { guest: 2 });
        r.record(9_000, "e1000", TraceEvent::NapiComplete { dev: 0 });
        r.record(
            9_100,
            "e1000",
            TraceEvent::ItrRetune {
                dev: 1,
                old: 8000,
                new: 4000,
                regime: "bulk_latency",
            },
        );
        r
    }

    #[test]
    fn chrome_json_has_episode_and_instants() {
        let j = chrome_trace_json(&sample_recorder());
        assert!(j.starts_with("{\"traceEvents\": ["));
        // The NAPI episode is one complete ("X") event with dur 2 µs.
        assert!(j.contains("\"name\": \"poll_mode\", \"ph\": \"X\""));
        assert!(j.contains("\"ts\": 1.000, \"dur\": 2.000"));
        // Drops and retunes are instants with payloads.
        assert!(j.contains("\"name\": \"early_drop\", \"ph\": \"i\""));
        assert!(j.contains("\"regime\": \"bulk_latency\""));
        // Enter/complete never appear as raw instants (subsumed by the bar).
        assert!(!j.contains("\"name\": \"napi_enter\""));
        // Track metadata names the guest lane.
        assert!(j.contains("\"name\": \"guest2\""));
    }

    #[test]
    fn chrome_json_is_deterministic() {
        assert_eq!(
            chrome_trace_json(&sample_recorder()),
            chrome_trace_json(&sample_recorder())
        );
    }

    #[test]
    fn open_episode_spans_to_last_record() {
        let mut r = FlightRecorder::new();
        r.set_enabled(true);
        r.record(3_000, "e1000", TraceEvent::NapiEnter { dev: 0 });
        r.record(12_000, "Xen", TraceEvent::EarlyDrop { guest: 1 });
        let j = chrome_trace_json(&r);
        assert!(j.contains("\"open\": true"));
        assert!(j.contains("\"dur\": 3.000"));
    }

    #[test]
    fn quarantine_episode_renders_as_span() {
        let mut r = FlightRecorder::new();
        r.set_enabled(true);
        r.record(
            3_000,
            "Xen",
            TraceEvent::FaultDetected {
                dev: 2,
                reason: "illegal store".into(),
            },
        );
        r.record(3_000, "Xen", TraceEvent::QuarantineEnter { dev: 2 });
        r.record(6_000, "Xen", TraceEvent::DeviceReset { dev: 2 });
        r.record(
            6_000,
            "Xen",
            TraceEvent::InflightAccounted {
                dev: 2,
                replayed: 3,
                dropped: 5,
            },
        );
        r.record(9_000, "Xen", TraceEvent::QuarantineExit { dev: 2 });
        let j = chrome_trace_json(&r);
        assert!(j.contains("\"name\": \"quarantine\", \"ph\": \"X\""));
        assert!(j.contains("\"ts\": 1.000, \"dur\": 2.000"));
        assert!(j.contains("\"name\": \"fault_detected\", \"ph\": \"i\""));
        assert!(j.contains("\"name\": \"device_reset\", \"ph\": \"i\""));
        assert!(j.contains("\"replayed\": 3, \"dropped\": 5"));
        // Enter/exit are subsumed by the bar, never raw instants.
        assert!(!j.contains("\"name\": \"quarantine_enter\""));
        assert!(!j.contains("\"name\": \"quarantine_exit\""));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
