//! # twin-trace — flight recorder + metrics registry on the virtual clock
//!
//! Every performance claim the reproduction makes rests on the cycle
//! meter's per-domain attribution, but the system's *dynamic* behaviour —
//! NAPI interrupt→poll transitions, ITR retunes, DRR grant rounds,
//! grant-cache evictions, early drops, upcall flush causes — used to be
//! visible only as end-of-run aggregate counters scattered across five
//! stats structs. This crate provides:
//!
//! * [`FlightRecorder`] — a bounded ring buffer of typed [`TraceEvent`]s,
//!   each stamped with the monotonic virtual clock and the cost domain
//!   current at the emission site. Recording is **pure bookkeeping**: it
//!   never charges a cycle, so enabling tracing perturbs no committed
//!   baseline (the props suite proves traced ≡ untraced bit-exact).
//! * [`MetricSet`] — the unified snapshot/delta registry the sweeps and
//!   `twin-top` consume: flat counters plus nearest-rank histogram
//!   summaries (built on [`SampleReservoir`], which lives here so every
//!   layer shares one reservoir implementation).
//! * [`export`] — a chrome://tracing JSON exporter (one track per cost
//!   domain × device, instant events for drops/retunes) and a flat JSON
//!   metrics dump, written when the `TWIN_TRACE_OUT` environment variable
//!   names an output directory.
//! * [`CallTrace`] — the Table 1 call-name trace (formerly a bespoke
//!   mechanism in `twin-kernel`), now a typed event class: sites that
//!   record a call also emit [`TraceEvent::KernelCall`] into the unified
//!   stream.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

pub mod export;

/// Why an upcall-ring flush ran — the paper's "natural dom0 scheduling
/// points" plus the forced cases.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FlushCause {
    /// End of a burst pass (transmit, receive, or poll).
    BurstEnd,
    /// The ring filled: the next enqueue forced a drain first.
    RingFull,
    /// The high-water softirq kick (`Softirq::UpcallFlush`).
    HighWater,
    /// The deadline-driven virtual timer fired on an idle system.
    Deadline,
    /// A native fast-path routine would have raced a queued entry
    /// (pool state vs a queued free, the lock word vs a queued unlock).
    Conflict,
    /// A `Sync`-class upcall drained the ring first to preserve program
    /// order.
    SyncOrder,
    /// A `Continuation`-class call suspended the burst: the ring drains
    /// (that call last) so it can resume with dom0's return value.
    Continuation,
}

impl FlushCause {
    /// Stable label used in exports and event summaries.
    pub fn label(self) -> &'static str {
        match self {
            FlushCause::BurstEnd => "burst_end",
            FlushCause::RingFull => "ring_full",
            FlushCause::HighWater => "high_water",
            FlushCause::Deadline => "deadline",
            FlushCause::Conflict => "conflict",
            FlushCause::SyncOrder => "sync_order",
            FlushCause::Continuation => "continuation",
        }
    }
}

/// One typed flight-recorder event. Fields are the values an observer
/// needs to reconstruct *why* the transition happened — not a replay log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A hardware interrupt for `dev` was dispatched to its handler.
    IrqDelivered {
        /// Device id.
        dev: u32,
    },
    /// An interrupt cause for `dev` was latched but not delivered
    /// (moderation gating, or the mask of a poll-mode device).
    IrqMasked {
        /// Device id.
        dev: u32,
    },
    /// NAPI: `dev` acked + masked its interrupt and entered poll mode.
    NapiEnter {
        /// Device id.
        dev: u32,
    },
    /// NAPI: one budgeted poll pass over `dev` reaped `reaped` frames.
    NapiPoll {
        /// Device id.
        dev: u32,
        /// Frames reaped by this pass.
        reaped: u32,
    },
    /// NAPI: a pass came in under weight; `dev` re-armed (`IMS`) and left
    /// poll mode.
    NapiComplete {
        /// Device id.
        dev: u32,
    },
    /// The ITR auto-tuner rewrote `dev`'s throttle register.
    ItrRetune {
        /// Device id.
        dev: u32,
        /// Register value before the retune.
        old: u32,
        /// Register value after the retune.
        new: u32,
        /// The classified regime that drove the step
        /// (`lowest_latency` / `low_latency` / `bulk_latency`).
        regime: &'static str,
    },
    /// One DRR flush grant: `guest` held `deficit` frames of credit and
    /// was served `granted` frames this round.
    DrrGrant {
        /// Guest domain id.
        guest: u32,
        /// Deficit (frames of credit) at service time.
        deficit: u64,
        /// Frames actually flushed to the guest.
        granted: u32,
    },
    /// A frame for `guest` was shed at the admission watermark, before
    /// any ring or reap work.
    EarlyDrop {
        /// Guest domain id.
        guest: u32,
    },
    /// A frame for `guest` was dropped at its demux queue cap — after
    /// the reap, i.e. the livelock waste.
    QueueCapDrop {
        /// Guest domain id.
        guest: u32,
    },
    /// A dom0 call was saved into the deferred-upcall ring.
    UpcallEnqueue {
        /// Support-routine name.
        routine: String,
        /// Continuation id the completion will carry.
        cont_id: u64,
    },
    /// The deferred-upcall ring drained in one switch-pair.
    UpcallFlush {
        /// What triggered the flush.
        cause: FlushCause,
        /// Entries executed by the flush.
        drained: u32,
    },
    /// One flushed entry completed; its return value was posted back.
    UpcallCompletion {
        /// Support-routine name.
        routine: String,
        /// Continuation id matched by the waiter.
        cont_id: u64,
    },
    /// Zero-copy grant cache: the pool page was already mapped.
    GrantCacheHit {
        /// Owning domain.
        dom: u32,
        /// Pool page index.
        page: u64,
    },
    /// Zero-copy grant cache: first touch mapped the page.
    GrantCacheMiss {
        /// Owning domain.
        dom: u32,
        /// Pool page index.
        page: u64,
    },
    /// Zero-copy grant cache: an LRU victim was unmapped to make room.
    GrantCacheEvict {
        /// Victim's owning domain.
        dom: u32,
        /// Victim pool page index.
        page: u64,
    },
    /// Zero-copy grant cache: a domain's mappings were revoked (the
    /// quarantine seam).
    GrantCacheRevoke {
        /// Domain whose grants were torn down.
        dom: u32,
        /// Mappings revoked.
        count: u32,
    },
    /// A kernel timer popped from the wheel and its handler ran.
    TimerFire {
        /// The timer's `data` cookie (the e1000 watchdogs store their
        /// device index here).
        data: u64,
    },
    /// A deferred softirq was dispatched.
    SoftirqDispatch {
        /// Softirq kind label (`driver_irq`, `napi_poll`, `upcall_flush`).
        kind: &'static str,
        /// Device the softirq targets (0 for device-less kinds).
        dev: u32,
    },
    /// A driver instance called a support routine (the Table 1 trace,
    /// consolidated from the old `twin_kernel::Trace`).
    KernelCall {
        /// Support-routine name.
        routine: String,
        /// Harness phase label (`init` / `config` / `fastpath`).
        phase: String,
    },
    /// SVM (or the execution watchdog) caught the hypervisor driver
    /// faulting while it drove `dev` — the moment the trust decision
    /// flips (paper §4.5).
    FaultDetected {
        /// Device the driver was servicing when it faulted.
        dev: u32,
        /// Abort-reason label (`illegal store to …`, `watchdog: …`).
        reason: String,
    },
    /// Fault containment began: `dev` left service and its leaked state
    /// (grants, queued upcalls, poll latches, watchdog) is being torn
    /// down. Paired with [`TraceEvent::QuarantineExit`] as a span.
    QuarantineEnter {
        /// Quarantined device id.
        dev: u32,
    },
    /// `dev` finished recovery and re-entered service; closes the
    /// quarantine span.
    QuarantineExit {
        /// Recovered device id.
        dev: u32,
    },
    /// The quarantined device was reset: adapter slot re-probed, rings
    /// reconstructed, IRQ re-requested, watchdog re-armed.
    DeviceReset {
        /// Reset device id.
        dev: u32,
    },
    /// In-flight accounting for one fault episode: `replayed` queued
    /// upcalls were executed natively (frees/unlocks restored), the
    /// rest plus the device's undelivered frames were `dropped` —
    /// bounded, counted loss.
    InflightAccounted {
        /// Faulted device id.
        dev: u32,
        /// Deferred upcalls replayed natively during teardown.
        replayed: u32,
        /// Deferred upcalls discarded plus in-flight frames lost.
        dropped: u32,
    },
    /// A guest's vCPU began a run interval (scheduler model).
    VcpuRun {
        /// Guest whose vCPU woke.
        guest: u32,
        /// Physical CPU the vCPU runs on.
        cpu: u32,
    },
    /// A guest's vCPU went to sleep; its flows' deliveries defer to the
    /// next [`TraceEvent::VcpuRun`].
    VcpuSleep {
        /// Guest whose vCPU slept.
        guest: u32,
        /// Physical CPU the vCPU was running on.
        cpu: u32,
    },
    /// The affinity shard policy placed a flow on the NIC whose softirq
    /// CPU matches the owning guest's vCPU.
    AffinityPlace {
        /// Owning guest.
        guest: u32,
        /// Placed flow id.
        flow: u32,
        /// Device the flow was pinned to.
        dev: u32,
    },
    /// The scheduler moved a guest and (after hysteresis, with the old
    /// ring drained) its flow followed to the now-local NIC.
    AffinityMigrate {
        /// Owning guest.
        guest: u32,
        /// Migrated flow id.
        flow: u32,
        /// Device the flow left.
        from_dev: u32,
        /// Device the flow now lands on.
        to_dev: u32,
    },
}

impl TraceEvent {
    /// Stable kind label — the event-counts key used by
    /// `bench/trace_summary.py` and the exporters.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::IrqDelivered { .. } => "irq_delivered",
            TraceEvent::IrqMasked { .. } => "irq_masked",
            TraceEvent::NapiEnter { .. } => "napi_enter",
            TraceEvent::NapiPoll { .. } => "napi_poll",
            TraceEvent::NapiComplete { .. } => "napi_complete",
            TraceEvent::ItrRetune { .. } => "itr_retune",
            TraceEvent::DrrGrant { .. } => "drr_grant",
            TraceEvent::EarlyDrop { .. } => "early_drop",
            TraceEvent::QueueCapDrop { .. } => "queue_cap_drop",
            TraceEvent::UpcallEnqueue { .. } => "upcall_enqueue",
            TraceEvent::UpcallFlush { .. } => "upcall_flush",
            TraceEvent::UpcallCompletion { .. } => "upcall_completion",
            TraceEvent::GrantCacheHit { .. } => "grant_cache_hit",
            TraceEvent::GrantCacheMiss { .. } => "grant_cache_miss",
            TraceEvent::GrantCacheEvict { .. } => "grant_cache_evict",
            TraceEvent::GrantCacheRevoke { .. } => "grant_cache_revoke",
            TraceEvent::TimerFire { .. } => "timer_fire",
            TraceEvent::SoftirqDispatch { .. } => "softirq_dispatch",
            TraceEvent::KernelCall { .. } => "kernel_call",
            TraceEvent::FaultDetected { .. } => "fault_detected",
            TraceEvent::QuarantineEnter { .. } => "quarantine_enter",
            TraceEvent::QuarantineExit { .. } => "quarantine_exit",
            TraceEvent::DeviceReset { .. } => "device_reset",
            TraceEvent::InflightAccounted { .. } => "inflight_accounted",
            TraceEvent::VcpuRun { .. } => "vcpu_run",
            TraceEvent::VcpuSleep { .. } => "vcpu_sleep",
            TraceEvent::AffinityPlace { .. } => "affinity_place",
            TraceEvent::AffinityMigrate { .. } => "affinity_migrate",
        }
    }
}

/// One recorded event: a monotone sequence number, the virtual-clock
/// stamp, the cost domain current at the emission site, and the payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Monotone per-recorder sequence number (never reused, so a stream
    /// that lost its oldest entries to eviction is still well-formed).
    pub seq: u64,
    /// Virtual clock at emission, in cycles.
    pub at: u64,
    /// Cost-domain label current at the emission site (`dom0`, `domU`,
    /// `Xen`, `e1000`).
    pub domain: &'static str,
    /// The payload.
    pub event: TraceEvent,
}

/// A bounded ring buffer of [`TraceRecord`]s. Disabled by default;
/// recording while disabled is a single branch. At capacity the oldest
/// record is evicted and counted in [`FlightRecorder::dropped`] — the
/// stream stays well-formed (monotone `seq` and `at`) with a visible gap
/// instead of growing without bound.
///
/// The recorder never touches the cycle meter: all stamps are taken by
/// the caller *reading* the clock, so a traced run charges exactly what
/// an untraced run charges.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    enabled: bool,
    capacity: usize,
    ring: VecDeque<TraceRecord>,
    next_seq: u64,
    dropped: u64,
    /// Table 1 summary maintained across ring eviction: distinct
    /// routine → phases observed, fed by [`TraceEvent::KernelCall`].
    call_phases: BTreeMap<String, BTreeSet<String>>,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// Default ring capacity (records).
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Creates a disabled recorder with the default capacity.
    pub fn new() -> FlightRecorder {
        FlightRecorder::with_capacity(FlightRecorder::DEFAULT_CAPACITY)
    }

    /// Creates a disabled recorder holding at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            enabled: false,
            capacity: capacity.max(1),
            ring: VecDeque::new(),
            next_seq: 0,
            dropped: 0,
            call_phases: BTreeMap::new(),
        }
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on or off. Off discards nothing already held.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Resizes the ring, evicting oldest records if shrinking below the
    /// current length.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.ring.len() > self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one event stamped `at` cycles in `domain`. No-op while
    /// disabled. Evicts the oldest record at capacity.
    pub fn record(&mut self, at: u64, domain: &'static str, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if let TraceEvent::KernelCall { routine, phase } = &event {
            self.call_phases
                .entry(routine.clone())
                .or_default()
                .insert(phase.clone());
        }
        if self.ring.len() >= self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TraceRecord {
            seq: self.next_seq,
            at,
            domain,
            event,
        });
        self.next_seq += 1;
    }

    /// The held records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter()
    }

    /// Held record count.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing is held.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Records evicted at capacity — surfaced in the metrics registry so
    /// a truncated stream is never mistaken for a complete one.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Event counts by kind over the held records.
    pub fn counts_by_kind(&self) -> BTreeMap<&'static str, u64> {
        let mut out = BTreeMap::new();
        for r in &self.ring {
            *out.entry(r.event.kind()).or_insert(0) += 1;
        }
        out
    }

    /// Distinct routines observed in `phase` via
    /// [`TraceEvent::KernelCall`] — the Table 1 query. Survives ring
    /// eviction (the summary is maintained outside the ring).
    pub fn names_in_phase(&self, phase: &str) -> BTreeSet<String> {
        self.call_phases
            .iter()
            .filter(|(_, phases)| phases.contains(phase))
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// All distinct routines observed via [`TraceEvent::KernelCall`].
    pub fn all_call_names(&self) -> BTreeSet<String> {
        self.call_phases.keys().cloned().collect()
    }

    /// Drops every held record and the call-phase summary; `seq` and the
    /// dropped counter keep counting (clearing is a measurement
    /// boundary, not a replay point).
    pub fn clear(&mut self) {
        self.ring.clear();
        self.call_phases.clear();
    }
}

/// The Table 1 call-name trace: which support routines the driver calls
/// in which harness phase. Formerly `twin_kernel::Trace`; it lives here
/// so call tracing and the flight recorder are one mechanism — sites
/// that `record` a call also emit [`TraceEvent::KernelCall`] into the
/// recorder.
#[derive(Clone, Debug, Default)]
pub struct CallTrace {
    /// Current phase label (`"init"`, `"config"`, `"fastpath"`).
    pub phase: String,
    /// Whether recording is enabled.
    pub enabled: bool,
    calls: BTreeMap<String, BTreeSet<String>>,
}

impl CallTrace {
    /// Creates a disabled trace in phase `"init"`.
    pub fn new() -> CallTrace {
        CallTrace {
            phase: "init".to_string(),
            enabled: false,
            calls: BTreeMap::new(),
        }
    }

    /// Records a call to `name` in the current phase.
    pub fn record(&mut self, name: &str) {
        if self.enabled {
            self.calls
                .entry(name.to_string())
                .or_default()
                .insert(self.phase.clone());
        }
    }

    /// Routines observed in a given phase.
    pub fn names_in_phase(&self, phase: &str) -> BTreeSet<String> {
        self.calls
            .iter()
            .filter(|(_, phases)| phases.contains(phase))
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// All distinct routines observed.
    pub fn all_names(&self) -> BTreeSet<String> {
        self.calls.keys().cloned().collect()
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (`p` in 0..=100).
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A bounded uniform sample reservoir (Vitter's Algorithm R) with a
/// deterministic in-struct LCG, so long runs keep O(capacity) memory and
/// identical inputs always produce identical contents. Below capacity
/// every pushed value is retained, making percentiles exact — the regime
/// every committed sweep and test operates in.
#[derive(Clone, Debug)]
pub struct SampleReservoir {
    cap: usize,
    seen: u64,
    rng: u64,
    samples: Vec<u64>,
}

impl SampleReservoir {
    /// Creates an empty reservoir holding at most `cap` samples.
    pub fn new(cap: usize) -> SampleReservoir {
        SampleReservoir {
            cap: cap.max(1),
            seen: 0,
            rng: 0x5DEE_CE66_D569_3A53,
            samples: Vec::new(),
        }
    }

    /// Offers one sample; below capacity it is always kept, beyond it
    /// replaces a uniformly chosen held sample with probability
    /// `cap / seen` (Algorithm R).
    pub fn push(&mut self, v: u64) {
        self.seen += 1;
        if self.samples.len() < self.cap {
            if self.samples.is_empty() {
                self.samples.reserve_exact(self.cap);
            }
            self.samples.push(v);
            return;
        }
        self.rng = self
            .rng
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let j = (self.rng >> 16) % self.seen;
        if (j as usize) < self.cap {
            self.samples[j as usize] = v;
        }
    }

    /// The held samples (unordered).
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Total samples offered since the last clear.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Held sample count.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing is held.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Drops every sample and restarts the window (the RNG state is
    /// deliberately kept: clearing is a measurement boundary, not a
    /// replay point).
    pub fn clear(&mut self) {
        self.samples.clear();
        self.seen = 0;
    }
}

/// Nearest-rank summary of one histogram in a [`MetricSet`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Samples summarized.
    pub count: u64,
    /// Nearest-rank median.
    pub p50: u64,
    /// Nearest-rank 99th percentile.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistogramSummary {
    /// Summarizes `samples` (any order).
    pub fn from_samples(samples: &[u64]) -> HistogramSummary {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        HistogramSummary {
            count: sorted.len() as u64,
            p50: percentile(&sorted, 50.0),
            p99: percentile(&sorted, 99.0),
            max: sorted.last().copied().unwrap_or(0),
        }
    }
}

/// The unified metrics registry: one flat, sorted namespace of counters
/// plus histogram summaries, with a snapshot/delta API. `System::metrics`
/// gathers every scattered stats struct (`NicStats`, `UpcallStats`,
/// `GrantStats`, `GrantCacheStats`, per-guest drop counters, the cycle
/// meter, the recorder's own drop counter) into one of these; consumers
/// take two snapshots and subtract.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricSet {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricSet {
    /// Creates an empty set.
    pub fn new() -> MetricSet {
        MetricSet::default()
    }

    /// Sets counter `name` to `v`.
    pub fn set(&mut self, name: impl Into<String>, v: u64) {
        self.counters.insert(name.into(), v);
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Counters whose name starts with `prefix`, sorted.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> {
        self.counters
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
    }

    /// Attaches a histogram summary under `name`.
    pub fn set_histogram(&mut self, name: impl Into<String>, h: HistogramSummary) {
        self.histograms.insert(name.into(), h);
    }

    /// Summarizes `samples` and attaches the result under `name`.
    pub fn record_samples(&mut self, name: impl Into<String>, samples: &[u64]) {
        self.set_histogram(name, HistogramSummary::from_samples(samples));
    }

    /// Histogram summary (empty when absent).
    pub fn histogram(&self, name: &str) -> HistogramSummary {
        self.histograms.get(name).copied().unwrap_or_default()
    }

    /// All histogram summaries, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, HistogramSummary)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Counter change since an `earlier` snapshot: `self − earlier`
    /// saturating per counter (counters absent earlier read as 0).
    /// Histogram summaries are **window-scoped**, not subtractable — the
    /// delta carries the later snapshot's summaries unchanged.
    pub fn delta_since(&self, earlier: &MetricSet) -> MetricSet {
        let mut counters = BTreeMap::new();
        for (k, v) in &self.counters {
            counters.insert(k.clone(), v.saturating_sub(earlier.counter(k)));
        }
        MetricSet {
            counters,
            histograms: self.histograms.clone(),
        }
    }

    /// Flat JSON dump: `{"counters": {...}, "histograms": {...}}`, keys
    /// sorted (deterministic byte-for-byte for identical sets).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    \"{}\": {}", export::escape_json(k), v));
        }
        s.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}}}",
                export::escape_json(k),
                h.count,
                h.p50,
                h.p99,
                h.max
            ));
        }
        s.push_str("\n  }\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(dev: u32) -> TraceEvent {
        TraceEvent::IrqDelivered { dev }
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = FlightRecorder::new();
        r.record(10, "Xen", ev(0));
        assert!(r.is_empty());
        assert_eq!(r.recorded(), 0);
        r.set_enabled(true);
        r.record(10, "Xen", ev(0));
        assert_eq!(r.len(), 1);
        assert_eq!(r.recorded(), 1);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn overflow_evicts_oldest_and_keeps_stream_well_formed() {
        let mut r = FlightRecorder::with_capacity(4);
        r.set_enabled(true);
        for i in 0..10u64 {
            r.record(100 * i, "Xen", ev(i as u32));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.recorded(), 10);
        let recs: Vec<&TraceRecord> = r.records().collect();
        // Oldest evicted: the survivors are the newest four, in order,
        // with monotone seq and clock.
        assert_eq!(recs[0].seq, 6);
        assert!(recs.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
        assert!(recs.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn shrinking_capacity_evicts_and_counts() {
        let mut r = FlightRecorder::with_capacity(8);
        r.set_enabled(true);
        for i in 0..8u64 {
            r.record(i, "dom0", ev(0));
        }
        r.set_capacity(3);
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 5);
        assert_eq!(r.records().next().unwrap().seq, 5);
    }

    #[test]
    fn kernel_call_summary_survives_eviction() {
        let mut r = FlightRecorder::with_capacity(2);
        r.set_enabled(true);
        r.record(
            1,
            "dom0",
            TraceEvent::KernelCall {
                routine: "netif_rx".into(),
                phase: "fastpath".into(),
            },
        );
        for i in 0..5u64 {
            r.record(2 + i, "Xen", ev(0));
        }
        assert!(
            !r.records().any(|x| x.event.kind() == "kernel_call"),
            "the record itself was evicted"
        );
        assert!(r.names_in_phase("fastpath").contains("netif_rx"));
        assert_eq!(r.all_call_names().len(), 1);
    }

    #[test]
    fn counts_by_kind_counts_held_records() {
        let mut r = FlightRecorder::new();
        r.set_enabled(true);
        r.record(1, "Xen", ev(0));
        r.record(2, "Xen", ev(1));
        r.record(3, "Xen", TraceEvent::EarlyDrop { guest: 2 });
        let c = r.counts_by_kind();
        assert_eq!(c.get("irq_delivered"), Some(&2));
        assert_eq!(c.get("early_drop"), Some(&1));
    }

    #[test]
    fn call_trace_phases() {
        let mut t = CallTrace::new();
        t.enabled = true;
        t.phase = "init".into();
        t.record("kmalloc");
        t.phase = "fastpath".into();
        t.record("netif_rx");
        t.record("kmalloc");
        assert_eq!(t.names_in_phase("fastpath").len(), 2);
        assert_eq!(t.all_names().len(), 2);
        assert!(t.names_in_phase("init").contains("kmalloc"));
    }

    #[test]
    fn metric_delta_saturates_and_keeps_new_counters() {
        let mut a = MetricSet::new();
        a.set("x", 10);
        a.set("gone", 5);
        let mut b = MetricSet::new();
        b.set("x", 17);
        b.set("fresh", 3);
        let d = b.delta_since(&a);
        assert_eq!(d.counter("x"), 7);
        assert_eq!(d.counter("fresh"), 3);
        assert_eq!(d.counter("gone"), 0, "absent later: no delta entry");
    }

    #[test]
    fn metric_histograms_are_nearest_rank() {
        let mut m = MetricSet::new();
        m.record_samples("lat", &[5, 1, 3, 2, 4]);
        let h = m.histogram("lat");
        assert_eq!(h.count, 5);
        assert_eq!(h.p50, 3);
        assert_eq!(h.p99, 5);
        assert_eq!(h.max, 5);
        assert_eq!(m.histogram("missing"), HistogramSummary::default());
    }

    #[test]
    fn metric_json_is_deterministic_and_sorted() {
        let mut m = MetricSet::new();
        m.set("b.two", 2);
        m.set("a.one", 1);
        m.record_samples("lat", &[7]);
        let j = m.to_json();
        assert_eq!(j, m.clone().to_json());
        let a = j.find("a.one").unwrap();
        let b = j.find("b.two").unwrap();
        assert!(a < b, "keys sorted");
        assert!(j.contains("\"p99\": 7"));
    }

    #[test]
    fn prefix_query() {
        let mut m = MetricSet::new();
        m.set("nic0.rx", 1);
        m.set("nic1.rx", 2);
        m.set("guest2.drops", 3);
        let nics: Vec<(&str, u64)> = m.counters_with_prefix("nic").collect();
        assert_eq!(nics.len(), 2);
        assert_eq!(nics[0], ("nic0.rx", 1));
    }

    #[test]
    fn reservoir_below_capacity_is_exact() {
        let mut r = SampleReservoir::new(8);
        for v in [4u64, 1, 3, 2] {
            r.push(v);
        }
        assert_eq!(r.samples(), &[4, 1, 3, 2]);
        assert_eq!(r.seen(), 4);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.seen(), 0);
    }

    #[test]
    fn reservoir_is_deterministic_past_capacity() {
        let run = || {
            let mut r = SampleReservoir::new(16);
            for v in 0..1000u64 {
                r.push(v);
            }
            r.samples().to_vec()
        };
        assert_eq!(run(), run());
        assert_eq!(run().len(), 16);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&sorted, 0.0), 1);
        assert_eq!(percentile(&[], 50.0), 0);
    }
}
