//! Loading the derived driver into the hypervisor (paper §5.2).
//!
//! The hypervisor loader resolves every *data* reference of the rewritten
//! driver to the corresponding dom0 address, using the relocation
//! information the dom0 module loader saved when the VM instance was
//! loaded — "this ensures that all hypervisor driver data references
//! point only to memory locations in dom0 address space". The `stlb`
//! symbol resolves to the hypervisor's translation table, and calls to
//! support routines become extern trampolines that the hypervisor
//! dispatches to its own implementations or to upcall stubs.

use std::collections::BTreeMap;
use twin_isa::{Module, INSN_SIZE};
use twin_kernel::{LoadError, LoadedDriver};
use twin_machine::{Fault, ImageId, Machine, HYPER_BASE, PAGE_SIZE};

/// Code base for the hypervisor driver instance. The VM instance loads at
/// a lower base; the difference is the constant code offset used by
/// `stlb_call` translation (paper §5.1.2).
pub const HYP_CODE_BASE: u64 = 0x0c00_0000;

/// Hypervisor driver stack (own stack in the hypervisor region, guarded —
/// paper §4.1).
pub const HYP_STACK_BASE: u64 = HYPER_BASE + 0x0080_0000;

/// Stack size in pages.
pub const HYP_STACK_PAGES: u64 = 8;

/// Dedicated upcall stack (paper §4.2: "the stub routine also switches
/// from the hypervisor stack to an 'upcall' stack").
pub const UPCALL_STACK_BASE: u64 = HYPER_BASE + 0x0090_0000;

/// Upcall stack size in pages.
pub const UPCALL_STACK_PAGES: u64 = 4;

/// The deferred-upcall request ring (hypervisor memory, shared with the
/// dom0 flush handler): each slot saves one queued upcall's routine id,
/// arity, stack parameters and continuation id, so the batched dom0 pass
/// can rebuild every call frame without touching the driver stack. The
/// dom0 handler resumes the driver instance by posting each routine's
/// return value back through the event channel
/// ([`crate::upcall::UPCALL_COMPLETION_PORT`]).
pub const UPCALL_RING_BASE: u64 = HYPER_BASE + 0x0098_0000;

/// Ring size in pages.
pub const UPCALL_RING_PAGES: u64 = 2;

/// Bytes per ring slot: routine id, arity, four saved arguments,
/// continuation id (lo, hi) — eight 32-bit words.
pub const UPCALL_RING_SLOT_BYTES: u64 = 32;

/// Number of ring slots (the hard ceiling on the engine's capacity).
pub const UPCALL_RING_SLOTS: u64 = UPCALL_RING_PAGES * PAGE_SIZE / UPCALL_RING_SLOT_BYTES;

/// The hypervisor driver instance: image, entry points, stack, and abort
/// state (a driver that makes an illegal access is aborted and stays
/// aborted until reloaded).
#[derive(Debug)]
pub struct HypervisorDriver {
    /// Loaded image id.
    pub image: ImageId,
    /// Code base (constant offset from the VM instance).
    pub code_base: u64,
    /// Exported entry points.
    pub entries: BTreeMap<String, u64>,
    /// Top of the driver's hypervisor stack.
    pub stack_top: u64,
    /// Abort reason, if the driver has been killed.
    pub aborted: Option<String>,
    /// Number of instructions.
    pub text_len: usize,
    /// Per-device quarantine: devices whose fault was contained to their
    /// adapter slot (fault-recovery mode) instead of killing the shared
    /// image. Maps device id → the abort reason that triggered it.
    pub quarantined: BTreeMap<u32, String>,
}

impl HypervisorDriver {
    /// Address of an exported function.
    pub fn entry(&self, name: &str) -> Option<u64> {
        self.entries.get(name).copied()
    }

    /// The burst transmit entry point (`e1000_xmit_batch`): one
    /// hypervisor-driver invocation places a whole burst of frames with a
    /// single TX-lock acquisition and a single `TDT` doorbell.
    pub fn xmit_batch_entry(&self) -> Option<u64> {
        self.entry("e1000_xmit_batch")
    }

    /// The polled receive entry point (`e1000_poll_rx_batch`): reaps
    /// every filled RX descriptor in one pass without an `ICR` read, for
    /// use under the hypervisor's coalesced softirq.
    pub fn poll_rx_batch_entry(&self) -> Option<u64> {
        self.entry("e1000_poll_rx_batch")
    }

    /// Device-id-taking burst transmit entry (`e1000_xmit_batch_dev`):
    /// like [`HypervisorDriver::xmit_batch_entry`] but with a trailing
    /// device id selecting the per-NIC adapter slot (multi-NIC sharding).
    pub fn xmit_batch_dev_entry(&self) -> Option<u64> {
        self.entry("e1000_xmit_batch_dev")
    }

    /// Device-id-taking polled receive entry (`e1000_poll_rx_batch_dev`).
    pub fn poll_rx_batch_dev_entry(&self) -> Option<u64> {
        self.entry("e1000_poll_rx_batch_dev")
    }

    /// Device-id-taking interrupt handler entry (`e1000_intr_dev`): the
    /// softirq dispatcher passes the raising NIC's id so each device's
    /// descriptors are reaped through its own adapter slot.
    pub fn intr_dev_entry(&self) -> Option<u64> {
        self.entry("e1000_intr_dev")
    }

    /// Code range `(base, end)` for call-translation validation.
    pub fn code_range(&self) -> (u64, u64) {
        (
            self.code_base,
            self.code_base + self.text_len as u64 * INSN_SIZE,
        )
    }

    /// Marks the driver aborted (illegal access detected by SVM).
    pub fn abort(&mut self, reason: impl Into<String>) {
        if self.aborted.is_none() {
            self.aborted = Some(reason.into());
        }
    }

    /// Whether the driver is dead.
    pub fn is_aborted(&self) -> bool {
        self.aborted.is_some()
    }

    /// Quarantines one device: the shared image stays live for its
    /// siblings, but calls driving `dev` are refused until
    /// [`HypervisorDriver::release_device`]. First reason wins, like
    /// [`HypervisorDriver::abort`].
    pub fn quarantine_device(&mut self, dev: u32, reason: impl Into<String>) {
        self.quarantined.entry(dev).or_insert_with(|| reason.into());
    }

    /// Whether `dev` is quarantined.
    pub fn is_quarantined(&self, dev: u32) -> bool {
        self.quarantined.contains_key(&dev)
    }

    /// The abort reason that quarantined `dev`, if any.
    pub fn quarantined_reason(&self, dev: u32) -> Option<&str> {
        self.quarantined.get(&dev).map(String::as_str)
    }

    /// Releases `dev` from quarantine after recovery; returns the
    /// recorded reason.
    pub fn release_device(&mut self, dev: u32) -> Option<String> {
        self.quarantined.remove(&dev)
    }
}

/// Loads the rewritten module as the hypervisor instance.
///
/// * data symbols resolve to the **dom0** addresses recorded by the VM
///   load (`vm.data_symbols`) — single data instance;
/// * `stlb` resolves to `stlb_base` (the hypervisor table);
/// * unresolved support routines become extern trampolines (hypervisor
///   implementations or upcall stubs at dispatch time).
///
/// Also maps the driver stack and the upcall stack, leaving guard pages
/// below each.
///
/// # Errors
///
/// Returns [`LoadError`] on unresolved symbols or mapping faults.
pub fn load_hypervisor_driver(
    m: &mut Machine,
    rewritten: &Module,
    vm: &LoadedDriver,
    stlb_base: u64,
) -> Result<HypervisorDriver, LoadError> {
    m.map_hyper_fresh(HYP_STACK_BASE, HYP_STACK_PAGES)
        .map_err(LoadError::Fault)?;
    m.map_hyper_fresh(UPCALL_STACK_BASE, UPCALL_STACK_PAGES)
        .map_err(LoadError::Fault)?;
    m.map_hyper_fresh(UPCALL_RING_BASE, UPCALL_RING_PAGES)
        .map_err(LoadError::Fault)?;
    let image = m
        .load_image(rewritten, HYP_CODE_BASE, |name| {
            if name == twin_svm::STLB_SYMBOL {
                Some(stlb_base)
            } else {
                vm.data_symbol(name)
            }
        })
        .map_err(LoadError::Link)?;
    let entries = m.image(image).exports.clone();
    let text_len = m.image(image).insns.len();
    Ok(HypervisorDriver {
        image,
        code_base: HYP_CODE_BASE,
        entries,
        stack_top: HYP_STACK_BASE + HYP_STACK_PAGES * PAGE_SIZE,
        aborted: None,
        text_len,
        quarantined: BTreeMap::new(),
    })
}

/// Guard against misuse: ensure a fault aborts the driver and reports a
/// readable reason.
pub fn abort_reason_for(fault: &Fault) -> String {
    match fault {
        Fault::EnvFault(msg) => msg.clone(),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twin_isa::asm::assemble;
    use twin_kernel::load_driver;
    use twin_rewriter::{rewrite, RewriteOptions};

    #[test]
    fn loader_shares_data_with_vm_instance() {
        let src = r#"
            .text
            .globl get
        get:
            movl counter, %eax
            ret
            .data
        counter:
            .long 7
        "#;
        let module = assemble("d", src).unwrap();
        let rw = rewrite(&module, &RewriteOptions::default()).unwrap();
        let mut m = Machine::new();
        let dom0 = m.new_space();
        let vm = load_driver(&mut m, dom0, &rw.module, 0x0800_0000, 0x2800_0000, |n| {
            (n == twin_svm::STLB_SYMBOL).then_some(0x2900_0000)
        })
        .unwrap();
        let hyp =
            load_hypervisor_driver(&mut m, &rw.module, &vm, twin_svm::STLB_HYPER_BASE).unwrap();
        assert_eq!(hyp.code_base, HYP_CODE_BASE);
        assert!(hyp.entry("get").is_some());
        // Constant offset between the two instances' entry points.
        let off = hyp.entry("get").unwrap() as i64 - vm.entry("get").unwrap() as i64;
        assert_eq!(off, HYP_CODE_BASE as i64 - 0x0800_0000);
        // The hypervisor image's data reference points at dom0's counter.
        let (lo, hi) = hyp.code_range();
        assert!(lo < hi);
        assert!(!hyp.is_aborted());
    }

    #[test]
    fn abort_is_sticky() {
        let module = assemble("d", ".text\n.globl f\nf:\n ret\n").unwrap();
        let rw = rewrite(&module, &RewriteOptions::default()).unwrap();
        let mut m = Machine::new();
        let dom0 = m.new_space();
        let vm = load_driver(&mut m, dom0, &rw.module, 0x0800_0000, 0x2800_0000, |n| {
            (n == twin_svm::STLB_SYMBOL).then_some(0x2900_0000)
        })
        .unwrap();
        let mut hyp =
            load_hypervisor_driver(&mut m, &rw.module, &vm, twin_svm::STLB_HYPER_BASE).unwrap();
        hyp.abort("svm: bad access");
        hyp.abort("second");
        assert_eq!(hyp.aborted.as_deref(), Some("svm: bad access"));
    }

    #[test]
    fn quarantine_is_per_device_and_releasable() {
        let module = assemble("d", ".text\n.globl f\nf:\n ret\n").unwrap();
        let rw = rewrite(&module, &RewriteOptions::default()).unwrap();
        let mut m = Machine::new();
        let dom0 = m.new_space();
        let vm = load_driver(&mut m, dom0, &rw.module, 0x0800_0000, 0x2800_0000, |n| {
            (n == twin_svm::STLB_SYMBOL).then_some(0x2900_0000)
        })
        .unwrap();
        let mut hyp =
            load_hypervisor_driver(&mut m, &rw.module, &vm, twin_svm::STLB_HYPER_BASE).unwrap();
        hyp.quarantine_device(2, "illegal store");
        hyp.quarantine_device(2, "second");
        assert!(hyp.is_quarantined(2));
        assert!(!hyp.is_quarantined(0));
        assert!(!hyp.is_aborted()); // siblings keep serving
        assert_eq!(hyp.quarantined_reason(2), Some("illegal store"));
        assert_eq!(hyp.release_device(2).as_deref(), Some("illegal store"));
        assert!(!hyp.is_quarantined(2));
    }
}
