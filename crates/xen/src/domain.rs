//! Domains: dom0 and guests, with their address spaces, virtual
//! interrupt state and (for the TwinDrivers path) per-guest receive
//! queues.

use twin_machine::SpaceId;
use twin_net::{Frame, MacAddr};

/// Domain identifier; dom0 is always id 0.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DomId(pub u32);

impl DomId {
    /// The driver domain.
    pub const DOM0: DomId = DomId(0);
}

/// Kind of domain.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DomainKind {
    /// The privileged driver domain.
    Driver,
    /// An unprivileged guest.
    Guest,
}

/// A virtual machine: address space, MAC identity, virtual interrupt
/// flag, pending events and the TwinDrivers receive queue.
#[derive(Debug)]
pub struct Domain {
    /// Identifier.
    pub id: DomId,
    /// Address space.
    pub space: SpaceId,
    /// Driver domain or guest.
    pub kind: DomainKind,
    /// MAC address of the domain's (virtual) interface.
    pub mac: MacAddr,
    /// Virtual interrupt-enable flag — the paper's §4.4: "the dom0 kernel
    /// masks and unmasks a virtual interrupt flag instead of the real CPU
    /// interrupt flag".
    pub virq_enabled: bool,
    /// Pending virtual interrupts (event-channel ports).
    pub pending_virqs: Vec<u32>,
    /// Frames demultiplexed to this guest by the hypervisor driver,
    /// waiting to be copied in when the guest is scheduled (paper §5.3).
    pub rx_queue: Vec<Frame>,
    /// Bound on `rx_queue`: when set, the demux drops frames for this
    /// guest once its backlog reaches the cap instead of queueing them
    /// unboundedly — the receive-livelock drop point (all the reap and
    /// demux work is already paid by then; that waste is the livelock).
    /// `None` (the default) keeps the unbounded pre-overload behaviour.
    pub rx_queue_cap: Option<usize>,
    /// Frames dropped at the `rx_queue_cap` bound.
    pub rx_queue_drops: u64,
    /// Frames fully delivered into the guest (after the copy).
    pub rx_delivered: Vec<Frame>,
}

impl Domain {
    /// Creates a domain.
    pub fn new(id: DomId, space: SpaceId, kind: DomainKind, mac: MacAddr) -> Domain {
        Domain {
            id,
            space,
            kind,
            mac,
            virq_enabled: true,
            pending_virqs: Vec::new(),
            rx_queue: Vec::new(),
            rx_queue_cap: None,
            rx_queue_drops: 0,
            rx_delivered: Vec::new(),
        }
    }

    /// Queues one demultiplexed frame toward this guest, honouring the
    /// backlog cap. Returns `false` when the frame was dropped at the
    /// cap (pure bookkeeping — the caller charges nothing extra: the
    /// work wasted on a capped frame was already spent reaping it).
    pub fn queue_rx(&mut self, frame: Frame) -> bool {
        if let Some(cap) = self.rx_queue_cap {
            if self.rx_queue.len() >= cap {
                self.rx_queue_drops += 1;
                return false;
            }
        }
        self.rx_queue.push(frame);
        true
    }

    /// Consumes every pending event on `port`, returning how many were
    /// pending — how a handler acknowledges e.g. the batched
    /// upcall-completion event without disturbing other ports' events.
    pub fn drain_virqs(&mut self, port: u32) -> usize {
        let before = self.pending_virqs.len();
        self.pending_virqs.retain(|p| *p != port);
        before - self.pending_virqs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dom0_is_id_zero() {
        assert_eq!(DomId::DOM0, DomId(0));
    }

    #[test]
    fn new_domain_defaults() {
        let d = Domain::new(
            DomId(1),
            SpaceId(1),
            DomainKind::Guest,
            MacAddr::for_guest(1),
        );
        assert!(d.virq_enabled);
        assert!(d.pending_virqs.is_empty());
        assert!(d.rx_queue.is_empty());
    }

    #[test]
    fn drain_virqs_is_per_port() {
        let mut d = Domain::new(
            DomId(1),
            SpaceId(1),
            DomainKind::Guest,
            MacAddr::for_guest(1),
        );
        d.pending_virqs.extend([4, 32, 4, 32, 7]);
        assert_eq!(d.drain_virqs(32), 2);
        assert_eq!(d.pending_virqs, vec![4, 4, 7]);
        assert_eq!(d.drain_virqs(32), 0);
    }
}
